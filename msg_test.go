package sonuma_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sonuma"
)

// newMessengers builds an n-node cluster with a messenger on each node.
func newMessengers(t *testing.T, n int, mcfg sonuma.MessengerConfig) []*sonuma.Messenger {
	t.Helper()
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	segSize := mcfg.RegionOffset + sonuma.MessengerRegionSize(n, mcfg) + 4096
	ms := make([]*sonuma.Messenger, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(3, segSize)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ctx.NewQP(64)
		if err != nil {
			t.Fatal(err)
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			t.Fatal(err)
		}
	}
	return ms
}

func TestMessengerPushSmall(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{})
	want := []byte("hi there")
	done := make(chan error, 1)
	go func() {
		msg, err := ms[1].Recv()
		if err == nil {
			if msg.From != 0 {
				err = fmt.Errorf("from = %d, want 0", msg.From)
			} else if !bytes.Equal(msg.Data, want) {
				err = fmt.Errorf("data = %q, want %q", msg.Data, want)
			}
		}
		done <- err
	}()
	if err := ms[0].Send(1, want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ms[0].Pushed != 1 || ms[0].Pulled != 0 {
		t.Fatalf("pushed=%d pulled=%d, want 1/0", ms[0].Pushed, ms[0].Pulled)
	}
}

func TestMessengerPullLarge(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{Threshold: 256})
	want := make([]byte, 48*1024) // > threshold, < staging size
	for i := range want {
		want[i] = byte(i % 251)
	}
	done := make(chan error, 1)
	go func() {
		msg, err := ms[1].Recv()
		if err == nil && !bytes.Equal(msg.Data, want) {
			err = fmt.Errorf("pull data mismatch (%d bytes)", len(msg.Data))
		}
		done <- err
	}()
	if err := ms[0].Send(1, want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ms[0].Pulled != 1 {
		t.Fatalf("pulled=%d, want 1", ms[0].Pulled)
	}
}

func TestMessengerSplitsOversizedPulls(t *testing.T) {
	cfg := sonuma.MessengerConfig{Threshold: 64, StagingSize: 8 * 1024}
	ms := newMessengers(t, 2, cfg)
	want := make([]byte, 20*1024) // needs 3 staging chunks
	for i := range want {
		want[i] = byte(i * 7)
	}
	var got []byte
	done := make(chan error, 1)
	go func() {
		for len(got) < len(want) {
			msg, err := ms[1].Recv()
			if err != nil {
				done <- err
				return
			}
			got = append(got, msg.Data...)
		}
		done <- nil
	}()
	if err := ms[0].Send(1, want); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("reassembled payload mismatch")
	}
	if ms[0].Pulled != 3 {
		t.Fatalf("pulled=%d, want 3", ms[0].Pulled)
	}
}

func TestMessengerOrderingAndBurst(t *testing.T) {
	// Burst more messages than the ring holds: exercises credit-based
	// flow control, ring wrap and epoch validation.
	ms := newMessengers(t, 2, sonuma.MessengerConfig{RingSlots: 8})
	const count = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < count; i++ {
			msg, err := ms[1].Recv()
			if err != nil {
				done <- err
				return
			}
			want := fmt.Sprintf("msg-%04d", i)
			if string(msg.Data) != want {
				done <- fmt.Errorf("message %d = %q, want %q (reordered?)", i, msg.Data, want)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < count; i++ {
		if err := ms[0].Send(1, []byte(fmt.Sprintf("msg-%04d", i))); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerBidirectionalNoDeadlock(t *testing.T) {
	// Both sides blast at each other with tiny rings; Send's inbound
	// pumping must prevent the credit deadlock.
	ms := newMessengers(t, 2, sonuma.MessengerConfig{RingSlots: 4})
	const count = 100
	var wg sync.WaitGroup
	for side := 0; side < 2; side++ {
		side := side
		wg.Add(1)
		go func() {
			defer wg.Done()
			sent, recvd := 0, 0
			for sent < count || recvd < count {
				if sent < count {
					if err := ms[side].Send(1-side, []byte("ping")); err != nil {
						t.Errorf("side %d send: %v", side, err)
						return
					}
					sent++
				}
				for {
					_, ok, err := ms[side].TryRecv()
					if err != nil {
						t.Errorf("side %d recv: %v", side, err)
						return
					}
					if !ok {
						break
					}
					recvd++
				}
			}
			for recvd < count {
				if _, err := ms[side].Recv(); err != nil {
					t.Errorf("side %d recv: %v", side, err)
					return
				}
				recvd++
			}
		}()
	}
	wg.Wait()
}

func TestMessengerAllToAll(t *testing.T) {
	const n = 4
	ms := newMessengers(t, n, sonuma.MessengerConfig{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				if err := ms[i].Send(j, []byte(fmt.Sprintf("from-%d", i))); err != nil {
					t.Errorf("send %d->%d: %v", i, j, err)
					return
				}
			}
			seen := map[int]bool{}
			for len(seen) < n-1 {
				msg, err := ms[i].Recv()
				if err != nil {
					t.Errorf("recv at %d: %v", i, err)
					return
				}
				if want := fmt.Sprintf("from-%d", msg.From); string(msg.Data) != want {
					t.Errorf("node %d: payload %q from %d", i, msg.Data, msg.From)
					return
				}
				seen[msg.From] = true
			}
		}()
	}
	wg.Wait()
}

func TestMessengerAlwaysPushRejectsHuge(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{RingSlots: 8, Threshold: sonuma.ThresholdAlwaysPush})
	err := ms[0].Send(1, make([]byte, 10*1024))
	if err == nil {
		t.Fatal("expected ErrMessageTooLarge")
	}
}

func TestMessengerEmptyMessage(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{})
	done := make(chan error, 1)
	go func() {
		msg, err := ms[1].Recv()
		if err == nil && len(msg.Data) != 0 {
			err = fmt.Errorf("got %d bytes, want 0", len(msg.Data))
		}
		done <- err
	}()
	if err := ms[0].Send(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const n = 4
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	parts := []int{0, 1, 2, 3}
	barriers := make([]*sonuma.Barrier, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(9, sonuma.BarrierRegionSize(n)+4096)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ctx.NewQP(16)
		if err != nil {
			t.Fatal(err)
		}
		if barriers[i], err = sonuma.NewBarrier(ctx, qp, 0, parts); err != nil {
			t.Fatal(err)
		}
	}
	// A shared counter checked against barrier rounds: if any node runs
	// ahead through the barrier, it observes a stale counter.
	var mu sync.Mutex
	arrived := make([]int, n)
	const rounds = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				mu.Lock()
				arrived[i] = r
				mu.Unlock()
				if err := barriers[i].Wait(); err != nil {
					t.Errorf("node %d round %d: %v", i, r, err)
					return
				}
				mu.Lock()
				for j, a := range arrived {
					if a < r {
						t.Errorf("node %d passed barrier round %d before node %d arrived (at %d)", i, r, j, a)
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}
