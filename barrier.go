package sonuma

import (
	"fmt"
	"sort"

	"sonuma/internal/core"
)

// Barrier is the synchronization half of the §5.3 library: "Each
// participating node broadcasts the arrival at a barrier by issuing a write
// to an agreed upon offset on each of its peers. The nodes then poll locally
// until all of them reach the barrier."
//
// The barrier region occupies one cache line per participant at the same
// offset in every participant's context segment; participant i announces
// round r by remotely writing r into line i of every peer. Like the
// messenger, a Barrier must be driven by the single goroutine owning its QP.
type Barrier struct {
	ctx     *Context
	qp      *QP
	off     int
	parts   []int
	myIdx   int
	round   uint64
	scratch *Buffer
}

// BarrierRegionSize reports the context-segment bytes a barrier over n
// participants occupies at its region offset.
func BarrierRegionSize(n int) int { return n * core.CacheLineSize }

// NewBarrier creates a barrier over the given participant node ids (which
// must include this context's node and be identical, as a set, on every
// participant). regionOffset locates the barrier lines within each
// participant's segment.
func NewBarrier(ctx *Context, qp *QP, regionOffset int, participants []int) (*Barrier, error) {
	parts := append([]int(nil), participants...)
	sort.Ints(parts)
	myIdx := -1
	for i, p := range parts {
		if i > 0 && parts[i-1] == p {
			return nil, fmt.Errorf("sonuma: duplicate barrier participant %d", p)
		}
		if p == ctx.NodeID() {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return nil, fmt.Errorf("sonuma: node %d not among barrier participants %v", ctx.NodeID(), parts)
	}
	if need := regionOffset + BarrierRegionSize(len(parts)); ctx.SegmentSize() < need {
		return nil, fmt.Errorf("sonuma: context segment %d bytes < %d required by barrier", ctx.SegmentSize(), need)
	}
	scratch, err := ctx.AllocBuffer(core.CacheLineSize)
	if err != nil {
		return nil, err
	}
	return &Barrier{ctx: ctx, qp: qp, off: regionOffset, parts: parts, myIdx: myIdx, scratch: scratch}, nil
}

// Round reports the number of completed barrier episodes.
func (b *Barrier) Round() uint64 { return b.round }

// Wait announces arrival to all peers and blocks until every participant
// has arrived at this round. A failed peer surfaces as a node-failure error.
func (b *Barrier) Wait() error {
	b.round++
	if err := b.scratch.Store64(0, b.round); err != nil {
		return err
	}
	myLine := uint64(b.off + b.myIdx*core.CacheLineSize)
	// Broadcast asynchronously: the writes to all peers overlap.
	var firstErr error
	for _, p := range b.parts {
		if p == b.ctx.NodeID() {
			if err := b.ctx.Memory().Store64(int(myLine), b.round); err != nil {
				return err
			}
			continue
		}
		_, err := b.qp.WriteAsync(p, myLine, b.scratch, 0, 8, func(_ int, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
		if err != nil {
			return err
		}
	}
	if err := b.qp.DrainCQ(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	// Poll locally until all peers have announced this round.
	mem := b.ctx.Memory()
	for _, i := range pollOrder(len(b.parts), b.myIdx) {
		lineOff := b.off + i*core.CacheLineSize
		for spin := 0; ; spin++ {
			v, err := mem.Load64(lineOff)
			if err != nil {
				return err
			}
			if v >= b.round {
				break
			}
			WaitYield(spin)
		}
	}
	return nil
}

// pollOrder starts polling at the participant after me so the common
// straggler (ourselves) is checked last.
func pollOrder(n, me int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = (me + 1 + i) % n
	}
	return order
}
