package sonuma

import (
	"errors"
	"fmt"

	"sonuma/internal/core"
	"sonuma/internal/emu"
	"sonuma/internal/qpring"
)

// ErrClusterClosed reports an operation against a cluster that has been
// closed while the operation was waiting.
var ErrClusterClosed = errors.New("sonuma: cluster closed")

// RemoteError is the error type delivered for remote operations that fail
// at the destination (bounds violations, missing contexts, alignment) or in
// the fabric (node failures). Use errors.As to inspect the Status.
type RemoteError = core.RemoteError

// Status values carried by RemoteError.
const (
	StatusOK          = core.StatusOK
	StatusBoundsError = core.StatusBoundsError
	StatusNoContext   = core.StatusNoContext
	StatusNodeFailure = core.StatusNodeFailure
	StatusBadAlign    = core.StatusBadAlign
)

// IsNodeFailure reports whether err is (or wraps) the StatusNodeFailure
// completion the RMC delivers when the fabric cannot reach the peer — the
// signal failover logic keys on, as distinct from application-level errors
// like bounds violations.
func IsNodeFailure(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Status == core.StatusNodeFailure
}

// Completion is the callback type of the asynchronous API, mirroring the
// callbacks of Fig. 4: it runs on the application goroutine, from inside
// WaitForSlot / Poll / DrainCQ / the synchronous operations, never
// concurrently with application code.
type Completion func(slot int, err error)

// QP is a queue pair: the application schedules remote memory operations on
// the work queue and collects their completions from the completion queue
// (§4.1). A QP must be driven by a single goroutine.
//
// The asynchronous API follows the paper's access library (§5.2):
// WaitForSlot processes CQ events until the head of the WQ is free and
// returns the freed slot; IssueRead/IssueWrite schedule the split operation;
// DrainCQ waits for all outstanding operations while running callbacks.
type QP struct {
	ctx         *Context
	st          *emu.QPState
	cbs         []Completion
	busy        []bool // slot in flight: set at post, cleared at completion
	scratch     *Buffer
	outstanding int
	spin        int

	// Reusable completion callbacks, so the synchronous operations and
	// batch waits allocate nothing in steady state.
	syncCb      Completion // records into syncDone/syncErr
	syncDone    bool
	syncErr     error
	syncActive  bool
	batchCb     Completion // counts down batchWait, records batchErr
	batchWait   int
	batchErr    error
	batchActive bool
}

// Depth reports the WQ capacity.
func (q *QP) Depth() int { return q.st.WQ.Cap() }

// Outstanding reports the number of operations issued but not yet completed.
func (q *QP) Outstanding() int { return q.outstanding }

// Context returns the owning context.
func (q *QP) Context() *Context { return q.ctx }

// WaitForSlot processes completion events (invoking their callbacks) until
// the head of the work queue is free, then registers cb for that slot and
// returns its index. This is rmc_wait_for_slot from Fig. 4. A slot is
// freed by processing its completion, not by the RMC consuming the entry:
// that per-slot discipline is the flow control that bounds outstanding
// operations to the queue depth (§4.1), and it is what guarantees the CQ —
// sized equal to the WQ — can never overflow.
func (q *QP) WaitForSlot(cb Completion) (int, error) {
	for {
		slot := int(q.st.WQ.NextSlot())
		if !q.busy[slot] && !q.st.WQ.Full() {
			q.cbs[slot] = cb
			return slot, nil
		}
		if err := q.processOne(true); err != nil {
			return 0, err
		}
	}
}

// post validates and enqueues a WQ entry at the pre-agreed slot.
func (q *QP) post(slot int, e qpring.WQEntry) error {
	if node := int(e.Node); node < 0 || node >= q.ctx.node.cluster.Nodes() {
		q.cbs[slot] = nil
		return fmt.Errorf("sonuma: node %d out of range [0,%d)", node, q.ctx.node.cluster.Nodes())
	}
	idx, ok := q.st.WQ.Post(e)
	if !ok {
		q.cbs[slot] = nil
		return errors.New("sonuma: work queue full; call WaitForSlot first")
	}
	if int(idx) != slot {
		panic(fmt.Sprintf("sonuma: WQ slot mismatch (expected %d, got %d): QP used concurrently?", slot, idx))
	}
	q.busy[slot] = true
	q.outstanding++
	q.st.Doorbell()
	return nil
}

// Entry constructors shared by the slot-at-a-time Issue* methods and the
// batched-issue API (batch.go), so the WQ encoding of every operation —
// including the Buf = ^uint32(0) "discard result" convention — lives in
// exactly one place.

// bufOpEntry builds the entry for a read/write-family op against a local
// buffer range.
func bufOpEntry(op core.Op, node int, offset uint64, buf *Buffer, bufOff, n int) (qpring.WQEntry, error) {
	if err := checkBuf(buf, bufOff, n); err != nil {
		return qpring.WQEntry{}, err
	}
	return qpring.WQEntry{
		Op: op, Node: core.NodeID(node), Offset: offset,
		Length: uint32(n), Buf: buf.id, BufOff: uint64(bufOff),
	}, nil
}

// atomicEntry builds the entry for an atomic; a nil buf discards the
// returned prior value.
func atomicEntry(op core.Op, node int, offset uint64, arg0, arg1 uint64, buf *Buffer, bufOff int) (qpring.WQEntry, error) {
	e := qpring.WQEntry{
		Op: op, Node: core.NodeID(node), Offset: offset,
		Length: 8, Arg0: arg0, Arg1: arg1, Buf: ^uint32(0),
	}
	if buf != nil {
		if err := checkBuf(buf, bufOff, 8); err != nil {
			return qpring.WQEntry{}, err
		}
		e.Buf, e.BufOff = buf.id, uint64(bufOff)
	}
	return e, nil
}

// issue posts a constructed entry (or surfaces its construction error) on
// the pre-agreed slot.
func (q *QP) issue(slot int, e qpring.WQEntry, err error) error {
	if err != nil {
		q.cbs[slot] = nil
		return err
	}
	return q.post(slot, e)
}

// IssueRead schedules a remote read of n bytes from (node, offset) into
// buf at bufOff, on a slot obtained from WaitForSlot.
func (q *QP) IssueRead(slot int, node int, offset uint64, buf *Buffer, bufOff int, n int) error {
	e, err := bufOpEntry(core.OpRead, node, offset, buf, bufOff, n)
	return q.issue(slot, e, err)
}

// IssueWrite schedules a remote write of n bytes from buf at bufOff to
// (node, offset).
func (q *QP) IssueWrite(slot int, node int, offset uint64, buf *Buffer, bufOff int, n int) error {
	e, err := bufOpEntry(core.OpWrite, node, offset, buf, bufOff, n)
	return q.issue(slot, e, err)
}

// IssueFetchAdd schedules an atomic fetch-and-add of delta on the 8-byte
// word at (node, offset). The previous value is stored into buf at bufOff
// when buf is non-nil.
func (q *QP) IssueFetchAdd(slot int, node int, offset uint64, delta uint64, buf *Buffer, bufOff int) error {
	e, err := atomicEntry(core.OpFetchAdd, node, offset, delta, 0, buf, bufOff)
	return q.issue(slot, e, err)
}

// IssueCompareSwap schedules an atomic compare-and-swap on the 8-byte word
// at (node, offset): if it equals expected it becomes newv. The previous
// value is stored into buf at bufOff when buf is non-nil.
func (q *QP) IssueCompareSwap(slot int, node int, offset uint64, expected, newv uint64, buf *Buffer, bufOff int) error {
	e, err := atomicEntry(core.OpCompareSwap, node, offset, expected, newv, buf, bufOff)
	return q.issue(slot, e, err)
}

func checkBuf(buf *Buffer, off, n int) error {
	if buf == nil {
		return errors.New("sonuma: nil buffer")
	}
	if n <= 0 || n > core.MaxRequestLen {
		return fmt.Errorf("sonuma: invalid length %d", n)
	}
	if off < 0 || off+n > buf.Size() {
		return fmt.Errorf("sonuma: range [%d,%d) outside %s", off, off+n, buf)
	}
	return nil
}

// ReadAsync is WaitForSlot + IssueRead: the Split-C-style non-blocking read
// of the access library (rmc_read_async). The callback runs when the data
// has landed in buf.
func (q *QP) ReadAsync(node int, offset uint64, buf *Buffer, bufOff int, n int, cb Completion) (int, error) {
	slot, err := q.WaitForSlot(cb)
	if err != nil {
		return 0, err
	}
	return slot, q.IssueRead(slot, node, offset, buf, bufOff, n)
}

// WriteAsync is WaitForSlot + IssueWrite (rmc_write_async).
func (q *QP) WriteAsync(node int, offset uint64, buf *Buffer, bufOff int, n int, cb Completion) (int, error) {
	slot, err := q.WaitForSlot(cb)
	if err != nil {
		return 0, err
	}
	return slot, q.IssueWrite(slot, node, offset, buf, bufOff, n)
}

// Poll processes all currently pending completions without blocking and
// reports how many were handled.
func (q *QP) Poll() int {
	n := 0
	for {
		e, ok := q.st.CQ.Poll()
		if !ok {
			return n
		}
		q.handle(e)
		n++
	}
}

// DrainCQ processes completions (running callbacks) until no operation
// remains outstanding — rmc_drain_cq from Fig. 4.
func (q *QP) DrainCQ() error {
	for q.outstanding > 0 {
		if err := q.processOne(true); err != nil {
			return err
		}
	}
	return nil
}

// processOne handles one completion; with block set it spin-polls the CQ
// (the paper's applications poll the completion queue) before parking on
// the doorbell.
func (q *QP) processOne(block bool) error {
	for {
		if e, ok := q.st.CQ.Poll(); ok {
			q.handle(e)
			return nil
		}
		if !block {
			return nil
		}
		q.spin++
		if q.spin < 64 {
			continue
		}
		q.spin = 0
		select {
		case <-q.st.CQDoorbell:
		case <-q.ctx.node.cluster.ic.Done():
			return ErrClusterClosed
		}
	}
}

func (q *QP) handle(e qpring.CQEntry) {
	slot := int(e.WQIndex)
	q.outstanding--
	q.busy[slot] = false
	cb := q.cbs[slot]
	q.cbs[slot] = nil
	if cb != nil {
		cb(slot, e.Status.Err())
	}
}

// execSync issues one operation and processes completions until it
// finishes, returning its status. Other outstanding async operations'
// callbacks run as a side effect, so synchronous and asynchronous use mix
// freely on one QP.
//
// The common (non-reentrant) case reuses the QP's preallocated completion
// callback, keeping synchronous operations allocation-free; a synchronous
// operation issued from inside a completion callback falls back to a fresh
// closure so the nested completion cannot clobber the outer one.
func (q *QP) execSync(issue func(slot int) error) error {
	if q.syncActive {
		var (
			opDone bool
			opErr  error
		)
		return q.execSyncCb(issue, &opDone, &opErr, func(_ int, err error) {
			opDone = true
			opErr = err
		})
	}
	q.syncActive = true
	defer func() { q.syncActive = false }()
	q.syncDone, q.syncErr = false, nil
	return q.execSyncCb(issue, &q.syncDone, &q.syncErr, q.syncCb)
}

func (q *QP) execSyncCb(issue func(slot int) error, done *bool, opErr *error, cb Completion) error {
	slot, err := q.WaitForSlot(cb)
	if err != nil {
		return err
	}
	if err := issue(slot); err != nil {
		return err
	}
	for !*done {
		if err := q.processOne(true); err != nil {
			return err
		}
	}
	return *opErr
}

// Read performs a blocking remote read of n bytes from (node, offset) into
// buf at bufOff (rmc_read_sync).
func (q *QP) Read(node int, offset uint64, buf *Buffer, bufOff int, n int) error {
	return q.execSync(func(slot int) error {
		return q.IssueRead(slot, node, offset, buf, bufOff, n)
	})
}

// Write performs a blocking remote write (rmc_write_sync).
func (q *QP) Write(node int, offset uint64, buf *Buffer, bufOff int, n int) error {
	return q.execSync(func(slot int) error {
		return q.IssueWrite(slot, node, offset, buf, bufOff, n)
	})
}

// FetchAdd atomically adds delta to the 8-byte word at (node, offset) and
// returns its previous value. The operation executes within the destination
// node's coherence domain, so it is atomic against that node's local
// accesses as well (§5.2, §7.4).
func (q *QP) FetchAdd(node int, offset uint64, delta uint64) (uint64, error) {
	err := q.execSync(func(slot int) error {
		return q.IssueFetchAdd(slot, node, offset, delta, q.scratch, 0)
	})
	if err != nil {
		return 0, err
	}
	return q.scratch.Load64(0)
}

// CompareSwap atomically replaces the 8-byte word at (node, offset) with
// newv if it equals expected, returning the previous value.
func (q *QP) CompareSwap(node int, offset uint64, expected, newv uint64) (uint64, error) {
	err := q.execSync(func(slot int) error {
		return q.IssueCompareSwap(slot, node, offset, expected, newv, q.scratch, 0)
	})
	if err != nil {
		return 0, err
	}
	return q.scratch.Load64(0)
}
