package sonuma_test

// One benchmark per table and figure of the paper's evaluation (§7), plus
// ablation benches over the RMC design choices and conventional per-op
// microbenchmarks of the development platform. The figure benches run the
// experiment harness in quick mode and report headline metrics through
// b.ReportMetric; `go run ./cmd/sonuma-bench` produces the full tables.

import (
	"strings"
	"testing"

	"sonuma"
	"sonuma/internal/bench"
)

var quick = bench.Options{Quick: true}

// logTables attaches the rendered tables to the benchmark output.
func logTables(b *testing.B, e bench.Experiment) {
	b.Helper()
	var sb strings.Builder
	for _, t := range e.Tables() {
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	b.Log("\n" + sb.String())
}

func BenchmarkFig1NetpipeTCP(b *testing.B) {
	var d bench.Fig1Data
	for i := 0; i < b.N; i++ {
		d = bench.Fig1(quick)
	}
	b.ReportMetric(d.SmallMsgLatencyUs(), "small-msg-us")
	b.ReportMetric(d.PeakGbps(), "peak-Gbps")
	logTables(b, d)
}

func BenchmarkTable1Params(b *testing.B) {
	var d bench.Table1Data
	for i := 0; i < b.N; i++ {
		d = bench.Table1(quick)
	}
	logTables(b, d)
}

func BenchmarkFig7aRemoteReadLatencySim(b *testing.B) {
	var d bench.Fig7Data
	for i := 0; i < b.N; i++ {
		d = bench.Fig7(quick)
	}
	b.ReportMetric(d.SingleLatNs[0], "64B-read-ns")
	b.ReportMetric(d.SingleLatNs[len(d.SingleLatNs)-1], "8KB-read-ns")
	logTables(b, d)
}

func BenchmarkFig7bRemoteReadBandwidthSim(b *testing.B) {
	var d bench.Fig7Data
	for i := 0; i < b.N; i++ {
		d = bench.Fig7(quick)
	}
	b.ReportMetric(d.SingleGBps[len(d.SingleGBps)-1], "8KB-GBps")
	b.ReportMetric(d.SingleMops[0], "64B-Mops")
}

func BenchmarkFig7cRemoteReadLatencyEmu(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		v, err := bench.EmuReadLatencyUs(64, 500)
		if err != nil {
			b.Fatal(err)
		}
		lat = v
	}
	b.ReportMetric(lat, "64B-read-us")
}

func BenchmarkFig8aSendRecvLatencySim(b *testing.B) {
	var d bench.Fig8Data
	for i := 0; i < b.N; i++ {
		d = bench.Fig8(quick)
	}
	b.ReportMetric(d.ComboLatNs[0], "64B-halfduplex-ns")
	logTables(b, d)
}

func BenchmarkFig8bSendRecvBandwidthSim(b *testing.B) {
	var d bench.Fig8Data
	for i := 0; i < b.N; i++ {
		d = bench.Fig8(quick)
	}
	b.ReportMetric(d.ComboGbps[len(d.ComboGbps)-1], "8KB-Gbps")
}

func BenchmarkFig8cSendRecvLatencyEmu(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		v, err := bench.EmuSendRecvLatencyUs(64, bench.EmuThreshold, 200)
		if err != nil {
			b.Fatal(err)
		}
		lat = v
	}
	b.ReportMetric(lat, "64B-halfduplex-us")
}

func BenchmarkTable2Comparison(b *testing.B) {
	var d bench.Table2Data
	for i := 0; i < b.N; i++ {
		d = bench.Table2(quick)
	}
	b.ReportMetric(d.SimReadRTTUs*1000, "sim-read-ns")
	b.ReportMetric(d.RDMAReadRTTUs*1000, "rdma-read-ns")
	b.ReportMetric(d.SimMops, "sim-Mops")
	logTables(b, d)
}

func BenchmarkFig9PageRank(b *testing.B) {
	var d bench.Fig9Data
	for i := 0; i < b.N; i++ {
		d = bench.Fig9(quick)
	}
	last := len(d.SimNodes) - 1
	b.ReportMetric(d.SimSHM[last], "shm-speedup-8n")
	b.ReportMetric(d.SimBulk[last], "bulk-speedup-8n")
	b.ReportMetric(d.SimFine[last], "fine-speedup-8n")
	logTables(b, d)
}

func BenchmarkAblationCTCache(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationCTCache(quick)
	}
	b.ReportMetric(d.Value[1]-d.Value[0], "ct$-saving-ns")
	logTables(b, d)
}

func BenchmarkAblationTLBSize(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationTLB(quick)
	}
	logTables(b, d)
}

func BenchmarkAblationMAQDepth(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationMAQ(quick)
	}
	logTables(b, d)
}

func BenchmarkAblationUnroll(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationUnroll(quick)
	}
	logTables(b, d)
}

func BenchmarkAblationTopology(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationTopology(quick)
	}
	logTables(b, d)
}

func BenchmarkAblationThreshold(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationThreshold(quick)
	}
	logTables(b, d)
}

func BenchmarkAblationPCIe(b *testing.B) {
	var d bench.AblationData
	for i := 0; i < b.N; i++ {
		d = bench.AblationPCIe(quick)
	}
	b.ReportMetric(d.Value[1]/d.Value[0], "pcie-slowdown-x")
	logTables(b, d)
}

// --- Conventional per-operation microbenchmarks (development platform) ---

func benchPair(b *testing.B) (*sonuma.QP, *sonuma.Buffer) {
	b.Helper()
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	c0, err := cl.Node(0).OpenContext(1, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cl.Node(1).OpenContext(1, 1<<20); err != nil {
		b.Fatal(err)
	}
	qp, err := c0.NewQP(128)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := c0.AllocBuffer(64 << 10)
	if err != nil {
		b.Fatal(err)
	}
	return qp, buf
}

func BenchmarkEmuRemoteReadSync64(b *testing.B) {
	qp, buf := benchPair(b)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := qp.Read(1, uint64((i*64)%(1<<19)), buf, 0, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmuRemoteReadSync4K(b *testing.B) {
	qp, buf := benchPair(b)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := qp.Read(1, uint64((i*4096)%(1<<19)), buf, 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmuRemoteReadAsync64(b *testing.B) {
	qp, buf := benchPair(b)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.ReadAsync(1, uint64((i*64)%(1<<19)), buf, (i%1024)*64, 64, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := qp.DrainCQ(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEmuRemoteWriteSync64(b *testing.B) {
	qp, buf := benchPair(b)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := qp.Write(1, uint64((i*64)%(1<<19)), buf, 0, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmuFetchAdd(b *testing.B) {
	qp, _ := benchPair(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qp.FetchAdd(1, 0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmuMessengerPingPong(b *testing.B) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cl.Close)
	mcfg := sonuma.MessengerConfig{}
	seg := sonuma.MessengerRegionSize(2, mcfg) + 4096
	var ms [2]*sonuma.Messenger
	for i := 0; i < 2; i++ {
		ctx, err := cl.Node(i).OpenContext(1, seg)
		if err != nil {
			b.Fatal(err)
		}
		qp, err := ctx.NewQP(64)
		if err != nil {
			b.Fatal(err)
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	go func() {
		for {
			m, err := ms[1].Recv()
			if err != nil {
				return
			}
			if err := ms[1].Send(0, m.Data); err != nil {
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	defer close(stop)
	msg := []byte("ping-pong-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ms[0].Send(1, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := ms[0].Recv(); err != nil {
			b.Fatal(err)
		}
	}
}
