package sonuma

import (
	"fmt"

	"sonuma/internal/core"
	"sonuma/internal/emu"
	"sonuma/internal/fabric"
	"sonuma/internal/proto"
)

// MaxBatchSize is the largest number of line transactions one fabric send
// carries; Config.BatchSize is clamped to [1, MaxBatchSize].
const MaxBatchSize = proto.MaxBatch

// TopologyKind selects the fabric topology of a cluster. The protocol layer
// is topology-agnostic (§3); the development platform emulates a full
// crossbar like the paper's, and tori are available for routing-sensitive
// experiments.
type TopologyKind int

const (
	// TopologyCrossbar is a full crossbar (the paper's simulated
	// configuration, §7.1).
	TopologyCrossbar TopologyKind = iota
	// TopologyTorus2D arranges nodes in a near-square 2D torus with
	// dimension-order routing.
	TopologyTorus2D
	// TopologyTorus3D arranges nodes in a near-cubic 3D torus.
	TopologyTorus3D
)

// Config configures a Cluster. The zero value of every field selects a
// sensible default; only Nodes is required.
type Config struct {
	// Nodes is the number of soNUMA nodes on the fabric (required).
	Nodes int
	// Topology selects the fabric topology (default crossbar).
	Topology TopologyKind
	// LinkCredits is the per-destination, per-virtual-lane credit count
	// of the fabric's flow control (default 64). One credit covers one
	// batch of up to BatchSize line packets.
	LinkCredits int
	// ITTEntries bounds in-flight WQ requests per node (default 1024,
	// max 4096).
	ITTEntries int
	// TLBEntries sizes each RMC's TLB (default 32, as in Table 1).
	TLBEntries int
	// PageSize is the context-segment page size (default 8 KB).
	PageSize int
	// BatchSize is the number of line transactions each RMC packs into
	// one fabric send (default MaxBatchSize, clamped to
	// [1, MaxBatchSize]). 1 selects the per-packet data path, kept for
	// ablation benchmarks.
	BatchSize int
}

// EffectiveBatchSize reports the batch size a cluster built with this
// configuration uses: BatchSize with the default and [1, MaxBatchSize]
// clamp applied. The benchmark harness records it next to measured
// results.
func (c Config) EffectiveBatchSize() int {
	if c.BatchSize <= 0 || c.BatchSize > MaxBatchSize {
		return MaxBatchSize
	}
	return c.BatchSize
}

// Cluster is an emulated soNUMA machine: Nodes() nodes, each with its own
// RMC, connected by a memory fabric. All nodes live in the calling process;
// the development platform's goal — like the paper's (§7.1, §8 "Lessons
// learned") — is running the full software stack at wall-clock speed.
type Cluster struct {
	cfg   Config
	ic    fabric.Transport
	nodes []*Node
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sonuma: Config.Nodes must be positive, got %d", cfg.Nodes)
	}
	if cfg.Nodes > 1<<12 {
		return nil, fmt.Errorf("sonuma: Config.Nodes %d exceeds fabric limit %d", cfg.Nodes, 1<<12)
	}
	var topo fabric.Topology
	switch cfg.Topology {
	case TopologyCrossbar:
		topo = fabric.NewCrossbar(cfg.Nodes)
	case TopologyTorus2D:
		w, h := rectangle(cfg.Nodes)
		topo = fabric.NewTorus2D(w, h)
	case TopologyTorus3D:
		x, y, z := box(cfg.Nodes)
		topo = fabric.NewTorus3D(x, y, z)
	default:
		return nil, fmt.Errorf("sonuma: unknown topology %d", cfg.Topology)
	}
	if topo.Nodes() != cfg.Nodes {
		return nil, fmt.Errorf("sonuma: %d nodes do not tile a %s", cfg.Nodes, topo.Name())
	}
	ic := fabric.NewInterconnect(topo, cfg.LinkCredits)
	c := &Cluster{cfg: cfg, ic: ic, nodes: make([]*Node, cfg.Nodes)}
	rcfg := emu.Config{
		ITTEntries: cfg.ITTEntries,
		TLBEntries: cfg.TLBEntries,
		PageSize:   cfg.PageSize,
		// Resolved here so EffectiveBatchSize is authoritative for
		// clusters built through the public API.
		BatchSize: cfg.EffectiveBatchSize(),
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes[i] = &Node{
			cluster: c,
			id:      core.NodeID(i),
			rmc:     emu.NewRMC(core.NodeID(i), ic, rcfg),
		}
	}
	return c, nil
}

// NewClusterWithTransport builds a cluster view over an externally
// constructed transport, hosting RMCs only for the listed local nodes —
// the multi-process mode, where each sonuma-node daemon (and the parent
// driving clients) hosts a subset of the fabric's endpoints. Node(i)
// returns nil for non-hosted nodes. The caller owns the transport's
// lifetime up to Close, which closes it along with the local RMCs.
func NewClusterWithTransport(cfg Config, tr fabric.Transport, local []int) (*Cluster, error) {
	n := tr.Nodes()
	if cfg.Nodes != 0 && cfg.Nodes != n {
		return nil, fmt.Errorf("sonuma: Config.Nodes %d does not match transport size %d", cfg.Nodes, n)
	}
	cfg.Nodes = n
	c := &Cluster{cfg: cfg, ic: tr, nodes: make([]*Node, n)}
	rcfg := emu.Config{
		ITTEntries: cfg.ITTEntries,
		TLBEntries: cfg.TLBEntries,
		PageSize:   cfg.PageSize,
		BatchSize:  cfg.EffectiveBatchSize(),
	}
	for _, i := range local {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("sonuma: local node %d out of range [0,%d)", i, n)
		}
		if c.nodes[i] != nil {
			return nil, fmt.Errorf("sonuma: local node %d listed twice", i)
		}
		c.nodes[i] = &Node{
			cluster: c,
			id:      core.NodeID(i),
			rmc:     emu.NewRMC(core.NodeID(i), tr, rcfg),
		}
	}
	return c, nil
}

// rectangle factors n into the most square w×h grid.
func rectangle(n int) (w, h int) {
	w = 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			w = d
		}
	}
	return n / w, w
}

// box factors n into the most cubic x×y×z grid.
func box(n int) (x, y, z int) {
	best := [3]int{n, 1, 1}
	bestSpread := n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			if spread := c - a; spread < bestSpread {
				bestSpread = spread
				best = [3]int{c, b, a}
			}
		}
	}
	return best[0], best[1], best[2]
}

// Nodes reports the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns the i-th node, or nil if this process does not host it
// (multi-process clusters host a subset; see NewClusterWithTransport).
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// FailNode injects a node failure: the node stops answering, in-flight
// operations targeting it complete with a node-failure error, and every
// RMC's driver failure callback fires (§5.1).
func (c *Cluster) FailNode(i int) { c.ic.FailNode(core.NodeID(i)) }

// RestoreNode brings a previously failed node back onto the fabric and
// fires every RMC's driver restore callback. The fabric restores only
// connectivity; whatever state the node missed while down is the
// application's problem (services run anti-entropy repair before
// re-admitting it — see internal/kvs).
func (c *Cluster) RestoreNode(i int) { c.ic.RestoreNode(core.NodeID(i)) }

// FailLink injects a bidirectional link failure between nodes a and b.
func (c *Cluster) FailLink(a, b int) { c.ic.FailLink(core.NodeID(a), core.NodeID(b)) }

// FailLinkDirected injects a one-way link failure: traffic a→b is dropped
// while b→a keeps flowing — the asymmetric-partition case where a node can
// be written to but cannot answer (or renew leases). RestoreLink repairs
// both directions.
func (c *Cluster) FailLinkDirected(a, b int) {
	c.ic.FailLinkDirected(core.NodeID(a), core.NodeID(b))
}

// RestoreLink repairs a previously failed link and fires every RMC's
// driver link-restore callback.
func (c *Cluster) RestoreLink(a, b int) { c.ic.RestoreLink(core.NodeID(a), core.NodeID(b)) }

// Reachable reports whether the fabric can currently carry traffic from
// node a to node b: both endpoints up and every link of the deterministic
// route healthy. Services consult it before re-admitting a peer, because a
// single link-restore event does not imply the whole route is back.
func (c *Cluster) Reachable(a, b int) bool {
	return c.ic.Reachable(core.NodeID(a), core.NodeID(b))
}

// Transport exposes the underlying fabric transport for instrumentation.
func (c *Cluster) Transport() fabric.Transport { return c.ic }

// Close shuts the fabric and all locally hosted RMC pipelines down.
// Outstanding operations are abandoned; Close blocks until all pipeline
// goroutines exit.
func (c *Cluster) Close() {
	c.ic.Close()
	for _, n := range c.nodes {
		if n != nil {
			n.rmc.Close()
		}
	}
}

// Node is one soNUMA node: a processor with local memory and an RMC
// integrated into its (emulated) coherence hierarchy.
type Node struct {
	cluster *Cluster
	id      core.NodeID
	rmc     *emu.RMC
}

// ID reports the node's fabric address.
func (n *Node) ID() int { return int(n.id) }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// OpenContext joins the global address space identified by ctxID — the
// driver path of §5.1 (open /dev/rmc_contexts/<ctx_id>, then register the
// context segment) — contributing segmentSize bytes of local memory as this
// node's partition.
func (n *Node) OpenContext(ctxID int, segmentSize int) (*Context, error) {
	if ctxID < 0 || ctxID > int(^core.CtxID(0)) {
		return nil, fmt.Errorf("sonuma: context id %d out of range", ctxID)
	}
	cs, err := n.rmc.OpenContext(core.CtxID(ctxID), segmentSize)
	if err != nil {
		return nil, err
	}
	return &Context{node: n, cs: cs}, nil
}

// OnFabricFailure registers a driver callback invoked when the fabric
// reports a failed node. Callbacks accumulate — a service (like the kvs
// store) and the application can each register one, and all of them run in
// registration order. The callback runs on an RMC pipeline goroutine and
// must not block.
func (n *Node) OnFabricFailure(fn func(failedNode int)) {
	n.rmc.OnFailure(func(id core.NodeID) { fn(int(id)) })
}

// OnLinkFailure registers a driver callback invoked when the fabric reports
// a failed link a↔b, after this node's RMC has flushed the in-flight
// operations the dead link stranded. Every node observes every link failure;
// services that care only about their own reachability filter on the
// endpoints. Like OnFabricFailure, callbacks accumulate and all run. The
// callback runs on an RMC pipeline goroutine and must not block; forward
// into a channel for real work.
func (n *Node) OnLinkFailure(fn func(a, b int)) {
	n.rmc.OnLinkFailure(func(a, b core.NodeID) { fn(int(a), int(b)) })
}

// OnFabricRestore registers a driver callback invoked when the fabric
// reports a previously failed node restored — the symmetric half of
// OnFabricFailure. The fabric guarantees connectivity only; services
// re-sync whatever state the node missed before re-admitting it. The
// callback runs on an RMC pipeline goroutine and must not block.
func (n *Node) OnFabricRestore(fn func(restoredNode int)) {
	n.rmc.OnRestore(func(id core.NodeID) { fn(int(id)) })
}

// OnLinkRestore registers a driver callback invoked when the fabric
// reports a restored link a↔b — the symmetric half of OnLinkFailure.
// Every node observes every link restore. Failure and restore events for
// one link are epoch-stamped by the fabric and delivered to callbacks in
// epoch order, so a racing Fail/Restore pair cannot leave a service
// believing the stale state. The callback runs on an RMC pipeline
// goroutine and must not block; forward into a channel for real work.
func (n *Node) OnLinkRestore(fn func(a, b int)) {
	n.rmc.OnLinkRestore(func(a, b core.NodeID) { fn(int(a), int(b)) })
}

// RMCStats snapshots the node's RMC counters.
func (n *Node) RMCStats() RMCStats {
	s := &n.rmc.Stats
	return RMCStats{
		WQConsumed:   s.WQConsumed.Load(),
		LinesSent:    s.LinesSent.Load(),
		BatchesSent:  s.BatchesSent.Load(),
		RepliesRecv:  s.RepliesRecv.Load(),
		RequestsRecv: s.RequestsRecv.Load(),
		Completions:  s.Completions.Load(),
		Errors:       s.Errors.Load(),
		TLBMisses:    s.TLBMisses.Load(),
	}
}

// RMCStats are point-in-time RMC pipeline counters.
type RMCStats struct {
	WQConsumed   uint64 // WQ entries accepted by the request generation pipeline
	LinesSent    uint64 // line-sized request packets injected into the fabric
	BatchesSent  uint64 // request batches flushed into the fabric
	RepliesRecv  uint64 // replies processed by the request completion pipeline
	RequestsRecv uint64 // requests processed by the remote request processing pipeline
	Completions  uint64 // CQ entries posted
	Errors       uint64 // completions with non-OK status
	TLBMisses    uint64 // RRPP translations that walked the page table
}
