module sonuma

go 1.24
