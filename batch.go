package sonuma

import (
	"errors"
	"fmt"

	"sonuma/internal/core"
	"sonuma/internal/qpring"
)

// errParallelSubmit reports a Batch re-entered while its own Submit was
// still in progress.
var errParallelSubmit = errors.New("sonuma: Batch reused while its Submit is in progress; use a fresh Batch in callbacks")

// Batch accumulates remote operations and issues them as one burst: the
// work-queue tail is published once per contiguous run (qpring.PostMany)
// and the RMC doorbell rings once, instead of once per operation. The RMC's
// request generation pipeline then observes the whole burst in a single
// scheduling pass and packs it into per-destination fabric batches, so an
// application handing the RMC k operations pays one wakeup rather than k.
//
// A Batch belongs to one QP and, like the QP, must be driven by a single
// goroutine. It is reusable: Submit and SubmitWait leave it empty.
type Batch struct {
	q          *QP
	ops        []qpring.WQEntry
	cbs        []Completion
	err        error
	slot       []int // scratch reused across submits
	submitting bool  // guards against reuse from a completion callback
}

// NewBatch returns an empty, reusable operation batch on q.
func (q *QP) NewBatch() *Batch { return &Batch{q: q} }

// Len reports the number of accumulated operations.
func (b *Batch) Len() int { return len(b.ops) }

// add stages one constructed operation (or records its construction
// error, poisoning the batch). Entry construction is shared with the
// slot-at-a-time Issue* methods (bufOpEntry / atomicEntry in qp.go).
func (b *Batch) add(e qpring.WQEntry, err error, cb Completion) {
	if b.err != nil {
		return
	}
	if err != nil {
		b.err = err
		return
	}
	if node := int(e.Node); node < 0 || node >= b.q.ctx.node.cluster.Nodes() {
		b.err = fmt.Errorf("sonuma: node %d out of range [0,%d)", node, b.q.ctx.node.cluster.Nodes())
		return
	}
	b.ops = append(b.ops, e)
	b.cbs = append(b.cbs, cb)
}

// Read stages a remote read of n bytes from (node, offset) into buf at
// bufOff. cb (optional) runs when the data has landed.
func (b *Batch) Read(node int, offset uint64, buf *Buffer, bufOff int, n int, cb Completion) {
	e, err := bufOpEntry(core.OpRead, node, offset, buf, bufOff, n)
	b.add(e, err, cb)
}

// Write stages a remote write of n bytes from buf at bufOff to
// (node, offset).
func (b *Batch) Write(node int, offset uint64, buf *Buffer, bufOff int, n int, cb Completion) {
	e, err := bufOpEntry(core.OpWrite, node, offset, buf, bufOff, n)
	b.add(e, err, cb)
}

// WriteNotify stages a remote write-with-notification.
func (b *Batch) WriteNotify(node int, offset uint64, buf *Buffer, bufOff int, n int, cb Completion) {
	e, err := bufOpEntry(core.OpWriteNotify, node, offset, buf, bufOff, n)
	b.add(e, err, cb)
}

// FetchAdd stages an atomic fetch-and-add; the previous value lands in buf
// at bufOff when buf is non-nil.
func (b *Batch) FetchAdd(node int, offset uint64, delta uint64, buf *Buffer, bufOff int, cb Completion) {
	e, err := atomicEntry(core.OpFetchAdd, node, offset, delta, 0, buf, bufOff)
	b.add(e, err, cb)
}

// CompareSwap stages an atomic compare-and-swap; the previous value lands
// in buf at bufOff when buf is non-nil.
func (b *Batch) CompareSwap(node int, offset uint64, expected, newv uint64, buf *Buffer, bufOff int, cb Completion) {
	e, err := atomicEntry(core.OpCompareSwap, node, offset, expected, newv, buf, bufOff)
	b.add(e, err, cb)
}

// reset empties the batch for reuse, keeping its backing storage.
func (b *Batch) reset() {
	b.ops = b.ops[:0]
	for i := range b.cbs {
		b.cbs[i] = nil
	}
	b.cbs = b.cbs[:0]
	b.err = nil
}

// Submit posts every staged operation, publishing the WQ tail once per
// contiguous run of free slots and ringing the RMC doorbell once per run
// (one run in the common case of a batch no larger than the queue's free
// depth). It returns the WQ slots used, in staging order; the returned
// slice is reused by the next Submit. If any staged operation failed
// validation, nothing is posted. The batch is left empty for reuse.
func (b *Batch) Submit() ([]int, error) {
	if b.submitting {
		// A completion callback running inside this Submit's wait loop
		// re-entered the same batch (e.g. two layers sharing one
		// Messenger). Posting would replay the outer call's staged
		// entries; fail loudly instead. A FRESH batch may be submitted
		// from a callback.
		return nil, errParallelSubmit
	}
	b.submitting = true
	defer func() { b.submitting = false }()
	defer b.reset()
	if b.err != nil {
		return nil, b.err
	}
	q := b.q
	wq := q.st.WQ
	b.slot = b.slot[:0]
	for i := 0; i < len(b.ops); {
		chunk := len(b.ops) - i
		if c := wq.Cap(); chunk > c {
			chunk = c
		}
		// Wait until the next chunk of slots is free: room in the ring
		// and every target slot's previous completion processed. The
		// check runs with no completion processing interleaved between
		// success and posting, so the staged slots stay valid.
		for {
			ready := wq.Room() >= chunk
			for k := 0; ready && k < chunk; k++ {
				if q.busy[wq.SlotAt(uint32(k))] {
					ready = false
				}
			}
			if ready {
				break
			}
			if err := q.processOne(true); err != nil {
				return b.slot, err
			}
		}
		for k := 0; k < chunk; k++ {
			slot := int(wq.SlotAt(uint32(k)))
			q.cbs[slot] = b.cbs[i+k]
			b.slot = append(b.slot, slot)
		}
		if n := wq.PostMany(b.ops[i : i+chunk]); n != chunk {
			panic(fmt.Sprintf("sonuma: batch posted %d of %d staged entries: QP used concurrently?", n, chunk))
		}
		for k := 0; k < chunk; k++ {
			q.busy[b.slot[len(b.slot)-chunk+k]] = true
		}
		q.outstanding += chunk
		q.st.Doorbell()
		i += chunk
	}
	return b.slot, nil
}

// SubmitWait submits the batch with a single doorbell and processes
// completions until every operation in it has finished, returning the
// first error among them. Operations staged without a callback use the
// QP's preallocated counting callback, so the common path (as used by the
// Messenger) allocates nothing. A SubmitWait issued from inside a
// completion callback falls back to fresh counters, so nesting cannot
// clobber the outer wait's error.
func (b *Batch) SubmitWait() error {
	q := b.q
	if q.batchActive {
		var (
			wait     int
			firstErr error
		)
		return b.submitWait(&wait, &firstErr, func(_ int, err error) {
			wait--
			if err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	q.batchActive = true
	defer func() { q.batchActive = false }()
	return b.submitWait(&q.batchWait, &q.batchErr, q.batchCb)
}

func (b *Batch) submitWait(wait *int, firstErr *error, cb Completion) error {
	q := b.q
	n := len(b.ops)
	if b.err != nil {
		defer b.reset()
		return b.err
	}
	for i := range b.cbs {
		if b.cbs[i] == nil {
			b.cbs[i] = cb
		} else {
			user := b.cbs[i]
			b.cbs[i] = func(slot int, err error) {
				cb(slot, err)
				user(slot, err)
			}
		}
	}
	*wait += n
	if _, err := b.Submit(); err != nil {
		return err
	}
	for *wait > 0 {
		if err := q.processOne(true); err != nil {
			return err
		}
	}
	err := *firstErr
	*firstErr = nil
	return err
}
