package sonuma_test

// Tests of the batched-issue API: many operations, one WQ publish, one
// doorbell.

import (
	"errors"
	"testing"

	"sonuma"
)

func TestBatchSubmitWait(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 3, sonuma.Config{})
	defer cl.Close()
	qp, buf := qps[0], bufs[0]

	// Seed distinct remote contents on nodes 1 and 2.
	if err := bufs[1].WriteAt(0, []byte("from-node-1!")); err != nil {
		t.Fatal(err)
	}
	if err := qps[1].Write(1, 100, bufs[1], 0, 12); err != nil {
		t.Fatal(err)
	}
	if err := bufs[2].WriteAt(0, []byte("from-node-2!")); err != nil {
		t.Fatal(err)
	}
	if err := qps[2].Write(2, 200, bufs[2], 0, 12); err != nil {
		t.Fatal(err)
	}

	// One batch mixing destinations and operations.
	b := qp.NewBatch()
	b.Read(1, 100, buf, 0, 12, nil)
	b.Read(2, 200, buf, 64, 12, nil)
	b.FetchAdd(1, 1024, 7, nil, 0, nil)
	if b.Len() != 3 {
		t.Fatalf("batch len %d, want 3", b.Len())
	}
	if err := b.SubmitWait(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if err := buf.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-node-1!" {
		t.Fatalf("batched read from node 1 = %q", got)
	}
	if err := buf.ReadAt(64, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "from-node-2!" {
		t.Fatalf("batched read from node 2 = %q", got)
	}
	if v, err := qp.FetchAdd(1, 1024, 0); err != nil || v != 7 {
		t.Fatalf("batched FetchAdd landed %d (err %v), want 7", v, err)
	}
	// The batch is reusable after SubmitWait.
	b.Read(1, 100, buf, 128, 12, nil)
	if err := b.SubmitWait(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchLargerThanQueue submits a batch deeper than the WQ; Submit must
// chunk it through the ring rather than fail or deadlock.
func TestBatchLargerThanQueue(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 2, sonuma.Config{})
	defer cl.Close()
	qp, buf := qps[0], bufs[0]
	depth := qp.Depth()
	n := depth*2 + 3
	b := qp.NewBatch()
	for i := 0; i < n; i++ {
		b.Read(1, uint64(i)*64, buf, i*64, 64, nil)
	}
	if err := b.SubmitWait(); err != nil {
		t.Fatal(err)
	}
	if qp.Outstanding() != 0 {
		t.Fatalf("outstanding %d after SubmitWait", qp.Outstanding())
	}
}

// TestBatchCallbacksAndSlots checks per-op callbacks run and Submit
// returns the slots used.
func TestBatchCallbacksAndSlots(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 2, sonuma.Config{})
	defer cl.Close()
	qp, buf := qps[0], bufs[0]
	ran := 0
	b := qp.NewBatch()
	for i := 0; i < 4; i++ {
		b.Read(1, 0, buf, i*64, 64, func(_ int, err error) {
			if err != nil {
				t.Errorf("callback error: %v", err)
			}
			ran++
		})
	}
	slots, err := b.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 4 {
		t.Fatalf("got %d slots, want 4", len(slots))
	}
	seen := map[int]bool{}
	for _, s := range slots {
		if seen[s] {
			t.Fatalf("duplicate slot %d", s)
		}
		seen[s] = true
	}
	if err := qp.DrainCQ(); err != nil {
		t.Fatal(err)
	}
	if ran != 4 {
		t.Fatalf("%d callbacks ran, want 4", ran)
	}
}

// TestBatchValidation checks staging errors surface at Submit and poison
// the whole batch.
func TestBatchValidation(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 2, sonuma.Config{})
	defer cl.Close()
	qp, buf := qps[0], bufs[0]
	b := qp.NewBatch()
	b.Read(1, 0, buf, 0, 64, nil)
	b.Read(99, 0, buf, 0, 64, nil) // node out of range
	if _, err := b.Submit(); err == nil {
		t.Fatal("Submit accepted an out-of-range node")
	}
	if qp.Outstanding() != 0 {
		t.Fatalf("poisoned batch posted %d operations", qp.Outstanding())
	}
	// Remote errors surface through SubmitWait.
	b.Read(1, faultSegSize*2, buf, 0, 64, nil) // out of segment bounds
	err := b.SubmitWait()
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusBoundsError {
		t.Fatalf("SubmitWait = %v, want StatusBoundsError", err)
	}
}

// TestBatchSubmitWaitNested issues a SubmitWait from inside a completion
// callback of an outer SubmitWait whose other operation fails. The nested
// wait must not consume or mask the outer batch's error.
func TestBatchSubmitWaitNested(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 2, sonuma.Config{})
	defer cl.Close()
	qp, buf := qps[0], bufs[0]
	nestedErr := errors.New("callback never ran")
	b := qp.NewBatch()
	b.Read(1, faultSegSize*2, buf, 0, 64, nil) // fails bounds check at destination
	b.Read(1, 0, buf, 0, 64, func(_ int, err error) {
		if err != nil {
			t.Errorf("healthy outer op failed: %v", err)
			return
		}
		inner := qp.NewBatch()
		inner.Read(1, 64, buf, 64, 64, nil)
		nestedErr = inner.SubmitWait()
	})
	err := b.SubmitWait()
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusBoundsError {
		t.Fatalf("outer SubmitWait = %v, want StatusBoundsError (nested wait must not mask it)", err)
	}
	if nestedErr != nil {
		t.Fatalf("nested SubmitWait = %v", nestedErr)
	}
}
