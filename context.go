package sonuma

import (
	"fmt"

	"sonuma/internal/core"
	"sonuma/internal/emu"
)

// Context is one node's view of a global virtual address space (§4.1): the
// local context segment this node contributes, plus the queue pairs and
// registered local buffers used to access the other nodes' partitions.
type Context struct {
	node *Node
	cs   *emu.ContextState
}

// Node returns the owning node.
func (c *Context) Node() *Node { return c.node }

// NodeID reports the owning node's fabric address.
func (c *Context) NodeID() int { return int(c.node.id) }

// CtxID reports the global context id.
func (c *Context) CtxID() int { return int(c.cs.ID) }

// SegmentSize reports the size of the local context segment in bytes.
func (c *Context) SegmentSize() int { return c.cs.Seg.Size() }

// Memory returns the local context segment. Threads on the owning node
// access it with ordinary loads and stores (the true-shared-memory half of
// the programming model, §5.2); remote nodes access it through QP
// operations.
func (c *Context) Memory() *Memory { return &Memory{seg: c.cs.Seg} }

// AllocBuffer registers a local buffer of size bytes for use as the source
// or destination of remote operations (§4.1's fourth abstraction). Buffers
// are pinned for the lifetime of the context.
func (c *Context) AllocBuffer(size int) (*Buffer, error) {
	id, seg, err := c.cs.RegisterBuffer(size)
	if err != nil {
		return nil, err
	}
	return &Buffer{Memory: Memory{seg: seg}, id: id}, nil
}

// NewQP registers a queue pair with the given work-queue depth (rounded up
// to a power of two; default 128 when depth <= 0). A QP must be driven by a
// single goroutine; multi-threaded applications register one QP per thread,
// as in the paper (§4.2: "Multi-threaded processes can register multiple
// QPs for the same address space and ctx id").
func (c *Context) NewQP(depth int) (*QP, error) {
	st, err := c.node.rmc.CreateQP(c.cs, depth)
	if err != nil {
		return nil, err
	}
	qp := &QP{
		ctx:  c,
		st:   st,
		cbs:  make([]Completion, st.WQ.Cap()),
		busy: make([]bool, st.WQ.Cap()),
	}
	// Preallocated completion callbacks keep the synchronous operations
	// and batch waits allocation-free in steady state.
	qp.syncCb = func(_ int, err error) {
		qp.syncDone = true
		qp.syncErr = err
	}
	qp.batchCb = func(_ int, err error) {
		qp.batchWait--
		if err != nil && qp.batchErr == nil {
			qp.batchErr = err
		}
	}
	// Dedicated scratch buffer for the synchronous atomics' return
	// values, so FetchAdd/CompareSwap need no caller-provided buffer.
	scratch, err := c.AllocBuffer(core.CacheLineSize)
	if err != nil {
		return nil, err
	}
	qp.scratch = scratch
	return qp, nil
}

// Memory is a registered memory region (context segment or local buffer).
// Reads and writes are validated against the paper's consistency model:
// accesses are torn-free at cache-line granularity and carry no ordering
// guarantees across lines.
type Memory struct {
	seg *emu.Segment
}

// Size reports the region size in bytes.
func (m *Memory) Size() int { return m.seg.Size() }

// WriteAt copies p into the region at offset off.
func (m *Memory) WriteAt(off int, p []byte) error { return m.seg.WriteAt(off, p) }

// ReadAt copies region bytes at offset off into p, retrying torn lines.
func (m *Memory) ReadAt(off int, p []byte) error { return m.seg.ReadAt(off, p) }

// Load64 atomically reads the 8-byte word at off (must be 8-byte aligned).
func (m *Memory) Load64(off int) (uint64, error) { return m.seg.Load64(off) }

// Store64 atomically writes the 8-byte word at off.
func (m *Memory) Store64(off int, v uint64) error { return m.seg.Store64(off, v) }

// FetchAdd64 performs a local atomic fetch-and-add on the region. Combined
// with remote atomics landing through the RMC, updates to the same word are
// globally atomic (§7.4).
func (m *Memory) FetchAdd64(off int, delta uint64) (uint64, error) {
	return m.seg.FetchAdd64(off, delta)
}

// LineVersion reports the modification version of the cache line containing
// off. Pollers (messaging receive, barriers) snapshot it and re-read after
// a change; every remote write or atomic to the line advances it by two.
func (m *Memory) LineVersion(off int) uint32 {
	return m.seg.LineVersion(off / core.CacheLineSize)
}

// Bytes exposes the raw backing store for zero-copy local access. Callers
// must not touch ranges that remote nodes may write concurrently, exactly
// as with real shared memory; use ReadAt for torn-free reads of shared
// lines.
func (m *Memory) Bytes() []byte { return m.seg.Bytes() }

// Buffer is a registered local buffer.
type Buffer struct {
	Memory
	id uint32
}

// ID reports the buffer's registration id within its context.
func (b *Buffer) ID() int { return int(b.id) }

// String identifies the buffer for diagnostics.
func (b *Buffer) String() string {
	return fmt.Sprintf("buffer(id=%d, size=%d)", b.id, b.Size())
}
