package sonuma_test

// Microbenchmarks of the batched, pooled RMC data path. All report allocs:
// the acceptance bar for the data path is zero allocations per steady-state
// remote read, and the 4KB batched read is measured against the per-packet
// (BatchSize=1) baseline it replaced.
//
// Run with: go test -bench 'DataPath|Messenger' -benchmem -run xxx .

import (
	"testing"

	"sonuma"
)

// benchCluster builds a 2-node cluster with a context, QP, and 1 MiB
// buffer on node 0 and a populated 4 MiB segment on node 1.
func benchCluster(b *testing.B, cfg sonuma.Config) (*sonuma.Cluster, *sonuma.QP, *sonuma.Buffer) {
	b.Helper()
	const segSize = 4 << 20
	cfg.Nodes = 2
	cl, err := sonuma.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := cl.Node(0).OpenContext(1, segSize)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cl.Node(1).OpenContext(1, segSize); err != nil {
		b.Fatal(err)
	}
	qp, err := ctx.NewQP(128)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := ctx.AllocBuffer(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	return cl, qp, buf
}

func benchRead(b *testing.B, cfg sonuma.Config, size int) {
	cl, qp, buf := benchCluster(b, cfg)
	defer cl.Close()
	// Warm the packet/batch pools and the RMC TLB before measuring.
	for i := 0; i < 100; i++ {
		if err := qp.Read(1, 0, buf, 0, size); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := qp.Read(1, 0, buf, 0, size); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataPathReadSingleLine is the paper's headline operation: one
// synchronous cache-line remote read (§7.2).
func BenchmarkDataPathReadSingleLine(b *testing.B) {
	benchRead(b, sonuma.Config{}, 64)
}

// BenchmarkDataPathRead4KBBatched reads 4KB (64 lines) over the batched
// data path: the RGP packs the unrolled lines into per-destination batches.
func BenchmarkDataPathRead4KBBatched(b *testing.B) {
	benchRead(b, sonuma.Config{}, 4096)
}

// BenchmarkDataPathRead4KBPerPacket is the pre-batching baseline: the same
// 4KB read with BatchSize 1, one fabric send per line.
func BenchmarkDataPathRead4KBPerPacket(b *testing.B) {
	benchRead(b, sonuma.Config{BatchSize: 1}, 4096)
}

// BenchmarkDataPathWrite4KBBatched is the write-side equivalent.
func BenchmarkDataPathWrite4KBBatched(b *testing.B) {
	cl, qp, buf := benchCluster(b, sonuma.Config{})
	defer cl.Close()
	for i := 0; i < 100; i++ {
		if err := qp.Write(1, 0, buf, 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := qp.Write(1, 0, buf, 0, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessengerSendRecv measures the messaging library (§5.3) over
// the batched data path: node 0 pushes 64-byte messages, node 1 receives.
func BenchmarkMessengerSendRecv(b *testing.B) {
	const segSize = 1 << 20
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	mcfg := sonuma.MessengerConfig{}
	var ms [2]*sonuma.Messenger
	for i := 0; i < 2; i++ {
		ctx, err := cl.Node(i).OpenContext(1, segSize)
		if err != nil {
			b.Fatal(err)
		}
		qp, err := ctx.NewQP(0)
		if err != nil {
			b.Fatal(err)
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			b.Fatal(err)
		}
	}
	done := make(chan error, 1)
	n := b.N
	go func() {
		for i := 0; i < n; i++ {
			if _, err := ms[1].Recv(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	msg := make([]byte, 64)
	b.ReportAllocs()
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < n; i++ {
		if err := ms[0].Send(1, msg); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
