package sonuma_test

import (
	"bytes"
	"testing"
	"time"

	"sonuma"
)

func TestWriteNotifyDeliversInterrupt(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<14)
	notes := c1.NotifyChan(8)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(256)
	payload := []byte("interrupt-driven message")
	_ = buf.WriteAt(0, payload)
	if err := qp.WriteNotify(1, 512, buf, 0, len(payload)); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-notes:
		if n.From != 0 || n.Offset != 512 || n.Bytes != len(payload) {
			t.Fatalf("notification %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification never arrived")
	}
	got := make([]byte, len(payload))
	_ = c1.Memory().ReadAt(512, got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

func TestWriteNotifyWithoutHandlerIsPlainWrite(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<14)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(64)
	_ = buf.WriteAt(0, []byte("quiet"))
	if err := qp.WriteNotify(1, 0, buf, 0, 5); err != nil {
		t.Fatalf("WriteNotify without handler: %v", err)
	}
	got := make([]byte, 5)
	_ = c1.Memory().ReadAt(0, got)
	if string(got) != "quiet" {
		t.Fatalf("payload %q", got)
	}
}

func TestNotifyHandlerReplaceAndRemove(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<14)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(64)
	hits := make(chan int, 16)
	c1.OnNotify(func(sonuma.Notification) { hits <- 1 })
	c1.OnNotify(func(sonuma.Notification) { hits <- 2 }) // replaces
	if err := qp.WriteNotify(1, 0, buf, 0, 8); err != nil {
		t.Fatal(err)
	}
	if got := <-hits; got != 2 {
		t.Fatalf("old handler fired (%d)", got)
	}
	c1.OnNotify(nil) // remove
	if err := qp.WriteNotify(1, 0, buf, 0, 8); err != nil {
		t.Fatal(err)
	}
	select {
	case <-hits:
		t.Fatal("removed handler fired")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestWriteNotifyMultiLineDoorbell(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<16)
	notes := c1.NotifyChan(8)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(8192)
	if err := qp.WriteNotify(1, 0, buf, 0, 8192); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-notes:
		if n.Bytes != 8192 || n.Offset != 0 {
			t.Fatalf("notification %+v", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("multi-line notification never arrived")
	}
	// Exactly one doorbell per request, not one per line.
	select {
	case <-notes:
		t.Fatal("multiple notifications for one request")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestNotifyWakesBlockedConsumer demonstrates communicating without polling
// (§8): the consumer blocks on the notification channel instead of spinning
// on memory.
func TestNotifyWakesBlockedConsumer(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<14)
	notes := c1.NotifyChan(1)
	done := make(chan string, 1)
	go func() {
		n := <-notes // blocked, no polling
		got := make([]byte, n.Bytes)
		_ = c1.Memory().ReadAt(int(n.Offset), got)
		done <- string(got)
	}()
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(64)
	_ = buf.WriteAt(0, []byte("wakeup"))
	if err := qp.WriteNotify(1, 64, buf, 0, 6); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "wakeup" {
			t.Fatalf("consumer read %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("consumer never woke")
	}
}
