package sonuma_test

import (
	"bytes"
	"errors"
	"testing"

	"sonuma"
	"sonuma/internal/stats"
)

func TestCompareSwap(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<14)
	if err := c1.Memory().Store64(0, 7); err != nil {
		t.Fatal(err)
	}
	qp, _ := c0.NewQP(16)
	old, err := qp.CompareSwap(1, 0, 7, 99)
	if err != nil || old != 7 {
		t.Fatalf("CAS hit: %d %v", old, err)
	}
	old, err = qp.CompareSwap(1, 0, 7, 123) // stale expected
	if err != nil || old != 99 {
		t.Fatalf("CAS miss returns current: %d %v", old, err)
	}
	v, _ := c1.Memory().Load64(0)
	if v != 99 {
		t.Fatalf("value after failed CAS: %d", v)
	}
}

func TestAtomicAlignmentRejected(t *testing.T) {
	_, c0, _ := newPair(t, 1<<14)
	qp, _ := c0.NewQP(16)
	//lint:ignore atomicmix deliberately unaligned: this test proves the RMC rejects it with StatusBadAlign
	_, err := qp.FetchAdd(1, 3, 1) //lint:ignore regionbounds same deliberate misalignment: the RMC must answer StatusBadAlign
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusBadAlign {
		t.Fatalf("unaligned FetchAdd: %v", err)
	}
}

func TestContextIsolation(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Two independent global address spaces over the same nodes.
	a0, _ := cl.Node(0).OpenContext(1, 4096)
	a1, _ := cl.Node(1).OpenContext(1, 4096)
	b0, _ := cl.Node(0).OpenContext(2, 4096)
	b1, _ := cl.Node(1).OpenContext(2, 4096)
	_ = a0
	if err := a1.Memory().WriteAt(0, []byte("ctx1 data")); err != nil {
		t.Fatal(err)
	}
	if err := b1.Memory().WriteAt(0, []byte("ctx2 data")); err != nil {
		t.Fatal(err)
	}
	qpA, _ := a0.NewQP(8)
	qpB, _ := b0.NewQP(8)
	bufA, _ := a0.AllocBuffer(64)
	bufB, _ := b0.AllocBuffer(64)
	if err := qpA.Read(1, 0, bufA, 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := qpB.Read(1, 0, bufB, 0, 9); err != nil {
		t.Fatal(err)
	}
	gotA, gotB := make([]byte, 9), make([]byte, 9)
	_ = bufA.ReadAt(0, gotA)
	_ = bufB.ReadAt(0, gotB)
	if string(gotA) != "ctx1 data" || string(gotB) != "ctx2 data" {
		t.Fatalf("contexts leaked: %q / %q", gotA, gotB)
	}
}

func TestMissingContextAtDestination(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c0, _ := cl.Node(0).OpenContext(5, 4096)
	// Node 1 never opens ctx 5.
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(64)
	err = qp.Read(1, 0, buf, 0, 64)
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNoContext {
		t.Fatalf("expected no-context error, got %v", err)
	}
}

func TestLinkFailureAndRestore(t *testing.T) {
	cl, c0, c1 := newPair(t, 1<<14)
	_ = c1
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(64)
	cl.FailLink(0, 1)
	err := qp.Read(1, 0, buf, 0, 64)
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("read over failed link: %v", err)
	}
	cl.RestoreLink(0, 1)
	if err := qp.Read(1, 0, buf, 0, 64); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
}

func TestDriverFailureNotification(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	notified := make(chan int, 1)
	cl.Node(0).OnFabricFailure(func(n int) {
		select {
		case notified <- n:
		default:
		}
	})
	cl.FailNode(2)
	if got := <-notified; got != 2 {
		t.Fatalf("driver notified of node %d, want 2", got)
	}
}

func TestTorusClusterEndToEnd(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 9, Topology: sonuma.TopologyTorus2D})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctxs := make([]*sonuma.Context, 9)
	for i := range ctxs {
		if ctxs[i], err = cl.Node(i).OpenContext(1, 8192); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctxs[8].Memory().WriteAt(0, []byte("far corner")); err != nil {
		t.Fatal(err)
	}
	qp, _ := ctxs[0].NewQP(8)
	buf, _ := ctxs[0].AllocBuffer(64)
	if err := qp.Read(8, 0, buf, 0, 10); err != nil {
		t.Fatalf("torus read: %v", err)
	}
	got := make([]byte, 10)
	_ = buf.ReadAt(0, got)
	if string(got) != "far corner" {
		t.Fatalf("read %q", got)
	}
}

func TestValidationErrors(t *testing.T) {
	_, c0, _ := newPair(t, 1<<14)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(128)
	if err := qp.Read(7, 0, buf, 0, 64); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := qp.Read(1, 0, buf, 0, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if err := qp.Read(1, 0, buf, 100, 64); err == nil {
		t.Fatal("buffer overflow accepted")
	}
	if err := qp.Read(1, 0, nil, 0, 64); err == nil {
		t.Fatal("nil buffer accepted")
	}
	// And the QP stays usable.
	if err := qp.Read(1, 0, buf, 0, 64); err != nil {
		t.Fatalf("valid op after rejections: %v", err)
	}
}

func TestBarrierSubsetOfCluster(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	parts := []int{1, 3, 4} // only three of five nodes participate
	barriers := map[int]*sonuma.Barrier{}
	for _, n := range parts {
		ctx, err := cl.Node(n).OpenContext(1, sonuma.BarrierRegionSize(len(parts))+4096)
		if err != nil {
			t.Fatal(err)
		}
		qp, _ := ctx.NewQP(8)
		if barriers[n], err = sonuma.NewBarrier(ctx, qp, 0, parts); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, len(parts))
	for _, n := range parts {
		n := n
		go func() {
			for r := 0; r < 5; r++ {
				if err := barriers[n].Wait(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for range parts {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFuzzAgainstShadowModel drives a long random sequence of reads and
// writes between two nodes and checks every result against a plain in-
// process shadow of the remote segment — the copy-semantics contract of the
// programming model.
func TestFuzzAgainstShadowModel(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<16)
	qp, _ := c0.NewQP(32)
	buf, _ := c0.AllocBuffer(1 << 12)
	shadow := make([]byte, 1<<16)
	rng := stats.NewRNG(2024)
	scratch := make([]byte, 1<<12)
	for i := 0; i < 600; i++ {
		off := rng.Intn(1 << 16)
		n := 1 + rng.Intn(1<<12)
		if off+n > 1<<16 {
			n = 1<<16 - off
		}
		if rng.Intn(2) == 0 {
			// Remote write of random bytes.
			for j := 0; j < n; j++ {
				scratch[j] = byte(rng.Uint64())
			}
			if err := buf.WriteAt(0, scratch[:n]); err != nil {
				t.Fatal(err)
			}
			if err := qp.Write(1, uint64(off), buf, 0, n); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}
			copy(shadow[off:off+n], scratch[:n])
		} else {
			if err := qp.Read(1, uint64(off), buf, 0, n); err != nil {
				t.Fatalf("op %d read: %v", i, err)
			}
			if err := buf.ReadAt(0, scratch[:n]); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(scratch[:n], shadow[off:off+n]) {
				t.Fatalf("op %d: read [%d,%d) diverged from shadow", i, off, off+n)
			}
		}
	}
	// Final sweep: the whole segment must match the shadow.
	final := make([]byte, 1<<16)
	if err := c1.Memory().ReadAt(0, final); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final, shadow) {
		t.Fatal("segment diverged from shadow model")
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := sonuma.NewCluster(sonuma.Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := sonuma.NewCluster(sonuma.Config{Nodes: -3}); err == nil {
		t.Fatal("negative nodes accepted")
	}
	if _, err := sonuma.NewCluster(sonuma.Config{Nodes: 2, Topology: sonuma.TopologyKind(99)}); err == nil {
		t.Fatal("bad topology accepted")
	}
}

func TestRMCStatsProgress(t *testing.T) {
	_, c0, _ := newPair(t, 1<<14)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(8192)
	if err := qp.Read(1, 0, buf, 0, 8192); err != nil {
		t.Fatal(err)
	}
	s := c0.Node().RMCStats()
	if s.WQConsumed != 1 || s.LinesSent != 128 || s.Completions != 1 || s.Errors != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestMemoryLineVersionPolling(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<14)
	mem := c1.Memory()
	v0 := mem.LineVersion(128)
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(64)
	_ = buf.WriteAt(0, []byte("poke"))
	if err := qp.Write(1, 128, buf, 0, 4); err != nil {
		t.Fatal(err)
	}
	if mem.LineVersion(128) == v0 {
		t.Fatal("remote write did not advance the line version")
	}
}
