package sonuma_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"sonuma"
)

// newPair builds a 2-node cluster with one context open on each node.
func newPair(t *testing.T, segSize int) (*sonuma.Cluster, *sonuma.Context, *sonuma.Context) {
	t.Helper()
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(cl.Close)
	c0, err := cl.Node(0).OpenContext(7, segSize)
	if err != nil {
		t.Fatalf("OpenContext node 0: %v", err)
	}
	c1, err := cl.Node(1).OpenContext(7, segSize)
	if err != nil {
		t.Fatalf("OpenContext node 1: %v", err)
	}
	return cl, c0, c1
}

func TestRemoteReadBasic(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<16)
	want := []byte("the RMC converts remote operations into stateless request/reply exchanges")
	if err := c1.Memory().WriteAt(128, want); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	qp, err := c0.NewQP(32)
	if err != nil {
		t.Fatalf("NewQP: %v", err)
	}
	buf, err := c0.AllocBuffer(256)
	if err != nil {
		t.Fatalf("AllocBuffer: %v", err)
	}
	if err := qp.Read(1, 128, buf, 0, len(want)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	got := make([]byte, len(want))
	if err := buf.ReadAt(0, got); err != nil {
		t.Fatalf("buffer ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote read mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestRemoteWriteBasic(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<16)
	qp, _ := c0.NewQP(32)
	buf, _ := c0.AllocBuffer(256)
	want := []byte("one-sided remote write with copy semantics")
	if err := buf.WriteAt(0, want); err != nil {
		t.Fatalf("buffer WriteAt: %v", err)
	}
	if err := qp.Write(1, 4096, buf, 0, len(want)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(want))
	if err := c1.Memory().ReadAt(4096, got); err != nil {
		t.Fatalf("segment ReadAt: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("remote write mismatch:\n got %q\nwant %q", got, want)
	}
}

func TestRemoteFetchAdd(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<16)
	if err := c1.Memory().Store64(64, 100); err != nil {
		t.Fatal(err)
	}
	qp, _ := c0.NewQP(32)
	old, err := qp.FetchAdd(1, 64, 42)
	if err != nil {
		t.Fatalf("FetchAdd: %v", err)
	}
	if old != 100 {
		t.Fatalf("FetchAdd returned %d, want 100", old)
	}
	v, _ := c1.Memory().Load64(64)
	if v != 142 {
		t.Fatalf("word after FetchAdd = %d, want 142", v)
	}
}

func TestBoundsErrorDeliveredViaCQ(t *testing.T) {
	_, c0, _ := newPair(t, 1<<12)
	qp, _ := c0.NewQP(32)
	buf, _ := c0.AllocBuffer(1 << 13)
	err := qp.Read(1, 1<<20, buf, 0, 64) // far outside node 1's segment
	var re *sonuma.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected RemoteError, got %v", err)
	}
	if re.Status != sonuma.StatusBoundsError {
		t.Fatalf("status = %v, want bounds error", re.Status)
	}
	// The QP must remain usable after an error completion.
	if err := qp.Read(1, 0, buf, 0, 64); err != nil {
		t.Fatalf("read after error: %v", err)
	}
}

func TestAsyncPipelining(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<20)
	mem := c1.Memory()
	for i := 0; i < 1024; i++ {
		if err := mem.Store64(i*8, uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	qp, _ := c0.NewQP(64)
	buf, _ := c0.AllocBuffer(8 * 1024)
	completed := 0
	for i := 0; i < 1024; i++ {
		i := i
		_, err := qp.ReadAsync(1, uint64(i*8), buf, i*8, 8, func(_ int, err error) {
			if err != nil {
				t.Errorf("async read %d: %v", i, err)
			}
			completed++
		})
		if err != nil {
			t.Fatalf("ReadAsync: %v", err)
		}
	}
	if err := qp.DrainCQ(); err != nil {
		t.Fatalf("DrainCQ: %v", err)
	}
	if completed != 1024 {
		t.Fatalf("completed = %d, want 1024", completed)
	}
	for i := 0; i < 1024; i++ {
		v, _ := buf.Load64(i * 8)
		if v != uint64(i)*3 {
			t.Fatalf("buf[%d] = %d, want %d", i, v, i*3)
		}
	}
}

func TestConcurrentAtomicsAreGloballyAtomic(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctxs := make([]*sonuma.Context, 4)
	for i := range ctxs {
		if ctxs[i], err = cl.Node(i).OpenContext(1, 4096); err != nil {
			t.Fatal(err)
		}
	}
	// All four nodes hammer one counter word on node 0, including node 0
	// itself through the loopback path; the local coherence hierarchy of
	// the destination must make all of them atomic.
	const perNode = 500
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		qp, err := ctxs[i].NewQP(16)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(qp *sonuma.QP) {
			defer wg.Done()
			for k := 0; k < perNode; k++ {
				if _, err := qp.FetchAdd(0, 0, 1); err != nil {
					t.Errorf("FetchAdd: %v", err)
					return
				}
			}
		}(qp)
	}
	wg.Wait()
	v, _ := ctxs[0].Memory().Load64(0)
	if v != 4*perNode {
		t.Fatalf("counter = %d, want %d", v, 4*perNode)
	}
}

func TestNodeFailureCompletesInFlight(t *testing.T) {
	cl, c0, _ := newPair(t, 1<<16)
	qp, _ := c0.NewQP(32)
	buf, _ := c0.AllocBuffer(4096)
	cl.FailNode(1)
	err := qp.Read(1, 0, buf, 0, 64)
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("expected node-failure error, got %v", err)
	}
}

func TestLargeTransferUnrolling(t *testing.T) {
	_, c0, c1 := newPair(t, 1<<20)
	payload := make([]byte, 300*1024+17) // odd size: exercises partial last line
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := c1.Memory().WriteAt(0, payload); err != nil {
		t.Fatal(err)
	}
	qp, _ := c0.NewQP(8)
	buf, _ := c0.AllocBuffer(len(payload))
	if err := qp.Read(1, 0, buf, 0, len(payload)); err != nil {
		t.Fatalf("large read: %v", err)
	}
	got := make([]byte, len(payload))
	if err := buf.ReadAt(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large transfer corrupted")
	}
	stats := c0.Node().RMCStats()
	wantLines := uint64((len(payload) + 63) / 64)
	if stats.LinesSent < wantLines {
		t.Fatalf("LinesSent = %d, want >= %d (unrolling)", stats.LinesSent, wantLines)
	}
}
