// Command sonuma-lint is the repo's domain-specific static analysis
// suite: nine analyzers that enforce the concurrency disciplines the
// one-sided data path depends on. Five are intra-package (seqlock
// balance, pooled-packet lifecycle, canonical epoch ordering, atomic
// access consistency, and sleep-backoff in polling loops); four are
// inter-procedural and share facts across package boundaries (region
// bounds/alignment of one-sided offsets, lock-acquisition ordering,
// codec byte-extent parity, and discarded errors from fallible
// callees). Packages are analyzed in dependency order so a package's
// exported facts are always available to its importers.
//
// Standalone:
//
//	go run ./cmd/sonuma-lint ./...            # whole tree
//	go run ./cmd/sonuma-lint -json - ./...    # machine-readable findings
//	go run ./cmd/sonuma-lint -github ./...    # GitHub per-file annotations
//	go run ./cmd/sonuma-lint -only spinloop,epochorder ./internal/kvs
//
// As a vet tool (unitchecker protocol — go vet drives the loading):
//
//	go build -o /tmp/sonuma-lint ./cmd/sonuma-lint
//	go vet -vettool=/tmp/sonuma-lint ./...
//
// Findings are suppressed in place with a reasoned directive:
//
//	//lint:ignore <analyzer> <reason>
//
// on (or directly above) the offending line. Directives without a reason
// are themselves findings, so suppressions stay documented.
//
// Exit status: 0 clean, 1 findings, 2 usage/internal error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/atomicmix"
	"sonuma/internal/lint/codecparity"
	"sonuma/internal/lint/epochorder"
	"sonuma/internal/lint/errdrop"
	"sonuma/internal/lint/lockorder"
	"sonuma/internal/lint/poollifecycle"
	"sonuma/internal/lint/regionbounds"
	"sonuma/internal/lint/seqlockbalance"
	"sonuma/internal/lint/spinloop"
)

// selfHash digests this executable; the digest doubles as the buildID the
// go command caches vet results under, so a rebuilt tool invalidates them.
func selfHash() []byte {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)
}

var all = []*analysis.Analyzer{
	seqlockbalance.Analyzer,
	poollifecycle.Analyzer,
	epochorder.Analyzer,
	atomicmix.Analyzer,
	spinloop.Analyzer,
	regionbounds.Analyzer,
	lockorder.Analyzer,
	codecparity.Analyzer,
	errdrop.Analyzer,
}

// knownNames is the full analyzer name set, used to validate
// //lint:ignore directives even under -only.
func knownNames() []string {
	names := make([]string, 0, len(all))
	for _, a := range all {
		names = append(names, a.Name)
	}
	return names
}

func main() {
	// go vet probes its -vettool with -V=full and -flags before handing
	// it unit .cfg files; serve that protocol when asked. The go command
	// parses a buildID out of the -V=full reply to key its vet cache, so
	// hash the executable the way x/tools' unitchecker does.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("sonuma-lint version devel comments-go-here buildID=%02x\n", selfHash())
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1], all))
	}

	jsonOut := flag.String("json", "", "write findings as JSON to this file ('-' for stdout)")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations")
	only := flag.String("only", "", "comma-separated analyzer subset to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sonuma-lint [flags] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "sonuma-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		os.Exit(2)
	}
	dirs, err := loader.PackageDirs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		os.Exit(2)
	}
	// Absolute paths throughout: SortDeps resolves module-internal
	// imports against the absolute module root, and the requested set
	// must key the same way.
	for i, dir := range dirs {
		if abs, err := filepath.Abs(dir); err == nil {
			dirs[i] = abs
		}
	}

	// Analyze the module-internal dependency closure in import order so
	// facts flow from dependencies to importers; report findings only for
	// the packages actually requested.
	order, err := loader.SortDeps(dirs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		os.Exit(2)
	}
	requested := map[string]bool{}
	for _, dir := range dirs {
		requested[dir] = true
	}
	store := analysis.NewFactStore()
	opts := &analysis.RunOptions{Known: knownNames(), Facts: store}

	var findings []analysis.Finding
	for _, dir := range order {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			os.Exit(2)
		}
		fs, facts, err := analysis.RunPackageFacts(pkg, analyzers, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			os.Exit(2)
		}
		store.Add(facts)
		if requested[dir] {
			findings = append(findings, fs...)
		}
	}
	analysis.SortFindings(findings)

	// Paths relative to the module root read better and keep JSON stable.
	for i := range findings {
		if rel, err := filepath.Rel(loader.ModRoot, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			os.Exit(2)
		}
	}
	for _, f := range findings {
		if *github {
			// One annotation per finding; GitHub surfaces these on the PR
			// files view.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=sonuma-lint/%s::%s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
