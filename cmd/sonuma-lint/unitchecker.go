package main

// The vet-tool half of sonuma-lint: `go vet -vettool=sonuma-lint` runs
// the tool once per package with a JSON .cfg describing the files and
// the export data of every dependency (go vet compiles dependencies and
// hands us their export files, so no source re-loading happens here —
// the mirror image of the standalone loader). Diagnostics print in the
// file:line:col form vet expects on stderr; the facts output file is
// written empty (these analyzers keep no cross-package facts).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"sonuma/internal/lint/analysis"
)

// vetConfig mirrors the fields of x/tools' unitchecker.Config that the
// go command populates.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// Always write the facts file first: the go command requires it to
	// exist even when the package has no findings.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports through the export data vet compiled for us.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "sonuma-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	findings, err := analysis.RunPackage(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2 // vet reports tool exit 2 as "issues found"
	}
	return 0
}
