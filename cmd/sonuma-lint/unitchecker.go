package main

// The vet-tool half of sonuma-lint: `go vet -vettool=sonuma-lint` runs
// the tool once per package with a JSON .cfg describing the files and
// the export data of every dependency (go vet compiles dependencies and
// hands us their export files, so no source re-loading happens here —
// the mirror image of the standalone loader). Diagnostics print in the
// file:line:col form vet expects on stderr.
//
// Facts ride the protocol's .vetx files: PackageVetx maps each
// dependency's import path to the facts blob a previous unit wrote, and
// VetxOutput is where this unit's exported facts go. The go command
// orders units dependencies-first and keys the files by the buildID we
// report to -V=full, so cross-package facts get correct scheduling and
// cache invalidation for free. Packages outside this module get an
// empty facts blob and no analysis — the disciplines are sonuma's, not
// the stdlib's.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"sonuma/internal/lint/analysis"
)

// vetConfig mirrors the fields of x/tools' unitchecker.Config that the
// go command populates.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The module's own packages are the only ones whose facts (and
	// findings) matter; for everything else satisfy the protocol with an
	// empty facts blob and move on.
	if !moduleInternal(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			empty, err := analysis.EncodeFacts(&analysis.PackageFacts{Path: cfg.ImportPath})
			if err != nil {
				fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
				return 2
			}
			if err := os.WriteFile(cfg.VetxOutput, empty, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
				return 2
			}
		}
		return 0
	}

	// Load the facts every dependency unit exported before us. Only
	// module-internal packages contribute: go vet hands us vetx files
	// for stdlib deps too (we wrote them empty), and loading those would
	// make "has facts" mean something different here than in the
	// standalone driver, where the store is the analyzed-closure marker
	// errdrop keys off.
	store := analysis.NewFactStore()
	for path, file := range cfg.PackageVetx {
		if !moduleInternal(path) {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			continue // missing dep facts degrade to "no facts"
		}
		pf, err := analysis.DecodeFacts(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %s: %v\n", file, err)
			return 2
		}
		pf.Path = path // key by the import path this unit resolves
		store.Add(pf)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	// Resolve imports through the export data vet compiled for us.
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	writeFacts := func(pf *analysis.PackageFacts) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		data, err := analysis.EncodeFacts(pf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			return false
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
			return false
		}
		return true
	}

	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// The go command still expects the facts file to exist.
			if !writeFacts(&analysis.PackageFacts{Path: cfg.ImportPath}) {
				return 2
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "sonuma-lint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	findings, facts, err := analysis.RunPackageFacts(pkg, analyzers, &analysis.RunOptions{
		Known: knownNames(),
		Facts: store,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sonuma-lint: %v\n", err)
		return 2
	}
	if !writeFacts(facts) {
		return 2
	}
	if cfg.VetxOnly {
		// Dependency unit: the analysis ran only to produce facts;
		// findings belong to the unit that names this package on the
		// command line.
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2 // vet reports tool exit 2 as "issues found"
	}
	return 0
}

// moduleInternal reports whether an import path (possibly a test
// variant like "sonuma/internal/kvs [sonuma/internal/kvs.test]") names a
// package of this module.
func moduleInternal(importPath string) bool {
	base := importPath
	if i := strings.IndexByte(base, ' '); i >= 0 {
		base = base[:i]
	}
	base = strings.TrimSuffix(base, "_test")
	return base == modulePath || strings.HasPrefix(base, modulePath+"/")
}

// modulePath is this repo's module path; the unitchecker only analyzes
// packages beneath it.
const modulePath = "sonuma"
