// Command sonuma-bench regenerates the tables and figures of the Scale-Out
// NUMA paper's evaluation (§7) from this repository's two platforms: the
// cycle-level hardware model and the wall-clock development platform.
//
// Usage:
//
//	sonuma-bench -experiment all
//	sonuma-bench -experiment fig7 -quick
//	sonuma-bench -experiment table2
//	sonuma-bench -experiment datapath -json BENCH.json
//	sonuma-bench -experiment kvs -json KVS.json
//
// Experiments: fig1, table1, fig7, fig8, fig9, table2, ablation, datapath,
// kvs, all.
//
// The datapath experiment measures the batched RMC pipeline (ops/sec,
// p50/p99 latency, allocs/op). The kvs experiment drives the sharded
// one-sided KV service with a YCSB-style mixed load (A/B/C read-write
// mixes, zipfian and uniform key distributions), a kill-a-primary
// failover run, a heal run, an asymmetric-partition run, and two
// coordinator-kill runs (the epoch authority fully partitioned, and
// node-failed) reporting failover-ms and stalled-write counts for the
// deterministic succession. For both, -json additionally writes the
// results in machine-readable form so successive changes can be
// compared; with -experiment all the datapath results win the file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sonuma/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig1|table1|fig7|fig8|fig9|table2|ablation|datapath|kvs|all")
		quick      = flag.Bool("quick", false, "reduced sweeps and op counts")
		jsonOut    = flag.String("json", "", "write datapath/kvs results to this file as JSON (e.g. BENCH.json)")
		skew       = flag.Bool("skew", false, "with -experiment kvs: run the skew-serving ablation (replica spread, hot-key cache, rebalancing) instead of the standard kvs suite")
		transport  = flag.String("transport", "chan", "with -experiment kvs: chan (in-process lanes) or proc (store members in sonuma-node daemon processes over the socket fabric)")
		seed       = flag.Uint64("seed", 0, "seed for randomized choices (key pickers, fault runs); 0 = fixed default; printed with results so failing partition schedules are reproducible")
	)
	flag.Parse()
	o := bench.Options{Quick: *quick, Seed: *seed}
	w := os.Stdout

	run := func(name string, f func()) {
		fmt.Fprintf(w, "==> %s\n", name)
		start := time.Now()
		f()
		fmt.Fprintf(w, "(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	ran := false
	want := func(name string) bool {
		if *experiment == "all" || *experiment == name {
			ran = true
			return true
		}
		return false
	}
	if want("fig1") {
		run("Figure 1 (netpipe TCP/IP baseline)", func() { bench.Print(w, bench.Fig1(o)) })
	}
	if want("table1") {
		run("Table 1 (system parameters)", func() { bench.Print(w, bench.Table1(o)) })
	}
	if want("fig7") {
		run("Figure 7 (remote reads)", func() { bench.Print(w, bench.Fig7(o)) })
	}
	if want("fig8") {
		run("Figure 8 (send/receive)", func() { bench.Print(w, bench.Fig8(o)) })
	}
	if want("table2") {
		run("Table 2 (soNUMA vs RDMA/IB)", func() { bench.Print(w, bench.Table2(o)) })
	}
	if want("fig9") {
		run("Figure 9 (PageRank)", func() { bench.Print(w, bench.Fig9(o)) })
	}
	if want("ablation") {
		run("Ablations (RMC design choices)", func() {
			for _, a := range bench.Ablations(o) {
				bench.Print(w, a)
			}
		})
	}
	if want("kvs") && *skew {
		run("KV skew ablation (replica spread / hot-key cache / rebalance)", func() {
			d, err := bench.KVSSkew(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kvs -skew: %v\nreproduce with -seed (see error above for the run's seed)\n", err)
				os.Exit(1)
			}
			bench.Print(w, d)
			if *jsonOut != "" {
				if err := d.WriteJSON(*jsonOut); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *jsonOut)
			}
		})
	} else if want("kvs") && *transport == "proc" {
		run("Sharded KV service, multi-process (YCSB-style mixes + failover + coordinator SIGKILL)", func() {
			d, err := bench.KVSProc(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kvs -transport proc: %v\nreproduce with -seed (see error above for the run's seed)\n", err)
				os.Exit(1)
			}
			bench.Print(w, d)
			if *jsonOut != "" {
				if err := d.WriteJSON(*jsonOut); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *jsonOut)
			}
		})
	} else if want("kvs") {
		run("Sharded KV service (YCSB-style mixes + failover)", func() {
			d, err := bench.KVS(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kvs: %v\nreproduce with -seed (see error above for the run's seed)\n", err)
				os.Exit(1)
			}
			bench.Print(w, d)
			if *jsonOut != "" && *experiment == "kvs" {
				if err := d.WriteJSON(*jsonOut); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *jsonOut)
			}
		})
	}
	if want("datapath") {
		run("Data path (batched RMC pipeline)", func() {
			d, err := bench.DataPath(o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "datapath: %v\n", err)
				os.Exit(1)
			}
			bench.Print(w, d)
			if *jsonOut != "" {
				if err := d.WriteJSON(*jsonOut); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
					os.Exit(1)
				}
				fmt.Fprintf(w, "wrote %s\n", *jsonOut)
			}
		})
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}
