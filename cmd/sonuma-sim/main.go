// Command sonuma-sim runs one cycle-level microbenchmark with custom
// parameters — the exploration tool for the hardware model.
//
// Examples:
//
//	sonuma-sim -bench readlat  -size 64   -double
//	sonuma-sim -bench readbw   -size 8192 -maq 16
//	sonuma-sim -bench sendrecv -size 512  -threshold 256
//	sonuma-sim -bench readlat  -topology torus2d -nodes 64 -dst 36
package main

import (
	"flag"
	"fmt"
	"os"

	"sonuma/internal/fabric"
	"sonuma/internal/sim"
	"sonuma/internal/simhw"
)

func main() {
	var (
		benchName = flag.String("bench", "readlat", "readlat|writelat|readbw|atomic|iops|sendrecv|sendbw")
		size      = flag.Int("size", 64, "request/message size in bytes")
		double    = flag.Bool("double", false, "double-sided (both nodes active)")
		ops       = flag.Int("ops", 200, "measured operations")
		threshold = flag.Int("threshold", 256, "messaging threshold (-1 push, 0 pull)")
		maq       = flag.Int("maq", 0, "override MAQ entries")
		tlb       = flag.Int("tlb", 0, "override TLB entries")
		itt       = flag.Int("itt", 0, "override ITT entries")
		wq        = flag.Int("wq", 0, "override WQ depth (async window)")
		linkNs    = flag.Int("link", 0, "override inter-node delay (ns)")
		noCTC     = flag.Bool("no-ctcache", false, "disable the CT$")
		topology  = flag.String("topology", "crossbar", "crossbar|torus2d|torus3d")
		nodes     = flag.Int("nodes", 2, "node count (topology benches)")
		dst       = flag.Int("dst", 1, "destination node (topology benches)")
		stride    = flag.Int("stride", 0, "remote offset stride (0 = sequential)")
	)
	flag.Parse()

	p := simhw.DefaultParams()
	if *maq > 0 {
		p.MAQEntries = *maq
		p.L1.MSHRs = *maq
	}
	if *tlb > 0 {
		p.TLBEntries = *tlb
	}
	if *itt > 0 {
		p.ITTEntries = *itt
	}
	if *wq > 0 {
		p.WQDepth = *wq
	}
	if *linkNs > 0 {
		p.LinkDelay = sim.Time(*linkNs) * sim.Nanosecond
	}
	if *noCTC {
		p.CTCache = false
	}

	var topo fabric.Topology
	switch *topology {
	case "crossbar":
		topo = fabric.NewCrossbar(*nodes)
	case "torus2d":
		w := 1
		for d := 1; d*d <= *nodes; d++ {
			if *nodes%d == 0 {
				w = d
			}
		}
		topo = fabric.NewTorus2D(*nodes/w, w)
	case "torus3d":
		topo = fabric.NewTorus3D(4, 4, (*nodes+15)/16)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}

	switch *benchName {
	case "readlat", "writelat":
		if *topology != "crossbar" || *nodes != 2 || *stride != 0 {
			r := simhw.ReadLatencyWith(p, *size, simhw.LatencyOpts{
				Topo: topo, Src: 0, Dst: *dst, Ops: *ops, Stride: *stride,
			})
			fmt.Printf("read latency %s -> node %d on %s: mean %.1f ns (p99 %.1f ns, %d ops)\n",
				fmtBytes(*size), *dst, topo.Name(), r.MeanNs, r.P99Ns, r.Samples)
			return
		}
		var r simhw.LatencyResult
		if *benchName == "readlat" {
			r = simhw.ReadLatency(p, *size, *double, *ops)
		} else {
			r = simhw.WriteLatency(p, *size, *double, *ops)
		}
		fmt.Printf("%s %s double=%v: mean %.1f ns (p99 %.1f ns, %d ops)\n",
			*benchName, fmtBytes(*size), *double, r.MeanNs, r.P99Ns, r.Samples)
	case "readbw":
		r := simhw.ReadBandwidth(p, *size, *double, *ops**size)
		fmt.Printf("read bandwidth %s double=%v: %.2f GB/s (%.1f Gbps, %.2f Mops/s)\n",
			fmtBytes(*size), *double, r.GBps, r.Gbps, r.MopsPerS)
	case "atomic":
		r := simhw.AtomicLatency(p, *ops)
		fmt.Printf("fetch-and-add: mean %.1f ns (p99 %.1f ns)\n", r.MeanNs, r.P99Ns)
	case "iops":
		fmt.Printf("single-core remote op rate: %.2f Mops/s\n", simhw.IOPS(p, *ops)/1e6)
	case "sendrecv":
		r := simhw.SendRecvLatency(p, *size, *threshold, *ops)
		fmt.Printf("send/recv half-duplex %s threshold=%d: mean %.1f ns\n", fmtBytes(*size), *threshold, r.MeanNs)
	case "sendbw":
		r := simhw.SendRecvBandwidth(p, *size, *threshold, *ops)
		fmt.Printf("send/recv streaming %s threshold=%d: %.2f Gbps\n", fmtBytes(*size), *threshold, r.Gbps)
	default:
		fmt.Fprintf(os.Stderr, "unknown bench %q\n", *benchName)
		os.Exit(2)
	}
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
