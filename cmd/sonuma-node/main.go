// Command sonuma-node hosts one emulated soNUMA node in its own OS
// process: a ProcFabric endpoint, the node's RMC pipelines, and
// (optionally) a kvs store partition. A driving process — sonuma-bench
// in -transport proc mode, or the proc chaos tests — spawns one daemon
// per member node, talks soNUMA to it over the fabric sockets, and
// drives fault schedules through the control socket. Because the daemon
// is a real process, SIGKILL is a real crash: its memory is gone, its
// sockets drop mid-frame, and recovery must run the actual rejoin path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sonuma"
	"sonuma/internal/fabric"
	"sonuma/internal/kvs"
)

// kvsCtxID is the context id the kvs service runs on in multi-process
// clusters; every process (daemon or driver) must use the same id.
const kvsCtxID = 3

func main() {
	var (
		id           = flag.Int("id", -1, "fabric node id this daemon hosts")
		nodes        = flag.Int("nodes", 0, "total fabric size across all processes")
		dir          = flag.String("dir", "", "socket directory shared by the cluster")
		credits      = flag.Int("credits", 0, "per-flow credit window (0 = default)")
		kvsPath      = flag.String("kvs", "", "path to a kvs.Config JSON file (empty = bare RMC node)")
		readyTimeout = flag.Duration("ready-timeout", 10*time.Second, "time to wait for fabric peers before proceeding")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("sonuma-node[n%d] ", *id))
	log.SetFlags(log.Lmicroseconds)
	if err := run(*id, *nodes, *dir, *credits, *kvsPath, *readyTimeout); err != nil {
		log.Fatal(err)
	}
}

func run(id, nodes int, dir string, credits int, kvsPath string, readyTimeout time.Duration) error {
	if id < 0 || nodes <= 0 || id >= nodes {
		return fmt.Errorf("need -id in [0,%d) and positive -nodes", nodes)
	}
	if dir == "" {
		return fmt.Errorf("need -dir (the cluster's shared socket directory)")
	}
	pf, err := fabric.NewProcFabric(fabric.ProcConfig{
		Nodes:   nodes,
		Local:   []int{id},
		Dir:     dir,
		Credits: credits,
	})
	if err != nil {
		return err
	}
	cl, err := sonuma.NewClusterWithTransport(sonuma.Config{LinkCredits: credits}, pf, []int{id})
	if err != nil {
		pf.Close()
		return err
	}
	defer cl.Close()

	// A restarted daemon may come up while some peer is still dead; the
	// fabric keeps redialing in the background, so a ready timeout is
	// survivable — log it and serve with whatever connectivity exists.
	if err := pf.WaitReady(readyTimeout); err != nil {
		log.Printf("fabric not fully connected (continuing): %v", err)
	}

	var store *kvs.Store
	if kvsPath != "" {
		raw, err := os.ReadFile(kvsPath)
		if err != nil {
			return err
		}
		var cfg kvs.Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return fmt.Errorf("parsing %s: %w", kvsPath, err)
		}
		// A daemon can be SIGKILLed and respawned into a cluster of
		// survivors whose messenger cursors for this node are far
		// ahead; the first send to each peer must renegotiate the
		// channel before any data moves.
		cfg.Messenger.BootResync = true
		ctx, err := cl.Node(id).OpenContext(kvsCtxID, cfg.SegmentSize(nodes)+4096)
		if err != nil {
			return err
		}
		if store, err = kvs.Open(ctx, cfg); err != nil {
			return err
		}
		defer store.Close()
		log.Printf("kvs store open (ctx %d)", kvsCtxID)
	}

	ctlPath := sonuma.ProcCtlSocket(dir, id)
	os.Remove(ctlPath)
	ln, err := net.Listen("unix", ctlPath)
	if err != nil {
		return err
	}
	defer os.Remove(ctlPath)
	defer ln.Close()

	quit := make(chan struct{})
	go serveCtl(ln, cl, store, id, quit)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("exiting on %v", s)
	case <-quit:
		log.Printf("exiting on control shutdown")
	}
	return nil
}

// serveCtl answers JSON-lines control requests on ln until the listener
// closes or a shutdown request arrives (then quit is closed).
func serveCtl(ln net.Listener, cl *sonuma.Cluster, store *kvs.Store, id int, quit chan struct{}) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			dec := json.NewDecoder(conn)
			enc := json.NewEncoder(conn)
			for {
				var req sonuma.ProcCtlRequest
				if err := dec.Decode(&req); err != nil {
					return
				}
				resp := handleCtl(cl, store, id, req)
				if err := enc.Encode(resp); err != nil {
					return
				}
				if req.Op == "shutdown" {
					select {
					case <-quit:
					default:
						close(quit)
					}
					return
				}
			}
		}(conn)
	}
}

func handleCtl(cl *sonuma.Cluster, store *kvs.Store, id int, req sonuma.ProcCtlRequest) sonuma.ProcCtlResponse {
	switch req.Op {
	case "ping", "shutdown":
		return sonuma.ProcCtlResponse{OK: true}
	case "cut":
		if req.Directed {
			cl.FailLinkDirected(req.A, req.B)
		} else {
			cl.FailLink(req.A, req.B)
		}
		return sonuma.ProcCtlResponse{OK: true}
	case "restore":
		cl.RestoreLink(req.A, req.B)
		return sonuma.ProcCtlResponse{OK: true}
	case "info":
		info := &sonuma.ProcNodeInfo{Node: id}
		if store != nil {
			info.Term = store.Term()
			info.Epoch = store.Epoch()
			info.Coordinator = store.Coordinator()
			info.DownView = store.DownView()
			if raw, err := json.Marshal(store.Stats()); err == nil {
				info.Stats = raw
			}
		}
		return sonuma.ProcCtlResponse{OK: true, Info: info}
	default:
		return sonuma.ProcCtlResponse{Err: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
