// Quickstart: a four-node soNUMA cluster exercising the core programming
// model — one-sided remote reads and writes with copy semantics, the
// asynchronous split-operation API of Fig. 4, and globally atomic
// fetch-and-add.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sonuma"
)

func main() {
	// An emulated rack: four nodes on a memory fabric.
	cluster, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Every node joins global address space 1, contributing 1 MB of its
	// local memory as its partition (the context segment).
	const ctxID = 1
	ctxs := make([]*sonuma.Context, cluster.Nodes())
	for i := range ctxs {
		if ctxs[i], err = cluster.Node(i).OpenContext(ctxID, 1<<20); err != nil {
			log.Fatal(err)
		}
	}

	// Node 2 places a greeting in its segment using plain local stores.
	greeting := []byte("hello from node 2's memory")
	if err := ctxs[2].Memory().WriteAt(4096, greeting); err != nil {
		log.Fatal(err)
	}

	// Node 0 reads it remotely: queue pair + registered local buffer,
	// then a synchronous one-sided read. No code runs on node 2.
	qp, err := ctxs[0].NewQP(64)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := ctxs[0].AllocBuffer(64 << 10)
	if err != nil {
		log.Fatal(err)
	}
	if err := qp.Read(2, 4096, buf, 0, len(greeting)); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(greeting))
	if err := buf.ReadAt(0, got); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote read from node 2: %q\n", got)

	// Remote write: node 0 pushes a reply into node 3's segment.
	reply := []byte("greetings, node 3")
	if err := buf.WriteAt(1024, reply); err != nil {
		log.Fatal(err)
	}
	if err := qp.Write(3, 0, buf, 1024, len(reply)); err != nil {
		log.Fatal(err)
	}
	check := make([]byte, len(reply))
	if err := ctxs[3].Memory().ReadAt(0, check); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 3's memory now holds:  %q\n", check)

	// Asynchronous pipeline (the Fig. 4 pattern): issue a window of
	// non-blocking reads; callbacks fire as completions drain.
	const n = 32
	for i := 0; i < n; i++ {
		if err := ctxs[1].Memory().Store64(i*8, uint64(i*i)); err != nil {
			log.Fatal(err)
		}
	}
	sum := uint64(0)
	for i := 0; i < n; i++ {
		i := i
		_, err := qp.ReadAsync(1, uint64(i*8), buf, i*8, 8, func(_ int, err error) {
			if err != nil {
				log.Fatal(err)
			}
			v, _ := buf.Load64(i * 8)
			sum += v
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := qp.DrainCQ(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum of 32 squares read asynchronously from node 1: %d\n", sum)

	// Atomics execute in the destination's coherence domain: all four
	// nodes (including node 1 itself) increment one counter word.
	const counterOff = 2048
	for i := 0; i < cluster.Nodes(); i++ {
		q, err := ctxs[i].NewQP(16)
		if err != nil {
			log.Fatal(err)
		}
		for k := 0; k < 100; k++ {
			if _, err := q.FetchAdd(1, counterOff, 1); err != nil {
				log.Fatal(err)
			}
		}
	}
	v, _ := ctxs[1].Memory().Load64(counterOff)
	fmt.Printf("globally atomic counter on node 1: %d (want 400)\n", v)
}
