// Messaging: the §5.3 software communication layer in action — unsolicited
// send/receive built on one-sided writes (push) and reads (pull), plus the
// distributed barrier. This is the workload of the paper's Fig. 8
// microbenchmark, shown here as a runnable program: a ping-pong latency
// probe, a large pulled transfer, and an all-nodes barrier.
//
// Run with:
//
//	go run ./examples/messaging
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"sonuma"
)

func main() {
	const nodes = 4
	cluster, err := sonuma.NewCluster(sonuma.Config{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Messaging region sizing: every participant opens a segment large
	// enough for the rings, credits and pull staging.
	mcfg := sonuma.MessengerConfig{RingSlots: 128, Threshold: 256}
	segSize := sonuma.MessengerRegionSize(nodes, mcfg) +
		sonuma.BarrierRegionSize(nodes) + 4096
	barrierOff := sonuma.MessengerRegionSize(nodes, mcfg)

	type endpoint struct {
		msgr    *sonuma.Messenger
		barrier *sonuma.Barrier
	}
	eps := make([]endpoint, nodes)
	parts := []int{0, 1, 2, 3}
	for i := 0; i < nodes; i++ {
		ctx, err := cluster.Node(i).OpenContext(1, segSize)
		if err != nil {
			log.Fatal(err)
		}
		qp, err := ctx.NewQP(128)
		if err != nil {
			log.Fatal(err)
		}
		if eps[i].msgr, err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			log.Fatal(err)
		}
		qpB, err := ctx.NewQP(16)
		if err != nil {
			log.Fatal(err)
		}
		if eps[i].barrier, err = sonuma.NewBarrier(ctx, qpB, barrierOff, parts); err != nil {
			log.Fatal(err)
		}
	}

	// 1. Ping-pong between nodes 0 and 1: small messages take the push
	// path (a single rmc_write into the peer's ring).
	const rounds = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			m, err := eps[1].msgr.Recv()
			if err != nil {
				log.Fatal(err)
			}
			if err := eps[1].msgr.Send(0, m.Data); err != nil {
				log.Fatal(err)
			}
		}
	}()
	payload := []byte("ping")
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := eps[0].msgr.Send(1, payload); err != nil {
			log.Fatal(err)
		}
		if _, err := eps[0].msgr.Recv(); err != nil {
			log.Fatal(err)
		}
	}
	<-done
	halfDuplex := time.Since(start) / (2 * rounds)
	fmt.Printf("push ping-pong: %d rounds, half-duplex latency %v\n", rounds, halfDuplex)
	fmt.Printf("  (node 0 pushed %d messages, pulled %d)\n", eps[0].msgr.Pushed, eps[0].msgr.Pulled)

	// 2. A 48 KB transfer takes the pull path: node 2 stages it locally,
	// node 3 fetches it with a single rmc_read and acknowledges.
	big := bytes.Repeat([]byte("scale-out-numa! "), 3*1024)
	recvd := make(chan []byte, 1)
	go func() {
		m, err := eps[3].msgr.Recv()
		if err != nil {
			log.Fatal(err)
		}
		recvd <- m.Data
	}()
	if err := eps[2].msgr.Send(3, big); err != nil {
		log.Fatal(err)
	}
	got := <-recvd
	fmt.Printf("pull transfer: %d bytes, intact=%v (node 2 pulled-count %d)\n",
		len(got), bytes.Equal(got, big), eps[2].msgr.Pulled)

	// 3. Barrier: all nodes synchronize; nobody may pass round r until
	// everyone has arrived at it.
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				if err := eps[i].barrier.Wait(); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	fmt.Printf("barrier: 4 nodes completed %d rounds\n", eps[0].barrier.Round())
}
