// PageRank: the paper's application study (§7.5) as a self-contained
// program using only the public API. It mirrors Fig. 4: a Bulk Synchronous
// Parallel PageRank where intra-node edges use plain shared memory and
// cross-partition edges become asynchronous one-sided reads
// (rmc_wait_for_slot / rmc_read_async / rmc_drain_cq), with a distributed
// barrier between supersteps. The distributed result is checked against a
// single-threaded reference.
//
// Run with:
//
//	go run ./examples/pagerank [-nodes 4] [-vertices 4000] [-supersteps 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"sonuma"
)

const damping = 0.85

// --- A tiny deterministic power-law graph generator -----------------------

type graph struct {
	n       int
	offsets []int32 // CSR: per-vertex in-neighbor lists
	edges   []int32
	outDeg  []int32
}

func genGraph(n, avgDeg int, seed uint64) *graph {
	g := &graph{n: n, offsets: make([]int32, n+1), outDeg: make([]int32, n)}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for v := 0; v < n; v++ {
		g.offsets[v] = int32(len(g.edges))
		deg := 1 + int(next())%(2*avgDeg-1)
		for k := 0; k < deg; k++ {
			// Square the draw toward 0: hub vertices appear in many
			// adjacency lists, like the Twitter graph's celebrities.
			r := float64(next()%1e6) / 1e6
			src := int(r * r * float64(n))
			if src == v {
				src = (src + 1) % n
			}
			g.edges = append(g.edges, int32(src))
			g.outDeg[src]++
		}
	}
	g.offsets[n] = int32(len(g.edges))
	for i := range g.outDeg {
		if g.outDeg[i] == 0 {
			g.outDeg[i] = 1
		}
	}
	return g
}

func (g *graph) neighbors(v int) []int32 { return g.edges[g.offsets[v]:g.offsets[v+1]] }

// reference is the single-threaded ground truth.
func reference(g *graph, steps int) []float64 {
	cur := make([]float64, g.n)
	next := make([]float64, g.n)
	for i := range cur {
		cur[i] = 1 / float64(g.n)
	}
	for s := 0; s < steps; s++ {
		for v := 0; v < g.n; v++ {
			sum := 0.0
			for _, nb := range g.neighbors(v) {
				sum += cur[nb] / float64(g.outDeg[nb])
			}
			next[v] = (1-damping)/float64(g.n) + damping*sum
		}
		cur, next = next, cur
	}
	return cur
}

// --- The distributed fine-grain implementation ----------------------------

// Vertex records live in each owner's context segment: rank[0], rank[1]
// (superstep parity, as in Fig. 4) and out-degree, 8 bytes each, one record
// per 32-byte stride.
const recStride = 32

func main() {
	var (
		nodes      = flag.Int("nodes", 4, "cluster size")
		vertices   = flag.Int("vertices", 4000, "graph vertices")
		supersteps = flag.Int("supersteps", 5, "BSP supersteps")
	)
	flag.Parse()

	g := genGraph(*vertices, 8, 2024)
	fmt.Printf("graph: %d vertices, %d edges; %d nodes, %d supersteps\n",
		g.n, len(g.edges), *nodes, *supersteps)

	// Partition: contiguous equal ranges (vertex v lives on node v / per).
	per := (g.n + *nodes - 1) / *nodes
	owner := func(v int32) int { return int(v) / per }
	localIdx := func(v int32) int { return int(v) % per }

	cluster, err := sonuma.NewCluster(sonuma.Config{Nodes: *nodes})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	segSize := per*recStride + sonuma.BarrierRegionSize(*nodes) + 4096
	barrierOff := per * recStride
	parts := make([]int, *nodes)
	for i := range parts {
		parts[i] = i
	}

	// The driver path (§5.1) runs before any remote operation: every node
	// must have joined the context before peers may address its segment.
	ctxs := make([]*sonuma.Context, *nodes)
	for me := 0; me < *nodes; me++ {
		if ctxs[me], err = cluster.Node(me).OpenContext(7, segSize); err != nil {
			log.Fatal(err)
		}
	}

	results := make([][]float64, *nodes)
	start := time.Now()
	var wg sync.WaitGroup
	for me := 0; me < *nodes; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := ctxs[me]
			qp, err := ctx.NewQP(256)
			if err != nil {
				log.Fatal(err)
			}
			qpB, err := ctx.NewQP(16)
			if err != nil {
				log.Fatal(err)
			}
			barrier, err := sonuma.NewBarrier(ctx, qpB, barrierOff, parts)
			if err != nil {
				log.Fatal(err)
			}
			lbuf, err := ctx.AllocBuffer(qp.Depth() * recStride)
			if err != nil {
				log.Fatal(err)
			}
			mem := ctx.Memory()

			lo, hi := me*per, (me+1)*per
			if hi > g.n {
				hi = g.n
			}
			// Initialize this partition's records.
			for v := lo; v < hi; v++ {
				li := v - lo
				store := func(field int, x float64) {
					if err := mem.Store64(li*recStride+field*8, math.Float64bits(x)); err != nil {
						log.Fatal(err)
					}
				}
				store(0, 1/float64(g.n))
				store(1, 0)
				store(2, float64(g.outDeg[v]))
			}
			if err := barrier.Wait(); err != nil {
				log.Fatal(err)
			}

			next := make([]float64, hi-lo)
			for s := 0; s < *supersteps; s++ {
				cur := s % 2
				for li := range next {
					next[li] = (1 - damping) / float64(g.n)
				}
				for v := lo; v < hi; v++ {
					li := v - lo
					for _, nb := range g.neighbors(v) {
						if owner(nb) == me {
							// Shared-memory path (is_local in Fig. 4).
							r, _ := mem.Load64(localIdx(nb)*recStride + cur*8)
							od, _ := mem.Load64(localIdx(nb)*recStride + 16)
							next[li] += damping * math.Float64frombits(r) / math.Float64frombits(od)
							continue
						}
						// Remote path: flow control, then a split
						// (asynchronous) read with a completion callback.
						slot, err := qp.WaitForSlot(func(slot int, err error) {
							if err != nil {
								log.Fatal(err)
							}
							r, _ := lbuf.Load64(slot*recStride + cur*8)
							od, _ := lbuf.Load64(slot*recStride + 16)
							next[li] += damping * math.Float64frombits(r) / math.Float64frombits(od)
						})
						if err != nil {
							log.Fatal(err)
						}
						err = qp.IssueRead(slot, owner(nb),
							uint64(localIdx(nb)*recStride), lbuf, slot*recStride, recStride)
						if err != nil {
							log.Fatal(err)
						}
					}
				}
				if err := qp.DrainCQ(); err != nil {
					log.Fatal(err)
				}
				for li, r := range next {
					if err := mem.Store64(li*recStride+(1-cur)*8, math.Float64bits(r)); err != nil {
						log.Fatal(err)
					}
				}
				if err := barrier.Wait(); err != nil {
					log.Fatal(err)
				}
			}
			out := make([]float64, hi-lo)
			for li := range out {
				bits, _ := mem.Load64(li*recStride + (*supersteps%2)*8)
				out[li] = math.Float64frombits(bits)
			}
			results[me] = out
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Validate against the reference.
	want := reference(g, *supersteps)
	maxErr := 0.0
	for me := range results {
		for li, r := range results[me] {
			v := me*per + li
			if d := math.Abs(r - want[v]); d > maxErr {
				maxErr = d
			}
		}
	}
	remote := 0
	for v := 0; v < g.n; v++ {
		for _, nb := range g.neighbors(v) {
			if owner(nb) != owner(int32(v)) {
				remote++
			}
		}
	}
	fmt.Printf("fine-grain BSP PageRank: %v for %d supersteps (%d cross-partition edge reads/step)\n",
		elapsed, *supersteps, remote)
	fmt.Printf("max deviation from single-threaded reference: %.2e\n", maxErr)
}
