// KV store: the paper's killer-app pattern (§8) scaled out — a sharded,
// replicated key-value service whose GETs are one-sided remote reads that
// never involve any server's CPU. The key space is consistent-hash sharded
// over all nodes; PUTs route to each shard's primary over the messenger and
// replicate to a backup with remote writes plus a FetchAdd-published
// version; GETs read version-stamped slots from whichever replica the
// fabric can still reach.
//
// The demo loads the store, hammers it with a read-mostly mix from every
// node, then cuts every fabric link of the busiest primary mid-load: the
// failure watchers promote backups and the survivors finish every
// operation.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"

	"sonuma"
	"sonuma/internal/kvs"
)

func main() {
	const (
		nodes = 4
		keys  = 600
		ops   = 4000 // per client, half before and half after the failure
	)
	cluster, err := sonuma.NewCluster(sonuma.Config{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Every node joins the service: identical slot tables + a messenger
	// region in each context segment.
	cfg := kvs.Config{Shards: 32, Replicas: 2}
	stores := make([]*kvs.Store, nodes)
	for i := range stores {
		ctx, err := cluster.Node(i).OpenContext(1, cfg.SegmentSize(nodes)+4096)
		if err != nil {
			log.Fatal(err)
		}
		if stores[i], err = kvs.Open(ctx, cfg); err != nil {
			log.Fatal(err)
		}
		defer stores[i].Close()
	}

	// Load the store through the service; every PUT lands on its shard
	// primary and is replicated to the shard's backup.
	loader, err := stores[0].NewClient()
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("user:%04d", i)
		v := fmt.Sprintf("profile-data-for-%04d", i)
		if err := loader.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	ring := stores[0].Ring()
	fmt.Printf("%d nodes serve %d keys over %d shards (x%d replication)\n",
		nodes, keys, ring.Shards(), ring.Replicas())

	// The victim: the node leading the most shards (never node 0, which
	// hosts a worker below).
	leads := make([]int, nodes)
	for s := 0; s < ring.Shards(); s++ {
		leads[ring.Owners(s)[0]]++
	}
	victim := 1
	for n := 2; n < nodes; n++ {
		if leads[n] > leads[victim] {
			victim = n
		}
	}
	fmt.Printf("victim will be node %d (primary of %d/%d shards)\n",
		victim, leads[victim], ring.Shards())

	msgs0 := totalMsgs(stores)

	// Read-mostly mixed load from every surviving node; each worker
	// retries an op until it completes, so the run only ends when the
	// whole load has been served despite the failure.
	var (
		wg        sync.WaitGroup
		gets      atomic.Int64
		puts      atomic.Int64
		retries   atomic.Int64
		completed atomic.Int64
	)
	half := int64((nodes - 1) * ops / 2)
	tripwire := make(chan struct{})
	var once sync.Once
	for w := 0; w < nodes; w++ {
		if w == victim {
			continue
		}
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client, err := stores[w].NewClient()
			if err != nil {
				log.Fatal(err)
			}
			state := uint64(w)*2654435761 + 1
			for i := 0; i < ops; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				k := []byte(fmt.Sprintf("user:%04d", int(state>>33)%keys))
				isRead := state%100 < 95
				for attempt := 0; ; attempt++ {
					var err error
					if isRead {
						var got []byte
						got, err = client.Get(k)
						if err == nil && !validValue(k, got) {
							log.Fatalf("worker %d: corrupt read %q -> %q", w, k, got)
						}
					} else {
						err = client.Put(k, []byte(fmt.Sprintf("update:%s:w%d", k, w)))
					}
					if err == nil {
						break
					}
					if attempt > 200 {
						log.Fatalf("worker %d: op on %q never completed: %v", w, k, err)
					}
					retries.Add(1)
				}
				if isRead {
					gets.Add(1)
				} else {
					puts.Add(1)
				}
				if completed.Add(1) == half {
					once.Do(func() { close(tripwire) })
				}
			}
		}()
	}

	// Mid-load, the victim's links all die — the kill-a-primary moment.
	go func() {
		<-tripwire
		fmt.Printf("... cutting all fabric links of node %d mid-load ...\n", victim)
		for i := 0; i < nodes; i++ {
			if i != victim {
				cluster.FailLink(victim, i)
			}
		}
	}()
	wg.Wait()
	once.Do(func() { close(tripwire) })

	var promotions uint64
	for i, s := range stores {
		if i != victim {
			promotions += s.Stats().Promotions
		}
	}
	fmt.Printf("completed %d GETs + %d PUTs across %d workers (%d failover retries)\n",
		gets.Load(), puts.Load(), nodes-1, retries.Load())
	fmt.Printf("fabric watchers drove %d shard promotions; every op finished\n", promotions)
	fmt.Printf("server serve-loops handled %d messages during the mixed load (PUT routing)\n",
		totalMsgs(stores)-msgs0)

	// The one-sided claim, measured: re-read every key in a pure-GET
	// phase, verify the values, and count the serve-loop messages the
	// phase generated. One-sided reads must generate exactly none.
	readMsgs0 := totalMsgs(stores)
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		got, err := loader.Get(k)
		if err != nil {
			log.Fatalf("verification Get(%q): %v", k, err)
		}
		if !validValue(k, got) {
			log.Fatalf("verification Get(%q) = %q: corrupt", k, got)
		}
	}
	readMsgs := totalMsgs(stores) - readMsgs0
	fmt.Printf("verification: %d keys re-read one-sided, values intact\n", keys)
	fmt.Printf("GET handler invocations during the read-only phase: %d (measured; want 0)\n", readMsgs)
	if readMsgs != 0 {
		log.Fatal("one-sided GETs produced server-side handler invocations")
	}
}

// validValue reports whether a read value for key k is one this program
// could legitimately have written: the preload profile or a worker update
// stamped with the same key.
func validValue(k, v []byte) bool {
	ks := string(k)
	return string(v) == "profile-data-for-"+ks[len("user:"):] ||
		strings.HasPrefix(string(v), "update:"+ks+":")
}

// totalMsgs sums serve-loop message counters across the service.
func totalMsgs(stores []*kvs.Store) uint64 {
	var t uint64
	for _, s := range stores {
		t += s.Stats().MsgsHandled
	}
	return t
}
