// KV store: the paper's killer-app pattern (§8) — a key-value store whose
// GETs are one-sided remote reads that never involve the server's CPU,
// following Pilaf's self-verifying design (per-entry version + checksum,
// retry on torn reads). The server only executes PUTs; three client nodes
// hammer GETs concurrently while the server keeps updating a hot key.
//
// Run with:
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
	"sonuma/internal/kvs"
)

func main() {
	const (
		serverNode = 0
		clients    = 3
		buckets    = 1024
		slotSize   = 256
	)
	cluster, err := sonuma.NewCluster(sonuma.Config{Nodes: 1 + clients})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	serverCtx, err := cluster.Node(serverNode).OpenContext(1, kvs.RegionSize(buckets, slotSize)+4096)
	if err != nil {
		log.Fatal(err)
	}
	server, err := kvs.NewServer(serverCtx, buckets, slotSize)
	if err != nil {
		log.Fatal(err)
	}

	// Load the store.
	const keys = 500
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("user:%04d", i)
		v := fmt.Sprintf("profile-data-for-%04d", i)
		if err := server.Put([]byte(k), []byte(v)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("server on node %d loaded %d keys (%d buckets x %dB slots)\n",
		serverNode, keys, buckets, slotSize)

	// Clients GET with pure one-sided reads.
	var (
		wg    sync.WaitGroup
		gets  atomic.Int64
		stop  atomic.Bool
		fails atomic.Int64
	)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, err := cluster.Node(1+c).OpenContext(1, 4096)
			if err != nil {
				log.Fatal(err)
			}
			qp, err := ctx.NewQP(64)
			if err != nil {
				log.Fatal(err)
			}
			client, err := kvs.NewClient(ctx, qp, serverNode)
			if err != nil {
				log.Fatal(err)
			}
			for i := 0; !stop.Load(); i++ {
				k := fmt.Sprintf("user:%04d", (i*7+c*131)%keys)
				want := fmt.Sprintf("profile-data-for-%04d", (i*7+c*131)%keys)
				got, err := client.Get([]byte(k))
				if err != nil {
					fails.Add(1)
					continue
				}
				// The hot key mutates; every other key must match.
				if k != "user:0000" && string(got) != want {
					log.Fatalf("corrupt read: %q -> %q", k, got)
				}
				gets.Add(1)
			}
		}()
	}

	// Meanwhile the server rewrites a hot key, exercising the torn-read
	// retry path on the clients.
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if err := server.Put([]byte("user:0000"), []byte(fmt.Sprintf("hot-value-%d", i))); err != nil {
			log.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("3 clients completed %d one-sided GETs (%d not-found/retry-exhausted) in 2s\n",
		gets.Load(), fails.Load())
	fmt.Printf("≈ %.0f GETs/s without a single server-side read handler\n",
		float64(gets.Load())/2)
}
