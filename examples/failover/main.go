// Failover: fault containment and repair on a soNUMA cluster. Unlike
// large-scale shared physical memory, where "the failure of any one node
// can take down the entire system by corrupting shared state" (§2.2),
// soNUMA's global address space spans independent OS instances: a failed
// node surfaces as error completions on in-flight operations plus a driver
// notification (§5.1), and the survivors keep running.
//
// This program replicates a small record across three storage nodes, kills
// one mid-run, and shows the client failing over to a replica without the
// cluster missing a beat. It then walks the repair half of the lifecycle:
// the node is restored, the driver's restore notification fires, the
// client re-replicates the state the node missed while it was down, and
// the healed node serves reads again.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"errors"
	"fmt"
	"log"

	"sonuma"
)

func main() {
	// Node 0 is the client; nodes 1-3 hold replicas.
	cluster, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const ctxID = 1
	ctxs := make([]*sonuma.Context, cluster.Nodes())
	for i := range ctxs {
		if ctxs[i], err = cluster.Node(i).OpenContext(ctxID, 1<<16); err != nil {
			log.Fatal(err)
		}
	}

	// The driver learns about fabric failures — and restores — through
	// asynchronous notifications (§5.1).
	failures := make(chan int, 4)
	cluster.Node(0).OnFabricFailure(func(node int) {
		select {
		case failures <- node:
		default:
		}
	})
	restores := make(chan int, 4)
	cluster.Node(0).OnFabricRestore(func(node int) {
		select {
		case restores <- node:
		default:
		}
	})

	qp, err := ctxs[0].NewQP(32)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := ctxs[0].AllocBuffer(4096)
	if err != nil {
		log.Fatal(err)
	}

	// Replicate a record to all three storage nodes with one-sided writes.
	record := []byte("replicated-state-v1")
	if err := buf.WriteAt(0, record); err != nil {
		log.Fatal(err)
	}
	replicas := []int{1, 2, 3}
	for _, r := range replicas {
		if err := qp.Write(r, 0, buf, 0, len(record)); err != nil {
			log.Fatalf("replicate to node %d: %v", r, err)
		}
	}
	fmt.Printf("record replicated to nodes %v\n", replicas)

	// readPreferred tries replicas in order, failing over on node failure.
	readPreferred := func() ([]byte, int, error) {
		for _, r := range replicas {
			err := qp.Read(r, 0, buf, 1024, len(record))
			if err == nil {
				out := make([]byte, len(record))
				if err := buf.ReadAt(1024, out); err != nil {
					return nil, r, err
				}
				return out, r, nil
			}
			var re *sonuma.RemoteError
			if errors.As(err, &re) && re.Status == sonuma.StatusNodeFailure {
				fmt.Printf("  node %d unreachable, failing over\n", r)
				continue
			}
			return nil, r, err // anything else is a real error
		}
		return nil, -1, errors.New("all replicas down")
	}

	got, from, err := readPreferred()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %q from primary node %d\n", got, from)

	// Kill the primary. In-flight and future operations against it fail
	// with StatusNodeFailure; everything else keeps working.
	fmt.Println("injecting failure of node 1")
	cluster.FailNode(1)
	if n := <-failures; n != 1 {
		log.Fatalf("driver notified of node %d", n)
	}
	fmt.Println("driver notification received: node 1 is down")

	got, from, err = readPreferred()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %q from replica node %d — fault contained\n", got, from)

	// The failed node's peers remain fully operational for new work, and
	// atomics still serialize correctly on the survivors.
	for i := 0; i < 100; i++ {
		if _, err := qp.FetchAdd(2, 2048, 1); err != nil {
			log.Fatal(err)
		}
	}
	v, _ := ctxs[2].Memory().Load64(2048)
	fmt.Printf("post-failure fetch-and-add on node 2: counter = %d (want 100)\n", v)

	// While node 1 was down, the record moved on: write v2 to the
	// surviving replicas. Node 1's copy is now stale — which is exactly
	// why a restored node must be repaired before it serves again.
	record2 := []byte("replicated-state-v2")
	if err := buf.WriteAt(0, record2); err != nil {
		log.Fatal(err)
	}
	for _, r := range replicas[1:] {
		if err := qp.Write(r, 0, buf, 0, len(record2)); err != nil {
			log.Fatalf("re-replicate to node %d: %v", r, err)
		}
	}

	// Repair: the fabric restores connectivity only; the driver's restore
	// notification is the application's cue to re-sync missed state (the
	// kvs service automates this with anti-entropy repair — see
	// internal/kvs and the -experiment kvs heal run).
	fmt.Println("restoring node 1")
	cluster.RestoreNode(1)
	if n := <-restores; n != 1 {
		log.Fatalf("driver notified of restore of node %d", n)
	}
	fmt.Println("driver notification received: node 1 is back — repairing it")
	if err := qp.Write(1, 0, buf, 0, len(record2)); err != nil {
		log.Fatalf("repairing node 1: %v", err)
	}

	// Node 1 is the preferred replica again and serves the CURRENT value.
	got, from, err = readPreferred()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %q from node %d — failed, healed, repaired, rejoined\n", got, from)
	if from != 1 || string(got) != string(record2) {
		log.Fatalf("expected %q from node 1, got %q from node %d", record2, got, from)
	}
}
