package sonuma_test

// Fabric fault-path coverage for the batched data path: link failure and
// restore in the middle of multi-batch transfers, and packet-pool
// reuse-after-completion integrity under concurrent bidirectional traffic.
// Run with -race in CI.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sonuma"
)

const faultSegSize = 4 << 20

// faultCluster builds an n-node cluster with context 1 (and a QP + buffer)
// on every node.
func faultCluster(t testing.TB, n int, cfg sonuma.Config) (*sonuma.Cluster, []*sonuma.QP, []*sonuma.Buffer) {
	t.Helper()
	cfg.Nodes = n
	cl, err := sonuma.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qps := make([]*sonuma.QP, n)
	bufs := make([]*sonuma.Buffer, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(1, faultSegSize)
		if err != nil {
			cl.Close()
			t.Fatal(err)
		}
		if qps[i], err = ctx.NewQP(64); err != nil {
			cl.Close()
			t.Fatal(err)
		}
		if bufs[i], err = ctx.AllocBuffer(1 << 20); err != nil {
			cl.Close()
			t.Fatal(err)
		}
	}
	return cl, qps, bufs
}

// TestFailLinkMidTransfer breaks a link while multi-batch transfers are in
// flight. In-flight operations must complete (with either success or a
// node-failure error, never a hang), operations issued over the dead link
// must fail with StatusNodeFailure, unrelated routes must keep working, and
// RestoreLink must bring the pair back.
func TestFailLinkMidTransfer(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 3, sonuma.Config{})
	defer cl.Close()
	qp, buf := qps[0], bufs[0]

	// Put a stream of large (16-batch) reads in flight toward node 1,
	// then cut the link mid-stream.
	var failed, completed int
	for i := 0; i < 32; i++ {
		_, err := qp.ReadAsync(1, 0, buf, 0, 32<<10, func(_ int, err error) {
			completed++
			if err != nil {
				failed++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 8 {
			cl.FailLink(0, 1)
		}
	}
	// DrainCQ returning at all is the heart of the test: before the RMC
	// flushed routes broken by link failure, a reply dropped on the dead
	// link left its transaction in flight forever.
	if err := qp.DrainCQ(); err != nil {
		t.Fatal(err)
	}
	if completed != 32 {
		t.Fatalf("completed %d of 32 in-flight operations", completed)
	}
	t.Logf("mid-transfer link failure: %d/32 operations failed", failed)

	// The dead pair must now fail deterministically with NodeFailure.
	err := qp.Read(1, 0, buf, 0, 64)
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("read over failed link: got %v, want StatusNodeFailure", err)
	}
	// Unrelated routes are unaffected (crossbar isolates the pair).
	if err := qp.Read(2, 0, buf, 0, 4096); err != nil {
		t.Fatalf("unrelated route broken by link failure: %v", err)
	}
	if err := qps[2].Read(0, 0, bufs[2], 0, 4096); err != nil {
		t.Fatalf("reverse unrelated route broken: %v", err)
	}

	cl.RestoreLink(0, 1)
	if err := qp.Read(1, 0, buf, 0, 32<<10); err != nil {
		t.Fatalf("read after RestoreLink: %v", err)
	}
}

// TestFailLinkTorusTransitRoutes checks that a link failure also flushes
// in-flight transfers merely routed THROUGH the dead link (torus routes are
// multi-hop), not just those addressed to its endpoints.
func TestFailLinkTorusTransitRoutes(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 4, sonuma.Config{Topology: sonuma.TopologyTorus2D})
	defer cl.Close()
	// 4 nodes tile as a 2x2 torus; route 0->3 crosses links via 1 or 2.
	// Break every route from 0 to 3 by cutting both of 3's links.
	cl.FailLink(1, 3)
	cl.FailLink(2, 3)
	err := qps[0].Read(3, 0, bufs[0], 0, 64)
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("read through failed links: got %v, want StatusNodeFailure", err)
	}
	// Both links matter: with dimension-order routing the request runs
	// 0->1->3 but the reply runs 3->2->0.
	cl.RestoreLink(1, 3)
	cl.RestoreLink(2, 3)
	if err := qps[0].Read(3, 0, bufs[0], 0, 64); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
}

// TestPacketPoolReuseIntegrity hammers the pooled data path from both
// directions at once with patterned payloads. Any packet recycled before
// its payload was consumed, or any batch double-freed, shows up as a data
// mismatch (and as a race under -race).
func TestPacketPoolReuseIntegrity(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 2, sonuma.Config{})
	defer cl.Close()
	iters := 400
	if testing.Short() {
		iters = 50
	}
	sizes := []int{64, 256, 4096, 24 << 10} // 1 line .. 12 batches
	var wg sync.WaitGroup
	errc := make(chan error, 2)
	for me := 0; me < 2; me++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			qp, buf := qps[me], bufs[me]
			peer := 1 - me
			// Disjoint halves of the peer's segment per direction.
			base := uint64(me) * (faultSegSize / 2)
			scratch := make([]byte, sizes[len(sizes)-1])
			for i := 0; i < iters; i++ {
				size := sizes[i%len(sizes)]
				pat := byte(me<<7 | (i & 0x7F))
				for j := 0; j < size; j++ {
					scratch[j] = pat + byte(j)
				}
				if err := buf.WriteAt(0, scratch[:size]); err != nil {
					errc <- err
					return
				}
				if err := qp.Write(peer, base, buf, 0, size); err != nil {
					errc <- fmt.Errorf("node %d iter %d write: %w", me, i, err)
					return
				}
				// Read back through the fabric into a different
				// buffer region and verify the pattern.
				if err := qp.Read(peer, base, buf, size, size); err != nil {
					errc <- fmt.Errorf("node %d iter %d read: %w", me, i, err)
					return
				}
				if err := buf.ReadAt(size, scratch[:size]); err != nil {
					errc <- err
					return
				}
				for j := 0; j < size; j++ {
					if scratch[j] != pat+byte(j) {
						errc <- fmt.Errorf("node %d iter %d size %d: byte %d = %#x, want %#x (pool reuse corruption?)",
							me, i, size, j, scratch[j], pat+byte(j))
						return
					}
				}
			}
		}(me)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestFailLinkDirectedAsymmetric injects a ONE-WAY link cut and verifies
// the asymmetric-partition semantics: both two-sided operations of the
// pair fail deterministically (a request over the healthy direction would
// strand when its reply drops on the dead one, so issue fails instead of
// hanging), Reachable reports the pair unreachable in both directions,
// third-party routes keep working, and a single RestoreLink heals both
// directions.
func TestFailLinkDirectedAsymmetric(t *testing.T) {
	cl, qps, bufs := faultCluster(t, 3, sonuma.Config{})
	defer cl.Close()

	cl.FailLinkDirected(0, 1)

	// 0→1 fails on the dead direction itself.
	err := qps[0].Read(1, 0, bufs[0], 0, 64)
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("read over dead direction: got %v, want StatusNodeFailure", err)
	}
	// 1→0 fails too — not because its request cannot travel (that
	// direction is healthy) but because its reply would be dropped; a
	// hang here was the failure mode before issue-time reply-route
	// validation.
	err = qps[1].Read(0, 0, bufs[1], 0, 64)
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("read whose reply crosses dead direction: got %v, want StatusNodeFailure", err)
	}
	if cl.Reachable(0, 1) || cl.Reachable(1, 0) {
		t.Fatal("asymmetrically cut pair still reports Reachable")
	}

	// Third-party routes are unaffected in both directions.
	if err := qps[0].Read(2, 0, bufs[0], 0, 4096); err != nil {
		t.Fatalf("unrelated route 0→2 broken: %v", err)
	}
	if err := qps[2].Read(1, 0, bufs[2], 0, 4096); err != nil {
		t.Fatalf("unrelated route 2→1 broken: %v", err)
	}

	// In-flight operations racing the cut must complete, never hang.
	var completed int
	for i := 0; i < 16; i++ {
		if _, err := qps[2].ReadAsync(0, 0, bufs[2], 0, 32<<10, func(_ int, err error) {
			completed++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := qps[2].DrainCQ(); err != nil {
		t.Fatal(err)
	}
	if completed != 16 {
		t.Fatalf("completed %d of 16 unrelated in-flight operations", completed)
	}

	// One restore heals both directions.
	cl.RestoreLink(0, 1)
	if err := qps[0].Read(1, 0, bufs[0], 0, 64); err != nil {
		t.Fatalf("0→1 after restore: %v", err)
	}
	if err := qps[1].Read(0, 0, bufs[1], 0, 64); err != nil {
		t.Fatalf("1→0 after restore: %v", err)
	}
}

// TestMessengerPeerLoss cuts every link of a messaging peer and verifies
// the messenger surfaces the loss as a StatusNodeFailure error instead of
// spinning forever in its credit wait — including when the ring toward the
// dead peer is already full — and that surviving pairs keep messaging.
func TestMessengerPeerLoss(t *testing.T) {
	const n = 3
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mcfg := sonuma.MessengerConfig{RingSlots: 16}
	segSize := sonuma.MessengerRegionSize(n, mcfg) + 4096
	ms := make([]*sonuma.Messenger, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(1, segSize)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ctx.NewQP(0)
		if err != nil {
			t.Fatal(err)
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			t.Fatal(err)
		}
	}

	// Fill node 2's receive ring; node 2 never consumes, so the next send
	// must wait for credits that can no longer come.
	small := make([]byte, 8)
	for i := 0; i < mcfg.RingSlots; i++ {
		if err := ms[0].Send(2, small); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cl.FailLink(0, 2)
		cl.FailLink(1, 2)
	}()
	err = ms[0].Send(2, small) // blocks on credits, then must fail
	if err == nil {
		t.Fatal("send to dead peer reported success")
	}
	var re *sonuma.RemoteError
	if !errors.As(err, &re) || re.Status != sonuma.StatusNodeFailure {
		t.Fatalf("send to dead peer: got %v, want StatusNodeFailure", err)
	}

	// The surviving pair still messages in both directions.
	if err := ms[0].Send(1, []byte("alive")); err != nil {
		t.Fatalf("surviving send: %v", err)
	}
	got, err := ms[1].Recv()
	if err != nil || string(got.Data) != "alive" {
		t.Fatalf("surviving recv: %q, %v", got.Data, err)
	}
}

// msgFaultPair builds a 2-node cluster with a messenger on each node.
func msgFaultPair(t *testing.T, mcfg sonuma.MessengerConfig) (*sonuma.Cluster, []*sonuma.Messenger) {
	t.Helper()
	const n = 2
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	segSize := sonuma.MessengerRegionSize(n, mcfg) + 4096
	ms := make([]*sonuma.Messenger, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(1, segSize)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ctx.NewQP(0)
		if err != nil {
			t.Fatal(err)
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			t.Fatal(err)
		}
	}
	return cl, ms
}

// TestMessengerChannelReset wedges the 0→1 channel with a link failure
// mid-message, restores the link, and verifies the reset handshake brings
// the channel back: the wedged message is discarded whole (no fragment is
// ever delivered), post-heal sends flow in both directions, and a second
// fail/heal cycle resets again.
func TestMessengerChannelReset(t *testing.T) {
	cl, ms := msgFaultPair(t, sonuma.MessengerConfig{RingSlots: 32, Threshold: sonuma.ThresholdAlwaysPush})

	// Baseline exchange.
	if err := ms[0].Send(1, []byte("warmup")); err != nil {
		t.Fatal(err)
	}
	if m, err := ms[1].Recv(); err != nil || string(m.Data) != "warmup" {
		t.Fatalf("warmup recv: %q %v", m.Data, err)
	}

	for cycle := 0; cycle < 2; cycle++ {
		cl.FailLink(0, 1)
		// A multi-slot send over the dead link fails and wedges the
		// channel.
		lost := bytes.Repeat([]byte{0xBA}, 500)
		err := ms[0].Send(1, lost)
		if !sonuma.IsNodeFailure(err) {
			t.Fatalf("cycle %d: send over dead link: %v, want node failure", cycle, err)
		}
		// Further sends fail fast while the peer is unreachable.
		if err := ms[0].Send(1, []byte("still-down")); !sonuma.IsNodeFailure(err) {
			t.Fatalf("cycle %d: send on wedged channel: %v, want node failure", cycle, err)
		}

		cl.RestoreLink(0, 1)
		// The receiver must be pumping for the handshake to complete.
		want := fmt.Sprintf("healed-%d-%s", cycle, bytes.Repeat([]byte{'x'}, 200))
		recvDone := make(chan error, 1)
		go func() {
			m, err := ms[1].Recv()
			if err == nil && string(m.Data) != want {
				err = fmt.Errorf("post-heal recv %q (len %d), want %q", m.Data[:min(len(m.Data), 32)], len(m.Data), want[:32])
			}
			recvDone <- err
		}()
		if err := ms[0].Send(1, []byte(want)); err != nil {
			t.Fatalf("cycle %d: send after heal: %v", cycle, err)
		}
		if err := <-recvDone; err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Reverse direction was never wedged and still works.
		if err := ms[1].Send(0, []byte("reverse")); err != nil {
			t.Fatalf("cycle %d: reverse send: %v", cycle, err)
		}
		if m, err := ms[0].Recv(); err != nil || string(m.Data) != "reverse" {
			t.Fatalf("cycle %d: reverse recv: %q %v", cycle, m.Data, err)
		}
	}
	if ms[0].Resets != 2 {
		t.Fatalf("sender performed %d channel resets, want 2", ms[0].Resets)
	}
}

// TestMessengerResetNoStitching streams large multi-slot pushed messages,
// cuts the link mid-stream (so a message can be dropped with some of its
// lines already landed), heals, and resumes. Every delivered message must
// be internally consistent — one uniform pattern byte, full length — and
// the post-heal sentinel must arrive: a fragment of the interrupted
// message stitched onto a post-reset one would show up as a mixed pattern.
func TestMessengerResetNoStitching(t *testing.T) {
	cl, ms := msgFaultPair(t, sonuma.MessengerConfig{RingSlots: 64, Threshold: sonuma.ThresholdAlwaysPush})

	const msgSize = 3000 // ~54 ring slots: several fabric batches per send
	payload := func(pat byte) []byte { return bytes.Repeat([]byte{pat}, msgSize) }

	sendErr := make(chan error, 1)
	go func() {
		// Stream until the link failure wedges the channel.
		for i := 0; ; i++ {
			if err := ms[0].Send(1, payload(byte('a'+i%16))); err != nil {
				if sonuma.IsNodeFailure(err) {
					sendErr <- nil
				} else {
					sendErr <- err
				}
				return
			}
		}
	}()

	// Consume a few messages, then cut the link mid-stream.
	seen := 0
	for seen < 4 {
		m, err := ms[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		checkUniform(t, m.Data, msgSize)
		seen++
	}
	cl.FailLink(0, 1)
	if err := <-sendErr; err != nil {
		t.Fatalf("streaming sender: %v", err)
	}
	cl.RestoreLink(0, 1)

	// Post-heal sentinel with a pattern the stream never used.
	done := make(chan error, 1)
	go func() { done <- ms[0].Send(1, payload(0xEE)) }()
	for {
		m, err := ms[1].Recv()
		if err != nil {
			t.Fatal(err)
		}
		checkUniform(t, m.Data, msgSize)
		if m.Data[0] == 0xEE {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("post-heal send: %v", err)
	}
}

// checkUniform asserts a delivered message is whole: exactly size bytes,
// all carrying one pattern byte.
func checkUniform(t *testing.T, data []byte, size int) {
	t.Helper()
	if len(data) != size {
		t.Fatalf("message length %d, want %d (partial delivery?)", len(data), size)
	}
	for i, b := range data {
		if b != data[0] {
			t.Fatalf("byte %d = %#x, first byte %#x: stitched fragments", i, b, data[0])
		}
	}
}
