package sonuma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"sonuma/internal/core"
)

// This file implements the messaging half of the paper's messaging and
// synchronization library (§5.3): unsolicited send/receive built entirely in
// software on top of the one-sided remote operations, with no additional
// architectural support.
//
// Mechanism, following the paper:
//
//   - Every pair of communicating nodes allocates bounded buffers from its
//     own portion of the global virtual address space: a receive ring of
//     cache-line-sized slots per sender. Senders push message fragments with
//     rmc_write; receivers poll local (cached) memory.
//   - Small messages are PUSHED: packetized into line-sized slots, each
//     carrying a header and payload fragment. A send completes with a single
//     rmc_write in the common case and requires no synchronization between
//     the peers.
//   - Large messages are PULLED: the sender stages the payload in its own
//     segment and pushes only a descriptor (base, length); the receiver
//     fetches the payload with a single rmc_read and acknowledges so the
//     staging slot can be reused.
//   - The boundary between the two is the user-set Threshold, exactly the
//     compile-time knob of §5.3.
//   - Flow control is credit-based: receivers publish cumulative
//     consumed-slot counts into each sender's segment, bounding ring
//     occupancy without any connection state.
//   - A second frame class, CONTROL frames, exists for configuration and
//     lease traffic (SendControl/TryRecvControl): one dedicated line per
//     sender pair, overwritten whole with a single line-atomic rmc_write,
//     latest-wins and never subject to ring credits — so epoch and lease
//     state always gets through even when the data rings are full or
//     wedged.
//   - A ring write that fails partway (a fabric failure dropped some of a
//     message's lines) wedges the channel toward that peer, because
//     rewriting the same slots would let the receiver stitch fragments of
//     two messages together. When the fabric heals, the wedged sender
//     recovers the channel with a reset handshake built from the same
//     one-sided writes as the data path: it proposes a fresh channel
//     generation in the receiver's reset word, the receiver discards the
//     partial message (zeroing its ring and rewinding its consume
//     cursor), acknowledges the generation, and both sides restart the
//     ring from slot zero with fresh credits.

// Message slot geometry: one cache line per slot, 8-byte header.
const (
	slotSize    = core.CacheLineSize
	slotPayload = slotSize - 8
)

// Control-frame geometry: one dedicated line per (sender, receiver) pair,
// 16-byte header (sequence word + length word), written whole with a single
// line-atomic rmc_write.
const (
	ctrlHdr = 16
	// MaxControlFrame is the largest control-frame payload: one cache line
	// minus the sequence and length words.
	MaxControlFrame = slotSize - ctrlHdr
)

// Slot kinds (top 4 bits of the meta word).
const (
	kindData uint32 = 1 // first slot of a pushed message
	kindPull uint32 = 2 // pull descriptor
	kindCont uint32 = 3 // continuation slot of a multi-slot push
)

const metaLenMask = (1 << 28) - 1

// Threshold sentinels for MessengerConfig.Threshold.
const (
	// ThresholdAlwaysPush disables the pull path (the paper's
	// "threshold = ∞" configuration).
	ThresholdAlwaysPush = -1
	// ThresholdAlwaysPull pushes nothing but descriptors (the paper's
	// "threshold = 0" configuration).
	ThresholdAlwaysPull = -2
)

// MessengerConfig sizes the messaging region. All participants of a context
// must use identical configurations.
type MessengerConfig struct {
	// RegionOffset is where the messaging region begins within each
	// node's context segment.
	RegionOffset int
	// RingSlots is the per-sender receive ring depth in cache lines
	// (default 64). The largest pushable message is RingSlots×56 bytes.
	RingSlots int
	// StagingSlots is the number of concurrently outstanding pull
	// transfers per destination (default 4).
	StagingSlots int
	// StagingSize is the staging slot size, the largest single pull
	// transfer (default 64 KB). Larger sends are split.
	StagingSize int
	// Threshold is the push/pull boundary in bytes: messages strictly
	// smaller are pushed, others pulled (default 256). Use
	// ThresholdAlwaysPush / ThresholdAlwaysPull to force one mechanism.
	Threshold int
	// BootResync wedges every channel at creation, so the first send to
	// each peer runs the reset handshake before any data moves. Enable it
	// on a messenger whose PROCESS can restart into a cluster of
	// survivors (the multi-process transport): the survivors' receive
	// cursors are far ahead of the reborn sender's fresh zeros, and only
	// the handshake — whose proposals now carry the sender's boot
	// incarnation — can rewind them. In-process clusters never lose
	// messenger state across a failure, so they leave this off and skip
	// the extra first-contact round-trip.
	BootResync bool
}

func (c MessengerConfig) withDefaults() MessengerConfig {
	if c.RingSlots <= 0 {
		c.RingSlots = 64
	}
	if c.StagingSlots <= 0 {
		c.StagingSlots = 4
	}
	if c.StagingSize <= 0 {
		c.StagingSize = 64 << 10
	}
	if c.Threshold == 0 {
		c.Threshold = 256
	}
	return c
}

// MessengerRegionSize reports the context-segment bytes a messenger with
// this configuration consumes on each node of an n-node group, starting at
// RegionOffset. Open contexts with at least RegionOffset+size bytes.
func MessengerRegionSize(n int, cfg MessengerConfig) int {
	cfg = cfg.withDefaults()
	rings := n * cfg.RingSlots * slotSize
	credits := n * slotSize
	acks := core.AlignUp(n * cfg.StagingSlots * 8)
	resets := n * slotSize
	ctrl := n * slotSize
	staging := n * cfg.StagingSlots * cfg.StagingSize
	return rings + credits + acks + resets + ctrl + staging
}

// Message is one received unsolicited message.
type Message struct {
	From int
	Data []byte
}

// ErrMessageTooLarge reports a push-only messenger asked to send a message
// that does not fit its ring.
var ErrMessageTooLarge = errors.New("sonuma: message exceeds push ring capacity and pull is disabled")

// ErrControlTooLarge reports a control frame exceeding MaxControlFrame.
var ErrControlTooLarge = errors.New("sonuma: control frame exceeds one line")

// errProtocol reports ring corruption (a continuation slot where a message
// head was expected), which indicates mismatched configurations.
var errProtocol = errors.New("sonuma: messaging protocol corruption (mismatched MessengerConfig?)")

// Messenger provides unsolicited send/receive among all nodes of a cluster
// sharing a context. It must be driven by a single goroutine and owns the
// QP passed to NewMessenger.
type Messenger struct {
	ctx *Context
	qp  *QP
	cfg MessengerConfig
	n   int
	me  int

	mem     *Memory
	sendBuf *Buffer // staging for outgoing ring writes
	pullBuf *Buffer // landing area for pull reads
	tiny    *Buffer // 8-byte scratch for credit/ack writes
	ctrlBuf *Buffer // one-line staging for outgoing control frames
	batch   *Batch  // reusable op batch: ring writes issue with one doorbell

	ringBase, creditBase, ackBase, resetBase, ctrlBase, stagBase int

	txSeq          []uint64 // slots written toward each peer
	rxSeq          []uint64 // slots consumed from each peer
	lastCreditSent []uint64
	stagingGen     [][]uint64
	txBroken       []bool   // send path wedged: a ring write failed mid-message
	txGen          []uint64 // channel generation proposed toward each peer
	rxGen          []uint64 // channel generation accepted from each peer
	txCtrlSeq      []uint64 // control frames published toward each peer
	rxCtrlSeen     []uint64 // latest control sequence consumed from each peer
	Resets         uint64   // channel resets completed as the wedged sender

	// Channel incarnations guard against PEER AMNESIA: a peer process
	// that crashed and restarted comes back with every cursor at zero
	// while our cursors for it are far ahead, and — unlike a partition —
	// nothing on the data path ever fails, so the wedge latch alone
	// cannot catch it. Each messenger picks a nonzero per-boot
	// incarnation, publishes it once into each peer's copy of its credit
	// line, and stamps it on reset proposals. A peer whose credit-line
	// incarnation CHANGES has provably lost its messenger state: we wedge
	// the send path so the next send renegotiates, and the reset
	// handshake accepts the reborn peer's from-zero proposal that the
	// monotone generation rule would otherwise ignore.
	inc        uint64   // this boot's incarnation, nonzero
	peerInc    []uint64 // incarnation last seen in each peer's credit line
	propInc    []uint64 // incarnation last accepted with a reset proposal
	introduced []bool   // incarnation delivered into the peer's segment

	rxQueue []Message
	rxCtrl  []Message

	// Counters for the experiment harness.
	Pushed uint64 // messages sent via push
	Pulled uint64 // messages sent via pull
}

// NewMessenger attaches a messenger to ctx using qp for its remote
// operations. The context segment must be at least
// cfg.RegionOffset + MessengerRegionSize(cluster nodes, cfg) bytes.
func NewMessenger(ctx *Context, qp *QP, cfg MessengerConfig) (*Messenger, error) {
	cfg = cfg.withDefaults()
	n := ctx.Node().Cluster().Nodes()
	need := cfg.RegionOffset + MessengerRegionSize(n, cfg)
	if ctx.SegmentSize() < need {
		return nil, fmt.Errorf("sonuma: context segment %d bytes < %d required by messenger", ctx.SegmentSize(), need)
	}
	m := &Messenger{
		ctx: ctx, qp: qp, cfg: cfg, n: n, me: ctx.NodeID(),
		mem:            ctx.Memory(),
		txSeq:          make([]uint64, n),
		rxSeq:          make([]uint64, n),
		lastCreditSent: make([]uint64, n),
		stagingGen:     make([][]uint64, n),
		txBroken:       make([]bool, n),
		txGen:          make([]uint64, n),
		rxGen:          make([]uint64, n),
		txCtrlSeq:      make([]uint64, n),
		rxCtrlSeen:     make([]uint64, n),
		peerInc:        make([]uint64, n),
		propInc:        make([]uint64, n),
		introduced:     make([]bool, n),
	}
	for i := range m.stagingGen {
		m.stagingGen[i] = make([]uint64, cfg.StagingSlots)
	}
	// The incarnation only needs to differ across boots of the same node
	// id and never be zero (zero means "not yet published").
	m.inc = uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<48
	if m.inc == 0 {
		m.inc = 1
	}
	if cfg.BootResync {
		for p := 0; p < n; p++ {
			if p != m.me {
				m.txBroken[p] = true
			}
		}
	}
	m.ringBase = cfg.RegionOffset
	m.creditBase = m.ringBase + n*cfg.RingSlots*slotSize
	m.ackBase = m.creditBase + n*slotSize
	m.resetBase = m.ackBase + core.AlignUp(n*cfg.StagingSlots*8)
	m.ctrlBase = m.resetBase + n*slotSize
	m.stagBase = m.ctrlBase + n*slotSize

	var err error
	if m.sendBuf, err = ctx.AllocBuffer(cfg.RingSlots * slotSize); err != nil {
		return nil, err
	}
	if m.pullBuf, err = ctx.AllocBuffer(cfg.StagingSize); err != nil {
		return nil, err
	}
	if m.tiny, err = ctx.AllocBuffer(slotSize); err != nil {
		return nil, err
	}
	if m.ctrlBuf, err = ctx.AllocBuffer(slotSize); err != nil {
		return nil, err
	}
	m.batch = qp.NewBatch()
	return m, nil
}

// reachable reports whether the fabric can currently carry traffic between
// this node and peer p. The messenger's blocking loops (credit waits,
// staging-ack waits, continuation-slot waits) consult it so a peer falling
// off the fabric mid-conversation surfaces as an error or a dropped
// message instead of an unbounded spin.
func (m *Messenger) reachable(p int) bool {
	return m.ctx.node.cluster.ic.Reachable(core.NodeID(m.me), core.NodeID(p))
}

// errPeerDown is the error delivered when a send's destination becomes
// unreachable; it carries StatusNodeFailure so callers can errors.As it
// exactly like a failed remote operation.
func errPeerDown() error {
	return &core.RemoteError{Status: core.StatusNodeFailure}
}

// ringOff locates, within the segment of the node owning a ring, the slot
// ring written by sender `from`.
func (m *Messenger) ringOff(from, slot int) int {
	return m.ringBase + from*m.cfg.RingSlots*slotSize + slot*slotSize
}

// creditOff locates, within my segment, the credit line written by peer p.
// Word 0 is p's cumulative consumed-slot count; word 1 is p's boot
// incarnation (see checkPeerIncarnations).
func (m *Messenger) creditOff(p int) int { return m.creditBase + p*slotSize }

// ackOff locates, within the segment of a pull SENDER, the ack word for
// staging slot k toward receiver `rcv`.
func (m *Messenger) ackOff(rcv, k int) int {
	return m.ackBase + (rcv*m.cfg.StagingSlots+k)*8
}

// resetOff locates, within my segment, the reset line written by peer p.
// Word 0 is p's channel-generation proposal for the ring p→me; word 1 is
// p's acknowledgement (the accepted restart point, possibly bumped past
// my proposal) for the ring me→p; word 2 is p's boot incarnation; word 3
// echoes the proposal value word 1 answers.
func (m *Messenger) resetOff(p int) int { return m.resetBase + p*slotSize }

// ctrlOff locates, within my segment, the control line written by peer p:
// a sequence word, a length word, and up to MaxControlFrame payload bytes,
// published whole with one line-atomic remote write.
func (m *Messenger) ctrlOff(p int) int { return m.ctrlBase + p*slotSize }

// stagingOff locates, within my segment, staging slot k toward peer p.
func (m *Messenger) stagingOff(p, k int) int {
	return m.stagBase + (p*m.cfg.StagingSlots+k)*m.cfg.StagingSize
}

// slotsFor reports the ring slots a pushed payload of n bytes occupies.
func slotsFor(n int) int {
	if n <= slotPayload {
		return 1
	}
	return 1 + (n-slotPayload+slotPayload-1)/slotPayload
}

// usePull decides the mechanism for a message of n bytes.
func (m *Messenger) usePull(n int) bool {
	switch m.cfg.Threshold {
	case ThresholdAlwaysPush:
		return false
	case ThresholdAlwaysPull:
		return true
	default:
		return n >= m.cfg.Threshold
	}
}

// Send delivers data to node `to`. It returns when the data has been copied
// out of the caller's slice (push: written into the peer's ring; pull:
// staged in the local segment), so the caller may immediately reuse data.
func (m *Messenger) Send(to int, data []byte) error {
	if to < 0 || to >= m.n {
		return fmt.Errorf("sonuma: send to node %d out of range [0,%d)", to, m.n)
	}
	if to == m.me {
		// Loopback: intra-node communication stays in shared memory.
		cp := make([]byte, len(data))
		copy(cp, data)
		m.rxQueue = append(m.rxQueue, Message{From: m.me, Data: cp})
		return nil
	}
	if !m.usePull(len(data)) {
		if slotsFor(len(data)) <= m.cfg.RingSlots {
			m.Pushed++
			return m.sendPush(to, kindData, data)
		}
		if m.cfg.Threshold == ThresholdAlwaysPush {
			return ErrMessageTooLarge
		}
	}
	// Pull path, splitting at staging-slot granularity.
	for start := 0; start == 0 || start < len(data); start += m.cfg.StagingSize {
		end := start + m.cfg.StagingSize
		if end > len(data) {
			end = len(data)
		}
		if err := m.sendPull(to, data[start:end]); err != nil {
			return err
		}
		m.Pulled++
	}
	return nil
}

// sendPush packetizes data into epoch-stamped line slots and writes them
// into the peer's ring with at most two rmc_writes (one unless the message
// wraps the ring edge). Out-of-order line delivery is tolerated by the
// receiver through the per-slot epoch stamps.
//
// A ring write that fails partway (the fabric dropped some of a message's
// lines) wedges the channel toward that peer: txSeq cannot advance past
// the partial message, and rewriting the same slots with a later message
// would let the receiver stitch fragments of two messages together. While
// the peer stays unreachable, sends fail fast with StatusNodeFailure; once
// the fabric heals, the next send first runs the channel-reset handshake
// (resetChannel) so the pair resynchronizes and the wedge lifts.
func (m *Messenger) sendPush(to int, kind uint32, data []byte) error {
	if m.txBroken[to] {
		if err := m.resetChannel(to); err != nil {
			return err
		}
	}
	nSlots := slotsFor(len(data))
	if nSlots > m.cfg.RingSlots {
		return ErrMessageTooLarge
	}
	// Credit wait: the peer's cumulative consumed count is written into
	// our segment; available = ring − (sent − consumed).
	for spin := 0; ; spin++ {
		consumed, err := m.mem.Load64(m.creditOff(to))
		if err != nil {
			return err
		}
		if int(m.txSeq[to]-consumed)+nSlots <= m.cfg.RingSlots {
			break
		}
		// A peer that fell off the fabric will never return credits.
		if !m.reachable(to) {
			return errPeerDown()
		}
		// While blocked, keep draining inbound traffic so two nodes
		// saturating each other's rings cannot deadlock.
		if err := m.pump(); err != nil {
			return err
		}
		// A reborn peer will never return credits either — its consume
		// cursor restarted from zero. The pump's incarnation scan
		// wedges the channel; renegotiate now (the reset refills the
		// credit window) instead of spinning on credits that cannot
		// come.
		if m.txBroken[to] {
			if err := m.resetChannel(to); err != nil {
				return err
			}
		}
		WaitYield(spin)
	}
	// Compose the slots in the send buffer.
	remaining := data
	for i := 0; i < nSlots; i++ {
		seq := m.txSeq[to] + uint64(i)
		epoch := uint32(seq/uint64(m.cfg.RingSlots)) + 1
		chunk := remaining
		if len(chunk) > slotPayload {
			chunk = chunk[:slotPayload]
		}
		remaining = remaining[len(chunk):]
		meta := kindCont<<28 | uint32(len(chunk))
		if i == 0 {
			meta = kind<<28 | uint32(len(data))&metaLenMask
		}
		var line [slotSize]byte
		binary.LittleEndian.PutUint32(line[0:], epoch)
		binary.LittleEndian.PutUint32(line[4:], meta)
		copy(line[8:], chunk)
		if err := m.sendBuf.WriteAt(i*slotSize, line[:]); err != nil {
			return err
		}
	}
	// Write the contiguous runs (the message may wrap the ring edge) as
	// one batched issue: both rmc_writes post with a single WQ publish
	// and doorbell, and the RGP packs their lines into shared fabric
	// batches toward the peer.
	first := int(m.txSeq[to] % uint64(m.cfg.RingSlots))
	run1 := nSlots
	if first+run1 > m.cfg.RingSlots {
		run1 = m.cfg.RingSlots - first
	}
	m.batch.Write(to, uint64(m.ringOff(m.me, first)), m.sendBuf, 0, run1*slotSize, nil)
	if run2 := nSlots - run1; run2 > 0 {
		m.batch.Write(to, uint64(m.ringOff(m.me, 0)), m.sendBuf, run1*slotSize, run2*slotSize, nil)
	}
	if err := m.batch.SubmitWait(); err != nil {
		// Some of the message's lines may have landed; see the wedge
		// note above.
		m.txBroken[to] = true
		return err
	}
	m.txSeq[to] += uint64(nSlots)
	return nil
}

// resetChannel recovers a wedged send channel toward peer `to`: propose a
// fresh ring restart point in the peer's reset word, wait (pumping, so the
// peer's own reset toward us can complete concurrently) until the peer
// acknowledges it, then resume the ring from that point with matching
// credits. The proposal value is a sequence number, not an opaque
// generation: it is chosen so every post-reset slot carries an epoch stamp
// strictly greater than anything the wedged generation could have written,
// which makes the handshake safe against stragglers — a line of the old
// partial message that lands after the receiver rewound can never match a
// post-reset epoch, so nothing can be stitched. Returns StatusNodeFailure
// if the peer is or becomes unreachable mid-handshake; the channel stays
// wedged and the next send proposes a fresh, higher restart point.
func (m *Messenger) resetChannel(to int) error {
	if !m.reachable(to) {
		return errPeerDown()
	}
	// Skip two whole ring generations past the wedge point: the partial
	// message wrote epochs at most txSeq/RingSlots+2 (it can spill one
	// generation past the wedge), and slots from `start` on carry epoch
	// start/RingSlots+1 and up. Monotone across retries so a re-proposal
	// after a lost acknowledgement always triggers a fresh accept.
	ring := uint64(m.cfg.RingSlots)
	start := (m.txSeq[to]/ring + 2) * ring
	if start <= m.txGen[to] {
		start = m.txGen[to] + ring
	}
	m.txGen[to] = start
	// Stamp the proposal with this boot's incarnation (reset line word 2)
	// before publishing it. For a same-boot wedge the stamp changes
	// nothing; for a reborn proposer it is what lets the receiver accept
	// a from-zero restart point that the monotone generation rule would
	// ignore as a straggler.
	if err := m.tiny.Store64(40, m.inc); err != nil {
		return err
	}
	if err := m.qp.Write(to, uint64(m.resetOff(m.me)+16), m.tiny, 40, 8); err != nil {
		if IsNodeFailure(err) {
			return errPeerDown()
		}
		return err
	}
	if err := m.tiny.Store64(16, start); err != nil {
		return err
	}
	if err := m.qp.Write(to, uint64(m.resetOff(m.me)), m.tiny, 16, 8); err != nil {
		if IsNodeFailure(err) {
			return errPeerDown()
		}
		return err
	}
	// Wait for an acknowledgement OF THIS PROPOSAL: the acker echoes the
	// proposal value it is answering (word 3), because a bumped ack from
	// an abandoned earlier attempt could numerically satisfy a newer
	// proposal while the receiver has since rewound somewhere else
	// entirely. The echo and ack words share the reset line, which the
	// receiver publishes with one line-atomic write, so the pair is never
	// observed torn (echo values are distinct across proposals).
	var ack uint64
	for spin := 0; ; spin++ {
		a, err := m.mem.Load64(m.resetOff(to) + 8)
		if err != nil {
			return err
		}
		echo, err := m.mem.Load64(m.resetOff(to) + 24)
		if err != nil {
			return err
		}
		if echo == start && a >= start {
			ack = a
			break
		}
		if !m.reachable(to) {
			return errPeerDown()
		}
		if err := m.pump(); err != nil {
			return err
		}
		WaitYield(spin)
	}
	// The peer has discarded the partial message and rewound its consume
	// cursor to the acknowledged point; resume our side from the same
	// point with a full ring of credits (consumed == sent). The ack can
	// exceed our proposal: a receiver accepting a REBORN proposer bumps
	// the restart point above its own old consume cursor so no epoch the
	// dead incarnation could have written remains readable, and we adopt
	// its choice.
	if ack > m.txGen[to] {
		m.txGen[to] = ack
	}
	m.txSeq[to] = ack
	if err := m.mem.Store64(m.creditOff(to), ack); err != nil {
		return err
	}
	// Pull transfers staged before the wedge were lost with the partition:
	// their descriptors never completed, so their acknowledgements will
	// never arrive. Resynchronize the staging generations to whatever the
	// peer last acknowledged so every slot is allocatable again.
	for k := range m.stagingGen[to] {
		acked, err := m.mem.Load64(m.ackOff(to, k))
		if err != nil {
			return err
		}
		m.stagingGen[to][k] = acked
	}
	m.txBroken[to] = false
	m.Resets++
	return nil
}

// handleResets is the receiver half of the channel-reset handshake: for
// each peer that proposed a restart point newer than the one we last
// accepted, discard the partial message (zero the peer's ring for
// hygiene — the epoch scheme already makes stale slots unreadable), rewind
// the consume cursor to the restart point, and acknowledge it. If the
// acknowledgement write is lost to another failure the peer stays wedged
// and will re-propose a strictly higher point, so accepting first keeps
// the retry path idempotent.
func (m *Messenger) handleResets() error {
	for p := 0; p < m.n; p++ {
		if p == m.me {
			continue
		}
		req, err := m.mem.Load64(m.resetOff(p))
		if err != nil {
			return err
		}
		if req == 0 {
			continue
		}
		pinc, err := m.mem.Load64(m.resetOff(p) + 16)
		if err != nil {
			return err
		}
		// A proposal stamped with an incarnation we have not accepted
		// before bypasses the monotone-generation rule: a REBORN
		// proposer restarts its generations from zero, so its (low)
		// proposal would otherwise be indistinguishable from a
		// straggler and ignored forever.
		fresh := pinc != 0 && pinc != m.propInc[p]
		if req <= m.rxGen[p] && !fresh {
			continue
		}
		point := req
		if fresh {
			// The reborn proposer cannot know how far its dead
			// incarnation advanced this ring; restart far enough past
			// our own consume cursor that no line the old incarnation
			// could have written carries a still-readable epoch. (The
			// proposer adopts the bumped point from the ack.)
			ring := uint64(m.cfg.RingSlots)
			if floor := (m.rxSeq[p]/ring + 3) * ring; point < floor {
				point = floor
			}
			m.propInc[p] = pinc
			// Its control sequence restarted from zero too: rewind,
			// and clear the stale frame so it is not re-delivered.
			m.rxCtrlSeen[p] = 0
			var zl [slotSize]byte
			if err := m.mem.WriteAt(m.ctrlOff(p), zl[:]); err != nil {
				return err
			}
		}
		m.rxGen[p] = point
		zero := make([]byte, m.cfg.RingSlots*slotSize)
		if err := m.mem.WriteAt(m.ringOff(p, 0), zero); err != nil {
			return err
		}
		m.rxSeq[p] = point
		m.lastCreditSent[p] = point
		// Acknowledge with the accepted restart point, our incarnation,
		// and an echo of the proposal being answered (reset line words
		// 1..3, one line-atomic write; the tiny-buffer offsets are
		// transient scratch shared with other sync writes).
		if err := m.tiny.Store64(40, point); err != nil {
			return err
		}
		if err := m.tiny.Store64(48, m.inc); err != nil {
			return err
		}
		if err := m.tiny.Store64(56, req); err != nil {
			return err
		}
		if err := m.qp.Write(p, uint64(m.resetOff(m.me)+8), m.tiny, 40, 24); err != nil && !IsNodeFailure(err) {
			return err
		}
	}
	return nil
}

// sendPull stages chunk in the local segment and pushes a 24-byte
// descriptor; the receiver fetches the payload with one rmc_read and
// acknowledges by writing the staging generation into our ack word.
func (m *Messenger) sendPull(to int, chunk []byte) error {
	// A wedged channel must reset before staging: stale staging
	// generations from the lost partition would otherwise make every slot
	// look permanently busy.
	if m.txBroken[to] {
		if err := m.resetChannel(to); err != nil {
			return err
		}
	}
	k, err := m.allocStaging(to)
	if err != nil {
		return err
	}
	gen := m.stagingGen[to][k]
	off := m.stagingOff(to, k)
	if err := m.mem.WriteAt(off, chunk); err != nil {
		return err
	}
	var desc [24]byte
	binary.LittleEndian.PutUint64(desc[0:], uint64(off))
	binary.LittleEndian.PutUint64(desc[8:], uint64(len(chunk)))
	binary.LittleEndian.PutUint32(desc[16:], uint32(k))
	binary.LittleEndian.PutUint32(desc[20:], uint32(gen))
	return m.sendPush(to, kindPull, desc[:])
}

// allocStaging returns a free staging slot toward peer `to`, draining
// inbound traffic while all are awaiting acknowledgement.
func (m *Messenger) allocStaging(to int) (int, error) {
	for spin := 0; ; spin++ {
		for k := 0; k < m.cfg.StagingSlots; k++ {
			acked, err := m.mem.Load64(m.ackOff(to, k))
			if err != nil {
				return 0, err
			}
			if acked >= m.stagingGen[to][k] {
				m.stagingGen[to][k]++
				return k, nil
			}
		}
		// A peer that fell off the fabric will never acknowledge.
		if !m.reachable(to) {
			return 0, errPeerDown()
		}
		if err := m.pump(); err != nil {
			return 0, err
		}
		// A reborn peer lost the descriptors it owed acks for; the
		// reset resynchronizes the staging generations (see
		// resetChannel), freeing every slot.
		if m.txBroken[to] {
			if err := m.resetChannel(to); err != nil {
				return 0, err
			}
		}
		WaitYield(spin)
	}
}

// SendControl publishes a control frame toward node `to`. Control frames
// are the messenger's second frame class, added for configuration-epoch
// and lease traffic (see internal/kvs): each sender owns ONE dedicated
// line in the receiver's segment, published whole with a single
// line-atomic rmc_write, so a control frame can never be blocked behind
// data-ring backpressure — a leader renewing its lease must not wait on a
// full PUT ring. The channel is deliberately lossy with latest-wins
// semantics: a frame published before the receiver polled the previous
// one replaces it. Callers therefore send only idempotent, periodically
// re-published state (lease renewals, grants, epoch-change nudges,
// repair-completion reports), never one-shot commands.
func (m *Messenger) SendControl(to int, data []byte) error {
	if to < 0 || to >= m.n {
		return fmt.Errorf("sonuma: control send to node %d out of range [0,%d)", to, m.n)
	}
	if len(data) > MaxControlFrame {
		return ErrControlTooLarge
	}
	if to == m.me {
		cp := make([]byte, len(data))
		copy(cp, data)
		m.rxCtrl = append(m.rxCtrl, Message{From: m.me, Data: cp})
		return nil
	}
	m.txCtrlSeq[to]++
	var line [slotSize]byte
	binary.LittleEndian.PutUint64(line[0:], m.txCtrlSeq[to])
	binary.LittleEndian.PutUint32(line[8:], uint32(len(data)))
	copy(line[ctrlHdr:], data)
	if err := m.ctrlBuf.WriteAt(0, line[:]); err != nil {
		return err
	}
	if err := m.qp.Write(to, uint64(m.ctrlOff(m.me)), m.ctrlBuf, 0, slotSize); err != nil {
		if IsNodeFailure(err) {
			return errPeerDown()
		}
		return err
	}
	return nil
}

// pollControl scans every peer's control line and queues frames newer than
// the last consumed sequence. Reading the line is torn-free (one cache
// line), so a frame is always observed whole.
func (m *Messenger) pollControl() error {
	for p := 0; p < m.n; p++ {
		if p == m.me {
			continue
		}
		var line [slotSize]byte
		if err := m.mem.ReadAt(m.ctrlOff(p), line[:]); err != nil {
			return err
		}
		seq := binary.LittleEndian.Uint64(line[0:])
		if seq == 0 || seq <= m.rxCtrlSeen[p] {
			continue
		}
		m.rxCtrlSeen[p] = seq
		length := int(binary.LittleEndian.Uint32(line[8:]))
		if length > MaxControlFrame {
			continue // mismatched configurations; drop rather than wedge
		}
		data := make([]byte, length)
		copy(data, line[ctrlHdr:ctrlHdr+length])
		m.rxCtrl = append(m.rxCtrl, Message{From: p, Data: data})
	}
	return nil
}

// TryRecvControl returns the next pending control frame without blocking.
// Frames are per-sender latest-wins: a sender that published twice between
// polls delivers only the newer frame.
func (m *Messenger) TryRecvControl() (Message, bool, error) {
	if err := m.pollControl(); err != nil {
		return Message{}, false, err
	}
	if len(m.rxCtrl) == 0 {
		return Message{}, false, nil
	}
	msg := m.rxCtrl[0]
	m.rxCtrl = m.rxCtrl[1:]
	return msg, true, nil
}

// Recv returns the next message, blocking until one arrives.
func (m *Messenger) Recv() (Message, error) {
	for spin := 0; ; spin++ {
		if msg, ok, err := m.TryRecv(); err != nil || ok {
			return msg, err
		}
		WaitYield(spin)
	}
}

// TryRecv returns a pending message without blocking.
func (m *Messenger) TryRecv() (Message, bool, error) {
	if err := m.pump(); err != nil {
		return Message{}, false, err
	}
	if len(m.rxQueue) == 0 {
		return Message{}, false, nil
	}
	msg := m.rxQueue[0]
	m.rxQueue = m.rxQueue[1:]
	return msg, true, nil
}

// Poll processes inbound protocol traffic (message assembly, pull fetches,
// credit returns) without receiving; senders blocked on our credits make
// progress when we poll.
func (m *Messenger) Poll() error { return m.pump() }

// pump performs one non-blocking pass over all peers' rings, serving
// channel-reset proposals first so a wedged peer can resynchronize.
func (m *Messenger) pump() error {
	if err := m.checkPeerIncarnations(); err != nil {
		return err
	}
	if err := m.handleResets(); err != nil {
		return err
	}
	for p := 0; p < m.n; p++ {
		if p == m.me {
			continue
		}
		m.introduce(p)
		for {
			progressed, err := m.tryConsume(p)
			if err != nil {
				return err
			}
			if !progressed {
				break
			}
		}
		if err := m.flushCredits(p, false); err != nil {
			return err
		}
	}
	return nil
}

// readSlot fetches ring slot (p, seq) if its epoch has been published.
func (m *Messenger) readSlot(p int, seq uint64) (epochOK bool, meta uint32, payload [slotPayload]byte, err error) {
	slot := int(seq % uint64(m.cfg.RingSlots))
	expect := uint32(seq/uint64(m.cfg.RingSlots)) + 1
	var line [slotSize]byte
	if err = m.mem.ReadAt(m.ringOff(p, slot), line[:]); err != nil {
		return false, 0, payload, err
	}
	if binary.LittleEndian.Uint32(line[0:]) != expect {
		return false, 0, payload, nil
	}
	meta = binary.LittleEndian.Uint32(line[4:])
	copy(payload[:], line[8:])
	return true, meta, payload, nil
}

// tryConsume consumes at most one message head from peer p's ring.
func (m *Messenger) tryConsume(p int) (bool, error) {
	ok, meta, payload, err := m.readSlot(p, m.rxSeq[p])
	if err != nil || !ok {
		return false, err
	}
	kind := meta >> 28
	length := int(meta & metaLenMask)
	switch kind {
	case kindData, kindPull:
	default:
		return false, errProtocol
	}
	nSlots := slotsFor(length)
	data := make([]byte, 0, length)
	take := length
	if take > slotPayload {
		take = slotPayload
	}
	data = append(data, payload[:take]...)
	// Continuation slots of one rmc_write may land out of order; spin
	// briefly on each epoch stamp in turn. If a line does not appear, the
	// message is either still in flight (retry on a later pump pass) or
	// was cut off by a fabric failure and will never arrive (the sender
	// wedges that channel rather than rewriting the slots, see
	// sendPush) — either way, park at the head instead of spinning so
	// one stalled peer cannot wedge the whole messenger.
	for i := 1; i < nSlots; i++ {
		landed := false
		for spin := 0; spin < 4096; spin++ {
			ok, cmeta, cpayload, err := m.readSlot(p, m.rxSeq[p]+uint64(i))
			if err != nil {
				return false, err
			}
			if ok {
				if cmeta>>28 != kindCont {
					return false, errProtocol
				}
				data = append(data, cpayload[:cmeta&metaLenMask]...)
				landed = true
				break
			}
			if !m.reachable(p) {
				return false, nil
			}
			runtime.Gosched()
		}
		if !landed {
			return false, nil
		}
	}
	m.rxSeq[p] += uint64(nSlots)

	switch kind {
	case kindData:
		m.rxQueue = append(m.rxQueue, Message{From: p, Data: data})
	case kindPull:
		if len(data) != 24 {
			return false, errProtocol
		}
		srcOff := binary.LittleEndian.Uint64(data[0:])
		dataLen := int(binary.LittleEndian.Uint64(data[8:]))
		slotIdx := int(binary.LittleEndian.Uint32(data[16:]))
		gen := uint64(binary.LittleEndian.Uint32(data[20:]))
		if dataLen > m.pullBuf.Size() {
			return false, errProtocol
		}
		// Single rmc_read of the staged payload (§5.3 pull).
		if err := m.qp.Read(p, srcOff, m.pullBuf, 0, maxInt(dataLen, 1)); err != nil {
			if IsNodeFailure(err) {
				// The sender died with the payload staged on its side;
				// the descriptor's slots are already consumed, so the
				// message is simply lost with its sender.
				return true, nil
			}
			return false, err
		}
		body := make([]byte, dataLen)
		if dataLen > 0 {
			if err := m.pullBuf.ReadAt(0, body); err != nil {
				return false, err
			}
		}
		// Acknowledge by writing the generation into the sender's ack
		// word — the "zero-length message" completion signal of §5.3. A
		// failed ack means the sender is gone; the payload is still
		// delivered locally.
		if err := m.tiny.Store64(0, gen); err != nil {
			return false, err
		}
		if err := m.qp.Write(p, uint64(m.ackOff(m.me, slotIdx)), m.tiny, 0, 8); err != nil && !IsNodeFailure(err) {
			return false, err
		}
		m.rxQueue = append(m.rxQueue, Message{From: p, Data: body})
	}
	return true, nil
}

// flushCredits publishes our consumed-slot count to peer p when the unsent
// delta justifies a write (or force is set). An unreachable peer is
// skipped — the debt stays recorded and flushes after a link restore.
func (m *Messenger) flushCredits(p int, force bool) error {
	debt := m.rxSeq[p] - m.lastCreditSent[p]
	if debt == 0 {
		return nil
	}
	if !force && int(debt) < maxInt(1, m.cfg.RingSlots/4) {
		return nil
	}
	if !m.reachable(p) {
		return nil
	}
	if err := m.tiny.Store64(8, m.rxSeq[p]); err != nil {
		return err
	}
	if err := m.qp.Write(p, uint64(m.creditOff(m.me)), m.tiny, 8, 8); err != nil {
		if IsNodeFailure(err) {
			return nil // raced with a failure; retry after restore
		}
		return err
	}
	m.lastCreditSent[p] = m.rxSeq[p]
	return nil
}

// introduce publishes this boot's incarnation into peer p's copy of our
// credit line (word 1; word 0 is the credit count). One successful write
// per boot per peer suffices — the incarnation never changes while this
// process lives — and until it lands the peer simply cannot distinguish
// this boot from the last one, which is exactly the pre-incarnation
// behavior. Failures are ignored; the next pump retries.
func (m *Messenger) introduce(p int) {
	if m.introduced[p] || !m.reachable(p) {
		return
	}
	if m.tiny.Store64(32, m.inc) != nil {
		return
	}
	if err := m.qp.Write(p, uint64(m.creditOff(m.me)+8), m.tiny, 32, 8); err == nil {
		m.introduced[p] = true
	}
}

// checkPeerIncarnations scans each peer's credit-line incarnation word. A
// CHANGE from one nonzero value to another proves the peer's process was
// reborn with amnesia — its receive cursors for us are gone while ours
// for it raced ahead, and no data-path error will ever say so. Wedge the
// send path; the next send runs the reset handshake, which the reborn
// peer (all generations at zero) accepts. The receive direction needs no
// action here: the reborn peer proposes its own reset (BootResync), and
// handleResets recognizes its fresh incarnation.
func (m *Messenger) checkPeerIncarnations() error {
	for p := 0; p < m.n; p++ {
		if p == m.me {
			continue
		}
		inc, err := m.mem.Load64(m.creditOff(p) + 8)
		if err != nil {
			return err
		}
		if inc == 0 || inc == m.peerInc[p] {
			continue
		}
		if m.peerInc[p] != 0 {
			m.txBroken[p] = true
		}
		m.peerInc[p] = inc
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WaitYield paces a blocking poll loop: pure yields for the first
// iterations (credits and acks usually arrive within microseconds, and
// sleeping would cost latency), then short sleeps. The sleep tier
// matters on CPU-starved hosts — a single-core machine running a
// multi-process cluster can have dozens of goroutines parked in these
// loops, and pure Gosched spinning starves the very peer processes
// whose progress the waiters depend on (heartbeats miss, nodes get
// evicted, and the cluster collapses under its own polling).
func WaitYield(spin int) {
	if spin < 256 {
		runtime.Gosched()
		return
	}
	time.Sleep(200 * time.Microsecond)
}
