// Package sonuma is a Go implementation of Scale-Out NUMA (soNUMA), the
// architecture, programming model and communication protocol for low-latency
// distributed in-memory processing introduced by Novakovic, Daglis, Bugnion,
// Falsafi and Grot (ASPLOS 2014).
//
// soNUMA exposes a partitioned global virtual address space across the nodes
// of a rack-scale cluster. Application threads issue explicit one-sided
// remote read, write and atomic operations with copy semantics against that
// address space through queue pairs (a work queue the application writes and
// a completion queue the remote memory controller writes). The remote memory
// controller (RMC) — the paper's core contribution — converts those
// operations into a stateless request/reply protocol at cache-line
// granularity over a NUMA memory fabric.
//
// This package is the paper's "development platform" (§7.1) in library form:
// a functional, wall-clock-speed emulation in which every soNUMA node runs
// inside the calling process, with the RMC pipelines (request generation,
// remote request processing, request completion) executing on dedicated
// goroutines and nodes exchanging protocol packets over an in-process memory
// fabric with credit-based flow control and two virtual lanes. The
// cycle-level hardware model that reproduces the paper's simulated-hardware
// results lives in internal/simhw and is driven by the benchmark harness.
//
// # Quick start
//
//	cluster, _ := sonuma.NewCluster(sonuma.Config{Nodes: 2})
//	defer cluster.Close()
//
//	// Every participating node opens the same context id, contributing
//	// its local segment to the global address space.
//	c0, _ := cluster.Node(0).OpenContext(1, 1<<20)
//	c1, _ := cluster.Node(1).OpenContext(1, 1<<20)
//
//	// Node 1 publishes data in its segment; node 0 reads it remotely.
//	c1.Memory().WriteAt(0, []byte("hello, rack-scale world"))
//	qp, _ := c0.NewQP(64)
//	buf, _ := c0.AllocBuffer(64)
//	_ = qp.Read(1, 0, buf, 0, 23) // one-sided remote read
//
// The messaging and synchronization primitives of §5.3 — unsolicited
// send/receive with the push/pull threshold and barriers — are implemented
// entirely in software on top of the one-sided operations, exactly as in the
// paper; see Messenger and Barrier.
//
// # Atomics and their operands
//
// Two remote atomics are exposed, FetchAdd and CompareSwap, both acting on
// an 8-byte word that must be 8-byte aligned and must not straddle a cache
// line (StatusBadAlign otherwise). They execute inside the destination
// node's coherence domain, so they are atomic against that node's local
// loads, stores and Memory.FetchAdd64 as well as against other remote
// atomics (§5.2, §7.4).
//
// Operand convention, end to end: the WQ entry carries the operands in
// Arg0/Arg1 (FetchAdd: Arg0 = delta; CompareSwap: Arg0 = expected, Arg1 =
// new value). On the wire the request packet carries them in its payload (8
// bytes for FetchAdd, expected||new = 16 bytes for CompareSwap) and the
// reply returns the 8-byte prior value. At the API, the prior value lands
// in an optional result buffer: pass a nil *Buffer to the Issue*/Batch
// forms to discard it (encoded internally as buffer id ^uint32(0)), or use
// the synchronous QP.FetchAdd / QP.CompareSwap, which return it directly
// from a QP-owned scratch buffer.
//
// # Batching and doorbells
//
// The data path is batched at two independent layers:
//
//   - Application → RMC: a work-queue post publishes the ring tail and
//     rings the RMC's doorbell (a buffered-channel wakeup). Batch
//     (QP.NewBatch) stages k operations and posts them with one tail
//     publish and one doorbell per contiguous run of free slots
//     (qpring.PostMany), so a burst pays one RMC wakeup instead of k. The
//     RMC then observes the whole burst in a single scheduling pass.
//   - RMC → fabric: the request generation pipeline unrolls WQ entries
//     into line-sized packets and packs them into per-destination batches
//     of up to MaxBatch lines (Config.BatchSize). One fabric send — and
//     one flow-control credit — covers the whole batch; the remote request
//     pipeline answers a k-line inbound batch with one k-line reply batch.
//     Packets and batches are pooled, so steady-state reads allocate
//     nothing.
//
// Completions travel the reverse path: the RMC posts CQ entries and kicks
// the QP's completion doorbell; the application side spin-polls briefly
// before parking on it (QP.Poll / DrainCQ / the synchronous operations).
package sonuma
