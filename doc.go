// Package sonuma is a Go implementation of Scale-Out NUMA (soNUMA), the
// architecture, programming model and communication protocol for low-latency
// distributed in-memory processing introduced by Novakovic, Daglis, Bugnion,
// Falsafi and Grot (ASPLOS 2014).
//
// soNUMA exposes a partitioned global virtual address space across the nodes
// of a rack-scale cluster. Application threads issue explicit one-sided
// remote read, write and atomic operations with copy semantics against that
// address space through queue pairs (a work queue the application writes and
// a completion queue the remote memory controller writes). The remote memory
// controller (RMC) — the paper's core contribution — converts those
// operations into a stateless request/reply protocol at cache-line
// granularity over a NUMA memory fabric.
//
// This package is the paper's "development platform" (§7.1) in library form:
// a functional, wall-clock-speed emulation in which every soNUMA node runs
// inside the calling process, with the RMC pipelines (request generation,
// remote request processing, request completion) executing on dedicated
// goroutines and nodes exchanging protocol packets over an in-process memory
// fabric with credit-based flow control and two virtual lanes. The
// cycle-level hardware model that reproduces the paper's simulated-hardware
// results lives in internal/simhw and is driven by the benchmark harness.
//
// # Quick start
//
//	cluster, _ := sonuma.NewCluster(sonuma.Config{Nodes: 2})
//	defer cluster.Close()
//
//	// Every participating node opens the same context id, contributing
//	// its local segment to the global address space.
//	c0, _ := cluster.Node(0).OpenContext(1, 1<<20)
//	c1, _ := cluster.Node(1).OpenContext(1, 1<<20)
//
//	// Node 1 publishes data in its segment; node 0 reads it remotely.
//	c1.Memory().WriteAt(0, []byte("hello, rack-scale world"))
//	qp, _ := c0.NewQP(64)
//	buf, _ := c0.AllocBuffer(64)
//	_ = qp.Read(1, 0, buf, 0, 23) // one-sided remote read
//
// The messaging and synchronization primitives of §5.3 — unsolicited
// send/receive with the push/pull threshold and barriers — are implemented
// entirely in software on top of the one-sided operations, exactly as in the
// paper; see Messenger and Barrier.
package sonuma
