package sonuma

import (
	"sonuma/internal/core"
)

// This file implements the remote-notification extension the paper lists as
// the architecture's natural next step (§8, "Open issues": "the ability to
// issue remote interrupts as part of an RMC command, so that nodes can
// communicate without polling"). WriteNotify is a one-sided remote write
// whose final line transaction additionally raises a software handler — the
// "interrupt" — at the destination, which system software converts into an
// application message (here: a callback or channel).
//
// Semantics: handling stays stateless at the destination, so the
// notification is tied to the write's LAST line transaction. Lines of a
// multi-line write may land out of order, so the notification is a doorbell,
// not a delivery receipt for the whole payload; single-line writes (≤ 64
// bytes) get exact arrival semantics. Protocols needing multi-line delivery
// validation stamp their payloads exactly as the polling messenger does.

// Notification describes one remote interrupt.
type Notification struct {
	// From is the node that issued the WriteNotify.
	From int
	// Offset is the base segment offset of the triggering write.
	Offset uint64
	// Bytes is the write's total length.
	Bytes int
}

// OnNotify installs fn as the context's remote-interrupt handler, replacing
// any previous handler (nil removes it). The handler runs on the node's
// remote request processing pipeline and must not block; forward into a
// channel or queue for real work.
func (c *Context) OnNotify(fn func(Notification)) {
	if fn == nil {
		c.cs.SetNotifyHandler(nil)
		return
	}
	c.cs.SetNotifyHandler(func(src core.NodeID, offset uint64, n int) {
		fn(Notification{From: int(src), Offset: offset, Bytes: n})
	})
}

// NotifyChan installs a channel-backed handler and returns the channel.
// Notifications that arrive while the channel is full are dropped, like
// coalesced interrupts; consumers treat the channel as a doorbell and
// re-scan their mailboxes.
func (c *Context) NotifyChan(capacity int) <-chan Notification {
	if capacity <= 0 {
		capacity = 64
	}
	ch := make(chan Notification, capacity)
	c.OnNotify(func(n Notification) {
		select {
		case ch <- n:
		default:
		}
	})
	return ch
}

// IssueWriteNotify schedules a remote write of n bytes from buf at bufOff
// to (node, offset) that raises the destination context's notification
// handler after its final line is written.
func (q *QP) IssueWriteNotify(slot int, node int, offset uint64, buf *Buffer, bufOff int, n int) error {
	e, err := bufOpEntry(core.OpWriteNotify, node, offset, buf, bufOff, n)
	return q.issue(slot, e, err)
}

// WriteNotifyAsync is WaitForSlot + IssueWriteNotify.
func (q *QP) WriteNotifyAsync(node int, offset uint64, buf *Buffer, bufOff int, n int, cb Completion) (int, error) {
	slot, err := q.WaitForSlot(cb)
	if err != nil {
		return 0, err
	}
	return slot, q.IssueWriteNotify(slot, node, offset, buf, bufOff, n)
}

// WriteNotify performs a blocking remote write-with-notification.
func (q *QP) WriteNotify(node int, offset uint64, buf *Buffer, bufOff int, n int) error {
	return q.execSync(func(slot int) error {
		return q.IssueWriteNotify(slot, node, offset, buf, bufOff, n)
	})
}
