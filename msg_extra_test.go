package sonuma_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sonuma"
)

func TestMessengerAlwaysPull(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{Threshold: sonuma.ThresholdAlwaysPull})
	done := make(chan error, 1)
	go func() {
		m, err := ms[1].Recv()
		if err == nil && string(m.Data) != "tiny" {
			err = fmt.Errorf("data %q", m.Data)
		}
		done <- err
	}()
	if err := ms[0].Send(1, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ms[0].Pulled != 1 || ms[0].Pushed != 0 {
		t.Fatalf("pull-only messenger pushed=%d pulled=%d", ms[0].Pushed, ms[0].Pulled)
	}
}

func TestMessengerLoopback(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{})
	if err := ms[0].Send(0, []byte("to-self")); err != nil {
		t.Fatal(err)
	}
	m, err := ms[0].Recv()
	if err != nil || m.From != 0 || string(m.Data) != "to-self" {
		t.Fatalf("loopback: %+v %v", m, err)
	}
}

func TestMessengerPollMakesProgressForPeers(t *testing.T) {
	// A sender blocked on ring credits resumes when the receiver calls
	// Poll (not Recv) — Poll processes inbound traffic and returns
	// credits.
	ms := newMessengers(t, 2, sonuma.MessengerConfig{RingSlots: 4})
	sent := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 40 && err == nil; i++ {
			err = ms[0].Send(1, []byte("spam"))
		}
		sent <- err
	}()
	got := 0
	for got < 40 {
		if err := ms[1].Poll(); err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := ms[1].TryRecv()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got++
		}
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerInterleavedSizes(t *testing.T) {
	// Push and pull messages interleave on one connection and arrive in
	// order with intact payloads.
	ms := newMessengers(t, 2, sonuma.MessengerConfig{Threshold: 128})
	var want [][]byte
	for i := 0; i < 30; i++ {
		size := 16
		if i%3 == 1 {
			size = 500 // pulled
		} else if i%3 == 2 {
			size = 127 // pushed, multi-slot
		}
		msg := bytes.Repeat([]byte{byte(i)}, size)
		want = append(want, msg)
	}
	done := make(chan error, 1)
	go func() {
		for i := range want {
			m, err := ms[1].Recv()
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(m.Data, want[i]) {
				done <- fmt.Errorf("message %d: %d bytes, want %d", i, len(m.Data), len(want[i]))
				return
			}
		}
		done <- nil
	}()
	for _, msg := range want {
		if err := ms[0].Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerRegionSizeAccounts(t *testing.T) {
	cfg := sonuma.MessengerConfig{RingSlots: 32, StagingSlots: 2, StagingSize: 4096}
	size := sonuma.MessengerRegionSize(4, cfg)
	// rings: 4*32*64; credits: 4*64; acks: align64(4*2*8); resets: 4*64;
	// control lines: 4*64; staging: 4*2*4096
	want := 4*32*64 + 4*64 + 64 + 4*64 + 4*64 + 4*2*4096
	if size != want {
		t.Fatalf("region size %d, want %d", size, want)
	}
	// A too-small segment is rejected up front.
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, _ := cl.Node(0).OpenContext(1, 1024)
	qp, _ := ctx.NewQP(8)
	if _, err := sonuma.NewMessenger(ctx, qp, cfg); err == nil {
		t.Fatal("undersized segment accepted")
	}
}

// TestMessengerControlFrames exercises the lossy latest-wins control
// channel: frames arrive whole, a burst published between polls collapses
// to the newest frame, oversized frames are rejected, and control delivery
// keeps working while the data ring toward the receiver is saturated.
func TestMessengerControlFrames(t *testing.T) {
	const n = 2
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	mcfg := sonuma.MessengerConfig{RingSlots: 8}
	segSize := sonuma.MessengerRegionSize(n, mcfg) + 4096
	ms := make([]*sonuma.Messenger, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(1, segSize)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ctx.NewQP(0)
		if err != nil {
			t.Fatal(err)
		}
		if ms[i], err = sonuma.NewMessenger(ctx, qp, mcfg); err != nil {
			t.Fatal(err)
		}
	}

	// Single frame round trip.
	if err := ms[0].SendControl(1, []byte("lease-renew")); err != nil {
		t.Fatal(err)
	}
	var got sonuma.Message
	ok := false
	for i := 0; i < 1000 && !ok; i++ {
		if got, ok, err = ms[1].TryRecvControl(); err != nil {
			t.Fatal(err)
		}
	}
	if !ok || string(got.Data) != "lease-renew" {
		t.Fatalf("control recv = %q ok=%v, want lease-renew", got.Data, ok)
	}

	// A burst published between polls collapses to the latest frame.
	for i := 0; i < 5; i++ {
		if err := ms[0].SendControl(1, []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := []byte{}
	for i := 0; i < 1000; i++ {
		m, ok, err := ms[1].TryRecvControl()
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			seen = append(seen, m.Data...)
		}
	}
	if len(seen) == 0 || seen[len(seen)-1] != 'e' {
		t.Fatalf("latest-wins violated: saw %q, want final frame 'e'", seen)
	}

	// Oversized frames are rejected outright.
	if err := ms[0].SendControl(1, make([]byte, sonuma.MaxControlFrame+1)); err != sonuma.ErrControlTooLarge {
		t.Fatalf("oversized control frame: %v, want ErrControlTooLarge", err)
	}

	// Saturate the 0→1 data ring (node 1 never consumes); control frames
	// still get through because they bypass ring credits entirely.
	small := make([]byte, 8)
	for i := 0; i < mcfg.RingSlots; i++ {
		if err := ms[0].Send(1, small); err != nil {
			t.Fatalf("ring fill %d: %v", i, err)
		}
	}
	if err := ms[0].SendControl(1, []byte("through")); err != nil {
		t.Fatalf("control send with full data ring: %v", err)
	}
	ok = false
	for i := 0; i < 1000 && !ok; i++ {
		if got, ok, err = ms[1].TryRecvControl(); err != nil {
			t.Fatal(err)
		}
	}
	if !ok || string(got.Data) != "through" {
		t.Fatalf("control frame blocked behind full data ring: %q ok=%v", got.Data, ok)
	}
}

func TestBarrierErrors(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, _ := cl.Node(0).OpenContext(1, 8192)
	qp, _ := ctx.NewQP(8)
	if _, err := sonuma.NewBarrier(ctx, qp, 0, []int{1}); err == nil {
		t.Fatal("barrier without self accepted")
	}
	if _, err := sonuma.NewBarrier(ctx, qp, 0, []int{0, 1, 1}); err == nil {
		t.Fatal("duplicate participant accepted")
	}
	if _, err := sonuma.NewBarrier(ctx, qp, 8192-32, []int{0, 1}); err == nil {
		t.Fatal("undersized barrier region accepted")
	}
}

func TestBarrierFailedPeerSurfaces(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctxs := make([]*sonuma.Context, 2)
	for i := range ctxs {
		ctxs[i], _ = cl.Node(i).OpenContext(1, sonuma.BarrierRegionSize(2)+4096)
	}
	qp, _ := ctxs[0].NewQP(8)
	b, err := sonuma.NewBarrier(ctxs[0], qp, 0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNode(1)
	if err := b.Wait(); err == nil {
		t.Fatal("barrier with failed peer succeeded")
	}
}

func TestMultipleQPsShareOneRMCFairly(t *testing.T) {
	// Several QPs on one node run concurrently from separate goroutines;
	// the RGP's round-robin polling must serve all of them.
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c0, _ := cl.Node(0).OpenContext(1, 1<<16)
	if _, err := cl.Node(1).OpenContext(1, 1<<16); err != nil {
		t.Fatal(err)
	}
	const qps = 6
	var wg sync.WaitGroup
	for q := 0; q < qps; q++ {
		qp, err := c0.NewQP(16)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := c0.AllocBuffer(4096)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(qp *sonuma.QP, buf *sonuma.Buffer) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := qp.Read(1, uint64(i*64), buf, 0, 64); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(qp, buf)
	}
	wg.Wait()
	s := cl.Node(0).RMCStats()
	if s.Completions < qps*200 {
		t.Fatalf("completions %d, want >= %d", s.Completions, qps*200)
	}
}
