package sonuma_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"sonuma"
)

func TestMessengerAlwaysPull(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{Threshold: sonuma.ThresholdAlwaysPull})
	done := make(chan error, 1)
	go func() {
		m, err := ms[1].Recv()
		if err == nil && string(m.Data) != "tiny" {
			err = fmt.Errorf("data %q", m.Data)
		}
		done <- err
	}()
	if err := ms[0].Send(1, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ms[0].Pulled != 1 || ms[0].Pushed != 0 {
		t.Fatalf("pull-only messenger pushed=%d pulled=%d", ms[0].Pushed, ms[0].Pulled)
	}
}

func TestMessengerLoopback(t *testing.T) {
	ms := newMessengers(t, 2, sonuma.MessengerConfig{})
	if err := ms[0].Send(0, []byte("to-self")); err != nil {
		t.Fatal(err)
	}
	m, err := ms[0].Recv()
	if err != nil || m.From != 0 || string(m.Data) != "to-self" {
		t.Fatalf("loopback: %+v %v", m, err)
	}
}

func TestMessengerPollMakesProgressForPeers(t *testing.T) {
	// A sender blocked on ring credits resumes when the receiver calls
	// Poll (not Recv) — Poll processes inbound traffic and returns
	// credits.
	ms := newMessengers(t, 2, sonuma.MessengerConfig{RingSlots: 4})
	sent := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 40 && err == nil; i++ {
			err = ms[0].Send(1, []byte("spam"))
		}
		sent <- err
	}()
	got := 0
	for got < 40 {
		if err := ms[1].Poll(); err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := ms[1].TryRecv()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got++
		}
	}
	if err := <-sent; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerInterleavedSizes(t *testing.T) {
	// Push and pull messages interleave on one connection and arrive in
	// order with intact payloads.
	ms := newMessengers(t, 2, sonuma.MessengerConfig{Threshold: 128})
	var want [][]byte
	for i := 0; i < 30; i++ {
		size := 16
		if i%3 == 1 {
			size = 500 // pulled
		} else if i%3 == 2 {
			size = 127 // pushed, multi-slot
		}
		msg := bytes.Repeat([]byte{byte(i)}, size)
		want = append(want, msg)
	}
	done := make(chan error, 1)
	go func() {
		for i := range want {
			m, err := ms[1].Recv()
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(m.Data, want[i]) {
				done <- fmt.Errorf("message %d: %d bytes, want %d", i, len(m.Data), len(want[i]))
				return
			}
		}
		done <- nil
	}()
	for _, msg := range want {
		if err := ms[0].Send(1, msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestMessengerRegionSizeAccounts(t *testing.T) {
	cfg := sonuma.MessengerConfig{RingSlots: 32, StagingSlots: 2, StagingSize: 4096}
	size := sonuma.MessengerRegionSize(4, cfg)
	// rings: 4*32*64; credits: 4*64; acks: align64(4*2*8); resets: 4*64;
	// staging: 4*2*4096
	want := 4*32*64 + 4*64 + 64 + 4*64 + 4*2*4096
	if size != want {
		t.Fatalf("region size %d, want %d", size, want)
	}
	// A too-small segment is rejected up front.
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, _ := cl.Node(0).OpenContext(1, 1024)
	qp, _ := ctx.NewQP(8)
	if _, err := sonuma.NewMessenger(ctx, qp, cfg); err == nil {
		t.Fatal("undersized segment accepted")
	}
}

func TestBarrierErrors(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, _ := cl.Node(0).OpenContext(1, 8192)
	qp, _ := ctx.NewQP(8)
	if _, err := sonuma.NewBarrier(ctx, qp, 0, []int{1}); err == nil {
		t.Fatal("barrier without self accepted")
	}
	if _, err := sonuma.NewBarrier(ctx, qp, 0, []int{0, 1, 1}); err == nil {
		t.Fatal("duplicate participant accepted")
	}
	if _, err := sonuma.NewBarrier(ctx, qp, 8192-32, []int{0, 1}); err == nil {
		t.Fatal("undersized barrier region accepted")
	}
}

func TestBarrierFailedPeerSurfaces(t *testing.T) {
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctxs := make([]*sonuma.Context, 2)
	for i := range ctxs {
		ctxs[i], _ = cl.Node(i).OpenContext(1, sonuma.BarrierRegionSize(2)+4096)
	}
	qp, _ := ctxs[0].NewQP(8)
	b, err := sonuma.NewBarrier(ctxs[0], qp, 0, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	cl.FailNode(1)
	if err := b.Wait(); err == nil {
		t.Fatal("barrier with failed peer succeeded")
	}
}

func TestMultipleQPsShareOneRMCFairly(t *testing.T) {
	// Several QPs on one node run concurrently from separate goroutines;
	// the RGP's round-robin polling must serve all of them.
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c0, _ := cl.Node(0).OpenContext(1, 1<<16)
	if _, err := cl.Node(1).OpenContext(1, 1<<16); err != nil {
		t.Fatal(err)
	}
	const qps = 6
	var wg sync.WaitGroup
	for q := 0; q < qps; q++ {
		qp, err := c0.NewQP(16)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := c0.AllocBuffer(4096)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(qp *sonuma.QP, buf *sonuma.Buffer) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := qp.Read(1, uint64(i*64), buf, 0, 64); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(qp, buf)
	}
	wg.Wait()
	s := cl.Node(0).RMCStats()
	if s.Completions < qps*200 {
		t.Fatalf("completions %d, want >= %d", s.Completions, qps*200)
	}
}
