package kvs

import (
	"time"

	"sonuma"
)

// This file implements the client's hot-key read cache: the top-N keys a
// client observes (tracked with a space-saver sketch) are served from
// local memory under a per-shard READ LEASE bound to the configuration
// (term, epoch) and the shard's VERSION WORD (store.go bumpShardVer).
// The invalidation timeline:
//
//	fill      read the shard version V from the bound replica, THEN the
//	          value — a put acked before the version read has already
//	          bumped past its commit, so the value read observes it
//	put       leader commits the slot, bumps the shard version (backups
//	          bump inside the replication batch), THEN acks — so by ack
//	          time every replica's version exceeds any pre-put fill tag
//	probe     every lease/2 the client re-reads the bound replica's
//	          version word (8 bytes, one-sided); a changed version drops
//	          the shard's whole cached set
//	fence     a (term, epoch) change — eviction, rotation, succession —
//	          wipes the cache outright; an unreachable or evicted bound
//	          replica drops its shard's set
//
// Own PUTs are handled precisely: the ack carries the leader's post-put
// shard version, so a cache bound to the leader advances its tag and
// updates the written key in place (read-your-writes without a probe);
// any ambiguity — version skipped ahead, cache bound to a backup — drops
// the shard's set instead. The staleness bound for OTHER clients' writes
// is the probe cadence: a cached value can lag a foreign put by at most
// lease/2 < one lease, the same bound a demoted leader's reads already
// live with. No stale read outlives a lease.

// hotPromoteHits is how many sketch touches a key needs before the
// client starts caching it: cold keys and one-shot scans never pay the
// fill's extra version read.
const hotPromoteHits = 4

// ssEntry is one space-saver sketch slot.
type ssEntry struct {
	count uint64 // estimated frequency (inherits the evicted min on entry)
	hits  uint64 // true touches since this key entered the sketch
}

// spaceSaver is the bounded top-N frequency sketch (Metwally et al.'s
// space-saving): capacity slots; a new key evicts the current minimum
// and inherits its count, so a genuinely frequent key is never
// undercounted by more than the evicted minimum.
type spaceSaver struct {
	cap    int
	counts map[string]*ssEntry
	// floor is a lower bound on the minimum count in the sketch; counts
	// only grow and evicted slots re-enter at min+1, so the floor is
	// monotone and lets the eviction scan stop at the first entry sitting
	// on it instead of walking the whole map.
	floor uint64
}

func newSpaceSaver(capacity int) *spaceSaver {
	return &spaceSaver{cap: capacity, counts: make(map[string]*ssEntry, capacity)}
}

// touch records one observation of key and returns its sketch slot.
func (t *spaceSaver) touch(key []byte) *ssEntry {
	if e, ok := t.counts[string(key)]; ok {
		e.count++
		e.hits++
		return e
	}
	e := &ssEntry{count: 1, hits: 1}
	if len(t.counts) >= t.cap {
		minK, minC := "", ^uint64(0)
		for k, s := range t.counts {
			if s.count < minC {
				minK, minC = k, s.count
				if minC <= t.floor {
					break
				}
			}
		}
		delete(t.counts, minK)
		t.floor = minC
		e.count = minC + 1
	}
	t.counts[string(key)] = e
	return e
}

// tracked reports whether key currently occupies a sketch slot.
func (t *spaceSaver) tracked(key string) bool {
	_, ok := t.counts[key]
	return ok
}

// shardBind is one shard's cache lease state: the replica its cached
// reads bind to (version and value MUST come from the same replica — the
// version words of different replicas advance independently), the last
// observed shard version, the next probe deadline, and the cached keys
// for wholesale drops.
type shardBind struct {
	node    int
	ver     uint64
	checkAt time.Time
	keys    map[string]struct{}
}

// hotCache is a client's cache state. Single-goroutine like the Client
// that owns it.
type hotCache struct {
	capacity int
	lease    time.Duration
	sketch   *spaceSaver
	entries  map[string][]byte // key → owned value copy
	binds    map[int]*shardBind
	probeBuf *sonuma.Buffer // one node's whole shard-line table
	term     uint64         // configuration fence the whole cache is bound to
	epoch    uint64

	hits          uint64
	fills         uint64
	probes        uint64
	invalidations uint64
}

// CacheStats is a point-in-time snapshot of one client's hot-key cache
// counters.
type CacheStats struct {
	Hits          uint64 // GETs served from local memory
	Fills         uint64 // cache entries installed
	Probes        uint64 // one-sided shard-version probe reads
	Invalidations uint64 // shard sets dropped by version change or fence
}

// CacheStats snapshots the client's cache counters (zero when the
// hot-key cache is disabled).
func (c *Client) CacheStats() CacheStats {
	if c.hot == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:          c.hot.hits,
		Fills:         c.hot.fills,
		Probes:        c.hot.probes,
		Invalidations: c.hot.invalidations,
	}
}

// cacheFence wipes the cache when the configuration moved: term or epoch
// changes cover successions, evictions, re-admissions, AND rotation-mask
// rebalances (a rotation only ever lands with an epoch bump), so no
// cached value survives a leadership change.
func (c *Client) cacheFence(cfg configView) {
	hc := c.hot
	if cfg.term == hc.term && cfg.epoch == hc.epoch {
		return
	}
	if len(hc.entries) > 0 {
		hc.invalidations++
	}
	hc.entries = make(map[string][]byte, hc.capacity)
	hc.binds = make(map[int]*shardBind)
	hc.term, hc.epoch = cfg.term, cfg.epoch
}

// dropShard forgets a shard's bind and every value cached under it.
func (hc *hotCache) dropShard(shard int) {
	bind := hc.binds[shard]
	if bind == nil {
		return
	}
	for k := range bind.keys {
		delete(hc.entries, k)
	}
	delete(hc.binds, shard)
	hc.invalidations++
}

// dropShardEntries empties a shard's cached set but keeps the bind (the
// replica is still healthy; only its data moved).
func (hc *hotCache) dropShardEntries(shard int) {
	bind := hc.binds[shard]
	if bind == nil {
		return
	}
	for k := range bind.keys {
		delete(hc.entries, k)
	}
	bind.keys = make(map[string]struct{})
	hc.invalidations++
}

// readShardVer one-sidedly reads the shard's version word from node.
func (c *Client) readShardVer(node, shard int) (uint64, error) {
	off := uint64(c.store.cfg.shardLineOff(shard) + shardLineVer)
	if err := c.qp.Read(node, off, c.buf, 0, 8); err != nil {
		return 0, err
	}
	return c.buf.Load64(0)
}

// probeNode renews every bind to node at once: one one-sided read of the
// node's whole shard-line table, then each bound shard's version word is
// compared against its tag — a probe costs one round trip regardless of
// how many shards are bound, so a large cache doesn't multiply probe
// traffic. Shards whose version moved have their cached sets dropped.
func (c *Client) probeNode(node int, now time.Time) error {
	hc := c.hot
	off := uint64(c.store.cfg.shardLineOff(0))
	n := c.store.cfg.Shards * shardLineSize
	if err := c.qp.Read(node, off, hc.probeBuf, 0, n); err != nil {
		return err
	}
	hc.probes++
	deadline := now.Add(hc.lease / 2)
	for sh, bind := range hc.binds {
		if bind.node != node {
			continue
		}
		ver, err := hc.probeBuf.Load64(sh*shardLineSize + shardLineVer)
		if err != nil {
			return err
		}
		bind.checkAt = deadline
		if ver != bind.ver {
			hc.dropShardEntries(sh)
			bind.ver = ver
		}
	}
	return nil
}

// dropNode forgets every bind to node (and its cached values).
func (hc *hotCache) dropNode(node int) {
	for sh, bind := range hc.binds {
		if bind.node == node {
			hc.dropShard(sh)
		}
	}
}

// cacheGet serves key from the cache when its shard's lease is intact:
// bound replica still serving, version probe (at most one per lease/2)
// unchanged. ok=false means the caller takes the remote-read path.
func (c *Client) cacheGet(cfg configView, shard int, key []byte, down []bool) ([]byte, bool) {
	hc := c.hot
	v, cached := hc.entries[string(key)]
	if !cached {
		return nil, false
	}
	bind := hc.binds[shard]
	if bind == nil {
		delete(hc.entries, string(key))
		return nil, false
	}
	if (bind.node != c.store.me && down[bind.node]) || cfg.downBit(bind.node) {
		hc.dropShard(shard)
		return nil, false
	}
	now := time.Now()
	if !now.Before(bind.checkAt) {
		if err := c.probeNode(bind.node, now); err != nil {
			if sonuma.IsNodeFailure(err) {
				c.store.reportDown(bind.node)
			}
			hc.dropNode(bind.node)
			return nil, false
		}
		// The probe may have invalidated this shard's set (or just this
		// key); re-check before serving.
		if v, cached = hc.entries[string(key)]; !cached {
			return nil, false
		}
	}
	hc.hits++
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// cacheFill reads key through the shard's bound replica — version word
// FIRST, then the value (see the file comment for why that order is the
// safe one) — and installs the result. ok=false means the fill could not
// bind a replica and the caller should take the normal path; otherwise
// the returned (value, error) is the GET's result.
func (c *Client) cacheFill(cfg configView, shard int, key []byte, down []bool) ([]byte, error, bool) {
	hc := c.hot
	bind := hc.binds[shard]
	if bind != nil && ((bind.node != c.store.me && down[bind.node]) || cfg.downBit(bind.node)) {
		hc.dropShard(shard)
		bind = nil
	}
	if bind == nil {
		node := c.pickTarget(cfg, shard, down)
		if node < 0 {
			return nil, nil, false
		}
		ver, err := c.readShardVer(node, shard)
		if err != nil {
			if sonuma.IsNodeFailure(err) {
				c.store.reportDown(node)
			}
			return nil, nil, false
		}
		bind = &shardBind{
			node: node, ver: ver,
			checkAt: time.Now().Add(hc.lease / 2),
			keys:    make(map[string]struct{}),
		}
		hc.binds[shard] = bind
	}
	val, err := c.getFrom(bind.node, shard, key)
	if err != nil {
		if sonuma.IsNodeFailure(err) {
			c.store.reportDown(bind.node)
			hc.dropShard(shard)
			return nil, nil, false // fail over on the normal path
		}
		return nil, err, true // authoritative (ErrNotFound etc.)
	}
	c.sampleRead(bind.node, shard)
	if len(hc.entries) >= hc.capacity {
		// Make room by shedding a cached key that fell out of the
		// sketch; if every cached key is still hot, serve without
		// caching.
		evicted := false
		for k := range hc.entries {
			if !hc.sketch.tracked(k) {
				bs := hc.binds[c.store.ring().ShardOf([]byte(k))]
				if bs != nil {
					delete(bs.keys, k)
				}
				delete(hc.entries, k)
				evicted = true
				break
			}
		}
		if !evicted {
			return val, nil, true
		}
	}
	stored := make([]byte, len(val))
	copy(stored, val)
	hc.entries[string(key)] = stored
	bind.keys[string(key)] = struct{}{}
	hc.fills++
	return val, nil, true
}

// notePut folds an acknowledged own-write into the cache. Bound to the
// leader with the ack's version exactly one past the tag, the tag
// advances and the written key updates in place — read-your-writes with
// no probe. Anything less exact (version skipped ahead: a foreign write
// raced ours; bound to a backup: its version word advances on its own
// clock) drops the shard's cached set instead of guessing.
func (c *Client) notePut(shard int, key, value []byte, ver uint64) {
	hc := c.hot
	cfg := c.store.cfgSnapshot()
	c.cacheFence(cfg)
	bind := hc.binds[shard]
	if bind == nil {
		return
	}
	leader := leaderFor(c.store.ring(), shard, cfg.down, cfg.rot)
	if bind.node == leader && ver == bind.ver+1 {
		bind.ver = ver
		bind.checkAt = time.Now().Add(hc.lease / 2)
		if _, cached := hc.entries[string(key)]; cached {
			stored := make([]byte, len(value))
			copy(stored, value)
			hc.entries[string(key)] = stored
		}
		return
	}
	if bind.node == leader && ver > bind.ver {
		hc.dropShardEntries(shard)
		bind.ver = ver
		bind.checkAt = time.Now().Add(hc.lease / 2)
		return
	}
	hc.dropShard(shard)
}
