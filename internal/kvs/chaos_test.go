package kvs

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"sonuma/internal/stats"
)

// Partition-schedule chaos suite: a table-driven + seeded-random fault
// scheduler drives arbitrary FailLink/RestoreLink sequences — including
// asymmetric one-way cuts — against a live kvs workload, then asserts the
// post-heal invariants:
//
//   - liveness: every operation returns (acked or a definite error, the
//     fencing deadline bounds stalls — no hangs, no silent drops);
//   - convergence: after the final heal the cluster settles on one epoch
//     with nothing evicted, replicas byte-identical for every key, and
//     every surviving value one its (exclusive) writer actually wrote —
//     an acknowledgement from a LOSING epoch may legitimately roll back
//     to an older value of the same writer, but repair never fabricates
//     data, crosses keys, or leaves replicas disagreeing;
//   - no acknowledged write from the winning (settled) epoch is lost.
//
// Reproducibility: random schedules derive from CHAOS_SEED (default fixed)
// and every subtest logs its seed; CHAOS_SCHEDULES caps the random
// schedule count so CI stays bounded. Run with -race in the chaos CI job.

// chaosOp is one step of a fault schedule.
type chaosOp struct {
	at       time.Duration // offset from schedule start, in lease units ×lease
	fail     bool
	directed bool
	a, b     int
}

// chaosEnvInt reads a positive integer from the environment.
func chaosEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// chaosEnvSeed reads the base seed from CHAOS_SEED.
func chaosEnvSeed(def uint64) uint64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 0, 64); err == nil {
			return n
		}
	}
	return def
}

// runChaosSchedule drives one schedule against a live workload and checks
// the post-heal invariants. Times in the schedule are multiples of the
// lease so the same shapes work under raceScale. requireTakeover pins the
// coordinator-kill schedules' reason to exist: the settled configuration
// must have been activated by a SUCCESSOR, not the seed coordinator. cfg
// lets a schedule run with the skew-serving features on (replica-spread
// reads, hot-key caches); with caches enabled the post-heal audit also
// reads through every worker's cache and must never see a value the
// settled epoch rolled back.
func runChaosSchedule(t *testing.T, name string, seed uint64, cfg Config, schedule []chaosOp, requireTakeover bool) {
	t.Helper()
	const n = 4
	cl, stores := newService(t, n, cfg)
	t.Logf("chaos %q: seed=%#x lease=%s %d fault events (set CHAOS_SEED to reproduce)",
		name, seed, cfg.Lease, len(schedule))

	const keysPerWorker = 8
	type worker struct {
		client    *Client
		keys      [][]byte
		lastAck   [][]byte
		attempted []map[string]bool // every value this worker ever TRIED to write
		acked     int
		errs      int
	}
	workers := make([]*worker, n)
	for w := 0; w < n; w++ {
		workers[w] = &worker{client: newTestClient(t, stores[w])}
		for k := 0; k < keysPerWorker; k++ {
			key := []byte(fmt.Sprintf("chaos:%d:%d", w, k))
			workers[w].keys = append(workers[w].keys, key)
			workers[w].lastAck = append(workers[w].lastAck, nil)
			workers[w].attempted = append(workers[w].attempted, map[string]bool{"init": true})
		}
	}

	// Preload so every key exists before the faults start.
	for _, w := range workers {
		for i, key := range w.keys {
			if err := w.client.Put(key, []byte("init")); err != nil {
				t.Fatalf("preload %q: %v", key, err)
			}
			w.lastAck[i] = []byte("init")
		}
	}

	var dur time.Duration
	for _, op := range schedule {
		if op.at > dur {
			dur = op.at
		}
	}
	runFor := dur + 6*cfg.Lease

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi, w := range workers {
		wi, w := wi, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := stats.NewRNG(seed ^ uint64(wi)*0x9e3779b97f4a7c15)
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ki := rng.Intn(len(w.keys))
				if rng.Intn(100) < 70 {
					seq++
					val := []byte(fmt.Sprintf("w%d-%d-%06d", wi, ki, seq))
					w.attempted[ki][string(val)] = true
					start := time.Now()
					err := w.client.Put(w.keys[ki], val)
					if d := time.Since(start); d > 60*cfg.Lease+10*time.Second {
						t.Errorf("worker %d: put stalled %s (hang)", wi, d)
						return
					}
					if err == nil {
						w.acked++
						w.lastAck[ki] = val
					} else {
						w.errs++
					}
				} else {
					_, err := w.client.Get(w.keys[ki])
					if err != nil {
						w.errs++
					}
				}
			}
		}()
	}

	// The fault scheduler.
	start := time.Now()
	for _, op := range schedule {
		if wait := op.at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		switch {
		case op.fail && op.directed:
			cl.FailLinkDirected(op.a, op.b)
		case op.fail:
			cl.FailLink(op.a, op.b)
		default:
			cl.RestoreLink(op.a, op.b)
		}
	}
	if wait := runFor - time.Since(start); wait > 0 {
		time.Sleep(wait)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Safety net: restore every pair, then the cluster must converge —
	// since PR 5 this includes term agreement: every store following the
	// same coordinator, which for the coordinator-kill schedules means a
	// successor-activated term survived the heal.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cl.RestoreLink(a, b)
		}
	}
	waitConverged(t, stores, 45*time.Second)
	var takeovers uint64
	for _, s := range stores {
		takeovers += s.Stats().Takeovers
	}
	t.Logf("settled: term=%d coord=%d epoch=%d takeovers=%d",
		stores[0].Term(), stores[0].Coordinator(), stores[0].Epoch(), takeovers)
	if requireTakeover {
		if takeovers == 0 {
			t.Fatal("schedule requires a successor-activated term but no takeover happened")
		}
		if got := stores[0].Coordinator(); got == 0 {
			t.Fatalf("settled coordinator is still the seed (%d) after a coordinator-kill schedule", got)
		}
	}

	// Mid-run audit, BEFORE any further write touches the keys: after
	// convergence every replica of every key must be byte-identical, and
	// the surviving value must be one this key's (exclusive) writer
	// actually attempted — repair may legitimately roll an acknowledgement
	// from a LOSING epoch back to an older value of the same writer, but
	// it must never fabricate data, cross keys, or leave replicas
	// disagreeing.
	ring := stores[0].Ring()
	audit := workers[0].client
	settled := make([][][]byte, len(workers))
	for wi, w := range workers {
		settled[wi] = make([][]byte, len(w.keys))
		for ki, key := range w.keys {
			var ref []byte
			for oi, o := range ring.Owners(ring.ShardOf(key)) {
				got, err := audit.GetReplica(o, key)
				if err != nil {
					t.Fatalf("post-heal GetReplica(%d, %q): %v", o, key, err)
				}
				if oi == 0 {
					ref = got
					if !w.attempted[ki][string(got)] {
						t.Fatalf("key %q holds %q, which worker %d never wrote (fabricated or crossed data)",
							key, got, wi)
					}
				} else if !bytes.Equal(got, ref) {
					t.Fatalf("replica divergence on %q after convergence: %q vs %q", key, got, ref)
				}
			}
			settled[wi][ki] = ref
		}
	}

	// Cache staleness audit: a full lease past convergence every cached
	// entry has either been fenced by the heal's epoch bump or re-probed,
	// so a read THROUGH each worker's own hot-key cache must return
	// exactly the settled replica value — never a value acked by the
	// losing side that repair rolled back. (Without caches this is the
	// plain read path and still must agree.)
	if cfg.HotKeys > 0 {
		time.Sleep(2 * cfg.Lease)
		for wi, w := range workers {
			for ki, key := range w.keys {
				got, err := w.client.Get(key)
				if err != nil {
					t.Fatalf("post-heal cached Get(%q): %v", key, err)
				}
				if !bytes.Equal(got, settled[wi][ki]) {
					t.Fatalf("worker %d cached read of %q = %q, want settled %q (stale cache outlived the heal)",
						wi, key, got, settled[wi][ki])
				}
			}
		}
	}

	// Final round on the settled (winning) epoch: every acknowledged
	// write here MUST survive — this is the no-acked-write-lost check for
	// the epoch that won.
	for wi, w := range workers {
		for ki, key := range w.keys {
			final := []byte(fmt.Sprintf("final-w%d-%d", wi, ki))
			var err error
			deadline := time.Now().Add(15 * time.Second)
			for {
				if err = w.client.Put(key, final); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("worker %d: final put on %q never acked: %v", wi, key, err)
				}
			}
			w.lastAck[ki] = final
		}
	}

	// Audit: every replica of every key byte-identical and equal to the
	// final acknowledged value.
	for wi, w := range workers {
		for ki, key := range w.keys {
			for _, o := range ring.Owners(ring.ShardOf(key)) {
				got, err := audit.GetReplica(o, key)
				if err != nil {
					t.Fatalf("GetReplica(%d, %q): %v", o, key, err)
				}
				if !bytes.Equal(got, w.lastAck[ki]) {
					t.Fatalf("replica %d of %q = %q, want %q (worker %d; acked write lost or divergence)",
						o, key, got, w.lastAck[ki], wi)
				}
			}
			// Read-your-writes through the worker's own (possibly cached)
			// read path: the final acked Put must be what its client reads.
			got, err := w.client.Get(key)
			if err != nil {
				t.Fatalf("worker %d final Get(%q): %v", wi, key, err)
			}
			if !bytes.Equal(got, w.lastAck[ki]) {
				t.Fatalf("worker %d reads %q = %q after acking %q (cache broke read-your-writes)",
					wi, key, got, w.lastAck[ki])
			}
		}
	}
	total := 0
	for _, w := range workers {
		total += w.acked
	}
	if total == 0 {
		t.Fatal("no operation ever completed during the schedule")
	}
	for wi, w := range workers {
		t.Logf("worker %d: acked=%d errs=%d", wi, w.acked, w.errs)
	}
}

// lease units: schedules are written as multiples of the (race-scaled)
// lease; at() converts.
func at(leases int) time.Duration {
	return time.Duration(leases) * 20 * time.Millisecond * raceScale
}

// TestChaosSchedules runs the table-driven schedules plus a capped set of
// seeded-random ones.
func TestChaosSchedules(t *testing.T) {
	table := []struct {
		name         string
		schedule     []chaosOp
		wantTakeover bool // the schedule exists to force a succession
		cached       bool // run with replica-spread reads + hot-key caches on
	}{
		{
			// A node falls off the fabric whole and heals.
			name: "node-blip",
			schedule: []chaosOp{
				{at: at(2), fail: true, a: 1, b: 0}, {at: at(2), fail: true, a: 1, b: 2}, {at: at(2), fail: true, a: 1, b: 3},
				{at: at(8), a: 1, b: 0}, {at: at(8), a: 1, b: 2}, {at: at(8), a: 1, b: 3},
			},
		},
		{
			// Asymmetric one-way isolation: node 2 can receive but not
			// send — the stale-leader shape.
			name: "asym-oneway",
			schedule: []chaosOp{
				{at: at(2), fail: true, directed: true, a: 2, b: 0},
				{at: at(2), fail: true, directed: true, a: 2, b: 1},
				{at: at(2), fail: true, directed: true, a: 2, b: 3},
				{at: at(10), a: 2, b: 0}, {at: at(10), a: 2, b: 1}, {at: at(10), a: 2, b: 3},
			},
		},
		{
			// The stale-leader shape again, but with hot-key caches live on
			// every worker: reads served from cache during the partition
			// must be fenced by the healing epoch bump — the post-heal
			// cached audit fails if any client's cache still serves a value
			// acked by the isolated leader that repair rolled back.
			name:   "asym-oneway-cached",
			cached: true,
			schedule: []chaosOp{
				{at: at(2), fail: true, directed: true, a: 2, b: 0},
				{at: at(2), fail: true, directed: true, a: 2, b: 1},
				{at: at(2), fail: true, directed: true, a: 2, b: 3},
				{at: at(10), a: 2, b: 0}, {at: at(10), a: 2, b: 1}, {at: at(10), a: 2, b: 3},
			},
		},
		{
			// A flapping link: fail/heal faster than the eviction grace.
			name: "flap",
			schedule: []chaosOp{
				{at: at(1), fail: true, a: 1, b: 3}, {at: at(2), a: 1, b: 3},
				{at: at(3), fail: true, a: 1, b: 3}, {at: at(4), a: 1, b: 3},
				{at: at(5), fail: true, a: 1, b: 3}, {at: at(7), a: 1, b: 3},
			},
		},
		{
			// Two overlapping outages, one of them one-way, healing out
			// of order.
			name: "double-fault",
			schedule: []chaosOp{
				{at: at(2), fail: true, a: 3, b: 0}, {at: at(2), fail: true, a: 3, b: 1}, {at: at(2), fail: true, a: 3, b: 2},
				{at: at(4), fail: true, directed: true, a: 1, b: 0},
				{at: at(9), a: 1, b: 0},
				{at: at(12), a: 3, b: 0}, {at: at(12), a: 3, b: 1}, {at: at(12), a: 3, b: 2},
			},
		},
		{
			// The epoch authority itself dies mid-workload: every link of
			// the seed coordinator (node 0) is cut, so the epoch change
			// that unparks its shards' writes must ORIGINATE FROM A
			// SUCCESSOR — no schedule before PR 5 could require that. The
			// healed ex-coordinator must then demote and rejoin.
			name:         "coord-kill",
			wantTakeover: true,
			schedule: []chaosOp{
				{at: at(2), fail: true, a: 0, b: 1}, {at: at(2), fail: true, a: 0, b: 2}, {at: at(2), fail: true, a: 0, b: 3},
				{at: at(16), a: 0, b: 1}, {at: at(16), a: 0, b: 2}, {at: at(16), a: 0, b: 3},
			},
		},
		{
			// Asymmetric coordinator partition: the coordinator can
			// receive but not send — renewals and blind writes keep
			// landing on it while its grants, mirror refreshes, and
			// slot-read replies all die. It must self-fence on lost
			// authority contact while a successor takes the term.
			name:         "coord-asym",
			wantTakeover: true,
			schedule: []chaosOp{
				{at: at(2), fail: true, directed: true, a: 0, b: 1},
				{at: at(2), fail: true, directed: true, a: 0, b: 2},
				{at: at(2), fail: true, directed: true, a: 0, b: 3},
				{at: at(16), a: 0, b: 1}, {at: at(16), a: 0, b: 2}, {at: at(16), a: 0, b: 3},
			},
		},
	}
	for _, tc := range table {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := leaseConfig(20 * time.Millisecond)
			if tc.cached {
				cfg = cacheConfig(20 * time.Millisecond)
			}
			runChaosSchedule(t, tc.name, chaosEnvSeed(0x50eed), cfg, tc.schedule, tc.wantTakeover)
		})
	}

	// Seeded-random schedules: arbitrary fail/restore sequences over
	// random pairs, one-way cuts included. CHAOS_SCHEDULES caps the count
	// (CI budget); CHAOS_SEED pins the base seed for reproduction.
	count := chaosEnvInt("CHAOS_SCHEDULES", 3)
	base := chaosEnvSeed(0xC4A05)
	for i := 0; i < count; i++ {
		seed := base + uint64(i)
		t.Run(fmt.Sprintf("random-seed-%#x", seed), func(t *testing.T) {
			runChaosSchedule(t, "random", seed, leaseConfig(20*time.Millisecond), randomSchedule(seed), false)
		})
	}
}

// randomSchedule generates a fault schedule from a seed: 4–9 events over
// ~12 lease durations; failures pick a random pair and direction, with a
// bias toward later restores (the safety net restores everything at the
// end regardless, so an unbalanced schedule is legal).
func randomSchedule(seed uint64) []chaosOp {
	rng := stats.NewRNG(seed)
	const n = 4
	events := 4 + rng.Intn(6)
	ops := make([]chaosOp, 0, events)
	type link struct{ a, b int }
	downLinks := map[link]bool{}
	for i := 0; i < events; i++ {
		when := at(1 + rng.Intn(12))
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		l := link{a: min(a, b), b: max(a, b)}
		if downLinks[l] && rng.Intn(100) < 60 {
			ops = append(ops, chaosOp{at: when, a: a, b: b})
			delete(downLinks, l)
			continue
		}
		ops = append(ops, chaosOp{at: when, fail: true, directed: rng.Intn(100) < 40, a: a, b: b})
		downLinks[l] = true
	}
	// Schedules execute in time order.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].at < ops[j-1].at; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	return ops
}

// TestChaosFencedNeverSilent pins the "fenced writes are errors, not
// silent drops" invariant directly: during an asymmetric isolation every
// PUT against the stale leader either acks (lease still valid — and the
// value then really is on the leader) or returns a definite error; the
// response channel always fires within the fencing deadline.
func TestChaosFencedNeverSilent(t *testing.T) {
	const n = 3
	cfg := leaseConfig(15 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	ring := stores[0].Ring()
	victim := 1
	key := shardLedBy(t, ring, "silent", victim)
	c := newTestClient(t, stores[victim])
	if err := c.Put(key, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLinkDirected(victim, i)
		}
	}
	acked, errored := 0, 0
	for start := time.Now(); time.Since(start) < 10*cfg.Lease; {
		opStart := time.Now()
		err := c.Put(key, []byte(fmt.Sprintf("v-%d", acked+errored)))
		if time.Since(opStart) > 10*cfg.Lease+5*time.Second {
			t.Fatalf("put response took %s: silent drop window", time.Since(opStart))
		}
		if err == nil {
			acked++
		} else {
			errored++
		}
	}
	if errored == 0 {
		t.Fatal("isolation never surfaced a write error: fencing silent")
	}
	t.Logf("during isolation: %d acked (pre-lapse), %d definite errors", acked, errored)

	for i := 0; i < n; i++ {
		if i != victim {
			cl.RestoreLink(victim, i)
		}
	}
	waitConverged(t, stores, 30*time.Second)
}
