package kvs

import (
	"time"

	"sonuma"
)

// This file implements lease-fenced leadership on top of the replicated
// configuration-epoch authority of config.go. Every non-coordinator node
// continuously renews a time-bounded lease with the ACTIVE coordinator —
// the owner of its cached term — over the Messenger's control frames
// (renewals double as heartbeats); a node may serve PUTs for the shards
// it leads only while it holds a lease for the CURRENT (term, epoch). The
// timeline that makes a stale leader safe:
//
//	t0          leader L renews; coordinator records lastRenew[L] = t0
//	t0+ε        partition: L's renewals stop reaching the coordinator
//	≤ t0+L      L's lease lapses → L FENCES ITSELF: PUTs are rejected or
//	            parked, replication stops; L cannot diverge further
//	t0+2L       the coordinator's eviction grace passes: only now does it
//	            activate the epoch that demotes L, so the new leader
//	            (promoted by the same epoch) can never overlap L's lease
//	heal        anti-entropy repair orders the divergence by
//	            (epoch, version); the winning epoch's image prevails
//
// The ACTIVE COORDINATOR's own leader writes are fenced the same way
// against succession (PR 5): its implicit lease is authority contact — a
// mirror write acknowledged within hbExpiry (mirrorTick). A coordinator
// that cannot reach any authority replica stops serving leader writes at
// t0+4L, and a successor's first epoch activates no earlier than t0+5L
// (failoverWait), so a deposed coordinator is always fenced before the
// new term's leaders serve — the same no-overlap argument, one level up.
//
// Control frames are lossy latest-wins by design, so every message here is
// idempotent state, re-published periodically: renewals every lease/3,
// repair-completion reports every lease/2 until acknowledged by an epoch
// bump, grants only in answer to renewals. Every frame carries the
// sender's (term, epoch) — see msg.go — and frames below the receiver's
// cached term are rejected outright: a deposed coordinator cannot grant,
// deny, or nudge anybody.

// Timing derived from the lease duration.
func (s *Store) renewEvery() time.Duration   { return s.lease / 3 }
func (s *Store) reportEvery() time.Duration  { return s.lease / 2 }
func (s *Store) cfgPollEvery() time.Duration { return s.lease / 2 }
func (s *Store) evictGrace() time.Duration   { return 2 * s.lease }
func (s *Store) hbExpiry() time.Duration     { return 4 * s.lease }

// failoverWait is how long the active coordinator's slot must stay stale
// (unreadable, torn, or below the cached configuration) before the
// succession scan may activate a new term. It exceeds hbExpiry — the
// deposed coordinator's self-fencing bound — so old and new authority
// never serve leader writes concurrently, and stays below fenceWait so a
// PUT parked at the start of the outage can still complete under the
// successor's first epoch instead of timing out.
func (s *Store) failoverWait() time.Duration { return 5 * s.lease }

// fenceWait bounds how long a PUT parks awaiting a lease or an epoch
// transition before failing with ErrFenced.
func (s *Store) fenceWait() time.Duration { return 6 * s.lease }

// leaseValid reports whether this node may serve leader writes right now.
// The active coordinator is the lease authority and grants to itself by
// proving authority contact (a mirror ack within hbExpiry — with a
// replicated authority, a coordinator that cannot reach any mirror must
// assume a successor is being elected and fence); every other node needs
// an unexpired lease granted for the current (term, epoch).
func (s *Store) leaseValid(now time.Time) bool {
	if s.me == s.coord {
		if s.cfgDownBit(s.me) {
			return false
		}
		return len(s.succ) <= 1 || now.Sub(s.authOK) <= s.hbExpiry()
	}
	return s.leaseTerm == s.cfgTerm && s.leaseEpoch == s.cfgEpoch && now.Before(s.leaseUntil)
}

// leaseTick sends the periodic renewal/heartbeat to the active
// coordinator. Serve goroutine, non-coordinator only. Safe to call from
// within a repair: renewals keep a long repair from fencing its own
// leader.
func (s *Store) leaseTick(now time.Time) {
	if !now.After(s.renewAt) {
		return
	}
	s.renewAt = now.Add(s.renewEvery())
	var b [ctlMaxLen]byte
	_ = s.msgr.SendControl(s.coord, encodeCtl(b[:], ctlFrame{
		kind: ctlLeaseRenew, term: s.cfgTerm, epoch: s.cfgEpoch}))
}

// drainCtrl dispatches every pending control frame. Safe to call from
// within a repair: handlers only mutate lease fields, dirty flags, and the
// coordinator's bookkeeping — adoption, succession, parking, and eviction
// decisions run from the top-level tick only.
func (s *Store) drainCtrl() {
	for {
		msg, ok, err := s.msgr.TryRecvControl()
		if err != nil || !ok {
			return
		}
		s.handleCtrl(msg)
	}
}

// handleCtrl dispatches one control frame, ordering it by term first: a
// frame below the cached term comes from (or via) a deposed coordinator
// and is rejected — a renewal gets a corrective nudge back so the stale
// sender re-reads the configuration; a frame ABOVE the cached term proves
// a succession this node has not observed yet, so it schedules the
// observation (an immediate succession scan, or — on the deposed
// coordinator itself — an immediate mirror read) without acting on the
// frame's own content.
func (s *Store) handleCtrl(m sonuma.Message) {
	f, ok := parseCtl(m.Data)
	if !ok {
		return
	}
	if termNewer(f.term, s.cfgTerm) {
		if s.me == s.coord {
			s.mirrorAt = time.Time{} // verify the claimed succession on the mirrors now
		} else {
			s.scanNow = true
		}
		return
	}
	if termNewer(s.cfgTerm, f.term) {
		if f.kind == ctlLeaseRenew && m.From >= 0 && m.From < s.n && m.From != s.me {
			var b [ctlMaxLen]byte
			_ = s.msgr.SendControl(m.From, encodeCtl(b[:], ctlFrame{
				kind: ctlCfgChanged, term: s.cfgTerm, epoch: s.cfgEpoch}))
		}
		return
	}
	switch f.kind {
	case ctlLeaseRenew:
		if s.me != s.coord {
			return
		}
		s.grantLease(m.From)
	case ctlLeaseGrant:
		if m.From != s.coord {
			return
		}
		if f.epoch == s.cfgEpoch {
			dur := time.Duration(f.arg) * time.Microsecond
			s.leaseTerm = f.term
			s.leaseEpoch = f.epoch
			s.leaseUntil = time.Now().Add(dur)
			s.parkedDirty = true // fenced PUTs can go now
		} else if epochNewer(f.epoch, s.cfgEpoch) {
			// Granted for an epoch we have not adopted yet: read the
			// slot first, then the next renewal collects a usable grant.
			s.cfgDirty = true
		}
	case ctlLeaseDeny:
		// We are evicted at the coordinator's epoch: stay fenced and
		// learn the details from the slot.
		if m.From == s.coord && !epochNewer(s.cfgEpoch, f.epoch) {
			s.cfgDirty = true
		}
	case ctlCfgChanged:
		if epochNewer(f.epoch, s.cfgEpoch) {
			s.cfgDirty = true
		}
	case ctlRepairDone:
		if s.me != s.coord || f.epoch != s.cfgEpoch {
			return
		}
		s.recordRepairDone(m.From, f.arg)
	}
}

// grantLease answers one renewal: evicted (or eviction-pending) nodes are
// denied, everyone else gets a fresh lease for the current (term, epoch)
// and has its heartbeat recorded. Active coordinator only.
func (s *Store) grantLease(p int) {
	if p < 0 || p >= s.n || p == s.me {
		return
	}
	now := time.Now()
	var b [ctlMaxLen]byte
	// An authority that cannot prove mirror contact must not extend
	// leases either: a successor may already be electing on the other
	// side of the partition, and a lease granted now would let the peer
	// keep absorbing writes the successor's epoch will roll back — for
	// the whole partition, not the bounded fencing window. Denying keeps
	// the peer fenced (definite errors) until the configuration resolves.
	authorityLapsed := len(s.succ) > 1 && now.Sub(s.authOK) > s.hbExpiry()
	if s.cfgDownBit(p) || !s.evictAt[p].IsZero() || authorityLapsed {
		if authorityLapsed && !s.cfgDownBit(p) && s.evictAt[p].IsZero() {
			// The heartbeat WAS observed — only the lease is withheld.
			// Without this, a long mirror outage would age every live
			// renewing peer past hbExpiry and mass-evict them the moment
			// the mirrors heal.
			s.lastRenew[p] = now
		}
		_ = s.msgr.SendControl(p, encodeCtl(b[:], ctlFrame{
			kind: ctlLeaseDeny, term: s.cfgTerm, epoch: s.cfgEpoch}))
		return
	}
	s.lastRenew[p] = now
	s.granted[p] = true
	frame := encodeCtl(b[:], ctlFrame{kind: ctlLeaseGrant, term: s.cfgTerm,
		epoch: s.cfgEpoch, arg: uint64(s.lease / time.Microsecond)})
	if err := s.msgr.SendControl(p, frame); err != nil {
		// The grant cannot reach a holder we believe is alive (one-way
		// partition): without grants its lease lapses, so treat it like
		// any other unreachable peer and start the eviction clock.
		s.reportDown(p)
	}
}

// coordTick drives the active coordinator's state machine: refresh (and
// term-check) the authority mirrors, expire silent lease holders, activate
// pending evictions whose lease grace has passed, and re-admit fully
// repaired peers. Top-level tick only (never mid-repair). An eviction or
// re-admission blocked by the write-through rule (no mirror reachable)
// keeps its clock armed and retries next tick — the configuration freezes
// rather than diverging.
func (s *Store) coordTick(now time.Time) {
	if now.After(s.mirrorAt) {
		s.mirrorAt = now.Add(s.lease / 2)
		s.mirrorTick(now)
		if s.coord != s.me {
			return // deposed: mirrorTick adopted the successor's term
		}
	}
	for p := 0; p < s.n; p++ {
		if p == s.me || !s.granted[p] {
			continue
		}
		if now.Sub(s.lastRenew[p]) > s.hbExpiry() {
			// The holder went silent past any lease it could still hold.
			s.granted[p] = false
			s.markDown(p)
		}
	}
	mask := s.cfgDown
	for p := 0; p < s.n && p < 64; p++ {
		if s.evictAt[p].IsZero() || !now.After(s.evictAt[p]) {
			continue
		}
		mask |= 1 << uint(p)
	}
	if mask != s.cfgDown && s.bumpConfig(mask, s.cfgRot) {
		for p := 0; p < s.n && p < 64; p++ {
			if mask&(1<<uint(p)) != 0 {
				s.evictAt[p] = time.Time{}
				s.granted[p] = false
			}
		}
	}
	s.maybeReadmit()
	s.rebalanceTick(now)
}

// scheduleEvict starts the eviction clock for a node the coordinator now
// believes unreachable: the epoch that demotes it activates only after any
// lease it could hold has provably lapsed (lastRenew + 2×lease), so the
// promoted successor can never serve while the stale leader still writes.
func (s *Store) scheduleEvict(node int) {
	if node == s.me || s.cfgDownBit(node) || !s.evictAt[node].IsZero() {
		return
	}
	at := time.Now()
	if s.granted[node] {
		if grace := s.lastRenew[node].Add(s.evictGrace()); grace.After(at) {
			at = grace
		}
	}
	s.evictAt[node] = at
}

// reportRepair tells the active coordinator this node verified the given
// peer (streamed and acknowledged every diff for the shards it leads)
// under the current (term, epoch). Idempotent and re-sent by reportTick
// until an epoch bump acknowledges it, because control frames are lossy
// latest-wins.
func (s *Store) reportRepair() {
	var peers uint64
	for p := 0; p < s.n && p < 64; p++ {
		if s.repaired[p] && s.cfgDownBit(p) {
			peers |= 1 << uint(p)
		}
	}
	if peers == 0 {
		return
	}
	if s.me == s.coord {
		s.recordRepairDone(s.me, peers)
		return
	}
	var b [ctlMaxLen]byte
	_ = s.msgr.SendControl(s.coord, encodeCtl(b[:], ctlFrame{
		kind: ctlRepairDone, term: s.cfgTerm, epoch: s.cfgEpoch, arg: peers}))
}

// reportTick re-publishes repair-completion reports while any repaired
// peer is still awaiting re-admission.
func (s *Store) reportTick(now time.Time) {
	if !now.After(s.reportAt) {
		return
	}
	s.reportAt = now.Add(s.reportEvery())
	s.reportRepair()
}

// recordRepairDone accumulates one reporter's verified-peer set, skipping
// peers under a post-link-event quarantine (see dropStaleAcks).
// Coordinator only; cleared on every epoch bump and term change.
func (s *Store) recordRepairDone(reporter int, peers uint64) {
	if reporter < 0 || reporter >= 64 {
		return
	}
	now := time.Now()
	for p := 0; p < s.n && p < 64; p++ {
		if peers&(1<<uint(p)) == 0 || now.Before(s.ackQuarantine[p]) {
			continue
		}
		s.rejoinAcks[p] |= 1 << uint(reporter)
	}
}
