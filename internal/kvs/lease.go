package kvs

import (
	"encoding/binary"
	"time"

	"sonuma"
)

// This file implements lease-fenced leadership on top of the configuration
// epochs of config.go. Every non-coordinator node continuously renews a
// time-bounded lease with the coordinator over the Messenger's control
// frames (renewals double as heartbeats); a node may serve PUTs for the
// shards it leads only while it holds a lease for the CURRENT epoch. The
// timeline that makes a stale leader safe:
//
//	t0          leader L renews; coordinator records lastRenew[L] = t0
//	t0+ε        partition: L's renewals stop reaching the coordinator
//	≤ t0+L      L's lease lapses → L FENCES ITSELF: PUTs are rejected or
//	            parked, replication stops; L cannot diverge further
//	t0+2L       the coordinator's eviction grace passes: only now does it
//	            activate the epoch that demotes L, so the new leader
//	            (promoted by the same epoch) can never overlap L's lease
//	heal        anti-entropy repair orders the divergence by
//	            (epoch, version); the winning epoch's image prevails
//
// Control frames are lossy latest-wins by design, so every message here is
// idempotent state, re-published periodically: renewals every lease/3,
// repair-completion reports every lease/2 until acknowledged by an epoch
// bump, grants only in answer to renewals.

// Control frame kinds (first byte of every messenger control frame).
const (
	ctlLeaseRenew byte = 1 // epoch u64 — renewal request + heartbeat
	ctlLeaseGrant byte = 2 // epoch u64, lease µs u32
	ctlLeaseDeny  byte = 3 // epoch u64 — sender is evicted at this epoch
	ctlCfgChanged byte = 4 // epoch u64 — nudge: re-read the config slot
	ctlRepairDone byte = 5 // epoch u64, repaired-peer bitmask u64
)

// Timing derived from the lease duration.
func (s *Store) renewEvery() time.Duration   { return s.lease / 3 }
func (s *Store) reportEvery() time.Duration  { return s.lease / 2 }
func (s *Store) cfgPollEvery() time.Duration { return s.lease / 2 }
func (s *Store) evictGrace() time.Duration   { return 2 * s.lease }
func (s *Store) hbExpiry() time.Duration     { return 4 * s.lease }

// fenceWait bounds how long a PUT parks awaiting a lease or an epoch
// transition before failing with ErrFenced.
func (s *Store) fenceWait() time.Duration { return 6 * s.lease }

// leaseValid reports whether this node may serve leader writes right now.
// The coordinator is the authority and cannot be fenced from itself; every
// other node needs an unexpired lease granted for the current epoch.
func (s *Store) leaseValid(now time.Time) bool {
	if s.me == s.coord {
		return !s.cfgDownBit(s.me)
	}
	return s.leaseEpoch == s.cfgEpoch && now.Before(s.leaseUntil)
}

// leaseTick sends the periodic renewal/heartbeat. Serve goroutine,
// non-coordinator only. Safe to call from within a repair: renewals keep a
// long repair from fencing its own leader.
func (s *Store) leaseTick(now time.Time) {
	if !now.After(s.renewAt) {
		return
	}
	s.renewAt = now.Add(s.renewEvery())
	var b [9]byte
	b[0] = ctlLeaseRenew
	binary.LittleEndian.PutUint64(b[1:], s.cfgEpoch)
	_ = s.msgr.SendControl(s.coord, b[:])
}

// drainCtrl dispatches every pending control frame. Safe to call from
// within a repair: handlers only mutate lease fields, dirty flags, and the
// coordinator's bookkeeping — adoption, parking, and eviction decisions
// run from the top-level tick only.
func (s *Store) drainCtrl() {
	for {
		msg, ok, err := s.msgr.TryRecvControl()
		if err != nil || !ok {
			return
		}
		s.handleCtrl(msg)
	}
}

// handleCtrl dispatches one control frame.
func (s *Store) handleCtrl(m sonuma.Message) {
	if len(m.Data) < 9 {
		return
	}
	epoch := binary.LittleEndian.Uint64(m.Data[1:])
	switch m.Data[0] {
	case ctlLeaseRenew:
		if s.me != s.coord {
			return
		}
		s.grantLease(m.From)
	case ctlLeaseGrant:
		if m.From != s.coord || len(m.Data) < 13 {
			return
		}
		if epoch == s.cfgEpoch {
			dur := time.Duration(binary.LittleEndian.Uint32(m.Data[9:])) * time.Microsecond
			s.leaseEpoch = epoch
			s.leaseUntil = time.Now().Add(dur)
			s.parkedDirty = true // fenced PUTs can go now
		} else if epoch > s.cfgEpoch {
			// Granted for an epoch we have not adopted yet: read the
			// slot first, then the next renewal collects a usable grant.
			s.cfgDirty = true
		}
	case ctlLeaseDeny:
		// We are evicted at the coordinator's epoch: stay fenced and
		// learn the details from the slot.
		if m.From == s.coord && epoch >= s.cfgEpoch {
			s.cfgDirty = true
		}
	case ctlCfgChanged:
		if epoch > s.cfgEpoch {
			s.cfgDirty = true
		}
	case ctlRepairDone:
		if s.me != s.coord || len(m.Data) < 17 || epoch != s.cfgEpoch {
			return
		}
		peers := binary.LittleEndian.Uint64(m.Data[9:])
		s.recordRepairDone(m.From, peers)
	}
}

// grantLease answers one renewal: evicted (or eviction-pending) nodes are
// denied, everyone else gets a fresh lease for the current epoch and has
// its heartbeat recorded. Coordinator only.
func (s *Store) grantLease(p int) {
	if p < 0 || p >= s.n || p == s.me {
		return
	}
	now := time.Now()
	if s.cfgDownBit(p) || !s.evictAt[p].IsZero() {
		var b [9]byte
		b[0] = ctlLeaseDeny
		binary.LittleEndian.PutUint64(b[1:], s.cfgEpoch)
		_ = s.msgr.SendControl(p, b[:])
		return
	}
	s.lastRenew[p] = now
	s.granted[p] = true
	var b [13]byte
	b[0] = ctlLeaseGrant
	binary.LittleEndian.PutUint64(b[1:], s.cfgEpoch)
	binary.LittleEndian.PutUint32(b[9:], uint32(s.lease/time.Microsecond))
	if err := s.msgr.SendControl(p, b[:]); err != nil {
		// The grant cannot reach a holder we believe is alive (one-way
		// partition): without grants its lease lapses, so treat it like
		// any other unreachable peer and start the eviction clock.
		s.reportDown(p)
	}
}

// coordTick drives the coordinator's state machine: expire silent lease
// holders, activate pending evictions whose lease grace has passed, and
// re-admit fully repaired peers. Top-level tick only (never mid-repair).
func (s *Store) coordTick(now time.Time) {
	for p := 0; p < s.n; p++ {
		if p == s.me || !s.granted[p] {
			continue
		}
		if now.Sub(s.lastRenew[p]) > s.hbExpiry() {
			// The holder went silent past any lease it could still hold.
			s.granted[p] = false
			s.markDown(p)
		}
	}
	mask := s.cfgDown
	for p := 0; p < s.n && p < 64; p++ {
		if s.evictAt[p].IsZero() || !now.After(s.evictAt[p]) {
			continue
		}
		mask |= 1 << uint(p)
		s.evictAt[p] = time.Time{}
		s.granted[p] = false
	}
	if mask != s.cfgDown {
		s.bumpConfig(mask)
	}
	s.maybeReadmit()
}

// scheduleEvict starts the eviction clock for a node the coordinator now
// believes unreachable: the epoch that demotes it activates only after any
// lease it could hold has provably lapsed (lastRenew + 2×lease), so the
// promoted successor can never serve while the stale leader still writes.
func (s *Store) scheduleEvict(node int) {
	if node == s.me || s.cfgDownBit(node) || !s.evictAt[node].IsZero() {
		return
	}
	at := time.Now()
	if s.granted[node] {
		if grace := s.lastRenew[node].Add(s.evictGrace()); grace.After(at) {
			at = grace
		}
	}
	s.evictAt[node] = at
}

// reportRepair tells the coordinator this node verified the given peer
// (streamed and acknowledged every diff for the shards it leads) under the
// current epoch. Idempotent and re-sent by reportTick until an epoch bump
// acknowledges it, because control frames are lossy latest-wins.
func (s *Store) reportRepair() {
	var peers uint64
	for p := 0; p < s.n && p < 64; p++ {
		if s.repaired[p] && s.cfgDownBit(p) {
			peers |= 1 << uint(p)
		}
	}
	if peers == 0 {
		return
	}
	if s.me == s.coord {
		s.recordRepairDone(s.me, peers)
		return
	}
	var b [17]byte
	b[0] = ctlRepairDone
	binary.LittleEndian.PutUint64(b[1:], s.cfgEpoch)
	binary.LittleEndian.PutUint64(b[9:], peers)
	_ = s.msgr.SendControl(s.coord, b[:])
}

// reportTick re-publishes repair-completion reports while any repaired
// peer is still awaiting re-admission.
func (s *Store) reportTick(now time.Time) {
	if !now.After(s.reportAt) {
		return
	}
	s.reportAt = now.Add(s.reportEvery())
	s.reportRepair()
}

// recordRepairDone accumulates one reporter's verified-peer set, skipping
// peers under a post-link-event quarantine (see dropStaleAcks).
// Coordinator only; cleared on every epoch bump.
func (s *Store) recordRepairDone(reporter int, peers uint64) {
	if reporter < 0 || reporter >= 64 {
		return
	}
	now := time.Now()
	for p := 0; p < s.n && p < 64; p++ {
		if peers&(1<<uint(p)) == 0 || now.Before(s.ackQuarantine[p]) {
			continue
		}
		s.rejoinAcks[p] |= 1 << uint(reporter)
	}
}
