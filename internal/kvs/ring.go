package kvs

import "sort"

// This file implements the placement half of the store: a fixed shard space
// hashed over the cluster's nodes with a consistent-hash ring.
//
// Keys map to shards with a plain hash — that mapping depends only on the
// configured shard count, never on the cluster size, so growing the cluster
// never re-shards a key. Shards map to nodes by walking a ring of virtual
// node points: each node contributes VNodes points, a shard's owners are the
// first Replicas distinct nodes clockwise from the shard's point, and adding
// a node therefore steals only the shards whose arcs its new points land on
// (the classic consistent-hashing minimal-movement property — cf. the
// resource-mapping concerns of multi-level disaggregated NUMA systems in
// PAPERS.md).

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// Ring maps the key space onto cluster nodes: hash(key) → shard (stable in
// the node count), shard → an owner list of Replicas() distinct nodes via
// consistent hashing, primary first. A Ring is immutable after construction;
// all participants of a store build identical rings from the shared Config.
type Ring struct {
	shards   int
	replicas int
	points   []ringPoint
	owners   [][]int // per shard, primary first
}

// fnv1a is the 64-bit FNV-1a hash used for both key→shard and ring-point
// placement.
func fnv1a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes an integer into a well-distributed ring position
// (splitmix64 finalizer).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing places shards over nodes with replicas copies each (clamped to the
// node count) and vnodes ring points per node. The node list is typically
// 0..clusterNodes-1; any distinct ids work.
func NewRing(nodes []int, shards, replicas, vnodes int) *Ring {
	if shards <= 0 {
		shards = DefaultShards
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{shards: shards, replicas: replicas}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			h := mix64(uint64(n)<<20 | uint64(v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	r.owners = make([][]int, shards)
	for s := 0; s < shards; s++ {
		r.owners[s] = r.ownersAt(mix64(0x9e3779b97f4a7c15 ^ uint64(s)))
	}
	return r
}

// ownersAt walks the ring clockwise from point h collecting the first
// replicas distinct nodes.
func (r *Ring) ownersAt(h uint64) []int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]int, 0, r.replicas)
	for i := 0; i < len(r.points) && len(owners) < r.replicas; i++ {
		n := r.points[(start+i)%len(r.points)].node
		dup := false
		for _, o := range owners {
			if o == n {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, n)
		}
	}
	return owners
}

// Shards reports the shard count.
func (r *Ring) Shards() int { return r.shards }

// Replicas reports the copies kept of each shard (primary included).
func (r *Ring) Replicas() int { return r.replicas }

// ShardOf maps a key to its shard. The mapping depends only on the shard
// count, so it is stable across cluster resizes.
func (r *Ring) ShardOf(key []byte) int {
	return int(fnv1a(key) % uint64(r.shards))
}

// Owners returns the nodes holding a shard, primary first. The returned
// slice is shared; callers must not modify it.
func (r *Ring) Owners(shard int) []int { return r.owners[shard] }
