package kvs

import "sort"

// This file implements the placement half of the store: a fixed shard space
// hashed over the cluster's nodes with a consistent-hash ring.
//
// Keys map to shards with a plain hash — that mapping depends only on the
// configured shard count, never on the cluster size, so growing the cluster
// never re-shards a key. Shards map to nodes by walking a ring of virtual
// node points: each node contributes VNodes points, a shard's owners are the
// first Replicas distinct nodes clockwise from the shard's point, and adding
// a node therefore steals only the shards whose arcs its new points land on
// (the classic consistent-hashing minimal-movement property — cf. the
// resource-mapping concerns of multi-level disaggregated NUMA systems in
// PAPERS.md).

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash uint64
	node int
}

// Ring maps the key space onto cluster nodes: hash(key) → shard (stable in
// the node count), shard → an owner list of Replicas() distinct nodes via
// consistent hashing, primary first. A Ring is immutable after
// construction; resizing (AddNode) builds a NEW ring, so every published
// *Ring stays a consistent snapshot. All participants of a store build
// identical rings from the shared Config and apply resizes in the same
// order.
type Ring struct {
	shards       int
	replicas     int // effective (clamped to the node count)
	wantReplicas int // configured, before clamping; re-applied on resize
	vnodes       int
	nodes        []int
	points       []ringPoint
	owners       [][]int // per shard, primary first
	rotated      [][]int // per shard, owners rotated left by one (load rebalancing)
}

// fnv1a is the 64-bit FNV-1a hash used for both key→shard and ring-point
// placement.
func fnv1a(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// mix64 finalizes an integer into a well-distributed ring position
// (splitmix64 finalizer).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing places shards over nodes with replicas copies each (clamped to the
// node count) and vnodes ring points per node. The node list is typically
// 0..clusterNodes-1; any distinct ids work.
func NewRing(nodes []int, shards, replicas, vnodes int) *Ring {
	if shards <= 0 {
		shards = DefaultShards
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	want := replicas
	if replicas > len(nodes) {
		replicas = len(nodes)
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		shards: shards, replicas: replicas, wantReplicas: want,
		vnodes: vnodes, nodes: append([]int(nil), nodes...),
	}
	r.points = make([]ringPoint, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for v := 0; v < vnodes; v++ {
			h := mix64(uint64(n)<<20 | uint64(v))
			r.points = append(r.points, ringPoint{hash: h, node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	r.owners = make([][]int, shards)
	r.rotated = make([][]int, shards)
	for s := 0; s < shards; s++ {
		r.owners[s] = r.ownersAt(mix64(0x9e3779b97f4a7c15 ^ uint64(s)))
		// Precompute the rotated owner list (same replica set, next owner
		// promoted to primary) so rebalanced lookups stay allocation-free.
		rot := make([]int, len(r.owners[s]))
		copy(rot, r.owners[s][1:])
		rot[len(rot)-1] = r.owners[s][0]
		r.rotated[s] = rot
	}
	return r
}

// ownersAt walks the ring clockwise from point h collecting the first
// replicas distinct nodes.
func (r *Ring) ownersAt(h uint64) []int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]int, 0, r.replicas)
	for i := 0; i < len(r.points) && len(owners) < r.replicas; i++ {
		n := r.points[(start+i)%len(r.points)].node
		dup := false
		for _, o := range owners {
			if o == n {
				dup = true
				break
			}
		}
		if !dup {
			owners = append(owners, n)
		}
	}
	return owners
}

// Shards reports the shard count.
func (r *Ring) Shards() int { return r.shards }

// Replicas reports the copies kept of each shard (primary included).
func (r *Ring) Replicas() int { return r.replicas }

// ShardOf maps a key to its shard. The mapping depends only on the shard
// count, so it is stable across cluster resizes.
func (r *Ring) ShardOf(key []byte) int {
	return int(fnv1a(key) % uint64(r.shards))
}

// Nodes returns the ring's member list (a copy).
func (r *Ring) Nodes() []int { return append([]int(nil), r.nodes...) }

// ContainsNode reports whether node is a ring member.
func (r *Ring) ContainsNode(node int) bool {
	for _, n := range r.nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Owners returns the nodes holding a shard, primary first. The returned
// slice is a defensive copy: callers may keep or mutate it freely without
// corrupting placement. Package-internal hot paths that promise not to
// mutate use ownersShared instead.
func (r *Ring) Owners(shard int) []int {
	return append([]int(nil), r.owners[shard]...)
}

// ownersShared returns the internal owner slice for a shard, primary
// first. It aliases ring state: callers must treat it as read-only.
func (r *Ring) ownersShared(shard int) []int { return r.owners[shard] }

// ownersUnder returns the shard's owner list under a rotation mask:
// bit shard set (and shard < 64) promotes the next replica to primary by
// rotating the owner list left by one. The replica SET never changes — a
// rotation moves leadership and primary-read placement without migrating
// any data, which is what lets the coordinator rebalance hot shards
// through a plain epoch transition. Aliases ring state: read-only.
func (r *Ring) ownersUnder(shard int, rot uint64) []int {
	if shard < 64 && rot&(1<<uint(shard)) != 0 && len(r.owners[shard]) > 1 {
		return r.rotated[shard]
	}
	return r.owners[shard]
}

// AddNode returns a new ring with node added as a member, leaving the
// receiver untouched. Consistent hashing keeps movement minimal: a shard's
// owner set changes only where the new node's ring points land, so most
// shards keep their exact placement and the rest gain the new node. Adding
// an existing member returns the receiver unchanged. If the configured
// replica count was clamped by a small member list, growth re-expands it.
func (r *Ring) AddNode(node int) *Ring {
	if r.ContainsNode(node) {
		return r
	}
	return NewRing(append(r.Nodes(), node), r.shards, r.wantReplicas, r.vnodes)
}

// MovedShards lists the shards whose owner set differs between old and
// new — the shards a store must migrate when applying the resize.
func MovedShards(old, next *Ring) []int {
	if old.shards != next.shards {
		return nil
	}
	var moved []int
	for s := 0; s < old.shards; s++ {
		a, b := old.owners[s], next.owners[s]
		same := len(a) == len(b)
		for i := 0; same && i < len(a); i++ {
			same = a[i] == b[i]
		}
		if !same {
			moved = append(moved, s)
		}
	}
	return moved
}
