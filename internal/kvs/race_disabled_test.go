//go:build !race

package kvs

// raceScale is 1 without the race detector; see race_enabled_test.go.
const raceScale = 1
