package kvs

import (
	"math/rand"
	"testing"
)

// TestTermEpochOrderingHelpers pins the packing invariants that make the
// canonical single-word orderings — termNewer and epochNewer, the only
// sanctioned way to compare bare term or epoch words (enforced by
// sonuma-lint's epochorder analyzer) — equivalent to the semantic orders
// they stand for.
func TestTermEpochOrderingHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const owners = 1 << termBits
	for i := 0; i < 10000; i++ {
		g1, g2 := uint64(rng.Intn(1000))+1, uint64(rng.Intn(1000))+1
		o1, o2 := rng.Intn(owners), rng.Intn(owners)
		t1, t2 := termFor(g1, o1), termFor(g2, o2)

		// termNewer is the lexicographic (generation, owner) order: the
		// generation dominates, owner bits tie-break deterministically.
		wantNewer := g1 > g2 || (g1 == g2 && o1 > o2)
		if got := termNewer(t1, t2); got != wantNewer {
			t.Fatalf("termNewer(%#x, %#x) = %v, want %v (gen %d/%d owner %d/%d)",
				t1, t2, got, wantNewer, g1, g2, o1, o2)
		}

		// A successor term supersedes its predecessor whoever owns it.
		succ := nextTerm(t1, o2)
		if !termNewer(succ, t1) {
			t.Fatalf("nextTerm(%#x, %d) = %#x does not supersede its predecessor", t1, o2, succ)
		}

		// Epoch bands: the successor term's first epoch supersedes every
		// epoch the predecessor term can activate, so epochNewer on bare
		// epoch words is a total order across successions.
		k := uint64(rng.Intn(1 << 20))
		oldEpoch := termEpochFloor(t1) + 1 + k
		newEpoch := termEpochFloor(succ) + 1
		if !epochNewer(newEpoch, oldEpoch) {
			t.Fatalf("first epoch %#x of successor term %#x does not supersede epoch %#x of term %#x",
				newEpoch, succ, oldEpoch, t1)
		}
		if !epochNewer(oldEpoch+1, oldEpoch) || epochNewer(oldEpoch, oldEpoch) {
			t.Fatalf("epochNewer not a strict within-term order at %#x", oldEpoch)
		}

		// cfgNewer stays the lexicographic (term, epoch) composite.
		e1, e2 := oldEpoch, termEpochFloor(t2)+1+uint64(rng.Intn(1<<20))
		wantCfg := t1 > t2 || (t1 == t2 && e1 > e2)
		if got := cfgNewer(t1, e1, t2, e2); got != wantCfg {
			t.Fatalf("cfgNewer(%#x, %#x, %#x, %#x) = %v, want %v", t1, e1, t2, e2, got, wantCfg)
		}
	}
}
