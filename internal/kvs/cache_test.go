package kvs

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// Tests for the skew-aware serving stack: the hot-key read-lease cache
// (read-your-writes, bounded cross-client staleness, invalidation racing
// live PUTs — run under -race in CI), replica-spread reads, the per-key
// MultiGet failover, and the load-driven rebalancer. Lease timings are
// race-scaled like the lease and chaos suites.

// cacheConfig is leaseConfig plus the skew-serving features.
func cacheConfig(lease time.Duration) Config {
	cfg := leaseConfig(lease)
	cfg.ReadSpread = true
	cfg.HotKeys = 8
	return cfg
}

// TestCacheReadYourWrites pins the same-client guarantee: a Put
// acknowledged to this client is visible to its very next Get, cached or
// not — the ack's shard version lets the cache fold the write in (or
// drop the shard) instead of waiting out a probe.
func TestCacheReadYourWrites(t *testing.T) {
	cfg := cacheConfig(10 * time.Millisecond)
	_, stores := newService(t, 3, cfg)
	c := newTestClient(t, stores[0])
	key := []byte("hot:ryw")
	for i := 0; i < 200; i++ {
		want := []byte(fmt.Sprintf("v-%06d", i))
		if err := c.Put(key, want); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		got, err := c.Get(key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("get %d after acked put: got %q, want %q (read-your-writes broken)", i, got, want)
		}
	}
	if cs := c.CacheStats(); cs.Fills == 0 {
		t.Fatalf("hot key was never cached (stats %+v); the test exercised nothing", cs)
	}
}

// TestCacheInvalidationRace races live PUTs against cached GETs from
// other clients under millisecond leases: every read must return a value
// the writer actually wrote, per-reader sequences must be monotone (the
// cache only ever moves forward), and once the writer stops, a read
// after the probe window must return the final acknowledged value — no
// stale read outlives a lease. Run with -race.
func TestCacheInvalidationRace(t *testing.T) {
	cfg := cacheConfig(15 * time.Millisecond)
	_, stores := newService(t, 3, cfg)
	key := []byte("hot:race")
	writer := newTestClient(t, stores[0])
	if err := writer.Put(key, []byte("seq-000000")); err != nil {
		t.Fatal(err)
	}

	const writes = 300
	readers := []*Client{newTestClient(t, stores[1]), newTestClient(t, stores[2])}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ri, rc := range readers {
		ri, rc := ri, rc
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := rc.Get(key)
				if err != nil {
					// Transient (an epoch transition mid-read): liveness
					// is not under test here, staleness is.
					continue
				}
				// Cache hits never block: on a single-CPU box this loop
				// would otherwise starve the stores' lease heartbeats and
				// wedge the cluster it is trying to race.
				runtime.Gosched()
				seq, err := strconv.Atoi(strings.TrimPrefix(string(got), "seq-"))
				if err != nil {
					t.Errorf("reader %d: read %q, never written", ri, got)
					return
				}
				if seq < last {
					t.Errorf("reader %d: sequence went backwards %d -> %d (cache resurrected an old value)",
						ri, last, seq)
					return
				}
				last = seq
			}
		}()
	}

	var writeErr error
	for i := 1; i <= writes && writeErr == nil; i++ {
		val := []byte(fmt.Sprintf("seq-%06d", i))
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := writer.Put(key, val)
			if err == nil {
				break
			}
			// Fenced/parked writes during an epoch transition are the
			// documented error surface; retry until the ack lands.
			if time.Now().After(deadline) {
				writeErr = fmt.Errorf("put %d never acked: %w", i, err)
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// The cross-client staleness bound is the probe cadence (lease/2);
	// after a full lease every reader's next probe is due.
	time.Sleep(2 * cfg.Lease)
	close(stop)
	wg.Wait()
	if writeErr != nil {
		t.Fatal(writeErr)
	}
	if t.Failed() {
		return
	}
	want := []byte(fmt.Sprintf("seq-%06d", writes))
	for ri, rc := range readers {
		var got []byte
		var err error
		deadline := time.Now().Add(10 * time.Second)
		for {
			if got, err = rc.Get(key); err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reader %d: final get: %v", ri, err)
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("reader %d: read %q a full lease after the last ack, want %q (stale read outlived the lease)",
				ri, got, want)
		}
	}
}

// TestSpreadReadsStayCorrect pins replica-spread GETs: with ReadSpread
// on, single-key reads still always return the latest acknowledged
// value, and the picker actually samples more than one replica.
func TestSpreadReadsStayCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.ReadSpread = true
	_, stores := newService(t, 3, cfg)
	c := newTestClient(t, stores[1])
	key := []byte("spread:k")
	for gen := 0; gen < 20; gen++ {
		want := []byte(fmt.Sprintf("g-%04d", gen))
		if err := c.Put(key, want); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			got, err := c.Get(key)
			if err != nil {
				t.Fatalf("gen %d read %d: %v", gen, i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("gen %d read %d: got %q, want %q", gen, i, got, want)
			}
		}
	}
	sampled := 0
	for _, l := range c.picker.ewma {
		if l > 0 {
			sampled++
		}
	}
	if sampled < 2 {
		t.Fatalf("picker sampled %d replicas; spread never left the primary", sampled)
	}
}

// TestMultiGetFeedsSpreadEwma pins the picker's visibility into batched
// reads: with ReadSpread on, a MultiGet-only workload must feed burst
// completion latencies into the replica EWMAs just like single Gets do.
// (Regression: the burst path recorded read samples but never observed a
// latency, so a client that only ever issued MultiGets left the picker
// blind — every replica stuck at the "unsampled" sentinel forever.)
func TestMultiGetFeedsSpreadEwma(t *testing.T) {
	cfg := testConfig()
	cfg.ReadSpread = true
	_, stores := newService(t, 3, cfg)
	c := newTestClient(t, stores[1])

	var keys [][]byte
	for i := 0; i < 8; i++ {
		k := []byte(fmt.Sprintf("mge:%04d", i))
		keys = append(keys, k)
		if err := c.Put(k, []byte(fmt.Sprintf("v-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		_, errs := c.MultiGet(keys)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d MultiGet[%q]: %v", round, keys[i], err)
			}
		}
	}
	sampled := 0
	for _, l := range c.picker.ewma {
		if l > 0 {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("MultiGet bursts completed but no replica EWMA was ever observed; the picker is blind to batched reads")
	}
}

// TestMultiGetDeadReplicaFailover pins the per-key failover: a burst
// whose keys are led by a node that just fell off the fabric must still
// return every key's latest value — each failed read falls back to the
// single-key ring-order path individually.
func TestMultiGetDeadReplicaFailover(t *testing.T) {
	cfg := leaseConfig(20 * time.Millisecond)
	cl, stores := newService(t, 4, cfg)
	ring := stores[0].Ring()
	c := newTestClient(t, stores[0])
	const victim = 2

	var keys [][]byte
	want := map[string][]byte{}
	victimLed := 0
	for i := 0; len(keys) < 12 && i < 10000; i++ {
		k := []byte(fmt.Sprintf("mg:%04d", i))
		led := ring.Owners(ring.ShardOf(k))[0] == victim
		if led {
			victimLed++
		} else if len(keys)-victimLed >= 6 {
			continue // keep the burst half victim-led, half not
		}
		keys = append(keys, k)
		want[string(k)] = []byte(fmt.Sprintf("val-%04d", i))
		if err := c.Put(k, want[string(k)]); err != nil {
			t.Fatal(err)
		}
	}
	if victimLed == 0 {
		t.Fatalf("no test key led by node %d", victim)
	}

	for i := 0; i < 4; i++ {
		if i != victim {
			cl.FailLink(victim, i)
		}
	}
	vals, errs := c.MultiGet(keys)
	for i, k := range keys {
		if errs[i] != nil {
			t.Fatalf("MultiGet[%q] after primary death: %v", k, errs[i])
		}
		if !bytes.Equal(vals[i], want[string(k)]) {
			t.Fatalf("MultiGet[%q] = %q, want %q", k, vals[i], want[string(k)])
		}
	}
}

// TestRebalanceMovesHotShard drives a write-skewed load at one node until
// the coordinator's rebalancer flips a rotation bit: leadership of a hot
// shard must move off the hot node via an epoch bump, with every key
// still serving its latest value from byte-identical replicas afterwards.
func TestRebalanceMovesHotShard(t *testing.T) {
	cfg := leaseConfig(15 * time.Millisecond)
	cfg.Rebalance = true
	_, stores := newService(t, 4, cfg)
	ring := stores[0].Ring()
	const hot = 1

	var keys [][]byte
	for i := 0; len(keys) < 24 && i < 20000; i++ {
		k := []byte(fmt.Sprintf("rb:%05d", i))
		if ring.Owners(ring.ShardOf(k))[0] == hot {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		t.Fatalf("node %d leads no shard", hot)
	}

	// Hammer the hot node's shards from three nodes until the coordinator
	// reacts (or the deadline passes). Each round is one write plus a
	// MultiGet sweep of every hot key: the burst reads land 16x-weighted
	// load samples on the hot leader far faster than puts alone, which
	// matters under -race where put throughput alone can sit below the
	// rebalancer's minimum-load floor.
	writers := []*Client{newTestClient(t, stores[0]), newTestClient(t, stores[2]), newTestClient(t, stores[3])}
	deadline := time.Now().Add(80 * cfg.Lease)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wi, wc := range writers {
		wi, wc := wi, wc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[(seq+wi)%len(keys)]
				// Errors here are the rotation epoch's expected fencing
				// surface; the final audit (with retries) owns correctness.
				_ = wc.Put(k, []byte(fmt.Sprintf("w%d-%06d", wi, seq)))
				_, _ = wc.MultiGet(keys)
			}
		}()
	}
	for stores[0].Stats().Rebalances == 0 && time.Now().Before(deadline) {
		time.Sleep(cfg.Lease / 4)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if stores[0].Stats().Rebalances == 0 {
		t.Fatal("skewed write load never triggered a rebalance")
	}
	view := stores[0].cfgSnapshot()
	if view.rot == 0 {
		t.Fatal("rebalance counted but the rotation mask is still zero")
	}
	moved := 0
	for sh := 0; sh < cfg.Shards; sh++ {
		if view.rot&(1<<uint(sh)) == 0 {
			continue
		}
		if ring.Owners(sh)[0] != hot {
			t.Fatalf("rotated shard %d was led by %d, not the hot node %d", sh, ring.Owners(sh)[0], hot)
		}
		if got := stores[0].leaderOf(sh); got == hot {
			t.Fatalf("shard %d still led by the hot node after rotation", sh)
		}
		moved++
	}
	t.Logf("rebalances=%d rot=%#x moved=%d shards off node %d", stores[0].Stats().Rebalances, view.rot, moved, hot)

	// No data loss across the epoch bump: a fresh write to every key must
	// land and read back identically from both replicas.
	c := writers[0]
	for i, k := range keys {
		want := []byte(fmt.Sprintf("final-%04d", i))
		var err error
		for try := 0; try < 100; try++ {
			if err = c.Put(k, want); err == nil {
				break
			}
			time.Sleep(cfg.Lease / 4)
		}
		if err != nil {
			t.Fatalf("final put %q: %v", k, err)
		}
		for _, o := range ring.Owners(ring.ShardOf(k)) {
			got, gerr := c.GetReplica(o, k)
			if gerr != nil {
				t.Fatalf("GetReplica(%d, %q): %v", o, k, gerr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("replica %d of %q = %q, want %q (write lost across rotation)", o, k, got, want)
			}
		}
	}
}
