package kvs

import (
	"encoding/binary"
	"time"
)

// This file implements the coordinator's feedback-driven shard
// rebalancer (MAO-style warehouse placement, PAPERS.md): stores export
// per-shard load counters in their shard lines — reads sampled by
// clients with one remote FetchAdd per loadSampleRate GETs against the
// node that served them, writes counted by the leader that applied them
// — and the coordinator aggregates the counters on a 2-lease cadence
// with one one-sided read of each member's shard-line table. When one
// node carries disproportionate load, the coordinator flips the hottest
// eligible shard's bit in the configuration's ROTATION MASK and
// activates the change as an ordinary epoch bump: the rotation promotes
// the shard's next replica to primary (Ring.ownersUnder) without moving
// any data — the replica set is unchanged — and the epoch machinery
// already fences leases, re-routes parked PUTs, and invalidates hot-key
// caches on the transition. One shard per tick keeps each move's effect
// observable in the next load sample before the next move.

const (
	// rebalEvery is the aggregation cadence, in leases. Two leases lets
	// every member report (reads land continuously; writes at each apply)
	// and keeps the coordinator's extra remote reads negligible.
	rebalEvery = 2
	// rebalRatio triggers a move when the busiest node's load exceeds
	// this multiple of the mean: high enough to ignore sampling noise,
	// low enough to catch a zipfian hot node (whose share is many times
	// the mean).
	rebalRatio = 1.5
	// rebalMinLoad is the minimum per-tick load units (sampled reads
	// scaled back up, plus writes) on the busiest node before a move is
	// considered — an idle cluster never rotates.
	rebalMinLoad = 256
)

// rebalanceTick runs one aggregation + (at most) one rotation. Active
// coordinator only, from coordTick. Skips entirely while any node is
// evicted: failure handling owns the epoch machinery then, and load
// observed during a partition says nothing about the healed cluster.
func (s *Store) rebalanceTick(now time.Time) {
	if !s.cfg.Rebalance || s.cfg.Shards > 64 || s.loadBuf == nil {
		return
	}
	if now.Before(s.rebalAt) {
		return
	}
	s.rebalAt = now.Add(time.Duration(rebalEvery) * s.lease)
	if s.cfgDown != 0 {
		return
	}
	ring := s.ring()
	shards := s.cfg.Shards
	if s.loadPrev == nil {
		s.loadPrev = make([][]uint64, s.n)
	}
	nodeLoad := make([]float64, s.n)
	shardLoad := make([]float64, shards)
	sampled := false
	for _, p := range ring.Nodes() {
		line := s.loadLine
		if p == s.me {
			if err := s.mem.ReadAt(s.cfg.shardLineOff(0), line); err != nil {
				return
			}
		} else {
			if err := s.qp.Read(p, uint64(s.cfg.shardLineOff(0)), s.loadBuf, 0, len(line)); err != nil {
				continue // unreachable: its load stays invisible this tick
			}
			if err := s.loadBuf.ReadAt(0, line); err != nil {
				return
			}
		}
		prev := s.loadPrev[p]
		warmup := prev == nil
		if warmup {
			// First sight of this node's counters (fresh coordinator, or
			// a node joined): snapshot only — absolute counts are not a
			// per-tick delta.
			prev = make([]uint64, 2*shards)
			s.loadPrev[p] = prev
		}
		for sh := 0; sh < shards; sh++ {
			reads := binary.LittleEndian.Uint64(line[sh*shardLineSize+shardLineReads:])
			writes := binary.LittleEndian.Uint64(line[sh*shardLineSize+shardLineWrites:])
			dr, dw := reads-prev[2*sh], writes-prev[2*sh+1]
			prev[2*sh], prev[2*sh+1] = reads, writes
			if warmup {
				continue
			}
			load := float64(dr)*loadSampleRate + float64(dw)
			nodeLoad[p] += load
			shardLoad[sh] += load
			sampled = true
		}
	}
	if !sampled {
		return
	}
	members := ring.Nodes()
	var total float64
	hot, hotLoad := -1, 0.0
	for _, p := range members {
		total += nodeLoad[p]
		if nodeLoad[p] > hotLoad {
			hot, hotLoad = p, nodeLoad[p]
		}
	}
	mean := total / float64(len(members))
	if hot < 0 || hotLoad < rebalMinLoad || hotLoad < rebalRatio*mean {
		return
	}
	// Move the hottest shard the hot node leads whose rotation lands its
	// leadership on a node that stays below the hot node's load even
	// after absorbing the shard.
	best, bestLoad := -1, 0.0
	for sh := 0; sh < shards && sh < 64; sh++ {
		if s.leaderOf(sh) != hot {
			continue
		}
		rot := s.cfgRot ^ (1 << uint(sh))
		tgt := s.leaderUnder(sh, s.cfgDown, rot)
		if tgt == hot || nodeLoad[tgt]+shardLoad[sh] >= hotLoad {
			continue
		}
		if shardLoad[sh] > bestLoad {
			best, bestLoad = sh, shardLoad[sh]
		}
	}
	if best < 0 {
		return
	}
	if s.bumpConfig(s.cfgDown, s.cfgRot^(1<<uint(best))) {
		s.rebalances.Add(1)
	}
}
