package kvs

// replicaPicker is the client-side read balancer for replica-spread GETs:
// power-of-two-choices over the shard's reachable replicas, seeded by an
// EWMA of each replica's observed one-sided read latency. Two random
// candidates are drawn and the one with the lower smoothed latency wins —
// the classic result is that two choices already collapse the max queue
// to O(log log n) of random placement, without the herding a global
// "pick the fastest" rule causes when every client has the same stale
// view. An unsampled replica (EWMA 0) wins outright so every replica
// gets explored before the smoothed latencies take over. Correctness is
// untouched by spreading: replicas are seqlock-validated and the down
// views already gate evicted or unreachable peers — the picker only
// chooses WHICH safe replica to try first.
type replicaPicker struct {
	state uint64    // private splitmix64 stream, seeded per client
	ewma  []float64 // per-node observed GET latency, µs; 0 = unsampled
}

// ewmaBlend is how much of the previous smoothed latency survives each
// observation (new = 0.75·old + 0.25·sample): heavy enough to ride out
// single-read jitter, light enough to track a load shift within a few
// dozen reads.
const ewmaBlend = 0.75

func newReplicaPicker(n int, seed uint64) *replicaPicker {
	return &replicaPicker{
		state: seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		ewma:  make([]float64, n),
	}
}

func (p *replicaPicker) rand() uint64 {
	p.state += 0x9e3779b97f4a7c15
	return mix64(p.state)
}

// pick chooses the replica to try first from the eligible candidates.
func (p *replicaPicker) pick(eligible []int) int {
	switch len(eligible) {
	case 0:
		return -1
	case 1:
		return eligible[0]
	}
	i := int(p.rand() % uint64(len(eligible)))
	j := int(p.rand() % uint64(len(eligible)-1))
	if j >= i {
		j++
	}
	a, b := eligible[i], eligible[j]
	la, lb := p.ewma[a], p.ewma[b]
	// Unsampled beats sampled (exploration); then lower latency wins.
	switch {
	case la == 0:
		return a
	case lb == 0:
		return b
	case lb < la:
		return b
	default:
		return a
	}
}

// observe folds one successful read's latency into the replica's EWMA.
func (p *replicaPicker) observe(node int, us float64) {
	if node < 0 || node >= len(p.ewma) || us <= 0 {
		return
	}
	if p.ewma[node] == 0 {
		p.ewma[node] = us
		return
	}
	p.ewma[node] = ewmaBlend*p.ewma[node] + (1-ewmaBlend)*us
}
