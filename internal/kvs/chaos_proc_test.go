//go:build proc

package kvs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"sonuma"
	"sonuma/internal/stats"
)

// Process-level chaos suite (build tag `proc`, run with
// `go test -tags proc -race ./internal/kvs/`): the same node-blip and
// coordinator-kill shapes as chaos_test.go, but the store members are
// real sonuma-node OS processes and "node failure" is a SIGKILL. That
// exercises what the in-process FailNode flag cannot: the dead node's
// memory is genuinely gone (no store goroutine left to quietly answer),
// its sockets tear mid-frame instead of draining, failure detection rides
// on connection supervision rather than a shared atomic, and the restart
// really does begin from an empty store that only anti-entropy can
// repopulate. The post-heal audits are the suite's point: byte-identical
// replicas for every key (the rejoined node included), term agreement
// across every process, and no acknowledged write of the settled epoch
// lost.

// procLease is the service lease for the process suite: roomier than the
// in-process chaos lease because every renewal crosses a socket, scaled
// further under -race.
const procLease = 60 * time.Millisecond

// procService is one multi-process cluster under test: member stores in
// daemons, client-only stores (and their clients) on parent-hosted nodes.
type procService struct {
	pc      *sonuma.ProcCluster
	members []int
	total   int
	stores  []*Store
	clients []*Client
}

// startProcService boots members daemons plus clientCount parent-hosted
// client nodes and opens the client-only stores.
func startProcService(t *testing.T, members, clientCount int, cfg Config) *procService {
	t.Helper()
	cfg = cfg.withDefaults()
	total := members + clientCount
	ps := &procService{total: total}
	for i := 0; i < members; i++ {
		ps.members = append(ps.members, i)
	}
	var local []int
	for i := members; i < total; i++ {
		local = append(local, i)
	}
	cfg.Members = ps.members
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := sonuma.StartProcCluster(sonuma.ProcOptions{
		Nodes:         total,
		Daemons:       ps.members,
		Local:         local,
		ServiceConfig: blob,
		ReadyTimeout:  60 * time.Second,
	})
	if err != nil {
		t.Fatalf("StartProcCluster: %v", err)
	}
	ps.pc = pc
	t.Cleanup(func() {
		for _, s := range ps.stores {
			s.Close()
		}
		pc.Close()
	})
	for _, id := range local {
		// Context id 3 matches what sonuma-node daemons open their store on.
		ctx, err := pc.Cluster().Node(id).OpenContext(3, cfg.SegmentSize(total)+4096)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(ctx, cfg)
		if err != nil {
			t.Fatalf("client-only store on node %d: %v", id, err)
		}
		ps.stores = append(ps.stores, s)
		c, err := s.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		ps.clients = append(ps.clients, c)
	}
	return ps
}

// daemonInfo polls one daemon's self-reported service state.
func (ps *procService) daemonInfo(id int) (*sonuma.ProcNodeInfo, error) {
	return ps.pc.Info(id)
}

// waitConverged blocks until every process — parent stores and daemons —
// agrees on one clean (term, epoch): same term and epoch everywhere,
// nothing evicted, every down view clear.
func (ps *procService) waitConverged(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		term, epoch := ps.stores[0].Term(), ps.stores[0].Epoch()
		for _, s := range ps.stores {
			if s.Term() != term || s.Epoch() != epoch {
				ok = false
			}
			for p := 0; p < ps.total; p++ {
				if s.EpochDown(p) {
					ok = false
				}
			}
			for p, d := range s.DownView() {
				if d && p != s.NodeID() {
					ok = false
				}
			}
		}
		for _, m := range ps.members {
			info, err := ps.daemonInfo(m)
			if err != nil {
				ok = false
				break
			}
			if info.Term != term || info.Epoch != epoch {
				ok = false
			}
			for p, d := range info.DownView {
				if d && p != info.Node {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range ps.stores {
				t.Logf("parent store %d: term=%d coord=%d epoch=%d down=%v",
					i, s.Term(), s.Coordinator(), s.Epoch(), s.DownView())
			}
			for _, m := range ps.members {
				if info, err := ps.daemonInfo(m); err == nil {
					t.Logf("daemon n%d: term=%d coord=%d epoch=%d down=%v",
						m, info.Term, info.Coordinator, info.Epoch, info.DownView)
				} else {
					t.Logf("daemon n%d: info unavailable: %v", m, err)
				}
			}
			t.Fatal("multi-process cluster did not converge to a single clean (term, epoch)")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// procAt converts lease units to wall time for the process schedules.
func procAt(leases int) time.Duration {
	return time.Duration(leases) * procLease * raceScale
}

// runProcKillSchedule drives one SIGKILL schedule: a workload of
// exclusive-writer keys runs from the parent clients while the victim
// daemon is killed at killAt and restarted (empty) at restartAt. After
// the heal the suite re-runs the byte-identical-replica and
// term-agreement audits.
func runProcKillSchedule(t *testing.T, victim int, requireTakeover bool) {
	cfg := testConfig()
	cfg.Lease = procLease * raceScale
	ps := startProcService(t, 4, 2, cfg)
	seed := chaosEnvSeed(0x50eed)
	t.Logf("proc chaos: victim daemon n%d, seed=%#x, lease=%s (set CHAOS_SEED to reproduce)",
		victim, seed, cfg.Lease)

	// One exclusive writer per key (client 0); client 1 only reads, so the
	// fabricated-data audit has a single legal value set per key.
	const keyCount = 16
	keys := make([][]byte, keyCount)
	attempted := make([]map[string]bool, keyCount)
	lastAck := make([][]byte, keyCount)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("pchaos:%d", i))
		attempted[i] = map[string]bool{"init": true}
		if err := ps.clients[0].Put(keys[i], []byte("init")); err != nil {
			t.Fatalf("preload %q: %v", keys[i], err)
		}
		lastAck[i] = []byte("init")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var acked, errs int
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := stats.NewRNG(seed)
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ki := rng.Intn(keyCount)
			seq++
			val := []byte(fmt.Sprintf("w0-%d-%06d", ki, seq))
			attempted[ki][string(val)] = true
			start := time.Now()
			err := ps.clients[0].Put(keys[ki], val)
			if d := time.Since(start); d > 60*cfg.Lease+10*time.Second {
				t.Errorf("put stalled %s during the outage (hang, not a definite error)", d)
				return
			}
			if err == nil {
				acked++
				lastAck[ki] = val
			} else {
				errs++
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := stats.NewRNG(seed ^ 0xbeef)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ps.clients[1].Get(keys[rng.Intn(keyCount)])
		}
	}()

	// The schedule: SIGKILL at 2 leases, restart (empty store, same fabric
	// address) at 10, workload runs on to 16.
	start := time.Now()
	time.Sleep(procAt(2) - time.Since(start))
	if err := ps.pc.KillNode(victim); err != nil {
		t.Fatalf("KillNode(%d): %v", victim, err)
	}
	if wait := procAt(10) - time.Since(start); wait > 0 {
		time.Sleep(wait)
	}
	if err := ps.pc.RestartNode(victim, 60*time.Second); err != nil {
		t.Fatalf("RestartNode(%d): %v", victim, err)
	}
	if wait := procAt(16) - time.Since(start); wait > 0 {
		time.Sleep(wait)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if acked == 0 {
		t.Fatal("no write ever completed during the schedule")
	}
	t.Logf("workload: acked=%d errs=%d", acked, errs)

	ps.waitConverged(t, 90*time.Second)

	// Term agreement across every process, and — for the coordinator kill
	// — proof the settled term was activated by a successor.
	term := ps.stores[0].Term()
	var takeovers uint64
	for _, m := range ps.members {
		info, err := ps.daemonInfo(m)
		if err != nil {
			t.Fatalf("daemon n%d info after heal: %v", m, err)
		}
		if info.Term != term {
			t.Fatalf("daemon n%d settled on term %d, parent on %d", m, info.Term, term)
		}
		var st StoreStats
		if err := json.Unmarshal(info.Stats, &st); err != nil {
			t.Fatalf("daemon n%d stats: %v", m, err)
		}
		takeovers += st.Takeovers
	}
	t.Logf("settled: term=%d coord=%d epoch=%d takeovers=%d",
		term, ps.stores[0].Coordinator(), ps.stores[0].Epoch(), takeovers)
	if requireTakeover {
		if takeovers == 0 {
			t.Fatal("coordinator SIGKILL settled without a successor-activated term")
		}
		if got := ps.stores[0].Coordinator(); got == victim {
			t.Fatalf("settled coordinator is still the killed seed (%d)", got)
		}
	}

	// Replica audit: byte-identical across owners (the restarted daemon
	// included), and holding only values the exclusive writer attempted.
	ring := ps.stores[0].Ring()
	audit := ps.clients[0]
	for ki, key := range keys {
		var ref []byte
		for oi, o := range ring.Owners(ring.ShardOf(key)) {
			got, err := audit.GetReplica(o, key)
			if err != nil {
				t.Fatalf("post-heal GetReplica(%d, %q): %v", o, key, err)
			}
			if oi == 0 {
				ref = got
				if !attempted[ki][string(got)] {
					t.Fatalf("key %q holds %q, which its writer never wrote (fabricated or crossed data)", key, got)
				}
			} else if !bytes.Equal(got, ref) {
				t.Fatalf("replica divergence on %q after the heal: %q vs %q", key, got, ref)
			}
		}
	}

	// Final round on the settled epoch: acked writes here must survive on
	// every replica.
	for ki, key := range keys {
		final := []byte(fmt.Sprintf("final-%d", ki))
		deadline := time.Now().Add(30 * time.Second)
		for {
			err := ps.clients[0].Put(key, final)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("final put on %q never acked: %v", key, err)
			}
		}
		lastAck[ki] = final
	}
	for ki, key := range keys {
		for _, o := range ring.Owners(ring.ShardOf(key)) {
			got, err := audit.GetReplica(o, key)
			if err != nil {
				t.Fatalf("final GetReplica(%d, %q): %v", o, key, err)
			}
			if !bytes.Equal(got, lastAck[ki]) {
				t.Fatalf("replica %d of %q = %q, want %q (acked write lost after SIGKILL recovery)",
					o, key, got, lastAck[ki])
			}
		}
	}
}

// TestProcChaosNodeBlip SIGKILLs a busy member daemon mid-load and
// restarts it: the in-process "node-blip" schedule with a real crash.
func TestProcChaosNodeBlip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos in -short mode")
	}
	runProcKillSchedule(t, 1, false)
}

// TestProcChaosCoordKill SIGKILLs the daemon holding the epoch authority:
// the succession must activate a new term with the seed coordinator's
// process genuinely gone, and the restarted ex-coordinator must rejoin as
// a follower.
func TestProcChaosCoordKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos in -short mode")
	}
	runProcKillSchedule(t, 0, true)
}

// TestProcCrashRestartRecovery pins the crash-restart story end to end:
// a member daemon is SIGKILLed, writes keep landing (and being
// acknowledged) while it is dead, and a fresh daemon — empty store, same
// fabric address — must be streamed back to byte-identical replicas by
// anti-entropy with no acknowledged write lost. Run under -race.
func TestProcCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos in -short mode")
	}
	cfg := testConfig()
	cfg.Lease = procLease * raceScale
	ps := startProcService(t, 4, 1, cfg)
	const victim = 1

	// First generation: acked by the full cluster, some replicas on the
	// victim.
	const keyCount = 32
	keys := make([][]byte, keyCount)
	lastAck := make([][]byte, keyCount)
	victimReplicas := 0
	ring := ps.stores[0].Ring()
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("crash:%d", i))
		lastAck[i] = []byte(fmt.Sprintf("gen1-%d", i))
		if err := ps.clients[0].Put(keys[i], lastAck[i]); err != nil {
			t.Fatalf("gen1 put %q: %v", keys[i], err)
		}
		for _, o := range ring.Owners(ring.ShardOf(keys[i])) {
			if o == victim {
				victimReplicas++
			}
		}
	}
	if victimReplicas == 0 {
		t.Fatalf("no test key replicates on node %d; nothing would exercise the rejoin", victim)
	}

	if err := ps.pc.KillNode(victim); err != nil {
		t.Fatal(err)
	}

	// Second generation: written into the degraded cluster. Each put
	// retries until the failover machinery acknowledges it — these acks
	// are the writes the restarted node must not resurrect stale versions
	// of.
	for i, key := range keys {
		val := []byte(fmt.Sprintf("gen2-%d", i))
		deadline := time.Now().Add(60 * time.Second)
		for {
			err := ps.clients[0].Put(key, val)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("gen2 put %q never acked while n%d dead: %v", key, victim, err)
			}
		}
		lastAck[i] = val
	}

	// Rebirth: empty store, same address. Anti-entropy must stream every
	// slot back before the cluster re-admits it.
	if err := ps.pc.RestartNode(victim, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	ps.waitConverged(t, 90*time.Second)

	// The restarted replica must serve byte-identical current data via
	// one-sided reads — it lost everything, so anything correct it returns
	// was streamed back by repair.
	audit := ps.clients[0]
	served := 0
	for i, key := range keys {
		for _, o := range ring.Owners(ring.ShardOf(key)) {
			got, err := audit.GetReplica(o, key)
			if err != nil {
				t.Fatalf("post-rejoin GetReplica(%d, %q): %v", o, key, err)
			}
			if !bytes.Equal(got, lastAck[i]) {
				t.Fatalf("replica %d of %q = %q, want acked %q (lost write or stale resurrection)",
					o, key, got, lastAck[i])
			}
			if o == victim {
				served++
			}
		}
	}
	if served == 0 {
		t.Fatal("rejoined node never served a one-sided read in the audit")
	}
	t.Logf("rejoined n%d serves %d replicas byte-identical after restart from empty", victim, served)
}
