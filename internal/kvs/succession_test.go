package kvs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"sonuma"
)

// Tests for the replicated epoch authority (PR 5): term encoding and slot
// parsing, term-ordered takeover and demotion at the unit level on
// quiesced stores, and the two acceptance scenarios — the seed
// coordinator fully partitioned, and node-failed (all links cut for the
// run) — under live load, with the post-heal audits: successor-activated
// term+epoch, parked writes completing (or ErrFenced, never hanging),
// ex-coordinator demotion, and byte-identical replicas.

func TestTermEncoding(t *testing.T) {
	seed := termFor(1, 0)
	if seed != 1<<termBits {
		t.Fatalf("termFor(1,0) = %d", seed)
	}
	if termOwner(seed) != 0 {
		t.Fatalf("termOwner(%d) = %d, want 0", seed, termOwner(seed))
	}
	succ1 := nextTerm(seed, 1)
	if succ1 != termFor(2, 1) || termOwner(succ1) != 1 {
		t.Fatalf("nextTerm(%d, 1) = %d (owner %d)", seed, succ1, termOwner(succ1))
	}
	if !cfgNewer(succ1, 1, seed, 99) {
		t.Fatal("a higher term must outrank any epoch of a lower term")
	}
	if cfgNewer(seed, 99, succ1, 1) {
		t.Fatal("a lower term's epoch lead must not outrank a higher term")
	}
	if !cfgNewer(seed, 2, seed, 1) || cfgNewer(seed, 1, seed, 1) {
		t.Fatal("same-term configurations must order by epoch, strictly")
	}
	// Concurrent claimants of one generation order deterministically by
	// the owner bits.
	if !cfgNewer(nextTerm(seed, 2), 1, nextTerm(seed, 1), 5) {
		t.Fatal("tie-break between same-generation claimants must be total")
	}
	// Generations own disjoint epoch ranges: the seed generation starts
	// at floor 0 (bootstrap epochs stay small), and a successor's first
	// epoch outranks any epoch the deposed term could have activated.
	if termEpochFloor(seed) != 0 {
		t.Fatalf("seed epoch floor = %d, want 0", termEpochFloor(seed))
	}
	if termEpochFloor(succ1)+1 <= 1<<32-1 {
		t.Fatal("successor epochs must outrank every possible seed-term epoch")
	}
}

func TestParseConfigSlotTornAndStale(t *testing.T) {
	line := make([]byte, cfgSlotSize)
	// Never published: all zeros.
	if _, _, _, _, ok := parseConfigSlot(line); ok {
		t.Fatal("parsed a never-published slot")
	}
	// Torn: odd seq (a mirror write or local update in flight).
	binary.LittleEndian.PutUint64(line[0:], 7)
	binary.LittleEndian.PutUint64(line[8:], termFor(2, 1))
	binary.LittleEndian.PutUint64(line[16:], 5)
	binary.LittleEndian.PutUint64(line[24:], 0b1001)
	binary.LittleEndian.PutUint64(line[40:], 0b11)
	binary.LittleEndian.PutUint64(line[32:], cfgSlotSum(termFor(2, 1), 5, 0b1001, 0b11))
	if _, _, _, _, ok := parseConfigSlot(line); ok {
		t.Fatal("parsed a torn (odd-seq) slot image")
	}
	// Stable image round-trips.
	binary.LittleEndian.PutUint64(line[0:], 8)
	term, epoch, down, rot, ok := parseConfigSlot(line)
	if !ok || term != termFor(2, 1) || epoch != 5 || down != 0b1001 || rot != 0b11 {
		t.Fatalf("parse = (%d, %d, %#b, %#b, %v)", term, epoch, down, rot, ok)
	}
	// A MIXED image — words from two different configurations, even seq
	// (a remote mirror write interleaved with local seqlock stores) —
	// fails the checksum and reads as torn.
	binary.LittleEndian.PutUint64(line[24:], 0b0110) // mask from another config
	if _, _, _, _, ok := parseConfigSlot(line); ok {
		t.Fatal("parsed a mixed (checksum-failing) slot image")
	}
}

// TestTermOrderedTakeoverAndDemotion drives the succession state machine
// deterministically: every serve goroutine is stopped first, so the test
// can call the serve-side methods directly without racing them. A
// successor scans, finds nothing newer, takes over with a write-through
// term activation that evicts the old coordinator; the ex-coordinator's
// next mirror pass observes the higher term and demotes itself; and
// control frames from the deposed term are rejected everywhere.
func TestTermOrderedTakeoverAndDemotion(t *testing.T) {
	_, stores := newService(t, 4, testConfig())
	// Let bootstrap polls finish (peers adopt epoch 1), then quiesce.
	waitEpochAtLeast(t, stores, -1, 1, 10*time.Second)
	for _, s := range stores {
		s.Close()
	}
	s0, s1, s2 := stores[0], stores[1], stores[2]
	seedTerm := termFor(1, 0)
	if s1.cfgTerm != seedTerm || s1.coord != 0 {
		t.Fatalf("store 1 bootstrap term=%d coord=%d", s1.cfgTerm, s1.coord)
	}

	// Succession: store 1 is the first live non-coordinator member; after
	// failoverWait of staleness it must activate the next generation and
	// evict the old coordinator in its first epoch.
	now := time.Now()
	s1.cfgLastOK = now.Add(-2 * s1.failoverWait())
	s1.maybeFailover(now)
	wantTerm := termFor(2, 1)
	if s1.cfgTerm != wantTerm || s1.coord != 1 {
		t.Fatalf("after takeover: term=%d coord=%d, want term=%d coord=1", s1.cfgTerm, s1.coord, wantTerm)
	}
	if !s1.cfgDownBit(0) {
		t.Fatal("takeover epoch did not evict the deposed coordinator")
	}
	if got := s1.Stats().Takeovers; got != 1 {
		t.Fatalf("Takeovers = %d, want 1", got)
	}

	// Write-through: the activation must already be on mirror 2's slot
	// (detectable by any scanner even if node 1 dies right now).
	if err := s2.qp.Read(1, uint64(s2.cfg.cfgSlotOff()), s2.cfgBuf, 0, cfgSlotSize); err != nil {
		t.Fatal(err)
	}
	if err := s2.cfgBuf.ReadAt(0, s2.cfgLine); err != nil {
		t.Fatal(err)
	}
	if term, _, _, _, ok := parseConfigSlot(s2.cfgLine); !ok || term != wantTerm {
		t.Fatalf("successor slot term=%d ok=%v, want %d", term, ok, wantTerm)
	}

	// Demotion: the ex-coordinator's mirror pass sees the higher term.
	if s0.coord != 0 {
		t.Fatalf("store 0 demoted early: coord=%d", s0.coord)
	}
	s0.mirrorTick(time.Now())
	if s0.coord != 1 || s0.cfgTerm != wantTerm {
		t.Fatalf("after mirror pass: coord=%d term=%d, want coord=1 term=%d", s0.coord, s0.cfgTerm, wantTerm)
	}
	if got := s0.Stats().CoordDemotions; got != 1 {
		t.Fatalf("CoordDemotions = %d, want 1", got)
	}
	if !s0.cfgDownBit(0) {
		t.Fatal("demoted ex-coordinator did not adopt its own eviction")
	}

	// A deposed coordinator's mirror write must be refused by the term
	// guard, not clobber the successor's image.
	if err := s0.writeMirror(2, seedTerm, 99, 0, 0); !errors.Is(err, errSuperseded) {
		t.Fatalf("stale mirror write: err=%v, want errSuperseded", err)
	}

	// Stale-term control frames are rejected: a grant from the deposed
	// term must not validate a lease under the new one.
	s2.adoptTerm(wantTerm, s1.cfgEpoch, s1.cfgDown, s1.cfgRot)
	var b [ctlMaxLen]byte
	s2.handleCtrl(testCtl(0, encodeCtl(b[:], ctlFrame{
		kind: ctlLeaseGrant, term: seedTerm, epoch: s2.cfgEpoch, arg: 1e6})))
	if s2.leaseValid(time.Now()) {
		t.Fatal("a stale-term grant validated a lease")
	}
	// The matching-term grant from the new coordinator does.
	s2.handleCtrl(testCtl(1, encodeCtl(b[:], ctlFrame{
		kind: ctlLeaseGrant, term: wantTerm, epoch: s2.cfgEpoch, arg: 1e6})))
	if !s2.leaseValid(time.Now()) {
		t.Fatal("a current-term grant did not validate the lease")
	}
}

// testCtl builds an inbound control message for white-box dispatch.
func testCtl(from int, frame []byte) sonuma.Message {
	return sonuma.Message{From: from, Data: append([]byte(nil), frame...)}
}

// TestCoordinatorFailoverNodeDeath is the node-failure acceptance run: the
// seed coordinator drops off the fabric entirely under live load; a
// successor must activate a new term+epoch without operator input, parked
// writes toward coordinator-led shards must complete (or fail ErrFenced —
// never hang), and after the heal the ex-coordinator must demote itself
// and converge to byte-identical replicas.
func TestCoordinatorFailoverNodeDeath(t *testing.T) {
	runCoordinatorFailover(t, false)
}

// TestCoordinatorFailoverAsymmetric is the partition variant: the
// coordinator can receive but not send, so renewals keep landing on it
// while its grants, mirror writes, and slot-read replies all die. It must
// self-fence (authority contact lost) before the successor's first epoch
// activates.
func TestCoordinatorFailoverAsymmetric(t *testing.T) {
	runCoordinatorFailover(t, true)
}

func runCoordinatorFailover(t *testing.T, directed bool) {
	const n = 4
	cfg := leaseConfig(20 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	ring := stores[0].Ring()
	seedTerm := stores[1].Term()
	key := shardLedBy(t, ring, "coordfail", 0) // a shard the coordinator leads

	c2 := newTestClient(t, stores[2])
	if err := c2.Put(key, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	// A colocated writer keeps hammering the coordinator so its
	// self-fencing (not just its death) is observable in the asymmetric
	// case.
	c0 := newTestClient(t, stores[0])
	var coordAcked, coordFenced atomic.Int64
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		seq := 0
		for start := time.Now(); time.Since(start) < 40*cfg.Lease; {
			seq++
			err := c0.Put(key, []byte(fmt.Sprintf("coord-%06d", seq)))
			switch {
			case err == nil:
				coordAcked.Add(1)
			case errors.Is(err, ErrFenced):
				coordFenced.Add(1)
			}
			if coordFenced.Load() >= 1 {
				return // self-fencing observed; stop hammering
			}
		}
	}()

	for i := 1; i < n; i++ {
		if directed {
			cl.FailLinkDirected(0, i)
		} else {
			cl.FailLink(0, i)
		}
	}
	cutAt := time.Now()

	// The slot-staleness stat must surface the blackout long before the
	// failover threshold (the PR 4 bug was a silent stale cache).
	time.Sleep(2 * cfg.Lease)
	if st := stores[2].Stats(); st.CfgStalePolls == 0 || st.CfgStaleMs <= 0 {
		t.Fatalf("no staleness surfaced during the blackout: %+v", st)
	}

	// A write toward a coordinator-led shard must complete once the
	// successor's epoch evicts the old coordinator — retrying through any
	// ErrFenced the fencing deadline surfaces, but never hanging.
	var failoverMs float64
	deadline := time.Now().Add(60 * cfg.Lease)
	for i := 0; ; i++ {
		start := time.Now()
		err := c2.Put(key, []byte(fmt.Sprintf("successor-%04d", i)))
		if d := time.Since(start); d > 10*cfg.Lease+10*time.Second {
			t.Fatalf("put stalled %s during coordinator failover (hang)", d)
		}
		if err == nil {
			failoverMs = time.Since(cutAt).Seconds() * 1e3
			break
		}
		if !errors.Is(err, ErrFenced) && !errors.Is(err, ErrNoReplica) {
			t.Fatalf("unexpected error during failover: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("write never completed after coordinator loss: %v", err)
		}
	}
	t.Logf("failover: first write landed %.1fms after the cut", failoverMs)

	// The successor (first live succession member) owns the new term.
	for _, i := range []int{1, 2, 3} {
		if got := stores[i].Term(); got <= seedTerm {
			t.Fatalf("store %d still on term %d after failover", i, got)
		}
		if got := stores[i].Coordinator(); got != 1 {
			t.Fatalf("store %d coordinator = %d, want successor 1", i, got)
		}
		if !stores[i].EpochDown(0) {
			t.Fatalf("store %d: deposed coordinator not evicted", i)
		}
	}
	if got := stores[1].Stats().Takeovers; got == 0 {
		t.Fatal("successor recorded no takeover")
	}
	<-coordDone
	if directed {
		// The asymmetric coordinator kept absorbing its colocated writes
		// only until authority contact lapsed; after that they fence.
		if coordFenced.Load() == 0 {
			t.Fatal("deposed coordinator never fenced its colocated writes")
		}
	}

	// Heal. The ex-coordinator must observe the higher term, demote, be
	// repaired, and be re-admitted; the cluster converges on one
	// (term, epoch) with byte-identical replicas.
	for i := 1; i < n; i++ {
		cl.RestoreLink(0, i)
	}
	waitConverged(t, stores, 45*time.Second)
	if got := stores[0].Coordinator(); got != 1 {
		t.Fatalf("healed ex-coordinator follows %d, want successor 1", got)
	}
	if got := stores[0].Stats().CoordDemotions; got == 0 {
		t.Fatal("ex-coordinator recorded no demotion")
	}

	// Settle the key and audit replicas.
	var werr error
	for i := 0; i < 200; i++ {
		if werr = c2.Put(key, []byte("settled")); werr == nil {
			break
		}
	}
	if werr != nil {
		t.Fatalf("post-heal settle write: %v", werr)
	}
	var ref []byte
	for oi, o := range ring.Owners(ring.ShardOf(key)) {
		got, err := c2.GetReplica(o, key)
		if err != nil {
			t.Fatalf("GetReplica(%d): %v", o, err)
		}
		if oi == 0 {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("replica divergence after failover heal: %q vs %q", got, ref)
		}
	}
	if string(ref) != "settled" {
		t.Fatalf("settled value lost: %q", ref)
	}

	// The healed ex-coordinator serves writes again as a regular node.
	var perr error
	for i := 0; i < 200; i++ {
		if perr = c0.Put(key, []byte("via-ex-coord")); perr == nil {
			break
		}
	}
	if perr != nil {
		t.Fatalf("put via healed ex-coordinator: %v", perr)
	}
}

// TestFailoverFrozenWithoutAuthorityReplica pins the write-through trade:
// a claimant that cannot reach ANY other succession member must not
// activate a term — the configuration freezes (writes fence with definite
// errors) instead of risking a divergent authority.
func TestFailoverFrozenWithoutAuthorityReplica(t *testing.T) {
	const n = 4
	cfg := leaseConfig(15 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	seedTerm := stores[3].Term()

	// Isolate every succession pair — 0, 1, 2 mutually cut, each still
	// reaching node 3. No claimant can reach another authority replica,
	// so the term must never move.
	cl.FailLink(0, 1)
	cl.FailLink(0, 2)
	cl.FailLink(1, 2)

	time.Sleep(12 * cfg.Lease) // well past failoverWait
	for i, s := range stores {
		if got := s.Term(); got != seedTerm {
			t.Fatalf("store %d moved to term %d with no authority replica reachable", i, got)
		}
	}
	// Heal; the original coordinator still owns the term and the cluster
	// converges without a succession.
	cl.RestoreLink(0, 1)
	cl.RestoreLink(0, 2)
	cl.RestoreLink(1, 2)
	waitConverged(t, stores, 45*time.Second)
	for i, s := range stores {
		if got := s.Term(); got != seedTerm {
			t.Fatalf("store %d on term %d after heal, want seed term %d", i, got, seedTerm)
		}
	}
}
