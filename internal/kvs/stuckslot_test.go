package kvs

import (
	"errors"
	"testing"
	"time"
)

// TestGetBacksOffOnStuckOddSlot pins the client's torn-retry loop against
// a slot whose version word is stuck odd (a writer that died mid-publish):
// the read must surface ErrRetryExhausted after bounded, paced retries —
// the pacing (sonuma.WaitYield instead of bare Gosched) is the regression
// under test — and the slot must then heal through the leader's stuck-slot
// scrub, the compensating mechanism the //lint:ignore annotations in
// replicate() cite.
func TestGetBacksOffOnStuckOddSlot(t *testing.T) {
	const n = 3
	_, stores := newService(t, n, testConfig())
	client := newTestClient(t, stores[0])
	ring := stores[0].Ring()

	k := []byte("stuck:key")
	if err := client.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	shard := ring.ShardOf(k)
	leader := ring.Owners(shard)[0]
	ls := stores[leader]
	bucket, err := ls.findBucket(shard, k)
	if err != nil {
		t.Fatal(err)
	}
	off := ls.cfg.slotOff(shard, bucket)
	ver, err := ls.mem.Load64(off)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.mem.Store64(off, ver|1); err != nil {
		t.Fatal(err)
	}

	// The stuck slot exhausts the bounded retry budget long before the
	// scrub's two lease-spaced observations can heal it.
	start := time.Now()
	if _, err := client.GetReplica(leader, k); !errors.Is(err, ErrRetryExhausted) {
		t.Fatalf("GetReplica on stuck-odd slot: %v, want ErrRetryExhausted", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("stuck-odd exhaustion took %v; retries must stay bounded", elapsed)
	}

	// The scrub needs the slot observed odd at the same version across two
	// lease-spaced passes; poll until it has healed the slot.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := client.GetReplica(leader, k)
		if err == nil {
			if string(got) != "v" {
				t.Fatalf("healed slot reads %q, want %q", got, "v")
			}
			return
		}
		if !errors.Is(err, ErrRetryExhausted) {
			t.Fatalf("waiting for scrub heal: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("stuck-odd slot never healed by the scrub pass")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
