//go:build race

package kvs

// raceScale stretches fault-injection lease timings under the race
// detector, whose instrumentation slows serve-loop iterations enough to
// trip millisecond leases spuriously.
const raceScale = 4
