package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sonuma"
)

// Tests for lease-fenced leadership: the asymmetric-partition acceptance
// scenario (a stale leader that keeps absorbing writes is fenced by an
// epoch bump and rolled back by (epoch, version) repair), the fencing
// window under millisecond leases, and the error surface of fenced writes.
// Run under -race in CI (raceScale stretches the lease timings there).

// leaseConfig is testConfig with a tight, race-scaled lease for fencing
// scenarios.
func leaseConfig(lease time.Duration) Config {
	cfg := testConfig()
	cfg.Lease = lease * raceScale
	return cfg
}

// shardLedBy finds a key (from a deterministic sequence) whose shard is
// led by `leader` under an all-up configuration.
func shardLedBy(t *testing.T, ring *Ring, prefix string, leader int) []byte {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("%s:%04d", prefix, i))
		if ring.Owners(ring.ShardOf(k))[0] == leader {
			return k
		}
	}
	t.Fatalf("no key led by node %d", leader)
	return nil
}

// waitEpochAtLeast polls until every listed store reports a cached epoch
// >= want.
func waitEpochAtLeast(t *testing.T, stores []*Store, skip int, want uint64, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		ok := true
		for i, s := range stores {
			if i == skip {
				continue
			}
			if s.Epoch() < want {
				ok = false
			}
		}
		if ok {
			return
		}
		if time.Now().After(end) {
			for i, s := range stores {
				t.Logf("store %d epoch=%d", i, s.Epoch())
			}
			t.Fatalf("cluster never reached epoch %d", want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitConverged polls until every store agrees on one (term, epoch) with
// an empty down mask and a clear local down view.
func waitConverged(t *testing.T, stores []*Store, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		ok := true
		epoch := stores[0].Epoch()
		term := stores[0].Term()
		for _, s := range stores {
			if s.Epoch() != epoch || s.Term() != term {
				ok = false
			}
			for p := 0; p < len(stores); p++ {
				if s.EpochDown(p) {
					ok = false
				}
			}
			for p, d := range s.DownView() {
				if d && p != s.NodeID() {
					ok = false
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(end) {
			for i, s := range stores {
				t.Logf("store %d term=%d coord=%d epoch=%d down=%v",
					i, s.Term(), s.Coordinator(), s.Epoch(), s.DownView())
			}
			t.Fatal("cluster did not converge to a single clean (term, epoch)")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsymmetricPartitionFencedStaleLeader is the acceptance scenario for
// configuration epochs: a shard leader is one-way partitioned (it cannot
// send, so lease renewals die, but it keeps absorbing writes from its own
// colocated clients while its lease lasts), the coordinator's epoch bump
// demotes it, the promoted replica serves the winning epoch's writes, and
// after the heal the cluster converges to byte-identical replicas holding
// the WINNING epoch's values — the stale leader's absorbed writes are
// rolled back by the (epoch, version) repair order even where they pushed
// version counts AHEAD of the winning side, the exact case PR 3's
// version-count anti-entropy could never settle.
func TestAsymmetricPartitionFencedStaleLeader(t *testing.T) {
	const n = 4
	cfg := leaseConfig(25 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	ring := stores[0].Ring()

	// Victim: a non-coordinator shard leader.
	victim := 1
	key := shardLedBy(t, ring, "asym", victim)
	witness := 2 // healthy node hosting the winning-epoch writer
	if ring.Owners(ring.ShardOf(key))[1] == witness {
		witness = 3
	}

	staleClient := newTestClient(t, stores[victim])
	winClient := newTestClient(t, stores[witness])
	if err := winClient.Put(key, []byte("baseline")); err != nil {
		t.Fatal(err)
	}

	// One-way partition: the victim can receive but not send. Renewals
	// (and replication) die; local clients keep the stale leader
	// absorbing.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLinkDirected(victim, i)
		}
	}

	// The stale leader's client hammers the contested key: acks while the
	// lease lasts (absorbed — these advance the victim's version count far
	// past the winning side), definite errors once fenced.
	var absorbed, fencedErrs atomic.Int64
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		seq := 0
		for start := time.Now(); time.Since(start) < 8*cfg.Lease; {
			seq++
			err := staleClient.Put(key, []byte(fmt.Sprintf("stale-%06d", seq)))
			switch {
			case err == nil:
				absorbed.Add(1)
			case errors.Is(err, ErrFenced):
				fencedErrs.Add(1)
			}
		}
	}()

	// The winning side writes through the transition: parks while the
	// demoting epoch is pending, then lands on the promoted leader.
	var lastWin []byte
	winDeadline := time.Now().Add(20 * cfg.Lease)
	wins := 0
	for i := 0; wins < 3; i++ {
		val := []byte(fmt.Sprintf("win-%06d", i))
		if err := winClient.Put(key, val); err == nil {
			lastWin = val
			wins++
		}
		if time.Now().After(winDeadline) {
			t.Fatal("winning-side writes never landed after the epoch bump")
		}
	}
	waitEpochAtLeast(t, stores, victim, 2, 20*cfg.Lease)
	if !stores[witness].EpochDown(victim) {
		t.Fatal("epoch bumped but the stale leader is not evicted in it")
	}
	<-staleDone
	if absorbed.Load() == 0 {
		t.Fatal("stale leader absorbed nothing: the partition fenced too early to test divergence")
	}
	if fencedErrs.Load() == 0 {
		t.Fatal("no PUT surfaced ErrFenced: the stale leader never fenced itself")
	}
	if got := stores[victim].Stats().Fenced; got == 0 {
		t.Fatal("victim recorded no fenced writes")
	}
	t.Logf("absorbed=%d fenced=%d (stale version count pushed ahead by %d writes)",
		absorbed.Load(), fencedErrs.Load(), absorbed.Load())

	// Heal and converge: repair must pick the winning epoch's image even
	// though the victim's slot version is far ahead.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.RestoreLink(victim, i)
		}
	}
	waitConverged(t, stores, 30*time.Second)

	for _, o := range ring.Owners(ring.ShardOf(key)) {
		got, err := winClient.GetReplica(o, key)
		if err != nil {
			t.Fatalf("GetReplica(%d) after heal: %v", o, err)
		}
		if !bytes.Equal(got, lastWin) {
			t.Fatalf("replica %d = %q, want winning value %q (stale leader's absorbed write survived repair)",
				o, got, lastWin)
		}
	}

	// The rejoined ex-leader serves writes again under the new epoch.
	if err := staleClient.Put(key, []byte("post-heal")); err != nil {
		t.Fatalf("put via rejoined ex-leader: %v", err)
	}
	if got, err := winClient.Get(key); err != nil || string(got) != "post-heal" {
		t.Fatalf("post-heal read = %q, %v", got, err)
	}
}

// TestDoubleFaultLeaderlessShardReconciles pins the staged-readmission
// path: both owners of a shard are evicted in sequence, with a write
// acknowledged by the surviving leader in between (so the two copies
// diverge and the second owner can never learn of the write while down).
// When both heal, the shard is leaderless — no live leader can verify
// either owner — so the coordinator must re-admit them one epoch at a
// time: the first admitted owner becomes the shard's leader, reconciles
// the second (push or pull, ordered by the shard-epoch words), and only
// then is the second re-admitted. A bulk re-admission would bring both
// back with the acknowledged write permanently missing from one replica.
func TestDoubleFaultLeaderlessShardReconciles(t *testing.T) {
	const n = 4
	cfg := leaseConfig(25 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	ring := stores[0].Ring()

	// A key whose owners exclude the coordinator, so both can be evicted.
	var key []byte
	var owners []int
	for i := 0; i < 10000 && key == nil; i++ {
		k := []byte(fmt.Sprintf("dbl:%04d", i))
		o := ring.Owners(ring.ShardOf(k))
		if o[0] != 0 && o[1] != 0 {
			key, owners = k, o
		}
	}
	if key == nil {
		t.Fatal("no key with coordinator-free owner set")
	}
	leader, backup := owners[0], owners[1]
	c := newTestClient(t, stores[0])
	if err := c.Put(key, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	// Evict the backup and wait for the demoting epoch.
	for i := 0; i < n; i++ {
		if i != backup {
			cl.FailLink(backup, i)
		}
	}
	deadline := time.Now().Add(30 * cfg.Lease)
	for !stores[leader].EpochDown(backup) {
		if time.Now().After(deadline) {
			t.Fatal("backup eviction epoch never activated")
		}
		time.Sleep(time.Millisecond)
	}

	// The leader acknowledges a write the backup can never see.
	var err error
	for i := 0; i < 200; i++ {
		if err = c.Put(key, []byte("v2")); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("put during backup outage: %v", err)
	}

	// Now evict the leader too: the shard is leaderless.
	for i := 0; i < n; i++ {
		if i != leader {
			cl.FailLink(leader, i)
		}
	}
	deadline = time.Now().Add(30 * cfg.Lease)
	for !stores[0].EpochDown(leader) {
		if time.Now().After(deadline) {
			t.Fatal("leader eviction epoch never activated")
		}
		time.Sleep(time.Millisecond)
	}

	// Heal everything; staged re-admission must reconcile the shard.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			cl.RestoreLink(a, b)
		}
	}
	waitConverged(t, stores, 30*time.Second)

	for _, o := range owners {
		got, gerr := c.GetReplica(o, key)
		if gerr != nil {
			t.Fatalf("GetReplica(%d, %q): %v", o, key, gerr)
		}
		if string(got) != "v2" {
			t.Fatalf("replica %d = %q, want %q (acked write lost across the double fault)", o, got, "v2")
		}
	}
}

// TestLeaseExpiryRaceTightLeases hammers PUTs across repeated lease-lapse
// transitions with millisecond leases: a PUT in flight when the lease
// lapses must either complete on the old epoch before the new leader
// serves, or fail — never hang, never be silently dropped. After the final
// heal the replicas must be byte-identical. Run under -race.
func TestLeaseExpiryRaceTightLeases(t *testing.T) {
	const n = 3
	cfg := leaseConfig(3 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	ring := stores[0].Ring()

	victim := 1
	key := shardLedBy(t, ring, "race", victim)
	other := 2

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var acked, failed atomic.Int64
	for _, node := range []int{0, other} {
		c := newTestClient(t, stores[node])
		wg.Add(1)
		go func(c *Client, node int) {
			defer wg.Done()
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				start := time.Now()
				err := c.Put(key, []byte(fmt.Sprintf("n%d-%06d", node, seq)))
				if err == nil {
					acked.Add(1)
				} else {
					failed.Add(1)
				}
				// The fencing deadline bounds every outcome; a stall
				// past ~10× of it is a hang, the pre-epoch failure mode.
				if d := time.Since(start); d > 60*cfg.Lease+5*time.Second {
					t.Errorf("put stalled %s (hang across lease transition)", d)
					return
				}
			}
		}(c, node)
	}

	// Fault loop: repeatedly sever the leader's renewal path (one-way) for
	// a few lease durations, then heal.
	for cycle := 0; cycle < 4; cycle++ {
		cl.FailLinkDirected(victim, 0)
		time.Sleep(5 * cfg.Lease)
		cl.RestoreLink(victim, 0)
		time.Sleep(8 * cfg.Lease)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if acked.Load() == 0 {
		t.Fatal("no PUT ever succeeded across the lease transitions")
	}
	t.Logf("acked=%d failed=%d across 4 lease-lapse cycles", acked.Load(), failed.Load())

	waitConverged(t, stores, 30*time.Second)

	// Settle with a final write, then every replica must agree on it.
	final := []byte("settled")
	fc := newTestClient(t, stores[0])
	var err error
	for i := 0; i < 100; i++ {
		if err = fc.Put(key, final); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("final settle put: %v", err)
	}
	for _, o := range ring.Owners(ring.ShardOf(key)) {
		got, gerr := fc.GetReplica(o, key)
		if gerr != nil || !bytes.Equal(got, final) {
			t.Fatalf("replica %d after settle = %q, %v; want %q", o, got, gerr, final)
		}
	}
}

// TestFencedWriteSurfacesAsError pins the error surface: with the
// coordinator unreachable (no epoch can change), a PUT toward a leader
// that cannot renew its lease fails with ErrFenced within the fencing
// deadline — an explicit error, not a hang and not a silent drop.
func TestFencedWriteSurfacesAsError(t *testing.T) {
	const n = 3
	cfg := leaseConfig(20 * time.Millisecond)
	cl, stores := newService(t, n, cfg)
	ring := stores[0].Ring()

	victim := 1
	key := shardLedBy(t, ring, "fence", victim)
	c := newTestClient(t, stores[victim])
	if err := c.Put(key, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	// Sever the victim COMPLETELY and also isolate the coordinator from
	// the remaining node, so no epoch transition can rescue the write.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLink(victim, i)
		}
	}
	cl.FailLink(0, 2)

	// Wait out the lease, then the fenced leader must reject its own
	// client's write with a definite error.
	time.Sleep(2 * cfg.Lease)
	start := time.Now()
	err := c.Put(key, []byte("doomed"))
	if err == nil {
		t.Fatal("write on a fenced, isolated leader succeeded")
	}
	if !errors.Is(err, ErrFenced) && !sonuma.IsNodeFailure(err) {
		t.Fatalf("fenced write error = %v, want ErrFenced (or node failure)", err)
	}
	if d := time.Since(start); d > 8*cfg.Lease+5*time.Second {
		t.Fatalf("fenced write took %s to fail; fencing deadline is ~%s", d, 6*cfg.Lease)
	}

	// Heal everything; the cluster converges and the key is writable.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.RestoreLink(victim, i)
		}
	}
	cl.RestoreLink(0, 2)
	waitConverged(t, stores, 30*time.Second)
	var werr error
	for i := 0; i < 100; i++ {
		if werr = c.Put(key, []byte("recovered")); werr == nil {
			break
		}
	}
	if werr != nil {
		t.Fatalf("post-heal write: %v", werr)
	}
}
