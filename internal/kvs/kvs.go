// Package kvs is a scale-out key-value service built on soNUMA one-sided
// operations — the class of application the paper names as a killer app
// (§8: key-value stores "can take advantage of one-sided read operations",
// citing Pilaf [38]).
//
// The key space is split into a fixed number of shards; a consistent-hash
// ring places every shard on Replicas cluster nodes (primary first), and
// every node publishes an identical slot table inside its context segment.
// The data path splits exactly as the paper prescribes:
//
//   - GETs are pure one-sided remote reads of version-stamped slots. A
//     client reads the slot from the shard primary (or, after failover, a
//     backup), validates the seqlock version and checksum, and retries torn
//     snapshots — the serving node's CPU is never involved (FaRM/Pilaf
//     style; cf. the same seqlock pattern in internal/emu/segment.go).
//   - PUTs are routed to the shard primary over the Messenger (§5.3
//     unsolicited send/receive). The primary applies the write under its
//     local per-slot seqlock, then replicates the slot image to the backups
//     with one-sided remote writes bracketed by remote FetchAdds on the
//     slot's version word, so backup readers see the same torn-or-stable
//     discipline as primary readers.
//   - Membership and per-shard leadership are governed by CONFIGURATION
//     EPOCHS (config.go): a coordinator-owned, seqlock-published config
//     slot that every node caches and re-reads with one-sided GETs.
//     Leadership is a pure function of (ring, epoch down mask), so nodes
//     at the same epoch can never disagree on who leads a shard.
//   - The epoch authority itself is REPLICATED: the slot — which gained a
//     coordinator TERM word — is write-through mirrored onto the first
//     CoordReplicas ring members, and when the active coordinator's slot
//     stays stale past the failover threshold, the first live succession
//     member adopts the highest (term, epoch) image it can read and
//     activates a fresh term whose first epoch evicts the old
//     coordinator; a healed ex-coordinator demotes itself on observing
//     the higher term. Stale-coordinator control frames are rejected by
//     term, so a deposed authority cannot grant leases or nudge epochs.
//   - Leaders hold time-bounded LEASES renewed over the Messenger's
//     control frames (lease.go) and FENCE THEMSELVES when a lease lapses:
//     PUTs are rejected or parked, replication stops. The coordinator
//     activates a demoting epoch only after the old lease provably
//     lapsed, so a partitioned stale leader goes read-only instead of
//     diverging — the split-brain arbitration the ROADMAP called for.
//   - Failover rides the fabric's failure watchers into the coordinator's
//     eviction clock: the epoch bump that demotes the dead leader
//     promotes the next replica everywhere at once; writes in the gap
//     park rather than guessing a leader. GETs still fail over instantly
//     on local reachability.
//   - Rejoin is an epoch transition: after a heal, each shard's epoch
//     leader streams the evicted peer the writes it missed (anti-entropy:
//     one-sided scans + messenger slot diffs + an ack barrier), ordered
//     by (epoch, version) so the winning epoch's image prevails over a
//     stale leader's absorbed writes; the coordinator re-admits the peer
//     only after EVERY expected leader reports its repair verified —
//     closing PR 3's cross-leader stale-read window.
//   - The ring can grow: Store.AddNode admits a cluster node as a new
//     placement member; the joining store migrates the shards it gains
//     (one-sided bulk reads from current owners) before serving them.
//
// Slot layout is identical on every node, so a replica write is a single
// remote write at the same offset the primary used, and any replica can
// serve any GET for the shards it owns.
package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"sonuma"
	"sonuma/internal/core"
)

// Store geometry defaults; all participants must configure identically.
const (
	// DefaultShards is the default shard count. More shards smooth the
	// ring's load balance and shrink failover blast radius.
	DefaultShards = 32
	// DefaultReplicas is the default copies per shard (primary + 1).
	DefaultReplicas = 2
	// DefaultBuckets is the default open-addressed bucket count per shard.
	DefaultBuckets = 128
	// DefaultSlotSize is the default slot size in bytes (version word +
	// entry header + key + value).
	DefaultSlotSize = 256
	// DefaultVNodes is the default virtual-node count per node on the
	// consistent-hash ring.
	DefaultVNodes = 64
	// DefaultLease is the default leadership lease duration. Generous for
	// the development platform so background load (or the race detector)
	// cannot trip spurious fencing; fault-injection tests and harnesses
	// shrink it to exercise the fencing window quickly.
	DefaultLease = 250 * time.Millisecond
	// DefaultCoordReplicas is the default size of the epoch-authority
	// succession set: the coordinator plus the mirrors its config slot is
	// write-through-replicated onto, which are also the deterministic
	// takeover candidates when the coordinator dies (config.go).
	DefaultCoordReplicas = 3
)

// Segment layout of the store region (identical on every node):
//
//	header       (64 B): magic, shards, buckets, slotSize, replicas
//	config slot  (64 B): seqlock-published (term, epoch, down, sum) — authoritative
//	             in the active coordinator's segment, write-through mirrored
//	             into the other succession members' segments, cached
//	             everywhere else with one-sided reads (see config.go)
//	shard epochs (shards × 8 B, line-aligned): per-shard word recording the
//	             configuration epoch under which the shard last accepted a
//	             leader write or a repair — the "epoch" half of the
//	             (epoch, version) order repair arbitrates with
//	shard lines  (shards × 64 B, one line per shard): the skew-serving
//	             feedback words. Word 0 is the shard VERSION — bumped by
//	             every local write, replica publish, repair install, or
//	             migration install, it is what a client's hot-key cache
//	             probes to invalidate; words 1 and 2 are the sampled GET
//	             counter (clients FetchAdd it on the replica that served
//	             them) and the leader's write counter, which the
//	             coordinator aggregates for load-driven rebalancing
//	slots        (shards × buckets × slotSize): open-addressed entries
//
// Entry layout within its slot:
//
//	version u64   seqlock: odd while a writer is mid-update, advances by
//	              2 per committed update, 0 = empty slot
//	keyLen  u32
//	valLen  u32
//	crc     u32   IEEE CRC-32 over key||value
//	_pad    u32
//	key, value bytes
const (
	headerSize  = 64
	cfgSlotSize = 64
	magic       = 0x534f4e4b // "SONK"
	entryHdr    = 24
	maxProbes   = 16
)

// Shard-line geometry: one cache line of feedback words per shard.
const (
	shardLineSize = 64
	// shardLineVer / shardLineReads / shardLineWrites are the word offsets
	// within a shard's line.
	shardLineVer    = 0
	shardLineReads  = 8
	shardLineWrites = 16
	// loadSampleRate is the GET sampling rate: clients FetchAdd the read
	// counter of the serving replica once every loadSampleRate reads, by
	// that amount, so the counter stays calibrated while the extra remote
	// op costs ~1/loadSampleRate of read throughput.
	loadSampleRate = 16
)

// Errors returned by the service.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("kvs: key not found")
	// ErrTooLarge reports a key/value pair exceeding the slot size.
	ErrTooLarge = errors.New("kvs: entry exceeds slot size")
	// ErrEmptyKey reports a zero-length key, which the slot format cannot
	// represent (parseEntry treats keyLen == 0 as a torn snapshot).
	ErrEmptyKey = errors.New("kvs: empty key")
	// ErrRetryExhausted reports persistent version/checksum mismatches on
	// every reachable replica (writers kept the slot torn while we read).
	ErrRetryExhausted = errors.New("kvs: too many torn reads, giving up")
	// ErrBadStore reports a segment that does not contain a store.
	ErrBadStore = errors.New("kvs: segment does not hold a key-value store")
	// ErrShardFull reports an exhausted probe chain for a shard's table.
	ErrShardFull = errors.New("kvs: shard bucket chain full")
	// ErrNoReplica reports that every owner of a key's shard is
	// unreachable.
	ErrNoReplica = errors.New("kvs: no reachable replica")
	// ErrClosed reports an operation against a closed store.
	ErrClosed = errors.New("kvs: store closed")
	// ErrFenced reports a PUT rejected by lease fencing: the shard's
	// leader could not prove it still holds leadership (its lease lapsed,
	// it has been evicted from the configuration, or no reachable leader
	// exists under the current epoch) and the write timed out waiting for
	// the next configuration epoch. The write was NOT applied; callers may
	// retry — a demoted leader stays fenced, so the retry lands on the
	// epoch's real leader once the configuration propagates.
	ErrFenced = errors.New("kvs: write fenced awaiting configuration epoch")
)

// Config fixes the geometry of a store. The zero value of every field
// selects the default; every participating node must use the same Config.
type Config struct {
	// Shards is the fixed shard count of the key space (default
	// DefaultShards). Key→shard placement depends only on this, so it is
	// stable under cluster resizes.
	Shards int
	// Replicas is how many copies of each shard the service keeps,
	// primary included (default DefaultReplicas, clamped to the cluster
	// size).
	Replicas int
	// Buckets is the open-addressed bucket count per shard (default
	// DefaultBuckets).
	Buckets int
	// SlotSize is the per-entry slot size in bytes, rounded up to a
	// cache-line multiple so slot version words are atomics-aligned and
	// slots never share a line (default DefaultSlotSize).
	SlotSize int
	// VNodes is the virtual-node count per node on the placement ring
	// (default DefaultVNodes).
	VNodes int
	// Members lists the cluster nodes initially on the placement ring
	// (default: every cluster node). A node outside Members can still
	// Open a store — it holds slot tables and routes PUTs but owns no
	// shards — and joins later when every member calls Store.AddNode.
	Members []int
	// Coordinator is the cluster node SEEDING the configuration-epoch
	// authority (default: the first ring member). The active coordinator's
	// config slot is the source of truth for membership and (derived)
	// per-shard leadership; every other node caches it with one-sided
	// reads. The authority is replicated: the slot is write-through
	// mirrored onto the next CoordReplicas-1 ring members, and when the
	// active coordinator's slot stays unreadable past failoverWait the
	// first live succession member activates a fresh term and takes over —
	// so the authority itself survives an outage (config.go).
	Coordinator int
	// CoordReplicas is the succession-set size k: the active coordinator
	// plus k-1 mirrors carrying the config slot, which double as the
	// deterministic takeover candidates (default DefaultCoordReplicas,
	// clamped to the member count). Values resolving below 3 collapse to
	// a single, non-replicated authority — with only two authority
	// members a claimant cannot distinguish a dead peer from its own
	// partition, and every epoch change would hostage the lone mirror.
	CoordReplicas int
	// Lease is the leadership lease duration (default DefaultLease). A
	// leader whose lease lapses fences itself: it rejects PUTs and stops
	// replicating until a fresh grant (or a new epoch) arrives, so a
	// partitioned stale leader goes read-only instead of diverging. The
	// coordinator waits 2×Lease after the last grant before activating an
	// epoch that demotes a silent leader, so the old lease provably lapses
	// before the new leader serves.
	Lease time.Duration
	// ReadSpread fans one-sided GETs across every reachable replica of a
	// shard instead of pinning them to the primary: each client picks the
	// replica with power-of-two-choices over an EWMA of its observed
	// per-replica read latency. Correctness is unchanged — replicas are
	// seqlock-validated and the down views gate evicted peers exactly as
	// on the failover path — so this is purely a load-spreading knob for
	// skewed read traffic. Off by default.
	ReadSpread bool
	// HotKeys enables the per-client hot-key read-lease cache and sets its
	// capacity: each client tracks its HotKeys most frequent keys with a
	// space-saver sketch and serves them from a local cache bound to
	// (term, epoch, shard version), re-probing each shard's version word
	// every Lease/2 — see client.go for the invalidation timeline. 0 (the
	// default) disables the cache.
	HotKeys int
	// Rebalance lets the coordinator rotate shard leadership by observed
	// load: stores export per-shard read/write counters in their shard
	// lines, the coordinator aggregates them every two leases, and when
	// one node carries more than rebalanceRatio× the mean load it
	// activates an epoch whose rotation mask moves the hottest such
	// shard's primary onto its (lighter) next replica. Off by default;
	// requires Shards <= 64 (the rotation mask is one word).
	Rebalance bool
	// RegionOffset is where the store region begins within each node's
	// context segment (default 0). The Messenger region follows the store
	// region automatically.
	RegionOffset int
	// Messenger tunes the PUT-routing messenger. RegionOffset within it
	// is overwritten; leave zero for defaults.
	Messenger sonuma.MessengerConfig
}

// withDefaults resolves the zero-value fields.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.SlotSize <= 0 {
		c.SlotSize = DefaultSlotSize
	}
	c.SlotSize = core.AlignUp(c.SlotSize)
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.Lease <= 0 {
		c.Lease = DefaultLease
	}
	return c
}

// RegionSize reports the context-segment bytes the store region occupies
// with this configuration (header + config slot + shard epoch table + slot
// tables, before the messenger region).
func (c Config) RegionSize() int {
	c = c.withDefaults()
	return headerSize + cfgSlotSize + core.AlignUp(8*c.Shards) +
		c.Shards*shardLineSize + c.Shards*c.Buckets*c.SlotSize
}

// SegmentSize reports the total context-segment bytes a node of an n-node
// cluster must open to host the store: region offset, slot tables, and the
// PUT-routing messenger region.
func (c Config) SegmentSize(n int) int {
	c = c.withDefaults()
	mcfg := c.Messenger
	mcfg.RegionOffset = c.RegionOffset + c.RegionSize()
	return mcfg.RegionOffset + sonuma.MessengerRegionSize(n, mcfg)
}

// cfgSlotOff locates the configuration slot within the store region. The
// active coordinator's copy is authoritative and the succession members
// carry write-through mirrors of it; every other node still carries the
// line so the layout stays identical.
func (c Config) cfgSlotOff() int { return c.RegionOffset + headerSize }

// shardEpochOff locates a shard's epoch word: the configuration epoch under
// which the shard last accepted a leader write or repair on this node.
func (c Config) shardEpochOff(shard int) int {
	return c.RegionOffset + headerSize + cfgSlotSize + 8*shard
}

// shardLineOff locates a shard's feedback line: version word (hot-key
// cache invalidation), sampled read counter, and leader write counter.
func (c Config) shardLineOff(shard int) int {
	return c.RegionOffset + headerSize + cfgSlotSize + core.AlignUp(8*c.Shards) +
		shard*shardLineSize
}

// slotOff locates a (shard, bucket) slot within the store region. The
// layout is identical on every node, which is what makes replication a
// plain remote write of the primary's slot image at the same offset.
func (c Config) slotOff(shard, bucket int) int {
	return c.RegionOffset + headerSize + cfgSlotSize + core.AlignUp(8*c.Shards) +
		c.Shards*shardLineSize + (shard*c.Buckets+bucket)*c.SlotSize
}

// entryStatus classifies a parsed slot image.
type entryStatus int

const (
	entryMatch    entryStatus = iota // stable entry holding the key
	entryEmpty                       // never-written slot
	entryMismatch                    // stable entry holding another key
	entryTorn                        // odd version or checksum failure
)

// parseEntry validates a slot image against key. A torn result means a
// writer was mid-update somewhere between the version read and the last
// payload byte; one-sided readers retry, exactly as with a local seqlock.
func parseEntry(entry, key []byte) ([]byte, entryStatus) {
	ver := binary.LittleEndian.Uint64(entry)
	if ver == 0 {
		return nil, entryEmpty
	}
	if ver&1 == 1 {
		return nil, entryTorn // write in progress
	}
	keyLen := int(binary.LittleEndian.Uint32(entry[8:]))
	valLen := int(binary.LittleEndian.Uint32(entry[12:]))
	crc := binary.LittleEndian.Uint32(entry[16:])
	if keyLen <= 0 || valLen < 0 || entryHdr+keyLen+valLen > len(entry) {
		return nil, entryTorn
	}
	k := entry[entryHdr : entryHdr+keyLen]
	v := entry[entryHdr+keyLen : entryHdr+keyLen+valLen]
	if crc32.ChecksumIEEE(entry[entryHdr:entryHdr+keyLen+valLen]) != crc {
		return nil, entryTorn // torn across lines: retry
	}
	if string(k) != string(key) {
		return nil, entryMismatch
	}
	out := make([]byte, valLen)
	copy(out, v)
	return out, entryMatch
}

// encodeEntryBody fills dst (at least entryHdr+len(key)+len(value) bytes)
// with the entry image minus the version word, which writers publish
// separately.
func encodeEntryBody(dst, key, value []byte) {
	binary.LittleEndian.PutUint32(dst[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(dst[12:], uint32(len(value)))
	c := crc32.NewIEEE()
	c.Write(key)
	c.Write(value)
	binary.LittleEndian.PutUint32(dst[16:], c.Sum32())
	binary.LittleEndian.PutUint32(dst[20:], 0)
	copy(dst[entryHdr:], key)
	copy(dst[entryHdr+len(key):], value)
}

// checkHeader validates a store header image against cfg.
func checkHeader(hdr []byte, cfg Config) error {
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return ErrBadStore
	}
	if int(binary.LittleEndian.Uint32(hdr[4:])) != cfg.Shards ||
		int(binary.LittleEndian.Uint32(hdr[8:])) != cfg.Buckets ||
		int(binary.LittleEndian.Uint32(hdr[12:])) != cfg.SlotSize ||
		int(binary.LittleEndian.Uint32(hdr[16:])) != cfg.Replicas {
		return fmt.Errorf("kvs: header geometry mismatch: %w", ErrBadStore)
	}
	return nil
}

// writeHeader publishes the store header into the local region.
func writeHeader(mem *sonuma.Memory, cfg Config) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(cfg.Shards))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(cfg.Buckets))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(cfg.SlotSize))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(cfg.Replicas))
	return mem.WriteAt(cfg.RegionOffset, hdr[:])
}
