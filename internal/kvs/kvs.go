// Package kvs is a key-value store built on soNUMA one-sided operations —
// the class of application the paper names as a killer app (§8: key-value
// stores "can take advantage of one-sided read operations", citing Pilaf
// [38]). The server publishes a hash table inside its context segment;
// clients GET entirely with remote reads, never interrupting the server
// core, and detect racing updates with a per-entry version + checksum
// (Pilaf's self-verifying data structures).
package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"

	"sonuma"
)

// Layout of the store inside the server's context segment:
//
//	header   (64 B):  magic, bucket count, slot size
//	buckets  (bucketCount × slotSize):  open-addressed entries
//
// Entry layout (within its slot):
//
//	version  u64   odd while the server is writing (seqlock)
//	keyLen   u32
//	valLen   u32
//	crc      u32   checksum over key||value
//	_pad     u32
//	key, value bytes
const (
	headerSize = 64
	magic      = 0x534f4e4b // "SONK"
	entryHdr   = 24
	maxProbes  = 16
)

// Errors returned by the client.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("kvs: key not found")
	// ErrTooLarge reports a key/value pair exceeding the slot size.
	ErrTooLarge = errors.New("kvs: entry exceeds slot size")
	// ErrRetryExhausted reports persistent version/checksum mismatches
	// (the server kept writing the entry while we read it).
	ErrRetryExhausted = errors.New("kvs: too many torn reads, giving up")
	// ErrBadStore reports a segment that does not contain a store.
	ErrBadStore = errors.New("kvs: segment does not hold a key-value store")
)

// Server owns the store and serves PUTs locally. GETs from remote clients
// proceed without any server involvement.
type Server struct {
	ctx      *sonuma.Context
	mem      *sonuma.Memory
	buckets  int
	slotSize int
}

// RegionSize reports the context-segment bytes a store with the given
// geometry occupies.
func RegionSize(buckets, slotSize int) int { return headerSize + buckets*slotSize }

// NewServer initializes a store at the start of ctx's segment.
func NewServer(ctx *sonuma.Context, buckets, slotSize int) (*Server, error) {
	if buckets <= 0 || slotSize < entryHdr+8 {
		return nil, fmt.Errorf("kvs: invalid geometry buckets=%d slotSize=%d", buckets, slotSize)
	}
	if ctx.SegmentSize() < RegionSize(buckets, slotSize) {
		return nil, fmt.Errorf("kvs: segment %d bytes < %d required", ctx.SegmentSize(), RegionSize(buckets, slotSize))
	}
	s := &Server{ctx: ctx, mem: ctx.Memory(), buckets: buckets, slotSize: slotSize}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(buckets))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(slotSize))
	if err := s.mem.WriteAt(0, hdr[:]); err != nil {
		return nil, err
	}
	return s, nil
}

func hashKey(key []byte) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func (s *Server) slotOff(bucket int) int { return headerSize + bucket*s.slotSize }

// Put inserts or updates a key. Writes are seqlocked per entry: the version
// goes odd, the entry is written, the version goes even+1 — so a concurrent
// one-sided reader either sees a stable version+checksum or retries.
func (s *Server) Put(key, value []byte) error {
	if entryHdr+len(key)+len(value) > s.slotSize {
		return ErrTooLarge
	}
	h := hashKey(key)
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.buckets))
		off := s.slotOff(b)
		ver, err := s.mem.Load64(off)
		if err != nil {
			return err
		}
		occupied := ver != 0
		if occupied {
			cur, err := s.readKey(off)
			if err != nil {
				return err
			}
			if string(cur) != string(key) {
				continue // probe next bucket
			}
		}
		return s.writeEntry(off, ver, key, value)
	}
	return fmt.Errorf("kvs: bucket chain full for key %q", key)
}

func (s *Server) readKey(off int) ([]byte, error) {
	var meta [entryHdr]byte
	if err := s.mem.ReadAt(off, meta[:]); err != nil {
		return nil, err
	}
	keyLen := int(binary.LittleEndian.Uint32(meta[8:]))
	key := make([]byte, keyLen)
	if err := s.mem.ReadAt(off+entryHdr, key); err != nil {
		return nil, err
	}
	return key, nil
}

func (s *Server) writeEntry(off int, oldVer uint64, key, value []byte) error {
	// Version odd: readers back off.
	if err := s.mem.Store64(off, oldVer|1); err != nil {
		return err
	}
	buf := make([]byte, entryHdr+len(key)+len(value))
	// version written separately; fill from keyLen on
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(value)))
	crc := crc32.ChecksumIEEE(append(append([]byte{}, key...), value...))
	binary.LittleEndian.PutUint32(buf[16:], crc)
	copy(buf[entryHdr:], key)
	copy(buf[entryHdr+len(key):], value)
	if err := s.mem.WriteAt(off+8, buf[8:]); err != nil {
		return err
	}
	// Version even and advanced: entry stable.
	return s.mem.Store64(off, (oldVer|1)+1)
}

// Get serves a local lookup on the server (used by tests and the example's
// warm path).
func (s *Server) Get(key []byte) ([]byte, error) {
	h := hashKey(key)
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.buckets))
		off := s.slotOff(b)
		entry := make([]byte, s.slotSize)
		if err := s.mem.ReadAt(off, entry); err != nil {
			return nil, err
		}
		val, status := parseEntry(entry, key)
		switch status {
		case entryMatch:
			return val, nil
		case entryEmpty:
			return nil, ErrNotFound
		}
	}
	return nil, ErrNotFound
}

// Client performs one-sided GETs against a remote store.
type Client struct {
	qp       *sonuma.QP
	buf      *sonuma.Buffer
	server   int
	buckets  int
	slotSize int
}

// NewClient attaches to the store on server node `server`, learning the
// geometry with a remote read of the header.
func NewClient(ctx *sonuma.Context, qp *sonuma.QP, server int) (*Client, error) {
	buf, err := ctx.AllocBuffer(64 << 10)
	if err != nil {
		return nil, err
	}
	if err := qp.Read(server, 0, buf, 0, headerSize); err != nil {
		return nil, err
	}
	var hdr [headerSize]byte
	if err := buf.ReadAt(0, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, ErrBadStore
	}
	c := &Client{
		qp: qp, buf: buf, server: server,
		buckets:  int(binary.LittleEndian.Uint32(hdr[4:])),
		slotSize: int(binary.LittleEndian.Uint32(hdr[8:])),
	}
	if c.buckets <= 0 || c.slotSize <= 0 || c.slotSize > buf.Size() {
		return nil, ErrBadStore
	}
	return c, nil
}

type entryStatus int

const (
	entryMatch entryStatus = iota
	entryEmpty
	entryMismatch
	entryTorn
)

// parseEntry validates a slot image against key.
func parseEntry(entry, key []byte) ([]byte, entryStatus) {
	ver := binary.LittleEndian.Uint64(entry)
	if ver == 0 {
		return nil, entryEmpty
	}
	if ver&1 == 1 {
		return nil, entryTorn // write in progress
	}
	keyLen := int(binary.LittleEndian.Uint32(entry[8:]))
	valLen := int(binary.LittleEndian.Uint32(entry[12:]))
	crc := binary.LittleEndian.Uint32(entry[16:])
	if keyLen <= 0 || valLen < 0 || entryHdr+keyLen+valLen > len(entry) {
		return nil, entryTorn
	}
	k := entry[entryHdr : entryHdr+keyLen]
	v := entry[entryHdr+keyLen : entryHdr+keyLen+valLen]
	if crc32.ChecksumIEEE(entry[entryHdr:entryHdr+keyLen+valLen]) != crc {
		return nil, entryTorn // torn across lines: retry
	}
	if string(k) != string(key) {
		return nil, entryMismatch
	}
	out := make([]byte, valLen)
	copy(out, v)
	return out, entryMatch
}

// Get fetches a key with one-sided remote reads: one read per probe, with
// checksum-validated retry on torn entries (the Pilaf approach — the server
// core is never involved).
func (c *Client) Get(key []byte) ([]byte, error) {
	h := hashKey(key)
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(c.buckets))
		off := uint64(headerSize + b*c.slotSize)
		const maxRetries = 1024
		retries := 0
	retry:
		if err := c.qp.Read(c.server, off, c.buf, 0, c.slotSize); err != nil {
			return nil, err
		}
		entry := make([]byte, c.slotSize)
		if err := c.buf.ReadAt(0, entry); err != nil {
			return nil, err
		}
		val, status := parseEntry(entry, key)
		switch status {
		case entryMatch:
			return val, nil
		case entryEmpty:
			return nil, ErrNotFound
		case entryTorn:
			retries++
			if retries > maxRetries {
				return nil, ErrRetryExhausted
			}
			// Back off so a continuously writing server cannot
			// starve the reader indefinitely (seqlocks favor the
			// writer by design).
			runtime.Gosched()
			goto retry
		}
	}
	return nil, ErrNotFound
}
