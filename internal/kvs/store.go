package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
)

// Messenger message kinds (first byte of every messenger payload).
const (
	msgPut        byte = 1 // reqID u64, shard u32, keyLen u32, key, value
	msgAck        byte = 2 // reqID u64, status u8, shard version u64
	msgRepair     byte = 3 // shard u32, bucket u32, ver u64, epoch u64, slot body
	msgRepairEnd  byte = 4 // token u64: all diffs for this repair streamed
	msgRepairAck  byte = 5 // token u64: peer applied everything up to End
	msgShardEpoch byte = 6 // shard u32, epoch u64: stamp after a shard's diffs
)

// Ack status codes.
const (
	ackOK byte = iota
	ackTooLarge
	ackShardFull
	ackWrongOwner
	ackNoReplica
	ackBadRequest
	ackFenced // leader's lease lapsed: write rejected, not applied
)

// Serve-loop pacing: spin (with Gosched) this many empty passes, then park
// on the put/failure channels with a poll tick for the messenger rings —
// inbound forwards are plain remote writes with no doorbell, so the tick
// bounds their idle-path latency.
const (
	idleSpins = 64
	idlePoll  = 100 * time.Microsecond
)

// Anti-entropy repair and migration tuning.
const (
	// repairVerBurst is how many peer slot headers one batched one-sided
	// read burst fetches during a repair scan.
	repairVerBurst = 32
	// repairScanBytes is the prefix of each slot a repair scan compares:
	// version word + key/value lengths + checksum. With the epoch order,
	// divergence can hide behind EQUAL version counts (both sides applied
	// the same number of writes during a partition), so the scan compares
	// the checksum too, not just the version.
	repairScanBytes = 24
	// maxPutAttempts bounds forward attempts for one PUT (re-forwards
	// after wrong-owner or fenced acks, periodic parked retries) before it
	// fails with ErrNoReplica; the fencing deadline is the primary bound,
	// this is a backstop against routing loops.
	maxPutAttempts = 100
	// repairOddRetries bounds re-reads of a remotely odd slot version
	// before treating it as stuck (a live writer clears it in one
	// replication round trip; a dead writer never does).
	repairOddRetries = 8
	// repairProbeTimeout bounds the responsiveness probe sent before any
	// diffs: a reachable-but-silent peer (store closed, serve loop
	// wedged) costs a short abort instead of a full stream.
	repairProbeTimeout = time.Second
	// repairAckTimeout bounds the wait for a peer to acknowledge the end
	// of a repair stream. A peer that is reachable but not serving (its
	// store closed) would otherwise wedge the repairing serve loop.
	repairAckTimeout = 5 * time.Second
	// healRetryMax caps the backoff between repair retries against a
	// reachable peer whose repair keeps aborting.
	healRetryMax = 30 * time.Second
	// migrateBurst is how many whole slots one batched one-sided read
	// burst fetches during shard migration.
	migrateBurst = 8
)

// ackErr converts an ack status into the client-visible error.
func ackErr(code byte) error {
	switch code {
	case ackOK:
		return nil
	case ackTooLarge:
		return ErrTooLarge
	case ackShardFull:
		return ErrShardFull
	case ackWrongOwner:
		return errors.New("kvs: routed to non-owner")
	case ackNoReplica:
		return ErrNoReplica
	case ackBadRequest:
		return fmt.Errorf("kvs: peer rejected PUT frame: %w", ErrBadStore)
	case ackFenced:
		return ErrFenced
	default:
		return fmt.Errorf("kvs: unknown ack status %d", code)
	}
}

// StoreStats is a point-in-time snapshot of one store's counters. The
// harness uses MsgsHandled to demonstrate the one-sided GET claim: GETs
// never produce a message, so a read-only phase leaves it unchanged on
// every node.
type StoreStats struct {
	MsgsHandled    uint64 // messenger messages processed by the serve loop
	PutsApplied    uint64 // PUTs applied locally as shard owner
	PutsForwarded  uint64 // PUTs forwarded to a remote primary
	ReplicaWrites  uint64 // slot images replicated to backups
	ReplicaSkips   uint64 // replications skipped (backup unreachable)
	Promotions     uint64 // shard leaderships moved off an unreachable node
	Rerouted       uint64 // pending PUTs re-routed after a failure event
	Rejoins        uint64 // peer repairs completed (verified for re-admission)
	RepairedSlots  uint64 // slot diffs streamed to healed peers
	RepairBytes    uint64 // messenger bytes spent on repair diffs
	ShardsMigrated uint64 // shards pulled from old owners after a ring resize
	Fenced         uint64 // PUTs rejected or timed out by lease fencing
	EpochBumps     uint64 // configuration epochs adopted (coordinator bumps included)
	// CfgStalePolls counts config polls that failed to refresh the cached
	// configuration (coordinator unreachable, torn image, or an image
	// below the cache — a deposed coordinator's slot). The failover
	// trigger is CfgStaleMs, which these feed.
	CfgStalePolls uint64
	// CfgStaleMs is the age of the cached configuration: milliseconds
	// since the last successful authority contact (a slot read at or
	// above the cache for followers, a mirror ack for the active
	// coordinator). Grows without bound while the authority is
	// unreachable; succession triggers past failoverWait.
	CfgStaleMs float64
	// Takeovers counts coordinator terms this node activated (successions
	// it won); CoordDemotions counts terms it lost while holding the
	// authority (observed a successor and demoted itself).
	Takeovers      uint64
	CoordDemotions uint64
	// Rebalances counts load-driven shard-rotation epochs this node
	// activated as coordinator (rebalance.go).
	Rebalances uint64
}

// putReq is one PUT travelling from a colocated client into the serve loop.
// ver carries the leader's shard version after the apply back to the
// client (written before resp is signalled, so the channel receive orders
// it): the hot-key cache uses it for read-your-writes without a probe.
type putReq struct {
	key, value []byte
	shard      int
	attempts   int
	ver        uint64
	deadline   time.Time // set on first park; bounds fencing stalls
	resp       chan error
}

// fwdPut is a PUT forwarded to a remote primary, awaiting its ack.
type fwdPut struct {
	req    *putReq
	target int
	sentAt time.Time // forward time; bounds the ack wait (pendingTick)
}

// Store is one node's member of the sharded KV service. Every cluster node
// opens one; the store owns the node's slot tables, a Messenger for PUT
// routing, and a replication QP, all driven by a single serve goroutine.
// GETs never touch a Store — clients read slots with one-sided remote
// operations only.
type Store struct {
	ctx     *sonuma.Context
	cfg     Config
	ringPub atomic.Pointer[Ring] // current placement ring (swapped by AddNode)
	me      int
	n       int

	mem   *sonuma.Memory
	qp    *sonuma.QP        // replication + repair ops (serve goroutine only)
	batch *sonuma.Batch     // reusable op burst (serve goroutine)
	msgr  *sonuma.Messenger // PUT routing + repair diffs (serve goroutine only)

	repBuf   *sonuma.Buffer // staging: slot body image for replica writes
	priorBuf *sonuma.Buffer // landing area for FetchAdd prior values
	verBuf   *sonuma.Buffer // landing area for repair version-scan bursts
	migBuf   *sonuma.Buffer // landing area for migration slot reads
	cfgBuf   *sonuma.Buffer // landing area for one-sided config-slot reads
	mirBuf   *sonuma.Buffer // staging for authority mirror writes + term guards
	scratch  []byte         // local slot image scratch (serve goroutine)
	txBuf    []byte         // outbound message scratch (serve goroutine)
	cfgLine  []byte         // config-slot parse scratch (serve goroutine)

	down    []bool // per-node local unreachability (serve goroutine)
	downPub atomic.Pointer[[]bool]

	// Configuration-epoch state (serve goroutine; cfgPub is the lock-free
	// snapshot clients read). Leadership everywhere derives from
	// (ring, cfgDown); the authority is replicated over succ with coord
	// naming the CURRENT term's owner — see config.go.
	coord        int   // active coordinator: termOwner(cfgTerm)
	succ         []int // succession set: seed coordinator first, then k-1 mirrors
	lease        time.Duration
	cfgTerm      uint64
	cfgEpoch     uint64
	cfgDown      uint64
	cfgRot       uint64 // shard-rotation mask (load rebalancing), epoch-bound
	cfgDirty     bool   // a nudge/deny/failure hinted at a newer epoch
	scanNow      bool   // a control frame claimed a term above the cache: scan now
	cfgPollAt    time.Time
	scanAt       time.Time // succession-scan pacing (lease/2)
	mirrorAt     time.Time // coordinator's next mirror refresh/term check
	cfgLastOK    time.Time // last successful authority contact (failover clock)
	authOK       time.Time // coordinator: last mirror ack (self-fencing clock)
	cfgFreshNano atomic.Int64
	ctrlPollAt   time.Time // next control-line scan (keeps it off the hot path)
	cfgPub       atomic.Pointer[configView]

	// Lease state (serve goroutine). leaseValid gates every leader write.
	leaseTerm  uint64
	leaseEpoch uint64
	leaseUntil time.Time
	renewAt    time.Time

	// Fenced/unroutable PUTs parked until a grant or an epoch transition.
	// Also retried periodically: a remote leader acquiring ITS lease is
	// invisible to the origin, so parked PUTs re-probe on a short cadence.
	parked        []*putReq
	parkedDirty   bool
	parkedRetryAt time.Time

	// Rejoin bookkeeping: repaired[p] records that THIS node verified p
	// for the shards it leads under the current epoch; reportAt paces the
	// re-published ctlRepairDone frames. Coordinator-only: lastRenew and
	// granted track lease heartbeats, evictAt pending (grace-delayed)
	// evictions, rejoinAcks the per-peer reporter sets.
	repaired      []bool
	reportAt      time.Time
	lastRenew     []time.Time
	granted       []bool
	evictAt       []time.Time
	rejoinAcks    []uint64
	ackQuarantine []time.Time

	// Stuck-slot scrub state: slots observed odd at the same version
	// across two passes one lease apart (no live writer is that slow) are
	// unstuck — see scrubPass.
	scrubAt    time.Time
	scrubMarks map[int]uint64

	// Load-driven rebalancing state (coordinator; see rebalance.go).
	// loadPrev holds the last (reads, writes) counter snapshot per node
	// per shard so each tick works on deltas; loadBuf/loadLine stage the
	// one-sided reads of each member's shard-line table.
	rebalAt  time.Time
	loadPrev [][]uint64
	loadBuf  *sonuma.Buffer
	loadLine []byte

	putCh    chan *putReq
	failCh   chan int
	linkCh   chan [2]int // fabric link-failure endpoints (coordinator bookkeeping)
	healCh   chan struct{}
	resizeCh chan *resizeReq
	stop     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
	pending  map[uint64]*fwdPut
	nextID   uint64

	// Repair state (serve goroutine). wantAckPeer/wantAckToken/gotAck
	// track the msgRepairAck the loop in awaitRepairAck is waiting on.
	// While inRepair is set, inbound forwarded PUTs are deferred instead
	// of applied, so no write can race the repair's version scan — they
	// drain (and replicate, now including the re-admitted peer) as soon
	// as the repair concludes. healPending/healRetryAt/healBackoff drive
	// retries of aborted repairs from the serve loop's idle tick.
	wantAckPeer  int
	wantAckToken uint64
	gotAck       bool
	inRepair     bool
	deferred     []sonuma.Message
	healPending  bool
	healRetryAt  time.Time
	healBackoff  time.Duration

	msgsHandled    atomic.Uint64
	putsApplied    atomic.Uint64
	putsForwarded  atomic.Uint64
	replicaWrites  atomic.Uint64
	replicaSkips   atomic.Uint64
	promotions     atomic.Uint64
	rerouted       atomic.Uint64
	rejoins        atomic.Uint64
	repairedSlots  atomic.Uint64
	repairBytes    atomic.Uint64
	shardsMigrated atomic.Uint64
	fenced         atomic.Uint64
	epochBumps     atomic.Uint64
	cfgStalePolls  atomic.Uint64
	takeovers      atomic.Uint64
	coordDemotions atomic.Uint64
	rebalances     atomic.Uint64
}

// resizeReq is one AddNode request travelling into the serve loop.
type resizeReq struct {
	node int
	resp chan error
}

// Open joins this node to the sharded store on ctx. Every node of the
// cluster must call Open with an identical Config on the same context id,
// with a segment of at least Config.SegmentSize(cluster nodes) bytes. Open
// claims the node's fabric failure callbacks (OnFabricFailure and
// OnLinkFailure) for failover detection and starts the serve goroutine.
func Open(ctx *sonuma.Context, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	n := ctx.Node().Cluster().Nodes()
	if need := cfg.SegmentSize(n); ctx.SegmentSize() < need {
		return nil, fmt.Errorf("kvs: segment %d bytes < %d required", ctx.SegmentSize(), need)
	}
	if n > 64 {
		return nil, fmt.Errorf("kvs: configuration epochs support at most 64 nodes, cluster has %d", n)
	}
	nodes := cfg.Members
	if len(nodes) == 0 {
		nodes = make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
	}
	for _, id := range nodes {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("kvs: ring member %d outside cluster [0,%d)", id, n)
		}
	}
	if cfg.Coordinator < 0 || cfg.Coordinator >= n {
		return nil, fmt.Errorf("kvs: coordinator %d outside cluster [0,%d)", cfg.Coordinator, n)
	}
	// Resolve the authority succession set: the seed coordinator first,
	// then the next ring members in order, CoordReplicas deep. Meaningful
	// replication needs at least three authority members (with two, a
	// claimant could never distinguish a dead peer from its own partition,
	// and every epoch change would hostage the lone mirror), so smaller
	// resolved sets collapse to the PR 4 single-authority behavior.
	k := cfg.CoordReplicas
	if k <= 0 {
		k = DefaultCoordReplicas
	}
	succ := []int{cfg.Coordinator}
	for _, m := range nodes {
		if len(succ) >= k {
			break
		}
		if m != cfg.Coordinator {
			succ = append(succ, m)
		}
	}
	if len(succ) < 3 {
		succ = succ[:1]
	}
	s := &Store{
		ctx:           ctx,
		cfg:           cfg,
		me:            ctx.NodeID(),
		n:             n,
		mem:           ctx.Memory(),
		down:          make([]bool, n),
		coord:         cfg.Coordinator,
		succ:          succ,
		cfgTerm:       termFor(1, cfg.Coordinator),
		lease:         cfg.Lease,
		repaired:      make([]bool, n),
		lastRenew:     make([]time.Time, n),
		granted:       make([]bool, n),
		evictAt:       make([]time.Time, n),
		rejoinAcks:    make([]uint64, n),
		ackQuarantine: make([]time.Time, n),
		putCh:         make(chan *putReq, 128),
		failCh:        make(chan int, 64),
		linkCh:        make(chan [2]int, 64),
		healCh:        make(chan struct{}, 1),
		resizeCh:      make(chan *resizeReq, 4),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
		pending:       make(map[uint64]*fwdPut),
		scratch:       make([]byte, cfg.SlotSize),
		cfgLine:       make([]byte, cfgSlotSize),
		wantAckPeer:   -1,
		healBackoff:   time.Second,
	}
	s.ringPub.Store(NewRing(nodes, cfg.Shards, cfg.Replicas, cfg.VNodes))
	s.publishDown()
	s.publishCfg()
	if err := writeHeader(s.mem, cfg); err != nil {
		return nil, err
	}
	var err error
	if s.qp, err = ctx.NewQP(0); err != nil {
		return nil, err
	}
	s.batch = s.qp.NewBatch()
	if s.repBuf, err = ctx.AllocBuffer(cfg.SlotSize); err != nil {
		return nil, err
	}
	if s.priorBuf, err = ctx.AllocBuffer(8 * n); err != nil {
		return nil, err
	}
	if s.verBuf, err = ctx.AllocBuffer(repairScanBytes * repairVerBurst); err != nil {
		return nil, err
	}
	if s.migBuf, err = ctx.AllocBuffer(migrateBurst * cfg.SlotSize); err != nil {
		return nil, err
	}
	if s.cfgBuf, err = ctx.AllocBuffer(cfgSlotSize); err != nil {
		return nil, err
	}
	if s.mirBuf, err = ctx.AllocBuffer(cfgSlotSize); err != nil {
		return nil, err
	}
	if cfg.Rebalance && cfg.Shards <= 64 {
		// Any succession member can inherit the coordinator role, so every
		// node stages the rebalancer's load-table reads.
		if s.loadBuf, err = ctx.AllocBuffer(cfg.Shards * shardLineSize); err != nil {
			return nil, err
		}
		s.loadLine = make([]byte, cfg.Shards*shardLineSize)
	}
	mqp, err := ctx.NewQP(0)
	if err != nil {
		return nil, err
	}
	mcfg := cfg.Messenger
	mcfg.RegionOffset = cfg.RegionOffset + cfg.RegionSize()
	if s.msgr, err = sonuma.NewMessenger(ctx, mqp, mcfg); err != nil {
		return nil, err
	}
	// The seed coordinator seeds the configuration authority: term
	// generation 1 owned by it, epoch 1, nobody evicted. Peers start at
	// epoch 0 under the SAME statically known term with the identical
	// (empty) down mask and adopt epoch 1 on their first poll, so
	// leadership (and renewal routing) never disagrees during bootstrap;
	// the mirrors fill in within one mirrorTick cadence.
	now := time.Now()
	s.cfgLastOK, s.authOK = now, now
	s.cfgFreshNano.Store(now.UnixNano())
	if s.me == s.coord {
		s.cfgEpoch, s.cfgDown = 1, 0
		s.writeConfigSlot(s.cfgTerm, 1, 0, 0)
		s.publishCfg()
	}
	// Failover detection: the fabric's watchers report failed nodes and
	// links; the serve loop turns the ones affecting our reachability
	// into leadership promotions and PUT re-routes. Restore events feed
	// the symmetric path: a heal scan that repairs and re-admits peers
	// that became reachable again.
	node := ctx.Node()
	node.OnFabricFailure(func(failed int) {
		s.reportDown(failed)
		s.reportLinkEvent(failed, failed)
	})
	node.OnLinkFailure(func(a, b int) {
		if a == s.me {
			s.reportDown(b)
		} else if b == s.me {
			s.reportDown(a)
		}
		// The coordinator hears about EVERY link failure: a collected
		// repair report involving either endpoint may have just gone
		// stale (the reporter can no longer replicate to the peer it
		// verified), so re-admission must wait for fresh reports.
		s.reportLinkEvent(a, b)
	})
	node.OnFabricRestore(func(int) { s.reportHeal() })
	node.OnLinkRestore(func(a, b int) { s.reportHeal() })
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Ring returns the store's current placement ring — an immutable snapshot;
// AddNode publishes a new one.
func (s *Store) Ring() *Ring { return s.ringPub.Load() }

// ring is the internal spelling of Ring.
func (s *Store) ring() *Ring { return s.ringPub.Load() }

// NodeID reports the node this store member runs on.
func (s *Store) NodeID() int { return s.me }

// Config reports the store's resolved configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		MsgsHandled:    s.msgsHandled.Load(),
		PutsApplied:    s.putsApplied.Load(),
		PutsForwarded:  s.putsForwarded.Load(),
		ReplicaWrites:  s.replicaWrites.Load(),
		ReplicaSkips:   s.replicaSkips.Load(),
		Promotions:     s.promotions.Load(),
		Rerouted:       s.rerouted.Load(),
		Rejoins:        s.rejoins.Load(),
		RepairedSlots:  s.repairedSlots.Load(),
		RepairBytes:    s.repairBytes.Load(),
		ShardsMigrated: s.shardsMigrated.Load(),
		Fenced:         s.fenced.Load(),
		EpochBumps:     s.epochBumps.Load(),
		CfgStalePolls:  s.cfgStalePolls.Load(),
		CfgStaleMs:     float64(time.Now().UnixNano()-s.cfgFreshNano.Load()) / 1e6,
		Takeovers:      s.takeovers.Load(),
		CoordDemotions: s.coordDemotions.Load(),
		Rebalances:     s.rebalances.Load(),
	}
}

// reportDown queues a node-unreachable report for the serve loop. Safe from
// any goroutine (fabric watchers, clients observing read failures); reports
// are best-effort — a full queue drops them, and the fabric watcher will
// re-fire for real failures.
func (s *Store) reportDown(node int) {
	select {
	case s.failCh <- node:
	default:
	}
}

// reportLinkEvent queues a fabric link-failure event for the coordinator's
// serve loop, which discards collected repair reports involving either
// endpoint (they may no longer cover the peer's state). Best-effort like
// reportDown; a dropped event is re-covered because reporters also
// invalidate their own repaired flags and re-verify before re-reporting.
// Runs on fabric watcher goroutines, so the coordinator check reads the
// published snapshot, not the serve goroutine's s.coord.
func (s *Store) reportLinkEvent(a, b int) {
	if s.me != termOwner(s.cfgSnapshot().term) {
		return
	}
	select {
	case s.linkCh <- [2]int{a, b}:
	default:
	}
}

// dropStaleAcks is the serve-loop half of reportLinkEvent: collected
// repair reports about either endpoint are discarded, and further reports
// about them are QUARANTINED for one lease. The quarantine closes a
// lossy-channel race: a report published on a control line just before the
// link event can be consumed just after this clear — but every node
// overwrites its control line with renewals on a lease/3 cadence, so any
// report older than one lease cannot still be delivered; after the
// quarantine only genuinely fresh (post-event, re-verified) reports count.
// Coordinator only.
func (s *Store) dropStaleAcks(a, b int) {
	until := time.Now().Add(s.lease)
	for _, p := range [2]int{a, b} {
		if p >= 0 && p < s.n {
			s.rejoinAcks[p] = 0
			s.ackQuarantine[p] = until
		}
	}
}

// reportHeal queues a heal scan for the serve loop: some fabric link or
// node was restored, so peers in the down set may be reachable again. The
// channel is a single-slot latch — scans coalesce, and the scan itself
// checks per-peer reachability.
func (s *Store) reportHeal() {
	select {
	case s.healCh <- struct{}{}:
	default:
	}
}

// downSnapshot returns the serve loop's latest published unreachability
// view. The returned slice is immutable.
func (s *Store) downSnapshot() []bool { return *s.downPub.Load() }

// DownView returns a copy of the store's published unreachability view:
// DownView()[i] is true while node i is evicted (and not yet repaired and
// re-admitted). Harnesses use it to measure repair convergence.
func (s *Store) DownView() []bool {
	return append([]bool(nil), s.downSnapshot()...)
}

// publishDown republishes the down set for lock-free readers (clients).
func (s *Store) publishDown() {
	cp := make([]bool, len(s.down))
	copy(cp, s.down)
	s.downPub.Store(&cp)
}

// Close stops the serve goroutine. Pending PUTs fail with ErrClosed. Close
// the store before closing the cluster.
func (s *Store) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// put hands a PUT to the serve loop and waits for its outcome.
func (s *Store) put(req *putReq) error {
	select {
	case s.putCh <- req:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-req.resp:
		return err
	case <-s.done:
		// The serve loop exited; it fails everything it saw, but the
		// response may already be in flight.
		select {
		case err := <-req.resp:
			return err
		default:
			return ErrClosed
		}
	}
}

// serve is the store's single driving goroutine: it routes and applies
// PUTs, replicates to backups, answers forwarded PUTs, and reacts to
// failure reports. GET traffic never appears here. Like the RMC pipelines,
// it spin-polls briefly when work is flowing and parks (on its channels
// plus a short poll tick for the messenger rings) when idle, so an idle
// service does not pin cores.
func (s *Store) serve() {
	defer s.wg.Done()
	defer close(s.done)
	defer s.shutdown()
	idle := 0
	for {
		worked := false
		select {
		case <-s.stop:
			return
		default:
		}
	drainFail:
		for {
			select {
			case n := <-s.failCh:
				s.markDown(n)
				worked = true
			case ev := <-s.linkCh:
				s.dropStaleAcks(ev[0], ev[1])
				worked = true
			default:
				break drainFail
			}
		}
		select {
		case <-s.healCh:
			s.healScan()
			worked = true
		default:
		}
		select {
		case req := <-s.resizeCh:
			s.handleResize(req)
			worked = true
		default:
		}
	drainPuts:
		for i := 0; i < 64; i++ {
			select {
			case req := <-s.putCh:
				s.handlePut(req)
				worked = true
			default:
				break drainPuts
			}
		}
		for {
			msg, ok, err := s.msgr.TryRecv()
			if err != nil {
				return // fabric closed underneath us
			}
			if !ok {
				break
			}
			worked = true
			s.handleMsg(msg)
		}
		s.tick()
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < idleSpins {
			runtime.Gosched()
			continue
		}
		select {
		case <-s.stop:
			return
		case n := <-s.failCh:
			s.markDown(n)
		case <-s.healCh:
			s.healScan()
		case req := <-s.resizeCh:
			s.handleResize(req)
		case req := <-s.putCh:
			s.handlePut(req)
		case <-time.After(idlePoll):
		}
		idle = 0
	}
}

// tick drives the time-based state machines once per serve pass: control
// frames, config polling, lease renewal, the coordinator's eviction and
// re-admission clocks, parked-PUT deadlines, repair reports, and heal
// retries. Everything is time-gated — the control-line scan on lease/8
// (control traffic changes on lease/3 cadences, so scanning n peer lines
// every data-path pass would be pure overhead) — so running tick on busy
// passes too keeps fencing responsive under load without taxing it.
func (s *Store) tick() {
	now := time.Now()
	if now.After(s.ctrlPollAt) {
		s.ctrlPollAt = now.Add(s.lease / 8)
		s.drainCtrl()
	}
	if s.me == s.coord {
		s.coordTick(now)
	} else {
		if s.scanNow {
			// A control frame claimed a term above our cache: the old
			// coordinator's slot cannot show it, so scan the succession
			// set directly instead of waiting out the staleness clock.
			// The latch clears only when a scan actually runs (pacing
			// can defer it), so the hint is never silently dropped.
			s.successionScan(now)
		}
		if s.cfgDirty || now.After(s.cfgPollAt) {
			s.cfgPollAt = now.Add(s.cfgPollEvery())
			s.pollConfig(now)
		}
		s.leaseTick(now)
	}
	s.parkedTick(now)
	s.pendingTick(now)
	s.reportTick(now)
	if s.healPending && now.After(s.healRetryAt) {
		s.healScan()
	}
	if now.After(s.scrubAt) {
		s.scrubAt = now.Add(s.lease)
		s.scrubPass()
	}
}

// scrubPass heals slots stranded odd by a writer that died mid-update —
// the one corruption repair cannot reach, because repair only ever targets
// EVICTED peers while a stale replicator can strand a slot on a node that
// stays up the whole time (PR 2's documented remnant, bounded now by the
// fencing window but still possible inside it). A slot odd at the SAME
// version across two passes one lease apart has no live writer (a real
// replication completes in microseconds; an abandoned one never does):
// if the body's checksum proves the dead writer finished it, the slot is
// simply published; otherwise the image is re-fetched one-sidedly from
// another replica. Runs once per lease per node — a few hundred local
// word loads — so it costs nothing in steady state.
func (s *Store) scrubPass() {
	ring := s.ring()
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if !containsInt(ring.ownersShared(shard), s.me) {
			continue
		}
		for b := 0; b < s.cfg.Buckets; b++ {
			off := s.cfg.slotOff(shard, b)
			ver, err := s.mem.Load64(off)
			if err != nil {
				return
			}
			idx := shard*s.cfg.Buckets + b
			if ver&1 == 0 {
				if s.scrubMarks != nil {
					delete(s.scrubMarks, idx)
				}
				continue
			}
			if s.scrubMarks == nil {
				s.scrubMarks = make(map[int]uint64)
			}
			if prev, seen := s.scrubMarks[idx]; !seen || prev != ver {
				s.scrubMarks[idx] = ver // first sighting (or a live writer moved it)
				continue
			}
			delete(s.scrubMarks, idx)
			s.unstickSlot(shard, b, ver)
		}
	}
}

// unstickSlot repairs one slot proven stuck odd. The common case — the
// dead writer landed the full body but not the final version bump — is
// detected by the checksum and fixed with a single publish; a half-landed
// body is replaced by a stable image fetched from another replica (left
// for the next pass if none is reachable).
func (s *Store) unstickSlot(shard, bucket int, ver uint64) {
	off := s.cfg.slotOff(shard, bucket)
	if err := s.mem.ReadAt(off, s.scratch); err != nil {
		return
	}
	keyLen := int(binary.LittleEndian.Uint32(s.scratch[8:]))
	valLen := int(binary.LittleEndian.Uint32(s.scratch[12:]))
	crc := binary.LittleEndian.Uint32(s.scratch[16:])
	if keyLen > 0 && valLen >= 0 && entryHdr+keyLen+valLen <= s.cfg.SlotSize &&
		crc32.ChecksumIEEE(s.scratch[entryHdr:entryHdr+keyLen+valLen]) == crc {
		_ = s.mem.Store64(off, ver+1)
		s.bumpShardVer(shard)
		return
	}
	cl := s.ctx.Node().Cluster()
	for _, o := range s.ring().ownersShared(shard) {
		if o == s.me || s.down[o] || !cl.Reachable(s.me, o) {
			continue
		}
		if err := s.qp.Read(o, uint64(off), s.migBuf, 0, s.cfg.SlotSize); err != nil {
			continue
		}
		if err := s.migBuf.ReadAt(0, s.scratch); err != nil {
			return
		}
		theirs := binary.LittleEndian.Uint64(s.scratch)
		if theirs&1 == 1 {
			continue // busy or stuck over there too; try another replica
		}
		if theirs == 0 {
			_ = s.mem.Store64(off, 0) // no replica holds an entry: clear
			s.bumpShardVer(shard)
			return
		}
		pub := theirs
		if pub <= ver {
			pub = ver + 1 // keep the version monotonic (ver is odd, so +1 is even)
		}
		if err := s.mem.WriteAt(off+8, s.scratch[8:]); err != nil {
			return
		}
		_ = s.mem.Store64(off, pub)
		s.bumpShardVer(shard)
		return
	}
	// No replica reachable: stay stuck for now; the next pass retries.
}

// shutdown fails every pending, parked, and queued PUT so no client blocks
// forever.
func (s *Store) shutdown() {
	for id, f := range s.pending {
		delete(s.pending, id)
		f.req.resp <- ErrClosed
	}
	for _, req := range s.parked {
		req.resp <- ErrClosed
	}
	s.parked = nil
	for {
		select {
		case req := <-s.putCh:
			req.resp <- ErrClosed
		case req := <-s.resizeCh:
			req.resp <- ErrClosed
		default:
			return
		}
	}
}

// markDown records a node as locally unreachable. Unlike PR 2's design,
// reachability no longer moves leadership by itself: leadership is a pure
// function of the configuration epoch, so a failure report here either
// starts the coordinator's (lease-grace-delayed) eviction clock, or — on
// every other node — parks writes routed at the dead leader until the
// coordinator's epoch bump re-derives leadership cluster-wide. GETs still
// fail over instantly on the local view; only write authority waits for
// the epoch, because that is exactly the split-brain window.
func (s *Store) markDown(node int) {
	if node < 0 || node >= s.n || node == s.me {
		return
	}
	// A fresh failure report always invalidates this node's repair
	// verification of the peer — even when the peer was already down:
	// replication to a repaired-but-evicted peer may just have failed,
	// meaning it missed a write this node acknowledged, so the earlier
	// verification no longer covers its state.
	s.repaired[node] = false
	if s.down[node] {
		return
	}
	s.down[node] = true
	s.publishDown()
	if s.me == s.coord {
		s.scheduleEvict(node)
	} else {
		// The coordinator is likely bumping the epoch; poll eagerly.
		s.cfgDirty = true
	}
	for id, f := range s.pending {
		if f.target != node {
			continue
		}
		delete(s.pending, id)
		s.rerouted.Add(1)
		s.handlePut(f.req)
	}
}

// park shelves a PUT that cannot be served under the current configuration
// (fenced leader, evicted or unreachable leader) until a lease grant or an
// epoch transition re-routes it, bounded by the fencing deadline.
func (s *Store) park(req *putReq) {
	if req.deadline.IsZero() {
		req.deadline = time.Now().Add(s.fenceWait())
	}
	s.parked = append(s.parked, req)
}

// parkedTick re-routes parked PUTs after a configuration or lease change
// (and periodically regardless, since a REMOTE leader acquiring its lease
// is invisible here) and fails the ones that outwaited the fencing
// deadline: a fenced write surfaces as ErrFenced, never as a silent drop.
func (s *Store) parkedTick(now time.Time) {
	if len(s.parked) == 0 {
		s.parkedDirty = false
		return
	}
	kept := s.parked[:0]
	for _, req := range s.parked {
		if now.After(req.deadline) {
			s.fenced.Add(1)
			req.resp <- ErrFenced
			continue
		}
		kept = append(kept, req)
	}
	s.parked = kept
	if s.parkedDirty || now.After(s.parkedRetryAt) {
		s.parkedDirty = false
		s.parkedRetryAt = now.Add(s.lease / 4)
		s.drainParked()
	}
}

// pendingTick re-routes forwarded PUTs whose ack has outwaited one lease.
// The forward protocol is at-most-once per attempt: over a process
// transport (or any real fabric) either the PUT frame or its ack can be
// lost with the target still alive — most plainly when a restarted peer
// answers an inbound request before its own outbound links are back — and
// no failure event ever fires for an alive target, so without this bound
// the origin's client blocks forever. Re-forwarding re-applies the same
// key/value at worst (a lost-ack duplicate is an idempotent overwrite);
// attempts and the fencing deadline bound the retries.
func (s *Store) pendingTick(now time.Time) {
	if len(s.pending) == 0 {
		return
	}
	for id, f := range s.pending {
		if now.Sub(f.sentAt) <= s.lease {
			continue
		}
		delete(s.pending, id)
		s.rerouted.Add(1)
		s.handlePut(f.req)
	}
}

// drainParked re-runs routing for every parked PUT under the current
// configuration. PUTs that still cannot be served re-park with their
// original deadline.
func (s *Store) drainParked() {
	if len(s.parked) == 0 {
		return
	}
	reqs := s.parked
	s.parked = nil
	for _, req := range reqs {
		s.handlePut(req)
	}
}

// errRepairAborted reports a repair pass that could not complete: the peer
// fell off the fabric again mid-stream, or stayed silent past the ack
// timeout. The peer remains evicted; the next heal event retries.
var errRepairAborted = errors.New("kvs: repair aborted: peer unreachable or not serving")

// errSuperseded reports a mirror write refused because the mirror already
// carries a higher coordinator term: the writer has been deposed.
var errSuperseded = errors.New("kvs: authority superseded by a higher term")

// containsInt reports whether list holds v.
func containsInt(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// healScan verifies (repairs) every peer that is evicted — in the
// configuration or merely in this node's local view — and reachable again.
// Triggered by link/node restore events, by epoch adoptions that show
// down peers, and re-armed from the tick with backoff when a repair
// aborts; the per-peer reachability check makes it safe to run on any of
// them, because a single restored link does not imply the whole route is
// back. Before repairing, the cached configuration is refreshed so a
// demoted leader cannot "repair" peers with shards it no longer leads.
func (s *Store) healScan() {
	cl := s.ctx.Node().Cluster()
	s.healPending = false
	if s.me != s.coord {
		s.pollConfig(time.Now())
	}
	for p := 0; p < s.n; p++ {
		if p == s.me || s.repaired[p] {
			continue
		}
		if !s.down[p] && !s.cfgDownBit(p) {
			continue
		}
		if !cl.Reachable(s.me, p) {
			continue
		}
		s.markUp(p)
		if !s.repaired[p] {
			// Repair aborted against a reachable peer: schedule a
			// retry with backoff rather than waiting for another
			// restore event that may never come.
			s.healPending = true
			s.healRetryAt = time.Now().Add(s.healBackoff)
			s.healBackoff *= 2
			if s.healBackoff > healRetryMax {
				s.healBackoff = healRetryMax
			}
		}
	}
}

// markUp verifies one healed peer, with the crucial asymmetry the ROADMAP
// calls out: eviction was instant, re-admission must be earned. The peer
// missed every write replicated while it was unreachable, so this node
// streams it the diffs for every shard it currently leads (repairPeer) and
// only a full acknowledged stream marks the peer repaired.
//
// What happens next depends on who evicted the peer. A peer evicted only
// in this node's LOCAL view (the configuration never demoted it) is
// re-admitted locally, as in PR 3. A peer evicted by the configuration
// stays evicted until the coordinator has collected repair reports from
// EVERY shard leader with data on it and publishes the re-admitting epoch
// — which closes PR 3's stale-read window: no client anywhere reads the
// peer before every one of its shards is verified, because eviction and
// re-admission are now epoch transitions, not per-node opinions.
//
// While the repair is in flight, inbound forwarded PUTs are deferred
// (inRepair), so this store applies no write between the version scan and
// the repair barrier; the deferred PUTs drain right after and replicate to
// the repaired peer (replication resumes for repaired peers immediately,
// so nothing is missed while the coordinator collects the other reports).
func (s *Store) markUp(peer int) {
	s.inRepair = true
	err := s.repairPeer(peer)
	s.inRepair = false
	if err == nil {
		s.repaired[peer] = true
		s.rejoins.Add(1)
		s.healBackoff = time.Second
		if !s.cfgDownBit(peer) {
			// Transient local eviction the configuration never saw:
			// local re-admission suffices, and a pending eviction whose
			// grace has not expired is cancelled — the peer is verified
			// and reachable again.
			s.down[peer] = false
			s.repaired[peer] = false
			s.publishDown()
			if s.me == s.coord {
				s.evictAt[peer] = time.Time{}
			}
		} else {
			s.reportRepair()
			s.reportAt = time.Now().Add(s.reportEvery())
		}
	}
	s.drainDeferred()
}

// drainDeferred applies the forwarded PUTs parked while a repair was in
// flight. Runs after the down view is updated, so their replication
// includes a freshly re-admitted peer.
func (s *Store) drainDeferred() {
	for len(s.deferred) > 0 {
		m := s.deferred[0]
		s.deferred = s.deferred[1:]
		s.handleMsg(m)
	}
	s.deferred = nil
}

// repairPeer streams this node's image of every shard it leads (and the
// peer owns) to the peer, then runs an end-of-stream barrier: the peer
// acknowledges a token only after applying everything before it, because
// the messenger delivers one sender's messages in order. Other shards are
// some other leader's responsibility — the coordinator re-admits the peer
// only after every expected leader has reported, so coverage is complete
// and verified, and each shard has exactly one repairer (its epoch
// leader), which is also the only node replicating new writes for it. A
// cheap probe barrier runs before any diff is read or streamed, so a
// reachable-but-silent peer aborts quickly.
func (s *Store) repairPeer(peer int) error {
	ring := s.ring()
	if !ring.ContainsNode(peer) {
		return nil // not a placement member: nothing to repair
	}
	if err := s.repairBarrier(peer, repairProbeTimeout); err != nil {
		return err
	}
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if s.leaderOf(shard) != s.me || !containsInt(ring.ownersShared(shard), peer) {
			continue
		}
		if err := s.repairShard(peer, shard); err != nil {
			return err
		}
	}
	return s.repairBarrier(peer, repairAckTimeout)
}

// repairBarrier sends an end-of-stream token and waits (bounded) for the
// peer to acknowledge it.
func (s *Store) repairBarrier(peer int, timeout time.Duration) error {
	token := s.nextID
	s.nextID++
	var b [9]byte
	b[0] = msgRepairEnd
	binary.LittleEndian.PutUint64(b[1:], token)
	if err := s.msgr.Send(peer, b[:]); err != nil {
		return err
	}
	return s.awaitRepairAck(peer, token, timeout)
}

// repairShard converges one shard between this node and the peer, ordered
// by (epoch, version). The two shard-epoch words — stamped by leader
// writes and by repair — totally order the lineages, and data always
// flows from the newer lineage to the older one, whichever side holds it:
//
//   - local word ABOVE the peer's: the repairer's image wins wholesale
//     (supersede): slots whose header prefix (version, lengths, checksum
//     — the checksum catches divergence hiding behind EQUAL version
//     counts) differs are force-streamed regardless of version order, and
//     stale extras are cleared. This settles the asymmetric partition
//     where a stale leader left the peer AHEAD by bare version count.
//   - words EQUAL: same lineage — PR 3's conservative version comparison
//     (missed writes, stuck-odd fixes).
//   - local word BELOW the peer's: the PEER holds the newer lineage (it
//     led this shard more recently than anything we have — e.g. the old
//     leader of a shard whose promoted backup never took a write, or a
//     double fault that left the shard leaderless); the repairer PULLS
//     the peer's image into itself with one-sided reads instead of
//     pushing, so acknowledged writes that conflict with nothing are
//     preserved rather than rolled back.
//
// The shard-epoch stamp travels after the shard's diffs (ordered
// delivery), so a partially streamed shard never claims the repair epoch.
func (s *Store) repairShard(peer, shard int) error {
	if err := s.qp.Read(peer, uint64(s.cfg.shardEpochOff(shard)), s.verBuf, 0, 8); err != nil {
		return err
	}
	peerWord, err := s.verBuf.Load64(0)
	if err != nil {
		return err
	}
	localWord, err := s.mem.Load64(s.cfg.shardEpochOff(shard))
	if err != nil {
		return err
	}
	if peerWord > localWord {
		return s.reverseRepairShard(peer, shard, peerWord)
	}
	supersede := peerWord < localWord
	for base := 0; base < s.cfg.Buckets; base += repairVerBurst {
		end := base + repairVerBurst
		if end > s.cfg.Buckets {
			end = s.cfg.Buckets
		}
		for b := base; b < end; b++ {
			s.batch.Read(peer, uint64(s.cfg.slotOff(shard, b)), s.verBuf,
				repairScanBytes*(b-base), repairScanBytes, nil)
		}
		if err := s.batch.SubmitWait(); err != nil {
			return err
		}
		var hdr [repairScanBytes]byte
		for b := base; b < end; b++ {
			if err := s.verBuf.ReadAt(repairScanBytes*(b-base), hdr[:]); err != nil {
				return err
			}
			if err := s.repairSlot(peer, shard, b, hdr[:], localWord, supersede); err != nil {
				return err
			}
		}
	}
	// Stamp the peer's shard epoch: every diff above is already applied
	// when this frame lands, so the shard now carries the repair lineage.
	need := 13
	if cap(s.txBuf) < need {
		s.txBuf = make([]byte, need)
	}
	b := s.txBuf[:need]
	b[0] = msgShardEpoch
	binary.LittleEndian.PutUint32(b[1:], uint32(shard))
	binary.LittleEndian.PutUint64(b[5:], localWord)
	return s.msgr.Send(peer, b)
}

// reverseRepairShard pulls one shard's image FROM the peer with batched
// one-sided reads: the peer's shard epoch proves its lineage is newer than
// anything this node holds, so this node converges toward the peer —
// installing every differing stable slot under the local seqlock, clearing
// local extras the peer never wrote, then adopting the peer's shard epoch.
// The peer's own data is already current, so nothing is streamed to it.
func (s *Store) reverseRepairShard(peer, shard int, peerWord uint64) error {
	for base := 0; base < s.cfg.Buckets; base += migrateBurst {
		end := base + migrateBurst
		if end > s.cfg.Buckets {
			end = s.cfg.Buckets
		}
		for b := base; b < end; b++ {
			s.batch.Read(peer, uint64(s.cfg.slotOff(shard, b)), s.migBuf, (b-base)*s.cfg.SlotSize, s.cfg.SlotSize, nil)
		}
		if err := s.batch.SubmitWait(); err != nil {
			return err
		}
		for b := base; b < end; b++ {
			if err := s.pullSlot(peer, shard, b, (b-base)*s.cfg.SlotSize); err != nil {
				return err
			}
		}
	}
	return s.mem.Store64(s.cfg.shardEpochOff(shard), peerWord)
}

// pullSlot installs one fetched peer slot locally when it differs,
// re-reading while transiently odd. A peer slot stuck odd past patience is
// skipped (kept local) — its writer is dead and a later repair round
// settles it; an empty peer slot clears any stale local entry.
func (s *Store) pullSlot(peer, shard, bucket, bufOff int) error {
	img := s.scratch
	if err := s.migBuf.ReadAt(bufOff, img); err != nil {
		return err
	}
	ver := binary.LittleEndian.Uint64(img)
	for r := 0; ver&1 == 1 && r < repairOddRetries; r++ {
		runtime.Gosched()
		if err := s.qp.Read(peer, uint64(s.cfg.slotOff(shard, bucket)), s.migBuf, bufOff, s.cfg.SlotSize); err != nil {
			return err
		}
		if err := s.migBuf.ReadAt(bufOff, img); err != nil {
			return err
		}
		ver = binary.LittleEndian.Uint64(img)
	}
	if ver&1 == 1 {
		return nil // stuck odd on the peer; keep the local image for now
	}
	off := s.cfg.slotOff(shard, bucket)
	cur, err := s.mem.Load64(off)
	if err != nil {
		return err
	}
	if ver == 0 {
		if cur != 0 {
			_ = s.mem.Store64(off, 0)
			s.bumpShardVer(shard)
		}
		return nil
	}
	// Skip byte-identical slots (header prefix compare, as in the push
	// scan).
	if cur == ver {
		var local [repairScanBytes]byte
		if err := s.mem.ReadAt(off, local[:]); err != nil {
			return err
		}
		if string(local[8:]) == string(img[8:repairScanBytes]) {
			return nil
		}
	}
	used := entryHdr + int(binary.LittleEndian.Uint32(img[8:])) + int(binary.LittleEndian.Uint32(img[12:]))
	if used < entryHdr || used > s.cfg.SlotSize {
		return nil // torn garbage; do not install
	}
	if err := s.mem.Store64(off, cur|1); err != nil {
		return err
	}
	if err := s.mem.WriteAt(off+8, img[8:used]); err != nil {
		return err
	}
	s.repairedSlots.Add(1)
	err = s.mem.Store64(off, ver)
	s.bumpShardVer(shard) // pulled image replaced local data: invalidate caches
	return err
}

// repairSlot compares one slot's local and remote images and streams the
// local one when the (epoch, version) order says the peer needs it. At
// equal epochs version words are comparable because every replica starts
// at zero and advances by exactly two per applied update; under an epoch
// supersede the checksum settles divergence that equal version counts
// hide. Frames carry the repairer's shard lineage (localWord), which the
// peer orders against its own word in applyRepair.
func (s *Store) repairSlot(peer, shard, bucket int, remoteHdr []byte, localWord uint64, supersede bool) error {
	off := s.cfg.slotOff(shard, bucket)
	remote := binary.LittleEndian.Uint64(remoteHdr)
	// A transiently odd remote version usually means a live replicator is
	// mid-update there; re-read before declaring it stuck.
	for r := 0; remote&1 == 1 && r < repairOddRetries; r++ {
		runtime.Gosched()
		if err := s.qp.Read(peer, uint64(off), s.verBuf, 0, repairScanBytes); err != nil {
			return err
		}
		if err := s.verBuf.ReadAt(0, remoteHdr); err != nil {
			return err
		}
		remote = binary.LittleEndian.Uint64(remoteHdr)
	}
	local, err := s.mem.Load64(off)
	if err != nil {
		return err
	}
	if local&1 == 1 {
		// This very slot is being written locally right now (a stale
		// replicator's remote bump); whatever lands will be replicated
		// or repaired on a later pass.
		return nil
	}
	if err := s.mem.ReadAt(off, s.scratch); err != nil {
		return err
	}
	if remote&1 == 0 {
		if !supersede && remote >= local {
			// Equal epochs: the peer is current or ahead within the same
			// write lineage; keep its data.
			return nil
		}
		if supersede && remote == local &&
			string(remoteHdr[8:repairScanBytes]) == string(s.scratch[8:repairScanBytes]) {
			// Byte-equal header (version, lengths, checksum): already
			// converged, nothing to stream.
			return nil
		}
	}
	// Frame the local image as a diff: kind, shard, bucket, version,
	// epoch, then the slot body after the version word. A zero version
	// clears a slot the stale side wrote but the winning epoch never did.
	used := 0
	if local != 0 {
		keyLen := int(binary.LittleEndian.Uint32(s.scratch[8:]))
		valLen := int(binary.LittleEndian.Uint32(s.scratch[12:]))
		used = entryHdr + keyLen + valLen
		if keyLen <= 0 || valLen < 0 || used > s.cfg.SlotSize {
			return nil // locally torn image; do not propagate garbage
		}
	}
	need := 25
	if used > 8 {
		need += used - 8
	}
	if cap(s.txBuf) < need {
		s.txBuf = make([]byte, need)
	}
	b := s.txBuf[:need]
	b[0] = msgRepair
	binary.LittleEndian.PutUint32(b[1:], uint32(shard))
	binary.LittleEndian.PutUint32(b[5:], uint32(bucket))
	binary.LittleEndian.PutUint64(b[9:], local)
	binary.LittleEndian.PutUint64(b[17:], localWord)
	if used > 8 {
		copy(b[25:], s.scratch[8:used])
	}
	if err := s.msgr.Send(peer, b); err != nil {
		return err
	}
	s.repairedSlots.Add(1)
	s.repairBytes.Add(uint64(need))
	return nil
}

// awaitRepairAck drives the messenger until the peer acknowledges the
// repair token, handling other control traffic along the way (forwarded
// PUTs are deferred by handleMsg while inRepair). Bails if the peer falls
// off the fabric or stays silent past the timeout.
func (s *Store) awaitRepairAck(peer int, token uint64, timeout time.Duration) error {
	s.wantAckPeer, s.wantAckToken, s.gotAck = peer, token, false
	defer func() { s.wantAckPeer = -1 }()
	deadline := time.Now().Add(timeout)
	for spin := 0; !s.gotAck; spin++ {
		msg, ok, err := s.msgr.TryRecv()
		if err != nil {
			return err
		}
		if ok {
			s.handleMsg(msg)
			continue
		}
		// Keep lease and heartbeat traffic flowing while the barrier
		// waits, so a long repair can neither fence its own leader nor
		// look dead to the coordinator — and the coordinator's own
		// authority contact stays fresh too, or a repair outlasting
		// hbExpiry would deny every renewal it grants from this very
		// loop. (Config adoption and eviction decisions stay parked
		// until the top-level tick; mirrorRefresh never adopts.)
		s.drainCtrl()
		if now := time.Now(); s.me != s.coord {
			s.leaseTick(now)
		} else if !s.mirrorAt.IsZero() && now.After(s.mirrorAt) {
			// Cadence refresh only: a ZEROED mirrorAt is handleCtrl's
			// "higher term claimed — verify now" hint, reserved for the
			// top-level mirrorTick (the only place adoption may run), so
			// it must not be consumed and re-armed here.
			s.mirrorAt = now.Add(s.lease / 2)
			s.mirrorRefresh(now)
		}
		if !s.ctx.Node().Cluster().Reachable(s.me, peer) {
			return errRepairAborted
		}
		if time.Now().After(deadline) {
			return errRepairAborted
		}
		// Escalate from yields to short sleeps: a repair barrier can sit
		// here for a while, and pure Gosched spinning on a starved host
		// takes cycles from the very peer whose ack we are waiting on.
		sonuma.WaitYield(spin)
	}
	return nil
}

// applyRepair installs one streamed slot diff under the local seqlock
// discipline, so concurrent one-sided readers see torn-or-stable exactly
// as with replication. Acceptance is ordered by (epoch, version): a frame
// from a newer configuration epoch than this shard last accepted a leader
// write under wins unconditionally — version counts cannot veto the
// winning epoch, which is what lets repair roll back a stale leader's
// absorbed writes. At the shard's own epoch, only strictly newer versions
// (or fixes for a stuck-odd slot) apply, and frames from an OLDER epoch —
// a stale repairer that still believes it leads — are rejected outright.
func (s *Store) applyRepair(shard, bucket int, ver, fepoch uint64, body []byte) {
	if shard < 0 || shard >= s.cfg.Shards || bucket < 0 || bucket >= s.cfg.Buckets {
		return
	}
	if 8+len(body) > s.cfg.SlotSize || ver&1 == 1 {
		return
	}
	epochOff := s.cfg.shardEpochOff(shard)
	word, err := s.mem.Load64(epochOff)
	if err != nil || fepoch < word {
		return
	}
	off := s.cfg.slotOff(shard, bucket)
	cur, err := s.mem.Load64(off)
	if err != nil {
		return
	}
	if fepoch == word {
		// Same lineage: accept strictly newer data, or any stable image
		// when our slot is stuck odd (its writer died mid-replication).
		if !(ver > cur || (cur&1 == 1 && ver >= cur&^1)) {
			return
		}
	}
	if ver == 0 {
		// The repairer has no entry here: clear the (stuck or stale)
		// slot.
		_ = s.mem.Store64(off, 0)
		s.bumpShardVer(shard)
		return
	}
	if err := s.mem.Store64(off, cur|1); err != nil {
		return
	}
	if err := s.mem.WriteAt(off+8, body); err != nil {
		return
	}
	_ = s.mem.Store64(off, ver)
	// A repair changed this shard's contents outside the PUT path: bump
	// the shard version so cache entries filled from the pre-repair image
	// (a rolled-back stale leader's, say) die on their next probe.
	s.bumpShardVer(shard)
}

// applyShardEpoch stamps a shard's epoch word after a repair stream for it
// completed (monotonic: the word never regresses).
func (s *Store) applyShardEpoch(shard int, epoch uint64) {
	if shard < 0 || shard >= s.cfg.Shards {
		return
	}
	off := s.cfg.shardEpochOff(shard)
	if cur, err := s.mem.Load64(off); err == nil && epoch > cur {
		_ = s.mem.Store64(off, epoch)
	}
}

// handlePut routes one PUT under the configuration epoch: applied here
// when this node leads the shard AND holds a valid lease, forwarded to the
// epoch's leader when that leader is reachable, and otherwise PARKED until
// a lease grant or an epoch transition — never served by a self-appointed
// replacement, because that is exactly the split-brain write path the
// epochs exist to close. Parked writes that outwait the fencing deadline
// fail with ErrFenced.
func (s *Store) handlePut(req *putReq) {
	target := s.leaderOf(req.shard)
	if s.cfgDownBit(target) {
		// Every owner of the shard is evicted at this epoch: no node may
		// accept the write until the configuration changes.
		s.park(req)
		return
	}
	if target == s.me {
		if !s.leaseValid(time.Now()) {
			// FENCED: we may have been demoted without knowing it yet.
			// Request a fresh grant eagerly and hold the write.
			s.renewAt = time.Time{}
			s.park(req)
			return
		}
		ver, err := s.applyPut(req.shard, req.key, req.value)
		req.ver = ver
		req.resp <- err
		return
	}
	if s.down[target] {
		// The epoch's leader is locally unreachable. Guessing a
		// replacement would fork the shard; wait for the coordinator.
		s.park(req)
		return
	}
	if req.attempts > maxPutAttempts {
		req.resp <- ErrNoReplica
		return
	}
	req.attempts++
	id := s.nextID
	s.nextID++
	msg := s.encodePut(id, req.shard, req.key, req.value)
	if err := s.msgr.Send(target, msg); err != nil {
		if sonuma.IsNodeFailure(err) {
			// The leader became unreachable mid-send; record it and hold
			// the write for the next epoch.
			s.markDown(target)
			s.park(req)
			return
		}
		// Anything else (oversized frame, protocol corruption) is the
		// caller's problem, not grounds to evict a healthy node.
		req.resp <- err
		return
	}
	s.putsForwarded.Add(1)
	s.pending[id] = &fwdPut{req: req, target: target, sentAt: time.Now()}
}

// encodePut frames a PUT request into the store's reusable send scratch.
func (s *Store) encodePut(id uint64, shard int, key, value []byte) []byte {
	need := 17 + len(key) + len(value)
	if cap(s.txBuf) < need {
		s.txBuf = make([]byte, need)
	}
	b := s.txBuf[:need]
	b[0] = msgPut
	binary.LittleEndian.PutUint64(b[1:], id)
	binary.LittleEndian.PutUint32(b[9:], uint32(shard))
	binary.LittleEndian.PutUint32(b[13:], uint32(len(key)))
	copy(b[17:], key)
	copy(b[17+len(key):], value)
	return b
}

// handleMsg dispatches one inbound messenger message.
func (s *Store) handleMsg(m sonuma.Message) {
	if len(m.Data) == 0 {
		s.msgsHandled.Add(1)
		return
	}
	// While a repair's version scan is in flight, forwarded PUTs are
	// parked: applying one would write a slot the scan may already have
	// passed, losing the write on the healing peer. They drain (counted
	// then) the moment the repair concludes.
	if s.inRepair && m.Data[0] == msgPut {
		s.deferred = append(s.deferred, m)
		return
	}
	s.msgsHandled.Add(1)
	switch m.Data[0] {
	case msgPut:
		if len(m.Data) < 17 {
			return // not even an id to ack
		}
		id := binary.LittleEndian.Uint64(m.Data[1:])
		shard := int(binary.LittleEndian.Uint32(m.Data[9:]))
		keyLen := int(binary.LittleEndian.Uint32(m.Data[13:]))
		if shard < 0 || shard >= s.cfg.Shards || keyLen <= 0 || 17+keyLen > len(m.Data) {
			// Mismatched configurations between members; a silent drop
			// would leave the origin's client blocked forever.
			s.ackTo(m.From, id, ackBadRequest, 0)
			return
		}
		key := m.Data[17 : 17+keyLen]
		value := m.Data[17+keyLen:]
		code, sv := s.applyForwarded(shard, key, value)
		s.ackTo(m.From, id, code, sv)
	case msgAck:
		if len(m.Data) < 10 {
			return
		}
		id := binary.LittleEndian.Uint64(m.Data[1:])
		f, ok := s.pending[id]
		if !ok {
			return
		}
		delete(s.pending, id)
		code := m.Data[9]
		if code == ackWrongOwner || code == ackFenced {
			// Our routing is stale (the receiver is not the epoch's
			// leader) or the leader is fenced awaiting demotion. Either
			// way a new epoch resolves it: re-read the config and hold
			// the write.
			s.cfgDirty = true
			s.park(f.req)
			return
		}
		if len(m.Data) >= 18 {
			f.req.ver = binary.LittleEndian.Uint64(m.Data[10:])
		}
		f.req.resp <- ackErr(code)
	case msgRepair:
		if len(m.Data) < 25 {
			return
		}
		shard := int(binary.LittleEndian.Uint32(m.Data[1:]))
		bucket := int(binary.LittleEndian.Uint32(m.Data[5:]))
		ver := binary.LittleEndian.Uint64(m.Data[9:])
		fepoch := binary.LittleEndian.Uint64(m.Data[17:])
		s.applyRepair(shard, bucket, ver, fepoch, m.Data[25:])
	case msgShardEpoch:
		if len(m.Data) < 13 {
			return
		}
		shard := int(binary.LittleEndian.Uint32(m.Data[1:]))
		s.applyShardEpoch(shard, binary.LittleEndian.Uint64(m.Data[5:]))
	case msgRepairEnd:
		if len(m.Data) < 9 {
			return
		}
		// Ordered delivery per sender means every diff before this token
		// is already applied; acknowledge so the repairer can re-admit
		// us. A failed ack send leaves the repairer to time out and
		// retry on the next heal event.
		var b [9]byte
		b[0] = msgRepairAck
		copy(b[1:], m.Data[1:9])
		_ = s.msgr.Send(m.From, b[:])
	case msgRepairAck:
		if len(m.Data) < 9 {
			return
		}
		token := binary.LittleEndian.Uint64(m.Data[1:])
		if m.From == s.wantAckPeer && token == s.wantAckToken {
			s.gotAck = true
		}
	}
}

// applyForwarded applies a PUT received over the messenger, refusing
// shards this node does not lead under its cached epoch and FENCING writes
// when the lease has lapsed: a demoted-but-unaware leader answers
// ackFenced instead of silently absorbing a write the new epoch will never
// see.
func (s *Store) applyForwarded(shard int, key, value []byte) (byte, uint64) {
	if s.leaderOf(shard) != s.me || s.cfgDownBit(s.me) {
		return ackWrongOwner, 0
	}
	if !s.leaseValid(time.Now()) {
		s.renewAt = time.Time{} // chase a fresh grant
		s.fenced.Add(1)
		return ackFenced, 0
	}
	switch ver, err := s.applyPut(shard, key, value); {
	case err == nil:
		return ackOK, ver
	case errors.Is(err, ErrTooLarge):
		return ackTooLarge, 0
	case errors.Is(err, ErrShardFull):
		return ackShardFull, 0
	default:
		return ackNoReplica, 0
	}
}

// ackTo answers a forwarded PUT, carrying the leader's post-apply shard
// version for the origin client's hot-key cache. A failed ack send means
// the requester became unreachable; it will re-route via its own failure
// watcher.
func (s *Store) ackTo(node int, id uint64, code byte, shardVer uint64) {
	var b [18]byte
	b[0] = msgAck
	binary.LittleEndian.PutUint64(b[1:], id)
	b[9] = code
	binary.LittleEndian.PutUint64(b[10:], shardVer)
	_ = s.msgr.Send(node, b[:])
}

// findBucket probes a shard's local table for key, returning the bucket to
// write. Placement is decided here, by the applying owner, and replicated
// as a slot image at the same offset — so replicas never diverge on probe
// order.
func (s *Store) findBucket(shard int, key []byte) (int, error) {
	h := fnv1a(key)
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.cfg.Buckets))
		off := s.cfg.slotOff(shard, b)
		ver, err := s.mem.Load64(off)
		if err != nil {
			return 0, err
		}
		if ver == 0 {
			return b, nil
		}
		if err := s.mem.ReadAt(off, s.scratch); err != nil {
			return 0, err
		}
		keyLen := int(binary.LittleEndian.Uint32(s.scratch[8:]))
		if keyLen == len(key) && entryHdr+keyLen <= len(s.scratch) &&
			string(s.scratch[entryHdr:entryHdr+keyLen]) == string(key) {
			return b, nil
		}
	}
	return 0, ErrShardFull
}

// bumpShardVer advances the shard's cache-invalidation version word. Order
// matters for the hot-key cache (client.go): the bump happens AFTER the
// slot commit and BEFORE the PUT acks, so a bumped version proves the new
// value is readable, and any cache entry filled against the old version
// self-invalidates on its next probe. Local word only — backups' copies
// advance inside replicate's final batch, before the origin's ack.
func (s *Store) bumpShardVer(shard int) uint64 {
	off := s.cfg.shardLineOff(shard) + shardLineVer
	v, err := s.mem.Load64(off)
	if err != nil {
		return 0
	}
	v++
	_ = s.mem.Store64(off, v)
	return v
}

// countShardWrite advances the shard's leader-write load counter (the
// write half of the rebalancer's feedback signal; reads are sampled by
// clients with remote FetchAdds on the neighbouring word).
func (s *Store) countShardWrite(shard int) {
	off := s.cfg.shardLineOff(shard) + shardLineWrites
	if v, err := s.mem.Load64(off); err == nil {
		_ = s.mem.Store64(off, v+1)
	}
}

// applyPut writes key=value into the local shard table under the slot's
// seqlock, then replicates the committed slot image to the shard's backups:
// a remote FetchAdd takes each backup's version odd, a remote write lands
// the body, and a final FetchAdd publishes the even, advanced version —
// the same torn-or-stable discipline one-sided readers rely on locally.
// Returns the shard's post-commit version for the client's ack.
func (s *Store) applyPut(shard int, key, value []byte) (uint64, error) {
	if len(key) == 0 {
		return 0, ErrEmptyKey
	}
	if entryHdr+len(key)+len(value) > s.cfg.SlotSize {
		return 0, ErrTooLarge
	}
	bucket, err := s.findBucket(shard, key)
	if err != nil {
		return 0, err
	}
	off := s.cfg.slotOff(shard, bucket)

	// Stamp the shard's epoch word BEFORE committing, so a repair frame
	// from any older epoch can never outrank a write acknowledged under
	// this one — this is the "epoch" half of the (epoch, version) order.
	if err := s.mem.Store64(s.cfg.shardEpochOff(shard), s.cfgEpoch); err != nil {
		return 0, err
	}

	// Local commit under the slot seqlock.
	ver, err := s.mem.Load64(off)
	if err != nil {
		return 0, err
	}
	body := s.scratch[:entryHdr+len(key)+len(value)]
	encodeEntryBody(body, key, value)
	if err := s.mem.Store64(off, ver|1); err != nil {
		return 0, err
	}
	if err := s.mem.WriteAt(off+8, body[8:]); err != nil {
		return 0, err
	}
	if err := s.mem.Store64(off, (ver|1)+1); err != nil {
		return 0, err
	}
	sv := s.bumpShardVer(shard)
	s.countShardWrite(shard)
	s.putsApplied.Add(1)
	return sv, s.replicate(shard, off, body)
}

// replicate pushes the committed slot body at off to every reachable
// backup of the shard. Unreachable backups are skipped (and marked down);
// availability wins over replica count. Backups evicted by the
// configuration rejoin replication the moment THIS node has verified them
// (repaired), so nothing is missed between repair and the re-admitting
// epoch.
//
// The stale-leader race PR 2 documented here is now bounded by the lease:
// a demoted-but-unaware leader can replicate into a promoted backup only
// until its lease lapses (≤ one lease duration), it fences itself before
// the new epoch activates, and the divergence the window leaves behind is
// settled by the (epoch, version) repair order with the winning epoch's
// image prevailing.
func (s *Store) replicate(shard int, off int, body []byte) error {
	owners := s.ring().ownersShared(shard)
	targets := make([]int, 0, len(owners))
	for _, o := range owners {
		if o == s.me {
			continue
		}
		if (s.down[o] || s.cfgDownBit(o)) && !s.repaired[o] {
			continue
		}
		targets = append(targets, o)
	}
	if len(targets) == 0 {
		return nil
	}
	if err := s.repBuf.WriteAt(0, body); err != nil {
		return err
	}
	errs := make([]error, len(targets))

	// Phase 1: take every backup's slot version odd with one batched
	// FetchAdd burst; the prior values land in priorBuf.
	batch := s.batch
	for i, t := range targets {
		i := i
		batch.FetchAdd(t, uint64(off), 1, s.priorBuf, 8*i, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
	}
	if s.wholesaleFailure(batch.SubmitWait(), errs) {
		// Submission itself failed (e.g. cluster closing): the per-op
		// callbacks never ran, so no prior values landed — abandon
		// replication for this PUT.
		//lint:ignore seqlockbalance a backup left odd here heals: the next PUT's phase-1 prior check re-bumps it, and the per-lease stuck-slot scrub clears it if no PUT comes
		return s.failTargets(targets, errs)
	}
	// A backup whose version was left odd by a writer that died mid-
	// replication needs one extra bump to re-enter the odd (writing)
	// state; the final FetchAdd then lands it even again.
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		prior, err := s.priorBuf.Load64(8 * i)
		if err != nil {
			errs[i] = err
			continue
		}
		if prior&1 == 1 {
			if _, err := s.qp.FetchAdd(t, uint64(off), 1); err != nil {
				errs[i] = err
			}
		}
	}

	// Phase 2: land the slot body (everything after the version word)
	// on the backups still standing.
	staged := false
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		i := i
		batch.Write(t, uint64(off+8), s.repBuf, 8, len(body)-8, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		staged = true
	}
	if staged && s.wholesaleFailure(batch.SubmitWait(), errs) {
		// Without the bodies landed, publishing versions in phase 3
		// would stamp stale data as committed on the backups.
		//lint:ignore seqlockbalance backups stay odd deliberately — their bodies are unverified; odd reads as torn until re-replication or the stuck-slot scrub arbitrates
		return s.failTargets(targets, errs)
	}

	// Phase 3: publish the even, advanced version, and advance the
	// backup's shard-version word in the same burst — completing before
	// the origin acks, so a hot-key cache bound to the backup observes
	// the invalidation no later than the PUT's success.
	verOff := uint64(s.cfg.shardLineOff(shard) + shardLineVer)
	staged = false
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		i := i
		batch.FetchAdd(t, uint64(off), 1, nil, 0, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		batch.FetchAdd(t, verOff, 1, nil, 0, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		staged = true
	}
	if staged {
		s.wholesaleFailure(batch.SubmitWait(), errs)
	}

	for i := range targets {
		if errs[i] == nil {
			s.replicaWrites.Add(1)
		}
	}
	//lint:ignore seqlockbalance per-target failures can strand that backup odd; odd reads as torn (correct: its body is unverified) until repair or the stuck-slot scrub heals it
	return s.failTargets(targets, errs)
}

// wholesaleFailure handles a SubmitWait error that is NOT a per-operation
// remote error: the submission failed before the per-op callbacks could
// run, so every still-nil error slot is poisoned with it. Per-op remote
// errors are already recorded by the callbacks and report false here.
func (s *Store) wholesaleFailure(err error, errs []error) bool {
	if err == nil {
		return false
	}
	var re *sonuma.RemoteError
	if errors.As(err, &re) {
		return false
	}
	for i := range errs {
		if errs[i] == nil {
			errs[i] = err
		}
	}
	return true
}

// failTargets marks targets whose replication failed with a fabric error as
// down. The PUT itself still succeeds if the local commit did — degraded
// replication is reported through the stats, not the client.
func (s *Store) failTargets(targets []int, errs []error) error {
	for i, err := range errs {
		if err == nil {
			continue
		}
		s.replicaSkips.Add(1)
		if sonuma.IsNodeFailure(err) {
			s.markDown(targets[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ring resize

// AddNode grows the placement ring by one member and waits until this
// store has applied the resize. Every member (including the joining node,
// which must already have Open'd a store) calls AddNode with the same
// argument; call it on the joining node FIRST — that call migrates every
// shard the node gains from the shards' current owners before returning,
// so by the time other members start routing to it the data is in place.
// Key→shard placement never changes on resize, and consistent hashing
// moves only the shards whose ring arcs the new node's points claim.
func (s *Store) AddNode(node int) error {
	if node < 0 || node >= s.n {
		return fmt.Errorf("kvs: node %d outside cluster [0,%d)", node, s.n)
	}
	req := &resizeReq{node: node, resp: make(chan error, 1)}
	select {
	case s.resizeCh <- req:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-req.resp:
		return err
	case <-s.done:
		select {
		case err := <-req.resp:
			return err
		default:
			return ErrClosed
		}
	}
}

// handleResize applies one AddNode on the serve loop. Only the joining
// node ever gains ownership on an AddNode (the new points can push other
// nodes out of an owner list, never pull them in), so migration runs only
// when this store IS the joining node.
func (s *Store) handleResize(req *resizeReq) {
	old := s.ring()
	if old.ContainsNode(req.node) {
		req.resp <- nil
		return
	}
	next := old.AddNode(req.node)
	if req.node == s.me {
		for _, shard := range MovedShards(old, next) {
			if !containsInt(next.ownersShared(shard), s.me) || containsInt(old.ownersShared(shard), s.me) {
				continue
			}
			if err := s.migrateShard(old, shard); err != nil {
				req.resp <- fmt.Errorf("kvs: migrating shard %d: %w", shard, err)
				return
			}
			s.shardsMigrated.Add(1)
		}
	}
	// Leadership derives from (ring, config down mask), so swapping the
	// ring re-derives it everywhere identically; parked PUTs may route to
	// the new member now.
	s.ringPub.Store(next)
	s.parkedDirty = true
	req.resp <- nil
}

// migrateShard pulls one shard's slot table from a current owner with
// batched one-sided reads, installing each stable slot locally before this
// node starts serving the shard.
func (s *Store) migrateShard(old *Ring, shard int) error {
	src := -1
	for _, o := range old.ownersShared(shard) {
		if o != s.me && !s.down[o] {
			src = o
			break
		}
	}
	if src < 0 {
		return ErrNoReplica
	}
	for base := 0; base < s.cfg.Buckets; base += migrateBurst {
		end := base + migrateBurst
		if end > s.cfg.Buckets {
			end = s.cfg.Buckets
		}
		for b := base; b < end; b++ {
			s.batch.Read(src, uint64(s.cfg.slotOff(shard, b)), s.migBuf, (b-base)*s.cfg.SlotSize, s.cfg.SlotSize, nil)
		}
		if err := s.batch.SubmitWait(); err != nil {
			return err
		}
		for b := base; b < end; b++ {
			if err := s.migrateSlot(src, shard, b, (b-base)*s.cfg.SlotSize); err != nil {
				return err
			}
		}
	}
	return nil
}

// migrateSlot installs one fetched slot image locally, re-reading while a
// writer on the source holds it odd. Installation follows the local
// seqlock discipline so one-sided readers that race the ring swap still
// see torn-or-stable.
func (s *Store) migrateSlot(src, shard, bucket, bufOff int) error {
	img := s.scratch
	if err := s.migBuf.ReadAt(bufOff, img); err != nil {
		return err
	}
	ver := binary.LittleEndian.Uint64(img)
	for r := 0; ver&1 == 1 && r < repairOddRetries; r++ {
		runtime.Gosched()
		if err := s.qp.Read(src, uint64(s.cfg.slotOff(shard, bucket)), s.migBuf, bufOff, s.cfg.SlotSize); err != nil {
			return err
		}
		if err := s.migBuf.ReadAt(bufOff, img); err != nil {
			return err
		}
		ver = binary.LittleEndian.Uint64(img)
	}
	if ver == 0 || ver&1 == 1 {
		// Empty — or held odd beyond patience, in which case the live
		// writer replicating it will overwrite us the moment the ring
		// swap makes us an owner.
		return nil
	}
	off := s.cfg.slotOff(shard, bucket)
	if err := s.mem.Store64(off, ver|1); err != nil {
		return err
	}
	if err := s.mem.WriteAt(off+8, img[8:]); err != nil {
		return err
	}
	err := s.mem.Store64(off, ver)
	s.bumpShardVer(shard) // migration installed new data: invalidate caches
	return err
}
