package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
)

// PUT-routing message kinds (first byte of every messenger payload).
const (
	msgPut byte = 1 // reqID u64, shard u32, keyLen u32, key, value
	msgAck byte = 2 // reqID u64, status u8
)

// Ack status codes.
const (
	ackOK byte = iota
	ackTooLarge
	ackShardFull
	ackWrongOwner
	ackNoReplica
	ackBadRequest
)

// Serve-loop pacing: spin (with Gosched) this many empty passes, then park
// on the put/failure channels with a poll tick for the messenger rings —
// inbound forwards are plain remote writes with no doorbell, so the tick
// bounds their idle-path latency.
const (
	idleSpins = 64
	idlePoll  = 100 * time.Microsecond
)

// ackErr converts an ack status into the client-visible error.
func ackErr(code byte) error {
	switch code {
	case ackOK:
		return nil
	case ackTooLarge:
		return ErrTooLarge
	case ackShardFull:
		return ErrShardFull
	case ackWrongOwner:
		return errors.New("kvs: routed to non-owner")
	case ackNoReplica:
		return ErrNoReplica
	case ackBadRequest:
		return fmt.Errorf("kvs: peer rejected PUT frame: %w", ErrBadStore)
	default:
		return fmt.Errorf("kvs: unknown ack status %d", code)
	}
}

// StoreStats is a point-in-time snapshot of one store's counters. The
// harness uses MsgsHandled to demonstrate the one-sided GET claim: GETs
// never produce a message, so a read-only phase leaves it unchanged on
// every node.
type StoreStats struct {
	MsgsHandled   uint64 // messenger messages processed by the serve loop
	PutsApplied   uint64 // PUTs applied locally as shard owner
	PutsForwarded uint64 // PUTs forwarded to a remote primary
	ReplicaWrites uint64 // slot images replicated to backups
	ReplicaSkips  uint64 // replications skipped (backup unreachable)
	Promotions    uint64 // shard leaderships moved off an unreachable node
	Rerouted      uint64 // pending PUTs re-routed after a failure event
}

// putReq is one PUT travelling from a colocated client into the serve loop.
type putReq struct {
	key, value []byte
	shard      int
	attempts   int
	resp       chan error
}

// fwdPut is a PUT forwarded to a remote primary, awaiting its ack.
type fwdPut struct {
	req    *putReq
	target int
}

// Store is one node's member of the sharded KV service. Every cluster node
// opens one; the store owns the node's slot tables, a Messenger for PUT
// routing, and a replication QP, all driven by a single serve goroutine.
// GETs never touch a Store — clients read slots with one-sided remote
// operations only.
type Store struct {
	ctx  *sonuma.Context
	cfg  Config
	ring *Ring
	me   int
	n    int

	mem   *sonuma.Memory
	qp    *sonuma.QP        // replication ops (serve goroutine only)
	batch *sonuma.Batch     // reusable replication burst (serve goroutine)
	msgr  *sonuma.Messenger // PUT routing (serve goroutine only)

	repBuf   *sonuma.Buffer // staging: slot body image for replica writes
	priorBuf *sonuma.Buffer // landing area for FetchAdd prior values
	scratch  []byte         // local slot image scratch (serve goroutine)
	txBuf    []byte         // outbound message scratch (serve goroutine)

	leader  []int  // per-shard index into Owners (serve goroutine)
	down    []bool // per-node unreachability (serve goroutine)
	downPub atomic.Pointer[[]bool]

	putCh   chan *putReq
	failCh  chan int
	stop    chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup
	pending map[uint64]*fwdPut
	nextID  uint64

	msgsHandled   atomic.Uint64
	putsApplied   atomic.Uint64
	putsForwarded atomic.Uint64
	replicaWrites atomic.Uint64
	replicaSkips  atomic.Uint64
	promotions    atomic.Uint64
	rerouted      atomic.Uint64
}

// Open joins this node to the sharded store on ctx. Every node of the
// cluster must call Open with an identical Config on the same context id,
// with a segment of at least Config.SegmentSize(cluster nodes) bytes. Open
// claims the node's fabric failure callbacks (OnFabricFailure and
// OnLinkFailure) for failover detection and starts the serve goroutine.
func Open(ctx *sonuma.Context, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	n := ctx.Node().Cluster().Nodes()
	if need := cfg.SegmentSize(n); ctx.SegmentSize() < need {
		return nil, fmt.Errorf("kvs: segment %d bytes < %d required", ctx.SegmentSize(), need)
	}
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = i
	}
	s := &Store{
		ctx:     ctx,
		cfg:     cfg,
		ring:    NewRing(nodes, cfg.Shards, cfg.Replicas, cfg.VNodes),
		me:      ctx.NodeID(),
		n:       n,
		mem:     ctx.Memory(),
		leader:  make([]int, cfg.Shards),
		down:    make([]bool, n),
		putCh:   make(chan *putReq, 128),
		failCh:  make(chan int, 64),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[uint64]*fwdPut),
		scratch: make([]byte, cfg.SlotSize),
	}
	s.publishDown()
	if err := writeHeader(s.mem, cfg); err != nil {
		return nil, err
	}
	var err error
	if s.qp, err = ctx.NewQP(0); err != nil {
		return nil, err
	}
	s.batch = s.qp.NewBatch()
	if s.repBuf, err = ctx.AllocBuffer(cfg.SlotSize); err != nil {
		return nil, err
	}
	if s.priorBuf, err = ctx.AllocBuffer(8 * n); err != nil {
		return nil, err
	}
	mqp, err := ctx.NewQP(0)
	if err != nil {
		return nil, err
	}
	mcfg := cfg.Messenger
	mcfg.RegionOffset = cfg.RegionOffset + cfg.RegionSize()
	if s.msgr, err = sonuma.NewMessenger(ctx, mqp, mcfg); err != nil {
		return nil, err
	}
	// Failover detection: the fabric's watchers report failed nodes and
	// links; the serve loop turns the ones affecting our reachability
	// into leadership promotions and PUT re-routes.
	node := ctx.Node()
	node.OnFabricFailure(func(failed int) { s.reportDown(failed) })
	node.OnLinkFailure(func(a, b int) {
		if a == s.me {
			s.reportDown(b)
		} else if b == s.me {
			s.reportDown(a)
		}
	})
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Ring exposes the store's placement ring (shared, immutable).
func (s *Store) Ring() *Ring { return s.ring }

// NodeID reports the node this store member runs on.
func (s *Store) NodeID() int { return s.me }

// Config reports the store's resolved configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		MsgsHandled:   s.msgsHandled.Load(),
		PutsApplied:   s.putsApplied.Load(),
		PutsForwarded: s.putsForwarded.Load(),
		ReplicaWrites: s.replicaWrites.Load(),
		ReplicaSkips:  s.replicaSkips.Load(),
		Promotions:    s.promotions.Load(),
		Rerouted:      s.rerouted.Load(),
	}
}

// reportDown queues a node-unreachable report for the serve loop. Safe from
// any goroutine (fabric watchers, clients observing read failures); reports
// are best-effort — a full queue drops them, and the fabric watcher will
// re-fire for real failures.
func (s *Store) reportDown(node int) {
	select {
	case s.failCh <- node:
	default:
	}
}

// downSnapshot returns the serve loop's latest published unreachability
// view. The returned slice is immutable.
func (s *Store) downSnapshot() []bool { return *s.downPub.Load() }

// publishDown republishes the down set for lock-free readers (clients).
func (s *Store) publishDown() {
	cp := make([]bool, len(s.down))
	copy(cp, s.down)
	s.downPub.Store(&cp)
}

// Close stops the serve goroutine. Pending PUTs fail with ErrClosed. Close
// the store before closing the cluster.
func (s *Store) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// put hands a PUT to the serve loop and waits for its outcome.
func (s *Store) put(req *putReq) error {
	select {
	case s.putCh <- req:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-req.resp:
		return err
	case <-s.done:
		// The serve loop exited; it fails everything it saw, but the
		// response may already be in flight.
		select {
		case err := <-req.resp:
			return err
		default:
			return ErrClosed
		}
	}
}

// serve is the store's single driving goroutine: it routes and applies
// PUTs, replicates to backups, answers forwarded PUTs, and reacts to
// failure reports. GET traffic never appears here. Like the RMC pipelines,
// it spin-polls briefly when work is flowing and parks (on its channels
// plus a short poll tick for the messenger rings) when idle, so an idle
// service does not pin cores.
func (s *Store) serve() {
	defer s.wg.Done()
	defer close(s.done)
	defer s.shutdown()
	idle := 0
	for {
		worked := false
		select {
		case <-s.stop:
			return
		default:
		}
	drainFail:
		for {
			select {
			case n := <-s.failCh:
				s.markDown(n)
				worked = true
			default:
				break drainFail
			}
		}
	drainPuts:
		for i := 0; i < 64; i++ {
			select {
			case req := <-s.putCh:
				s.handlePut(req)
				worked = true
			default:
				break drainPuts
			}
		}
		for {
			msg, ok, err := s.msgr.TryRecv()
			if err != nil {
				return // fabric closed underneath us
			}
			if !ok {
				break
			}
			worked = true
			s.handleMsg(msg)
		}
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < idleSpins {
			runtime.Gosched()
			continue
		}
		select {
		case <-s.stop:
			return
		case n := <-s.failCh:
			s.markDown(n)
		case req := <-s.putCh:
			s.handlePut(req)
		case <-time.After(idlePoll):
		}
		idle = 0
	}
}

// shutdown fails every pending and queued PUT so no client blocks forever.
func (s *Store) shutdown() {
	for id, f := range s.pending {
		delete(s.pending, id)
		f.req.resp <- ErrClosed
	}
	for {
		select {
		case req := <-s.putCh:
			req.resp <- ErrClosed
		default:
			return
		}
	}
}

// markDown records a node as unreachable, promotes the next replica for
// every shard it led, and re-routes pending PUTs that were forwarded to it.
// Eviction is sticky for the store's lifetime, even across RestoreLink: a
// replica that missed writes while unreachable would serve stale values if
// silently re-admitted, so rejoin is deliberately deferred to the
// anti-entropy repair item in ROADMAP.md.
func (s *Store) markDown(node int) {
	if node < 0 || node >= s.n || node == s.me || s.down[node] {
		return
	}
	s.down[node] = true
	s.publishDown()
	for shard := 0; shard < s.cfg.Shards; shard++ {
		owners := s.ring.Owners(shard)
		if owners[s.leader[shard]%len(owners)] == node {
			s.advanceLeader(shard)
		}
	}
	for id, f := range s.pending {
		if f.target != node {
			continue
		}
		delete(s.pending, id)
		s.rerouted.Add(1)
		s.handlePut(f.req)
	}
}

// advanceLeader moves a shard's leadership to the next reachable owner in
// ring order (a no-op leaving the current leader if none is reachable).
func (s *Store) advanceLeader(shard int) {
	owners := s.ring.Owners(shard)
	cur := s.leader[shard] % len(owners)
	for step := 1; step <= len(owners); step++ {
		next := (cur + step) % len(owners)
		if !s.down[owners[next]] || owners[next] == s.me {
			s.leader[shard] = next
			s.promotions.Add(1)
			return
		}
	}
}

// leaderOf reports the node currently leading a shard from this store's
// view, skipping known-unreachable owners.
func (s *Store) leaderOf(shard int) int {
	owners := s.ring.Owners(shard)
	cur := s.leader[shard] % len(owners)
	for step := 0; step < len(owners); step++ {
		n := owners[(cur+step)%len(owners)]
		if n == s.me || !s.down[n] {
			return n
		}
	}
	return owners[cur]
}

// handlePut routes one PUT: applied here when this node leads the shard,
// otherwise forwarded to the leader over the messenger.
func (s *Store) handlePut(req *putReq) {
	if req.attempts > s.ring.Replicas()+2 {
		req.resp <- ErrNoReplica
		return
	}
	req.attempts++
	target := s.leaderOf(req.shard)
	if target == s.me {
		req.resp <- s.applyPut(req.shard, req.key, req.value)
		return
	}
	if s.down[target] {
		req.resp <- ErrNoReplica
		return
	}
	id := s.nextID
	s.nextID++
	msg := s.encodePut(id, req.shard, req.key, req.value)
	if err := s.msgr.Send(target, msg); err != nil {
		if sonuma.IsNodeFailure(err) {
			// The leader became unreachable mid-send; mark it and
			// retry toward the promoted replica.
			s.markDown(target)
			s.handlePut(req)
			return
		}
		// Anything else (oversized frame, protocol corruption) is the
		// caller's problem, not grounds to evict a healthy node.
		req.resp <- err
		return
	}
	s.putsForwarded.Add(1)
	s.pending[id] = &fwdPut{req: req, target: target}
}

// encodePut frames a PUT request into the store's reusable send scratch.
func (s *Store) encodePut(id uint64, shard int, key, value []byte) []byte {
	need := 17 + len(key) + len(value)
	if cap(s.txBuf) < need {
		s.txBuf = make([]byte, need)
	}
	b := s.txBuf[:need]
	b[0] = msgPut
	binary.LittleEndian.PutUint64(b[1:], id)
	binary.LittleEndian.PutUint32(b[9:], uint32(shard))
	binary.LittleEndian.PutUint32(b[13:], uint32(len(key)))
	copy(b[17:], key)
	copy(b[17+len(key):], value)
	return b
}

// handleMsg dispatches one inbound messenger message.
func (s *Store) handleMsg(m sonuma.Message) {
	s.msgsHandled.Add(1)
	if len(m.Data) == 0 {
		return
	}
	switch m.Data[0] {
	case msgPut:
		if len(m.Data) < 17 {
			return // not even an id to ack
		}
		id := binary.LittleEndian.Uint64(m.Data[1:])
		shard := int(binary.LittleEndian.Uint32(m.Data[9:]))
		keyLen := int(binary.LittleEndian.Uint32(m.Data[13:]))
		if shard < 0 || shard >= s.cfg.Shards || keyLen <= 0 || 17+keyLen > len(m.Data) {
			// Mismatched configurations between members; a silent drop
			// would leave the origin's client blocked forever.
			s.ackTo(m.From, id, ackBadRequest)
			return
		}
		key := m.Data[17 : 17+keyLen]
		value := m.Data[17+keyLen:]
		s.ackTo(m.From, id, s.applyForwarded(shard, key, value))
	case msgAck:
		if len(m.Data) < 10 {
			return
		}
		id := binary.LittleEndian.Uint64(m.Data[1:])
		f, ok := s.pending[id]
		if !ok {
			return
		}
		delete(s.pending, id)
		code := m.Data[9]
		if code == ackWrongOwner {
			// The receiver no longer (or never) owned the shard; move
			// our leader view past it and retry.
			s.advanceLeader(f.req.shard)
			s.handlePut(f.req)
			return
		}
		f.req.resp <- ackErr(code)
	}
}

// applyForwarded applies a PUT received over the messenger, refusing shards
// this node does not own.
func (s *Store) applyForwarded(shard int, key, value []byte) byte {
	owner := false
	for _, o := range s.ring.Owners(shard) {
		if o == s.me {
			owner = true
			break
		}
	}
	if !owner {
		return ackWrongOwner
	}
	switch err := s.applyPut(shard, key, value); {
	case err == nil:
		return ackOK
	case errors.Is(err, ErrTooLarge):
		return ackTooLarge
	case errors.Is(err, ErrShardFull):
		return ackShardFull
	default:
		return ackNoReplica
	}
}

// ackTo answers a forwarded PUT. A failed ack send means the requester
// became unreachable; it will re-route via its own failure watcher.
func (s *Store) ackTo(node int, id uint64, code byte) {
	var b [10]byte
	b[0] = msgAck
	binary.LittleEndian.PutUint64(b[1:], id)
	b[9] = code
	_ = s.msgr.Send(node, b[:])
}

// findBucket probes a shard's local table for key, returning the bucket to
// write. Placement is decided here, by the applying owner, and replicated
// as a slot image at the same offset — so replicas never diverge on probe
// order.
func (s *Store) findBucket(shard int, key []byte) (int, error) {
	h := fnv1a(key)
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.cfg.Buckets))
		off := s.cfg.slotOff(shard, b)
		ver, err := s.mem.Load64(off)
		if err != nil {
			return 0, err
		}
		if ver == 0 {
			return b, nil
		}
		if err := s.mem.ReadAt(off, s.scratch); err != nil {
			return 0, err
		}
		keyLen := int(binary.LittleEndian.Uint32(s.scratch[8:]))
		if keyLen == len(key) && entryHdr+keyLen <= len(s.scratch) &&
			string(s.scratch[entryHdr:entryHdr+keyLen]) == string(key) {
			return b, nil
		}
	}
	return 0, ErrShardFull
}

// applyPut writes key=value into the local shard table under the slot's
// seqlock, then replicates the committed slot image to the shard's backups:
// a remote FetchAdd takes each backup's version odd, a remote write lands
// the body, and a final FetchAdd publishes the even, advanced version —
// the same torn-or-stable discipline one-sided readers rely on locally.
func (s *Store) applyPut(shard int, key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if entryHdr+len(key)+len(value) > s.cfg.SlotSize {
		return ErrTooLarge
	}
	bucket, err := s.findBucket(shard, key)
	if err != nil {
		return err
	}
	off := s.cfg.slotOff(shard, bucket)

	// Local commit under the slot seqlock.
	ver, err := s.mem.Load64(off)
	if err != nil {
		return err
	}
	body := s.scratch[:entryHdr+len(key)+len(value)]
	encodeEntryBody(body, key, value)
	if err := s.mem.Store64(off, ver|1); err != nil {
		return err
	}
	if err := s.mem.WriteAt(off+8, body[8:]); err != nil {
		return err
	}
	if err := s.mem.Store64(off, (ver|1)+1); err != nil {
		return err
	}
	s.putsApplied.Add(1)
	return s.replicate(shard, off, body)
}

// replicate pushes the committed slot body at off to every reachable
// backup of the shard. Unreachable backups are skipped (and marked down);
// availability wins over replica count, exactly like the promotion path.
//
// Known limitation (asymmetric partitions): failure views are per-node, so
// a reachable-but-demoted old primary can replicate into a backup that
// other nodes already promoted, racing the backup's own local seqlock. The
// checksum keeps torn data detectable, but an interleaving can strand a
// slot's version odd until the next PUT rewrites it; healing that without
// a writer is the anti-entropy repair item in ROADMAP.md.
func (s *Store) replicate(shard int, off int, body []byte) error {
	owners := s.ring.Owners(shard)
	targets := make([]int, 0, len(owners))
	for _, o := range owners {
		if o != s.me && !s.down[o] {
			targets = append(targets, o)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	if err := s.repBuf.WriteAt(0, body); err != nil {
		return err
	}
	errs := make([]error, len(targets))

	// Phase 1: take every backup's slot version odd with one batched
	// FetchAdd burst; the prior values land in priorBuf.
	batch := s.batch
	for i, t := range targets {
		i := i
		batch.FetchAdd(t, uint64(off), 1, s.priorBuf, 8*i, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
	}
	if s.wholesaleFailure(batch.SubmitWait(), errs) {
		// Submission itself failed (e.g. cluster closing): the per-op
		// callbacks never ran, so no prior values landed — abandon
		// replication for this PUT.
		return s.failTargets(targets, errs)
	}
	// A backup whose version was left odd by a writer that died mid-
	// replication needs one extra bump to re-enter the odd (writing)
	// state; the final FetchAdd then lands it even again.
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		prior, err := s.priorBuf.Load64(8 * i)
		if err != nil {
			errs[i] = err
			continue
		}
		if prior&1 == 1 {
			if _, err := s.qp.FetchAdd(t, uint64(off), 1); err != nil {
				errs[i] = err
			}
		}
	}

	// Phase 2: land the slot body (everything after the version word)
	// on the backups still standing.
	staged := false
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		i := i
		batch.Write(t, uint64(off+8), s.repBuf, 8, len(body)-8, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		staged = true
	}
	if staged && s.wholesaleFailure(batch.SubmitWait(), errs) {
		// Without the bodies landed, publishing versions in phase 3
		// would stamp stale data as committed on the backups.
		return s.failTargets(targets, errs)
	}

	// Phase 3: publish the even, advanced version.
	staged = false
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		i := i
		batch.FetchAdd(t, uint64(off), 1, nil, 0, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		staged = true
	}
	if staged {
		s.wholesaleFailure(batch.SubmitWait(), errs)
	}

	for i := range targets {
		if errs[i] == nil {
			s.replicaWrites.Add(1)
		}
	}
	return s.failTargets(targets, errs)
}

// wholesaleFailure handles a SubmitWait error that is NOT a per-operation
// remote error: the submission failed before the per-op callbacks could
// run, so every still-nil error slot is poisoned with it. Per-op remote
// errors are already recorded by the callbacks and report false here.
func (s *Store) wholesaleFailure(err error, errs []error) bool {
	if err == nil {
		return false
	}
	var re *sonuma.RemoteError
	if errors.As(err, &re) {
		return false
	}
	for i := range errs {
		if errs[i] == nil {
			errs[i] = err
		}
	}
	return true
}

// failTargets marks targets whose replication failed with a fabric error as
// down. The PUT itself still succeeds if the local commit did — degraded
// replication is reported through the stats, not the client.
func (s *Store) failTargets(targets []int, errs []error) error {
	for i, err := range errs {
		if err == nil {
			continue
		}
		s.replicaSkips.Add(1)
		if sonuma.IsNodeFailure(err) {
			s.markDown(targets[i])
		}
	}
	return nil
}
