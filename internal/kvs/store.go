package kvs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
)

// Messenger message kinds (first byte of every messenger payload).
const (
	msgPut       byte = 1 // reqID u64, shard u32, keyLen u32, key, value
	msgAck       byte = 2 // reqID u64, status u8
	msgRepair    byte = 3 // shard u32, bucket u32, ver u64, slot body
	msgRepairEnd byte = 4 // token u64: all diffs for this repair streamed
	msgRepairAck byte = 5 // token u64: peer applied everything up to End
)

// Ack status codes.
const (
	ackOK byte = iota
	ackTooLarge
	ackShardFull
	ackWrongOwner
	ackNoReplica
	ackBadRequest
)

// Serve-loop pacing: spin (with Gosched) this many empty passes, then park
// on the put/failure channels with a poll tick for the messenger rings —
// inbound forwards are plain remote writes with no doorbell, so the tick
// bounds their idle-path latency.
const (
	idleSpins = 64
	idlePoll  = 100 * time.Microsecond
)

// Anti-entropy repair and migration tuning.
const (
	// repairVerBurst is how many peer slot-version words one batched
	// one-sided read burst fetches during a repair scan.
	repairVerBurst = 32
	// repairOddRetries bounds re-reads of a remotely odd slot version
	// before treating it as stuck (a live writer clears it in one
	// replication round trip; a dead writer never does).
	repairOddRetries = 8
	// repairProbeTimeout bounds the responsiveness probe sent before any
	// diffs: a reachable-but-silent peer (store closed, serve loop
	// wedged) costs a short abort instead of a full stream.
	repairProbeTimeout = time.Second
	// repairAckTimeout bounds the wait for a peer to acknowledge the end
	// of a repair stream. A peer that is reachable but not serving (its
	// store closed) would otherwise wedge the repairing serve loop.
	repairAckTimeout = 5 * time.Second
	// healRetryMax caps the backoff between repair retries against a
	// reachable peer whose repair keeps aborting.
	healRetryMax = 30 * time.Second
	// migrateBurst is how many whole slots one batched one-sided read
	// burst fetches during shard migration.
	migrateBurst = 8
)

// ackErr converts an ack status into the client-visible error.
func ackErr(code byte) error {
	switch code {
	case ackOK:
		return nil
	case ackTooLarge:
		return ErrTooLarge
	case ackShardFull:
		return ErrShardFull
	case ackWrongOwner:
		return errors.New("kvs: routed to non-owner")
	case ackNoReplica:
		return ErrNoReplica
	case ackBadRequest:
		return fmt.Errorf("kvs: peer rejected PUT frame: %w", ErrBadStore)
	default:
		return fmt.Errorf("kvs: unknown ack status %d", code)
	}
}

// StoreStats is a point-in-time snapshot of one store's counters. The
// harness uses MsgsHandled to demonstrate the one-sided GET claim: GETs
// never produce a message, so a read-only phase leaves it unchanged on
// every node.
type StoreStats struct {
	MsgsHandled    uint64 // messenger messages processed by the serve loop
	PutsApplied    uint64 // PUTs applied locally as shard owner
	PutsForwarded  uint64 // PUTs forwarded to a remote primary
	ReplicaWrites  uint64 // slot images replicated to backups
	ReplicaSkips   uint64 // replications skipped (backup unreachable)
	Promotions     uint64 // shard leaderships moved off an unreachable node
	Rerouted       uint64 // pending PUTs re-routed after a failure event
	Rejoins        uint64 // peers re-admitted after anti-entropy repair
	RepairedSlots  uint64 // slot diffs streamed to healed peers
	RepairBytes    uint64 // messenger bytes spent on repair diffs
	ShardsMigrated uint64 // shards pulled from old owners after a ring resize
}

// putReq is one PUT travelling from a colocated client into the serve loop.
type putReq struct {
	key, value []byte
	shard      int
	attempts   int
	resp       chan error
}

// fwdPut is a PUT forwarded to a remote primary, awaiting its ack.
type fwdPut struct {
	req    *putReq
	target int
}

// Store is one node's member of the sharded KV service. Every cluster node
// opens one; the store owns the node's slot tables, a Messenger for PUT
// routing, and a replication QP, all driven by a single serve goroutine.
// GETs never touch a Store — clients read slots with one-sided remote
// operations only.
type Store struct {
	ctx     *sonuma.Context
	cfg     Config
	ringPub atomic.Pointer[Ring] // current placement ring (swapped by AddNode)
	me      int
	n       int

	mem   *sonuma.Memory
	qp    *sonuma.QP        // replication + repair ops (serve goroutine only)
	batch *sonuma.Batch     // reusable op burst (serve goroutine)
	msgr  *sonuma.Messenger // PUT routing + repair diffs (serve goroutine only)

	repBuf   *sonuma.Buffer // staging: slot body image for replica writes
	priorBuf *sonuma.Buffer // landing area for FetchAdd prior values
	verBuf   *sonuma.Buffer // landing area for repair version-scan bursts
	migBuf   *sonuma.Buffer // landing area for migration slot reads
	scratch  []byte         // local slot image scratch (serve goroutine)
	txBuf    []byte         // outbound message scratch (serve goroutine)

	leader  []int  // per-shard index into owners (serve goroutine)
	down    []bool // per-node unreachability (serve goroutine)
	downPub atomic.Pointer[[]bool]

	putCh    chan *putReq
	failCh   chan int
	healCh   chan struct{}
	resizeCh chan *resizeReq
	stop     chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup
	pending  map[uint64]*fwdPut
	nextID   uint64

	// Repair state (serve goroutine). wantAckPeer/wantAckToken/gotAck
	// track the msgRepairAck the loop in awaitRepairAck is waiting on.
	// While inRepair is set, inbound forwarded PUTs are deferred instead
	// of applied, so no write can race the repair's version scan — they
	// drain (and replicate, now including the re-admitted peer) as soon
	// as the repair concludes. healPending/healRetryAt/healBackoff drive
	// retries of aborted repairs from the serve loop's idle tick.
	wantAckPeer  int
	wantAckToken uint64
	gotAck       bool
	inRepair     bool
	deferred     []sonuma.Message
	healPending  bool
	healRetryAt  time.Time
	healBackoff  time.Duration

	msgsHandled    atomic.Uint64
	putsApplied    atomic.Uint64
	putsForwarded  atomic.Uint64
	replicaWrites  atomic.Uint64
	replicaSkips   atomic.Uint64
	promotions     atomic.Uint64
	rerouted       atomic.Uint64
	rejoins        atomic.Uint64
	repairedSlots  atomic.Uint64
	repairBytes    atomic.Uint64
	shardsMigrated atomic.Uint64
}

// resizeReq is one AddNode request travelling into the serve loop.
type resizeReq struct {
	node int
	resp chan error
}

// Open joins this node to the sharded store on ctx. Every node of the
// cluster must call Open with an identical Config on the same context id,
// with a segment of at least Config.SegmentSize(cluster nodes) bytes. Open
// claims the node's fabric failure callbacks (OnFabricFailure and
// OnLinkFailure) for failover detection and starts the serve goroutine.
func Open(ctx *sonuma.Context, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	n := ctx.Node().Cluster().Nodes()
	if need := cfg.SegmentSize(n); ctx.SegmentSize() < need {
		return nil, fmt.Errorf("kvs: segment %d bytes < %d required", ctx.SegmentSize(), need)
	}
	nodes := cfg.Members
	if len(nodes) == 0 {
		nodes = make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
	}
	for _, id := range nodes {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("kvs: ring member %d outside cluster [0,%d)", id, n)
		}
	}
	s := &Store{
		ctx:         ctx,
		cfg:         cfg,
		me:          ctx.NodeID(),
		n:           n,
		mem:         ctx.Memory(),
		leader:      make([]int, cfg.Shards),
		down:        make([]bool, n),
		putCh:       make(chan *putReq, 128),
		failCh:      make(chan int, 64),
		healCh:      make(chan struct{}, 1),
		resizeCh:    make(chan *resizeReq, 4),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		pending:     make(map[uint64]*fwdPut),
		scratch:     make([]byte, cfg.SlotSize),
		wantAckPeer: -1,
		healBackoff: time.Second,
	}
	s.ringPub.Store(NewRing(nodes, cfg.Shards, cfg.Replicas, cfg.VNodes))
	s.publishDown()
	if err := writeHeader(s.mem, cfg); err != nil {
		return nil, err
	}
	var err error
	if s.qp, err = ctx.NewQP(0); err != nil {
		return nil, err
	}
	s.batch = s.qp.NewBatch()
	if s.repBuf, err = ctx.AllocBuffer(cfg.SlotSize); err != nil {
		return nil, err
	}
	if s.priorBuf, err = ctx.AllocBuffer(8 * n); err != nil {
		return nil, err
	}
	if s.verBuf, err = ctx.AllocBuffer(8 * repairVerBurst); err != nil {
		return nil, err
	}
	if s.migBuf, err = ctx.AllocBuffer(migrateBurst * cfg.SlotSize); err != nil {
		return nil, err
	}
	mqp, err := ctx.NewQP(0)
	if err != nil {
		return nil, err
	}
	mcfg := cfg.Messenger
	mcfg.RegionOffset = cfg.RegionOffset + cfg.RegionSize()
	if s.msgr, err = sonuma.NewMessenger(ctx, mqp, mcfg); err != nil {
		return nil, err
	}
	// Failover detection: the fabric's watchers report failed nodes and
	// links; the serve loop turns the ones affecting our reachability
	// into leadership promotions and PUT re-routes. Restore events feed
	// the symmetric path: a heal scan that repairs and re-admits peers
	// that became reachable again.
	node := ctx.Node()
	node.OnFabricFailure(func(failed int) { s.reportDown(failed) })
	node.OnLinkFailure(func(a, b int) {
		if a == s.me {
			s.reportDown(b)
		} else if b == s.me {
			s.reportDown(a)
		}
	})
	node.OnFabricRestore(func(int) { s.reportHeal() })
	node.OnLinkRestore(func(a, b int) { s.reportHeal() })
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Ring returns the store's current placement ring — an immutable snapshot;
// AddNode publishes a new one.
func (s *Store) Ring() *Ring { return s.ringPub.Load() }

// ring is the internal spelling of Ring.
func (s *Store) ring() *Ring { return s.ringPub.Load() }

// NodeID reports the node this store member runs on.
func (s *Store) NodeID() int { return s.me }

// Config reports the store's resolved configuration.
func (s *Store) Config() Config { return s.cfg }

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		MsgsHandled:    s.msgsHandled.Load(),
		PutsApplied:    s.putsApplied.Load(),
		PutsForwarded:  s.putsForwarded.Load(),
		ReplicaWrites:  s.replicaWrites.Load(),
		ReplicaSkips:   s.replicaSkips.Load(),
		Promotions:     s.promotions.Load(),
		Rerouted:       s.rerouted.Load(),
		Rejoins:        s.rejoins.Load(),
		RepairedSlots:  s.repairedSlots.Load(),
		RepairBytes:    s.repairBytes.Load(),
		ShardsMigrated: s.shardsMigrated.Load(),
	}
}

// reportDown queues a node-unreachable report for the serve loop. Safe from
// any goroutine (fabric watchers, clients observing read failures); reports
// are best-effort — a full queue drops them, and the fabric watcher will
// re-fire for real failures.
func (s *Store) reportDown(node int) {
	select {
	case s.failCh <- node:
	default:
	}
}

// reportHeal queues a heal scan for the serve loop: some fabric link or
// node was restored, so peers in the down set may be reachable again. The
// channel is a single-slot latch — scans coalesce, and the scan itself
// checks per-peer reachability.
func (s *Store) reportHeal() {
	select {
	case s.healCh <- struct{}{}:
	default:
	}
}

// downSnapshot returns the serve loop's latest published unreachability
// view. The returned slice is immutable.
func (s *Store) downSnapshot() []bool { return *s.downPub.Load() }

// DownView returns a copy of the store's published unreachability view:
// DownView()[i] is true while node i is evicted (and not yet repaired and
// re-admitted). Harnesses use it to measure repair convergence.
func (s *Store) DownView() []bool {
	return append([]bool(nil), s.downSnapshot()...)
}

// publishDown republishes the down set for lock-free readers (clients).
func (s *Store) publishDown() {
	cp := make([]bool, len(s.down))
	copy(cp, s.down)
	s.downPub.Store(&cp)
}

// Close stops the serve goroutine. Pending PUTs fail with ErrClosed. Close
// the store before closing the cluster.
func (s *Store) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// put hands a PUT to the serve loop and waits for its outcome.
func (s *Store) put(req *putReq) error {
	select {
	case s.putCh <- req:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-req.resp:
		return err
	case <-s.done:
		// The serve loop exited; it fails everything it saw, but the
		// response may already be in flight.
		select {
		case err := <-req.resp:
			return err
		default:
			return ErrClosed
		}
	}
}

// serve is the store's single driving goroutine: it routes and applies
// PUTs, replicates to backups, answers forwarded PUTs, and reacts to
// failure reports. GET traffic never appears here. Like the RMC pipelines,
// it spin-polls briefly when work is flowing and parks (on its channels
// plus a short poll tick for the messenger rings) when idle, so an idle
// service does not pin cores.
func (s *Store) serve() {
	defer s.wg.Done()
	defer close(s.done)
	defer s.shutdown()
	idle := 0
	for {
		worked := false
		select {
		case <-s.stop:
			return
		default:
		}
	drainFail:
		for {
			select {
			case n := <-s.failCh:
				s.markDown(n)
				worked = true
			default:
				break drainFail
			}
		}
		select {
		case <-s.healCh:
			s.healScan()
			worked = true
		default:
		}
		select {
		case req := <-s.resizeCh:
			s.handleResize(req)
			worked = true
		default:
		}
	drainPuts:
		for i := 0; i < 64; i++ {
			select {
			case req := <-s.putCh:
				s.handlePut(req)
				worked = true
			default:
				break drainPuts
			}
		}
		for {
			msg, ok, err := s.msgr.TryRecv()
			if err != nil {
				return // fabric closed underneath us
			}
			if !ok {
				break
			}
			worked = true
			s.handleMsg(msg)
		}
		if worked {
			idle = 0
			continue
		}
		idle++
		if idle < idleSpins {
			runtime.Gosched()
			continue
		}
		select {
		case <-s.stop:
			return
		case n := <-s.failCh:
			s.markDown(n)
		case <-s.healCh:
			s.healScan()
		case req := <-s.resizeCh:
			s.handleResize(req)
		case req := <-s.putCh:
			s.handlePut(req)
		case <-time.After(idlePoll):
			s.retryHeal()
		}
		idle = 0
	}
}

// shutdown fails every pending and queued PUT so no client blocks forever.
func (s *Store) shutdown() {
	for id, f := range s.pending {
		delete(s.pending, id)
		f.req.resp <- ErrClosed
	}
	for {
		select {
		case req := <-s.putCh:
			req.resp <- ErrClosed
		case req := <-s.resizeCh:
			req.resp <- ErrClosed
		default:
			return
		}
	}
}

// markDown records a node as unreachable, promotes the next replica for
// every shard it led, and re-routes pending PUTs that were forwarded to it.
// Eviction holds until a heal scan re-admits the node: a replica that
// missed writes while unreachable would serve stale values if silently
// re-admitted, so rejoin happens only after markUp's anti-entropy repair
// pass brings its slot tables back in sync.
func (s *Store) markDown(node int) {
	if node < 0 || node >= s.n || node == s.me || s.down[node] {
		return
	}
	s.down[node] = true
	s.publishDown()
	for shard := 0; shard < s.cfg.Shards; shard++ {
		owners := s.ring().ownersShared(shard)
		if owners[s.leader[shard]%len(owners)] == node {
			s.advanceLeader(shard)
		}
	}
	for id, f := range s.pending {
		if f.target != node {
			continue
		}
		delete(s.pending, id)
		s.rerouted.Add(1)
		s.handlePut(f.req)
	}
}

// advanceLeader moves a shard's leadership to the next reachable owner in
// ring order (a no-op leaving the current leader if none is reachable).
func (s *Store) advanceLeader(shard int) {
	owners := s.ring().ownersShared(shard)
	cur := s.leader[shard] % len(owners)
	for step := 1; step <= len(owners); step++ {
		next := (cur + step) % len(owners)
		if !s.down[owners[next]] || owners[next] == s.me {
			s.leader[shard] = next
			s.promotions.Add(1)
			return
		}
	}
}

// leaderOf reports the node currently leading a shard from this store's
// view, skipping known-unreachable owners.
func (s *Store) leaderOf(shard int) int {
	owners := s.ring().ownersShared(shard)
	cur := s.leader[shard] % len(owners)
	for step := 0; step < len(owners); step++ {
		n := owners[(cur+step)%len(owners)]
		if n == s.me || !s.down[n] {
			return n
		}
	}
	return owners[cur]
}

// resetLeadership deterministically re-derives every shard's leader as the
// first reachable owner in ring order. Run whenever the down set shrinks
// (rejoin) or the ring changes (resize), so every store that shares a down
// view converges on the same leader for every shard — in particular,
// leadership returns to a shard's original primary once it is repaired.
func (s *Store) resetLeadership() {
	for shard := 0; shard < s.cfg.Shards; shard++ {
		owners := s.ring().ownersShared(shard)
		for i, o := range owners {
			if o == s.me || !s.down[o] {
				s.leader[shard] = i
				break
			}
		}
	}
}

// errRepairAborted reports a repair pass that could not complete: the peer
// fell off the fabric again mid-stream, or stayed silent past the ack
// timeout. The peer remains evicted; the next heal event retries.
var errRepairAborted = errors.New("kvs: repair aborted: peer unreachable or not serving")

// containsInt reports whether list holds v.
func containsInt(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// healScan re-admits every evicted peer the fabric can reach again, after
// an anti-entropy repair pass. Triggered by link/node restore events (and
// re-armed from the idle tick with backoff when a repair aborts); the
// per-peer reachability check makes it safe to run on any of them, because
// a single restored link does not imply the whole route is back.
func (s *Store) healScan() {
	cl := s.ctx.Node().Cluster()
	s.healPending = false
	for p := 0; p < s.n; p++ {
		if p == s.me || !s.down[p] || !cl.Reachable(s.me, p) {
			continue
		}
		s.markUp(p)
		if s.down[p] {
			// Repair aborted against a reachable peer: schedule a
			// retry with backoff rather than waiting for another
			// restore event that may never come.
			s.healPending = true
			s.healRetryAt = time.Now().Add(s.healBackoff)
			s.healBackoff *= 2
			if s.healBackoff > healRetryMax {
				s.healBackoff = healRetryMax
			}
		}
	}
}

// retryHeal re-runs the heal scan from the idle tick once the backoff
// deadline for a previously aborted repair passes.
func (s *Store) retryHeal() {
	if s.healPending && time.Now().After(s.healRetryAt) {
		s.healScan()
	}
}

// markUp is the inverse of markDown, with the crucial asymmetry the
// ROADMAP calls out: eviction was instant, re-admission must be earned.
// The peer missed every write replicated while it was unreachable, so we
// first stream it the diffs for every shard this node currently leads
// (repairPeer), and only when the peer acknowledges the full stream do we
// clear it from the published down view — from that point clients read
// from it and replication includes it again.
//
// While the repair is in flight, inbound forwarded PUTs are deferred
// (inRepair), so this store applies no write between the version scan and
// the down-view clear — the scan is therefore complete, and because each
// shard's diffs come only from its current leader, no slot ever has a
// repairer and a replicator writing it concurrently. The deferred PUTs
// drain right after, replicating to the re-admitted peer. Leadership then
// re-derives deterministically, returning each shard to its original
// primary.
//
// Known window (see ARCHITECTURE.md): this store clears the peer once its
// OWN led shards are verified; shards led by other stores are repaired by
// those leaders concurrently, so a client routing through this store's
// view can briefly read a not-yet-repaired shard from the peer. The
// window is bounded by the slowest concurrent repair; closing it fully
// needs the configuration-epoch authority tracked in ROADMAP.md.
func (s *Store) markUp(peer int) {
	s.inRepair = true
	err := s.repairPeer(peer)
	s.inRepair = false
	if err == nil {
		s.down[peer] = false
		s.publishDown()
		s.resetLeadership()
		s.rejoins.Add(1)
		s.healBackoff = time.Second
	}
	s.drainDeferred()
}

// drainDeferred applies the forwarded PUTs parked while a repair was in
// flight. Runs after the down view is updated, so their replication
// includes a freshly re-admitted peer.
func (s *Store) drainDeferred() {
	for len(s.deferred) > 0 {
		m := s.deferred[0]
		s.deferred = s.deferred[1:]
		s.handleMsg(m)
	}
	s.deferred = nil
}

// repairPeer streams this node's image of every shard it leads (and the
// peer owns) to the peer, then runs an end-of-stream barrier: the peer
// acknowledges a token only after applying everything before it, because
// the messenger delivers one sender's messages in order. Other shards are
// some other leader's responsibility — every store runs the same scan, so
// coverage is complete without coordination, and each shard has exactly
// one repairer (its leader), which is also the only node replicating new
// writes for it. A cheap probe barrier runs before any diff is read or
// streamed, so a reachable-but-silent peer aborts quickly.
func (s *Store) repairPeer(peer int) error {
	ring := s.ring()
	if !ring.ContainsNode(peer) {
		return nil // not a placement member: nothing to repair
	}
	if err := s.repairBarrier(peer, repairProbeTimeout); err != nil {
		return err
	}
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if s.leaderOf(shard) != s.me || !containsInt(ring.ownersShared(shard), peer) {
			continue
		}
		if err := s.repairShard(peer, shard); err != nil {
			return err
		}
	}
	return s.repairBarrier(peer, repairAckTimeout)
}

// repairBarrier sends an end-of-stream token and waits (bounded) for the
// peer to acknowledge it.
func (s *Store) repairBarrier(peer int, timeout time.Duration) error {
	token := s.nextID
	s.nextID++
	var b [9]byte
	b[0] = msgRepairEnd
	binary.LittleEndian.PutUint64(b[1:], token)
	if err := s.msgr.Send(peer, b[:]); err != nil {
		return err
	}
	return s.awaitRepairAck(peer, token, timeout)
}

// repairShard scans the peer's slot versions for one shard with batched
// one-sided reads and streams a diff for every slot the peer is missing,
// behind on, or stuck odd on.
func (s *Store) repairShard(peer, shard int) error {
	for base := 0; base < s.cfg.Buckets; base += repairVerBurst {
		end := base + repairVerBurst
		if end > s.cfg.Buckets {
			end = s.cfg.Buckets
		}
		for b := base; b < end; b++ {
			s.batch.Read(peer, uint64(s.cfg.slotOff(shard, b)), s.verBuf, 8*(b-base), 8, nil)
		}
		if err := s.batch.SubmitWait(); err != nil {
			return err
		}
		// Snapshot the burst before reusing verBuf for odd re-reads.
		for b := base; b < end; b++ {
			remote, err := s.verBuf.Load64(8 * (b - base))
			if err != nil {
				return err
			}
			if err := s.repairSlot(peer, shard, b, remote); err != nil {
				return err
			}
		}
	}
	return nil
}

// repairSlot compares one slot's local and remote versions and streams the
// local image when the peer needs it. Version words are comparable across
// replicas because every replica starts at zero and advances by exactly
// two per applied update; a lagging version is a count of missed writes.
func (s *Store) repairSlot(peer, shard, bucket int, remote uint64) error {
	off := s.cfg.slotOff(shard, bucket)
	// A transiently odd remote version usually means a live replicator is
	// mid-update there; re-read before declaring it stuck.
	for r := 0; remote&1 == 1 && r < repairOddRetries; r++ {
		runtime.Gosched()
		if err := s.qp.Read(peer, uint64(off), s.verBuf, 0, 8); err != nil {
			return err
		}
		v, err := s.verBuf.Load64(0)
		if err != nil {
			return err
		}
		remote = v
	}
	local, err := s.mem.Load64(off)
	if err != nil {
		return err
	}
	if local&1 == 1 {
		// Another replicator holds this very slot odd locally right now;
		// whatever it is writing is also being replicated to the peer.
		return nil
	}
	if remote&1 == 0 && remote >= local {
		// Peer is current — or ahead, meaning it applied writes we never
		// saw (an asymmetric partition let a stale leader keep serving
		// it). Version counting cannot arbitrate that without a config
		// epoch authority; we keep the peer's data and let the next
		// leader write win. Documented limitation, as in replicate.
		return nil
	}
	// Frame the local image as a diff: kind, shard, bucket, version, then
	// the slot body after the version word.
	used := 0
	if err := s.mem.ReadAt(off, s.scratch); err != nil {
		return err
	}
	if local != 0 {
		keyLen := int(binary.LittleEndian.Uint32(s.scratch[8:]))
		valLen := int(binary.LittleEndian.Uint32(s.scratch[12:]))
		used = entryHdr + keyLen + valLen
		if keyLen <= 0 || valLen < 0 || used > s.cfg.SlotSize {
			return nil // locally torn image; do not propagate garbage
		}
	}
	need := 17
	if used > 8 {
		need += used - 8
	}
	if cap(s.txBuf) < need {
		s.txBuf = make([]byte, need)
	}
	b := s.txBuf[:need]
	b[0] = msgRepair
	binary.LittleEndian.PutUint32(b[1:], uint32(shard))
	binary.LittleEndian.PutUint32(b[5:], uint32(bucket))
	binary.LittleEndian.PutUint64(b[9:], local)
	if used > 8 {
		copy(b[17:], s.scratch[8:used])
	}
	if err := s.msgr.Send(peer, b); err != nil {
		return err
	}
	s.repairedSlots.Add(1)
	s.repairBytes.Add(uint64(need))
	return nil
}

// awaitRepairAck drives the messenger until the peer acknowledges the
// repair token, handling other control traffic along the way (forwarded
// PUTs are deferred by handleMsg while inRepair). Bails if the peer falls
// off the fabric or stays silent past the timeout.
func (s *Store) awaitRepairAck(peer int, token uint64, timeout time.Duration) error {
	s.wantAckPeer, s.wantAckToken, s.gotAck = peer, token, false
	defer func() { s.wantAckPeer = -1 }()
	deadline := time.Now().Add(timeout)
	for !s.gotAck {
		msg, ok, err := s.msgr.TryRecv()
		if err != nil {
			return err
		}
		if ok {
			s.handleMsg(msg)
			continue
		}
		if !s.ctx.Node().Cluster().Reachable(s.me, peer) {
			return errRepairAborted
		}
		if time.Now().After(deadline) {
			return errRepairAborted
		}
		runtime.Gosched()
	}
	return nil
}

// applyRepair installs one streamed slot diff under the local seqlock
// discipline, so concurrent one-sided readers see torn-or-stable exactly
// as with replication. Stale diffs — from a repairer whose image is older
// than what replication already delivered here — are rejected by version.
func (s *Store) applyRepair(shard, bucket int, ver uint64, body []byte) {
	if shard < 0 || shard >= s.cfg.Shards || bucket < 0 || bucket >= s.cfg.Buckets {
		return
	}
	if 8+len(body) > s.cfg.SlotSize || ver&1 == 1 {
		return
	}
	off := s.cfg.slotOff(shard, bucket)
	cur, err := s.mem.Load64(off)
	if err != nil {
		return
	}
	// Accept strictly newer data, or any stable image when our slot is
	// stuck odd (its writer died mid-replication and will never finish).
	if !(ver > cur || (cur&1 == 1 && ver >= cur&^1)) {
		return
	}
	if ver == 0 {
		// The repairer has no entry here: clear the stuck slot.
		_ = s.mem.Store64(off, 0)
		return
	}
	if err := s.mem.Store64(off, cur|1); err != nil {
		return
	}
	if err := s.mem.WriteAt(off+8, body); err != nil {
		return
	}
	_ = s.mem.Store64(off, ver)
}

// handlePut routes one PUT: applied here when this node leads the shard,
// otherwise forwarded to the leader over the messenger.
func (s *Store) handlePut(req *putReq) {
	if req.attempts > s.ring().Replicas()+2 {
		req.resp <- ErrNoReplica
		return
	}
	req.attempts++
	target := s.leaderOf(req.shard)
	if target == s.me {
		req.resp <- s.applyPut(req.shard, req.key, req.value)
		return
	}
	if s.down[target] {
		req.resp <- ErrNoReplica
		return
	}
	id := s.nextID
	s.nextID++
	msg := s.encodePut(id, req.shard, req.key, req.value)
	if err := s.msgr.Send(target, msg); err != nil {
		if sonuma.IsNodeFailure(err) {
			// The leader became unreachable mid-send; mark it and
			// retry toward the promoted replica.
			s.markDown(target)
			s.handlePut(req)
			return
		}
		// Anything else (oversized frame, protocol corruption) is the
		// caller's problem, not grounds to evict a healthy node.
		req.resp <- err
		return
	}
	s.putsForwarded.Add(1)
	s.pending[id] = &fwdPut{req: req, target: target}
}

// encodePut frames a PUT request into the store's reusable send scratch.
func (s *Store) encodePut(id uint64, shard int, key, value []byte) []byte {
	need := 17 + len(key) + len(value)
	if cap(s.txBuf) < need {
		s.txBuf = make([]byte, need)
	}
	b := s.txBuf[:need]
	b[0] = msgPut
	binary.LittleEndian.PutUint64(b[1:], id)
	binary.LittleEndian.PutUint32(b[9:], uint32(shard))
	binary.LittleEndian.PutUint32(b[13:], uint32(len(key)))
	copy(b[17:], key)
	copy(b[17+len(key):], value)
	return b
}

// handleMsg dispatches one inbound messenger message.
func (s *Store) handleMsg(m sonuma.Message) {
	if len(m.Data) == 0 {
		s.msgsHandled.Add(1)
		return
	}
	// While a repair's version scan is in flight, forwarded PUTs are
	// parked: applying one would write a slot the scan may already have
	// passed, losing the write on the healing peer. They drain (counted
	// then) the moment the repair concludes.
	if s.inRepair && m.Data[0] == msgPut {
		s.deferred = append(s.deferred, m)
		return
	}
	s.msgsHandled.Add(1)
	switch m.Data[0] {
	case msgPut:
		if len(m.Data) < 17 {
			return // not even an id to ack
		}
		id := binary.LittleEndian.Uint64(m.Data[1:])
		shard := int(binary.LittleEndian.Uint32(m.Data[9:]))
		keyLen := int(binary.LittleEndian.Uint32(m.Data[13:]))
		if shard < 0 || shard >= s.cfg.Shards || keyLen <= 0 || 17+keyLen > len(m.Data) {
			// Mismatched configurations between members; a silent drop
			// would leave the origin's client blocked forever.
			s.ackTo(m.From, id, ackBadRequest)
			return
		}
		key := m.Data[17 : 17+keyLen]
		value := m.Data[17+keyLen:]
		s.ackTo(m.From, id, s.applyForwarded(shard, key, value))
	case msgAck:
		if len(m.Data) < 10 {
			return
		}
		id := binary.LittleEndian.Uint64(m.Data[1:])
		f, ok := s.pending[id]
		if !ok {
			return
		}
		delete(s.pending, id)
		code := m.Data[9]
		if code == ackWrongOwner {
			// The receiver no longer (or never) owned the shard; move
			// our leader view past it and retry.
			s.advanceLeader(f.req.shard)
			s.handlePut(f.req)
			return
		}
		f.req.resp <- ackErr(code)
	case msgRepair:
		if len(m.Data) < 17 {
			return
		}
		shard := int(binary.LittleEndian.Uint32(m.Data[1:]))
		bucket := int(binary.LittleEndian.Uint32(m.Data[5:]))
		ver := binary.LittleEndian.Uint64(m.Data[9:])
		s.applyRepair(shard, bucket, ver, m.Data[17:])
	case msgRepairEnd:
		if len(m.Data) < 9 {
			return
		}
		// Ordered delivery per sender means every diff before this token
		// is already applied; acknowledge so the repairer can re-admit
		// us. A failed ack send leaves the repairer to time out and
		// retry on the next heal event.
		var b [9]byte
		b[0] = msgRepairAck
		copy(b[1:], m.Data[1:9])
		_ = s.msgr.Send(m.From, b[:])
	case msgRepairAck:
		if len(m.Data) < 9 {
			return
		}
		token := binary.LittleEndian.Uint64(m.Data[1:])
		if m.From == s.wantAckPeer && token == s.wantAckToken {
			s.gotAck = true
		}
	}
}

// applyForwarded applies a PUT received over the messenger, refusing shards
// this node does not own.
func (s *Store) applyForwarded(shard int, key, value []byte) byte {
	owner := false
	for _, o := range s.ring().ownersShared(shard) {
		if o == s.me {
			owner = true
			break
		}
	}
	if !owner {
		return ackWrongOwner
	}
	switch err := s.applyPut(shard, key, value); {
	case err == nil:
		return ackOK
	case errors.Is(err, ErrTooLarge):
		return ackTooLarge
	case errors.Is(err, ErrShardFull):
		return ackShardFull
	default:
		return ackNoReplica
	}
}

// ackTo answers a forwarded PUT. A failed ack send means the requester
// became unreachable; it will re-route via its own failure watcher.
func (s *Store) ackTo(node int, id uint64, code byte) {
	var b [10]byte
	b[0] = msgAck
	binary.LittleEndian.PutUint64(b[1:], id)
	b[9] = code
	_ = s.msgr.Send(node, b[:])
}

// findBucket probes a shard's local table for key, returning the bucket to
// write. Placement is decided here, by the applying owner, and replicated
// as a slot image at the same offset — so replicas never diverge on probe
// order.
func (s *Store) findBucket(shard int, key []byte) (int, error) {
	h := fnv1a(key)
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.cfg.Buckets))
		off := s.cfg.slotOff(shard, b)
		ver, err := s.mem.Load64(off)
		if err != nil {
			return 0, err
		}
		if ver == 0 {
			return b, nil
		}
		if err := s.mem.ReadAt(off, s.scratch); err != nil {
			return 0, err
		}
		keyLen := int(binary.LittleEndian.Uint32(s.scratch[8:]))
		if keyLen == len(key) && entryHdr+keyLen <= len(s.scratch) &&
			string(s.scratch[entryHdr:entryHdr+keyLen]) == string(key) {
			return b, nil
		}
	}
	return 0, ErrShardFull
}

// applyPut writes key=value into the local shard table under the slot's
// seqlock, then replicates the committed slot image to the shard's backups:
// a remote FetchAdd takes each backup's version odd, a remote write lands
// the body, and a final FetchAdd publishes the even, advanced version —
// the same torn-or-stable discipline one-sided readers rely on locally.
func (s *Store) applyPut(shard int, key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if entryHdr+len(key)+len(value) > s.cfg.SlotSize {
		return ErrTooLarge
	}
	bucket, err := s.findBucket(shard, key)
	if err != nil {
		return err
	}
	off := s.cfg.slotOff(shard, bucket)

	// Local commit under the slot seqlock.
	ver, err := s.mem.Load64(off)
	if err != nil {
		return err
	}
	body := s.scratch[:entryHdr+len(key)+len(value)]
	encodeEntryBody(body, key, value)
	if err := s.mem.Store64(off, ver|1); err != nil {
		return err
	}
	if err := s.mem.WriteAt(off+8, body[8:]); err != nil {
		return err
	}
	if err := s.mem.Store64(off, (ver|1)+1); err != nil {
		return err
	}
	s.putsApplied.Add(1)
	return s.replicate(shard, off, body)
}

// replicate pushes the committed slot body at off to every reachable
// backup of the shard. Unreachable backups are skipped (and marked down);
// availability wins over replica count, exactly like the promotion path.
//
// Known limitation (asymmetric partitions): failure views are per-node, so
// a reachable-but-demoted old primary can replicate into a backup that
// other nodes already promoted, racing the backup's own local seqlock. The
// checksum keeps torn data detectable, but an interleaving can strand a
// slot's version odd until the next PUT rewrites it; healing that without
// a writer is the anti-entropy repair item in ROADMAP.md.
func (s *Store) replicate(shard int, off int, body []byte) error {
	owners := s.ring().ownersShared(shard)
	targets := make([]int, 0, len(owners))
	for _, o := range owners {
		if o != s.me && !s.down[o] {
			targets = append(targets, o)
		}
	}
	if len(targets) == 0 {
		return nil
	}
	if err := s.repBuf.WriteAt(0, body); err != nil {
		return err
	}
	errs := make([]error, len(targets))

	// Phase 1: take every backup's slot version odd with one batched
	// FetchAdd burst; the prior values land in priorBuf.
	batch := s.batch
	for i, t := range targets {
		i := i
		batch.FetchAdd(t, uint64(off), 1, s.priorBuf, 8*i, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
	}
	if s.wholesaleFailure(batch.SubmitWait(), errs) {
		// Submission itself failed (e.g. cluster closing): the per-op
		// callbacks never ran, so no prior values landed — abandon
		// replication for this PUT.
		return s.failTargets(targets, errs)
	}
	// A backup whose version was left odd by a writer that died mid-
	// replication needs one extra bump to re-enter the odd (writing)
	// state; the final FetchAdd then lands it even again.
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		prior, err := s.priorBuf.Load64(8 * i)
		if err != nil {
			errs[i] = err
			continue
		}
		if prior&1 == 1 {
			if _, err := s.qp.FetchAdd(t, uint64(off), 1); err != nil {
				errs[i] = err
			}
		}
	}

	// Phase 2: land the slot body (everything after the version word)
	// on the backups still standing.
	staged := false
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		i := i
		batch.Write(t, uint64(off+8), s.repBuf, 8, len(body)-8, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		staged = true
	}
	if staged && s.wholesaleFailure(batch.SubmitWait(), errs) {
		// Without the bodies landed, publishing versions in phase 3
		// would stamp stale data as committed on the backups.
		return s.failTargets(targets, errs)
	}

	// Phase 3: publish the even, advanced version.
	staged = false
	for i, t := range targets {
		if errs[i] != nil {
			continue
		}
		i := i
		batch.FetchAdd(t, uint64(off), 1, nil, 0, func(_ int, err error) {
			if err != nil {
				errs[i] = err
			}
		})
		staged = true
	}
	if staged {
		s.wholesaleFailure(batch.SubmitWait(), errs)
	}

	for i := range targets {
		if errs[i] == nil {
			s.replicaWrites.Add(1)
		}
	}
	return s.failTargets(targets, errs)
}

// wholesaleFailure handles a SubmitWait error that is NOT a per-operation
// remote error: the submission failed before the per-op callbacks could
// run, so every still-nil error slot is poisoned with it. Per-op remote
// errors are already recorded by the callbacks and report false here.
func (s *Store) wholesaleFailure(err error, errs []error) bool {
	if err == nil {
		return false
	}
	var re *sonuma.RemoteError
	if errors.As(err, &re) {
		return false
	}
	for i := range errs {
		if errs[i] == nil {
			errs[i] = err
		}
	}
	return true
}

// failTargets marks targets whose replication failed with a fabric error as
// down. The PUT itself still succeeds if the local commit did — degraded
// replication is reported through the stats, not the client.
func (s *Store) failTargets(targets []int, errs []error) error {
	for i, err := range errs {
		if err == nil {
			continue
		}
		s.replicaSkips.Add(1)
		if sonuma.IsNodeFailure(err) {
			s.markDown(targets[i])
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ring resize

// AddNode grows the placement ring by one member and waits until this
// store has applied the resize. Every member (including the joining node,
// which must already have Open'd a store) calls AddNode with the same
// argument; call it on the joining node FIRST — that call migrates every
// shard the node gains from the shards' current owners before returning,
// so by the time other members start routing to it the data is in place.
// Key→shard placement never changes on resize, and consistent hashing
// moves only the shards whose ring arcs the new node's points claim.
func (s *Store) AddNode(node int) error {
	if node < 0 || node >= s.n {
		return fmt.Errorf("kvs: node %d outside cluster [0,%d)", node, s.n)
	}
	req := &resizeReq{node: node, resp: make(chan error, 1)}
	select {
	case s.resizeCh <- req:
	case <-s.done:
		return ErrClosed
	}
	select {
	case err := <-req.resp:
		return err
	case <-s.done:
		select {
		case err := <-req.resp:
			return err
		default:
			return ErrClosed
		}
	}
}

// handleResize applies one AddNode on the serve loop. Only the joining
// node ever gains ownership on an AddNode (the new points can push other
// nodes out of an owner list, never pull them in), so migration runs only
// when this store IS the joining node.
func (s *Store) handleResize(req *resizeReq) {
	old := s.ring()
	if old.ContainsNode(req.node) {
		req.resp <- nil
		return
	}
	next := old.AddNode(req.node)
	if req.node == s.me {
		for _, shard := range MovedShards(old, next) {
			if !containsInt(next.ownersShared(shard), s.me) || containsInt(old.ownersShared(shard), s.me) {
				continue
			}
			if err := s.migrateShard(old, shard); err != nil {
				req.resp <- fmt.Errorf("kvs: migrating shard %d: %w", shard, err)
				return
			}
			s.shardsMigrated.Add(1)
		}
	}
	s.ringPub.Store(next)
	s.resetLeadership()
	req.resp <- nil
}

// migrateShard pulls one shard's slot table from a current owner with
// batched one-sided reads, installing each stable slot locally before this
// node starts serving the shard.
func (s *Store) migrateShard(old *Ring, shard int) error {
	src := -1
	for _, o := range old.ownersShared(shard) {
		if o != s.me && !s.down[o] {
			src = o
			break
		}
	}
	if src < 0 {
		return ErrNoReplica
	}
	for base := 0; base < s.cfg.Buckets; base += migrateBurst {
		end := base + migrateBurst
		if end > s.cfg.Buckets {
			end = s.cfg.Buckets
		}
		for b := base; b < end; b++ {
			s.batch.Read(src, uint64(s.cfg.slotOff(shard, b)), s.migBuf, (b-base)*s.cfg.SlotSize, s.cfg.SlotSize, nil)
		}
		if err := s.batch.SubmitWait(); err != nil {
			return err
		}
		for b := base; b < end; b++ {
			if err := s.migrateSlot(src, shard, b, (b-base)*s.cfg.SlotSize); err != nil {
				return err
			}
		}
	}
	return nil
}

// migrateSlot installs one fetched slot image locally, re-reading while a
// writer on the source holds it odd. Installation follows the local
// seqlock discipline so one-sided readers that race the ring swap still
// see torn-or-stable.
func (s *Store) migrateSlot(src, shard, bucket, bufOff int) error {
	img := s.scratch
	if err := s.migBuf.ReadAt(bufOff, img); err != nil {
		return err
	}
	ver := binary.LittleEndian.Uint64(img)
	for r := 0; ver&1 == 1 && r < repairOddRetries; r++ {
		runtime.Gosched()
		if err := s.qp.Read(src, uint64(s.cfg.slotOff(shard, bucket)), s.migBuf, bufOff, s.cfg.SlotSize); err != nil {
			return err
		}
		if err := s.migBuf.ReadAt(bufOff, img); err != nil {
			return err
		}
		ver = binary.LittleEndian.Uint64(img)
	}
	if ver == 0 || ver&1 == 1 {
		// Empty — or held odd beyond patience, in which case the live
		// writer replicating it will overwrite us the moment the ring
		// swap makes us an owner.
		return nil
	}
	off := s.cfg.slotOff(shard, bucket)
	if err := s.mem.Store64(off, ver|1); err != nil {
		return err
	}
	if err := s.mem.WriteAt(off+8, img[8:]); err != nil {
		return err
	}
	return s.mem.Store64(off, ver)
}
