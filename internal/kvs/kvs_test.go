package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sonuma"
)

func newStore(t *testing.T, buckets, slotSize int) (*Server, *Client) {
	t.Helper()
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	serverCtx, err := cl.Node(0).OpenContext(2, RegionSize(buckets, slotSize)+4096)
	if err != nil {
		t.Fatal(err)
	}
	clientCtx, err := cl.Node(1).OpenContext(2, 4096)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(serverCtx, buckets, slotSize)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := clientCtx.NewQP(32)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(clientCtx, qp, 0)
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

func TestPutGetRemote(t *testing.T) {
	srv, client := newStore(t, 256, 256)
	pairs := map[string]string{
		"alpha": "first value",
		"beta":  "second value",
		"gamma": "third value with a somewhat longer payload",
	}
	for k, v := range pairs {
		if err := srv.Put([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for k, v := range pairs {
		got, err := client.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get(%q) = %q, want %q", k, got, v)
		}
	}
}

func TestGetMissing(t *testing.T) {
	srv, client := newStore(t, 64, 128)
	if err := srv.Put([]byte("present"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
}

func TestUpdateVisible(t *testing.T) {
	srv, client := newStore(t, 64, 128)
	key := []byte("counter")
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := srv.Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := client.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: got %q want %q", i, got, val)
		}
	}
}

func TestCollisionProbing(t *testing.T) {
	// A tiny table forces probe chains.
	srv, client := newStore(t, 8, 128)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for i, k := range keys {
		if err := srv.Put([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		got, err := client.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if len(got) != 1 || got[0] != byte(i) {
			t.Fatalf("Get(%q) = %v, want [%d]", k, got, i)
		}
	}
}

func TestTooLarge(t *testing.T) {
	srv, _ := newStore(t, 8, 64)
	if err := srv.Put([]byte("k"), make([]byte, 200)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	// Self-verifying reads must never return a torn value while the
	// server updates the same key (multi-line entry forces the race
	// window open).
	srv, client := newStore(t, 32, 512)
	key := []byte("hot")
	vals := make([][]byte, 16)
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte('A' + i)}, 300)
	}
	if err := srv.Put(key, vals[0]); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.Put(key, vals[i%len(vals)]); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			// A realistic server does work between updates; a
			// zero-gap write loop can starve seqlock readers by
			// construction.
			for y := 0; y < 4; y++ {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < 300; i++ {
		got, err := client.Get(key)
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		// Any stable snapshot is uniform; a torn one would mix bytes.
		for _, b := range got[1:] {
			if b != got[0] {
				t.Fatalf("torn read slipped through checksum: %q", got[:16])
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestServerLocalGet(t *testing.T) {
	srv, _ := newStore(t, 64, 128)
	if err := srv.Put([]byte("k"), []byte("local")); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Get([]byte("k"))
	if err != nil || string(got) != "local" {
		t.Fatalf("local Get = %q, %v", got, err)
	}
}
