package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"sonuma"
)

// testConfig keeps the store small enough for fast tests while preserving
// multi-line entries (the torn-read window).
func testConfig() Config {
	return Config{Shards: 16, Replicas: 2, Buckets: 32, SlotSize: 256, VNodes: 16}
}

// newService builds an n-node cluster with one store member per node.
func newService(t *testing.T, n int, cfg Config) (*sonuma.Cluster, []*Store) {
	t.Helper()
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*Store, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(7, cfg.SegmentSize(n)+4096)
		if err != nil {
			cl.Close()
			t.Fatal(err)
		}
		if stores[i], err = Open(ctx, cfg); err != nil {
			cl.Close()
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
		cl.Close()
	})
	return cl, stores
}

func newTestClient(t *testing.T, s *Store) *Client {
	t.Helper()
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardStability checks the consistent-hashing invariants: key→shard
// placement never depends on the node count, and growing the cluster moves
// a shard's primary only onto the new node, for a bounded fraction of
// shards.
func TestShardStability(t *testing.T) {
	const shards, replicas, vnodes = 256, 2, 64
	nodes4 := []int{0, 1, 2, 3}
	nodes5 := []int{0, 1, 2, 3, 4}
	r4 := NewRing(nodes4, shards, replicas, vnodes)
	r5 := NewRing(nodes5, shards, replicas, vnodes)

	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if r4.ShardOf(key) != r5.ShardOf(key) {
			t.Fatalf("key %q changed shard when the cluster grew", key)
		}
	}

	moved := 0
	for s := 0; s < shards; s++ {
		o4, o5 := r4.Owners(s), r5.Owners(s)
		if len(o4) != replicas || len(o5) != replicas {
			t.Fatalf("shard %d: owner counts %d/%d, want %d", s, len(o4), len(o5), replicas)
		}
		seen := map[int]bool{}
		for _, o := range o5 {
			if seen[o] {
				t.Fatalf("shard %d: duplicate owner %d", s, o)
			}
			seen[o] = true
		}
		if o4[0] != o5[0] {
			moved++
			if o5[0] != 4 {
				t.Fatalf("shard %d: primary moved %d -> %d, not to the new node", s, o4[0], o5[0])
			}
		}
	}
	if moved == 0 {
		t.Fatal("no shard moved to the new node; ring is not spreading load")
	}
	// Expected movement is ~1/5 of shards; anything above 40% means the
	// ring lost the minimal-movement property.
	if moved > shards*2/5 {
		t.Fatalf("%d/%d primaries moved on grow; consistent hashing should bound this", moved, shards)
	}
}

// TestRingBalance ensures no node owns a wildly outsized share of primaries.
func TestRingBalance(t *testing.T) {
	const shards = 256
	nodes := []int{0, 1, 2, 3}
	r := NewRing(nodes, shards, 2, 64)
	counts := map[int]int{}
	for s := 0; s < shards; s++ {
		counts[r.Owners(s)[0]]++
	}
	for n, c := range counts {
		if c > shards/len(nodes)*3 {
			t.Fatalf("node %d leads %d/%d shards; ring is badly unbalanced", n, c, shards)
		}
	}
}

func TestPutGetSharded(t *testing.T) {
	const n = 4
	_, stores := newService(t, n, testConfig())
	clients := make([]*Client, n)
	for i, s := range stores {
		clients[i] = newTestClient(t, s)
	}
	const keys = 200
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		v := []byte(fmt.Sprintf("profile-%04d", i))
		if err := clients[i%n].Put(k, v); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	// Every key is visible from every node through one-sided reads.
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		want := fmt.Sprintf("profile-%04d", i)
		for c := 0; c < n; c++ {
			got, err := clients[c].Get(k)
			if err != nil {
				t.Fatalf("client %d Get(%q): %v", c, k, err)
			}
			if string(got) != want {
				t.Fatalf("client %d Get(%q) = %q, want %q", c, k, got, want)
			}
		}
	}
	if _, err := clients[0].Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	// PUTs crossed nodes, so forwarding and replication must have run.
	var forwarded, replicated uint64
	for _, s := range stores {
		st := s.Stats()
		forwarded += st.PutsForwarded
		replicated += st.ReplicaWrites
	}
	if forwarded == 0 {
		t.Fatal("no PUT was forwarded to a remote primary")
	}
	if replicated == 0 {
		t.Fatal("no slot image was replicated to a backup")
	}
}

func TestUpdateVisible(t *testing.T) {
	_, stores := newService(t, 3, testConfig())
	writer := newTestClient(t, stores[0])
	reader := newTestClient(t, stores[1])
	key := []byte("counter")
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := writer.Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := reader.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: got %q want %q", i, got, val)
		}
	}
}

func TestTooLarge(t *testing.T) {
	_, stores := newService(t, 2, testConfig())
	c := newTestClient(t, stores[0])
	if err := c.Put([]byte("k"), make([]byte, 4096)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestShardFull(t *testing.T) {
	cfg := testConfig()
	cfg.Buckets = 4
	_, stores := newService(t, 2, cfg)
	c := newTestClient(t, stores[0])
	ring := stores[0].Ring()
	target := ring.ShardOf([]byte("seed"))
	inserted := 0
	var err error
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("k-%d", i))
		if ring.ShardOf(k) != target {
			continue
		}
		if err = c.Put(k, []byte("v")); err != nil {
			break
		}
		inserted++
	}
	if !errors.Is(err, ErrShardFull) {
		t.Fatalf("expected ErrShardFull after %d inserts, got %v", inserted, err)
	}
	if inserted == 0 || inserted > cfg.Buckets {
		t.Fatalf("inserted %d keys into a %d-bucket shard", inserted, cfg.Buckets)
	}
}

func TestMultiGet(t *testing.T) {
	const n = 3
	_, stores := newService(t, n, testConfig())
	c := newTestClient(t, stores[0])
	const keys = 40
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("mg:%03d", i)), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A burst larger than MaxGetBatch, with a missing key mixed in.
	batch := make([][]byte, 0, keys+1)
	for i := 0; i < keys; i++ {
		batch = append(batch, []byte(fmt.Sprintf("mg:%03d", i)))
	}
	batch = append(batch, []byte("mg:absent"))
	vals, errs := c.MultiGet(batch)
	for i := 0; i < keys; i++ {
		if errs[i] != nil {
			t.Fatalf("MultiGet[%d]: %v", i, errs[i])
		}
		if want := fmt.Sprintf("val-%03d", i); string(vals[i]) != want {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, vals[i], want)
		}
	}
	if !errors.Is(errs[keys], ErrNotFound) {
		t.Fatalf("missing key: expected ErrNotFound, got %v", errs[keys])
	}
}

// TestTornRetryUnderPutLoad hammers one key with replicated PUTs while
// readers on other nodes GET it with one-sided reads; the version+checksum
// validation must never let a torn snapshot through. Run under -race in CI.
func TestTornRetryUnderPutLoad(t *testing.T) {
	const n = 3
	cfg := testConfig()
	cfg.SlotSize = 512 // multi-line entries keep the race window open
	_, stores := newService(t, n, cfg)

	key := []byte("hot")
	vals := make([][]byte, 8)
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte('A' + i)}, 300)
	}
	writer := newTestClient(t, stores[0])
	if err := writer.Put(key, vals[0]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.Put(key, vals[i%len(vals)]); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	var rg sync.WaitGroup
	for r := 1; r < n; r++ {
		reader := newTestClient(t, stores[r])
		rg.Add(1)
		go func(c *Client, node int) {
			defer rg.Done()
			for i := 0; i < 200; i++ {
				got, err := c.Get(key)
				if err != nil {
					if errors.Is(err, ErrRetryExhausted) {
						continue // writer kept the slot hot; legal
					}
					t.Errorf("reader %d: %v", node, err)
					return
				}
				for _, b := range got[1:] {
					if b != got[0] {
						t.Errorf("reader %d: torn read slipped through checksum: %q...", node, got[:8])
						return
					}
				}
			}
		}(reader, r)
	}
	rg.Wait()
	close(stop)
	wg.Wait()
}

// TestReplicaPromotionAfterFailLink cuts every fabric link of a shard
// primary mid-service and verifies clients fail GETs over to the backup,
// PUTs re-route to the promoted leader, and the stores record promotions.
func TestReplicaPromotionAfterFailLink(t *testing.T) {
	const n = 4
	cl, stores := newService(t, n, testConfig())
	client := newTestClient(t, stores[0])
	ring := stores[0].Ring()

	// A key whose primary is not the client's node.
	var key []byte
	victim := -1
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("fo:%03d", i))
		if p := ring.Owners(ring.ShardOf(k))[0]; p != 0 {
			key, victim = k, p
			break
		}
	}
	if key == nil {
		t.Fatal("no key with a non-client primary found")
	}
	if err := client.Put(key, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// The primary falls off the fabric: every link to it dies.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLink(victim, i)
		}
	}

	// GET fails over to the backup replica (retry while the failure
	// notification propagates).
	var got []byte
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if got, err = client.Get(key); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("Get after primary loss: %v", err)
	}
	if string(got) != "before" {
		t.Fatalf("Get after primary loss = %q, want %q", got, "before")
	}

	// PUT routes to the promoted leader.
	for attempt := 0; attempt < 50; attempt++ {
		if err = client.Put(key, []byte("after")); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("Put after primary loss: %v", err)
	}
	if got, err = client.Get(key); err != nil || string(got) != "after" {
		t.Fatalf("Get(updated) = %q, %v; want %q", got, err, "after")
	}

	var promotions uint64
	for i, s := range stores {
		if i == victim {
			continue
		}
		promotions += s.Stats().Promotions
	}
	if promotions == 0 {
		t.Fatal("no store recorded a leadership promotion")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	_, stores := newService(t, 2, testConfig())
	c := newTestClient(t, stores[0])
	if err := c.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put(empty key) = %v, want ErrEmptyKey", err)
	}
	if err := c.Put([]byte{}, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put(empty key) = %v, want ErrEmptyKey", err)
	}
}
