package kvs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"sonuma"
)

// testConfig keeps the store small enough for fast tests while preserving
// multi-line entries (the torn-read window). The short lease keeps epoch
// transitions (eviction grace, fencing deadlines) test-friendly.
func testConfig() Config {
	return Config{Shards: 16, Replicas: 2, Buckets: 32, SlotSize: 256, VNodes: 16,
		Lease: 50 * time.Millisecond}
}

// newService builds an n-node cluster with one store member per node.
func newService(t *testing.T, n int, cfg Config) (*sonuma.Cluster, []*Store) {
	t.Helper()
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
	if err != nil {
		t.Fatal(err)
	}
	stores := make([]*Store, n)
	for i := 0; i < n; i++ {
		ctx, err := cl.Node(i).OpenContext(7, cfg.SegmentSize(n)+4096)
		if err != nil {
			cl.Close()
			t.Fatal(err)
		}
		if stores[i], err = Open(ctx, cfg); err != nil {
			cl.Close()
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, s := range stores {
			s.Close()
		}
		cl.Close()
	})
	return cl, stores
}

func newTestClient(t *testing.T, s *Store) *Client {
	t.Helper()
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestShardStability checks the consistent-hashing invariants: key→shard
// placement never depends on the node count, and growing the cluster moves
// a shard's primary only onto the new node, for a bounded fraction of
// shards.
func TestShardStability(t *testing.T) {
	const shards, replicas, vnodes = 256, 2, 64
	nodes4 := []int{0, 1, 2, 3}
	nodes5 := []int{0, 1, 2, 3, 4}
	r4 := NewRing(nodes4, shards, replicas, vnodes)
	r5 := NewRing(nodes5, shards, replicas, vnodes)

	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if r4.ShardOf(key) != r5.ShardOf(key) {
			t.Fatalf("key %q changed shard when the cluster grew", key)
		}
	}

	moved := 0
	for s := 0; s < shards; s++ {
		o4, o5 := r4.Owners(s), r5.Owners(s)
		if len(o4) != replicas || len(o5) != replicas {
			t.Fatalf("shard %d: owner counts %d/%d, want %d", s, len(o4), len(o5), replicas)
		}
		seen := map[int]bool{}
		for _, o := range o5 {
			if seen[o] {
				t.Fatalf("shard %d: duplicate owner %d", s, o)
			}
			seen[o] = true
		}
		if o4[0] != o5[0] {
			moved++
			if o5[0] != 4 {
				t.Fatalf("shard %d: primary moved %d -> %d, not to the new node", s, o4[0], o5[0])
			}
		}
	}
	if moved == 0 {
		t.Fatal("no shard moved to the new node; ring is not spreading load")
	}
	// Expected movement is ~1/5 of shards; anything above 40% means the
	// ring lost the minimal-movement property.
	if moved > shards*2/5 {
		t.Fatalf("%d/%d primaries moved on grow; consistent hashing should bound this", moved, shards)
	}
}

// TestRingBalance ensures no node owns a wildly outsized share of primaries.
func TestRingBalance(t *testing.T) {
	const shards = 256
	nodes := []int{0, 1, 2, 3}
	r := NewRing(nodes, shards, 2, 64)
	counts := map[int]int{}
	for s := 0; s < shards; s++ {
		counts[r.Owners(s)[0]]++
	}
	for n, c := range counts {
		if c > shards/len(nodes)*3 {
			t.Fatalf("node %d leads %d/%d shards; ring is badly unbalanced", n, c, shards)
		}
	}
}

func TestPutGetSharded(t *testing.T) {
	const n = 4
	_, stores := newService(t, n, testConfig())
	clients := make([]*Client, n)
	for i, s := range stores {
		clients[i] = newTestClient(t, s)
	}
	const keys = 200
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		v := []byte(fmt.Sprintf("profile-%04d", i))
		if err := clients[i%n].Put(k, v); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	// Every key is visible from every node through one-sided reads.
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("user:%04d", i))
		want := fmt.Sprintf("profile-%04d", i)
		for c := 0; c < n; c++ {
			got, err := clients[c].Get(k)
			if err != nil {
				t.Fatalf("client %d Get(%q): %v", c, k, err)
			}
			if string(got) != want {
				t.Fatalf("client %d Get(%q) = %q, want %q", c, k, got, want)
			}
		}
	}
	if _, err := clients[0].Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	// PUTs crossed nodes, so forwarding and replication must have run.
	var forwarded, replicated uint64
	for _, s := range stores {
		st := s.Stats()
		forwarded += st.PutsForwarded
		replicated += st.ReplicaWrites
	}
	if forwarded == 0 {
		t.Fatal("no PUT was forwarded to a remote primary")
	}
	if replicated == 0 {
		t.Fatal("no slot image was replicated to a backup")
	}
}

func TestUpdateVisible(t *testing.T) {
	_, stores := newService(t, 3, testConfig())
	writer := newTestClient(t, stores[0])
	reader := newTestClient(t, stores[1])
	key := []byte("counter")
	for i := 0; i < 10; i++ {
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := writer.Put(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := reader.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("iteration %d: got %q want %q", i, got, val)
		}
	}
}

func TestTooLarge(t *testing.T) {
	_, stores := newService(t, 2, testConfig())
	c := newTestClient(t, stores[0])
	if err := c.Put([]byte("k"), make([]byte, 4096)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestShardFull(t *testing.T) {
	cfg := testConfig()
	cfg.Buckets = 4
	_, stores := newService(t, 2, cfg)
	c := newTestClient(t, stores[0])
	ring := stores[0].Ring()
	target := ring.ShardOf([]byte("seed"))
	inserted := 0
	var err error
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("k-%d", i))
		if ring.ShardOf(k) != target {
			continue
		}
		if err = c.Put(k, []byte("v")); err != nil {
			break
		}
		inserted++
	}
	if !errors.Is(err, ErrShardFull) {
		t.Fatalf("expected ErrShardFull after %d inserts, got %v", inserted, err)
	}
	if inserted == 0 || inserted > cfg.Buckets {
		t.Fatalf("inserted %d keys into a %d-bucket shard", inserted, cfg.Buckets)
	}
}

func TestMultiGet(t *testing.T) {
	const n = 3
	_, stores := newService(t, n, testConfig())
	c := newTestClient(t, stores[0])
	const keys = 40
	for i := 0; i < keys; i++ {
		if err := c.Put([]byte(fmt.Sprintf("mg:%03d", i)), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// A burst larger than MaxGetBatch, with a missing key mixed in.
	batch := make([][]byte, 0, keys+1)
	for i := 0; i < keys; i++ {
		batch = append(batch, []byte(fmt.Sprintf("mg:%03d", i)))
	}
	batch = append(batch, []byte("mg:absent"))
	vals, errs := c.MultiGet(batch)
	for i := 0; i < keys; i++ {
		if errs[i] != nil {
			t.Fatalf("MultiGet[%d]: %v", i, errs[i])
		}
		if want := fmt.Sprintf("val-%03d", i); string(vals[i]) != want {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, vals[i], want)
		}
	}
	if !errors.Is(errs[keys], ErrNotFound) {
		t.Fatalf("missing key: expected ErrNotFound, got %v", errs[keys])
	}
}

// TestTornRetryUnderPutLoad hammers one key with replicated PUTs while
// readers on other nodes GET it with one-sided reads; the version+checksum
// validation must never let a torn snapshot through. Run under -race in CI.
func TestTornRetryUnderPutLoad(t *testing.T) {
	const n = 3
	cfg := testConfig()
	cfg.SlotSize = 512 // multi-line entries keep the race window open
	_, stores := newService(t, n, cfg)

	key := []byte("hot")
	vals := make([][]byte, 8)
	for i := range vals {
		vals[i] = bytes.Repeat([]byte{byte('A' + i)}, 300)
	}
	writer := newTestClient(t, stores[0])
	if err := writer.Put(key, vals[0]); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.Put(key, vals[i%len(vals)]); err != nil {
				t.Errorf("writer: %v", err)
				return
			}
		}
	}()

	var rg sync.WaitGroup
	for r := 1; r < n; r++ {
		reader := newTestClient(t, stores[r])
		rg.Add(1)
		go func(c *Client, node int) {
			defer rg.Done()
			for i := 0; i < 200; i++ {
				got, err := c.Get(key)
				if err != nil {
					if errors.Is(err, ErrRetryExhausted) {
						continue // writer kept the slot hot; legal
					}
					t.Errorf("reader %d: %v", node, err)
					return
				}
				for _, b := range got[1:] {
					if b != got[0] {
						t.Errorf("reader %d: torn read slipped through checksum: %q...", node, got[:8])
						return
					}
				}
			}
		}(reader, r)
	}
	rg.Wait()
	close(stop)
	wg.Wait()
}

// TestReplicaPromotionAfterFailLink cuts every fabric link of a shard
// primary mid-service and verifies clients fail GETs over to the backup,
// PUTs re-route to the promoted leader, and the stores record promotions.
func TestReplicaPromotionAfterFailLink(t *testing.T) {
	const n = 4
	cl, stores := newService(t, n, testConfig())
	client := newTestClient(t, stores[0])
	ring := stores[0].Ring()

	// A key whose primary is not the client's node.
	var key []byte
	victim := -1
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("fo:%03d", i))
		if p := ring.Owners(ring.ShardOf(k))[0]; p != 0 {
			key, victim = k, p
			break
		}
	}
	if key == nil {
		t.Fatal("no key with a non-client primary found")
	}
	if err := client.Put(key, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// The primary falls off the fabric: every link to it dies.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLink(victim, i)
		}
	}

	// GET fails over to the backup replica (retry while the failure
	// notification propagates).
	var got []byte
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		if got, err = client.Get(key); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("Get after primary loss: %v", err)
	}
	if string(got) != "before" {
		t.Fatalf("Get after primary loss = %q, want %q", got, "before")
	}

	// PUT routes to the promoted leader.
	for attempt := 0; attempt < 50; attempt++ {
		if err = client.Put(key, []byte("after")); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("Put after primary loss: %v", err)
	}
	if got, err = client.Get(key); err != nil || string(got) != "after" {
		t.Fatalf("Get(updated) = %q, %v; want %q", got, err, "after")
	}

	var promotions uint64
	for i, s := range stores {
		if i == victim {
			continue
		}
		promotions += s.Stats().Promotions
	}
	if promotions == 0 {
		t.Fatal("no store recorded a leadership promotion")
	}
}

// TestOwnersDefensiveCopy proves a caller mutating an Owners result cannot
// corrupt placement: the ring hands out copies, and the store's routing
// state is immune to the mutation.
func TestOwnersDefensiveCopy(t *testing.T) {
	r := NewRing([]int{0, 1, 2, 3}, 64, 2, 32)
	for s := 0; s < r.Shards(); s++ {
		want := r.Owners(s)
		got := r.Owners(s)
		for i := range got {
			got[i] = -got[i] - 1000 // vandalize the returned slice
		}
		after := r.Owners(s)
		if len(after) != len(want) {
			t.Fatalf("shard %d: owner count changed after caller mutation", s)
		}
		for i := range after {
			if after[i] != want[i] {
				t.Fatalf("shard %d: owner %d changed %d -> %d after caller mutation",
					s, i, want[i], after[i])
			}
		}
	}
}

// TestRingAddNode checks the resize path: the old ring is untouched, the
// new ring contains the member, movement is bounded, ownership is only
// ever gained by the joining node, and MovedShards reports exactly the
// changed shards.
func TestRingAddNode(t *testing.T) {
	const shards = 256
	r4 := NewRing([]int{0, 1, 2, 3}, shards, 2, 64)
	r5 := r4.AddNode(4)
	if r4.ContainsNode(4) {
		t.Fatal("AddNode mutated the receiver")
	}
	if !r5.ContainsNode(4) {
		t.Fatal("AddNode result does not contain the new member")
	}
	if r5.AddNode(4) != r5 {
		t.Fatal("adding an existing member should return the receiver")
	}
	moved := MovedShards(r4, r5)
	movedSet := map[int]bool{}
	for _, s := range moved {
		movedSet[s] = true
	}
	for s := 0; s < shards; s++ {
		o4, o5 := r4.Owners(s), r5.Owners(s)
		changed := len(o4) != len(o5)
		for i := 0; !changed && i < len(o4); i++ {
			changed = o4[i] != o5[i]
		}
		if changed != movedSet[s] {
			t.Fatalf("shard %d: changed=%v but MovedShards says %v", s, changed, movedSet[s])
		}
		// Gained ownership may only go to the joining node.
		for _, o := range o5 {
			if o == 4 {
				continue
			}
			found := false
			for _, p := range o4 {
				if p == o {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("shard %d: node %d gained ownership on AddNode(4)", s, o)
			}
		}
	}
	// Expected owner-set movement is ~replicas/nodes = 40% of shards (the
	// new node claims its share of every owner list, not just primaries);
	// far above that means the ring lost the minimal-movement property.
	if len(moved) == 0 || len(moved) > shards*3/5 {
		t.Fatalf("%d/%d shards moved on AddNode; want bounded, nonzero movement", len(moved), shards)
	}
}

// waitDownObserved polls until every surviving store has victim in its
// published down view — the outage must be observed before a heal can
// exercise the repair path (an unobserved fail/restore pair is correctly
// coalesced away by the epoch-ordered watchers).
func waitDownObserved(t *testing.T, stores []*Store, victim int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for i, s := range stores {
			if i != victim && !s.downSnapshot()[victim] {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("eviction of node %d was never observed by all stores", victim)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitRejoined polls until every store's published down view clears every
// other node, i.e. the cluster fully re-admitted itself after a heal.
func waitRejoined(t *testing.T, stores []*Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		clear := true
		for _, s := range stores {
			for p, d := range s.downSnapshot() {
				if d && p != s.NodeID() {
					clear = false
				}
			}
		}
		if clear {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range stores {
				t.Logf("store %d down view: %v", i, s.downSnapshot())
			}
			t.Fatal("cluster did not re-admit all nodes after heal")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRejoinAfterHeal is the full lifecycle: fail → evict → write through
// the outage → restore → repair → rejoin. After the heal, every store must
// clear the victim from its down view, the victim must serve one-sided
// GETs with the CURRENT values (including every write it missed), and all
// replicas of every key must be byte-identical.
func TestRejoinAfterHeal(t *testing.T) {
	const n = 4
	cl, stores := newService(t, n, testConfig())
	client := newTestClient(t, stores[0])
	ring := stores[0].Ring()

	const keys = 120
	key := func(i int) []byte { return []byte(fmt.Sprintf("rj:%03d", i)) }
	for i := 0; i < keys; i++ {
		if err := client.Put(key(i), []byte(fmt.Sprintf("v1-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// The victim: a non-client node owning at least one shard.
	victim := -1
	for s := 0; s < ring.Shards() && victim < 0; s++ {
		for _, o := range ring.Owners(s) {
			if o != 0 {
				victim = o
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no victim found")
	}
	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLink(victim, i)
		}
	}

	// Overwrite every key during the outage; the victim misses all of it.
	// Retry while the failure notifications propagate.
	for i := 0; i < keys; i++ {
		var err error
		for attempt := 0; attempt < 100; attempt++ {
			if err = client.Put(key(i), []byte(fmt.Sprintf("v2-%03d", i))); err == nil {
				break
			}
		}
		if err != nil {
			t.Fatalf("Put(%q) during outage: %v", key(i), err)
		}
	}

	// Heal. The watchers drive repair + rejoin with no further help.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.RestoreLink(victim, i)
		}
	}
	waitRejoined(t, stores)

	var rejoins, repaired uint64
	for _, s := range stores {
		rejoins += s.Stats().Rejoins
		repaired += s.Stats().RepairedSlots
	}
	if rejoins == 0 {
		t.Fatal("no store recorded a rejoin")
	}
	if repaired == 0 {
		t.Fatal("rejoin happened but no slot diff was streamed (victim missed writes)")
	}

	// The rejoined replica serves one-sided GETs with current data, and
	// every replica of every key is byte-identical.
	for i := 0; i < keys; i++ {
		k := key(i)
		want := fmt.Sprintf("v2-%03d", i)
		for _, o := range stores[0].Ring().Owners(stores[0].Ring().ShardOf(k)) {
			got, err := client.GetReplica(o, k)
			if err != nil {
				t.Fatalf("GetReplica(%d, %q): %v", o, k, err)
			}
			if string(got) != want {
				t.Fatalf("GetReplica(%d, %q) = %q, want %q (replica divergence after repair)", o, k, got, want)
			}
		}
	}
}

// TestRejoinFixesStuckOddSlot plants a stuck-odd version (a writer that
// died mid-replication) on an evicted backup and verifies the repair pass
// lands a stable image even though the backup's version word was AHEAD of
// a clean even value. The victim must be a BACKUP: under configuration
// epochs a shard is only ever repaired by its epoch leader, and a stuck
// slot on a backup is precisely the dead-mid-replication case — a leader's
// own slots cannot be stuck by anyone else.
func TestRejoinFixesStuckOddSlot(t *testing.T) {
	const n = 3
	cl, stores := newService(t, n, testConfig())
	client := newTestClient(t, stores[0])
	ring := stores[0].Ring()

	// A key whose shard a non-client node BACKS (not leads), so the
	// surviving leader repairs the planted slot.
	var k []byte
	victim := -1
	for i := 0; i < 1000 && victim < 0; i++ {
		cand := []byte(fmt.Sprintf("odd:%03d", i))
		owners := ring.Owners(ring.ShardOf(cand))
		for _, o := range owners[1:] {
			if o != 0 && owners[0] != o {
				k, victim = cand, o
				break
			}
		}
	}
	if err := client.Put(k, []byte("stable")); err != nil {
		t.Fatal(err)
	}

	// Evict the victim, then emulate the dead mid-replication writer: take
	// the victim's local slot version odd with no body following.
	for i := 0; i < n; i++ {
		if i != victim {
			cl.FailLink(victim, i)
		}
	}
	waitDownObserved(t, stores, victim)
	shard := ring.ShardOf(k)
	vs := stores[victim]
	bucket, err := vs.findBucket(shard, k)
	if err != nil {
		t.Fatal(err)
	}
	off := vs.cfg.slotOff(shard, bucket)
	ver, err := vs.mem.Load64(off)
	if err != nil {
		t.Fatal(err)
	}
	if err := vs.mem.Store64(off, ver|1); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < n; i++ {
		if i != victim {
			cl.RestoreLink(victim, i)
		}
	}
	waitRejoined(t, stores)

	got, err := client.GetReplica(victim, k)
	if err != nil {
		t.Fatalf("GetReplica after stuck-odd repair: %v", err)
	}
	if string(got) != "stable" {
		t.Fatalf("GetReplica = %q, want %q", got, "stable")
	}
	if v, _ := vs.mem.Load64(off); v&1 == 1 {
		t.Fatalf("slot version still odd (%d) after repair", v)
	}
}

// TestStoreAddNodeMigration grows a live service onto a cluster node that
// was not an initial ring member: the joining store migrates the shards it
// gains before serving them, and afterwards every key reads correctly from
// every replica, including the new one.
func TestStoreAddNodeMigration(t *testing.T) {
	const n = 5
	cfg := testConfig()
	cfg.Members = []int{0, 1, 2, 3} // node 4 opens a store but owns nothing yet
	_, stores := newService(t, n, cfg)
	client := newTestClient(t, stores[0])

	const keys = 150
	key := func(i int) []byte { return []byte(fmt.Sprintf("grow:%03d", i)) }
	for i := 0; i < keys; i++ {
		if err := client.Put(key(i), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Joining node first (it migrates before serving), then the rest.
	if err := stores[4].AddNode(4); err != nil {
		t.Fatalf("AddNode on joining store: %v", err)
	}
	if stores[4].Stats().ShardsMigrated == 0 {
		t.Fatal("joining store migrated no shards")
	}
	for i := 0; i < 4; i++ {
		if err := stores[i].AddNode(4); err != nil {
			t.Fatalf("AddNode on store %d: %v", i, err)
		}
	}
	ring := stores[0].Ring()
	if !ring.ContainsNode(4) {
		t.Fatal("ring does not contain the new member after resize")
	}

	// Every key reads correctly through normal routing and from every
	// replica directly — including shards now owned by node 4.
	newOwned := 0
	for i := 0; i < keys; i++ {
		k := key(i)
		want := fmt.Sprintf("val-%03d", i)
		if got, err := client.Get(k); err != nil || string(got) != want {
			t.Fatalf("Get(%q) after resize = %q, %v; want %q", k, got, err, want)
		}
		for _, o := range ring.Owners(ring.ShardOf(k)) {
			got, err := client.GetReplica(o, k)
			if err != nil {
				t.Fatalf("GetReplica(%d, %q) after resize: %v", o, k, err)
			}
			if string(got) != want {
				t.Fatalf("GetReplica(%d, %q) = %q, want %q", o, k, got, want)
			}
			if o == 4 {
				newOwned++
			}
		}
	}
	if newOwned == 0 {
		t.Fatal("no tested key landed on the new node; resize moved nothing")
	}

	// Writes after the resize replicate to the new member too.
	if err := client.Put(key(0), []byte("post-resize")); err != nil {
		t.Fatal(err)
	}
	k0 := key(0)
	for _, o := range ring.Owners(ring.ShardOf(k0)) {
		got, err := client.GetReplica(o, k0)
		if err != nil || string(got) != "post-resize" {
			t.Fatalf("replica %d after post-resize write: %q, %v", o, got, err)
		}
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	_, stores := newService(t, 2, testConfig())
	c := newTestClient(t, stores[0])
	if err := c.Put(nil, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put(empty key) = %v, want ErrEmptyKey", err)
	}
	if err := c.Put([]byte{}, []byte("v")); !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("Put(empty key) = %v, want ErrEmptyKey", err)
	}
}
