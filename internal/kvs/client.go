package kvs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sonuma"
)

// tornRetries bounds the seqlock retries against one replica before the
// client moves on to the next one (seqlocks favor the writer by design, so
// a hot slot can stay torn for a while).
const tornRetries = 256

// MaxGetBatch is the largest GET burst MultiGet issues as one batched
// work-queue publish.
const MaxGetBatch = 16

// clientSeq differentiates the picker streams of clients opened on the
// same node, so colocated workers explore replicas independently.
var clientSeq atomic.Uint64

// Client issues operations against the sharded store. GETs (and MultiGet
// bursts) are pure one-sided remote reads on the client's own QP; PUTs are
// handed to the colocated Store member, which routes them to the shard
// primary over the messenger. A Client must be driven by a single
// goroutine; open one per worker goroutine.
type Client struct {
	store *Store
	qp    *sonuma.QP
	buf   *sonuma.Buffer // MaxGetBatch slot images
	batch *sonuma.Batch
	entry []byte     // single-slot parse scratch
	resp  chan error // reusable PUT response channel

	picker *replicaPicker // replica-spread GETs (Config.ReadSpread)
	elig   []int          // pickTarget candidate scratch
	hot    *hotCache      // hot-key read cache (Config.HotKeys > 0)
	nReads uint64         // successful reads, for load sampling

	opErr  [MaxGetBatch]error // MultiGet per-op completion errors
	opDone [MaxGetBatch]bool  // MultiGet per-op completion fired
}

// NewClient opens a client on this store member. It validates the remote
// geometry with a one-sided read of a peer member's store header — the
// same mechanism every later GET uses — so every member of the service
// must have called Open before clients attach.
func (s *Store) NewClient() (*Client, error) {
	qp, err := s.ctx.NewQP(0)
	if err != nil {
		return nil, err
	}
	buf, err := s.ctx.AllocBuffer(MaxGetBatch * s.cfg.SlotSize)
	if err != nil {
		return nil, err
	}
	c := &Client{
		store: s,
		qp:    qp,
		buf:   buf,
		entry: make([]byte, s.cfg.SlotSize),
		resp:  make(chan error, 1),
	}
	c.batch = qp.NewBatch()
	if s.cfg.ReadSpread {
		c.picker = newReplicaPicker(s.n, uint64(s.me)<<32|clientSeq.Add(1))
		c.elig = make([]int, 0, s.cfg.Replicas+1)
	}
	if s.cfg.HotKeys > 0 {
		probeBuf, err := s.ctx.AllocBuffer(s.cfg.Shards * shardLineSize)
		if err != nil {
			return nil, err
		}
		c.hot = &hotCache{
			capacity: s.cfg.HotKeys,
			lease:    s.cfg.Lease,
			sketch:   newSpaceSaver(2 * s.cfg.HotKeys),
			entries:  make(map[string][]byte, s.cfg.HotKeys),
			binds:    make(map[int]*shardBind),
			probeBuf: probeBuf,
		}
	}
	// Validate remote geometry with a one-sided read of a peer's store
	// header — the same mechanism every later GET uses. Any shard led by
	// another node will do; only a single-node cluster has none.
	probe := -1
	for shard := 0; shard < s.ring().Shards() && probe < 0; shard++ {
		for _, o := range s.ring().ownersShared(shard) {
			if o != s.me {
				probe = o
				break
			}
		}
	}
	if probe >= 0 {
		if err := qp.Read(probe, uint64(s.cfg.RegionOffset), buf, 0, headerSize); err != nil {
			return nil, err
		}
		hdr := make([]byte, headerSize)
		if err := buf.ReadAt(0, hdr); err != nil {
			return nil, err
		}
		if err := checkHeader(hdr, s.cfg); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Put stores key=value. The write is applied by the shard's primary and
// synchronously replicated to its reachable backups before Put returns, so
// a following Get — against any reachable replica — observes it.
func (c *Client) Put(key, value []byte) error {
	s := c.store
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if entryHdr+len(key)+len(value) > s.cfg.SlotSize {
		return ErrTooLarge
	}
	req := &putReq{key: key, value: value, shard: s.ring().ShardOf(key), resp: c.resp}
	err := s.put(req)
	if err == nil && c.hot != nil {
		// The ack carried the leader's post-put shard version; fold it in
		// so our own writes are visible through the cache immediately.
		c.notePut(req.shard, key, value, req.ver)
	}
	return err
}

// Get fetches a key with one-sided remote reads. When the hot-key cache is
// on, the key is counted in the client's frequency sketch and — once hot —
// served from local memory under the shard's read lease (see hotkeys.go for
// the invalidation timeline). Otherwise the slot is read from a replica,
// validated against its seqlock version and checksum, and re-read while
// torn; with Config.ReadSpread the first replica tried is chosen by a
// power-of-two-choices draw over the shard's reachable replicas, weighted
// by smoothed observed latency, and the rest serve as ring-order failover.
// No code runs on the serving node. Replicas evicted by the configuration
// epoch are skipped even when locally reachable — an evicted replica is
// unverified until the re-admitting epoch, so reading it could surface
// writes the winning epoch rolled back (or miss writes it never received).
func (c *Client) Get(key []byte) ([]byte, error) {
	s := c.store
	shard := s.ring().ShardOf(key)
	down := s.downSnapshot()
	cfg := s.cfgSnapshot()
	if c.hot != nil {
		c.cacheFence(cfg)
		e := c.hot.sketch.touch(key)
		if v, ok := c.cacheGet(cfg, shard, key, down); ok {
			return v, nil
		}
		if e.hits >= hotPromoteHits {
			if val, err, ok := c.cacheFill(cfg, shard, key, down); ok {
				return val, err
			}
			// The fill could not bind a replica (and may have reported
			// one down); refresh the view and take the normal path.
			down = s.downSnapshot()
		}
	}
	return c.getFailover(cfg, shard, key, down)
}

// pickTarget chooses the replica a read should try first: the shard's
// reachable owners under the configuration's rotation mask, narrowed by the
// power-of-two-choices picker when replica-spread is on, or simply the
// first reachable owner (the leader, when it is healthy) otherwise.
// Returns -1 when no replica is reachable.
func (c *Client) pickTarget(cfg configView, shard int, down []bool) int {
	s := c.store
	owners := s.ring().ownersUnder(shard, cfg.rot)
	if c.picker == nil {
		for _, o := range owners {
			if (o == s.me || !down[o]) && !cfg.downBit(o) {
				return o
			}
		}
		return -1
	}
	c.elig = c.elig[:0]
	for _, o := range owners {
		if (o == s.me || !down[o]) && !cfg.downBit(o) {
			c.elig = append(c.elig, o)
		}
	}
	return c.picker.pick(c.elig)
}

// getFailover runs the spread-then-failover read: the picked replica
// first, then the remaining owners in ring order. ErrNotFound from any
// reachable replica is authoritative.
func (c *Client) getFailover(cfg configView, shard int, key []byte, down []bool) ([]byte, error) {
	s := c.store
	owners := s.ring().ownersUnder(shard, cfg.rot)
	preferred := -1
	if c.picker != nil {
		preferred = c.pickTarget(cfg, shard, down)
	}
	var lastErr error
	tried := false
	for i := -1; i < len(owners); i++ {
		var target int
		if i < 0 {
			if preferred < 0 {
				continue
			}
			target = preferred
		} else {
			target = owners[i]
			if target == preferred {
				continue
			}
			if target != s.me && down[target] {
				continue
			}
			if cfg.downBit(target) {
				continue
			}
		}
		tried = true
		var start time.Time
		if c.picker != nil {
			start = time.Now()
		}
		val, err := c.getFrom(target, shard, key)
		switch {
		case err == nil:
			if c.picker != nil {
				c.picker.observe(target, float64(time.Since(start).Nanoseconds())/1e3)
			}
			c.sampleRead(target, shard)
			return val, nil
		case errors.Is(err, ErrNotFound):
			// Authoritative: a reachable replica owns the shard and
			// has no such key.
			c.sampleRead(target, shard)
			return nil, ErrNotFound
		case sonuma.IsNodeFailure(err):
			// The fabric flushed our read: treat the replica as gone,
			// tell the store, and fail over to the next one.
			s.reportDown(target)
			lastErr = err
		default:
			lastErr = err
		}
	}
	if !tried || lastErr == nil {
		return nil, ErrNoReplica
	}
	return nil, lastErr
}

// sampleRead feeds the rebalancer's per-shard read counters: every
// loadSampleRate-th successful read lands one atomic increment on the
// shard line of the node that served it (locally when we served
// ourselves, a one-sided FetchAdd otherwise). Best-effort — a failed
// sample is simply dropped; the counters steer placement, not
// correctness.
func (c *Client) sampleRead(target, shard int) {
	s := c.store
	if !s.cfg.Rebalance || s.cfg.Shards > 64 {
		return
	}
	c.nReads++
	if c.nReads%loadSampleRate != 0 {
		return
	}
	off := s.cfg.shardLineOff(shard) + shardLineReads
	if target == s.me {
		_, _ = s.mem.FetchAdd64(off, 1)
		return
	}
	_, _ = c.qp.FetchAdd(target, uint64(off), 1)
}

// GetReplica fetches a key from one specific replica with the same
// one-sided probe/retry loop Get uses, ignoring failover routing. Intended
// for convergence checks (is this rejoined replica serving? are replicas
// byte-identical?) and repair tooling; normal reads should use Get, which
// picks a reachable replica automatically.
func (c *Client) GetReplica(node int, key []byte) ([]byte, error) {
	s := c.store
	if node < 0 || node >= s.n {
		return nil, fmt.Errorf("kvs: replica %d outside cluster [0,%d)", node, s.n)
	}
	return c.getFrom(node, s.ring().ShardOf(key), key)
}

// getFrom performs the probe/retry read loop against one replica.
func (c *Client) getFrom(target, shard int, key []byte) ([]byte, error) {
	s := c.store
	h := fnv1a(key)
probeLoop:
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.cfg.Buckets))
		off := uint64(s.cfg.slotOff(shard, b))
		retries := 0
		for {
			if err := c.qp.Read(target, off, c.buf, 0, s.cfg.SlotSize); err != nil {
				return nil, err
			}
			if err := c.buf.ReadAt(0, c.entry); err != nil {
				return nil, err
			}
			val, status := parseEntry(c.entry, key)
			switch status {
			case entryMatch:
				return val, nil
			case entryEmpty:
				return nil, ErrNotFound
			case entryMismatch:
				continue probeLoop
			case entryTorn:
				retries++
				if retries > tornRetries {
					return nil, ErrRetryExhausted
				}
				// Back off so a continuously replicating writer
				// cannot starve the reader indefinitely. WaitYield
				// escalates from yields to real sleeps, so on a
				// CPU-starved host the writer we are waiting on (and
				// everyone's heartbeats) still get cycles.
				sonuma.WaitYield(retries)
			}
		}
	}
	return nil, ErrNotFound
}

// MultiGet fetches a burst of keys. Cache-served keys never leave the
// client; the rest have their first-probe slot reads issued as one batch —
// a single work-queue publish and RMC doorbell via QP.NewBatch — with
// per-operation completions, so a key whose read failed, missed, collided,
// or tore falls back to the single-key path (with its full ring-order
// failover) INDIVIDUALLY; one dead replica no longer drags the whole
// burst through the slow path. Results and errors are positional; a
// missing key yields (nil, ErrNotFound) at its index.
func (c *Client) MultiGet(keys [][]byte) ([][]byte, []error) {
	s := c.store
	vals := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	down := s.downSnapshot()
	cfg := s.cfgSnapshot()
	if c.hot != nil {
		c.cacheFence(cfg)
	}
	for base := 0; base < len(keys); base += MaxGetBatch {
		end := base + MaxGetBatch
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[base:end]
		targets := make([]int, len(chunk))
		for i, key := range chunk {
			shard := s.ring().ShardOf(key)
			targets[i] = -1
			c.opErr[i], c.opDone[i] = nil, false
			if c.hot != nil {
				e := c.hot.sketch.touch(key)
				if v, ok := c.cacheGet(cfg, shard, key, down); ok {
					vals[base+i] = v
					continue
				}
				if e.hits >= hotPromoteHits {
					// Hot but not yet cached: route through Get so the
					// fill path installs it for the next burst.
					vals[base+i], errs[base+i] = c.Get(key)
					continue
				}
			}
			target := c.pickTarget(cfg, shard, down)
			if target < 0 {
				errs[base+i] = ErrNoReplica
				continue
			}
			targets[i] = target
			b := int(fnv1a(key) % uint64(s.cfg.Buckets))
			idx := i
			c.batch.Read(target, uint64(s.cfg.slotOff(shard, b)), c.buf, i*s.cfg.SlotSize, s.cfg.SlotSize,
				func(_ int, err error) { c.opErr[idx], c.opDone[idx] = err, true })
		}
		burstStart := time.Now()
		burstErr := c.batch.SubmitWait()
		// A batched read's latency is the burst's round trip: SubmitWait
		// returns when every completion has fired, so that is the time each
		// key actually waited. Feed it to the replica-spread picker exactly
		// like Get does for single reads — without this, a MultiGet-only
		// workload leaves the EWMAs empty and the picker blind to slow
		// replicas.
		burstUs := float64(time.Since(burstStart).Nanoseconds()) / 1e3
		for i, key := range chunk {
			if targets[i] < 0 {
				continue
			}
			if c.opErr[i] != nil || (burstErr != nil && !c.opDone[i]) {
				// This key's read failed (or the burst died before its
				// completion fired): re-resolve it individually — Get
				// fails over across the remaining replicas.
				if c.opErr[i] != nil && sonuma.IsNodeFailure(c.opErr[i]) {
					s.reportDown(targets[i])
				}
				vals[base+i], errs[base+i] = c.Get(key)
				continue
			}
			if err := c.buf.ReadAt(i*s.cfg.SlotSize, c.entry); err != nil {
				errs[base+i] = err
				continue
			}
			val, status := parseEntry(c.entry, key)
			switch status {
			case entryMatch:
				vals[base+i] = val
				if c.picker != nil {
					c.picker.observe(targets[i], burstUs)
				}
				c.sampleRead(targets[i], s.ring().ShardOf(key))
			case entryEmpty:
				errs[base+i] = ErrNotFound
			default:
				// Collision chain or torn snapshot: take the full
				// probe/retry path for this key only.
				vals[base+i], errs[base+i] = c.Get(key)
			}
		}
	}
	return vals, errs
}
