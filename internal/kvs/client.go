package kvs

import (
	"errors"
	"fmt"
	"runtime"

	"sonuma"
)

// tornRetries bounds the seqlock retries against one replica before the
// client moves on to the next one (seqlocks favor the writer by design, so
// a hot slot can stay torn for a while).
const tornRetries = 256

// MaxGetBatch is the largest GET burst MultiGet issues as one batched
// work-queue publish.
const MaxGetBatch = 16

// Client issues operations against the sharded store. GETs (and MultiGet
// bursts) are pure one-sided remote reads on the client's own QP; PUTs are
// handed to the colocated Store member, which routes them to the shard
// primary over the messenger. A Client must be driven by a single
// goroutine; open one per worker goroutine.
type Client struct {
	store *Store
	qp    *sonuma.QP
	buf   *sonuma.Buffer // MaxGetBatch slot images
	batch *sonuma.Batch
	entry []byte     // single-slot parse scratch
	resp  chan error // reusable PUT response channel
}

// NewClient opens a client on this store member. It validates the remote
// geometry with a one-sided read of a peer member's store header — the
// same mechanism every later GET uses — so every member of the service
// must have called Open before clients attach.
func (s *Store) NewClient() (*Client, error) {
	qp, err := s.ctx.NewQP(0)
	if err != nil {
		return nil, err
	}
	buf, err := s.ctx.AllocBuffer(MaxGetBatch * s.cfg.SlotSize)
	if err != nil {
		return nil, err
	}
	c := &Client{
		store: s,
		qp:    qp,
		buf:   buf,
		entry: make([]byte, s.cfg.SlotSize),
		resp:  make(chan error, 1),
	}
	c.batch = qp.NewBatch()
	// Validate remote geometry with a one-sided read of a peer's store
	// header — the same mechanism every later GET uses. Any shard led by
	// another node will do; only a single-node cluster has none.
	probe := -1
	for shard := 0; shard < s.ring().Shards() && probe < 0; shard++ {
		for _, o := range s.ring().ownersShared(shard) {
			if o != s.me {
				probe = o
				break
			}
		}
	}
	if probe >= 0 {
		if err := qp.Read(probe, uint64(s.cfg.RegionOffset), buf, 0, headerSize); err != nil {
			return nil, err
		}
		hdr := make([]byte, headerSize)
		if err := buf.ReadAt(0, hdr); err != nil {
			return nil, err
		}
		if err := checkHeader(hdr, s.cfg); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Put stores key=value. The write is applied by the shard's primary and
// synchronously replicated to its reachable backups before Put returns, so
// a following Get — against any reachable replica — observes it.
func (c *Client) Put(key, value []byte) error {
	s := c.store
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if entryHdr+len(key)+len(value) > s.cfg.SlotSize {
		return ErrTooLarge
	}
	req := &putReq{key: key, value: value, shard: s.ring().ShardOf(key), resp: c.resp}
	return s.put(req)
}

// Get fetches a key with one-sided remote reads: the slot is read from the
// shard's primary (or, when the fabric has reported it unreachable, the
// next replica in ring order), validated against its seqlock version and
// checksum, and re-read while torn. No code runs on the serving node.
// Replicas evicted by the configuration epoch are skipped even when
// locally reachable — an evicted replica is unverified until the
// re-admitting epoch, so reading it could surface writes the winning
// epoch rolled back (or miss writes it never received).
func (c *Client) Get(key []byte) ([]byte, error) {
	s := c.store
	shard := s.ring().ShardOf(key)
	owners := s.ring().ownersShared(shard)
	down := s.downSnapshot()
	cfg := s.cfgSnapshot()
	var lastErr error
	tried := false
	for _, target := range owners {
		if target != s.me && down[target] {
			continue
		}
		if cfg.downBit(target) {
			continue
		}
		tried = true
		val, err := c.getFrom(target, shard, key)
		switch {
		case err == nil:
			return val, nil
		case errors.Is(err, ErrNotFound):
			// Authoritative: a reachable replica owns the shard and
			// has no such key.
			return nil, ErrNotFound
		case sonuma.IsNodeFailure(err):
			// The fabric flushed our read: treat the replica as gone,
			// tell the store, and fail over to the next one.
			s.reportDown(target)
			lastErr = err
		default:
			lastErr = err
		}
	}
	if !tried || lastErr == nil {
		return nil, ErrNoReplica
	}
	return nil, lastErr
}

// GetReplica fetches a key from one specific replica with the same
// one-sided probe/retry loop Get uses, ignoring failover routing. Intended
// for convergence checks (is this rejoined replica serving? are replicas
// byte-identical?) and repair tooling; normal reads should use Get, which
// picks a reachable replica automatically.
func (c *Client) GetReplica(node int, key []byte) ([]byte, error) {
	s := c.store
	if node < 0 || node >= s.n {
		return nil, fmt.Errorf("kvs: replica %d outside cluster [0,%d)", node, s.n)
	}
	return c.getFrom(node, s.ring().ShardOf(key), key)
}

// getFrom performs the probe/retry read loop against one replica.
func (c *Client) getFrom(target, shard int, key []byte) ([]byte, error) {
	s := c.store
	h := fnv1a(key)
probeLoop:
	for probe := 0; probe < maxProbes; probe++ {
		b := int((h + uint64(probe)) % uint64(s.cfg.Buckets))
		off := uint64(s.cfg.slotOff(shard, b))
		retries := 0
		for {
			if err := c.qp.Read(target, off, c.buf, 0, s.cfg.SlotSize); err != nil {
				return nil, err
			}
			if err := c.buf.ReadAt(0, c.entry); err != nil {
				return nil, err
			}
			val, status := parseEntry(c.entry, key)
			switch status {
			case entryMatch:
				return val, nil
			case entryEmpty:
				return nil, ErrNotFound
			case entryMismatch:
				continue probeLoop
			case entryTorn:
				retries++
				if retries > tornRetries {
					return nil, ErrRetryExhausted
				}
				// Back off so a continuously replicating writer
				// cannot starve the reader indefinitely.
				runtime.Gosched()
			}
		}
	}
	return nil, ErrNotFound
}

// MultiGet fetches a burst of keys. The first-probe slot reads for the
// whole burst are issued as one batch — a single work-queue publish and
// RMC doorbell via QP.NewBatch — and keys whose first probe misses,
// collides, or tears fall back to the single-key path. Results and errors
// are positional; a missing key yields (nil, ErrNotFound) at its index.
func (c *Client) MultiGet(keys [][]byte) ([][]byte, []error) {
	s := c.store
	vals := make([][]byte, len(keys))
	errs := make([]error, len(keys))
	down := s.downSnapshot()
	cfg := s.cfgSnapshot()
	for base := 0; base < len(keys); base += MaxGetBatch {
		end := base + MaxGetBatch
		if end > len(keys) {
			end = len(keys)
		}
		chunk := keys[base:end]
		targets := make([]int, len(chunk))
		for i, key := range chunk {
			shard := s.ring().ShardOf(key)
			owners := s.ring().ownersShared(shard)
			targets[i] = -1
			for _, o := range owners {
				if cfg.downBit(o) {
					continue
				}
				if o == s.me || !down[o] {
					targets[i] = o
					break
				}
			}
			if targets[i] < 0 {
				errs[base+i] = ErrNoReplica
				continue
			}
			b := int(fnv1a(key) % uint64(s.cfg.Buckets))
			c.batch.Read(targets[i], uint64(s.cfg.slotOff(shard, b)), c.buf, i*s.cfg.SlotSize, s.cfg.SlotSize, nil)
		}
		burstErr := c.batch.SubmitWait()
		for i, key := range chunk {
			if errs[base+i] != nil {
				continue
			}
			if burstErr != nil {
				// At least one read in the burst failed; re-resolve
				// this key individually (Get also handles failover).
				vals[base+i], errs[base+i] = c.Get(key)
				continue
			}
			if err := c.buf.ReadAt(i*s.cfg.SlotSize, c.entry); err != nil {
				errs[base+i] = err
				continue
			}
			val, status := parseEntry(c.entry, key)
			switch status {
			case entryMatch:
				vals[base+i] = val
			case entryEmpty:
				errs[base+i] = ErrNotFound
			default:
				// Collision chain or torn snapshot: take the full
				// probe/retry path for this key only.
				vals[base+i], errs[base+i] = c.Get(key)
			}
		}
	}
	return vals, errs
}
