package kvs

import "encoding/binary"

// Control-frame wire format. Control frames ride the Messenger's lossy
// latest-wins control lines (one line per sender pair, see msg.go in the
// root package), so every frame is idempotent state, re-published on a
// cadence. Since the epoch authority became replicated (config.go), every
// frame carries the sender's COORDINATOR TERM in addition to the epoch:
// the term totally orders coordinator successions, so a receiver can
// reject frames from a deposed coordinator (or from a peer that has not
// heard of the succession yet) without a round trip. Layout:
//
//	byte  0      kind
//	bytes 1..8   term  — sender's cached coordinator term
//	bytes 9..16  epoch — sender's cached configuration epoch
//	bytes 17..   kind-specific tail (grant: lease µs u32;
//	             repair-done: repaired-peer bitmask u64)
//
// The largest frame (ctlRepairDone, 25 bytes) stays well under the
// messenger's MaxControlFrame line budget.

// Control frame kinds (first byte of every messenger control frame).
const (
	ctlLeaseRenew byte = 1 // renewal request + heartbeat
	ctlLeaseGrant byte = 2 // tail: lease µs u32
	ctlLeaseDeny  byte = 3 // sender is evicted at this (term, epoch)
	ctlCfgChanged byte = 4 // nudge: re-read the config slot / scan succession
	ctlRepairDone byte = 5 // tail: repaired-peer bitmask u64
)

// ctlHdrLen is the fixed prefix every control frame carries; ctlMaxLen the
// largest full frame.
const (
	ctlHdrLen = 17
	ctlMaxLen = 25
)

// ctlFrame is one decoded control frame.
type ctlFrame struct {
	kind  byte
	term  uint64
	epoch uint64
	arg   uint64 // ctlLeaseGrant: lease µs; ctlRepairDone: peer bitmask
}

// encodeCtl frames f into buf (at least ctlMaxLen bytes) and returns the
// encoded slice.
func encodeCtl(buf []byte, f ctlFrame) []byte {
	buf[0] = f.kind
	binary.LittleEndian.PutUint64(buf[1:], f.term)
	binary.LittleEndian.PutUint64(buf[9:], f.epoch)
	switch f.kind {
	case ctlLeaseGrant:
		binary.LittleEndian.PutUint32(buf[17:], uint32(f.arg))
		return buf[:21]
	case ctlRepairDone:
		binary.LittleEndian.PutUint64(buf[17:], f.arg)
		return buf[:25]
	}
	return buf[:ctlHdrLen]
}

// parseCtl decodes one control frame. ok is false for a frame too short
// for its kind (a peer running a different wire format).
func parseCtl(data []byte) (ctlFrame, bool) {
	if len(data) < ctlHdrLen {
		return ctlFrame{}, false
	}
	f := ctlFrame{
		kind:  data[0],
		term:  binary.LittleEndian.Uint64(data[1:]),
		epoch: binary.LittleEndian.Uint64(data[9:]),
	}
	switch f.kind {
	case ctlLeaseGrant:
		if len(data) < 21 {
			return ctlFrame{}, false
		}
		f.arg = uint64(binary.LittleEndian.Uint32(data[17:]))
	case ctlRepairDone:
		if len(data) < 25 {
			return ctlFrame{}, false
		}
		f.arg = binary.LittleEndian.Uint64(data[17:])
	}
	return f, true
}
