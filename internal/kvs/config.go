package kvs

import (
	"encoding/binary"
	"hash/crc32"
	"time"
)

// This file implements the configuration-epoch authority (FaRM-style),
// REPLICATED since PR 5: the active coordinator owns a seqlock-published
// config slot inside its store region — (term, epoch, evicted-node
// bitmask) — and every other node caches it with one-sided reads.
// Membership changes (evictions after failures, re-admissions after
// anti-entropy repair) are EPOCH TRANSITIONS: the coordinator bumps the
// epoch and rewrites the slot, and per-shard leadership everywhere
// re-derives as a pure function of (ring, down mask), so publishing the
// mask IS publishing leadership — two nodes holding the same epoch can
// never disagree on who leads a shard.
//
// THE AUTHORITY ITSELF NOW SURVIVES AN OUTAGE. The first k ring members
// (the SUCCESSION SET, active coordinator first) each carry the config
// slot at the same region offset; the active coordinator writes its own
// slot, then write-through-mirrors the image onto the other succession
// members in succession order with one-sided remote writes. The slot
// gained a TERM word — (generation << 6 | owner-node) — that totally
// orders coordinator successions: configurations order lexicographically
// on (term, epoch), a mirror holding an older term is superseded, and a
// torn mirror image fails the seqlock parse. Deterministic succession:
// when a node's reads of the active coordinator's slot stay stale past
// failoverWait, it scans the succession set's slots, adopts the highest
// (term, epoch) image it can read, and — if it is the first live member
// in succession order — fences the deposed coordinator by activating a
// fresh term (next generation, its own node id in the owner bits) whose
// first epoch evicts the old coordinator. Activation is write-through:
// a new (term, epoch) must land on at least one other succession member
// BEFORE the activator's own slot changes, so a coordinator that cannot
// reach ANY authority replica (it is almost certainly the partitioned
// side) freezes instead of racing its epoch ahead invisibly — the trade
// against a majority quorum is documented in ARCHITECTURE.md. A healed
// ex-coordinator demotes itself on observing a higher term on any mirror
// (mirrorTick reads before it writes) and rejoins as a regular node.
//
// Safety against stale leaders comes from leases (lease.go): the
// coordinator activates an epoch that demotes a leader only after that
// leader's lease has provably lapsed, and a leader whose lease lapses
// fences itself. The active coordinator's own writes are fenced the same
// way against succession: it must refresh authority contact (a mirror
// write) every hbExpiry or stop serving leader writes, and failoverWait
// exceeds hbExpiry, so a deposed coordinator has always fenced itself
// before its successor's first epoch activates. Repair then arbitrates
// divergence on (epoch, version): each shard carries an epoch word
// stamped by leader writes, and a repairer operating under a newer epoch
// overrides a peer wholesale (store.go repairShard/applyRepair).

// Config slot layout (one cache line, same offset in every succession
// member's store region):
//
//	word 0: seq   — seqlock: odd while the owner is mid-update
//	word 1: term  — coordinator term: generation << 6 | owner node id;
//	                0 only in a never-published image
//	word 2: epoch — configuration epoch; 0 = never published, first is 1
//	word 3: down  — bitmask of evicted nodes (bit i = node i)
//	word 4: sum   — CRC of (term, epoch, down, rot): rejects a MIXED image
//	word 5: rot   — shard-rotation bitmask for load rebalancing (bit s =
//	                shard s's owner list rotated left by one, promoting the
//	                next replica to primary; see Ring.ownersUnder)
//	words 6..7: reserved
//
// A one-sided read of the line is torn-free at line granularity, but the
// seqlock discipline keeps the slot safe if it ever grows past one line —
// and the checksum catches what neither can: a remote mirror write
// interleaving with the target's own local seqlock stores can leave an
// even-seq line whose words come from two configurations; such an image
// fails the sum and reads as torn.

// termBits is how many low term bits carry the owner node id (the 64-node
// ceiling configuration epochs already impose).
const termBits = 6

// termFor builds a term word from a generation counter and owner node.
func termFor(gen uint64, owner int) uint64 {
	return gen<<termBits | uint64(owner)
}

// termOwner extracts the coordinator node a term names.
func termOwner(term uint64) int { return int(term & (1<<termBits - 1)) }

// nextTerm is the term a successor activates: the next generation, owned
// by the successor.
func nextTerm(after uint64, owner int) uint64 {
	return termFor((after>>termBits)+1, owner)
}

// epochGenShift/epochOwnerShift give every term a disjoint epoch range:
// the generation selects a 2^32-epoch band and the claimant's node id a
// 2^26-epoch sub-band within it, so even two claimants racing to the
// SAME generation (mutual unreachability can let both activate — the
// writeMirror term guard is read-then-write, not atomic) produce
// disjoint epoch numbers. A takeover starts from termEpochFloor(term)+1,
// which exceeds ANY epoch a lower term could have activated — including
// activations whose every write-through copy died with the old
// authority set, which no scan can recover. That keeps the term-less
// shard epoch words (the raw u64s repair arbitrates on) totally ordered
// across successions without widening them. Within a term, epochs
// advance by 1; 2^26 membership changes per term is decades of
// continuous churn.
const (
	epochGenShift   = 32
	epochOwnerShift = epochGenShift - termBits
)

// termEpochFloor is the exclusive lower bound of a term's epoch range.
// Only takeovers start from it — the seed term bootstraps at epoch 1,
// which is safe because generation 1 is never contested (takeovers
// always advance the generation).
func termEpochFloor(term uint64) uint64 {
	return ((term>>termBits)-1)<<epochGenShift | uint64(termOwner(term))<<epochOwnerShift
}

// cfgNewer orders two configurations lexicographically on (term, epoch).
func cfgNewer(term, epoch, thanTerm, thanEpoch uint64) bool {
	return term > thanTerm || (term == thanTerm && epoch > thanEpoch)
}

// termNewer and epochNewer are the canonical single-word orderings; all
// comparisons of bare term or epoch words go through them (enforced by
// sonuma-lint's epochorder analyzer), so the packing invariants that make
// the raw u64 order correct are stated once, here, instead of being
// implied at every call site.

// termNewer reports whether term supersedes than. Raw u64 order is the
// term order because the generation lives in the high bits: a later
// generation always wins, and within one generation the owner bits are a
// deterministic (if arbitrary) tie-break — two claimants can never
// activate the same generation from the same succession scan anyway.
func termNewer(term, than uint64) bool { return term > than }

// epochNewer reports whether epoch supersedes than. Raw u64 order is the
// epoch order because terms get disjoint, monotonically higher epoch
// bands (termEpochFloor): within a term epochs advance by 1, and a
// successor term's first epoch exceeds every epoch any lower term could
// have activated.
func epochNewer(epoch, than uint64) bool { return epoch > than }

// authorityQuorum is how many MIRROR contacts (acks or refreshes) an
// active coordinator or claimant needs for authority liveness: itself
// plus this many mirrors is a strict majority of the succession set. For
// the default k = 3 that is one mirror; the majority rule matters at
// k ≥ 4, where an "any one mirror" rule would let a partition with
// disjoint mirror pairs keep two coordinators alive indefinitely — with
// a majority, two sides can never both hold one.
func (s *Store) authorityQuorum() int { return len(s.succ) / 2 }

// configView is the lock-free snapshot of the cached configuration that
// client goroutines (and harnesses) read.
type configView struct {
	term  uint64
	epoch uint64
	down  uint64
	rot   uint64
}

// downBit reports whether node is evicted in this view.
func (v configView) downBit(node int) bool {
	return node >= 0 && node < 64 && v.down&(1<<uint(node)) != 0
}

// cfgSlotSum checksums a slot's payload words. The sum travels in word 4
// and lets parseConfigSlot reject a MIXED image — a remote mirror write
// interleaving with the target's own local seqlock stores can leave an
// even-seq line whose words come from two different configurations,
// which neither the seq parity nor line-granularity tearing rules catch.
func cfgSlotSum(term, epoch, down, rot uint64) uint64 {
	var b [32]byte
	binary.LittleEndian.PutUint64(b[0:], term)
	binary.LittleEndian.PutUint64(b[8:], epoch)
	binary.LittleEndian.PutUint64(b[16:], down)
	binary.LittleEndian.PutUint64(b[24:], rot)
	return uint64(crc32.ChecksumIEEE(b[:]))
}

// parseConfigSlot decodes a config-slot line. ok is false for a torn
// (odd-seq), checksum-failing (mixed), or never-published image.
func parseConfigSlot(line []byte) (term, epoch, down, rot uint64, ok bool) {
	seq := binary.LittleEndian.Uint64(line[0:])
	if seq == 0 || seq&1 == 1 {
		return 0, 0, 0, 0, false
	}
	term = binary.LittleEndian.Uint64(line[8:])
	epoch = binary.LittleEndian.Uint64(line[16:])
	down = binary.LittleEndian.Uint64(line[24:])
	rot = binary.LittleEndian.Uint64(line[40:])
	if binary.LittleEndian.Uint64(line[32:]) != cfgSlotSum(term, epoch, down, rot) {
		return 0, 0, 0, 0, false
	}
	return term, epoch, down, rot, true
}

// writeConfigSlot publishes (term, epoch, down, rot) into the local config
// slot under the seqlock discipline. Active coordinator (or a successor
// staging its takeover) only; serve goroutine only.
func (s *Store) writeConfigSlot(term, epoch, down, rot uint64) {
	off := s.cfg.cfgSlotOff()
	seq, err := s.mem.Load64(off)
	if err != nil {
		return
	}
	if err := s.mem.Store64(off, seq|1); err != nil {
		return
	}
	_ = s.mem.Store64(off+8, term)
	_ = s.mem.Store64(off+16, epoch)
	_ = s.mem.Store64(off+24, down)
	_ = s.mem.Store64(off+32, cfgSlotSum(term, epoch, down, rot))
	_ = s.mem.Store64(off+40, rot)
	_ = s.mem.Store64(off, (seq|1)+1)
}

// publishCfg refreshes the lock-free configuration snapshot for clients.
func (s *Store) publishCfg() {
	s.cfgPub.Store(&configView{term: s.cfgTerm, epoch: s.cfgEpoch, down: s.cfgDown, rot: s.cfgRot})
}

// cfgSnapshot returns the current lock-free configuration view.
func (s *Store) cfgSnapshot() configView { return *s.cfgPub.Load() }

// Epoch reports the store's cached configuration epoch. Harnesses use it
// to watch epoch transitions (evictions and re-admissions both bump it).
func (s *Store) Epoch() uint64 { return s.cfgSnapshot().epoch }

// Term reports the store's cached coordinator term. Harnesses use it to
// watch coordinator successions (a takeover bumps the term's generation).
func (s *Store) Term() uint64 { return s.cfgSnapshot().term }

// Coordinator reports the node this store currently believes holds the
// epoch authority — the owner encoded in its cached term.
func (s *Store) Coordinator() int { return termOwner(s.cfgSnapshot().term) }

// EpochDown reports whether node is evicted in the cached configuration —
// the cluster-wide, totally ordered counterpart of DownView's local
// reachability guess.
func (s *Store) EpochDown(node int) bool { return s.cfgSnapshot().downBit(node) }

// cfgDownBit reports eviction from the serve goroutine's cached mask.
func (s *Store) cfgDownBit(node int) bool {
	return node >= 0 && node < 64 && s.cfgDown&(1<<uint(node)) != 0
}

// markCfgFresh records a successful authority contact (a slot read at or
// above the cached configuration, a mirror ack, or an activation) for the
// slot-staleness stat and the failover trigger.
func (s *Store) markCfgFresh(now time.Time) {
	s.cfgLastOK = now
	s.cfgFreshNano.Store(now.UnixNano())
}

// pollConfig re-reads the active coordinator's config slot with a
// one-sided read and adopts any newer (term, epoch). Serve goroutine,
// non-coordinator only. Every outcome that fails to refresh the cached
// configuration retries promptly — a failed remote read on a short
// backoff (the coordinator may be gone: this path feeds the slot-
// staleness clock and, past failoverWait, the succession scan), a torn
// or unreadable image on the next pass — so a stale cache is never
// silently served for a full poll cadence.
func (s *Store) pollConfig(now time.Time) {
	s.cfgDirty = false
	term, epoch, down, rot, ok := s.readPeerSlot(s.coord)
	if !ok {
		// Unreachable coordinator, torn or garbage image, or local buffer
		// failure: retry on a short cadence and let the staleness clock
		// run.
		s.cfgStalePolls.Add(1)
		s.cfgPollAt = now.Add(s.lease / 8)
		s.maybeFailover(now)
		return
	}
	if cfgNewer(s.cfgTerm, s.cfgEpoch, term, epoch) {
		// An image BELOW the cached configuration — e.g. a deposed
		// coordinator still publishing its last term, or a claimant whose
		// staged takeover never activated. Not a refresh: the staleness
		// clock keeps running so the succession scan can find the real
		// authority.
		s.cfgStalePolls.Add(1)
		s.maybeFailover(now)
		return
	}
	s.markCfgFresh(now)
	if termNewer(term, s.cfgTerm) {
		s.adoptTerm(term, epoch, down, rot)
	} else if epochNewer(epoch, s.cfgEpoch) {
		s.adoptConfig(epoch, down, rot)
	}
}

// readPeerSlot one-sidedly reads and validates peer p's config slot:
// reachable, stable (even seq, checksum intact), and naming a plausible
// owner. One helper so the parse guards cannot drift between the poll,
// scan, and mirror paths. Serve goroutine (uses the shared cfg buffers).
func (s *Store) readPeerSlot(p int) (term, epoch, down, rot uint64, ok bool) {
	if err := s.qp.Read(p, uint64(s.cfg.cfgSlotOff()), s.cfgBuf, 0, cfgSlotSize); err != nil {
		return 0, 0, 0, 0, false
	}
	if err := s.cfgBuf.ReadAt(0, s.cfgLine); err != nil {
		return 0, 0, 0, 0, false
	}
	term, epoch, down, rot, ok = parseConfigSlot(s.cfgLine)
	if !ok || termOwner(term) >= s.n {
		return 0, 0, 0, 0, false
	}
	return term, epoch, down, rot, true
}

// maybeFailover runs the succession scan once the active coordinator's
// slot has been stale past failoverWait. Serve goroutine.
func (s *Store) maybeFailover(now time.Time) {
	if len(s.succ) <= 1 || now.Sub(s.cfgLastOK) < s.failoverWait() {
		return
	}
	s.successionScan(now)
}

// successionScan reads every succession member's config slot, adopts the
// highest (term, epoch) image found, and — when nothing newer exists
// anywhere and this node is the first live member in succession order —
// takes the authority over. Paced on lease/2 so a dead coordinator does
// not turn every serve pass into k remote reads. Also triggered directly
// (scanNow) by control frames carrying a term above the cached one, so a
// node whose link to the OLD coordinator is still healthy learns of a
// succession it cannot see in the old coordinator's slot.
func (s *Store) successionScan(now time.Time) {
	if now.Before(s.scanAt) {
		return // pacing; a pending scanNow latch stays set and retries
	}
	s.scanNow = false
	s.scanAt = now.Add(s.lease / 2)
	bestTerm, bestEpoch, bestDown, bestRot := s.cfgTerm, s.cfgEpoch, s.cfgDown, s.cfgRot
	found := false
	// The scanner's OWN mirror slot is a candidate too: a configuration
	// whose only surviving write-through copy landed here (the other
	// mirror unreachable when the coordinator activated it, then died)
	// must be adopted before any takeover, or the claimant would carry a
	// stale down mask into its first epoch — silently un-evicting a node
	// the lost configuration had demoted, without repair. (The epoch
	// NUMBER itself cannot collide across terms: generations own
	// disjoint ranges, see epochGenShift.) Adoption guards (strictly
	// newer term, or newer epoch at the cached term) make reading our
	// own stale ex-coordinator image harmless.
	for _, p := range s.succ {
		term, epoch, down, rot, ok := s.readPeerSlot(p)
		if !ok {
			continue // unreachable, torn mid-mirror, or never published
		}
		if cfgNewer(term, epoch, bestTerm, bestEpoch) {
			bestTerm, bestEpoch, bestDown, bestRot = term, epoch, down, rot
			found = true
		}
	}
	if found {
		if termNewer(bestTerm, s.cfgTerm) {
			// A new coordinator claimed the authority: follow it and give
			// it a fresh staleness window.
			s.markCfgFresh(now)
			s.adoptTerm(bestTerm, bestEpoch, bestDown, bestRot)
		} else {
			// A newer epoch of the CURRENT term salvaged from a mirror.
			// The term's owner is still the node whose staleness got us
			// here, so the failover clock keeps running: the next scan,
			// now holding the highest replicated epoch, may take over.
			s.adoptConfig(bestEpoch, bestDown, bestRot)
		}
		return
	}
	// Electing (as opposed to adopting) additionally requires OUR OWN
	// staleness clock to have run out: a scan triggered by a higher-term
	// nudge (scanNow) whose slot reads transiently fail must not let a
	// node with a perfectly fresh view of its coordinator self-elect a
	// competing term on the spot.
	if now.Sub(s.cfgLastOK) >= s.failoverWait() && s.successor() == s.me {
		s.takeOver(now)
	}
}

// successor computes the deterministic takeover candidate: the first
// succession member — skipping the coordinator being deposed, evicted
// members, and members this node cannot reach — in succession order.
// Every live node computes the same candidate modulo reachability, and
// the term's total order settles the races reachability disagreements
// can still produce.
func (s *Store) successor() int {
	cl := s.ctx.Node().Cluster()
	for _, p := range s.succ {
		if p == s.coord || s.cfgDownBit(p) {
			continue
		}
		if p == s.me {
			return p
		}
		if !s.down[p] && cl.Reachable(s.me, p) {
			return p
		}
	}
	return -1
}

// takeOver activates a fresh coordinator term on this node: next
// generation, this node in the owner bits, first epoch evicting the
// deposed coordinator. The activation is write-through (publishAuthority):
// unless at least one other succession member accepted the new image,
// nothing changes locally and the scan retries — a successor that cannot
// replicate the authority must not claim it. Serve goroutine.
func (s *Store) takeOver(now time.Time) {
	term := nextTerm(s.cfgTerm, s.me)
	// The new generation's epoch range outranks every epoch the deposed
	// term could have activated, observed or not (see epochGenShift).
	epoch := termEpochFloor(term) + 1
	if !epochNewer(epoch, s.cfgEpoch) {
		epoch = s.cfgEpoch + 1
	}
	mask := s.cfgDown
	if old := s.coord; old >= 0 && old < 64 {
		mask |= 1 << uint(old)
	}
	if !s.publishAuthority(term, epoch, mask, s.cfgRot, s.coord) {
		return // no authority replica reachable; retry on the next scan
	}
	s.takeovers.Add(1)
	s.cfgTerm = term
	s.coord = s.me
	s.authOK = now
	s.markCfgFresh(now)
	// Fresh coordinator bookkeeping: no grants outstanding, no eviction
	// clocks armed, repair reports restart under the new term.
	for p := 0; p < s.n; p++ {
		s.granted[p] = false
		s.lastRenew[p] = now
		s.evictAt[p] = time.Time{}
		s.rejoinAcks[p] = 0
	}
	s.adoptConfig(epoch, mask, s.cfgRot)
	s.nudgePeers(epoch)
	// Peers this node already cannot reach go onto the eviction clock
	// under the new authority — with the FULL lease grace applied
	// unconditionally (scheduleEvict's granted[] shortcut does not apply:
	// the deposed regime may have granted these peers leases this node
	// never saw, and they must provably lapse before their shards'
	// leadership moves).
	for p := 0; p < s.n; p++ {
		if p != s.me && s.down[p] && !s.cfgDownBit(p) {
			s.evictAt[p] = now.Add(s.evictGrace())
		}
	}
}

// adoptTerm installs a configuration from a NEWER coordinator term. Unlike
// same-term adoption, the epoch is accepted unconditionally — (term, epoch)
// order lexicographically, and a term change invalidates any lease and any
// coordinator role this node held. An ex-coordinator lands here when it
// observes its succession: it demotes itself to a follower of the new
// term's owner.
func (s *Store) adoptTerm(term, epoch, down, rot uint64) {
	if !termNewer(term, s.cfgTerm) {
		return
	}
	if s.me == s.coord {
		// Deposed: drop every coordinator clock; the new authority owns
		// eviction, re-admission, and lease arbitration now.
		s.coordDemotions.Add(1)
		for p := 0; p < s.n; p++ {
			s.granted[p] = false
			s.evictAt[p] = time.Time{}
			s.rejoinAcks[p] = 0
		}
	}
	s.cfgTerm = term
	s.coord = termOwner(term)
	s.leaseEpoch, s.leaseUntil = 0, time.Time{} // the old lease died with its term
	s.forceConfig(epoch, down, rot)
}

// adoptConfig installs a new same-term configuration epoch on the serve
// goroutine. Called by the coordinator immediately after an activation and
// by every other node when a poll observes a newer epoch.
func (s *Store) adoptConfig(epoch, down, rot uint64) {
	if epoch == s.cfgEpoch && down == s.cfgDown && rot == s.cfgRot {
		return
	}
	s.forceConfig(epoch, down, rot)
}

// forceConfig is the shared tail of adoptConfig/adoptTerm: leadership
// re-derives from the down mask, re-admitted peers resume serving, the
// (now stale) lease is renewed eagerly, still-down peers are queued for
// (re-)verification, and parked PUTs re-route under the new leadership.
func (s *Store) forceConfig(epoch, down, rot uint64) {
	old, oldRot := s.cfgDown, s.cfgRot
	s.cfgEpoch, s.cfgDown, s.cfgRot = epoch, down, rot
	s.epochBumps.Add(1)
	s.countPromotions(old, down, oldRot, rot)
	s.publishCfg()
	// A cleared bit means the peer was verified by every shard leader:
	// resume reading from and replicating to it. Local reachability can
	// lag the config, so clear the local down flag only when the fabric
	// agrees.
	cl := s.ctx.Node().Cluster()
	changed := false
	for p := 0; p < s.n; p++ {
		if down&(1<<uint(p)) != 0 {
			// Every epoch bump restarts verification: a repair proven
			// under an older epoch may no longer cover the shards this
			// node leads now.
			s.repaired[p] = false
			continue
		}
		s.repaired[p] = false
		if s.down[p] && p != s.me && cl.Reachable(s.me, p) {
			s.down[p] = false
			changed = true
		}
	}
	if changed {
		s.publishDown()
	}
	if down != 0 {
		s.healPending = true
		s.healRetryAt = time.Now()
	}
	// Claim the new epoch's lineage for every shard this node now leads:
	// a promoted leader's (replicated) image is authoritative from this
	// epoch on, even before its first write. Without this stamp, a demoted
	// absorber advancing slot versions under the OLD word could tie words
	// with the new leader and win repair's equal-word version comparison —
	// exactly the divergence epochs exist to arbitrate. An evicted node
	// never stamps (it may be the fallback "leader" of a shard whose every
	// owner is down, and claiming lineage there would let stale data
	// outrank the real last leader's — reverse pull settles those by the
	// words the actual leaders left behind).
	if !s.cfgDownBit(s.me) {
		for shard := 0; shard < s.cfg.Shards; shard++ {
			if s.leaderUnder(shard, down, rot) != s.me {
				continue
			}
			off := s.cfg.shardEpochOff(shard)
			if w, err := s.mem.Load64(off); err == nil && epoch > w {
				_ = s.mem.Store64(off, epoch)
			}
		}
	}
	s.renewAt = time.Time{} // the old lease died with its epoch
	s.parkedDirty = true
}

// bumpConfig publishes a new epoch with the given down mask and rotation
// mask and nudges every reachable peer to re-read it. Active coordinator
// only. Returns false — with no local state changed — when the
// write-through rule blocked the activation (no authority replica
// reachable); the caller's clocks stay armed and retry.
func (s *Store) bumpConfig(down, rot uint64) bool {
	epoch := s.cfgEpoch + 1
	if !s.publishAuthority(s.cfgTerm, epoch, down, rot, -1) {
		return false
	}
	s.authOK = time.Now()
	// Every bump restarts rejoin verification (see forceConfig).
	for p := range s.rejoinAcks {
		s.rejoinAcks[p] = 0
	}
	s.adoptConfig(epoch, down, rot)
	s.nudgePeers(epoch)
	return true
}

// publishAuthority write-through-publishes (term, epoch, down): mirrors
// first, in succession order, then the local slot. With a replicated
// authority (k > 1) at least one mirror must accept the image before the
// local slot changes — a coordinator (or claimant) that cannot reach ANY
// other authority replica is almost certainly the partitioned side, and
// freezing its configuration is what keeps a deposed coordinator's epoch
// from racing ahead of the succession invisibly. skip names the deposed
// coordinator during a takeover: its slot is its own to write, and it is
// unreachable from the claimant by definition.
func (s *Store) publishAuthority(term, epoch, down, rot uint64, skip int) bool {
	cl := s.ctx.Node().Cluster()
	acked := 0
	for _, p := range s.succ {
		if p == s.me || p == skip || !cl.Reachable(s.me, p) {
			continue
		}
		if s.writeMirror(p, term, epoch, down, rot) == nil {
			acked++
		}
	}
	if len(s.succ) > 1 && acked < s.authorityQuorum() {
		return false
	}
	s.writeConfigSlot(term, epoch, down, rot)
	return true
}

// writeMirror lands one config-slot image on a succession member with a
// single one-sided line write, guarded by a term read: if the mirror
// already carries a higher term, this writer has been superseded and must
// not clobber the successor's image (the small read-write race that
// remains is healed by the real coordinator's lease/2 mirror refresh, and
// readers order whatever they find by (term, epoch) anyway). The image's
// seq word advances with (term + epoch) so every accepted update is a
// distinct even value.
func (s *Store) writeMirror(p int, term, epoch, down, rot uint64) error {
	if err := s.qp.Read(p, uint64(s.cfg.cfgSlotOff()+8), s.mirBuf, 0, 8); err != nil {
		return err
	}
	cur, err := s.mirBuf.Load64(0)
	if err != nil {
		return err
	}
	if cur > term {
		return errSuperseded
	}
	line := s.cfgLine
	for i := range line {
		line[i] = 0
	}
	binary.LittleEndian.PutUint64(line[0:], (term+epoch)<<1)
	binary.LittleEndian.PutUint64(line[8:], term)
	binary.LittleEndian.PutUint64(line[16:], epoch)
	binary.LittleEndian.PutUint64(line[24:], down)
	binary.LittleEndian.PutUint64(line[32:], cfgSlotSum(term, epoch, down, rot))
	binary.LittleEndian.PutUint64(line[40:], rot)
	if err := s.mirBuf.WriteAt(0, line); err != nil {
		return err
	}
	return s.qp.Write(p, uint64(s.cfg.cfgSlotOff()), s.mirBuf, 0, cfgSlotSize)
}

// mirrorRefresh re-publishes the current image to every reachable mirror
// and refreshes authOK (the coordinator's self-fencing clock) on any ack.
// Unlike mirrorTick it NEVER adopts a configuration — which makes it safe
// from the mid-repair maintenance path (awaitRepairAck), where adoption
// and eviction decisions must wait for the top-level tick. Without it, a
// repair outlasting hbExpiry would stale the coordinator's authority
// contact and fence the whole cluster's renewals despite healthy
// mirrors. A superseding term simply fails the term-guarded writes, so a
// genuinely deposed coordinator still fences until the top-level
// mirrorTick observes the successor.
func (s *Store) mirrorRefresh(now time.Time) {
	if len(s.succ) <= 1 {
		s.authOK = now
		s.markCfgFresh(now)
		return
	}
	cl := s.ctx.Node().Cluster()
	contacted := 0
	for _, p := range s.succ {
		if p == s.me || !cl.Reachable(s.me, p) {
			continue
		}
		if s.writeMirror(p, s.cfgTerm, s.cfgEpoch, s.cfgDown, s.cfgRot) == nil {
			contacted++
		}
	}
	if contacted >= s.authorityQuorum() {
		s.authOK = now
		s.markCfgFresh(now)
	}
}

// mirrorTick is the active coordinator's authority heartbeat, on a lease/2
// cadence: every reachable mirror is read (a higher term anywhere means
// this coordinator was deposed while partitioned — adopt it and demote)
// and refreshed with the current image (lossy latest-wins, like every
// other control path: a mirror clobbered by a deposed writer heals within
// one cadence). A successful mirror contact refreshes authOK, the
// coordinator's own self-fencing clock (lease.go leaseValid).
func (s *Store) mirrorTick(now time.Time) {
	if len(s.succ) <= 1 {
		// Collapsed single-authority mode: the local slot IS the
		// authority, so it is fresh by definition (keeps CfgStaleMs
		// meaningful on 2-node clusters).
		s.authOK = now
		s.markCfgFresh(now)
		return
	}
	cl := s.ctx.Node().Cluster()
	contacted := 0
	for _, p := range s.succ {
		if p == s.me || !cl.Reachable(s.me, p) {
			continue
		}
		if term, epoch, down, rot, ok := s.readPeerSlot(p); ok && termNewer(term, s.cfgTerm) {
			s.adoptTerm(term, epoch, down, rot)
			s.markCfgFresh(now)
			return // demoted: a follower now, pollConfig takes over
		}
		if s.writeMirror(p, s.cfgTerm, s.cfgEpoch, s.cfgDown, s.cfgRot) == nil {
			contacted++
		}
	}
	if contacted >= s.authorityQuorum() {
		s.authOK = now
		s.markCfgFresh(now)
	}
}

// nudgePeers broadcasts a best-effort config-change control frame so peers
// poll the slot (or, seeing a new term, scan the succession set) now
// instead of at their next scheduled read.
func (s *Store) nudgePeers(epoch uint64) {
	var b [ctlMaxLen]byte
	frame := encodeCtl(b[:], ctlFrame{kind: ctlCfgChanged, term: s.cfgTerm, epoch: epoch})
	cl := s.ctx.Node().Cluster()
	for p := 0; p < s.n; p++ {
		if p == s.me || !cl.Reachable(s.me, p) {
			continue
		}
		_ = s.msgr.SendControl(p, frame)
	}
}

// leaderFor reports the shard leader implied by a ring, down mask, and
// rotation mask: the first owner in (possibly rotated) ring order not
// marked down (falling back to the rotated primary when every owner is).
// A pure function of (ring, masks), so every node — and every client
// holding a configView snapshot — at the same epoch derives the same
// leader.
func leaderFor(r *Ring, shard int, down, rot uint64) int {
	owners := r.ownersUnder(shard, rot)
	for _, o := range owners {
		if o >= 64 || down&(1<<uint(o)) == 0 {
			return o
		}
	}
	return owners[0]
}

// leaderUnder is leaderFor over the store's current ring.
func (s *Store) leaderUnder(shard int, down, rot uint64) int {
	return leaderFor(s.ring(), shard, down, rot)
}

// leaderOf reports the node leading a shard under the cached configuration.
func (s *Store) leaderOf(shard int) int { return s.leaderUnder(shard, s.cfgDown, s.cfgRot) }

// countPromotions accounts leadership moves between two configurations.
func (s *Store) countPromotions(oldMask, newMask, oldRot, newRot uint64) {
	if oldMask == newMask && oldRot == newRot {
		return
	}
	var moved uint64
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if s.leaderUnder(shard, oldMask, oldRot) != s.leaderUnder(shard, newMask, newRot) {
			moved++
		}
	}
	if moved > 0 {
		s.promotions.Add(moved)
	}
}

// expectedReporters computes which nodes must verify (repair) peer before
// the coordinator may re-admit it: the current leader of every shard the
// peer owns. Shards with no live leader contribute nothing — no writes can
// land there, so there is nothing the peer could have missed that a
// repairer could prove.
func (s *Store) expectedReporters(peer int) uint64 {
	var mask uint64
	ring := s.ring()
	if !ring.ContainsNode(peer) {
		return 0
	}
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if !containsInt(ring.ownersShared(shard), peer) {
			continue
		}
		l := s.leaderOf(shard)
		if l == peer || s.cfgDownBit(l) {
			continue
		}
		mask |= 1 << uint(l)
	}
	return mask
}

// maybeReadmit re-admits the lowest-numbered evicted peer whose repair has
// been verified by all of its expected reporters. Active coordinator only.
//
// Re-admission is deliberately staged — ONE peer per epoch bump — because
// of leaderless shards: when every owner of a shard is evicted (a double
// fault), no live leader exists to verify either owner for it, so
// expectedReporters excludes the shard for both and a bulk re-admission
// would bring the pair back with the shard never reconciled (writes the
// old leader acknowledged before fencing would silently stay missing from
// its peer). Admitting one peer at a time gives the shard a live leader
// again; the NEXT candidate's expected-reporter set then includes that
// leader, whose repair pass (push or pull, ordered by the shard-epoch
// words) reconciles the shard before anyone reads the second peer.
func (s *Store) maybeReadmit() {
	if s.cfgDown == 0 {
		return
	}
	cl := s.ctx.Node().Cluster()
	for p := 0; p < s.n && p < 64; p++ {
		bit := uint64(1) << uint(p)
		if s.cfgDown&bit == 0 || !cl.Reachable(s.me, p) {
			continue
		}
		expected := s.expectedReporters(p)
		if s.rejoinAcks[p]&expected == expected {
			s.bumpConfig(s.cfgDown&^bit, s.cfgRot)
			return
		}
	}
}
