package kvs

import (
	"encoding/binary"
	"time"
)

// This file implements the configuration-epoch authority (FaRM-style): a
// single coordinator node owns a seqlock-published config slot inside its
// store region — (epoch, evicted-node bitmask) — and every other node
// caches it with one-sided reads. Membership changes (evictions after
// failures, re-admissions after anti-entropy repair) are EPOCH TRANSITIONS:
// the coordinator bumps the epoch and rewrites the slot, and per-shard
// leadership everywhere re-derives as a pure function of (ring, down mask),
// so publishing the mask IS publishing leadership — two nodes holding the
// same epoch can never disagree on who leads a shard.
//
// Safety against stale leaders comes from leases (lease.go): the
// coordinator activates an epoch that demotes a leader only after that
// leader's lease has provably lapsed, and a leader whose lease lapses
// fences itself. Repair then arbitrates divergence on (epoch, version)
// instead of bare version counts: each shard carries an epoch word stamped
// by leader writes, and a repairer operating under a newer epoch overrides
// a peer wholesale — which is what makes the asymmetric-partition case
// (a stale leader that kept absorbing writes) convergent with a defined
// winner (store.go repairShard/applyRepair).

// Config slot layout (one cache line in the coordinator's store region):
//
//	word 0: seq   — seqlock: odd while the coordinator is mid-update
//	word 1: epoch — configuration epoch; 0 = never published, first is 1
//	word 2: down  — bitmask of evicted nodes (bit i = node i)
//	words 3..7: reserved
//
// A one-sided read of the line is torn-free at line granularity, but the
// seqlock discipline keeps the slot safe if it ever grows past one line.

// configView is the lock-free snapshot of the cached configuration that
// client goroutines read (GET routing skips evicted replicas).
type configView struct {
	epoch uint64
	down  uint64
}

// downBit reports whether node is evicted in this view.
func (v configView) downBit(node int) bool {
	return node >= 0 && node < 64 && v.down&(1<<uint(node)) != 0
}

// parseConfigSlot decodes a config-slot line. ok is false for a torn
// (odd-seq) or never-published image.
func parseConfigSlot(line []byte) (epoch, down uint64, ok bool) {
	seq := binary.LittleEndian.Uint64(line[0:])
	if seq == 0 || seq&1 == 1 {
		return 0, 0, false
	}
	return binary.LittleEndian.Uint64(line[8:]), binary.LittleEndian.Uint64(line[16:]), true
}

// writeConfigSlot publishes (epoch, down) into the local config slot under
// the seqlock discipline. Coordinator only; serve goroutine only.
func (s *Store) writeConfigSlot(epoch, down uint64) {
	off := s.cfg.cfgSlotOff()
	seq, err := s.mem.Load64(off)
	if err != nil {
		return
	}
	if err := s.mem.Store64(off, seq|1); err != nil {
		return
	}
	_ = s.mem.Store64(off+8, epoch)
	_ = s.mem.Store64(off+16, down)
	_ = s.mem.Store64(off, (seq|1)+1)
}

// publishCfg refreshes the lock-free configuration snapshot for clients.
func (s *Store) publishCfg() {
	s.cfgPub.Store(&configView{epoch: s.cfgEpoch, down: s.cfgDown})
}

// cfgSnapshot returns the current lock-free configuration view.
func (s *Store) cfgSnapshot() configView { return *s.cfgPub.Load() }

// Epoch reports the store's cached configuration epoch. Harnesses use it
// to watch epoch transitions (evictions and re-admissions both bump it).
func (s *Store) Epoch() uint64 { return s.cfgSnapshot().epoch }

// EpochDown reports whether node is evicted in the cached configuration —
// the cluster-wide, totally ordered counterpart of DownView's local
// reachability guess.
func (s *Store) EpochDown(node int) bool { return s.cfgSnapshot().downBit(node) }

// cfgDownBit reports eviction from the serve goroutine's cached mask.
func (s *Store) cfgDownBit(node int) bool {
	return node >= 0 && node < 64 && s.cfgDown&(1<<uint(node)) != 0
}

// pollConfig re-reads the coordinator's config slot with a one-sided read
// and adopts any newer epoch. Serve goroutine, non-coordinator only.
func (s *Store) pollConfig() {
	s.cfgDirty = false
	if err := s.qp.Read(s.coord, uint64(s.cfg.cfgSlotOff()), s.cfgBuf, 0, cfgSlotSize); err != nil {
		return // coordinator unreachable: keep the cached epoch
	}
	if err := s.cfgBuf.ReadAt(0, s.cfgLine); err != nil {
		return
	}
	epoch, down, ok := parseConfigSlot(s.cfgLine)
	if !ok {
		s.cfgDirty = true // torn mid-update: re-read on the next pass
		return
	}
	if epoch > s.cfgEpoch {
		s.adoptConfig(epoch, down)
	}
}

// adoptConfig installs a new configuration epoch on the serve goroutine:
// leadership re-derives from the down mask, re-admitted peers resume
// serving, the (now stale) lease is renewed eagerly, still-down peers are
// queued for (re-)verification, and parked PUTs re-route under the new
// leadership. Called by the coordinator immediately after bumpConfig and
// by every other node when a poll observes a newer epoch.
func (s *Store) adoptConfig(epoch, down uint64) {
	if epoch == s.cfgEpoch && down == s.cfgDown {
		return
	}
	old := s.cfgDown
	s.cfgEpoch, s.cfgDown = epoch, down
	s.epochBumps.Add(1)
	s.countPromotions(old, down)
	s.publishCfg()
	// A cleared bit means the peer was verified by every shard leader:
	// resume reading from and replicating to it. Local reachability can
	// lag the config, so clear the local down flag only when the fabric
	// agrees.
	cl := s.ctx.Node().Cluster()
	changed := false
	for p := 0; p < s.n; p++ {
		if down&(1<<uint(p)) != 0 {
			// Every epoch bump restarts verification: a repair proven
			// under an older epoch may no longer cover the shards this
			// node leads now.
			s.repaired[p] = false
			continue
		}
		s.repaired[p] = false
		if s.down[p] && p != s.me && cl.Reachable(s.me, p) {
			s.down[p] = false
			changed = true
		}
	}
	if changed {
		s.publishDown()
	}
	if down != 0 {
		s.healPending = true
		s.healRetryAt = time.Now()
	}
	// Claim the new epoch's lineage for every shard this node now leads:
	// a promoted leader's (replicated) image is authoritative from this
	// epoch on, even before its first write. Without this stamp, a demoted
	// absorber advancing slot versions under the OLD word could tie words
	// with the new leader and win repair's equal-word version comparison —
	// exactly the divergence epochs exist to arbitrate. An evicted node
	// never stamps (it may be the fallback "leader" of a shard whose every
	// owner is down, and claiming lineage there would let stale data
	// outrank the real last leader's — reverse pull settles those by the
	// words the actual leaders left behind).
	if !s.cfgDownBit(s.me) {
		for shard := 0; shard < s.cfg.Shards; shard++ {
			if s.leaderUnder(shard, down) != s.me {
				continue
			}
			off := s.cfg.shardEpochOff(shard)
			if w, err := s.mem.Load64(off); err == nil && epoch > w {
				_ = s.mem.Store64(off, epoch)
			}
		}
	}
	s.renewAt = time.Time{} // the old lease died with its epoch
	s.parkedDirty = true
}

// bumpConfig publishes a new epoch with the given down mask and nudges
// every reachable peer to re-read it. Coordinator only.
func (s *Store) bumpConfig(down uint64) {
	epoch := s.cfgEpoch + 1
	s.writeConfigSlot(epoch, down)
	// Every bump restarts rejoin verification (see adoptConfig).
	for p := range s.rejoinAcks {
		s.rejoinAcks[p] = 0
	}
	s.adoptConfig(epoch, down)
	s.nudgePeers(epoch)
}

// nudgePeers broadcasts a best-effort epoch-change control frame so peers
// poll the slot now instead of at their next scheduled read.
func (s *Store) nudgePeers(epoch uint64) {
	var b [9]byte
	b[0] = ctlCfgChanged
	binary.LittleEndian.PutUint64(b[1:], epoch)
	cl := s.ctx.Node().Cluster()
	for p := 0; p < s.n; p++ {
		if p == s.me || !cl.Reachable(s.me, p) {
			continue
		}
		_ = s.msgr.SendControl(p, b[:])
	}
}

// leaderUnder reports the shard leader implied by a down mask: the first
// owner in ring order not marked down (falling back to the primary when
// every owner is). A pure function of (ring, mask), so every node at the
// same epoch derives the same leader.
func (s *Store) leaderUnder(shard int, down uint64) int {
	owners := s.ring().ownersShared(shard)
	for _, o := range owners {
		if o >= 64 || down&(1<<uint(o)) == 0 {
			return o
		}
	}
	return owners[0]
}

// leaderOf reports the node leading a shard under the cached configuration.
func (s *Store) leaderOf(shard int) int { return s.leaderUnder(shard, s.cfgDown) }

// countPromotions accounts leadership moves between two down masks.
func (s *Store) countPromotions(oldMask, newMask uint64) {
	if oldMask == newMask {
		return
	}
	var moved uint64
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if s.leaderUnder(shard, oldMask) != s.leaderUnder(shard, newMask) {
			moved++
		}
	}
	if moved > 0 {
		s.promotions.Add(moved)
	}
}

// expectedReporters computes which nodes must verify (repair) peer before
// the coordinator may re-admit it: the current leader of every shard the
// peer owns. Shards with no live leader contribute nothing — no writes can
// land there, so there is nothing the peer could have missed that a
// repairer could prove.
func (s *Store) expectedReporters(peer int) uint64 {
	var mask uint64
	ring := s.ring()
	if !ring.ContainsNode(peer) {
		return 0
	}
	for shard := 0; shard < s.cfg.Shards; shard++ {
		if !containsInt(ring.ownersShared(shard), peer) {
			continue
		}
		l := s.leaderOf(shard)
		if l == peer || s.cfgDownBit(l) {
			continue
		}
		mask |= 1 << uint(l)
	}
	return mask
}

// maybeReadmit re-admits the lowest-numbered evicted peer whose repair has
// been verified by all of its expected reporters. Coordinator only.
//
// Re-admission is deliberately staged — ONE peer per epoch bump — because
// of leaderless shards: when every owner of a shard is evicted (a double
// fault), no live leader exists to verify either owner for it, so
// expectedReporters excludes the shard for both and a bulk re-admission
// would bring the pair back with the shard never reconciled (writes the
// old leader acknowledged before fencing would silently stay missing from
// its peer). Admitting one peer at a time gives the shard a live leader
// again; the NEXT candidate's expected-reporter set then includes that
// leader, whose repair pass (push or pull, ordered by the shard-epoch
// words) reconciles the shard before anyone reads the second peer.
func (s *Store) maybeReadmit() {
	if s.cfgDown == 0 {
		return
	}
	cl := s.ctx.Node().Cluster()
	for p := 0; p < s.n && p < 64; p++ {
		bit := uint64(1) << uint(p)
		if s.cfgDown&bit == 0 || !cl.Reachable(s.me, p) {
			continue
		}
		expected := s.expectedReporters(p)
		if s.rejoinAcks[p]&expected == expected {
			s.bumpConfig(s.cfgDown &^ bit)
			return
		}
	}
}
