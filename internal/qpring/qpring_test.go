package qpring

import (
	"sync"
	"testing"
	"testing/quick"

	"sonuma/internal/core"
)

func TestWQBasic(t *testing.T) {
	wq := NewWQ(4)
	if wq.Cap() != 4 {
		t.Fatalf("cap = %d", wq.Cap())
	}
	for i := 0; i < 4; i++ {
		idx, ok := wq.Post(WQEntry{Offset: uint64(i)})
		if !ok || idx != uint32(i) {
			t.Fatalf("post %d: idx=%d ok=%v", i, idx, ok)
		}
	}
	if _, ok := wq.Post(WQEntry{}); ok {
		t.Fatal("post into full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		e, idx, ok := wq.Poll()
		if !ok || idx != uint32(i) || e.Offset != uint64(i) {
			t.Fatalf("poll %d: %+v idx=%d ok=%v", i, e, idx, ok)
		}
	}
	if _, _, ok := wq.Poll(); ok {
		t.Fatal("poll of empty ring succeeded")
	}
}

func TestWQDepthRounding(t *testing.T) {
	if got := NewWQ(5).Cap(); got != 8 {
		t.Fatalf("depth 5 rounded to %d, want 8", got)
	}
	if got := NewWQ(1).Cap(); got != 1 {
		t.Fatalf("depth 1 rounded to %d, want 1", got)
	}
}

func TestWQWrapAround(t *testing.T) {
	wq := NewWQ(4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if _, ok := wq.Post(WQEntry{Offset: uint64(round*3 + i)}); !ok {
				t.Fatalf("round %d post %d failed", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			e, _, ok := wq.Poll()
			if !ok || e.Offset != uint64(round*3+i) {
				t.Fatalf("round %d poll %d: %+v", round, i, e)
			}
		}
	}
}

func TestNextSlotTracksTail(t *testing.T) {
	wq := NewWQ(4)
	for i := 0; i < 9; i++ {
		want := uint32(i % 4)
		if got := wq.NextSlot(); got != want {
			t.Fatalf("NextSlot before post %d = %d, want %d", i, got, want)
		}
		idx, _ := wq.Post(WQEntry{})
		if idx != want {
			t.Fatalf("post %d landed at %d, want %d", i, idx, want)
		}
		wq.Poll()
	}
}

func TestCQBasic(t *testing.T) {
	cq := NewCQ(4)
	for i := 0; i < 4; i++ {
		if !cq.Post(CQEntry{WQIndex: uint32(i)}) {
			t.Fatalf("post %d failed", i)
		}
	}
	if cq.Post(CQEntry{}) {
		t.Fatal("post into full CQ succeeded")
	}
	for i := 0; i < 4; i++ {
		e, ok := cq.Poll()
		if !ok || e.WQIndex != uint32(i) {
			t.Fatalf("poll %d: %+v", i, e)
		}
	}
}

func TestCQCarriesStatus(t *testing.T) {
	cq := NewCQ(2)
	cq.Post(CQEntry{WQIndex: 1, Status: core.StatusBoundsError})
	e, ok := cq.Poll()
	if !ok || e.Status != core.StatusBoundsError || e.WQIndex != 1 {
		t.Fatalf("entry %+v", e)
	}
}

// TestSPSCConcurrent drives the ring from two goroutines, verifying every
// entry arrives exactly once and in order — the coherent-queue contract the
// WQ/CQ pair relies on (§4.1).
func TestSPSCConcurrent(t *testing.T) {
	wq := NewWQ(64)
	const total = 100000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer (application)
		defer wg.Done()
		for i := 0; i < total; {
			if _, ok := wq.Post(WQEntry{Offset: uint64(i)}); ok {
				i++
			}
		}
	}()
	var bad int
	go func() { // consumer (RMC)
		defer wg.Done()
		for i := 0; i < total; {
			e, _, ok := wq.Poll()
			if !ok {
				continue
			}
			if e.Offset != uint64(i) {
				bad++
				return
			}
			i++
		}
	}()
	wg.Wait()
	if bad != 0 {
		t.Fatal("SPSC ring delivered out-of-order or corrupt entries")
	}
}

// Property: any interleaving of posts and polls preserves FIFO order and
// never loses or duplicates entries.
func TestPropertyFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		wq := NewWQ(8)
		nextPost, nextPoll := uint64(0), uint64(0)
		for _, isPost := range ops {
			if isPost {
				if _, ok := wq.Post(WQEntry{Offset: nextPost}); ok {
					nextPost++
				}
			} else {
				if e, _, ok := wq.Poll(); ok {
					if e.Offset != nextPoll {
						return false
					}
					nextPoll++
				}
			}
		}
		return nextPoll <= nextPost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Len never exceeds Cap and reflects posts minus polls.
func TestPropertyOccupancy(t *testing.T) {
	f := func(ops []bool) bool {
		wq := NewWQ(4)
		occupancy := 0
		for _, isPost := range ops {
			if isPost {
				if _, ok := wq.Post(WQEntry{}); ok {
					occupancy++
				}
			} else if _, _, ok := wq.Poll(); ok {
				occupancy--
			}
			if wq.Len() != occupancy || occupancy > wq.Cap() || occupancy < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPostManySingleTailPublish(t *testing.T) {
	wq := NewWQ(8)
	es := make([]WQEntry, 5)
	for i := range es {
		es[i] = WQEntry{Offset: uint64(i)}
	}
	if wq.SlotAt(0) != 0 || wq.SlotAt(4) != 4 {
		t.Fatal("SlotAt wrong on empty ring")
	}
	if n := wq.PostMany(es); n != 5 {
		t.Fatalf("posted %d, want 5", n)
	}
	if wq.Len() != 5 || wq.Room() != 3 {
		t.Fatalf("len=%d room=%d after PostMany", wq.Len(), wq.Room())
	}
	for i := 0; i < 5; i++ {
		e, idx, ok := wq.Poll()
		if !ok || e.Offset != uint64(i) || idx != uint32(i) {
			t.Fatalf("poll %d: ok=%v off=%d idx=%d", i, ok, e.Offset, idx)
		}
	}
}

func TestPostManyBoundedByRoom(t *testing.T) {
	wq := NewWQ(4)
	es := make([]WQEntry, 7)
	for i := range es {
		es[i] = WQEntry{Offset: uint64(i)}
	}
	if n := wq.PostMany(es); n != 4 {
		t.Fatalf("posted %d into depth-4 ring, want 4", n)
	}
	if n := wq.PostMany(es[4:]); n != 0 {
		t.Fatalf("posted %d into full ring, want 0", n)
	}
	wq.Poll()
	wq.Poll()
	if n := wq.PostMany(es[4:]); n != 2 {
		t.Fatalf("posted %d into ring with 2 free, want 2", n)
	}
	// Wrap-around run: entries 4..5 land in slots 0..1.
	e, idx, _ := wq.Poll()
	if e.Offset != 2 || idx != 2 {
		t.Fatalf("FIFO broken after wrapped PostMany: off=%d idx=%d", e.Offset, idx)
	}
}
