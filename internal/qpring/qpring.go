// Package qpring implements the queue-pair rings of the soNUMA
// hardware/software interface (§4.1): the work queue (WQ), a bounded buffer
// written exclusively by the application, and the completion queue (CQ), a
// bounded buffer of the same size written exclusively by the RMC. A CQ entry
// carries the index of the completed WQ request.
//
// In the paper both rings live in cacheable memory and are polled by the
// other side through the coherence hierarchy. Here each ring is a
// single-producer/single-consumer circular buffer whose head and tail are
// published with acquire/release atomics, which is the software analogue of
// a coherent cacheable queue: the producer's entry write happens-before the
// consumer's observation of the advanced tail.
package qpring

import (
	"sync/atomic"

	"sonuma/internal/core"
)

// WQEntry is one work-queue request (§6: "The WQ entry specifies the
// dst_nid, the command, the offset, the length and the local buffer
// address."). Atomics carry their operands in Arg0/Arg1.
type WQEntry struct {
	Op     core.Op
	Node   core.NodeID // destination node
	Offset uint64      // offset within the destination's context segment
	Length uint32      // bytes; rounded up to cache lines by the RMC
	Buf    uint32      // registered local buffer id
	BufOff uint64      // offset within the local buffer
	Arg0   uint64      // FetchAdd delta / CompareSwap expected
	Arg1   uint64      // CompareSwap new value
}

// CQEntry is one completion (§4.2 RCP: "the RMC signals the request's
// completion by writing the index of the completed WQ entry into the
// corresponding CQ").
type CQEntry struct {
	WQIndex uint32
	Status  core.Status
}

// pad prevents head/tail false sharing between producer and consumer sides.
type pad [56]byte

// ring is the shared SPSC machinery: slots[0..mask] with monotonically
// increasing head (consume cursor) and tail (produce cursor).
type ring struct {
	mask uint32
	tail atomic.Uint32 // next slot to produce; owned by producer
	_    pad
	head atomic.Uint32 // next slot to consume; owned by consumer
	_    pad
}

func (r *ring) init(depth int) int {
	size := 1
	for size < depth {
		size <<= 1
	}
	r.mask = uint32(size - 1)
	return size
}

// full reports whether the ring has no free slot (producer side).
func (r *ring) full() bool { return r.tail.Load()-r.head.Load() > r.mask }

// empty reports whether the ring has no pending entry (consumer side).
func (r *ring) empty() bool { return r.head.Load() == r.tail.Load() }

// len reports the number of occupied slots.
func (r *ring) len() int { return int(r.tail.Load() - r.head.Load()) }

// WQ is the application→RMC work queue.
type WQ struct {
	ring
	slots []WQEntry
}

// NewWQ creates a work queue with at least depth slots (rounded up to a
// power of two).
func NewWQ(depth int) *WQ {
	wq := &WQ{}
	n := wq.init(depth)
	wq.slots = make([]WQEntry, n)
	return wq
}

// Cap reports the ring capacity.
func (wq *WQ) Cap() int { return len(wq.slots) }

// Len reports the number of posted-but-unconsumed entries.
func (wq *WQ) Len() int { return wq.len() }

// Full reports whether the WQ head is occupied (the application must drain
// CQ events until a slot frees, cf. rmc_wait_for_slot in Fig. 4).
func (wq *WQ) Full() bool { return wq.full() }

// NextSlot reports the WQ index the next Post will occupy. The access
// library uses it to implement rmc_wait_for_slot (Fig. 4), which must hand
// the application the slot number before the entry is scheduled.
// Application (producer) side only.
func (wq *WQ) NextSlot() uint32 { return wq.tail.Load() & wq.mask }

// Room reports the number of free slots. Application (producer) side only.
func (wq *WQ) Room() int { return int(wq.mask+1) - wq.len() }

// SlotAt reports the WQ index that the k-th next Post (0-based) will
// occupy, letting batched issue stage callbacks for a contiguous run of
// slots before publishing it. Application (producer) side only.
func (wq *WQ) SlotAt(k uint32) uint32 { return (wq.tail.Load() + k) & wq.mask }

// PostMany writes up to len(es) entries at the tail with a single tail
// publish — the ring analogue of a coalesced doorbell: the RMC observes the
// whole burst at once. It returns the number of entries posted (bounded by
// the free slots). Application (producer) side only.
func (wq *WQ) PostMany(es []WQEntry) int {
	t := wq.tail.Load()
	room := int(wq.mask+1) - int(t-wq.head.Load())
	n := len(es)
	if n > room {
		n = room
	}
	if n == 0 {
		return 0
	}
	for i := 0; i < n; i++ {
		wq.slots[(t+uint32(i))&wq.mask] = es[i]
	}
	wq.tail.Store(t + uint32(n)) // release: publishes every slot write
	return n
}

// Post writes an entry at the tail. It returns the WQ index of the entry and
// false if the ring is full. Application (producer) side only.
func (wq *WQ) Post(e WQEntry) (uint32, bool) {
	if wq.full() {
		return 0, false
	}
	t := wq.tail.Load()
	wq.slots[t&wq.mask] = e
	wq.tail.Store(t + 1) // release: publishes the slot write
	return t & wq.mask, true
}

// Poll consumes the oldest pending entry. It returns the entry, its WQ
// index, and whether one was available. RMC (consumer) side only.
func (wq *WQ) Poll() (WQEntry, uint32, bool) {
	h := wq.head.Load()
	if h == wq.tail.Load() { // acquire: pairs with Post's release
		return WQEntry{}, 0, false
	}
	e := wq.slots[h&wq.mask]
	wq.head.Store(h + 1)
	return e, h & wq.mask, true
}

// CQ is the RMC→application completion queue.
type CQ struct {
	ring
	slots []CQEntry
}

// NewCQ creates a completion queue with at least depth slots. The paper
// sizes the CQ equal to the WQ so the RMC can never overflow it (each WQ
// entry produces exactly one completion).
func NewCQ(depth int) *CQ {
	cq := &CQ{}
	n := cq.init(depth)
	cq.slots = make([]CQEntry, n)
	return cq
}

// Cap reports the ring capacity.
func (cq *CQ) Cap() int { return len(cq.slots) }

// Len reports the number of pending completions.
func (cq *CQ) Len() int { return cq.len() }

// Post writes a completion. It returns false if the ring is full, which
// indicates a sizing bug (CQ must be at least as deep as the WQ). RMC
// (producer) side only.
func (cq *CQ) Post(e CQEntry) bool {
	if cq.full() {
		return false
	}
	t := cq.tail.Load()
	cq.slots[t&cq.mask] = e
	cq.tail.Store(t + 1)
	return true
}

// Poll consumes the oldest completion, reporting whether one was available.
// Application (consumer) side only.
func (cq *CQ) Poll() (CQEntry, bool) {
	h := cq.head.Load()
	if h == cq.tail.Load() {
		return CQEntry{}, false
	}
	e := cq.slots[h&cq.mask]
	cq.head.Store(h + 1)
	return e, true
}
