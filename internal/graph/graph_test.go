package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenDeterministic(t *testing.T) {
	a := GenPowerLaw(1000, 8, 1.8, 42)
	b := GenPowerLaw(1000, 8, 1.8, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed, different edges")
		}
	}
	c := GenPowerLaw(1000, 8, 1.8, 43)
	if c.NumEdges() == a.NumEdges() {
		same := true
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenShape(t *testing.T) {
	g := GenPowerLaw(5000, 10, 1.8, 7)
	if g.N != 5000 {
		t.Fatalf("N = %d", g.N)
	}
	avg := float64(g.NumEdges()) / float64(g.N)
	if avg < 5 || avg > 20 {
		t.Fatalf("average degree %.1f far from requested 10", avg)
	}
	// CSR invariants.
	if g.Offsets[0] != 0 || int(g.Offsets[g.N]) != g.NumEdges() {
		t.Fatal("CSR offsets corrupt")
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			t.Fatal("offsets not monotone")
		}
		for _, nb := range g.Neighbors(v) {
			if nb < 0 || int(nb) >= g.N {
				t.Fatalf("edge target %d out of range", nb)
			}
			if int(nb) == v {
				t.Fatal("self loop survived")
			}
		}
	}
	for _, d := range g.OutDeg {
		if d < 1 {
			t.Fatal("OutDeg < 1")
		}
	}
}

func TestSourceSkew(t *testing.T) {
	g := GenPowerLaw(10000, 8, 1.8, 1)
	counts := make([]int, g.N)
	for _, src := range g.Edges {
		counts[src]++
	}
	head := 0
	for v := 0; v < g.N/100; v++ { // top 1% of vertex ids (Zipf head)
		head += counts[v]
	}
	if frac := float64(head) / float64(g.NumEdges()); frac < 0.2 {
		t.Fatalf("top-1%% of vertices source only %.2f of edges; want hub skew", frac)
	}
}

func TestRandomPartition(t *testing.T) {
	g := GenPowerLaw(1003, 6, 1.6, 5)
	pt := RandomPartition(g, 4, 9)
	seen := make([]bool, g.N)
	for p, verts := range pt.Parts {
		for li, v := range verts {
			if seen[v] {
				t.Fatalf("vertex %d in two parts", v)
			}
			seen[v] = true
			if int(pt.Owner[v]) != p || int(pt.LocalIdx[v]) != li {
				t.Fatalf("owner/localIdx inconsistent for %d", v)
			}
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
	// Equal cardinality within 1.
	min, max := g.N, 0
	for _, verts := range pt.Parts {
		if len(verts) < min {
			min = len(verts)
		}
		if len(verts) > max {
			max = len(verts)
		}
	}
	if max-min > 1 {
		t.Fatalf("partition sizes differ by %d", max-min)
	}
}

func TestPartitionStats(t *testing.T) {
	g := GenPowerLaw(2000, 8, 1.8, 3)
	pt := RandomPartition(g, 4, 11)
	es := pt.Stats(g)
	if es.Local+es.Remote != g.NumEdges() {
		t.Fatal("local+remote != edges")
	}
	// Random partitioning: ≈ (p-1)/p of edges cross partitions.
	frac := float64(es.Remote) / float64(g.NumEdges())
	if frac < 0.65 || frac > 0.85 {
		t.Fatalf("remote fraction %.2f, want ≈0.75", frac)
	}
	sum := 0
	for _, e := range es.PerPart {
		sum += e
		if e > es.MaxPart {
			t.Fatal("MaxPart wrong")
		}
	}
	if sum != g.NumEdges() {
		t.Fatal("per-part edges do not sum")
	}
}

func TestPageRankProperties(t *testing.T) {
	g := GenPowerLaw(500, 6, 1.6, 13)
	ranks := PageRank(g, 10)
	sum := 0.0
	for _, r := range ranks {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		sum += r
	}
	// The naive kernel (like the paper's Fig. 4) does not redistribute
	// dangling mass, so the total decays below 1 but must stay positive
	// and bounded.
	if sum <= 0.15 || sum > 1.0001 {
		t.Fatalf("rank mass %f", sum)
	}
	// The vertex with the most in-edges outranks the median vertex.
	hub, best := 0, 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > best {
			best, hub = d, v
		}
	}
	if ranks[hub] <= ranks[g.N/2] {
		t.Fatalf("max-in-degree rank %g <= median %g", ranks[hub], ranks[g.N/2])
	}
}

func TestPageRankConverges(t *testing.T) {
	g := GenPowerLaw(300, 5, 1.6, 17)
	a := PageRank(g, 30)
	b := PageRank(g, 31)
	var delta float64
	for i := range a {
		delta += math.Abs(a[i] - b[i])
	}
	if delta > 1e-3 {
		t.Fatalf("L1 delta after 30 iterations: %g", delta)
	}
}

// Property: partitions are exact covers for any part count.
func TestPropertyPartitionCovers(t *testing.T) {
	g := GenPowerLaw(700, 5, 1.5, 23)
	f := func(p uint8, seed uint64) bool {
		parts := int(p%16) + 1
		pt := RandomPartition(g, parts, seed)
		count := 0
		for _, verts := range pt.Parts {
			count += len(verts)
		}
		return count == g.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
