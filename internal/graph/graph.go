// Package graph provides the graph substrate for the paper's application
// study (§7.5): a deterministic power-law graph generator standing in for
// the Twitter subset of [29], the naive random equal-cardinality vertex
// partitioner the paper uses, and a reference PageRank for functional
// validation of the distributed variants.
package graph

import (
	"fmt"

	"sonuma/internal/stats"
)

// Graph is a directed graph in compressed sparse row form. For PageRank we
// store, per vertex, the list of vertices whose rank it reads (its in-
// neighbors), mirroring the edge iteration of the paper's Fig. 4 kernel.
type Graph struct {
	N       int
	Offsets []int32 // len N+1
	Edges   []int32 // concatenated neighbor lists
	OutDeg  []int32 // out-degree of each vertex (PageRank divisor)
}

// NumEdges reports the total edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degree reports the in-neighbor count of v.
func (g *Graph) Degree(v int) int { return int(g.Offsets[v+1] - g.Offsets[v]) }

// Neighbors returns v's in-neighbor list (aliasing internal storage).
func (g *Graph) Neighbors(v int) []int32 { return g.Edges[g.Offsets[v]:g.Offsets[v+1]] }

// GenPowerLaw generates an n-vertex graph with approximately avgDeg
// in-edges per vertex whose in-degree distribution follows a Zipf law with
// the given exponent — the skew that makes random partitioning imbalanced,
// which drives the Fig. 9 speedup trends. Generation is deterministic in
// seed.
func GenPowerLaw(n, avgDeg int, exponent float64, seed uint64) *Graph {
	if n <= 1 || avgDeg < 1 {
		panic(fmt.Sprintf("graph: invalid size n=%d avgDeg=%d", n, avgDeg))
	}
	rng := stats.NewRNG(seed)
	// Draw per-vertex in-degrees from a truncated Zipf over [1, maxDeg],
	// then rescale to hit the requested average.
	maxDeg := n / 4
	if maxDeg > 4096 {
		maxDeg = 4096
	}
	if maxDeg < 4 {
		maxDeg = 4
	}
	zipf := stats.NewZipf(rng, maxDeg, exponent)
	degs := make([]int32, n)
	var total int64
	for i := range degs {
		d := int32(zipf.Next() + 1)
		degs[i] = d
		total += int64(d)
	}
	want := int64(n) * int64(avgDeg)
	scale := float64(want) / float64(total)
	total = 0
	for i := range degs {
		d := int32(float64(degs[i])*scale + 0.5)
		if d < 1 {
			d = 1
		}
		degs[i] = d
		total += int64(d)
	}
	g := &Graph{
		N:       n,
		Offsets: make([]int32, n+1),
		Edges:   make([]int32, 0, total),
		OutDeg:  make([]int32, n),
	}
	// Edge sources follow their own Zipf law: a small set of hub
	// vertices (celebrity accounts in the Twitter graph) appears in most
	// adjacency lists. This popularity skew is what gives single-node
	// traversals cache locality that per-edge remote reads cannot
	// exploit — the asymmetry behind the paper's fine-grain results.
	srcZipf := stats.NewZipf(rng, n, 1.0)
	for v := 0; v < n; v++ {
		g.Offsets[v] = int32(len(g.Edges))
		for k := int32(0); k < degs[v]; k++ {
			// Self-loops redirect to the next vertex so degrees
			// stay exact.
			src := srcZipf.Next()
			if src == v {
				src = (src + 1) % n
			}
			g.Edges = append(g.Edges, int32(src))
			g.OutDeg[src]++
		}
	}
	g.Offsets[n] = int32(len(g.Edges))
	// Vertices that never appear as a source still need OutDeg >= 1 so
	// the PageRank divisor is well defined.
	for i := range g.OutDeg {
		if g.OutDeg[i] == 0 {
			g.OutDeg[i] = 1
		}
	}
	return g
}

// Partition assigns vertices to parts.
type Partition struct {
	P        int
	Owner    []int32 // vertex -> part
	LocalIdx []int32 // vertex -> index within its part
	Parts    [][]int32
}

// RandomPartition splits vertices into p sets of equal cardinality by
// random permutation — the "naive algorithm that randomly partitions the
// vertices into sets of equal cardinality" of §7.5.
func RandomPartition(g *Graph, p int, seed uint64) *Partition {
	rng := stats.NewRNG(seed)
	perm := make([]int32, g.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := g.N - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	pt := &Partition{
		P:        p,
		Owner:    make([]int32, g.N),
		LocalIdx: make([]int32, g.N),
		Parts:    make([][]int32, p),
	}
	for i, v := range perm {
		part := i % p
		pt.Owner[v] = int32(part)
		pt.LocalIdx[v] = int32(len(pt.Parts[part]))
		pt.Parts[part] = append(pt.Parts[part], v)
	}
	return pt
}

// EdgeStats summarizes partition quality.
type EdgeStats struct {
	Local, Remote int
	PerPart       []int // edges iterated by each part
	MaxPart       int
}

// Stats reports the local/remote edge split and the per-part edge counts
// whose imbalance bounds BSP speedup.
func (pt *Partition) Stats(g *Graph) EdgeStats {
	es := EdgeStats{PerPart: make([]int, pt.P)}
	for v := 0; v < g.N; v++ {
		owner := pt.Owner[v]
		deg := g.Degree(v)
		es.PerPart[owner] += deg
		for _, nb := range g.Neighbors(v) {
			if pt.Owner[nb] == owner {
				es.Local++
			} else {
				es.Remote++
			}
		}
	}
	for _, e := range es.PerPart {
		if e > es.MaxPart {
			es.MaxPart = e
		}
	}
	return es
}

// PageRank runs iters supersteps of the classic algorithm (d = 0.85) and
// returns the final ranks. It is the functional reference the distributed
// implementations are checked against.
func PageRank(g *Graph, iters int) []float64 {
	const d = 0.85
	cur := make([]float64, g.N)
	next := make([]float64, g.N)
	for i := range cur {
		cur[i] = 1.0 / float64(g.N)
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < g.N; v++ {
			sum := 0.0
			for _, nb := range g.Neighbors(v) {
				sum += cur[nb] / float64(g.OutDeg[nb])
			}
			next[v] = (1-d)/float64(g.N) + d*sum
		}
		cur, next = next, cur
	}
	return cur
}
