// Package dram models a DDR3-1600 memory channel with banked timing,
// standing in for the DRAMSim2 back end of the paper's simulation
// methodology (Table 1: single channel, 60 ns access latency, 12.8 GB/s peak
// bandwidth). The model captures the two properties the paper's results
// hinge on: ~60 ns random-access latency and ~9.6 GB/s practical streaming
// bandwidth (bank-limited, minus refresh).
package dram

import (
	"sonuma/internal/sim"
)

// Params are the channel timing parameters.
type Params struct {
	// Banks is the number of DRAM banks (line-interleaved).
	Banks int
	// CtrlOverhead is the controller queue/scheduling delay per access.
	CtrlOverhead sim.Time
	// AccessLatency is activate-to-data for a closed-page access.
	AccessLatency sim.Time
	// BurstTime is the data-bus occupancy of one 64-byte transfer
	// (64 B / 12.8 GB/s = 5 ns).
	BurstTime sim.Time
	// BankBusy is the bank cycle time tRC: minimum spacing of accesses
	// to one bank.
	BankBusy sim.Time
	// RefreshInterval and RefreshTime model periodic all-bank refresh
	// (tREFI / tRFC).
	RefreshInterval sim.Time
	// RefreshTime blocks all banks once per RefreshInterval.
	RefreshTime sim.Time
}

// DDR3_1600 returns Table 1's memory configuration: 60 ns latency,
// 12.8 GB/s channel, 8 banks (≈10 GB/s practical after bank conflicts and
// refresh).
func DDR3_1600() Params {
	return Params{
		Banks:           8,
		CtrlOverhead:    10 * sim.Nanosecond,
		AccessLatency:   45 * sim.Nanosecond,
		BurstTime:       5 * sim.Nanosecond,
		BankBusy:        50 * sim.Nanosecond,
		RefreshInterval: 7800 * sim.Nanosecond,
		RefreshTime:     160 * sim.Nanosecond,
	}
}

// Controller is one memory channel. Access requests name a physical line
// address; the controller resolves bank conflicts, reserves the data bus,
// and calls back when the transfer completes.
type Controller struct {
	eng         *sim.Engine
	p           Params
	banks       []sim.Time // per-bank next-free time
	bus         *sim.Port
	nextRefresh sim.Time

	// Accesses and Bytes count completed transfers.
	Accesses uint64
	Bytes    uint64
}

// New returns a controller bound to the engine.
func New(eng *sim.Engine, p Params) *Controller {
	return &Controller{
		eng:         eng,
		p:           p,
		banks:       make([]sim.Time, p.Banks),
		bus:         sim.NewPort(eng),
		nextRefresh: p.RefreshInterval,
	}
}

// Params returns the controller's timing parameters.
func (c *Controller) Params() Params { return c.p }

// refreshAdjust pushes t out of any refresh window, advancing the refresh
// schedule lazily.
func (c *Controller) refreshAdjust(t sim.Time) sim.Time {
	if c.p.RefreshInterval <= 0 {
		return t
	}
	for t >= c.nextRefresh {
		if t < c.nextRefresh+c.p.RefreshTime {
			t = c.nextRefresh + c.p.RefreshTime
		}
		c.nextRefresh += c.p.RefreshInterval
	}
	return t
}

// Access schedules a 64-byte line transfer at lineAddr and invokes done when
// the data has crossed the bus. Writes and reads share timing (closed-page).
func (c *Controller) Access(lineAddr uint64, write bool, done func()) {
	bank := int(lineAddr) % c.p.Banks
	start := c.eng.Now() + c.p.CtrlOverhead
	if c.banks[bank] > start {
		start = c.banks[bank]
	}
	start = c.refreshAdjust(start)
	c.banks[bank] = start + c.p.BankBusy
	// Data appears AccessLatency after the access starts; the bus burst
	// must be reserved at or after that point.
	burstStart := c.bus.AcquireAt(start+c.p.AccessLatency-c.p.BurstTime, c.p.BurstTime)
	finish := burstStart + c.p.BurstTime
	c.Accesses++
	c.Bytes += 64
	c.eng.At(finish, done)
}

// BusUtilization reports the fraction of simulated time the data bus was
// occupied.
func (c *Controller) BusUtilization() float64 { return c.bus.Utilization() }
