package dram

import (
	"testing"

	"sonuma/internal/sim"
)

func TestSingleAccessLatency(t *testing.T) {
	eng := sim.New()
	c := New(eng, DDR3_1600())
	var end sim.Time
	c.Access(0, false, func() { end = eng.Now() })
	eng.Run()
	// Table 1: ~60ns random access.
	if end < 55*sim.Nanosecond || end > 65*sim.Nanosecond {
		t.Fatalf("idle access latency %v, want ≈60ns", end)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	eng := sim.New()
	p := DDR3_1600()
	c := New(eng, p)
	var t1, t2 sim.Time
	// Same bank: line addresses differing by Banks.
	c.Access(0, false, func() { t1 = eng.Now() })
	c.Access(uint64(p.Banks), false, func() { t2 = eng.Now() })
	eng.Run()
	if t2-t1 < p.BankBusy-p.BurstTime {
		t.Fatalf("bank conflict not serialized: %v then %v", t1, t2)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	eng := sim.New()
	c := New(eng, DDR3_1600())
	var t1, t2 sim.Time
	c.Access(0, false, func() { t1 = eng.Now() })
	c.Access(1, false, func() { t2 = eng.Now() })
	eng.Run()
	// Bank-parallel: only the shared bus separates them.
	if t2-t1 > 10*sim.Nanosecond {
		t.Fatalf("bank-parallel accesses serialized: %v then %v", t1, t2)
	}
}

func TestStreamingBandwidth(t *testing.T) {
	eng := sim.New()
	c := New(eng, DDR3_1600())
	const lines = 4096
	done, issued, outstanding := 0, 0, 0
	var pump func()
	pump = func() {
		for issued < lines && outstanding < 32 {
			outstanding++
			issued++
			c.Access(uint64(issued-1), false, func() {
				outstanding--
				done++
				pump()
			})
		}
	}
	pump()
	end := eng.Run()
	if done != lines {
		t.Fatalf("completed %d/%d", done, lines)
	}
	gbps := float64(lines*64) / end.Seconds() / 1e9
	// Paper's practical DDR3-1600 ceiling: ≈9.6 GB/s (between 8 and the
	// 12.8 GB/s channel peak).
	if gbps < 8 || gbps > 12.8 {
		t.Fatalf("streaming bandwidth %.2f GB/s, want 8–12.8", gbps)
	}
}

func TestRefreshStallsAccesses(t *testing.T) {
	eng := sim.New()
	p := DDR3_1600()
	c := New(eng, p)
	// Land an access inside the first refresh window.
	var end sim.Time
	eng.At(p.RefreshInterval+sim.Nanosecond, func() {
		c.Access(0, false, func() { end = eng.Now() })
	})
	eng.Run()
	minDone := p.RefreshInterval + p.RefreshTime
	if end < minDone {
		t.Fatalf("access during refresh finished at %v, refresh ends %v", end, minDone)
	}
}

func TestCountersAndUtilization(t *testing.T) {
	eng := sim.New()
	c := New(eng, DDR3_1600())
	for i := 0; i < 10; i++ {
		c.Access(uint64(i), i%2 == 0, func() {})
	}
	eng.Run()
	if c.Accesses != 10 || c.Bytes != 640 {
		t.Fatalf("accesses=%d bytes=%d", c.Accesses, c.Bytes)
	}
	if u := c.BusUtilization(); u <= 0 || u > 1 {
		t.Fatalf("bus utilization %f", u)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.New()
		c := New(eng, DDR3_1600())
		for i := 0; i < 200; i++ {
			c.Access(uint64(i*7%64), i%3 == 0, func() {})
		}
		return eng.Run()
	}
	if run() != run() {
		t.Fatal("DRAM timing not deterministic")
	}
}
