package fabric

import (
	"sync/atomic"
	"testing"
	"time"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// procPair builds two ProcFabrics sharing one socket directory: A hosts
// node 0, B hosts node 1 — the smallest real multi-process shape (two
// address spaces in one test binary, but every byte crosses a socket).
func procPair(t *testing.T, credits int) (a, b *ProcFabric) {
	t.Helper()
	dir := t.TempDir()
	cfg := ProcConfig{Nodes: 2, Dir: dir, Credits: credits}
	cfgA, cfgB := cfg, cfg
	cfgA.Local = []int{0}
	cfgB.Local = []int{1}
	var err error
	if a, err = NewProcFabric(cfgA); err != nil {
		t.Fatalf("fabric A: %v", err)
	}
	t.Cleanup(a.Close)
	if b, err = NewProcFabric(cfgB); err != nil {
		t.Fatalf("fabric B: %v", err)
	}
	t.Cleanup(b.Close)
	for _, pf := range []*ProcFabric{a, b} {
		if err := pf.WaitReady(5 * time.Second); err != nil {
			t.Fatalf("WaitReady: %v", err)
		}
	}
	return a, b
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func requestBatch(src, dst core.NodeID, tid core.Tid) *proto.Batch {
	b := proto.AllocBatch()
	pkt := proto.AllocPacket()
	pkt.Kind, pkt.Op = proto.KindRequest, core.OpRead
	pkt.Src, pkt.Dst, pkt.Ctx, pkt.Tid = src, dst, 7, tid
	pkt.Offset, pkt.Aux = 0x40, core.CacheLineSize
	b.Append(pkt)
	return b
}

func TestProcFabricRequestReply(t *testing.T) {
	a, b := procPair(t, 0)

	if err := a.SendBatch(requestBatch(0, 1, 42)); err != nil {
		t.Fatalf("send request: %v", err)
	}
	var req *proto.Batch
	select {
	case req = <-b.Requests(1):
	case <-time.After(5 * time.Second):
		t.Fatal("request never arrived")
	}
	if req.Len() != 1 || req.Src() != 0 || req.Dst() != 1 {
		t.Fatalf("bad request batch: %d pkts %d->%d", req.Len(), req.Src(), req.Dst())
	}
	pkt := req.Packets()[0]
	if pkt.Tid != 42 || pkt.Op != core.OpRead {
		t.Fatalf("request corrupted in flight: %v", pkt)
	}

	rb := proto.AllocBatch()
	rpl := pkt.ReplyInto(proto.AllocPacket(), core.StatusOK)
	copy(rpl.AllocPayload(core.CacheLineSize), make([]byte, core.CacheLineSize))
	rb.Append(rpl)
	proto.FreeBatchPackets(req)
	if err := b.SendBatch(rb); err != nil {
		t.Fatalf("send reply: %v", err)
	}
	select {
	case got := <-a.Replies(0):
		if got.Packets()[0].Tid != 42 || got.Packets()[0].Kind != proto.KindReply {
			t.Fatalf("bad reply: %v", got.Packets()[0])
		}
		proto.FreeBatchPackets(got)
	case <-time.After(5 * time.Second):
		t.Fatal("reply never arrived")
	}
}

func TestProcFabricBackpressure(t *testing.T) {
	a, _ := procPair(t, 2)

	// Nothing consumes node 1's request lane: the sender's window (2) and
	// outbound buffer (2) fill, then TrySendBatch must refuse.
	saw := false
	for i := 0; i < 100; i++ {
		err := a.TrySendBatch(requestBatch(0, 1, core.Tid(i)))
		if err == ErrBackpressure {
			saw = true
			break
		}
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	if !saw {
		t.Fatal("credit exhaustion never produced ErrBackpressure")
	}
}

func TestProcFabricAdminCutAndRestore(t *testing.T) {
	a, b := procPair(t, 0)

	var aFail, aRestore, bFail atomic.Int32
	a.WatchLink(func(x, y core.NodeID, epoch uint64) { aFail.Add(1) })
	a.WatchLinkRestore(func(x, y core.NodeID, epoch uint64) { aRestore.Add(1) })
	b.WatchLink(func(x, y core.NodeID, epoch uint64) { bFail.Add(1) })

	// The driver broadcasts the cut to every process.
	a.FailLink(0, 1)
	b.FailLink(0, 1)
	waitFor(t, "fail watchers", func() bool { return aFail.Load() >= 1 && bFail.Load() >= 1 })
	if _, err := a.LaneFor(proto.KindRequest, 0, 1); err != ErrDown {
		t.Fatalf("LaneFor over cut link: %v", err)
	}
	if a.Reachable(0, 1) {
		t.Fatal("cut pair still Reachable")
	}

	a.RestoreLink(0, 1)
	b.RestoreLink(0, 1)
	waitFor(t, "reconnect", func() bool { return a.Reachable(0, 1) && b.Reachable(0, 1) })
	waitFor(t, "restore watcher", func() bool { return aRestore.Load() >= 1 })

	if err := a.SendBatch(requestBatch(0, 1, 7)); err != nil {
		t.Fatalf("send after restore: %v", err)
	}
	select {
	case req := <-b.Requests(1):
		proto.FreeBatchPackets(req)
	case <-time.After(5 * time.Second):
		t.Fatal("request after restore never arrived")
	}
}

func TestProcFabricDirectedCut(t *testing.T) {
	a, b := procPair(t, 0)
	a.FailLinkDirected(0, 1)
	b.FailLinkDirected(0, 1)

	// Requests 0→1 fail outright; replies 0→1 are also refused (dead
	// direction), but replies 1→0 still flow.
	if _, err := a.LaneFor(proto.KindRequest, 0, 1); err != ErrDown {
		t.Fatalf("request over dead direction: %v", err)
	}
	if _, err := a.LaneFor(proto.KindReply, 0, 1); err != ErrDown {
		t.Fatalf("reply over dead direction: %v", err)
	}
	// Requests 1→0 must fail too: their replies would cross the dead
	// direction and strand the transaction.
	if _, err := b.LaneFor(proto.KindRequest, 1, 0); err != ErrDown {
		t.Fatalf("request with dead reply route: %v", err)
	}
	rb := proto.AllocBatch()
	pkt := proto.AllocPacket()
	pkt.Kind, pkt.Op = proto.KindReply, core.OpRead
	pkt.Src, pkt.Dst, pkt.Tid = 1, 0, 9
	rb.Append(pkt)
	if err := b.SendBatch(rb); err != nil {
		t.Fatalf("reply over healthy direction: %v", err)
	}
	select {
	case got := <-a.Replies(0):
		proto.FreeBatchPackets(got)
	case <-time.After(5 * time.Second):
		t.Fatal("healthy-direction reply never arrived")
	}
}

func TestProcFabricPeerDeathAndRebirth(t *testing.T) {
	a, b := procPair(t, 0)

	var fails, restores atomic.Int32
	a.WatchLink(func(x, y core.NodeID, epoch uint64) {
		if pairKeyOf(x, y) == pairKeyOf(0, 1) {
			fails.Add(1)
		}
	})
	a.WatchLinkRestore(func(x, y core.NodeID, epoch uint64) {
		if pairKeyOf(x, y) == pairKeyOf(0, 1) {
			restores.Add(1)
		}
	})

	// Kill the peer wholesale — the in-test analogue of SIGKILL. A's
	// supervisors must notice without any traffic being sent.
	b.Close()
	waitFor(t, "observed link failure", func() bool { return fails.Load() >= 1 })
	if a.Reachable(0, 1) {
		t.Fatal("dead peer still Reachable")
	}
	if _, err := a.LaneFor(proto.KindRequest, 0, 1); err != ErrDown {
		t.Fatalf("LaneFor toward dead peer: %v", err)
	}

	// Rebirth: a fresh fabric for node 1 (empty state, same address).
	cfg := ProcConfig{Nodes: 2, Dir: a.cfg.Dir, Local: []int{1}}
	b2, err := NewProcFabric(cfg)
	if err != nil {
		t.Fatalf("rebirth: %v", err)
	}
	t.Cleanup(b2.Close)
	waitFor(t, "observed restore", func() bool { return restores.Load() >= 1 })
	waitFor(t, "reachable after rebirth", func() bool { return a.Reachable(0, 1) })

	if err := a.SendBatch(requestBatch(0, 1, 3)); err != nil {
		t.Fatalf("send after rebirth: %v", err)
	}
	select {
	case req := <-b2.Requests(1):
		proto.FreeBatchPackets(req)
	case <-time.After(5 * time.Second):
		t.Fatal("request after rebirth never arrived")
	}
}

func TestProcFabricLocalLoopback(t *testing.T) {
	// One process hosting both nodes: sends must not touch a socket.
	dir := t.TempDir()
	pf, err := NewProcFabric(ProcConfig{Nodes: 2, Local: []int{0, 1}, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pf.Close)
	if err := pf.SendBatch(requestBatch(0, 1, 5)); err != nil {
		t.Fatalf("loopback send: %v", err)
	}
	select {
	case req := <-pf.Requests(1):
		proto.FreeBatchPackets(req)
	case <-time.After(time.Second):
		t.Fatal("loopback request never arrived")
	}
}
