package fabric

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// testBatch builds a representative mixed batch: a payload-free read
// request, a write carrying a full line, and a short atomic operand.
func testBatch(t *testing.T) *proto.Batch {
	t.Helper()
	b := proto.AllocBatch()
	read := proto.AllocPacket()
	read.Kind, read.Op = proto.KindRequest, core.OpRead
	read.Src, read.Dst, read.Ctx, read.Tid = 2, 5, 7, 0x1234
	read.Offset, read.LineIdx, read.Aux = 0x40, 0, core.CacheLineSize

	write := proto.AllocPacket()
	write.Kind, write.Op = proto.KindRequest, core.OpWrite
	write.Src, write.Dst, write.Ctx, write.Tid = 2, 5, 7, 0x2345
	write.Offset, write.LineIdx = 0x80, 1
	write.Flags = proto.FlagLast
	payload := write.AllocPayload(core.CacheLineSize)
	for i := range payload {
		payload[i] = byte(i)
	}

	fa := proto.AllocPacket()
	fa.Kind, fa.Op = proto.KindRequest, core.OpFetchAdd
	fa.Src, fa.Dst, fa.Ctx, fa.Tid = 2, 5, 7, 0x3456
	fa.Offset = 0x100
	copy(fa.AllocPayload(8), []byte{1, 0, 0, 0, 0, 0, 0, 0})

	for _, p := range []*proto.Packet{read, write, fa} {
		if !b.Append(p) {
			t.Fatal("append failed")
		}
	}
	return b
}

func TestBatchFrameRoundTrip(t *testing.T) {
	b := testBatch(t)
	defer proto.FreeBatchPackets(b)
	frame, err := appendBatchFrame(nil, b)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	typ, payload, consumed, err := decodeFrame(frame)
	if err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	if typ != frameBatch || consumed != len(frame) {
		t.Fatalf("typ=%d consumed=%d want batch/%d", typ, consumed, len(frame))
	}
	got, err := decodeBatchPayload(payload)
	if err != nil {
		t.Fatalf("decodeBatchPayload: %v", err)
	}
	defer proto.FreeBatchPackets(got)
	if got.Len() != b.Len() || got.Src() != b.Src() || got.Dst() != b.Dst() || got.Kind() != b.Kind() {
		t.Fatalf("batch mismatch: got %d pkts %d->%d", got.Len(), got.Src(), got.Dst())
	}
	for i, want := range b.Packets() {
		p := got.Packets()[i]
		if p.Kind != want.Kind || p.Op != want.Op || p.Status != want.Status ||
			p.Flags != want.Flags || p.Src != want.Src || p.Dst != want.Dst ||
			p.Ctx != want.Ctx || p.Tid != want.Tid || p.Offset != want.Offset ||
			p.LineIdx != want.LineIdx || p.Aux != want.Aux ||
			!bytes.Equal(p.Payload, want.Payload) {
			t.Fatalf("packet %d mismatch:\n got %v\nwant %v", i, p, want)
		}
	}
	// Re-encoding the decoded batch must reproduce the original frame.
	again, err := appendBatchFrame(nil, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(again, frame) {
		t.Fatal("re-encoded frame differs from original")
	}
}

func TestHelloFrameRoundTrip(t *testing.T) {
	h := helloFrame{Src: 3, Dst: 9, Lane: proto.KindReply, Credits: 64}
	frame := appendHelloFrame(nil, h)
	typ, payload, _, err := decodeFrame(frame)
	if err != nil || typ != frameHello {
		t.Fatalf("decode: typ=%d err=%v", typ, err)
	}
	got, err := parseHelloPayload(payload)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if _, err := parseHelloPayload(payload[:5]); err == nil {
		t.Fatal("short hello accepted")
	}
	bad := append([]byte{}, payload...)
	bad[4] = 9 // not a lane
	if _, err := parseHelloPayload(bad); err == nil {
		t.Fatal("bad lane accepted")
	}
}

func TestCreditFrameRoundTrip(t *testing.T) {
	frame := appendCreditFrame(nil, 17)
	typ, payload, _, err := decodeFrame(frame)
	if err != nil || typ != frameCredit {
		t.Fatalf("decode: typ=%d err=%v", typ, err)
	}
	n, err := parseCreditPayload(payload)
	if err != nil || n != 17 {
		t.Fatalf("got %d, %v", n, err)
	}
	if _, err := parseCreditPayload([]byte{0, 0, 0, 0}); err == nil {
		t.Fatal("zero credit accepted")
	}
	if _, err := parseCreditPayload([]byte{1, 0}); err == nil {
		t.Fatal("short credit accepted")
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	b := testBatch(t)
	frame, err := appendBatchFrame(nil, b)
	proto.FreeBatchPackets(b)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(frame); n++ {
			if _, _, _, err := decodeFrame(frame[:n]); err == nil {
				t.Fatalf("truncation at %d accepted", n)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[0] ^= 0xFF
		if _, _, _, err := decodeFrame(bad); !errors.Is(err, errFrameMagic) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[4] = 99
		if _, _, _, err := decodeFrame(bad); !errors.Is(err, errFrameType) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("corrupt payload", func(t *testing.T) {
		bad := append([]byte{}, frame...)
		bad[len(bad)-1] ^= 0x01
		if _, _, _, err := decodeFrame(bad); !errors.Is(err, errFrameCRC) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		var hdr [frameHeaderSize]byte
		copy(hdr[:], frame[:frameHeaderSize])
		hdr[8], hdr[9], hdr[10], hdr[11] = 0xFF, 0xFF, 0xFF, 0xFF
		if _, _, _, err := parseFrameHeader(hdr[:]); !errors.Is(err, errFrameLength) {
			t.Fatalf("got %v", err)
		}
	})
}

func TestBatchPayloadRejects(t *testing.T) {
	b := testBatch(t)
	frame, err := appendBatchFrame(nil, b)
	proto.FreeBatchPackets(b)
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[frameHeaderSize:]

	check := func(name string, mutate func(p []byte) []byte) {
		t.Helper()
		p := mutate(append([]byte{}, payload...))
		if got, err := decodeBatchPayload(p); err == nil {
			proto.FreeBatchPackets(got)
			t.Fatalf("%s accepted", name)
		}
	}
	check("count zero", func(p []byte) []byte { p[5] = 0; return p })
	check("count oversized", func(p []byte) []byte { p[5] = proto.MaxBatch + 1; return p })
	check("count beyond packets", func(p []byte) []byte { p[5]++; return p })
	check("bad lane", func(p []byte) []byte { p[4] = 7; return p })
	check("reserved prefix", func(p []byte) []byte { p[6] = 1; return p })
	check("trailing garbage", func(p []byte) []byte { return append(p, 0xAB) })
	check("truncated packet", func(p []byte) []byte { return p[:len(p)-1] })
	check("route mismatch", func(p []byte) []byte {
		// First packet's dst (header offset 4 within the packet) differs
		// from the batch route.
		p[batchPrefixSize+4] ^= 0x01
		return p
	})
	check("packet reserved", func(p []byte) []byte { p[batchPrefixSize+14] = 1; return p })
	check("short prefix", func(p []byte) []byte { return p[:4] })
}

func TestReadFrame(t *testing.T) {
	b := testBatch(t)
	defer proto.FreeBatchPackets(b)
	frame, err := appendBatchFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append([]byte{}, frame...), appendCreditFrame(nil, 3)...)
	r := bytes.NewReader(stream)
	hdr := make([]byte, frameHeaderSize)
	scratch := make([]byte, maxFramePayload)

	typ, p, err := readFrame(r, hdr, scratch)
	if err != nil || typ != frameBatch {
		t.Fatalf("first frame: typ=%d err=%v", typ, err)
	}
	got, err := decodeBatchPayload(p)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	proto.FreeBatchPackets(got)

	typ, p, err = readFrame(r, hdr, scratch)
	if err != nil || typ != frameCredit {
		t.Fatalf("second frame: typ=%d err=%v", typ, err)
	}
	if n, err := parseCreditPayload(p); err != nil || n != 3 {
		t.Fatalf("credit: %d, %v", n, err)
	}
	if _, _, err := readFrame(r, hdr, scratch); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}

	// A stream torn mid-frame (SIGKILL mid-write) must surface an error.
	r = bytes.NewReader(frame[:frameHeaderSize+5])
	if _, _, err := readFrame(r, hdr, scratch); err == nil {
		t.Fatal("torn frame accepted")
	}
}
