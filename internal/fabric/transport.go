package fabric

import (
	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// Transport is the fabric surface the RMC pipelines and the cluster fault
// API are built against: batch lanes with credit-based flow control, the
// health watchers, and the fault-injection hooks. Two implementations
// exist:
//
//   - Interconnect: the in-process crossbar — per-destination bounded
//     channels, everything in one address space. Fault injection flips
//     flags; memory survives every "crash".
//   - ProcFabric: the multi-process transport — each node's lanes cross a
//     real OS boundary as length-prefixed, CRC-checked frames over unix
//     sockets between sonuma-node daemons (proc.go). Fault injection cuts
//     sockets, and a crashed peer genuinely loses its memory.
//
// The contract both must honour:
//
//   - LaneFor returns a send channel only if the route is currently
//     healthy; requests additionally validate the reply route, so an
//     asymmetric cut fails the issue deterministically instead of
//     stranding the transaction.
//   - One credit is charged per batch; reply lanes always drain, so the
//     two virtual lanes stay deadlock-free.
//   - Fail/restore events for nodes and links are epoch-stamped under the
//     state flip, so consumers can order racing notifications, and are
//     delivered asynchronously to every registered watcher.
//   - Requests/Replies may only be consumed for nodes the transport hosts
//     locally (every node, for the Interconnect).
type Transport interface {
	// Nodes reports the number of fabric endpoints.
	Nodes() int
	// Topology returns the fabric topology.
	Topology() Topology
	// Done returns a channel closed when the transport shuts down.
	Done() <-chan struct{}
	// RouteCrosses reports whether the deterministic route src→dst
	// traverses the directed link a→b (independent of link health).
	RouteCrosses(src, dst, a, b core.NodeID) bool

	// LaneFor validates the route and returns the destination lane for a
	// direct send; Account records the statistics of such a send.
	LaneFor(kind proto.Kind, src, dst core.NodeID) (chan<- *proto.Batch, error)
	Account(kind proto.Kind, packets, wireBytes int)
	// SendBatch / TrySendBatch inject a batch, blocking (or not) on
	// credits. On success the receiver owns the batch.
	SendBatch(b *proto.Batch) error
	TrySendBatch(b *proto.Batch) error
	// Send / TrySend wrap a single packet as a one-packet batch.
	Send(pkt *proto.Packet) error
	TrySend(pkt *proto.Packet) error
	// Requests / Replies return a locally hosted node's inbound lanes.
	Requests(node core.NodeID) <-chan *proto.Batch
	Replies(node core.NodeID) <-chan *proto.Batch

	// Watch* register asynchronous health watchers; LinkEpoch reports the
	// current link-event epoch for issue-time stamping.
	Watch(fn func(id core.NodeID, epoch uint64))
	WatchRestore(fn func(id core.NodeID, epoch uint64))
	WatchLink(fn func(a, b core.NodeID, epoch uint64))
	WatchLinkRestore(fn func(a, b core.NodeID, epoch uint64))
	LinkEpoch() uint64

	// Fault injection and health queries.
	FailNode(id core.NodeID)
	RestoreNode(id core.NodeID)
	NodeDown(id core.NodeID) bool
	FailLink(a, b core.NodeID)
	FailLinkDirected(a, b core.NodeID)
	RestoreLink(a, b core.NodeID)
	Reachable(src, dst core.NodeID) bool

	// Close shuts the transport down, releasing blocked senders.
	Close()
}

var _ Transport = (*Interconnect)(nil)
