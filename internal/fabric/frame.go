package fabric

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// Wire framing for the process transport (proc.go). Every message on a
// socket between sonuma-node processes is one frame:
//
//	offset 0  : magic   (4)  frameMagic, little endian
//	offset 4  : type    (1)  hello / batch / credit
//	offset 5  : pad     (1)  must be zero
//	offset 6  : reserved(2)  must be zero
//	offset 8  : length  (4)  payload length, ≤ maxFramePayload
//	offset 12 : crc     (4)  CRC-32 (IEEE) over the payload
//
// followed by length payload bytes. The decoder is strict: unknown types,
// nonzero pad/reserved bytes, oversized lengths, CRC mismatches, short
// payloads, and trailing garbage inside a payload all error — never panic,
// never over-read — because the peer is another OS process whose stream
// may be torn mid-frame by a SIGKILL.
//
// Batch payload (type frameBatch):
//
//	offset 0 : src      (2)  batch route, little endian
//	offset 2 : dst      (2)
//	offset 4 : kind     (1)  virtual lane (proto.KindRequest / KindReply)
//	offset 5 : count    (1)  packets in the batch, 1..proto.MaxBatch
//	offset 6 : reserved (2)  must be zero
//	offset 8 : count packets, each proto.Marshal-encoded (self-sizing via
//	           the packet header's payload-length field)
//
// Hello payload (type frameHello) — the per-flow handshake:
//
//	offset 0 : src     (2)  the flow's source node
//	offset 2 : dst     (2)  the flow's destination node
//	offset 4 : lane    (1)  virtual lane the connection carries
//	offset 5 : pad     (1)  must be zero
//	offset 6 : credits (4)  sender's credit window, must match the peer's
//
// Credit payload (type frameCredit): a single u32 count of batch credits
// returned by the receiver after delivering batches to the local lane.

const (
	frameMagic      = 0x734F4E4D // "MNOs" on the wire, little endian
	frameHeaderSize = 16

	frameHello  = 1
	frameBatch  = 2
	frameCredit = 3

	batchPrefixSize   = 8
	helloPayloadSize  = 10
	creditPayloadSize = 4

	// maxFramePayload bounds a frame's payload: the largest legal batch is
	// batchPrefixSize + MaxBatch×MaxPacketSize = 3080 bytes, rounded up.
	maxFramePayload = 4096
)

var (
	errFrameMagic    = errors.New("fabric: bad frame magic")
	errFrameType     = errors.New("fabric: unknown frame type")
	errFrameReserved = errors.New("fabric: nonzero reserved frame bytes")
	errFrameLength   = errors.New("fabric: frame length out of range")
	errFrameCRC      = errors.New("fabric: frame CRC mismatch")
	errBatchPayload  = errors.New("fabric: malformed batch payload")
	errHelloPayload  = errors.New("fabric: malformed hello payload")
	errCreditPayload = errors.New("fabric: malformed credit payload")
)

// appendFrame appends a framed payload to dst and returns the result.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = typ
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrameHeader validates a frame header and returns the frame type,
// payload length, and expected payload CRC.
func parseFrameHeader(hdr []byte) (typ byte, length int, crc uint32, err error) {
	if len(hdr) < frameHeaderSize {
		return 0, 0, 0, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		return 0, 0, 0, errFrameMagic
	}
	typ = hdr[4]
	if typ != frameHello && typ != frameBatch && typ != frameCredit {
		return 0, 0, 0, errFrameType
	}
	if hdr[5] != 0 || hdr[6] != 0 || hdr[7] != 0 {
		return 0, 0, 0, errFrameReserved
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	if n > maxFramePayload {
		return 0, 0, 0, errFrameLength
	}
	return typ, int(n), binary.LittleEndian.Uint32(hdr[12:]), nil
}

// decodeFrame parses one frame from the front of data, returning the frame
// type, its payload (aliasing data), and the bytes consumed. It never
// reads past len(data).
func decodeFrame(data []byte) (typ byte, payload []byte, consumed int, err error) {
	typ, n, crc, err := parseFrameHeader(data)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(data) < frameHeaderSize+n {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	payload = data[frameHeaderSize : frameHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, 0, errFrameCRC
	}
	return typ, payload, frameHeaderSize + n, nil
}

// readFrame reads exactly one frame from r, using hdr (≥ frameHeaderSize)
// and payload (≥ maxFramePayload) as scratch. The returned payload aliases
// the scratch buffer and is valid until the next call.
func readFrame(r io.Reader, hdr, payload []byte) (typ byte, p []byte, err error) {
	if _, err := io.ReadFull(r, hdr[:frameHeaderSize]); err != nil {
		return 0, nil, err
	}
	typ, n, crc, err := parseFrameHeader(hdr)
	if err != nil {
		return 0, nil, err
	}
	p = payload[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(p) != crc {
		return 0, nil, errFrameCRC
	}
	return typ, p, nil
}

// helloFrame is the per-connection handshake: it declares which directed
// flow (src→dst on one virtual lane) the connection carries and the
// sender's credit window, so a misconfigured peer fails loudly at dial
// time instead of corrupting flow control later.
type helloFrame struct {
	Src     core.NodeID
	Dst     core.NodeID
	Lane    proto.Kind
	Credits uint32
}

// appendHelloFrame appends an encoded hello frame to dst.
func appendHelloFrame(dst []byte, h helloFrame) []byte {
	var p [helloPayloadSize]byte
	binary.LittleEndian.PutUint16(p[0:], uint16(h.Src))
	binary.LittleEndian.PutUint16(p[2:], uint16(h.Dst))
	p[4] = byte(h.Lane)
	binary.LittleEndian.PutUint32(p[6:], h.Credits)
	return appendFrame(dst, frameHello, p[:])
}

// parseHelloPayload decodes a hello frame's payload.
func parseHelloPayload(p []byte) (helloFrame, error) {
	if len(p) != helloPayloadSize || p[5] != 0 {
		return helloFrame{}, errHelloPayload
	}
	lane := proto.Kind(p[4])
	if lane != proto.KindRequest && lane != proto.KindReply {
		return helloFrame{}, errHelloPayload
	}
	return helloFrame{
		Src:     core.NodeID(binary.LittleEndian.Uint16(p[0:])),
		Dst:     core.NodeID(binary.LittleEndian.Uint16(p[2:])),
		Lane:    lane,
		Credits: binary.LittleEndian.Uint32(p[6:]),
	}, nil
}

// appendCreditFrame appends an encoded credit-return frame to dst.
func appendCreditFrame(dst []byte, n uint32) []byte {
	var p [creditPayloadSize]byte
	binary.LittleEndian.PutUint32(p[0:], n)
	return appendFrame(dst, frameCredit, p[:])
}

// parseCreditPayload decodes a credit frame's payload.
func parseCreditPayload(p []byte) (uint32, error) {
	if len(p) != creditPayloadSize {
		return 0, errCreditPayload
	}
	n := binary.LittleEndian.Uint32(p[0:])
	if n == 0 {
		return 0, errCreditPayload
	}
	return n, nil
}

// appendBatchFrame appends an encoded batch frame to dst. The batch must
// be non-empty with a fixed route; ownership stays with the caller.
func appendBatchFrame(dst []byte, b *proto.Batch) ([]byte, error) {
	if b.Len() == 0 {
		return nil, errBatchPayload
	}
	var prefix [batchPrefixSize]byte
	binary.LittleEndian.PutUint16(prefix[0:], uint16(b.Src()))
	binary.LittleEndian.PutUint16(prefix[2:], uint16(b.Dst()))
	prefix[4] = byte(b.Kind())
	prefix[5] = byte(b.Len())
	payload := append(make([]byte, 0, batchPrefixSize+b.WireSize()), prefix[:]...)
	var scratch [proto.MaxPacketSize]byte
	for _, pkt := range b.Packets() {
		enc, err := pkt.Marshal(scratch[:0])
		if err != nil {
			return nil, err
		}
		payload = append(payload, enc...)
	}
	return appendFrame(dst, frameBatch, payload), nil
}

// decodeBatchPayload decodes a batch frame's payload into a pooled batch
// of pooled packets, which the caller owns on success. The decode is
// strict: the route prefix must be internally consistent, every packet
// must carry the batch's route and lane, reserved bytes must be zero, and
// the payload must be consumed exactly. On error, nothing pooled leaks.
func decodeBatchPayload(p []byte) (*proto.Batch, error) {
	if len(p) < batchPrefixSize {
		return nil, errBatchPayload
	}
	src := core.NodeID(binary.LittleEndian.Uint16(p[0:]))
	dst := core.NodeID(binary.LittleEndian.Uint16(p[2:]))
	kind := proto.Kind(p[4])
	count := int(p[5])
	if kind != proto.KindRequest && kind != proto.KindReply {
		return nil, errBatchPayload
	}
	if count < 1 || count > proto.MaxBatch {
		return nil, errBatchPayload
	}
	if p[6] != 0 || p[7] != 0 {
		return nil, errBatchPayload
	}
	b := proto.AllocBatch()
	rest := p[batchPrefixSize:]
	for i := 0; i < count; i++ {
		if len(rest) < proto.HeaderSize {
			proto.FreeBatchPackets(b)
			return nil, errBatchPayload
		}
		plen := int(binary.LittleEndian.Uint16(rest[12:]))
		if plen > core.CacheLineSize || rest[14] != 0 || rest[15] != 0 {
			proto.FreeBatchPackets(b)
			return nil, errBatchPayload
		}
		wire := proto.HeaderSize + plen
		if len(rest) < wire {
			proto.FreeBatchPackets(b)
			return nil, errBatchPayload
		}
		pkt := proto.AllocPacket()
		if err := proto.UnmarshalInto(pkt, rest[:wire]); err != nil {
			proto.FreePacket(pkt)
			proto.FreeBatchPackets(b)
			return nil, fmt.Errorf("fabric: batch packet %d: %w", i, err)
		}
		if pkt.Kind != kind || pkt.Src != src || pkt.Dst != dst || !b.Append(pkt) {
			proto.FreePacket(pkt)
			proto.FreeBatchPackets(b)
			return nil, errBatchPayload
		}
		rest = rest[wire:]
	}
	if len(rest) != 0 {
		proto.FreeBatchPackets(b)
		return nil, errBatchPayload
	}
	return b, nil
}
