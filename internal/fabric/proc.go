package fabric

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// ProcFabric is the multi-process transport: the same two-virtual-lane,
// credit-flow-controlled batch fabric as the Interconnect, but with every
// lane toward a non-local node carried over a real socket (UDS by
// default, TCP with Addrs) between OS processes. Each process hosts a
// subset of the fabric's nodes; a sonuma-node daemon hosts one, the
// process driving a bench or test typically hosts the client-only nodes.
//
// Connections are supervised: every outbound flow (one directed
// src→dst pair per virtual lane) maintains a persistent connection with
// eager redial, so a dropped socket — a SIGKILLed peer, a torn stream —
// surfaces as the same epoch-stamped link fail/restore events the
// in-process watchers consume, and heals without any traffic being
// required to notice.
//
// Link state has two sources:
//
//   - Administrative cuts (FailLink / FailLinkDirected / RestoreLink)
//     record directed cut entries exactly like the Interconnect and fire
//     watchers locally. A full bidirectional cut of a pair with local
//     conns also closes them and blocks redial until restored; a directed
//     cut leaves connections up and drops the dead direction's traffic.
//     Multi-process drivers broadcast cuts to every process (see the
//     root package's ProcCluster), matching the in-process semantics
//     where every node observes every event.
//   - Observed outages: an error on any connection of a (local, remote)
//     pair latches the pair down and fires the link-fail watchers; when
//     every outbound lane of the pair has reconnected and re-handshaked,
//     the pair latches up and the link-restore watchers fire.
type ProcFabric struct {
	cfg     ProcConfig
	n       int
	topo    Topology
	credits int
	local   []bool

	req []chan *proto.Batch // inbound lanes, non-nil for local nodes
	rpl []chan *proto.Batch

	flows map[flowKey]*procFlow // immutable after construction

	listeners []net.Listener

	down   []atomic.Bool
	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	mu                  sync.Mutex
	cut                 map[Link]bool
	pairs               map[[2]core.NodeID]*pairState
	conns               map[net.Conn]struct{}
	inbound             map[net.Conn][2]core.NodeID
	watchers            []func(id core.NodeID, epoch uint64)
	restoreWatchers     []func(id core.NodeID, epoch uint64)
	linkWatchers        []func(a, b core.NodeID, epoch uint64)
	linkRestoreWatchers []func(a, b core.NodeID, epoch uint64)
	linkEpoch           atomic.Uint64
	nodeEpoch           atomic.Uint64

	// Counters for fabric statistics (per process: sends originating here).
	ReqSent     atomic.Uint64
	RplSent     atomic.Uint64
	BatchesSent atomic.Uint64
	Bytes       atomic.Uint64
}

// ProcConfig configures a ProcFabric.
type ProcConfig struct {
	// Nodes is the total number of fabric endpoints across all processes.
	Nodes int
	// Local lists the node IDs this process hosts (lanes + listeners).
	Local []int
	// Dir is the unix-socket directory: node i listens at <Dir>/n<i>.sock.
	Dir string
	// Addrs optionally selects TCP instead: one "host:port" per node.
	Addrs []string
	// Credits is the per-flow credit window (0 selects DefaultCredits).
	// Every process of one fabric must agree; the hello handshake rejects
	// mismatches.
	Credits int
}

func (c ProcConfig) addr(id int) (network, addr string) {
	if len(c.Addrs) > 0 {
		return "tcp", c.Addrs[id]
	}
	return "unix", filepath.Join(c.Dir, fmt.Sprintf("n%d.sock", id))
}

// flowKey identifies one outbound flow: a directed src→dst pair on one
// virtual lane, with src hosted locally and dst remote.
type flowKey struct {
	src, dst core.NodeID
	lane     proto.Kind
}

// procFlow is one supervised outbound connection. connLoop dials eagerly
// and persistently (hello → hello-ack handshake, then blocking credit-
// frame reads, redial with backoff on any error); writeLoop drains out,
// acquiring one window token per batch. The window refills to the full
// credit count on every reconnect; the receiver returns tokens via credit
// frames after delivering each batch into its local lane.
type procFlow struct {
	src, dst core.NodeID
	lane     proto.Kind
	out      chan *proto.Batch

	mu     sync.Mutex
	up     bool
	conn   net.Conn
	window chan struct{}
	dead   chan struct{} // closed when the current connection dies

	counted bool // contributes to the pair's flowsUp (guarded by ProcFabric.mu)
}

// pairState tracks the observed health of one (local, remote) node pair.
type pairState struct {
	down    bool
	flowsUp int
	total   int // outbound flows this process maintains for the pair
}

func pairKeyOf(a, b core.NodeID) [2]core.NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]core.NodeID{a, b}
}

// NewProcFabric builds the transport and starts its listeners and flow
// supervisors. Connections establish in the background; call WaitReady to
// block until every outbound flow is up.
func NewProcFabric(cfg ProcConfig) (*ProcFabric, error) {
	if cfg.Nodes <= 0 || cfg.Nodes > 1<<12 {
		return nil, fmt.Errorf("fabric: proc node count %d out of range", cfg.Nodes)
	}
	if len(cfg.Addrs) > 0 && len(cfg.Addrs) != cfg.Nodes {
		return nil, fmt.Errorf("fabric: %d addrs for %d nodes", len(cfg.Addrs), cfg.Nodes)
	}
	if len(cfg.Addrs) == 0 && cfg.Dir == "" {
		return nil, fmt.Errorf("fabric: ProcConfig needs Dir or Addrs")
	}
	if len(cfg.Local) == 0 {
		return nil, fmt.Errorf("fabric: ProcConfig.Local is empty")
	}
	credits := cfg.Credits
	if credits <= 0 {
		credits = DefaultCredits
	}
	pf := &ProcFabric{
		cfg:     cfg,
		n:       cfg.Nodes,
		topo:    NewCrossbar(cfg.Nodes),
		credits: credits,
		local:   make([]bool, cfg.Nodes),
		req:     make([]chan *proto.Batch, cfg.Nodes),
		rpl:     make([]chan *proto.Batch, cfg.Nodes),
		flows:   make(map[flowKey]*procFlow),
		down:    make([]atomic.Bool, cfg.Nodes),
		done:    make(chan struct{}),
		cut:     make(map[Link]bool),
		pairs:   make(map[[2]core.NodeID]*pairState),
		conns:   make(map[net.Conn]struct{}),
		inbound: make(map[net.Conn][2]core.NodeID),
	}
	for _, id := range cfg.Local {
		if id < 0 || id >= cfg.Nodes {
			return nil, fmt.Errorf("fabric: local node %d out of range [0,%d)", id, cfg.Nodes)
		}
		if pf.local[id] {
			return nil, fmt.Errorf("fabric: local node %d listed twice", id)
		}
		pf.local[id] = true
		pf.req[id] = make(chan *proto.Batch, credits)
		pf.rpl[id] = make(chan *proto.Batch, credits)
	}
	for _, id := range cfg.Local {
		network, addr := cfg.addr(id)
		if network == "unix" {
			os.Remove(addr) // stale socket from a SIGKILLed predecessor
		}
		l, err := net.Listen(network, addr)
		if err != nil {
			pf.Close()
			return nil, fmt.Errorf("fabric: listen n%d: %w", id, err)
		}
		pf.listeners = append(pf.listeners, l)
		pf.wg.Add(1)
		go pf.acceptLoop(l, core.NodeID(id))
	}
	for _, src := range cfg.Local {
		for dst := 0; dst < cfg.Nodes; dst++ {
			if pf.local[dst] {
				continue
			}
			pk := pairKeyOf(core.NodeID(src), core.NodeID(dst))
			ps := pf.pairs[pk]
			if ps == nil {
				ps = &pairState{}
				pf.pairs[pk] = ps
			}
			ps.total += 2 // one flow per virtual lane
			for _, lane := range []proto.Kind{proto.KindRequest, proto.KindReply} {
				f := &procFlow{
					src:  core.NodeID(src),
					dst:  core.NodeID(dst),
					lane: lane,
					out:  make(chan *proto.Batch, credits),
				}
				pf.flows[flowKey{f.src, f.dst, lane}] = f
				pf.wg.Add(2)
				go pf.connLoop(f)
				go pf.writeLoop(f)
			}
		}
	}
	return pf, nil
}

// WaitReady blocks until every outbound flow has an established,
// handshaked connection, the fabric closes, or the timeout expires.
func (pf *ProcFabric) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var waiting []string
		for k, f := range pf.flows {
			f.mu.Lock()
			up := f.up
			f.mu.Unlock()
			if !up {
				waiting = append(waiting, fmt.Sprintf("n%d->n%d/%d", k.src, k.dst, k.lane))
			}
		}
		if len(waiting) == 0 {
			return nil
		}
		if pf.closed.Load() {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			sort.Strings(waiting)
			return fmt.Errorf("fabric: flows not ready after %v: %v", timeout, waiting)
		}
		select {
		case <-time.After(2 * time.Millisecond):
		case <-pf.done:
			return ErrClosed
		}
	}
}

// ---------------------------------------------------------------------------
// Outbound: connection supervision and the write path

// pairFullyCut reports whether both directions of a↔b are administratively
// cut — the condition that closes connections and blocks redial.
func (pf *ProcFabric) pairFullyCut(a, b core.NodeID) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.cut[Link{From: a, To: b}] && pf.cut[Link{From: b, To: a}]
}

// waitCutClear blocks while the flow's pair is fully cut; it reports
// whether the fabric closed.
func (pf *ProcFabric) waitCutClear(f *procFlow) bool {
	for pf.pairFullyCut(f.src, f.dst) {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-pf.done:
			return true
		}
	}
	return pf.closed.Load()
}

// dialFlow establishes one flow connection: dial, send hello, read the
// acceptor's ack. The ack is what makes "up" trustworthy — an acceptor
// that rejects the flow (cut pair, credit mismatch) closes without
// acking, so the dialer never declares a spurious restore.
func (pf *ProcFabric) dialFlow(f *procFlow) (net.Conn, error) {
	network, addr := pf.cfg.addr(int(f.dst))
	conn, err := net.DialTimeout(network, addr, time.Second)
	if err != nil {
		return nil, err
	}
	if !pf.trackConn(conn) {
		conn.Close()
		return nil, ErrClosed
	}
	hello := helloFrame{Src: f.src, Dst: f.dst, Lane: f.lane, Credits: uint32(pf.credits)}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write(appendHelloFrame(nil, hello)); err != nil {
		pf.dropConn(conn)
		return nil, err
	}
	hdr := make([]byte, frameHeaderSize)
	scratch := make([]byte, maxFramePayload)
	typ, p, err := readFrame(conn, hdr, scratch)
	if err != nil {
		pf.dropConn(conn)
		return nil, err
	}
	ack, err := parseHelloPayload(p)
	if typ != frameHello || err != nil || ack != hello {
		pf.dropConn(conn)
		return nil, fmt.Errorf("fabric: bad hello ack for n%d->n%d", f.src, f.dst)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// connLoop maintains the flow's connection for the fabric's lifetime.
// While connected it blocks reading credit frames, so a dead peer is
// noticed immediately (EOF) without requiring traffic.
func (pf *ProcFabric) connLoop(f *procFlow) {
	defer pf.wg.Done()
	backoff := time.Millisecond
	hdr := make([]byte, frameHeaderSize)
	scratch := make([]byte, maxFramePayload)
	for {
		if pf.waitCutClear(f) {
			return
		}
		conn, err := pf.dialFlow(f)
		if err != nil {
			select {
			case <-time.After(backoff):
			case <-pf.done:
				return
			}
			if backoff *= 2; backoff > 50*time.Millisecond {
				backoff = 50 * time.Millisecond
			}
			continue
		}
		backoff = time.Millisecond
		pf.flowUp(f, conn)
		for {
			typ, p, err := readFrame(conn, hdr, scratch)
			if err != nil {
				break
			}
			if typ != frameCredit {
				break
			}
			n, err := parseCreditPayload(p)
			if err != nil {
				break
			}
			f.mu.Lock()
			w := f.window
			f.mu.Unlock()
			for i := uint32(0); i < n; i++ {
				select {
				case w <- struct{}{}:
				default:
				}
			}
		}
		pf.flowDownIf(f, conn, true)
		select {
		case <-pf.done:
			return
		default:
		}
	}
}

// flowUp installs a fresh connection on the flow with a full credit
// window; once every outbound lane of a down pair is back up, the pair
// latches up and the link-restore watchers fire.
func (pf *ProcFabric) flowUp(f *procFlow, conn net.Conn) {
	window := make(chan struct{}, pf.credits)
	for i := 0; i < pf.credits; i++ {
		window <- struct{}{}
	}
	f.mu.Lock()
	f.up, f.conn, f.window, f.dead = true, conn, window, make(chan struct{})
	f.mu.Unlock()

	pf.mu.Lock()
	ps := pf.pairs[pairKeyOf(f.src, f.dst)]
	if !f.counted {
		f.counted = true
		ps.flowsUp++
	}
	var fire bool
	var epoch uint64
	var ws []func(a, b core.NodeID, epoch uint64)
	if ps.down && ps.flowsUp == ps.total {
		ps.down = false
		epoch = pf.linkEpoch.Add(1)
		ws = append(ws, pf.linkRestoreWatchers...)
		fire = true
	}
	pf.mu.Unlock()
	if fire {
		for _, w := range ws {
			go w(f.src, f.dst, epoch)
		}
	}
}

// flowDownIf tears the flow down if conn is still its current connection.
// With observed set, the first down transition of the pair latches it and
// fires the link-fail watchers (suppressed while the pair is already down
// or administratively cut down).
func (pf *ProcFabric) flowDownIf(f *procFlow, conn net.Conn, observed bool) {
	f.mu.Lock()
	if !f.up || f.conn != conn {
		f.mu.Unlock()
		return
	}
	f.up = false
	f.conn = nil
	close(f.dead)
	f.mu.Unlock()
	pf.dropConn(conn)

	pf.mu.Lock()
	ps := pf.pairs[pairKeyOf(f.src, f.dst)]
	if f.counted {
		f.counted = false
		ps.flowsUp--
	}
	var fire bool
	var epoch uint64
	var ws []func(a, b core.NodeID, epoch uint64)
	if observed && !ps.down && !pf.closed.Load() {
		ps.down = true
		epoch = pf.linkEpoch.Add(1)
		ws = append(ws, pf.linkWatchers...)
		fire = true
	}
	pf.mu.Unlock()
	if fire {
		for _, w := range ws {
			go w(f.src, f.dst, epoch)
		}
	}
}

// flowConnectWait bounds how long writeLoop holds a frame for a flow whose
// connection is still being dialed. A flow between connections is NOT a
// dead link: the pair has not latched down, so no watcher fired, and a
// drop here would be loss nothing in the system can observe or react to —
// exactly the hole a freshly restarted daemon falls into when it answers
// an inbound request before its own outbound dials have landed. Once the
// pair latches down (watchers fired) or the direction is cut (a test asked
// for it), dropping is the modeled dead-link behavior and stays.
const flowConnectWait = 500 * time.Millisecond

// writeLoop drains the flow's outbound lane. Batches popped while the
// direction is administratively cut are discarded immediately — the
// process-transport analogue of packets dropped on a dead link. Batches
// popped while the flow is between connections wait (bounded) for the
// dial to land instead: that window covers both a fresh fabric still
// dialing and the redial after a peer restart, and in both a drop would
// be loss the requesting side cannot observe.
func (pf *ProcFabric) writeLoop(f *procFlow) {
	defer pf.wg.Done()
	var buf []byte
next:
	for {
		var b *proto.Batch
		select {
		case b = <-f.out:
		case <-pf.done:
			for {
				select {
				case b := <-f.out:
					proto.FreeBatchPackets(b)
				default:
					return
				}
			}
		}
		var up bool
		var conn net.Conn
		var window chan struct{}
		var dead chan struct{}
		connectBy := time.Now().Add(flowConnectWait)
		for {
			pf.mu.Lock()
			cutHere := pf.cut[Link{From: f.src, To: f.dst}]
			pf.mu.Unlock()
			if cutHere {
				proto.FreeBatchPackets(b)
				continue next
			}
			f.mu.Lock()
			up, conn, window, dead = f.up, f.conn, f.window, f.dead
			f.mu.Unlock()
			if up {
				break
			}
			if time.Now().After(connectBy) {
				// The redial did not land inside the wait budget: the
				// peer is really gone (its death latched the pair down
				// and fired the watchers), so dropping is the modeled
				// dead-link loss, and it is signaled.
				proto.FreeBatchPackets(b)
				continue next
			}
			select {
			case <-time.After(time.Millisecond):
			case <-pf.done:
				proto.FreeBatchPackets(b)
				continue next
			}
		}
		select {
		case <-window:
		case <-dead:
			proto.FreeBatchPackets(b)
			continue
		case <-pf.done:
			proto.FreeBatchPackets(b)
			continue
		}
		enc, err := appendBatchFrame(buf[:0], b)
		if err != nil {
			proto.FreeBatchPackets(b)
			continue
		}
		buf = enc
		_, werr := conn.Write(enc)
		proto.FreeBatchPackets(b)
		if werr != nil {
			pf.flowDownIf(f, conn, true)
		}
	}
}

// ---------------------------------------------------------------------------
// Inbound: acceptors and delivery

func (pf *ProcFabric) acceptLoop(l net.Listener, local core.NodeID) {
	defer pf.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed (Close) or fatally broken
		}
		if !pf.trackConn(conn) {
			conn.Close()
			return
		}
		pf.wg.Add(1)
		go pf.serveConn(conn, local)
	}
}

// serveConn handles one inbound flow connection: validate the hello, ack
// it, then deliver batch frames into the local lane, returning one credit
// per delivered batch. Any stream error latches the pair down.
func (pf *ProcFabric) serveConn(conn net.Conn, local core.NodeID) {
	defer pf.wg.Done()
	defer pf.dropConn(conn)
	hdr := make([]byte, frameHeaderSize)
	scratch := make([]byte, maxFramePayload)
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	typ, p, err := readFrame(conn, hdr, scratch)
	if err != nil || typ != frameHello {
		return
	}
	h, err := parseHelloPayload(p)
	if err != nil || h.Dst != local || h.Src == h.Dst || int(h.Src) >= pf.n {
		return
	}
	if h.Credits != uint32(pf.credits) || pf.pairFullyCut(h.Src, h.Dst) {
		return
	}
	conn.SetDeadline(time.Time{})
	if _, err := conn.Write(appendHelloFrame(nil, h)); err != nil {
		return
	}
	pf.mu.Lock()
	pf.inbound[conn] = pairKeyOf(h.Src, h.Dst)
	pf.mu.Unlock()
	defer func() {
		pf.mu.Lock()
		delete(pf.inbound, conn)
		pf.mu.Unlock()
	}()
	lane := pf.req[local]
	if h.Lane == proto.KindReply {
		lane = pf.rpl[local]
	}
	var creditBuf []byte
	for {
		typ, p, err := readFrame(conn, hdr, scratch)
		if err != nil {
			pf.observePairDown(h.Src, h.Dst)
			return
		}
		if typ != frameBatch {
			pf.observePairDown(h.Src, h.Dst)
			return
		}
		b, err := decodeBatchPayload(p)
		if err != nil {
			pf.observePairDown(h.Src, h.Dst)
			return
		}
		if b.Src() != h.Src || b.Dst() != h.Dst || b.Kind() != h.Lane {
			proto.FreeBatchPackets(b)
			pf.observePairDown(h.Src, h.Dst)
			return
		}
		select {
		case lane <- b:
		case <-pf.done:
			proto.FreeBatchPackets(b)
			return
		}
		creditBuf = appendCreditFrame(creditBuf[:0], 1)
		if _, err := conn.Write(creditBuf); err != nil {
			pf.observePairDown(h.Src, h.Dst)
			return
		}
	}
}

// observePairDown latches the pair down on an inbound-connection error and
// fires the link-fail watchers (once per outage; suppressed when the pair
// is already down, administratively latched, or the fabric is closing).
func (pf *ProcFabric) observePairDown(a, b core.NodeID) {
	if pf.closed.Load() {
		return
	}
	pf.mu.Lock()
	ps := pf.pairs[pairKeyOf(a, b)]
	if ps == nil || ps.down {
		pf.mu.Unlock()
		return
	}
	ps.down = true
	epoch := pf.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, pf.linkWatchers...)
	pf.mu.Unlock()
	for _, w := range ws {
		go w(a, b, epoch)
	}
}

// trackConn registers a connection for Close teardown; it reports false
// when the fabric is already closed.
func (pf *ProcFabric) trackConn(conn net.Conn) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.closed.Load() {
		return false
	}
	pf.conns[conn] = struct{}{}
	return true
}

func (pf *ProcFabric) dropConn(conn net.Conn) {
	conn.Close()
	pf.mu.Lock()
	delete(pf.conns, conn)
	pf.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Transport interface

// Nodes reports the number of fabric endpoints across all processes.
func (pf *ProcFabric) Nodes() int { return pf.n }

// Topology returns the fabric topology (the process transport models a
// full crossbar: every pair is one hop).
func (pf *ProcFabric) Topology() Topology { return pf.topo }

// Done returns a channel closed when the transport shuts down.
func (pf *ProcFabric) Done() <-chan struct{} { return pf.done }

// Local reports whether this process hosts node id.
func (pf *ProcFabric) Local(id core.NodeID) bool {
	return int(id) >= 0 && int(id) < pf.n && pf.local[id]
}

// RouteCrosses reports whether the route src→dst traverses the directed
// link a→b (crossbar: exactly the direct link).
func (pf *ProcFabric) RouteCrosses(src, dst, a, b core.NodeID) bool {
	if int(src) >= pf.n || int(dst) >= pf.n {
		return false
	}
	for _, l := range pf.topo.Route(src, dst) {
		if l.From == a && l.To == b {
			return true
		}
	}
	return false
}

// LaneFor validates the route and returns the send channel for it: the
// local inbound lane when dst is hosted here (loopback), the flow's
// outbound lane otherwise. Mirrors the Interconnect's checks — requests
// additionally require the reply route healthy.
func (pf *ProcFabric) LaneFor(kind proto.Kind, src, dst core.NodeID) (chan<- *proto.Batch, error) {
	if pf.closed.Load() {
		return nil, ErrClosed
	}
	if int(src) < 0 || int(src) >= pf.n || int(dst) < 0 || int(dst) >= pf.n {
		return nil, ErrDown
	}
	if pf.down[src].Load() || pf.down[dst].Load() {
		return nil, ErrDown
	}
	pf.mu.Lock()
	bad := pf.cut[Link{From: src, To: dst}]
	if !bad && kind != proto.KindReply {
		bad = pf.cut[Link{From: dst, To: src}]
	}
	if !bad && kind != proto.KindReply {
		// Observed pair-down refuses new REQUESTS fast. Replies pass: a
		// reply answers a request that just arrived, so the peer is
		// provably alive and the down latch is this side's reconnect lag
		// (a restarted peer dials us before we re-dial it). Refusing the
		// reply here would black-hole the requester — it sees a healthy
		// link and waits — so let it ride the flow, which holds frames
		// across the redial window.
		if ps := pf.pairs[pairKeyOf(src, dst)]; ps != nil && ps.down {
			bad = true
		}
	}
	pf.mu.Unlock()
	if bad {
		return nil, ErrDown
	}
	if pf.local[dst] {
		if kind == proto.KindReply {
			return pf.rpl[dst], nil
		}
		return pf.req[dst], nil
	}
	lane := proto.KindRequest
	if kind == proto.KindReply {
		lane = proto.KindReply
	}
	f := pf.flows[flowKey{src, dst, lane}]
	if f == nil {
		return nil, ErrDown // src not hosted by this process
	}
	return f.out, nil
}

// Account records a batch sent directly into a lane from LaneFor.
func (pf *ProcFabric) Account(kind proto.Kind, packets, wireBytes int) {
	if kind == proto.KindReply {
		pf.RplSent.Add(uint64(packets))
	} else {
		pf.ReqSent.Add(uint64(packets))
	}
	pf.BatchesSent.Add(1)
	pf.Bytes.Add(uint64(wireBytes))
}

// SendBatch injects a batch toward its destination, blocking while the
// route's lane is out of credits. On success the receiver owns the batch.
func (pf *ProcFabric) SendBatch(b *proto.Batch) error {
	kind, packets, wire := b.Kind(), b.Len(), b.WireSize()
	lane, err := pf.LaneFor(kind, b.Src(), b.Dst())
	if err != nil {
		return err
	}
	select {
	case lane <- b:
		pf.Account(kind, packets, wire)
		return nil
	case <-pf.done:
		return ErrClosed
	}
}

// TrySendBatch is SendBatch without blocking.
func (pf *ProcFabric) TrySendBatch(b *proto.Batch) error {
	kind, packets, wire := b.Kind(), b.Len(), b.WireSize()
	lane, err := pf.LaneFor(kind, b.Src(), b.Dst())
	if err != nil {
		return err
	}
	select {
	case lane <- b:
		pf.Account(kind, packets, wire)
		return nil
	default:
		return ErrBackpressure
	}
}

// Send injects a single packet as a one-packet batch.
func (pf *ProcFabric) Send(pkt *proto.Packet) error {
	b := proto.AllocBatch()
	b.Append(pkt)
	if err := pf.SendBatch(b); err != nil {
		proto.FreeBatch(b)
		return err
	}
	return nil
}

// TrySend is Send without blocking.
func (pf *ProcFabric) TrySend(pkt *proto.Packet) error {
	b := proto.AllocBatch()
	b.Append(pkt)
	if err := pf.TrySendBatch(b); err != nil {
		proto.FreeBatch(b)
		return err
	}
	return nil
}

// Requests returns a locally hosted node's inbound request lane.
func (pf *ProcFabric) Requests(node core.NodeID) <-chan *proto.Batch {
	return pf.req[node]
}

// Replies returns a locally hosted node's inbound reply lane.
func (pf *ProcFabric) Replies(node core.NodeID) <-chan *proto.Batch {
	return pf.rpl[node]
}

// Watch registers a node-failure watcher.
func (pf *ProcFabric) Watch(fn func(id core.NodeID, epoch uint64)) {
	pf.mu.Lock()
	pf.watchers = append(pf.watchers, fn)
	pf.mu.Unlock()
}

// WatchRestore registers a node-restore watcher.
func (pf *ProcFabric) WatchRestore(fn func(id core.NodeID, epoch uint64)) {
	pf.mu.Lock()
	pf.restoreWatchers = append(pf.restoreWatchers, fn)
	pf.mu.Unlock()
}

// WatchLink registers a link-failure watcher. It fires for administrative
// cuts and for observed connection outages alike.
func (pf *ProcFabric) WatchLink(fn func(a, b core.NodeID, epoch uint64)) {
	pf.mu.Lock()
	pf.linkWatchers = append(pf.linkWatchers, fn)
	pf.mu.Unlock()
}

// WatchLinkRestore registers a link-restore watcher.
func (pf *ProcFabric) WatchLinkRestore(fn func(a, b core.NodeID, epoch uint64)) {
	pf.mu.Lock()
	pf.linkRestoreWatchers = append(pf.linkRestoreWatchers, fn)
	pf.mu.Unlock()
}

// LinkEpoch reports the current link-event epoch.
func (pf *ProcFabric) LinkEpoch() uint64 { return pf.linkEpoch.Load() }

// FailNode marks a node administratively down in this process's view and
// fires the node watchers. Multi-process drivers usually SIGKILL the
// node's daemon instead — that is the point of the process transport —
// and reserve this for the local flag semantics.
func (pf *ProcFabric) FailNode(id core.NodeID) {
	if int(id) >= pf.n {
		return
	}
	pf.mu.Lock()
	if pf.down[id].Swap(true) {
		pf.mu.Unlock()
		return
	}
	epoch := pf.nodeEpoch.Add(1)
	ws := append([]func(core.NodeID, uint64){}, pf.watchers...)
	pf.mu.Unlock()
	if pf.local[id] {
		pf.drain(pf.req[id])
		pf.drain(pf.rpl[id])
	}
	for _, w := range ws {
		go w(id, epoch)
	}
}

func (pf *ProcFabric) drain(ch chan *proto.Batch) {
	for {
		select {
		case b := <-ch:
			proto.FreeBatchPackets(b)
		default:
			return
		}
	}
}

// RestoreNode clears an administrative node-down flag and fires the
// restore watchers.
func (pf *ProcFabric) RestoreNode(id core.NodeID) {
	if int(id) >= pf.n {
		return
	}
	pf.mu.Lock()
	if !pf.down[id].Swap(false) {
		pf.mu.Unlock()
		return
	}
	epoch := pf.nodeEpoch.Add(1)
	ws := append([]func(core.NodeID, uint64){}, pf.restoreWatchers...)
	pf.mu.Unlock()
	for _, w := range ws {
		go w(id, epoch)
	}
}

// NodeDown reports whether id is administratively down.
func (pf *ProcFabric) NodeDown(id core.NodeID) bool {
	return int(id) < pf.n && pf.down[id].Load()
}

// pairInboundLocked snapshots the inbound connections belonging to the
// a↔b pair. Caller holds pf.mu.
func (pf *ProcFabric) pairInboundLocked(pk [2]core.NodeID) []net.Conn {
	var out []net.Conn
	for c, p := range pf.inbound {
		if p == pk {
			out = append(out, c)
		}
	}
	return out
}

// FailLink cuts both directions of a↔b and fires the link-fail watchers.
// If the pair has connections in this process (one endpoint local), they
// are closed and redial is blocked until RestoreLink; the pair is latched
// down so the teardown does not double-fire and the eventual reconnect
// fires the restore. Drivers broadcast the cut to every process so all of
// them observe the event, matching the in-process fabric.
func (pf *ProcFabric) FailLink(a, b core.NodeID) {
	pf.mu.Lock()
	pf.cut[Link{From: a, To: b}] = true
	pf.cut[Link{From: b, To: a}] = true
	epoch := pf.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, pf.linkWatchers...)
	pk := pairKeyOf(a, b)
	var toClose []net.Conn
	if ps := pf.pairs[pk]; ps != nil {
		ps.down = true
		toClose = pf.pairInboundLocked(pk)
	}
	pf.mu.Unlock()
	for _, w := range ws {
		go w(a, b, epoch)
	}
	for _, c := range toClose {
		c.Close()
	}
	for _, lane := range []proto.Kind{proto.KindRequest, proto.KindReply} {
		for _, key := range []flowKey{{a, b, lane}, {b, a, lane}} {
			if f := pf.flows[key]; f != nil {
				f.mu.Lock()
				conn := f.conn
				f.mu.Unlock()
				if conn != nil {
					pf.flowDownIf(f, conn, false)
				}
			}
		}
	}
}

// FailLinkDirected cuts only a→b: connections stay up (the healthy
// direction keeps flowing), but traffic onto the dead direction is
// refused at LaneFor and dropped by the write path.
func (pf *ProcFabric) FailLinkDirected(a, b core.NodeID) {
	pf.mu.Lock()
	pf.cut[Link{From: a, To: b}] = true
	epoch := pf.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, pf.linkWatchers...)
	pf.mu.Unlock()
	for _, w := range ws {
		go w(a, b, epoch)
	}
}

// RestoreLink clears the cut of a↔b. For pairs whose connections this
// process tears down on FailLink, the restore watchers fire when the
// flows actually reconnect and re-handshake; for purely administrative
// state (remote-remote pairs, directed cuts) they fire immediately.
func (pf *ProcFabric) RestoreLink(a, b core.NodeID) {
	pf.mu.Lock()
	if !pf.cut[Link{From: a, To: b}] && !pf.cut[Link{From: b, To: a}] {
		pf.mu.Unlock()
		return
	}
	delete(pf.cut, Link{From: a, To: b})
	delete(pf.cut, Link{From: b, To: a})
	epoch := pf.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, pf.linkRestoreWatchers...)
	deferred := false
	if ps := pf.pairs[pairKeyOf(a, b)]; ps != nil && ps.down {
		deferred = true // reconnection will latch up and fire the restore
	}
	pf.mu.Unlock()
	if deferred {
		return
	}
	for _, w := range ws {
		go w(a, b, epoch)
	}
}

// Reachable reports whether src and dst can currently complete
// request/reply traffic in this process's view: fabric open, both
// endpoints administratively up, neither direction cut, and — for pairs
// with local connections — the sockets observed healthy.
func (pf *ProcFabric) Reachable(src, dst core.NodeID) bool {
	if pf.closed.Load() {
		return false
	}
	if int(src) < 0 || int(src) >= pf.n || int(dst) < 0 || int(dst) >= pf.n {
		return false
	}
	if pf.down[src].Load() || pf.down[dst].Load() {
		return false
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	if pf.cut[Link{From: src, To: dst}] || pf.cut[Link{From: dst, To: src}] {
		return false
	}
	if ps := pf.pairs[pairKeyOf(src, dst)]; ps != nil && ps.down {
		return false
	}
	return true
}

// Close shuts the transport down: listeners and connections close, every
// supervisor goroutine exits, and blocked senders are released.
func (pf *ProcFabric) Close() {
	if pf.closed.Swap(true) {
		return
	}
	close(pf.done)
	for _, l := range pf.listeners {
		l.Close()
	}
	pf.mu.Lock()
	conns := make([]net.Conn, 0, len(pf.conns))
	for c := range pf.conns {
		conns = append(conns, c)
	}
	pf.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	pf.wg.Wait()
	if len(pf.cfg.Addrs) == 0 {
		for _, id := range pf.cfg.Local {
			_, addr := pf.cfg.addr(id)
			os.Remove(addr)
		}
	}
}

var _ Transport = (*ProcFabric)(nil)
