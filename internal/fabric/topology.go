// Package fabric models the soNUMA memory fabric (§3, §6): reliable
// point-to-point links with credit-based flow control, two virtual lanes for
// deadlock-free request/reply traffic, and low-dimensional topologies routed
// without CAM lookups (destination address maps directly to an output port).
//
// The package serves both platforms. The topology and routing logic here is
// shared; the goroutine-based Interconnect (interconnect.go) carries real
// packets for the development platform, while the cycle-level model uses
// Topology route/delay computation with its own link-contention ports.
package fabric

import (
	"fmt"

	"sonuma/internal/core"
)

// Link identifies a directed physical link as (from, to) node pair.
type Link struct {
	From, To core.NodeID
}

// Topology describes the fabric graph and its routing function.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Nodes reports the number of nodes.
	Nodes() int
	// Route returns the ordered directed links a packet traverses from
	// src to dst using the topology's deterministic routing (dimension-
	// order for tori). An empty route means src == dst (loopback).
	Route(src, dst core.NodeID) []Link
	// Hops reports len(Route(src,dst)) without allocating.
	Hops(src, dst core.NodeID) int
	// Diameter reports the maximum hop count over all pairs.
	Diameter() int
}

// Crossbar is the paper's simulated configuration (§7.1): a full crossbar
// with reliable links and a flat latency between any pair of nodes. Every
// pair is one hop.
type Crossbar struct {
	N int
}

// NewCrossbar returns an n-node full crossbar.
func NewCrossbar(n int) *Crossbar { return &Crossbar{N: n} }

// Name implements Topology.
func (c *Crossbar) Name() string { return fmt.Sprintf("crossbar(%d)", c.N) }

// Nodes implements Topology.
func (c *Crossbar) Nodes() int { return c.N }

// Route implements Topology: a single direct link.
func (c *Crossbar) Route(src, dst core.NodeID) []Link {
	if src == dst {
		return nil
	}
	return []Link{{From: src, To: dst}}
}

// Hops implements Topology.
func (c *Crossbar) Hops(src, dst core.NodeID) int {
	if src == dst {
		return 0
	}
	return 1
}

// Diameter implements Topology.
func (c *Crossbar) Diameter() int { return 1 }

// Torus2D is a k-ary 2-cube with dimension-order (X then Y) routing and
// shortest-direction traversal per ring, as in the rack-scale glueless
// fabrics the paper cites (§2.1, §6).
type Torus2D struct {
	W, H int
}

// NewTorus2D returns a w×h 2D torus.
func NewTorus2D(w, h int) *Torus2D { return &Torus2D{W: w, H: h} }

// Name implements Topology.
func (t *Torus2D) Name() string { return fmt.Sprintf("torus2d(%dx%d)", t.W, t.H) }

// Nodes implements Topology.
func (t *Torus2D) Nodes() int { return t.W * t.H }

func (t *Torus2D) coords(n core.NodeID) (x, y int) { return int(n) % t.W, int(n) / t.W }

func (t *Torus2D) id(x, y int) core.NodeID { return core.NodeID(y*t.W + x) }

// ringStep returns the next coordinate and remaining distance moving from a
// to b around a ring of size k in the shorter direction.
func ringStep(a, b, k int) int {
	if a == b {
		return a
	}
	fwd := (b - a + k) % k
	if fwd <= k-fwd {
		return (a + 1) % k
	}
	return (a - 1 + k) % k
}

// Route implements Topology with X-then-Y dimension-order routing.
func (t *Torus2D) Route(src, dst core.NodeID) []Link {
	if src == dst {
		return nil
	}
	var links []Link
	x, y := t.coords(src)
	dx, dy := t.coords(dst)
	cur := src
	for x != dx {
		x = ringStep(x, dx, t.W)
		next := t.id(x, y)
		links = append(links, Link{From: cur, To: next})
		cur = next
	}
	for y != dy {
		y = ringStep(y, dy, t.H)
		next := t.id(x, y)
		links = append(links, Link{From: cur, To: next})
		cur = next
	}
	return links
}

// Hops implements Topology.
func (t *Torus2D) Hops(src, dst core.NodeID) int {
	x, y := t.coords(src)
	dx, dy := t.coords(dst)
	return ringDist(x, dx, t.W) + ringDist(y, dy, t.H)
}

func ringDist(a, b, k int) int {
	d := (b - a + k) % k
	if d > k-d {
		d = k - d
	}
	return d
}

// Diameter implements Topology.
func (t *Torus2D) Diameter() int { return t.W/2 + t.H/2 }

// Torus3D is a k-ary 3-cube with X-Y-Z dimension-order routing; the paper
// points to 3D torii as well matched to rack-scale deployments (§6).
type Torus3D struct {
	X, Y, Z int
}

// NewTorus3D returns an x×y×z 3D torus.
func NewTorus3D(x, y, z int) *Torus3D { return &Torus3D{X: x, Y: y, Z: z} }

// Name implements Topology.
func (t *Torus3D) Name() string { return fmt.Sprintf("torus3d(%dx%dx%d)", t.X, t.Y, t.Z) }

// Nodes implements Topology.
func (t *Torus3D) Nodes() int { return t.X * t.Y * t.Z }

func (t *Torus3D) coords(n core.NodeID) (x, y, z int) {
	return int(n) % t.X, (int(n) / t.X) % t.Y, int(n) / (t.X * t.Y)
}

func (t *Torus3D) id(x, y, z int) core.NodeID {
	return core.NodeID(z*t.X*t.Y + y*t.X + x)
}

// Route implements Topology with X-Y-Z dimension-order routing.
func (t *Torus3D) Route(src, dst core.NodeID) []Link {
	if src == dst {
		return nil
	}
	var links []Link
	x, y, z := t.coords(src)
	dx, dy, dz := t.coords(dst)
	cur := src
	step := func(next core.NodeID) {
		links = append(links, Link{From: cur, To: next})
		cur = next
	}
	for x != dx {
		x = ringStep(x, dx, t.X)
		step(t.id(x, y, z))
	}
	for y != dy {
		y = ringStep(y, dy, t.Y)
		step(t.id(x, y, z))
	}
	for z != dz {
		z = ringStep(z, dz, t.Z)
		step(t.id(x, y, z))
	}
	return links
}

// Hops implements Topology.
func (t *Torus3D) Hops(src, dst core.NodeID) int {
	x, y, z := t.coords(src)
	dx, dy, dz := t.coords(dst)
	return ringDist(x, dx, t.X) + ringDist(y, dy, t.Y) + ringDist(z, dz, t.Z)
}

// Diameter implements Topology.
func (t *Torus3D) Diameter() int { return t.X/2 + t.Y/2 + t.Z/2 }
