package fabric

import (
	"testing"
	"testing/quick"
	"time"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

func topologies() []Topology {
	return []Topology{
		NewCrossbar(16),
		NewTorus2D(4, 4),
		NewTorus2D(5, 3),
		NewTorus3D(2, 3, 4),
		NewTorus3D(4, 4, 4),
	}
}

// TestRouteValidity checks, for every pair in every topology, that the
// deterministic route is connected (consecutive links chain), starts at
// src, ends at dst, and matches Hops.
func TestRouteValidity(t *testing.T) {
	for _, topo := range topologies() {
		n := topo.Nodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				src, dst := core.NodeID(s), core.NodeID(d)
				route := topo.Route(src, dst)
				if s == d {
					if len(route) != 0 {
						t.Fatalf("%s: self route not empty", topo.Name())
					}
					continue
				}
				if len(route) == 0 {
					t.Fatalf("%s: no route %d->%d", topo.Name(), s, d)
				}
				if route[0].From != src || route[len(route)-1].To != dst {
					t.Fatalf("%s: route %d->%d endpoints wrong: %v", topo.Name(), s, d, route)
				}
				for i := 1; i < len(route); i++ {
					if route[i].From != route[i-1].To {
						t.Fatalf("%s: route %d->%d disconnected at %d", topo.Name(), s, d, i)
					}
				}
				if topo.Hops(src, dst) != len(route) {
					t.Fatalf("%s: Hops(%d,%d)=%d but route has %d links",
						topo.Name(), s, d, topo.Hops(src, dst), len(route))
				}
				if len(route) > topo.Diameter() {
					t.Fatalf("%s: route %d->%d length %d exceeds diameter %d",
						topo.Name(), s, d, len(route), topo.Diameter())
				}
			}
		}
	}
}

func TestCrossbarSingleHop(t *testing.T) {
	c := NewCrossbar(8)
	if c.Hops(0, 7) != 1 || c.Diameter() != 1 {
		t.Fatal("crossbar is not single-hop")
	}
}

func TestTorusShortestDirection(t *testing.T) {
	tor := NewTorus2D(8, 1)
	// 0 -> 6 should wrap (2 hops), not walk forward (6 hops).
	if h := tor.Hops(0, 6); h != 2 {
		t.Fatalf("ring 0->6 hops = %d, want 2 (wrap)", h)
	}
}

// Property: hop distance is symmetric and satisfies the triangle inequality
// on tori (dimension-order routes realize ring distances).
func TestPropertyTorusMetric(t *testing.T) {
	tor := NewTorus3D(4, 3, 2)
	n := tor.Nodes()
	f := func(a, b, c uint8) bool {
		x, y, z := core.NodeID(int(a)%n), core.NodeID(int(b)%n), core.NodeID(int(c)%n)
		if tor.Hops(x, y) != tor.Hops(y, x) {
			return false
		}
		return tor.Hops(x, z) <= tor.Hops(x, y)+tor.Hops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func mkPkt(src, dst int, kind proto.Kind) *proto.Packet {
	return &proto.Packet{Kind: kind, Op: core.OpRead, Src: core.NodeID(src), Dst: core.NodeID(dst), Aux: 64}
}

func TestInterconnectDelivery(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(4), 8)
	defer ic.Close()
	if err := ic.Send(mkPkt(0, 2, proto.KindRequest)); err != nil {
		t.Fatal(err)
	}
	if err := ic.Send(mkPkt(1, 2, proto.KindReply)); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-ic.Requests(2):
		if b.Len() != 1 || b.Src() != 0 {
			t.Fatalf("request batch len=%d src=%d", b.Len(), b.Src())
		}
	default:
		t.Fatal("request not delivered")
	}
	select {
	case b := <-ic.Replies(2):
		if b.Len() != 1 || b.Src() != 1 {
			t.Fatalf("reply batch len=%d src=%d", b.Len(), b.Src())
		}
	default:
		t.Fatal("reply not delivered")
	}
	if ic.ReqSent.Load() != 1 || ic.RplSent.Load() != 1 {
		t.Fatal("counters wrong")
	}
	if ic.BatchesSent.Load() != 2 {
		t.Fatalf("BatchesSent = %d, want 2", ic.BatchesSent.Load())
	}
}

// mkBatch packs n single-line read requests for the same route into one
// batch.
func mkBatch(src, dst, n int) *proto.Batch {
	b := proto.AllocBatch()
	for i := 0; i < n; i++ {
		if !b.Append(mkPkt(src, dst, proto.KindRequest)) {
			panic("mkBatch: append failed")
		}
	}
	return b
}

// TestBatchAmortizesCredits checks that a batch of MaxBatch packets charges
// one credit, while the same packets sent individually charge one each.
func TestBatchAmortizesCredits(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(2), 1)
	defer ic.Close()
	if err := ic.TrySendBatch(mkBatch(0, 1, proto.MaxBatch)); err != nil {
		t.Fatalf("full batch on one credit: %v", err)
	}
	if err := ic.TrySendBatch(mkBatch(0, 1, 1)); err != ErrBackpressure {
		t.Fatalf("second batch should be out of credits, got %v", err)
	}
	b := <-ic.Requests(1)
	if b.Len() != proto.MaxBatch {
		t.Fatalf("batch len %d, want %d", b.Len(), proto.MaxBatch)
	}
	if got := ic.ReqSent.Load(); got != proto.MaxBatch {
		t.Fatalf("ReqSent = %d, want %d (per-packet counting)", got, proto.MaxBatch)
	}
	if got := ic.BatchesSent.Load(); got != 1 {
		t.Fatalf("BatchesSent = %d, want 1 (per-batch credit)", got)
	}
}

// TestBatchRouteMismatchRejected checks Append refuses to mix routes/lanes.
func TestBatchRouteMismatchRejected(t *testing.T) {
	b := proto.AllocBatch()
	defer proto.FreeBatch(b)
	if !b.Append(mkPkt(0, 1, proto.KindRequest)) {
		t.Fatal("first append failed")
	}
	if b.Append(mkPkt(0, 2, proto.KindRequest)) {
		t.Fatal("append accepted a different destination")
	}
	if b.Append(mkPkt(1, 1, proto.KindRequest)) {
		t.Fatal("append accepted a different source")
	}
	if b.Append(mkPkt(0, 1, proto.KindReply)) {
		t.Fatal("append accepted a different lane")
	}
	if b.Len() != 1 {
		t.Fatalf("batch len %d after rejected appends, want 1", b.Len())
	}
}

func TestVirtualLanesAreIndependent(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(2), 2)
	defer ic.Close()
	// Fill the request lane to node 1.
	for i := 0; i < 2; i++ {
		if err := ic.TrySend(mkPkt(0, 1, proto.KindRequest)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ic.TrySend(mkPkt(0, 1, proto.KindRequest)); err != ErrBackpressure {
		t.Fatalf("request lane should be out of credits, got %v", err)
	}
	// The reply lane must still accept traffic (deadlock freedom, §6).
	if err := ic.TrySend(mkPkt(0, 1, proto.KindReply)); err != nil {
		t.Fatalf("reply lane blocked by request lane: %v", err)
	}
}

func TestSendBlocksUntilCredit(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(2), 1)
	defer ic.Close()
	if err := ic.Send(mkPkt(0, 1, proto.KindRequest)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ic.Send(mkPkt(0, 1, proto.KindRequest)) }()
	select {
	case <-done:
		t.Fatal("send completed without credit")
	case <-time.After(20 * time.Millisecond):
	}
	<-ic.Requests(1) // free a credit
	if err := <-done; err != nil {
		t.Fatalf("blocked send failed: %v", err)
	}
}

func TestNodeFailure(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(4), 4)
	defer ic.Close()
	notified := make(chan core.NodeID, 1)
	ic.Watch(func(id core.NodeID, _ uint64) { notified <- id })
	ic.FailNode(2)
	if err := ic.Send(mkPkt(0, 2, proto.KindRequest)); err != ErrDown {
		t.Fatalf("send to failed node: %v", err)
	}
	if err := ic.Send(mkPkt(2, 0, proto.KindRequest)); err != ErrDown {
		t.Fatalf("send from failed node: %v", err)
	}
	select {
	case id := <-notified:
		if id != 2 {
			t.Fatalf("watcher notified of %d", id)
		}
	case <-time.After(time.Second):
		t.Fatal("watcher not notified")
	}
	if !ic.NodeDown(2) || ic.NodeDown(1) {
		t.Fatal("NodeDown state wrong")
	}
	// Healthy pairs unaffected.
	if err := ic.Send(mkPkt(0, 1, proto.KindRequest)); err != nil {
		t.Fatalf("healthy pair affected: %v", err)
	}
}

func TestLinkFailureAndRestore(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(4), 4)
	defer ic.Close()
	ic.FailLink(0, 3)
	if err := ic.Send(mkPkt(0, 3, proto.KindRequest)); err != ErrDown {
		t.Fatalf("send over failed link: %v", err)
	}
	if err := ic.Send(mkPkt(3, 0, proto.KindRequest)); err != ErrDown {
		t.Fatalf("reverse direction should fail too: %v", err)
	}
	if err := ic.Send(mkPkt(0, 1, proto.KindRequest)); err != nil {
		t.Fatalf("unrelated link affected: %v", err)
	}
	ic.RestoreLink(0, 3)
	if err := ic.Send(mkPkt(0, 3, proto.KindRequest)); err != nil {
		t.Fatalf("send after restore: %v", err)
	}
}

func TestTorusLinkFailureBreaksRoutesThrough(t *testing.T) {
	ic := NewInterconnect(NewTorus2D(4, 1), 4)
	defer ic.Close()
	// Ring 0-1-2-3; route 0->1 is direct, 1->2 direct. Breaking 1-2
	// must break 0->2 (dimension-order route passes through).
	ic.FailLink(1, 2)
	if err := ic.Send(mkPkt(0, 2, proto.KindRequest)); err != ErrDown {
		t.Fatalf("route through failed link: %v", err)
	}
	if err := ic.Send(mkPkt(0, 1, proto.KindRequest)); err != nil {
		t.Fatalf("direct link affected: %v", err)
	}
}

func TestCloseReleasesBlockedSenders(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(2), 1)
	if err := ic.Send(mkPkt(0, 1, proto.KindRequest)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ic.Send(mkPkt(0, 1, proto.KindRequest)) }()
	time.Sleep(10 * time.Millisecond)
	ic.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked sender got %v, want ErrClosed", err)
	}
	if err := ic.Send(mkPkt(0, 1, proto.KindRequest)); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestLaneForMatchesSend(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(2), 4)
	defer ic.Close()
	b := mkBatch(0, 1, 2)
	lane, err := ic.LaneFor(b.Kind(), b.Src(), b.Dst())
	if err != nil {
		t.Fatal(err)
	}
	kind, packets, wire := b.Kind(), b.Len(), b.WireSize()
	lane <- b
	ic.Account(kind, packets, wire)
	select {
	case got := <-ic.Requests(1):
		if got != b {
			t.Fatal("wrong batch delivered")
		}
	default:
		t.Fatal("LaneFor lane does not reach destination")
	}
	ic.FailNode(1)
	if _, err := ic.LaneFor(proto.KindRequest, 0, 1); err != ErrDown {
		t.Fatalf("LaneFor to failed node: %v", err)
	}
}

// TestRestoreWatchers verifies the restore half of the watcher API: link
// and node restores notify their watchers, share the link-event epoch
// counter with failures (so a Fail/Restore pair is totally ordered), and a
// restore of a healthy link or node notifies nobody.
func TestRestoreWatchers(t *testing.T) {
	ic := NewInterconnect(NewCrossbar(3), 2)
	defer ic.Close()

	type linkEv struct {
		a, b  core.NodeID
		epoch uint64
	}
	linkFail := make(chan linkEv, 4)
	linkRestore := make(chan linkEv, 4)
	nodeRestore := make(chan core.NodeID, 4)
	ic.WatchLink(func(a, b core.NodeID, e uint64) { linkFail <- linkEv{a, b, e} })
	ic.WatchLinkRestore(func(a, b core.NodeID, e uint64) { linkRestore <- linkEv{a, b, e} })
	nodeEpochs := make(chan uint64, 4)
	ic.Watch(func(id core.NodeID, e uint64) { nodeEpochs <- e })
	ic.WatchRestore(func(id core.NodeID, e uint64) {
		nodeRestore <- id
		nodeEpochs <- e
	})

	ic.FailLink(0, 1)
	fe := <-linkFail
	ic.RestoreLink(0, 1)
	re := <-linkRestore
	if re.a != 0 || re.b != 1 {
		t.Fatalf("restore event for link %d-%d, want 0-1", re.a, re.b)
	}
	//lint:ignore epochorder link epochs are plain monotonic event counters; the test asserts exactly that monotonicity
	if re.epoch <= fe.epoch {
		t.Fatalf("restore epoch %d not after failure epoch %d", re.epoch, fe.epoch)
	}
	if !ic.Reachable(0, 1) {
		t.Fatal("pair unreachable after RestoreLink")
	}

	// Restoring a healthy link is a no-op: no event, no epoch bump.
	before := ic.LinkEpoch()
	ic.RestoreLink(0, 1)
	if ic.LinkEpoch() != before {
		t.Fatal("RestoreLink of a healthy link bumped the epoch")
	}
	select {
	case ev := <-linkRestore:
		t.Fatalf("spurious restore event %v for a healthy link", ev)
	case <-time.After(10 * time.Millisecond):
	}

	ic.FailNode(2)
	if !ic.NodeDown(2) {
		t.Fatal("node 2 not down after FailNode")
	}
	ic.RestoreNode(2)
	if id := <-nodeRestore; id != 2 {
		t.Fatalf("node restore event for %d, want 2", id)
	}
	if ic.NodeDown(2) || !ic.Reachable(0, 2) {
		t.Fatal("node 2 still down after RestoreNode")
	}
	// Node fail and restore share one epoch counter: the two stamps must
	// be distinct and nonzero, so a racing pair is always orderable.
	ne1, ne2 := <-nodeEpochs, <-nodeEpochs
	if ne1 == ne2 || ne1 == 0 || ne2 == 0 {
		t.Fatalf("node event epochs %d/%d not orderable", ne1, ne2)
	}
	ic.RestoreNode(2) // healthy node: no event
	select {
	case id := <-nodeRestore:
		t.Fatalf("spurious node restore event %d", id)
	case <-time.After(10 * time.Millisecond):
	}
}
