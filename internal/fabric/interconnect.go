package fabric

import (
	"errors"
	"sync"
	"sync/atomic"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// ErrDown reports a send toward (or from) a failed node or over a failed
// link. The RMC converts it into StatusNodeFailure completions and notifies
// the driver (§5.1: "the RMC notifies the driver of failures within the
// soNUMA fabric").
var ErrDown = errors.New("fabric: node or link down")

// ErrClosed reports use of an interconnect after Close.
var ErrClosed = errors.New("fabric: interconnect closed")

// ErrBackpressure reports that TrySend found the destination lane out of
// credits; the caller should drain its own inbound lanes and retry, which is
// how the RMC pipelines avoid request/reply deadlock.
var ErrBackpressure = errors.New("fabric: lane out of credits")

// DefaultCredits is the per-(destination, lane) buffering of the
// development-platform interconnect; it models link-level credit-based flow
// control (§6: "credit-based flow control"). A sender blocks when the
// destination's lane buffer is out of credits.
const DefaultCredits = 64

// Interconnect is the development platform's fabric: an in-process crossbar
// carrying proto.Packet values between emulated nodes over two virtual
// lanes. Bounded channels provide the credit semantics; separate
// request/reply lanes provide deadlock freedom, because reply traffic can
// always drain regardless of request backpressure.
type Interconnect struct {
	n      int
	topo   Topology
	req    []chan *proto.Packet // per destination node
	rpl    []chan *proto.Packet
	down   []atomic.Bool
	closed atomic.Bool
	done   chan struct{}

	mu       sync.Mutex
	linkDown map[Link]bool
	watchers []func(core.NodeID)

	// Counters for fabric statistics.
	ReqSent atomic.Uint64
	RplSent atomic.Uint64
	Bytes   atomic.Uint64
}

// NewInterconnect builds an interconnect for topo with the given per-lane
// credits (0 selects DefaultCredits).
func NewInterconnect(topo Topology, credits int) *Interconnect {
	if credits <= 0 {
		credits = DefaultCredits
	}
	n := topo.Nodes()
	ic := &Interconnect{
		n:        n,
		topo:     topo,
		req:      make([]chan *proto.Packet, n),
		rpl:      make([]chan *proto.Packet, n),
		down:     make([]atomic.Bool, n),
		done:     make(chan struct{}),
		linkDown: make(map[Link]bool),
	}
	for i := 0; i < n; i++ {
		ic.req[i] = make(chan *proto.Packet, credits)
		ic.rpl[i] = make(chan *proto.Packet, credits)
	}
	return ic
}

// Nodes reports the number of fabric endpoints.
func (ic *Interconnect) Nodes() int { return ic.n }

// Topology returns the fabric topology.
func (ic *Interconnect) Topology() Topology { return ic.topo }

// Done returns a channel closed when the interconnect shuts down; RMC
// pipelines select on it to terminate cleanly.
func (ic *Interconnect) Done() <-chan struct{} { return ic.done }

// routeUp verifies every link of the deterministic route is healthy.
func (ic *Interconnect) routeUp(src, dst core.NodeID) bool {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if len(ic.linkDown) == 0 {
		return true
	}
	for _, l := range ic.topo.Route(src, dst) {
		if ic.linkDown[l] {
			return false
		}
	}
	return true
}

// Send injects a packet toward pkt.Dst on the lane selected by pkt.Kind.
// It blocks while the destination lane is out of credits and fails fast if
// the destination (or any link on the route) is down or the fabric closed.
func (ic *Interconnect) Send(pkt *proto.Packet) error {
	if ic.closed.Load() {
		return ErrClosed
	}
	dst := int(pkt.Dst)
	if dst < 0 || dst >= ic.n {
		return ErrDown
	}
	if ic.down[dst].Load() || ic.down[pkt.Src].Load() || !ic.routeUp(pkt.Src, pkt.Dst) {
		return ErrDown
	}
	var lane chan *proto.Packet
	if pkt.Kind == proto.KindReply {
		lane = ic.rpl[dst]
	} else {
		lane = ic.req[dst]
	}
	select {
	case lane <- pkt:
		if pkt.Kind == proto.KindReply {
			ic.RplSent.Add(1)
		} else {
			ic.ReqSent.Add(1)
		}
		ic.Bytes.Add(uint64(pkt.WireSize()))
		return nil
	case <-ic.done:
		return ErrClosed
	}
}

// LaneFor validates the route for pkt and returns the destination lane
// channel without sending. Callers that must stay responsive while blocked
// on credits (the RMC's request pipelines) select on the returned lane
// together with their inbound work; they call Account after a successful
// direct send so fabric counters stay correct.
func (ic *Interconnect) LaneFor(pkt *proto.Packet) (chan<- *proto.Packet, error) {
	if ic.closed.Load() {
		return nil, ErrClosed
	}
	dst := int(pkt.Dst)
	if dst < 0 || dst >= ic.n {
		return nil, ErrDown
	}
	if ic.down[dst].Load() || ic.down[pkt.Src].Load() || !ic.routeUp(pkt.Src, pkt.Dst) {
		return nil, ErrDown
	}
	if pkt.Kind == proto.KindReply {
		return ic.rpl[dst], nil
	}
	return ic.req[dst], nil
}

// Account records a packet sent directly into a lane from LaneFor.
func (ic *Interconnect) Account(pkt *proto.Packet) {
	if pkt.Kind == proto.KindReply {
		ic.RplSent.Add(1)
	} else {
		ic.ReqSent.Add(1)
	}
	ic.Bytes.Add(uint64(pkt.WireSize()))
}

// TrySend is Send without blocking: if the destination lane has no free
// credit it returns ErrBackpressure immediately.
func (ic *Interconnect) TrySend(pkt *proto.Packet) error {
	if ic.closed.Load() {
		return ErrClosed
	}
	dst := int(pkt.Dst)
	if dst < 0 || dst >= ic.n {
		return ErrDown
	}
	if ic.down[dst].Load() || ic.down[pkt.Src].Load() || !ic.routeUp(pkt.Src, pkt.Dst) {
		return ErrDown
	}
	var lane chan *proto.Packet
	if pkt.Kind == proto.KindReply {
		lane = ic.rpl[dst]
	} else {
		lane = ic.req[dst]
	}
	select {
	case lane <- pkt:
		if pkt.Kind == proto.KindReply {
			ic.RplSent.Add(1)
		} else {
			ic.ReqSent.Add(1)
		}
		ic.Bytes.Add(uint64(pkt.WireSize()))
		return nil
	default:
		return ErrBackpressure
	}
}

// Requests returns node's inbound request lane (consumed by its RRPP).
func (ic *Interconnect) Requests(node core.NodeID) <-chan *proto.Packet {
	return ic.req[node]
}

// Replies returns node's inbound reply lane (consumed by its RCP).
func (ic *Interconnect) Replies(node core.NodeID) <-chan *proto.Packet {
	return ic.rpl[node]
}

// Watch registers a callback invoked (asynchronously, once per failure) when
// a node fails; the RMC uses it to flush in-flight transactions targeting
// the failed node with StatusNodeFailure.
func (ic *Interconnect) Watch(fn func(core.NodeID)) {
	ic.mu.Lock()
	ic.watchers = append(ic.watchers, fn)
	ic.mu.Unlock()
}

// FailNode marks a node down. In-flight packets to it are dropped (the
// channel is drained), and watchers are notified.
func (ic *Interconnect) FailNode(id core.NodeID) {
	if int(id) >= ic.n || ic.down[id].Swap(true) {
		return
	}
	// Drain pending traffic so no reply is ever generated, matching a
	// node that lost power: requests in its queues vanish.
	ic.drain(ic.req[int(id)])
	ic.drain(ic.rpl[int(id)])
	ic.mu.Lock()
	ws := append([]func(core.NodeID){}, ic.watchers...)
	ic.mu.Unlock()
	for _, w := range ws {
		go w(id)
	}
}

func (ic *Interconnect) drain(ch chan *proto.Packet) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// NodeDown reports whether id has been failed.
func (ic *Interconnect) NodeDown(id core.NodeID) bool {
	return int(id) < ic.n && ic.down[id].Load()
}

// FailLink marks the directed link a→b (and b→a) down. Routes crossing it
// fail with ErrDown; with crossbar topology that isolates exactly the pair.
func (ic *Interconnect) FailLink(a, b core.NodeID) {
	ic.mu.Lock()
	ic.linkDown[Link{From: a, To: b}] = true
	ic.linkDown[Link{From: b, To: a}] = true
	ic.mu.Unlock()
}

// RestoreLink brings a previously failed link back up.
func (ic *Interconnect) RestoreLink(a, b core.NodeID) {
	ic.mu.Lock()
	delete(ic.linkDown, Link{From: a, To: b})
	delete(ic.linkDown, Link{From: b, To: a})
	ic.mu.Unlock()
}

// Close shuts the fabric down, releasing blocked senders and signalling
// consumers through Done.
func (ic *Interconnect) Close() {
	if ic.closed.Swap(true) {
		return
	}
	close(ic.done)
}
