package fabric

import (
	"errors"
	"sync"
	"sync/atomic"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// ErrDown reports a send toward (or from) a failed node or over a failed
// link. The RMC converts it into StatusNodeFailure completions and notifies
// the driver (§5.1: "the RMC notifies the driver of failures within the
// soNUMA fabric").
var ErrDown = errors.New("fabric: node or link down")

// ErrClosed reports use of an interconnect after Close.
var ErrClosed = errors.New("fabric: interconnect closed")

// ErrBackpressure reports that TrySend found the destination lane out of
// credits; the caller should drain its own inbound lanes and retry, which is
// how the RMC pipelines avoid request/reply deadlock.
var ErrBackpressure = errors.New("fabric: lane out of credits")

// DefaultCredits is the per-(destination, lane) buffering of the
// development-platform interconnect; it models link-level credit-based flow
// control (§6: "credit-based flow control"). One credit covers one batch of
// up to proto.MaxBatch line packets, so flow-control accounting is amortized
// over the batch. A sender blocks when the destination's lane is out of
// credits.
const DefaultCredits = 64

// Interconnect is the development platform's fabric: an in-process crossbar
// carrying proto.Batch frames between emulated nodes over two virtual
// lanes. Each destination has a pair of bounded shard queues (request and
// reply lanes); the bounded channels provide the credit semantics, and the
// separate lanes provide deadlock freedom, because reply traffic can always
// drain regardless of request backpressure. Batches amortize the per-send
// route validation, lane selection, and counter updates over up to
// proto.MaxBatch packets.
type Interconnect struct {
	n      int
	topo   Topology
	req    []chan *proto.Batch // per destination node
	rpl    []chan *proto.Batch
	down   []atomic.Bool
	closed atomic.Bool
	done   chan struct{}

	mu                  sync.Mutex
	linkDown            map[Link]bool
	watchers            []func(id core.NodeID, epoch uint64)
	restoreWatchers     []func(id core.NodeID, epoch uint64)
	linkWatchers        []func(a, b core.NodeID, epoch uint64)
	linkRestoreWatchers []func(a, b core.NodeID, epoch uint64)
	linkEpoch           atomic.Uint64 // bumped by every FailLink and RestoreLink
	nodeEpoch           atomic.Uint64 // bumped by every FailNode and RestoreNode

	// Counters for fabric statistics.
	ReqSent     atomic.Uint64 // request packets
	RplSent     atomic.Uint64 // reply packets
	BatchesSent atomic.Uint64 // fabric sends (credit charges)
	Bytes       atomic.Uint64
}

// NewInterconnect builds an interconnect for topo with the given per-lane
// credits (0 selects DefaultCredits).
func NewInterconnect(topo Topology, credits int) *Interconnect {
	if credits <= 0 {
		credits = DefaultCredits
	}
	n := topo.Nodes()
	ic := &Interconnect{
		n:        n,
		topo:     topo,
		req:      make([]chan *proto.Batch, n),
		rpl:      make([]chan *proto.Batch, n),
		down:     make([]atomic.Bool, n),
		done:     make(chan struct{}),
		linkDown: make(map[Link]bool),
	}
	for i := 0; i < n; i++ {
		ic.req[i] = make(chan *proto.Batch, credits)
		ic.rpl[i] = make(chan *proto.Batch, credits)
	}
	return ic
}

// Nodes reports the number of fabric endpoints.
func (ic *Interconnect) Nodes() int { return ic.n }

// Topology returns the fabric topology.
func (ic *Interconnect) Topology() Topology { return ic.topo }

// Done returns a channel closed when the interconnect shuts down; RMC
// pipelines select on it to terminate cleanly.
func (ic *Interconnect) Done() <-chan struct{} { return ic.done }

// RouteCrosses reports whether the deterministic route src→dst traverses
// the directed link a→b. RMCs use it on link-failure notifications to
// flush exactly the transactions whose traffic crossed the dead link —
// independent of the link's CURRENT state, because a racing RestoreLink
// cannot resurrect replies that were already dropped while it was down.
func (ic *Interconnect) RouteCrosses(src, dst, a, b core.NodeID) bool {
	if int(src) >= ic.n || int(dst) >= ic.n {
		return false
	}
	for _, l := range ic.topo.Route(src, dst) {
		if l.From == a && l.To == b {
			return true
		}
	}
	return false
}

// routeUp verifies every link of the deterministic route is healthy.
func (ic *Interconnect) routeUp(src, dst core.NodeID) bool {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	if len(ic.linkDown) == 0 {
		return true
	}
	for _, l := range ic.topo.Route(src, dst) {
		if ic.linkDown[l] {
			return false
		}
	}
	return true
}

// LaneFor validates the route for a batch with the given lane and endpoints
// and returns the destination shard queue without sending. Callers that
// must stay responsive while blocked on credits (the RMC's request
// pipelines) select on the returned lane together with their inbound work;
// they call Account after a successful direct send so fabric counters stay
// correct.
//
// Requests additionally validate the REPLY route: the protocol answers
// every request with exactly one reply over the reverse route, so under an
// asymmetric (one-way) link failure a request sent over the healthy
// direction is guaranteed to strand — its reply is dropped on the dead
// direction and nothing would ever complete the transaction. Failing the
// issue deterministically is the development platform's stand-in for the
// requester-side timeout real hardware would need.
func (ic *Interconnect) LaneFor(kind proto.Kind, src, dst core.NodeID) (chan<- *proto.Batch, error) {
	if ic.closed.Load() {
		return nil, ErrClosed
	}
	d := int(dst)
	if d < 0 || d >= ic.n || int(src) < 0 || int(src) >= ic.n {
		return nil, ErrDown
	}
	if ic.down[d].Load() || ic.down[src].Load() || !ic.routeUp(src, dst) {
		return nil, ErrDown
	}
	if kind == proto.KindReply {
		return ic.rpl[d], nil
	}
	if !ic.routeUp(dst, src) {
		return nil, ErrDown
	}
	return ic.req[d], nil
}

// Account records a batch sent directly into a lane from LaneFor, given
// its pre-send statistics. Callers must capture kind, packet count, and
// wire size BEFORE handing the batch to the lane: a delivered batch is
// owned (and may already be recycled) by the receiver.
func (ic *Interconnect) Account(kind proto.Kind, packets, wireBytes int) {
	if kind == proto.KindReply {
		ic.RplSent.Add(uint64(packets))
	} else {
		ic.ReqSent.Add(uint64(packets))
	}
	ic.BatchesSent.Add(1)
	ic.Bytes.Add(uint64(wireBytes))
}

// SendBatch injects a batch toward its destination on the lane selected by
// its kind, charging a single credit for the whole batch. It blocks while
// the destination lane is out of credits and fails fast if the destination
// (or any link on the route) is down or the fabric closed. On success the
// receiver owns the batch; on failure ownership stays with the caller.
func (ic *Interconnect) SendBatch(b *proto.Batch) error {
	kind, packets, wire := b.Kind(), b.Len(), b.WireSize()
	lane, err := ic.LaneFor(kind, b.Src(), b.Dst())
	if err != nil {
		return err
	}
	select {
	case lane <- b:
		ic.Account(kind, packets, wire)
		return nil
	case <-ic.done:
		return ErrClosed
	}
}

// TrySendBatch is SendBatch without blocking: if the destination lane has
// no free credit it returns ErrBackpressure immediately.
func (ic *Interconnect) TrySendBatch(b *proto.Batch) error {
	kind, packets, wire := b.Kind(), b.Len(), b.WireSize()
	lane, err := ic.LaneFor(kind, b.Src(), b.Dst())
	if err != nil {
		return err
	}
	select {
	case lane <- b:
		ic.Account(kind, packets, wire)
		return nil
	default:
		return ErrBackpressure
	}
}

// Send injects a single packet as a one-packet batch. Convenience wrapper
// for control-path and test traffic; the RMC data path builds multi-packet
// batches instead.
func (ic *Interconnect) Send(pkt *proto.Packet) error {
	b := proto.AllocBatch()
	b.Append(pkt)
	if err := ic.SendBatch(b); err != nil {
		proto.FreeBatch(b)
		return err
	}
	return nil
}

// TrySend is Send without blocking.
func (ic *Interconnect) TrySend(pkt *proto.Packet) error {
	b := proto.AllocBatch()
	b.Append(pkt)
	if err := ic.TrySendBatch(b); err != nil {
		proto.FreeBatch(b)
		return err
	}
	return nil
}

// Requests returns node's inbound request lane (consumed by its RRPP). The
// consumer owns received batches and their packets.
func (ic *Interconnect) Requests(node core.NodeID) <-chan *proto.Batch {
	return ic.req[node]
}

// Replies returns node's inbound reply lane (consumed by its RCP).
func (ic *Interconnect) Replies(node core.NodeID) <-chan *proto.Batch {
	return ic.rpl[node]
}

// Watch registers a callback invoked (asynchronously, once per failure)
// when a node fails; the RMC uses it to flush in-flight transactions
// targeting the failed node with StatusNodeFailure. Node fail and restore
// events share one epoch counter, bumped under the state flip, so a
// racing FailNode/RestoreNode pair can always be ordered by comparing
// epochs even when the asynchronous notifications arrive out of order.
func (ic *Interconnect) Watch(fn func(id core.NodeID, epoch uint64)) {
	ic.mu.Lock()
	ic.watchers = append(ic.watchers, fn)
	ic.mu.Unlock()
}

// WatchRestore registers a callback invoked (asynchronously) when a
// previously failed node is restored with RestoreNode. Symmetric to Watch
// and stamped from the same node-event epoch counter; services use it to
// begin re-admitting the peer (typically after an anti-entropy repair
// pass).
func (ic *Interconnect) WatchRestore(fn func(id core.NodeID, epoch uint64)) {
	ic.mu.Lock()
	ic.restoreWatchers = append(ic.restoreWatchers, fn)
	ic.mu.Unlock()
}

// WatchLink registers a callback invoked (asynchronously) when a link
// fails; the RMC uses it to flush in-flight transactions whose route became
// unreachable, since replies crossing the dead link are dropped. The epoch
// identifies the failure: transactions issued at or after it (see
// LinkEpoch) were not affected by this particular failure.
func (ic *Interconnect) WatchLink(fn func(a, b core.NodeID, epoch uint64)) {
	ic.mu.Lock()
	ic.linkWatchers = append(ic.linkWatchers, fn)
	ic.mu.Unlock()
}

// WatchLinkRestore registers a callback invoked (asynchronously) when a
// link is restored with RestoreLink — the symmetric half of WatchLink.
// Fail and restore events share one epoch counter, bumped under the same
// lock that flips the link state, so a racing Fail/Restore pair can always
// be ordered by comparing epochs even when the asynchronous notifications
// arrive out of order.
func (ic *Interconnect) WatchLinkRestore(fn func(a, b core.NodeID, epoch uint64)) {
	ic.mu.Lock()
	ic.linkRestoreWatchers = append(ic.linkRestoreWatchers, fn)
	ic.mu.Unlock()
}

// LinkEpoch reports the current link-event epoch (bumped by every FailLink
// and RestoreLink). RMCs stamp each transaction with it at issue time so an
// asynchronously delivered failure notification can distinguish
// transactions issued before the failure (whose replies may have been
// dropped) from ones issued after a racing RestoreLink (which must not be
// flushed).
func (ic *Interconnect) LinkEpoch() uint64 { return ic.linkEpoch.Load() }

// FailNode marks a node down. In-flight packets to it are dropped (the
// channel is drained), and watchers are notified.
func (ic *Interconnect) FailNode(id core.NodeID) {
	if int(id) >= ic.n {
		return
	}
	ic.mu.Lock()
	if ic.down[id].Swap(true) {
		ic.mu.Unlock()
		return
	}
	epoch := ic.nodeEpoch.Add(1)
	ws := append([]func(core.NodeID, uint64){}, ic.watchers...)
	ic.mu.Unlock()
	// Drain pending traffic so no reply is ever generated, matching a
	// node that lost power: requests in its queues vanish.
	ic.drain(ic.req[int(id)])
	ic.drain(ic.rpl[int(id)])
	for _, w := range ws {
		go w(id, epoch)
	}
}

func (ic *Interconnect) drain(ch chan *proto.Batch) {
	for {
		select {
		case b := <-ch:
			proto.FreeBatchPackets(b)
		default:
			return
		}
	}
}

// RestoreNode brings a previously failed node back onto the fabric. Its
// queues start empty (FailNode drained them) and restore watchers are
// notified; state the node held before the failure is the application's
// problem — the fabric only restores connectivity.
func (ic *Interconnect) RestoreNode(id core.NodeID) {
	if int(id) >= ic.n {
		return
	}
	ic.mu.Lock()
	if !ic.down[id].Swap(false) {
		ic.mu.Unlock()
		return
	}
	epoch := ic.nodeEpoch.Add(1)
	ws := append([]func(core.NodeID, uint64){}, ic.restoreWatchers...)
	ic.mu.Unlock()
	for _, w := range ws {
		go w(id, epoch)
	}
}

// NodeDown reports whether id has been failed.
func (ic *Interconnect) NodeDown(id core.NodeID) bool {
	return int(id) < ic.n && ic.down[id].Load()
}

// Reachable reports whether src and dst can currently complete
// request/reply traffic: fabric open, both endpoints up, and every link of
// BOTH deterministic routes healthy — an asymmetric cut leaves the pair
// unable to complete any transaction even though one direction still
// carries packets. Software spin loops that wait on destination-side
// progress (messenger credits, staging acknowledgements) use it to bail
// out when the peer falls off the fabric instead of spinning forever.
func (ic *Interconnect) Reachable(src, dst core.NodeID) bool {
	if ic.closed.Load() {
		return false
	}
	if int(src) < 0 || int(src) >= ic.n || int(dst) < 0 || int(dst) >= ic.n {
		return false
	}
	return !ic.down[src].Load() && !ic.down[dst].Load() &&
		ic.routeUp(src, dst) && ic.routeUp(dst, src)
}

// FailLink marks the directed link a→b (and b→a) down. Routes crossing it
// fail with ErrDown; with crossbar topology that isolates exactly the pair.
// Link watchers are notified so RMCs can flush transactions whose replies
// would have crossed the link.
func (ic *Interconnect) FailLink(a, b core.NodeID) {
	ic.mu.Lock()
	ic.linkDown[Link{From: a, To: b}] = true
	ic.linkDown[Link{From: b, To: a}] = true
	// The epoch bump is ordered after the link goes down: a transaction
	// stamped with the new epoch either fails its send against the dead
	// link or was issued after a restore.
	epoch := ic.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, ic.linkWatchers...)
	ic.mu.Unlock()
	for _, w := range ws {
		go w(a, b, epoch)
	}
}

// FailLinkDirected marks only the directed link a→b down, leaving b→a
// healthy — the asymmetric-partition case, where a can no longer push
// traffic toward b but traffic (and blind one-sided effects) still flows
// the other way. Requests crossing the dead direction vanish; so do
// replies, which means a request that LANDS over the healthy direction
// can still complete at the destination while its acknowledgement is
// lost — exactly the partial-effect behaviour a real one-way partition
// produces. Link watchers are notified as for FailLink; RestoreLink
// clears both directions.
func (ic *Interconnect) FailLinkDirected(a, b core.NodeID) {
	ic.mu.Lock()
	ic.linkDown[Link{From: a, To: b}] = true
	epoch := ic.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, ic.linkWatchers...)
	ic.mu.Unlock()
	for _, w := range ws {
		go w(a, b, epoch)
	}
}

// RestoreLink brings a previously failed link back up. Like FailLink it
// bumps the shared link epoch after flipping the state and notifies the
// link-restore watchers with that epoch, so downstream consumers can order
// a racing Fail/Restore pair correctly. Restoring a link that was never
// failed is a no-op.
func (ic *Interconnect) RestoreLink(a, b core.NodeID) {
	ic.mu.Lock()
	if !ic.linkDown[Link{From: a, To: b}] && !ic.linkDown[Link{From: b, To: a}] {
		ic.mu.Unlock()
		return
	}
	delete(ic.linkDown, Link{From: a, To: b})
	delete(ic.linkDown, Link{From: b, To: a})
	epoch := ic.linkEpoch.Add(1)
	ws := append([]func(core.NodeID, core.NodeID, uint64){}, ic.linkRestoreWatchers...)
	ic.mu.Unlock()
	for _, w := range ws {
		go w(a, b, epoch)
	}
}

// Close shuts the fabric down, releasing blocked senders and signalling
// consumers through Done.
func (ic *Interconnect) Close() {
	if ic.closed.Swap(true) {
		return
	}
	close(ic.done)
}
