package fabric

import (
	"bytes"
	"testing"

	"sonuma/internal/core"
	"sonuma/internal/proto"
)

// Fuzz harness for the process-transport frame codec (run with `go test
// -fuzz FuzzFrameDecode ./internal/fabric/`; the committed corpus under
// testdata/fuzz replays as regression seeds in every ordinary `go test`).
// The peer on the other end of a frame is another OS process whose stream
// a SIGKILL can tear mid-write, so the invariants pinned are: decodeFrame
// never panics or reads past the input, torn/truncated/oversized frames
// error, and any batch frame the decoder accepts re-encodes to the exact
// original bytes (a frame that re-encodes differently would desync
// relaying peers).

func fuzzSeedBatch() []byte {
	b := proto.AllocBatch()
	defer proto.FreeBatchPackets(b)
	read := proto.AllocPacket()
	read.Kind, read.Op = proto.KindRequest, core.OpRead
	read.Src, read.Dst, read.Ctx, read.Tid = 1, 3, 7, 42
	read.Offset, read.Aux = 0x1000, core.CacheLineSize
	b.Append(read)
	write := proto.AllocPacket()
	write.Kind, write.Op, write.Flags = proto.KindRequest, core.OpWrite, proto.FlagLast
	write.Src, write.Dst, write.Ctx, write.Tid = 1, 3, 7, 43
	write.Offset, write.LineIdx = 0x1040, 1
	copy(write.AllocPayload(core.CacheLineSize), bytes.Repeat([]byte{0xC7}, core.CacheLineSize))
	b.Append(write)
	frame, _ := appendBatchFrame(nil, b)
	return frame
}

func FuzzFrameDecode(f *testing.F) {
	// Representative seeds: a two-packet batch, a reply batch, a hello,
	// a credit return, a truncated batch, and header-sized garbage.
	f.Add(fuzzSeedBatch())
	rb := proto.AllocBatch()
	rpl := proto.AllocPacket()
	rpl.Kind, rpl.Op = proto.KindReply, core.OpRead
	rpl.Src, rpl.Dst, rpl.Tid = 3, 1, 42
	copy(rpl.AllocPayload(8), []byte("\x01\x02\x03\x04\x05\x06\x07\x08"))
	rb.Append(rpl)
	frame, _ := appendBatchFrame(nil, rb)
	proto.FreeBatchPackets(rb)
	f.Add(frame)
	f.Add(appendHelloFrame(nil, helloFrame{Src: 0, Dst: 2, Lane: proto.KindRequest, Credits: 64}))
	f.Add(appendCreditFrame(nil, 5))
	seed := fuzzSeedBatch()
	f.Add(seed[:len(seed)-7])
	f.Add(bytes.Repeat([]byte{0xFF}, frameHeaderSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, consumed, err := decodeFrame(data)
		if err != nil {
			return // rejected: fine, as long as it never panics
		}
		if consumed > len(data) || consumed != frameHeaderSize+len(payload) {
			t.Fatalf("consumed %d of %d with %d payload bytes", consumed, len(data), len(payload))
		}
		switch typ {
		case frameHello:
			if _, err := parseHelloPayload(payload); err != nil {
				return
			}
		case frameCredit:
			if _, err := parseCreditPayload(payload); err != nil {
				return
			}
		case frameBatch:
			b, err := decodeBatchPayload(payload)
			if err != nil {
				return
			}
			if b.Len() < 1 || b.Len() > proto.MaxBatch {
				t.Fatalf("accepted batch of %d packets", b.Len())
			}
			// An accepted batch must re-encode to the original frame
			// bytes exactly.
			out, err := appendBatchFrame(nil, b)
			proto.FreeBatchPackets(b)
			if err != nil {
				t.Fatalf("re-encode of accepted batch failed: %v", err)
			}
			if !bytes.Equal(out, data[:consumed]) {
				t.Fatal("re-encoded frame differs from accepted input")
			}
		default:
			t.Fatalf("decodeFrame returned unknown type %d", typ)
		}
	})
}
