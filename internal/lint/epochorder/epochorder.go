// Package epochorder flags raw relational operators on epoch, term, and
// incarnation words. Configuration terms pack generation<<6|owner and
// every term owns a disjoint epoch band, so ordering them correctly
// takes the canonical helpers (cfgNewer, termEpochFloor, nextTerm) —
// a bare `<` on two such words compares owner bits as magnitude and has
// produced real split-brain arbitration bugs. Equality tests and
// comparisons against constants (zero checks, bounds) stay legal; the
// analyzer also stays out of the ordering helpers themselves, recognized
// by name (newer/older/less/floor/cmp/compare/order).
package epochorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"sonuma/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "epochorder",
	Doc:  "flag raw </> on packed term/epoch/incarnation words; order through the canonical helpers",
	Run:  run,
}

var (
	epochName  = regexp.MustCompile(`(?i)(term|epoch|incarn)`)
	notEpoch   = regexp.MustCompile(`(?i)(terminal|termin|determ|pattern|intermediate)`)
	helperName = regexp.MustCompile(`(?i)(newer|older|less|greater|floor|cmp|compare|order|clamp)`)
)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		checkDecls(pass, f)
	}
	return nil, nil
}

func checkDecls(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if helperName.MatchString(fn.Name.Name) {
			continue // the canonical ordering helper itself
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ:
			default:
				return true
			}
			if constOperand(pass, be.X) || constOperand(pass, be.Y) {
				return true // bounds and zero checks are fine
			}
			if epochWord(pass, be.X) && epochWord(pass, be.Y) {
				pass.Reportf(be.OpPos, "raw %s on epoch/term words %s and %s: packed (term, epoch) words order through the canonical helpers (cfgNewer / termEpochFloor / nextTerm), never relational operators", be.Op, types.ExprString(be.X), types.ExprString(be.Y))
			}
			return true
		})
	}
}

func constOperand(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// epochWord reports whether e names an epoch/term/incarnation-typed
// integer: an identifier, field selection, or call whose terminal name
// matches the epoch vocabulary.
func epochWord(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	// Unwrap conversions like uint64(term).
	if call, ok := e.(*ast.CallExpr); ok {
		if _, isConv := pass.TypesInfo.Types[call.Fun]; isConv && len(call.Args) == 1 {
			if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				return epochWord(pass, call.Args[0])
			}
		}
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		switch fn := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			name = fn.Sel.Name
		}
	default:
		return false
	}
	if !epochName.MatchString(name) || notEpoch.MatchString(name) {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}
