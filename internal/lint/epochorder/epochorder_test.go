package epochorder_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/epochorder"
)

func TestEpochorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochorder.Analyzer, "a")
}
