// Fixture for the epochorder analyzer: raw relational operators on
// packed term/epoch words must go through the canonical helpers.
package a

type node struct {
	cfgTerm  uint64
	cfgEpoch uint64
}

// The canonical helper itself is exempt by name: the packing invariant
// that makes the raw compare correct is stated once, in it.
func termNewer(term, thanTerm uint64) bool { return term > thanTerm }

const epochFloor = 1 << 32

func bad(s *node, term, epoch uint64) bool {
	if term > s.cfgTerm { // want `raw > on epoch/term words`
		return true
	}
	return epoch <= s.cfgEpoch // want `raw <= on epoch/term words`
}

func badIncarnation(incarnation, peerIncarnation uint64) bool {
	return incarnation < peerIncarnation // want `raw < on epoch/term words`
}

func good(s *node, term, epoch uint64) bool {
	if term == s.cfgTerm { // equality is always safe
		return false
	}
	if epoch > epochFloor { // constant bound checks are fine
		return false
	}
	return termNewer(term, s.cfgTerm)
}

// Vocabulary near-misses are not epoch words.
func goodNames(terminalCount, patternIdx uint64) bool {
	return terminalCount > patternIdx
}
