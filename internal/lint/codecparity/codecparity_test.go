package codecparity_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/codecparity"
)

func TestCodecParity(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), codecparity.Analyzer, "wire", "rdr")
}
