// Package codecparity checks that hand-rolled binary codecs agree with
// themselves: every byte range an encoder writes, the matching decoder
// reads, and vice versa — the classic drift bug where a field is added
// to Marshal but not Unmarshal (or the wire width changes on one side
// only) ships silently corrupted frames.
//
// Extents are recovered syntactically: binary.LittleEndian.PutUintN /
// UintN calls at constant slice offsets, plus constant-index byte
// stores/loads in functions that also use the binary package. Encoders
// and decoders pair up by name stem (Marshal/Unmarshal, encodeCtl/
// parseCtl, ...) within a package, and the comparison is on byte
// coverage, so a codec with kind-dependent tails (a switch writing
// either 4 or 8 extra bytes) compares as the union of its branches.
//
// Two refinements keep real codecs quiet: an encoder extent whose
// written value is constant zero is reserved padding and need not be
// read back, and a function with both read and write extents (an
// in-place transformer) does not participate.
//
// Cross-package: an encoder method exports its profile as a fact on its
// receiver type; a decoder in another package whose signature mentions
// that type is checked against the imported profile. Package constants
// naming a maximum ("...MaxLen", "MaxControlFrame") must be at least
// the largest encoded extent.
package codecparity

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

// CodecFact is the byte-coverage profile of a type's encoder, exported
// on the receiver type so importing packages can check their decoders.
type CodecFact struct {
	Bytes     []int // every byte offset the encoder writes
	ZeroBytes []int // subset written as constant zero (reserved)
}

// AFact brands CodecFact for the facts layer.
func (*CodecFact) AFact() {}

// Analyzer is the codecparity pass.
var Analyzer = &analysis.Analyzer{
	Name:      "codecparity",
	Doc:       "checks Marshal/Unmarshal byte-extent symmetry and size-constant agreement",
	Run:       run,
	FactTypes: []analysis.Fact{(*CodecFact)(nil)},
}

var putWidths = map[string]int{"PutUint16": 2, "PutUint32": 4, "PutUint64": 8}
var getWidths = map[string]int{"Uint16": 2, "Uint32": 4, "Uint64": 8}

type extent struct {
	off, width int
	zero       bool // encoder-side: the written value is constant 0
}

type profile struct {
	name     string
	stem     string
	role     int // roleEnc or roleDec
	decl     *ast.FuncDecl
	extents  []extent
	usedBin  bool
	recvType *types.TypeName // named receiver, if a method
	sigTypes []*types.TypeName
}

const (
	roleNone = iota
	roleEnc
	roleDec
)

// roleAndStem classifies a function name. Decoder keywords are checked
// first so "unmarshal" does not read as "marshal".
func roleAndStem(name string) (int, string) {
	low := strings.ToLower(name)
	for _, kw := range []string{"unmarshal", "decode", "parse"} {
		if strings.Contains(low, kw) {
			return roleDec, stem(low, kw)
		}
	}
	for _, kw := range []string{"marshal", "encode"} {
		if strings.Contains(low, kw) {
			return roleEnc, stem(low, kw)
		}
	}
	return roleNone, ""
}

func stem(low, kw string) string {
	s := strings.Replace(low, kw, "", 1)
	for _, suffix := range []string{"into", "from", "to"} {
		s = strings.TrimSuffix(s, suffix)
		s = strings.TrimPrefix(s, suffix)
	}
	return s
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// sliceBase returns the constant low bound of b[k:] (0 when absent), or
// ok=false for non-constant slicing.
func sliceBase(info *types.Info, arg ast.Expr) (int, bool) {
	arg = ast.Unparen(arg)
	sl, ok := arg.(*ast.SliceExpr)
	if !ok {
		// A bare slice identifier is offset 0.
		if tv, okt := info.Types[arg]; okt && isByteSlice(tv.Type) {
			return 0, true
		}
		return 0, false
	}
	if sl.Low == nil {
		return 0, true
	}
	if c, ok := lintutil.IntConst(info, sl.Low); ok && c >= 0 {
		return int(c), true
	}
	return 0, false
}

// extract walks one function body and collects its encoder (write) and
// decoder (read) extents.
func extract(info *types.Info, body *ast.BlockStmt) (writes, reads []extent, usedBin bool) {
	// Index expressions that are assignment targets are write extents;
	// mark them so the rvalue walk below does not also count them as
	// reads.
	lhsIndex := map[*ast.IndexExpr]bool{}
	lintutil.InspectShallow(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					lhsIndex[idx] = true
				}
			}
		}
		return true
	})
	lintutil.InspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			name := lintutil.CalleeName(x)
			if w, ok := putWidths[name]; ok && len(x.Args) == 2 {
				usedBin = true
				if off, ok := sliceBase(info, x.Args[0]); ok {
					zero := false
					if c, okc := lintutil.IntConst(info, x.Args[1]); okc && c == 0 {
						zero = true
					}
					writes = append(writes, extent{off, w, zero})
				}
			} else if w, ok := getWidths[name]; ok && len(x.Args) == 1 {
				usedBin = true
				if off, ok := sliceBase(info, x.Args[0]); ok {
					reads = append(reads, extent{off, w, false})
				}
			}
		case *ast.AssignStmt:
			// buf[k] = v is a 1-byte write extent.
			for i, lhs := range x.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, okt := info.Types[idx.X]
				if !okt || !isByteSlice(tv.Type) {
					continue
				}
				c, okc := lintutil.IntConst(info, idx.Index)
				if !okc || c < 0 {
					continue
				}
				zero := false
				if i < len(x.Rhs) {
					if v, okv := lintutil.IntConst(info, x.Rhs[i]); okv && v == 0 {
						zero = true
					}
				}
				writes = append(writes, extent{int(c), 1, zero})
			}
		case *ast.IndexExpr:
			// data[k] as an rvalue is a 1-byte read extent (assignment
			// targets were classified as writes above).
			if lhsIndex[x] {
				return true
			}
			tv, okt := info.Types[x.X]
			if !okt || !isByteSlice(tv.Type) {
				return true
			}
			if c, okc := lintutil.IntConst(info, x.Index); okc && c >= 0 {
				reads = append(reads, extent{int(c), 1, false})
			}
		}
		return true
	})
	return writes, reads, usedBin
}

func coverage(exts []extent, zeroOnly bool) map[int]bool {
	m := map[int]bool{}
	for _, e := range exts {
		if zeroOnly && !e.zero {
			continue
		}
		for i := 0; i < e.width; i++ {
			m[e.off+i] = true
		}
	}
	return m
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ranges formats a byte set as compact [a,b) spans for diagnostics.
func ranges(keys []int) string {
	if len(keys) == 0 {
		return "none"
	}
	var parts []string
	start, prev := keys[0], keys[0]
	flush := func() { parts = append(parts, fmt.Sprintf("[%d,%d)", start, prev+1)) }
	for _, k := range keys[1:] {
		if k != prev+1 {
			flush()
			start = k
		}
		prev = k
	}
	flush()
	return strings.Join(parts, " ")
}

func namedRecv(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// signatureTypes lists the named types mentioned in a function's params
// and results (pointers deref'd) — used to match a decoder to an
// imported encoder's receiver type.
func signatureTypes(info *types.Info, fd *ast.FuncDecl) []*types.TypeName {
	obj, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	var out []*types.TypeName
	collect := func(tu *types.Tuple) {
		for i := 0; i < tu.Len(); i++ {
			t := tu.At(i).Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				out = append(out, named.Obj())
			}
		}
	}
	collect(sig.Params())
	collect(sig.Results())
	if sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			out = append(out, named.Obj())
		}
	}
	return out
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	var profiles []*profile
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			role, st := roleAndStem(fd.Name.Name)
			if role == roleNone {
				continue
			}
			writes, reads, usedBin := extract(info, fd.Body)
			if !usedBin {
				continue
			}
			p := &profile{name: fd.Name.Name, stem: st, role: role, decl: fd, usedBin: usedBin,
				recvType: namedRecv(info, fd), sigTypes: signatureTypes(info, fd)}
			switch {
			case len(writes) > 0 && len(reads) > 0:
				continue // in-place transformer: ambiguous, skip
			case role == roleEnc && len(writes) > 0:
				p.extents = writes
			case role == roleDec && len(reads) > 0:
				p.extents = reads
			default:
				continue // delegating wrapper with no extents of its own
			}
			profiles = append(profiles, p)
		}
	}

	// Pair encoders and decoders by stem and compare byte coverage.
	var maxEncEnd int
	for _, enc := range profiles {
		if enc.role != roleEnc {
			continue
		}
		encCov := coverage(enc.extents, false)
		zeroCov := coverage(enc.extents, true)
		if keys := sortedKeys(encCov); len(keys) > 0 && keys[len(keys)-1]+1 > maxEncEnd {
			maxEncEnd = keys[len(keys)-1] + 1
		}
		// Export the profile on the receiver type for cross-package
		// decoders.
		if enc.recvType != nil {
			pass.ExportObjectFact(enc.recvType, &CodecFact{
				Bytes: sortedKeys(encCov), ZeroBytes: sortedKeys(zeroCov)})
		}
		for _, dec := range profiles {
			if dec.role != roleDec || dec.stem != enc.stem {
				continue
			}
			decCov := coverage(dec.extents, false)
			compareCoverage(pass, enc.name, dec.name, dec.decl.Pos(), enc.decl.Pos(), encCov, zeroCov, decCov)
		}
	}

	// Cross-package: decoders over imported types with codec facts.
	for _, dec := range profiles {
		if dec.role != roleDec {
			continue
		}
		for _, tn := range dec.sigTypes {
			if tn.Pkg() == nil || tn.Pkg() == pass.Pkg {
				continue
			}
			var fact CodecFact
			if !pass.ImportObjectFact(tn, &fact) {
				continue
			}
			encCov := map[int]bool{}
			for _, b := range fact.Bytes {
				encCov[b] = true
			}
			zeroCov := map[int]bool{}
			for _, b := range fact.ZeroBytes {
				zeroCov[b] = true
			}
			decCov := coverage(dec.extents, false)
			compareCoverage(pass, tn.Pkg().Name()+"."+tn.Name()+"'s encoder", dec.name,
				dec.decl.Pos(), dec.decl.Pos(), encCov, zeroCov, decCov)
		}
	}

	// Size constants claiming to bound the frame must cover the largest
	// encoded extent.
	if maxEncEnd > 0 {
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			low := strings.ToLower(name)
			if !strings.Contains(low, "max") ||
				(!strings.Contains(low, "len") && !strings.Contains(low, "size") && !strings.Contains(low, "frame")) {
				continue
			}
			v := c.Val()
			if v == nil || v.Kind() != constant.Int {
				continue
			}
			if cv, exact := constant.Int64Val(v); exact && cv < int64(maxEncEnd) {
				pass.Reportf(c.Pos(), "size constant %s = %d is smaller than the %d bytes the package's encoders write", name, cv, maxEncEnd)
			}
		}
	}
	return nil, nil
}

// compareCoverage reports coverage asymmetry between an encoder and a
// decoder. Extents the encoder writes as constant zero are reserved and
// exempt from the "never reads" direction.
func compareCoverage(pass *analysis.Pass, encName, decName string, decPos, encPos token.Pos, encCov, zeroCov, decCov map[int]bool) {
	var unread, unwritten []int
	for b := range encCov {
		if !decCov[b] && !zeroCov[b] {
			unread = append(unread, b)
		}
	}
	for b := range decCov {
		if !encCov[b] {
			unwritten = append(unwritten, b)
		}
	}
	sort.Ints(unread)
	sort.Ints(unwritten)
	if len(unread) > 0 {
		pass.Reportf(encPos, "codec drift: %s writes bytes %s that %s never reads", encName, ranges(unread), decName)
	}
	if len(unwritten) > 0 {
		pass.Reportf(decPos, "codec drift: %s reads bytes %s that %s never writes", decName, ranges(unwritten), encName)
	}
}
