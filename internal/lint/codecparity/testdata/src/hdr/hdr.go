// Package hdr exports a header type whose encoder profile travels as a
// fact on the type.
package hdr

import "encoding/binary"

type Hdr struct {
	Kind byte
	Seq  uint16
	Body uint32
}

func (h *Hdr) Marshal(b []byte) {
	b[0] = h.Kind
	binary.LittleEndian.PutUint16(b[1:], h.Seq)
	binary.LittleEndian.PutUint32(b[3:], h.Body)
	binary.LittleEndian.PutUint16(b[7:], 0) // reserved
}

func (h *Hdr) Unmarshal(b []byte) {
	h.Kind = b[0]
	h.Seq = binary.LittleEndian.Uint16(b[1:])
	h.Body = binary.LittleEndian.Uint32(b[3:])
}
