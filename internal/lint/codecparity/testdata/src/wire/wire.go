// Package wire holds intra-package codec pairs: one symmetric, one
// drifted in each direction, plus size constants.
package wire

import "encoding/binary"

// MaxFrameSize comfortably bounds every encoder here.
const MaxFrameSize = 64

// maxEvtSize lies: encoders write past it.
const maxEvtSize = 4 // want `size constant maxEvtSize = 4 is smaller`

// Symmetric pair — silent. The (7,2) extent is written as constant zero
// (reserved) and is exempt from read-back.
func encodeHdr(b []byte, kind byte, seq uint16, body uint32) {
	b[0] = kind
	binary.LittleEndian.PutUint16(b[1:], seq)
	binary.LittleEndian.PutUint32(b[3:], body)
	binary.LittleEndian.PutUint16(b[7:], 0)
}

func parseHdr(b []byte) (byte, uint16, uint32) {
	kind := b[0]
	seq := binary.LittleEndian.Uint16(b[1:])
	body := binary.LittleEndian.Uint32(b[3:])
	return kind, seq, body
}

// Decoder reads a wider field than the encoder writes.
func encodeFrame(b []byte, a uint16, v uint32, seq uint16) {
	binary.LittleEndian.PutUint16(b[0:], a)
	binary.LittleEndian.PutUint32(b[2:], v)
	binary.LittleEndian.PutUint16(b[6:], seq)
}

func parseFrame(b []byte) (uint16, uint32, uint64) { // want `parseFrame reads bytes \[8,14\) that encodeFrame never writes`
	a := binary.LittleEndian.Uint16(b[0:])
	v := binary.LittleEndian.Uint32(b[2:])
	seq := binary.LittleEndian.Uint64(b[6:])
	return a, v, seq
}

// Encoder writes a field the decoder forgot.
func encodeEvt(b []byte, id, ts uint32) { // want `encodeEvt writes bytes \[4,8\) that parseEvt never reads`
	binary.LittleEndian.PutUint32(b[0:], id)
	binary.LittleEndian.PutUint32(b[4:], ts)
}

func parseEvt(b []byte) uint32 {
	return binary.LittleEndian.Uint32(b[0:])
}
