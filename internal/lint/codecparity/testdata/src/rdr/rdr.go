// Package rdr decodes hdr.Hdr frames in a foreign package; the check
// runs against the encoder profile imported as a fact on the type.
package rdr

import (
	"encoding/binary"

	"hdr"
)

// ParseHdr skips the Body field the encoder writes.
func ParseHdr(b []byte) hdr.Hdr { // want `writes bytes \[3,7\) that ParseHdr never reads`
	var h hdr.Hdr
	h.Kind = b[0]
	h.Seq = binary.LittleEndian.Uint16(b[1:])
	return h
}

// ParseHdrFull reads everything non-reserved — silent.
func ParseHdrFull(b []byte) hdr.Hdr {
	var h hdr.Hdr
	h.Kind = b[0]
	h.Seq = binary.LittleEndian.Uint16(b[1:])
	h.Body = binary.LittleEndian.Uint32(b[3:])
	return h
}
