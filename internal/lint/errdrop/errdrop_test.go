package errdrop_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errdrop.Analyzer, "euse")
}
