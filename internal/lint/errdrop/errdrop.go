// Package errdrop flags call statements that silently discard an error
// from a callee that can actually produce one. On replication, ack, and
// repair paths a dropped error is a lost durability guarantee — the
// write looked acknowledged but nobody checked that it was.
//
// The analyzer is deliberately narrower than "every ignored error":
//
//   - Only module-internal callees count. A callee qualifies when it is
//     declared in the package under analysis or in a package whose facts
//     are available — i.e. the analyzed dependency closure — so stdlib
//     and vendored calls never fire.
//   - Callees that provably cannot fail (every return statement puts a
//     literal nil in the error slot) are benign; MayErrFact marks the
//     ones that can fail, and absence of the fact on an analyzed
//     package's function means benign, not unknown.
//   - Interface methods declared in the module are conservatively
//     may-error: the static callee is an abstraction over remote I/O.
//   - `defer f()` is exempt (teardown idiom), `_ = f()` is exempt
//     (visible intent), and _test.go files are exempt (tests drop
//     errors in scaffolding legitimately).
//
// `go f()` statements are NOT exempt: an error produced on another
// goroutine is still an error nobody handled.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

// MayErrFact marks an exported function that can return a non-nil
// error. Its absence on an analyzed package's function means the
// function provably returns nil errors only.
type MayErrFact struct{}

// AFact brands MayErrFact for the facts layer.
func (*MayErrFact) AFact() {}

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name:      "errdrop",
	Doc:       "reports discarded errors from module-internal callees that can actually fail",
	Run:       run,
	FactTypes: []analysis.Fact{(*MayErrFact)(nil)},
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// mayError decides whether a declared function can return a non-nil
// error: true unless every return statement fills every error slot with
// a literal nil. Naked returns and pass-through returns are
// conservatively true.
func mayError(info *types.Info, fn *types.Func, body *ast.BlockStmt) bool {
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	var errIdx []int
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			errIdx = append(errIdx, i)
		}
	}
	if len(errIdx) == 0 {
		return false
	}
	may := false
	lintutil.InspectShallow(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || may {
			return !may
		}
		if len(ret.Results) != res.Len() {
			may = true // naked return or f() pass-through: assume fallible
			return false
		}
		for _, i := range errIdx {
			tv, ok := info.Types[ret.Results[i]]
			if !ok || !tv.IsNil() {
				may = true
				return false
			}
		}
		return true
	})
	return may
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, ok = sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Classify every declared function in this view.
	local := map[*types.Func]bool{} // -> may return non-nil error
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !returnsError(fn) {
				continue
			}
			local[fn] = mayError(info, fn, fd.Body)
		}
	}

	// Export may-error marks for exported functions and methods.
	for fn, may := range local {
		if may && fn.Exported() {
			pass.ExportObjectFact(fn, &MayErrFact{})
		}
	}

	// calleeMayError resolves a callee's fallibility across the three
	// sources: interface conservatism, local classification, dep facts.
	calleeMayError := func(fn *types.Func) bool {
		if fn == nil || !returnsError(fn) {
			return false
		}
		pkg := fn.Pkg()
		if pkg == nil {
			return false
		}
		internal := pkg == pass.Pkg || (pass.Pkg != nil && pkg.Path() == pass.Pkg.Path())
		analyzed := internal
		if !analyzed {
			for _, p := range pass.FactPackages() {
				if p == pkg.Path() {
					analyzed = true
					break
				}
			}
		}
		if !analyzed {
			return false // external: out of the discipline's scope
		}
		if isInterfaceMethod(fn) {
			return true
		}
		if internal {
			if may, ok := local[fn]; ok {
				return may
			}
			// Declared in the other half of a split view (or bodyless
			// assembly stub): conservative.
			return true
		}
		var fact MayErrFact
		return pass.ImportObjectFact(fn, &fact)
	}

	report := func(call *ast.CallExpr) {
		fn := calleeFunc(info, call)
		if !calleeMayError(fn) {
			return
		}
		pass.Reportf(call.Pos(), "discarded error: %s can return a non-nil error; check it or assign to _ to record intent", fn.Name())
	}

	for _, f := range pass.Files {
		posn := pass.Fset.Position(f.Pos())
		if strings.HasSuffix(posn.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					report(call)
				}
			case *ast.GoStmt:
				report(x.Call)
			case *ast.DeferStmt:
				return false // teardown idiom: defer'd errors are exempt
			}
			return true
		})
	}
	return nil, nil
}
