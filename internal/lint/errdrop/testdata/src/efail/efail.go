// Package efail exports fallible and infallible functions; the
// distinction crosses the import edge as MayErrFact.
package efail

import "errors"

var ErrNope = errors.New("nope")

// MayFail really can fail.
func MayFail() error { return ErrNope }

// NeverFails has an error result for interface shape only.
func NeverFails() error { return nil }

// Replicator is a module-internal abstraction over remote I/O; its
// methods are conservatively fallible.
type Replicator interface {
	Push(b []byte) error
}

type Worker struct{ n int }

func (w *Worker) Run() error {
	if w.n < 0 {
		return ErrNope
	}
	return nil
}

func (w *Worker) Bump() error {
	w.n++
	return nil
}
