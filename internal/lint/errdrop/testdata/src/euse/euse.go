// Package euse drops errors from imported callees; only the ones that
// can actually fail are findings.
package euse

import "efail"

func localMayFail() error { return efail.ErrNope }

func localNeverFails() error { return nil }

func drive(w *efail.Worker, r efail.Replicator, b []byte) {
	efail.MayFail()    // want `discarded error: MayFail can return a non-nil error`
	efail.NeverFails() // benign: provably nil
	w.Run()            // want `discarded error: Run can return a non-nil error`
	w.Bump()           // benign: provably nil
	r.Push(b)          // want `discarded error: Push can return a non-nil error`

	go efail.MayFail() // want `discarded error: MayFail can return a non-nil error`

	localMayFail() // want `discarded error: localMayFail can return a non-nil error`
	localNeverFails()

	// Visible intent and teardown idioms stay silent.
	_ = efail.MayFail()
	defer efail.MayFail()
}
