// Package lockd has a purely intra-package inversion between two fields
// of the same struct, plus a consistent pair that must stay silent.
package lockd

import "sync"

type D struct {
	a, b sync.Mutex
	n    int
}

func (d *D) AB() {
	d.a.Lock()
	d.b.Lock() // want `closes a lock-order cycle`
	d.n++
	d.b.Unlock()
	d.a.Unlock()
}

func (d *D) BA() {
	d.b.Lock()
	d.a.Lock() // want `closes a lock-order cycle`
	d.n--
	d.a.Unlock()
	d.b.Unlock()
}

// Consistent nests in one order only.
type E struct {
	x, y sync.Mutex
	n    int
}

func (e *E) One() {
	e.x.Lock()
	e.y.Lock()
	e.n++
	e.y.Unlock()
	e.x.Unlock()
}

func (e *E) Two() {
	e.x.Lock()
	defer e.x.Unlock()
	e.y.Lock()
	defer e.y.Unlock()
	e.n--
}
