// Package lockb holds its package mutex across a call into locka,
// contributing the edge lockb.mu -> locka.A.Mu to the global graph.
package lockb

import (
	"locka"
	"sync"
)

var mu sync.Mutex

func HoldB(a *locka.A) {
	mu.Lock()
	locka.WithA(a)
	mu.Unlock()
}
