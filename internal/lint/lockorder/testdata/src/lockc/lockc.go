// Package lockc closes the cross-package cycle: it holds locka.A.Mu
// while calling into lockb, whose exported fact says it takes lockb.mu
// before locka.A.Mu.
package lockc

import (
	"locka"
	"lockb"
)

func Bad(a *locka.A) {
	a.Mu.Lock()
	lockb.HoldB(a) // want `closes a lock-order cycle`
	a.Mu.Unlock()
}

// Good respects the global order by not holding anything across the
// call.
func Good(a *locka.A) {
	lockb.HoldB(a)
	a.Mu.Lock()
	a.N++
	a.Mu.Unlock()
}
