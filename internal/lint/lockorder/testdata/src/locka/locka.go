// Package locka exports a type with a mutex and a helper that acquires
// it; its acquire set travels as a fact.
package locka

import "sync"

type A struct {
	Mu sync.Mutex
	N  int
}

func WithA(a *A) {
	a.Mu.Lock()
	a.N++
	a.Mu.Unlock()
}
