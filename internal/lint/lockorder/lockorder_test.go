package lockorder_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "lockc", "lockd")
}
