// Package lockorder builds a lock-acquisition graph and reports cycles
// in it — the static shadow of deadlock. A lock's identity is its
// declaration site ("pkg.Type.field" for a mutex field, "pkg.var" for a
// package-level mutex, "pkg.Type" for an embedded one), so two goroutines
// locking the same fields of different instances in opposite orders
// still collide on the same graph nodes.
//
// The analysis is inter-procedural two ways. Within a package, function
// summaries (the set of locks a call may acquire, computed to a
// fixpoint) extend the held set through calls. Across packages, exported
// functions carry their acquire sets as object facts and each package
// publishes its graph edges as a package fact; an importing package
// merges every dependency's edges before looking for cycles, so an
// A→B edge in one package and a B→A edge in another is reported at
// the acquisition site the current package contributes.
//
// Self-edges (lock held while acquiring the same identity) are skipped:
// with identity folded per declaration, instance-distinct acquisitions
// (parent/child of the same type) would be indistinguishable from true
// recursion.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

// LocksFact records the lock identities an exported function may
// acquire, directly or transitively.
type LocksFact struct {
	Acquires []string
}

// AFact brands LocksFact for the facts layer.
func (*LocksFact) AFact() {}

// GraphFact is a package's contribution to the global acquisition graph:
// one edge per ordered pair (held, acquired) observed in its bodies.
type GraphFact struct {
	Edges []Edge
}

// Edge is a held→acquired pair.
type Edge struct {
	From, To string
}

// AFact brands GraphFact for the facts layer.
func (*GraphFact) AFact() {}

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "reports cycles in the cross-package lock-acquisition graph",
	Run:       run,
	FactTypes: []analysis.Fact{(*LocksFact)(nil), (*GraphFact)(nil)},
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockIdent names the lock acquired by recv.Lock()/recv.Unlock(), or ""
// when the lock has no stable identity (locals, computed receivers).
func lockIdent(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Embedded mutex: the method resolves through a named type that is
	// not itself sync.Mutex — identity is that type.
	if s, ok := info.Selections[sel]; ok {
		recv := s.Recv()
		if p, okp := recv.(*types.Pointer); okp {
			recv = p.Elem()
		}
		if named, okn := recv.(*types.Named); okn && !isMutexType(named) && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// owner.field.Lock(): identity is the field on its declaring
		// struct type.
		fieldSel, ok := info.Selections[x]
		if !ok {
			return ""
		}
		field, ok := fieldSel.Obj().(*types.Var)
		if !ok || !field.IsField() || field.Pkg() == nil {
			return ""
		}
		recv := fieldSel.Recv()
		if p, okp := recv.(*types.Pointer); okp {
			recv = p.Elem()
		}
		named, okn := recv.(*types.Named)
		if !okn {
			return ""
		}
		return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	case *ast.Ident:
		obj := info.Uses[x]
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

type edgeAt struct {
	from, to string
	pos      token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo

	// Collect declared functions so intra-package calls resolve to
	// summaries.
	type fnInfo struct {
		decl     *ast.FuncDecl
		acquires map[string]bool
	}
	fns := map[*types.Func]*fnInfo{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					fns[obj] = &fnInfo{decl: fd, acquires: map[string]bool{}}
				}
			}
		}
	}

	calleeOf := func(call *ast.CallExpr) *types.Func {
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			f, _ := info.Uses[fn].(*types.Func)
			return f
		case *ast.SelectorExpr:
			f, _ := info.Uses[fn.Sel].(*types.Func)
			return f
		}
		return nil
	}

	// calleeAcquires is the transitive acquire set of a call: a local
	// summary or an imported fact.
	calleeAcquires := func(fn *types.Func) []string {
		if fn == nil {
			return nil
		}
		if fi, ok := fns[fn]; ok {
			out := make([]string, 0, len(fi.acquires))
			for id := range fi.acquires {
				out = append(out, id)
			}
			return out
		}
		var fact LocksFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Acquires
		}
		return nil
	}

	// Fixpoint over local summaries: direct locks, plus callees' sets.
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			lintutil.InspectShallow(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch lintutil.CalleeName(call) {
				case "Lock", "RLock":
					if id := lockIdent(info, call); id != "" && !fi.acquires[id] {
						fi.acquires[id] = true
						changed = true
					}
				default:
					for _, id := range calleeAcquires(calleeOf(call)) {
						if !fi.acquires[id] {
							fi.acquires[id] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	// Walk bodies in syntactic order tracking the held stack; record an
	// edge held→acquired for every acquisition (direct or via a call)
	// under a held lock.
	var edges []edgeAt
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		edges = append(edges, edgeAt{from, to, pos})
	}
	for _, fb := range lintutil.Bodies(pass.Files) {
		var held []string
		lintutil.InspectShallow(fb.Body, func(n ast.Node) bool {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				// defer mu.Unlock() releases at return; for a linear
				// walk the lock stays held to the end of the body.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch lintutil.CalleeName(call) {
			case "Lock", "RLock":
				if id := lockIdent(info, call); id != "" {
					for _, h := range held {
						addEdge(h, id, call.Pos())
					}
					held = append(held, id)
				}
			case "Unlock", "RUnlock":
				if id := lockIdent(info, call); id != "" {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == id {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
			default:
				if len(held) == 0 {
					return true
				}
				for _, id := range calleeAcquires(calleeOf(call)) {
					for _, h := range held {
						addEdge(h, id, call.Pos())
					}
				}
			}
			return true
		})
	}

	// Export facts: acquire sets for exported functions, edges for the
	// package graph.
	for obj, fi := range fns {
		if !obj.Exported() || len(fi.acquires) == 0 {
			continue
		}
		acq := make([]string, 0, len(fi.acquires))
		for id := range fi.acquires {
			acq = append(acq, id)
		}
		sort.Strings(acq)
		pass.ExportObjectFact(obj, &LocksFact{Acquires: acq})
	}
	if len(edges) > 0 {
		gf := &GraphFact{}
		seen := map[Edge]bool{}
		for _, e := range edges {
			k := Edge{e.from, e.to}
			if !seen[k] {
				seen[k] = true
				gf.Edges = append(gf.Edges, k)
			}
		}
		sort.Slice(gf.Edges, func(i, j int) bool {
			if gf.Edges[i].From != gf.Edges[j].From {
				return gf.Edges[i].From < gf.Edges[j].From
			}
			return gf.Edges[i].To < gf.Edges[j].To
		})
		pass.ExportPackageFact(gf)
	}

	// Merge dependency graphs and look for a cycle through each own edge.
	adj := map[string][]string{}
	addAdj := func(from, to string) {
		for _, t := range adj[from] {
			if t == to {
				return
			}
		}
		adj[from] = append(adj[from], to)
	}
	for _, e := range edges {
		addAdj(e.from, e.to)
	}
	for _, path := range pass.FactPackages() {
		var gf GraphFact
		if pass.ImportPackageFact(path, &gf) {
			for _, e := range gf.Edges {
				addAdj(e.From, e.To)
			}
		}
	}

	reported := map[Edge]bool{}
	for _, e := range edges {
		k := Edge{e.from, e.to}
		if reported[k] {
			continue
		}
		if path := findPath(adj, e.to, e.from); path != nil {
			reported[k] = true
			pass.Reportf(e.pos, "acquiring %s while holding %s closes a lock-order cycle: %s",
				e.to, e.from, strings.Join(append([]string{e.from, e.to}, path[1:]...), " -> "))
		}
	}
	return nil, nil
}

// findPath BFSes from src to dst in adj, returning the node path
// [src ... dst], or nil.
func findPath(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if _, ok := prev[m]; ok {
				continue
			}
			prev[m] = n
			if m == dst {
				var path []string
				for at := dst; ; at = prev[at] {
					path = append([]string{at}, path...)
					if at == src {
						return path
					}
				}
			}
			queue = append(queue, m)
		}
	}
	return nil
}
