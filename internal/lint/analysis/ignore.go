package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding that is intentional — a discipline violated on purpose, with
// a compensating mechanism elsewhere — is suppressed in place:
//
//	//lint:ignore <analyzer> <reason>
//
// either as a standalone comment on the line directly above the flagged
// line, or trailing on the flagged line itself. The reason is mandatory:
// a directive without one is itself reported (analyzer "lintdirective"),
// so every suppression in the tree documents why the rule does not
// apply. The analyzer field must name a known analyzer or "all".

// directivePrefix is what a suppression comment starts with after the
// leading slashes.
const directivePrefix = "lint:ignore"

type ignoreKey struct {
	file string
	line int
}

type ignoreSet map[ignoreKey][]string // -> analyzer names ("all" wildcard)

// covers reports whether a diagnostic of analyzer a at posn is suppressed.
// A directive on line N covers lines N (trailing form) and N+1
// (standalone form); covering both keeps the match robust without
// tracking which form was used.
func (s ignoreSet) covers(a string, posn token.Position) bool {
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, name := range s[ignoreKey{posn.Filename, line}] {
			if name == a || name == "all" {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans file comments for //lint:ignore directives.
// Well-formed ones land in the returned set; malformed ones (no analyzer,
// or no reason) are returned as findings so the hygiene gate fails.
func collectDirectives(fset *token.FileSet, files []*ast.File) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      posn,
						File:     posn.Filename,
						Line:     posn.Line,
						Col:      posn.Column,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				set[ignoreKey{posn.Filename, posn.Line}] = append(
					set[ignoreKey{posn.Filename, posn.Line}], fields[0])
			}
		}
	}
	return set, bad
}
