package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding that is intentional — a discipline violated on purpose, with
// a compensating mechanism elsewhere — is suppressed in place:
//
//	//lint:ignore <analyzer> <reason>
//
// either as a standalone comment on the line directly above the flagged
// line, or trailing on the flagged line itself. The reason is mandatory:
// a directive without one is itself reported (analyzer "lintdirective"),
// so every suppression in the tree documents why the rule does not
// apply. The analyzer field must name a known analyzer or "all".

// directivePrefix is what a suppression comment starts with after the
// leading slashes.
const directivePrefix = "lint:ignore"

type ignoreKey struct {
	file string
	line int
}

type ignoreSet map[ignoreKey][]string // -> analyzer names ("all" wildcard)

// covers reports whether a diagnostic of analyzer a at posn is suppressed.
// A directive on line N covers lines N (trailing form) and N+1
// (standalone form); covering both keeps the match robust without
// tracking which form was used.
func (s ignoreSet) covers(a string, posn token.Position) bool {
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, name := range s[ignoreKey{posn.Filename, line}] {
			if name == a || name == "all" {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans file comments for //lint:ignore directives.
// Well-formed ones land in the returned set; malformed ones (no analyzer,
// or no reason) are returned as findings so the hygiene gate fails. When
// known is non-empty, a directive naming an analyzer outside it is also a
// finding: an ignore aimed at a misspelled or since-deleted analyzer
// suppresses nothing and would otherwise rot invisibly.
func collectDirectives(fset *token.FileSet, files []*ast.File, known []string) (ignoreSet, []Finding) {
	knownSet := map[string]bool{}
	for _, name := range known {
		knownSet[name] = true
	}
	set := ignoreSet{}
	var bad []Finding
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				badf := func(format string, args ...any) {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      posn,
						File:     posn.Filename,
						Line:     posn.Line,
						Col:      posn.Column,
						Message:  fmt.Sprintf(format, args...),
					})
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					badf("malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\" with a non-empty reason")
					continue
				}
				if len(knownSet) > 0 && fields[0] != "all" && !knownSet[fields[0]] {
					badf("//lint:ignore names unknown analyzer %q (known: %s, or \"all\"): the directive suppresses nothing", fields[0], strings.Join(known, ", "))
					continue
				}
				set[ignoreKey{posn.Filename, posn.Line}] = append(
					set[ignoreKey{posn.Filename, posn.Line}], fields[0])
			}
		}
	}
	return set, bad
}
