package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/spinloop"
)

// TestIgnoreDirectives proves the three directive behaviors on a fixture:
// reasoned directives (standalone and trailing forms) suppress, and a
// reason-less directive both fails hygiene and does NOT suppress.
func TestIgnoreDirectives(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadAdHocDir(dir, "ignore")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{spinloop.Analyzer})
	if err != nil {
		t.Fatalf("running spinloop: %v", err)
	}

	var malformed, unsuppressed int
	for _, f := range findings {
		switch f.Analyzer {
		case "lintdirective":
			if !strings.Contains(f.Message, "malformed //lint:ignore") {
				t.Errorf("unexpected lintdirective message: %s", f.Message)
			}
			malformed++
		case "spinloop":
			unsuppressed++
		default:
			t.Errorf("unexpected finding: %+v", f)
		}
	}
	if malformed != 1 {
		t.Errorf("malformed-directive findings = %d, want 1 (the reason-less directive)", malformed)
	}
	if unsuppressed != 1 {
		t.Errorf("spinloop findings = %d, want 1 (only reasonless's loop; reasoned directives must suppress)", unsuppressed)
	}
}
