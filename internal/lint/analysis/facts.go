package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"sort"
)

// Facts are the modular half of the framework: what one package's
// analysis proved about its exported objects, serialized so a LATER
// analysis of an importing package can consume it without re-analyzing
// the dependency. This mirrors golang.org/x/tools/go/analysis facts, cut
// down to what sonuma-lint needs:
//
//   - An object fact attaches to one exported package-level object
//     (function, method, type, const, var) and is addressed by a stable
//     textual path ("F", "T.M") instead of x/tools' objectpath — the
//     repo's analyzers only ever need package-level objects and methods.
//   - A package fact attaches to the package as a whole (lockorder's
//     acquisition-graph edges, codecparity's encoder profiles).
//
// Facts gob-encode into one blob per package. Both drivers move the same
// blobs: the standalone loader keeps them in memory keyed by import path
// while it walks packages in dependency order, and the unitchecker
// reads/writes them as the .vetx files the go command passes in the unit
// .cfg (PackageVetx / VetxOutput) — so `go vet -vettool` gets cache
// invalidation for free from the buildID in the -V=full reply.
//
// Each analyzer uses at most one concrete fact type per object and one
// per package; records are keyed (analyzer, object path), and Import
// decodes into the caller-supplied pointer, so no type registry is
// needed.

// Fact is a marker interface for analyzer fact types. Implementations
// must be gob-encodable structs; the AFact method only brands the type.
type Fact interface{ AFact() }

// FactRecord is one serialized fact. Object is the in-package object
// path ("F" or "T.M"), or "" for a package fact.
type FactRecord struct {
	Analyzer string
	Object   string
	Data     []byte
}

// PackageFacts is every fact one package exported.
type PackageFacts struct {
	Path    string
	Records []FactRecord
}

func (pf *PackageFacts) set(analyzer, object string, data []byte) {
	for i := range pf.Records {
		if pf.Records[i].Analyzer == analyzer && pf.Records[i].Object == object {
			pf.Records[i].Data = data
			return
		}
	}
	pf.Records = append(pf.Records, FactRecord{Analyzer: analyzer, Object: object, Data: data})
}

func (pf *PackageFacts) get(analyzer, object string) ([]byte, bool) {
	if pf == nil {
		return nil, false
	}
	for i := range pf.Records {
		if pf.Records[i].Analyzer == analyzer && pf.Records[i].Object == object {
			return pf.Records[i].Data, true
		}
	}
	return nil, false
}

// EncodeFacts serializes a package's facts. The empty fact set encodes
// to a valid (small) blob, so "no facts" and "never analyzed" stay
// distinguishable from a truncated file.
func EncodeFacts(pf *PackageFacts) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(pf); err != nil {
		return nil, fmt.Errorf("lint: encoding facts for %s: %w", pf.Path, err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts parses a facts blob. Empty input (PR 8's unitchecker wrote
// zero-byte .vetx files) decodes as an empty fact set rather than an
// error, so a stale cache entry degrades to "no facts" instead of
// failing the run.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	pf := &PackageFacts{}
	if len(data) == 0 {
		return pf, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(pf); err != nil {
		return nil, fmt.Errorf("lint: decoding facts: %w", err)
	}
	return pf, nil
}

// FactStore holds the facts of every already-analyzed package, keyed by
// import path. One store lives for a whole driver invocation; packages
// are analyzed in dependency order so a pass only ever looks up
// packages whose analysis completed.
type FactStore struct {
	pkgs map[string]*PackageFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: map[string]*PackageFacts{}}
}

// Add records a package's facts (nil is ignored).
func (s *FactStore) Add(pf *PackageFacts) {
	if pf != nil {
		s.pkgs[pf.Path] = pf
	}
}

// Has reports whether facts for path are present.
func (s *FactStore) Has(path string) bool {
	_, ok := s.pkgs[path]
	return ok
}

// Paths lists the packages with stored facts, sorted.
func (s *FactStore) Paths() []string {
	out := make([]string, 0, len(s.pkgs))
	for p := range s.pkgs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// objectFactPath names an object a fact can attach to: "F" for a
// package-level object, "T.M" for a method. Anything else (locals,
// struct fields, interface-embedded names) is not addressable.
func objectFactPath(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// resolveFactObject finds the (package path, object path) address of obj,
// or ok=false when the object cannot carry facts.
func resolveFactObject(obj types.Object) (pkgPath, objPath string, ok bool) {
	objPath, ok = objectFactPath(obj)
	if !ok {
		return "", "", false
	}
	return obj.Pkg().Path(), objPath, true
}

func gobEncodeFact(fact Fact) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecodeFact(data []byte, fact Fact) bool {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(fact) == nil
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis and be addressable (package-level or a method).
// Unaddressable objects are silently skipped — a fact on a local can
// never be observed across a package boundary anyway.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.exports == nil || obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		return
	}
	objPath, ok := objectFactPath(obj)
	if !ok {
		return
	}
	data, err := gobEncodeFact(fact)
	if err != nil {
		return
	}
	p.exports.set(p.Analyzer.Name, objPath, data)
}

// ImportObjectFact decodes the fact this analyzer exported for obj into
// fact (a pointer to the analyzer's concrete fact type) and reports
// whether one was found. Facts exported earlier in the same pass resolve
// too, so intra-package and cross-package lookups read the same way.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	pkgPath, objPath, ok := resolveFactObject(obj)
	if !ok {
		return false
	}
	var src *PackageFacts
	if p.Pkg != nil && pkgPath == p.Pkg.Path() {
		src = p.exports
	} else if p.facts != nil {
		src = p.facts.pkgs[pkgPath]
	}
	data, ok := src.get(p.Analyzer.Name, objPath)
	if !ok {
		return false
	}
	return gobDecodeFact(data, fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.exports == nil {
		return
	}
	data, err := gobEncodeFact(fact)
	if err != nil {
		return
	}
	p.exports.set(p.Analyzer.Name, "", data)
}

// ImportPackageFact decodes the package fact this analyzer exported for
// the package at path (the current package included) into fact and
// reports whether one was found.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	var src *PackageFacts
	if p.Pkg != nil && path == p.Pkg.Path() {
		src = p.exports
	} else if p.facts != nil {
		src = p.facts.pkgs[path]
	}
	data, ok := src.get(p.Analyzer.Name, "")
	if !ok {
		return false
	}
	return gobDecodeFact(data, fact)
}

// FactPackages lists the import paths of every package whose facts are
// visible to this pass (dependency-ordered drivers: everything analyzed
// before this package), sorted. Analyzers that aggregate package facts
// (lockorder's global acquisition graph) iterate this.
func (p *Pass) FactPackages() []string {
	if p.facts == nil {
		return nil
	}
	return p.facts.Paths()
}
