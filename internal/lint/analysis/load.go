package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The loader type-checks the module's packages without help from
// go/packages (x/tools is not a dependency). Resolution is two-tier:
// import paths under the module path map to directories beneath the
// go.mod root and are type-checked from source here; everything else is
// delegated to the standard library's source importer, which resolves
// GOROOT packages. Cgo is disabled so the pure-Go variants of net/os are
// what get type-checked — the repo itself is cgo-free.
//
// Two views exist of every module package: the import view (production
// files only, cached, what other packages see) and the analysis view
// (production + in-package test files, plus the external _test package
// type-checked against the test-augmented package). Analyzers get the
// analysis view; imports always get the production view.

// Package is the analysis view of one directory.
type Package struct {
	Path string // import path ("sonuma/internal/kvs")
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File // production + in-package test files
	Pkg   *types.Package
	Info  *types.Info

	XTestFiles []*ast.File // external (foo_test) test package, if any
	XTestPkg   *types.Package
	XTestInfo  *types.Info
}

// Loader loads and type-checks packages of one module.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	// FixtureRoot, when set, resolves import paths that are neither
	// module-internal nor stdlib against <FixtureRoot>/<path> — the
	// analysistest layout, where testdata/src holds sibling fixture
	// packages importing each other by bare name ("b" imports "a").
	FixtureRoot string

	ctxt    build.Context
	std     types.ImporterFrom
	pkgs    map[string]*types.Package // production-view cache
	infos   map[string]*types.Info    // production-view type info, same key
	pfiles  map[string][]*ast.File    // production-view ASTs (Info is keyed by node identity)
	loading map[string]bool           // cycle detection
}

// NewLoader finds the enclosing module from dir (walking up to go.mod)
// and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}

	// The source importer consults build.Default; force cgo off so
	// GOROOT packages with cgo variants (net, os/user) type-check their
	// pure-Go files. The repo itself has no cgo.
	build.Default.CgoEnabled = false
	ctxt := build.Default

	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modpath,
		ctxt:    ctxt,
		pkgs:    map[string]*types.Package{},
		infos:   map[string]*types.Info{},
		pfiles:  map[string][]*ast.File{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Import implements types.Importer (production view).
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, _, _, err := l.loadProd(path, filepath.Join(l.ModRoot, filepath.FromSlash(rel)), nil)
		return pkg, err
	}
	if l.FixtureRoot != "" {
		fdir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(fdir); err == nil && st.IsDir() {
			pkg, _, _, err := l.loadProd(path, fdir, nil)
			return pkg, err
		}
	}
	return l.std.ImportFrom(path, dir, 0)
}

// loadProd loads (or returns the cached) production view of the package
// at dir: production files only, the view importing packages see. The
// type info and ASTs are cached alongside so LoadDir can hand the same
// view to analyzers when the package has no in-package test files —
// without this every analyzed package that is also imported by a later
// one got type-checked twice per invocation. pre, when non-nil, is the
// caller's already-parsed production file set, used on a cache miss to
// avoid a re-parse (Info is keyed by AST node identity, so the checked
// files are the ones returned).
func (l *Loader) loadProd(path, dir string, pre []*ast.File) (*types.Package, *types.Info, []*ast.File, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, l.infos[path], l.pfiles[path], nil
	}
	if l.loading[path] {
		return nil, nil, nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files := pre
	if files == nil {
		var err error
		files, _, _, err = l.parseDir(dir)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	pkg, info, err := l.check(path, files, l)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[path] = pkg
	l.infos[path] = info
	l.pfiles[path] = files
	return pkg, info, files, nil
}

// LoadDir loads the analysis view of the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path = l.ModPath + "/" + filepath.ToSlash(rel)
	}
	return l.loadAt(abs, path)
}

// LoadAdHocDir loads a directory outside the module (fixture trees) under
// a synthetic import path.
func (l *Loader) LoadAdHocDir(dir, path string) (*Package, error) {
	return l.loadAt(dir, path)
}

func (l *Loader) loadAt(dir, path string) (*Package, error) {
	prod, testIn, testX, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(prod)+len(testIn) == 0 && len(testX) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	p := &Package{Path: path, Dir: dir, Fset: l.Fset}
	switch {
	case len(prod) > 0 && len(testIn) == 0:
		// No in-package test files: the analysis view IS the production
		// view, so share the cached one (and populate the cache for later
		// importers) instead of type-checking the same files again.
		p.Pkg, p.Info, p.Files, err = l.loadProd(path, dir, prod)
		if err != nil {
			return nil, err
		}
	case len(prod)+len(testIn) > 0:
		p.Files = append(append([]*ast.File{}, prod...), testIn...)
		p.Pkg, p.Info, err = l.check(path, p.Files, l)
		if err != nil {
			return nil, err
		}
	}
	if len(testX) > 0 {
		p.XTestFiles = testX
		// The external test package's self-import must be type-identical
		// to the view every OTHER imported package was checked against
		// (an x-test importing both the package-under-test and a package
		// that also imports it would otherwise see two distinct
		// *types.Package for one path), so check against the production
		// view first. Fall back to the test-augmented package for the
		// export_test.go idiom, where the x-test needs test-only helpers.
		p.XTestPkg, p.XTestInfo, err = l.check(path+"_test", testX, l)
		if err != nil {
			imp := &selfImporter{l: l, path: path, pkg: p.Pkg}
			p.XTestPkg, p.XTestInfo, err = l.check(path+"_test", testX, imp)
		}
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// selfImporter resolves the package-under-test to its test-augmented
// incarnation and everything else through the loader.
type selfImporter struct {
	l    *Loader
	path string
	pkg  *types.Package
}

func (s *selfImporter) Import(path string) (*types.Package, error) {
	return s.ImportFrom(path, s.l.ModRoot, 0)
}

func (s *selfImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == s.path && s.pkg != nil {
		return s.pkg, nil
	}
	return s.l.ImportFrom(path, dir, mode)
}

// parseDir parses the directory's buildable Go files into production,
// in-package test, and external test file sets, honoring build tags.
func (l *Loader) parseDir(dir string) (prod, testIn, testX []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		match, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s/%s: %w", dir, name, err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			testX = append(testX, f)
		case strings.HasSuffix(name, "_test.go"):
			testIn = append(testIn, f)
		default:
			prod = append(prod, f)
		}
	}
	return prod, testIn, testX, nil
}

// check type-checks one file set as a package.
func (l *Loader) check(path string, files []*ast.File, imp types.ImporterFrom) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		// Report the first few errors; one missing import cascades.
		n := len(errs)
		if n > 3 {
			errs = errs[:3]
		}
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		return nil, nil, fmt.Errorf("type-checking %s (%d errors): %s", path, n, strings.Join(msgs, "; "))
	}
	return pkg, info, nil
}

// PackageDirs expands command-line patterns into package directories.
// Supported forms: "./..." (or "all") for every package under the module
// root, a directory path with trailing "/..." for a subtree, or a plain
// directory path. Directories named testdata, hidden directories, and
// dirs without buildable Go files are skipped.
func (l *Loader) PackageDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "all" || pat == "./..." || pat == "...":
			dirs, err := l.walkPackages(l.ModRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Clean(strings.TrimSuffix(pat, "/..."))
			dirs, err := l.walkPackages(root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		default:
			add(filepath.Clean(pat))
		}
	}
	sort.Strings(out)
	return out, nil
}

func (l *Loader) walkPackages(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var uniq []string
	for _, d := range dirs {
		if len(uniq) == 0 || uniq[len(uniq)-1] != d {
			uniq = append(uniq, d)
		}
	}
	return uniq, nil
}

// DirImports reports the module-internal package directories the package
// in dir imports from its production files, using a lightweight
// imports-only parse. Test files are excluded on purpose: an external
// test package may import a package that imports the base package (the
// root package's benchmarks do), which is legal for the compiler but
// would put a cycle in the dependency order facts flow along. Ordering
// by production edges keeps the graph acyclic; call sites in test files
// whose callee facts are consequently unavailable degrade to silence,
// never to false findings.
func (l *Loader) DirImports(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		if match, err := l.ctxt.MatchFile(dir, e.Name()); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != l.ModPath && !strings.HasPrefix(path, l.ModPath+"/") {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
			idir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))
			if !seen[idir] {
				seen[idir] = true
				out = append(out, idir)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// SortDeps expands dirs to their module-internal dependency closure and
// returns the whole set in dependency order (imports before importers) —
// the order a facts-producing driver must analyze in, so every package's
// dependencies have exported their facts by the time it runs. Ties break
// lexicographically for stable output.
func (l *Loader) SortDeps(dirs []string) ([]string, error) {
	imports := map[string][]string{}
	var visit func(dir string) error
	visit = func(dir string) error {
		if _, ok := imports[dir]; ok {
			return nil
		}
		deps, err := l.DirImports(dir)
		if err != nil {
			return err
		}
		imports[dir] = deps
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		if err := visit(abs); err != nil {
			return nil, err
		}
	}

	all := make([]string, 0, len(imports))
	for d := range imports {
		all = append(all, d)
	}
	sort.Strings(all)

	var order []string
	state := map[string]int{} // 0 unvisited, 1 in-progress, 2 done
	var dfs func(dir string)
	dfs = func(dir string) {
		if state[dir] != 0 {
			// In-progress means an import cycle; the type checker will
			// report it properly, so just break the recursion here.
			return
		}
		state[dir] = 1
		for _, d := range imports[dir] {
			dfs(d)
		}
		state[dir] = 2
		order = append(order, dir)
	}
	for _, d := range all {
		dfs(d)
	}
	return order, nil
}
