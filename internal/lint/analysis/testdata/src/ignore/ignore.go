// Fixture for the //lint:ignore directive mechanics, exercised with the
// spinloop analyzer (any analyzer would do).
package ignore

import "runtime"

var ready bool

// A reasoned standalone directive on the line above suppresses.
func suppressed() {
	//lint:ignore spinloop fixture: the compensating mechanism would be documented here
	for !ready {
		runtime.Gosched()
	}
}

// The trailing form covers its own line.
func suppressedTrailing() {
	for !ready { //lint:ignore spinloop fixture: trailing form covers this line
		runtime.Gosched()
	}
}

// A reason-less directive does not suppress — and is itself a finding.
func reasonless() {
	//lint:ignore spinloop
	for !ready {
		runtime.Gosched()
	}
}
