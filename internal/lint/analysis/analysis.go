// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics flow back through Pass.Report.
//
// The x/tools module is deliberately not a dependency — the repo builds
// with a bare go.mod — so this package re-implements the three pieces
// sonuma-lint needs: the Analyzer/Pass/Diagnostic vocabulary (this file),
// a module-aware source loader (load.go), and //lint:ignore directive
// handling (ignore.go). The analyzers under internal/lint/* are written
// against this vocabulary and would port to the real framework by
// swapping the import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short lowercase identifier used on the command line,
	// in //lint:ignore directives, and in JSON output.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the check to one package and reports diagnostics via
	// pass.Report. The result value is unused by the driver (kept for
	// x/tools signature compatibility).
	Run func(pass *Pass) (any, error)
	// FactTypes lists zero values of the fact types this analyzer
	// exports (facts.go). Declaring them is documentation and lets
	// drivers know the analyzer is inter-procedural; an analyzer with no
	// FactTypes never sees or produces facts.
	FactTypes []Fact
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	facts   *FactStore    // facts of already-analyzed packages (may be nil)
	exports *PackageFacts // facts this package is exporting (may be nil)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: position translated, analyzer named,
// suppression state decided. The driver and analysistest both consume
// findings rather than raw diagnostics.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunOptions tunes RunPackageFacts.
type RunOptions struct {
	// Known is the full set of valid //lint:ignore analyzer names —
	// usually every registered analyzer, not just the subset being run,
	// so a `-only` invocation does not misreport directives aimed at the
	// others. Empty means "don't validate names".
	Known []string
	// Facts holds the facts of every already-analyzed dependency and is
	// where inter-procedural analyzers resolve imports. May be nil, in
	// which case cross-package lookups find nothing.
	Facts *FactStore
}

// RunPackage applies each analyzer to pkg and returns the findings,
// sorted by position. Diagnostics on lines covered by a valid
// //lint:ignore directive for that analyzer are dropped; malformed
// directives (missing reason) surface as findings of the synthetic
// "lintdirective" analyzer so suppressions can never silently rot.
//
// This facts-less form suits single-package callers; drivers walking a
// dependency graph use RunPackageFacts.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunPackageFacts(pkg, analyzers, nil)
	return findings, err
}

// RunPackageFacts is RunPackage plus the facts flow: analyzers resolve
// imported facts through opts.Facts and the facts they export for this
// package are returned for the driver to store/serialize.
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, opts *RunOptions) ([]Finding, *PackageFacts, error) {
	if opts == nil {
		opts = &RunOptions{}
	}
	ignores, bad := collectDirectives(pkg.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...), opts.Known)
	var out []Finding
	out = append(out, bad...)
	exports := &PackageFacts{Path: pkg.Path}

	runSet := func(files []*ast.File, tpkg *types.Package, info *types.Info) error {
		if len(files) == 0 || tpkg == nil {
			return nil
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     files,
				Pkg:       tpkg,
				TypesInfo: info,
				facts:     opts.Facts,
				exports:   exports,
			}
			pass.Report = func(d Diagnostic) {
				posn := pkg.Fset.Position(d.Pos)
				if ignores.covers(a.Name, posn) {
					return
				}
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      posn,
					File:     posn.Filename,
					Line:     posn.Line,
					Col:      posn.Column,
					Message:  d.Message,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
		return nil
	}

	if err := runSet(pkg.Files, pkg.Pkg, pkg.Info); err != nil {
		return nil, nil, err
	}
	if err := runSet(pkg.XTestFiles, pkg.XTestPkg, pkg.XTestInfo); err != nil {
		return nil, nil, err
	}
	SortFindings(out)
	return out, exports, nil
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sortSlice(fs, func(a, b Finding) bool {
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

func sortSlice[T any](s []T, less func(a, b T) bool) {
	// Insertion sort: finding lists are short and this avoids pulling in
	// sort helpers per call site.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
