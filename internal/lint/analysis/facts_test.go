package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/errdrop"
	"sonuma/internal/lint/spinloop"
)

// TestFactsRoundTrip proves the serialized form is lossless: a package's
// exported facts survive EncodeFacts/DecodeFacts and resolve identically
// from the decoded copy — the property both drivers rely on (the
// standalone driver keeps blobs in memory, the unitchecker round-trips
// them through .vetx files).
func TestFactsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := `package efact

import "errors"

func MayFail() error { return errors.New("x") }

func NeverFails() error { return nil }
`
	if err := os.WriteFile(filepath.Join(dir, "efact.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadAdHocDir(dir, "efact")
	if err != nil {
		t.Fatal(err)
	}
	_, facts, err := analysis.RunPackageFacts(pkg, []*analysis.Analyzer{errdrop.Analyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts.Records) != 1 {
		t.Fatalf("want exactly one fact (MayFail), got %+v", facts.Records)
	}

	blob, err := analysis.EncodeFacts(facts)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := analysis.DecodeFacts(blob)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Path != "efact" || len(decoded.Records) != 1 {
		t.Fatalf("round-trip mangled facts: %+v", decoded)
	}
	r := decoded.Records[0]
	if r.Analyzer != "errdrop" || r.Object != "MayFail" {
		t.Fatalf("round-trip mangled record addressing: %+v", r)
	}

	// Empty input (a stale zero-byte .vetx file) must degrade to an
	// empty fact set, not an error.
	empty, err := analysis.DecodeFacts(nil)
	if err != nil || len(empty.Records) != 0 {
		t.Fatalf("empty blob: facts=%+v err=%v", empty, err)
	}
}

// TestIgnoreUnknownAnalyzer proves the directive hygiene check: an
// ignore naming a nonexistent analyzer is itself a finding when the
// driver supplies the known-name set, and the directive suppresses
// nothing.
func TestIgnoreUnknownAnalyzer(t *testing.T) {
	dir := t.TempDir()
	src := `package ig

import "time"

func spin(ready func() bool) {
	//lint:ignore spinlop polling is fine here
	for !ready() {
	}
	_ = time.Now
}
`
	if err := os.WriteFile(filepath.Join(dir, "ig.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadAdHocDir(dir, "ig")
	if err != nil {
		t.Fatal(err)
	}
	known := []string{spinloop.Analyzer.Name, errdrop.Analyzer.Name}
	findings, _, err := analysis.RunPackageFacts(pkg, []*analysis.Analyzer{spinloop.Analyzer},
		&analysis.RunOptions{Known: known})
	if err != nil {
		t.Fatal(err)
	}
	var sawBadName, sawSpin bool
	for _, f := range findings {
		if f.Analyzer == "lintdirective" && strings.Contains(f.Message, `unknown analyzer "spinlop"`) {
			sawBadName = true
		}
		if f.Analyzer == "spinloop" {
			sawSpin = true
		}
	}
	if !sawBadName {
		t.Errorf("misspelled directive not reported: %+v", findings)
	}
	if !sawSpin {
		t.Errorf("misspelled directive suppressed the spinloop finding it aimed at: %+v", findings)
	}

	// With no known set (single-analyzer callers), names are not
	// validated — back-compat for RunPackage.
	findings, err = analysis.RunPackage(pkg, []*analysis.Analyzer{spinloop.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "lintdirective" {
			t.Errorf("name validation ran without a known set: %v", f)
		}
	}
}
