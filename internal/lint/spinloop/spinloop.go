// Package spinloop flags polling loops that pace themselves only with
// runtime.Gosched (or not at all). On a host with fewer cores than
// runnable daemons a pure-Gosched loop monopolizes its thread — PR 7's
// messenger wait loops starved 8 daemons' heartbeats into mass eviction
// exactly this way. Polling loops must escalate to a real sleep
// (waitYield-style sleep-backoff, time.Sleep, a channel wait, or a
// select) so starved peers eventually run.
//
// A loop is in scope when it has no init/post clause (`for { ... }` or
// `for cond { ... }` — the polling shapes) and its body either calls
// runtime.Gosched or is completely empty. Bounded three-clause retry
// loops are out of scope. Pacing is recognized as any call whose name
// contains sleep/wait/park/yield/backoff, a select statement, or a
// channel operation. Each loop is judged on its own body: nested loops
// (judged separately) and nested function literals (not on this
// goroutine's schedule) are excluded from the scan, so an outer work
// loop is not condemned for a bounded inner retry loop's Gosched.
package spinloop

import (
	"go/ast"
	"regexp"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "spinloop",
	Doc:  "flag polling loops that only Gosched (or busy-spin) without sleep-backoff",
	Run:  run,
}

var pacingName = regexp.MustCompile(`(?i)(sleep|wait|park|yield|backoff)`)

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Init != nil || loop.Post != nil {
				return true
			}
			if verdict(loop) {
				pass.Reportf(loop.For, "polling loop paces only with runtime.Gosched (or busy-spins); escalate to a waitYield-style sleep-backoff so starved peer goroutines and daemons make progress")
			}
			return true
		})
	}
	return nil, nil
}

// verdict reports whether the loop is an unpaced polling loop.
func verdict(loop *ast.ForStmt) bool {
	if len(loop.Body.List) == 0 {
		return true // `for cond { }` busy wait
	}
	gosched, paced := false, false
	lintutil.InspectShallow(loop.Body, func(n ast.Node) bool {
		// Nested loops are their own analysis roots.
		if n != loop.Body {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return false
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := lintutil.CalleeName(n)
			if name == "Gosched" {
				gosched = true
			} else if pacingName.MatchString(name) {
				paced = true
			}
		case *ast.SelectStmt, *ast.SendStmt:
			paced = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				paced = true
			}
		}
		return true
	})
	return gosched && !paced
}
