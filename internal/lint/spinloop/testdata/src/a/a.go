// Fixture for the spinloop analyzer. The bad shapes reproduce the PR 7
// starvation class: messenger wait loops paced only by runtime.Gosched
// monopolized their threads on a small host and starved eight colocated
// daemons' heartbeats into mass eviction.
package a

import (
	"runtime"
	"time"
)

var ready bool

func badGosched() {
	for !ready { // want `polling loop paces only with runtime\.Gosched`
		runtime.Gosched()
	}
}

func badBusy() {
	for !ready { // want `polling loop paces only with runtime\.Gosched`
	}
}

// A bounded three-clause retry loop is out of scope: the bound itself is
// the escalation (the caller decides what happens when it trips).
func goodBounded() {
	for i := 0; i < 4096; i++ {
		runtime.Gosched()
	}
}

// waitPace-style sleep-backoff is the sanctioned fix.
func goodCondWait() {
	for !ready {
		waitPace()
	}
}

func waitPace() { time.Sleep(time.Microsecond) }

// Inline escalation also counts: the loop yields early and sleeps late.
func goodInlineBackoff() {
	spin := 0
	for !ready {
		spin++
		if spin < 256 {
			runtime.Gosched()
		} else {
			time.Sleep(200 * time.Microsecond)
		}
	}
}

func goodChannelWait(ch chan struct{}) {
	for !ready {
		<-ch
	}
}

func goodSelect(ch chan struct{}) {
	for !ready {
		select {
		case <-ch:
		default:
		}
	}
}

// Each loop is judged on its own body: the inner bounded loop's Gosched
// does not condemn the outer work loop.
func goodNested(work chan struct{}) {
	for !ready {
		for i := 0; i < 64; i++ {
			runtime.Gosched()
		}
		<-work
	}
}
