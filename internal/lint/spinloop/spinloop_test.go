package spinloop_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/spinloop"
)

func TestSpinloop(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), spinloop.Analyzer, "a")
}
