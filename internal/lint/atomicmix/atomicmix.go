// Package atomicmix enforces the all-or-nothing rule for sync/atomic: a
// variable or struct field accessed through sync/atomic anywhere must
// never be written with a plain assignment elsewhere — the race detector
// only catches the mix when both sides actually collide, while the rule
// is checkable statically. Constructor-shaped functions (New*/new*/make*)
// are exempt: before the value escapes, plain initialization is the
// idiom.
//
// Two alignment checks ride along, because the one-sided data path's
// atomics are 8-byte words: (1) a struct field used with 64-bit atomics
// must sit at an 8-byte-aligned offset under 32-bit layout rules (gc/386
// sizes), the classic embedded-field trap; (2) a constant offset passed
// to the one-sided FetchAdd/CompareSwap family must itself be 8-byte
// aligned — the emulated RMC rejects unaligned remote atomics at
// runtime, this moves the failure to lint time.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "flag fields mixing sync/atomic and plain access, and misaligned 64-bit atomic words/offsets",
	Run:  run,
}

// one-sided remote atomic staging calls: name -> index of the offset arg.
var remoteAtomicOffsetArg = map[string]int{
	"FetchAdd":         1,
	"CompareSwap":      1,
	"FetchAdd64":       0,
	"IssueFetchAdd":    2,
	"IssueCompareSwap": 2,
}

type atomicUse struct {
	pos     token.Pos
	op      string
	is64bit bool
}

func run(pass *analysis.Pass) (any, error) {
	atomicVars := map[*types.Var]atomicUse{}

	// Pass 1: every address handed to a sync/atomic call marks its
	// variable as atomically-owned.
	forEachCall(pass, func(call *ast.CallExpr, enclosing string) {
		if lintutil.CalleePkgPath(pass.TypesInfo, call) != "sync/atomic" || len(call.Args) == 0 {
			return
		}
		name := lintutil.CalleeName(call)
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return
		}
		if v := varOf(pass, addr.X); v != nil {
			if _, seen := atomicVars[v]; !seen {
				atomicVars[v] = atomicUse{pos: call.Pos(), op: name, is64bit: strings.HasSuffix(name, "64")}
			}
		}
	})

	// Pass 2: plain writes to atomically-owned variables.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if constructorish(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					if st.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range st.Lhs {
						reportPlainWrite(pass, atomicVars, lhs)
					}
				case *ast.IncDecStmt:
					reportPlainWrite(pass, atomicVars, st.X)
				}
				return true
			})
		}
	}

	// Pass 3: 32-bit layout alignment of 64-bit atomic fields.
	checkFieldAlignment(pass, atomicVars)

	// Pass 4: constant offsets to the one-sided remote atomic family.
	forEachCall(pass, func(call *ast.CallExpr, enclosing string) {
		idx, ok := remoteAtomicOffsetArg[lintutil.CalleeName(call)]
		if !ok || len(call.Args) <= idx {
			return
		}
		if off, ok := lintutil.IntConst(pass.TypesInfo, call.Args[idx]); ok && off%8 != 0 {
			pass.Reportf(call.Args[idx].Pos(), "one-sided %s offset %d is not 8-byte aligned: remote atomics act on aligned 8-byte words and the RMC rejects this at runtime", lintutil.CalleeName(call), off)
		}
	})

	return nil, nil
}

func reportPlainWrite(pass *analysis.Pass, atomicVars map[*types.Var]atomicUse, lhs ast.Expr) {
	v := varOf(pass, lhs)
	if v == nil {
		return
	}
	if use, ok := atomicVars[v]; ok {
		pass.Reportf(lhs.Pos(), "plain write to %q, which is accessed with atomic.%s at %s: a word touched by sync/atomic anywhere must be accessed atomically everywhere", v.Name(), use.op, pass.Fset.Position(use.pos))
	}
}

// varOf resolves an lvalue-ish expression to the variable it names:
// a bare identifier, or the field of a selector chain.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		// Package-qualified var (pkg.V).
		if v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return varOf(pass, x.X)
	}
	return nil
}

func constructorish(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || strings.HasPrefix(name, "make")
}

// checkFieldAlignment flags 64-bit-atomic struct fields that land on a
// 4-byte boundary under gc/386 layout.
func checkFieldAlignment(pass *analysis.Pass, atomicVars map[*types.Var]atomicUse) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Defs[ts.Name]
			if !ok || obj == nil {
				return true
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				return true
			}
			var fields []*types.Var
			for i := 0; i < st.NumFields(); i++ {
				fields = append(fields, st.Field(i))
			}
			if len(fields) == 0 {
				return true
			}
			offsets := sizes.Offsetsof(fields)
			for i, fv := range fields {
				use, tracked := atomicVars[fv]
				if !tracked || !use.is64bit {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(fv.Pos(), "field %q is used with atomic.%s but sits at offset %d under 32-bit layout: move 64-bit atomic words to the front of %s (or pad) so they stay 8-byte aligned", fv.Name(), use.op, offsets[i], fmt.Sprintf("%s.%s", pass.Pkg.Name(), ts.Name.Name))
				}
			}
			return true
		})
	}
}

// forEachCall visits every call expression in the pass's files; fn may be
// nil (used to keep pass ordering explicit at the call site).
func forEachCall(pass *analysis.Pass, fn func(call *ast.CallExpr, enclosing string)) {
	if fn == nil {
		return
	}
	for _, f := range pass.Files {
		name := ""
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				name = x.Name.Name
			case *ast.CallExpr:
				fn(x, name)
			}
			return true
		})
	}
}
