// Fixture for the atomicmix analyzer: all-or-nothing sync/atomic access,
// 32-bit layout alignment of 64-bit atomic fields, and 8-byte alignment
// of constant offsets handed to the one-sided remote atomic family.
package a

import "sync/atomic"

type stats struct {
	flag bool
	hits uint64 // want `used with atomic\.AddUint64 but sits at offset 4 under 32-bit layout`
}

type alignedStats struct {
	hits uint64 // 64-bit atomics lead the struct: aligned under 386 too
	flag bool
}

var count uint64

func bump(s *stats, a *alignedStats) {
	atomic.AddUint64(&s.hits, 1)
	atomic.AddUint64(&a.hits, 1)
	atomic.AddUint64(&count, 1)
}

func badPlainWrite(s *stats) {
	s.hits = 0 // want `plain write to "hits"`
	count++    // want `plain write to "count"`
}

func goodAtomic(s *stats) {
	atomic.StoreUint64(&s.hits, 0)
}

// Constructors may plain-initialize before the value escapes.
func newStats() *stats {
	s := &stats{}
	s.hits = 0
	return s
}

// Plain access to never-atomic fields is fine.
func goodPlain(s *stats) {
	s.flag = true
}

type qp struct{}

func (q *qp) FetchAdd(node int, off, delta uint64) (uint64, error) { return 0, nil }

func remote(q *qp) {
	q.FetchAdd(1, 12, 1) // want `one-sided FetchAdd offset 12 is not 8-byte aligned`
	if _, err := q.FetchAdd(1, 16, 1); err != nil {
		return
	}
}
