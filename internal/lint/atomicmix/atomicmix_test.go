package atomicmix_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/atomicmix"
)

func TestAtomicmix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicmix.Analyzer, "a")
}
