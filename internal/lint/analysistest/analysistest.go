// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring (a useful subset
// of) golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live at <testdata>/src/<pkg>/*.go. A line expecting
// diagnostics carries a trailing comment of one or more quoted or
// backquoted regular expressions:
//
//	foo()        // want `use after FreePacket` `second finding`
//	bar()        // want "leaks on this path"
//
// Every reported diagnostic must match exactly one want on its line and
// every want must be matched — extra and missing findings both fail.
// Fixtures must type-check: a broken fixture fails the test rather than
// silently testing nothing.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sonuma/internal/lint/analysis"
)

// Run loads testdata/src/<pkg> for each named fixture package and applies
// the analyzer, comparing findings against // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkg)
		})
	}
}

// TestData returns the absolute testdata directory for the calling test's
// package, i.e. ./testdata resolved.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", pkgname)
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadAdHocDir(dir, pkgname)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgname, err)
	}

	wants := collectWants(t, pkg.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...))

	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, f := range findings {
		if f.Analyzer != a.Name && f.Analyzer != "lintdirective" {
			continue
		}
		key := fmt.Sprintf("%s:%d", f.File, f.Line)
		ws := wants[key]
		hit := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				rest := text[idx+len("want "):]
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment: %q", key, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
