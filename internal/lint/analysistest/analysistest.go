// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring (a useful subset
// of) golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live at <testdata>/src/<pkg>/*.go. A line expecting
// diagnostics carries a trailing comment of one or more quoted or
// backquoted regular expressions:
//
//	foo()        // want `use after FreePacket` `second finding`
//	bar()        // want "leaks on this path"
//
// Every reported diagnostic must match exactly one want on its line and
// every want must be matched — extra and missing findings both fail.
// Fixtures must type-check: a broken fixture fails the test rather than
// silently testing nothing.
//
// Fixture packages may import each other by bare directory name ("b"
// imports "a"), which is how facts-producing analyzers are tested: Run
// analyzes the named package's fixture dependencies first (in dependency
// order, threading facts through a FactStore exactly like the real
// drivers) and honors // want comments in every package of the closure —
// so an expectation in "b" can demand a diagnostic that only exists if
// facts exported while analyzing "a" crossed the import edge.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"sonuma/internal/lint/analysis"
)

// Run loads testdata/src/<pkg> for each named fixture package and applies
// the analyzer, comparing findings against // want comments. Each named
// package's fixture dependencies are analyzed first with facts flowing
// across the import edges.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkg)
		})
	}
}

// TestData returns the absolute testdata directory for the calling test's
// package, i.e. ./testdata resolved.
func TestData() string {
	abs, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return abs
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// Loaders are shared per testdata root for the life of the test process:
// every fixture package of an analyzer's test suite reuses one
// production-view (and stdlib) type-check cache instead of re-checking
// the standard library per fixture.
var (
	loaderMu sync.Mutex
	loaders  = map[string]*analysis.Loader{}
)

func sharedLoader(t *testing.T, testdata string) *analysis.Loader {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if l, ok := loaders[testdata]; ok {
		return l
	}
	l, err := analysis.NewLoader(testdata)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	l.FixtureRoot = filepath.Join(testdata, "src")
	loaders[testdata] = l
	return l
}

// fixtureDeps returns the fixture packages (directories under src) that
// pkgname imports, directly.
func fixtureDeps(src, pkgname string) ([]string, error) {
	dir := filepath.Join(src, pkgname)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if st, err := os.Stat(filepath.Join(src, filepath.FromSlash(path))); err == nil && st.IsDir() && !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// closure returns pkgname's fixture dependency closure in dependency
// order (imports first), pkgname last.
func closure(src, pkgname string) ([]string, error) {
	var order []string
	state := map[string]int{}
	var dfs func(p string) error
	dfs = func(p string) error {
		if state[p] != 0 {
			return nil
		}
		state[p] = 1
		deps, err := fixtureDeps(src, p)
		if err != nil {
			return err
		}
		for _, d := range deps {
			if err := dfs(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	if err := dfs(pkgname); err != nil {
		return nil, err
	}
	return order, nil
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgname string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader := sharedLoader(t, testdata)

	order, err := closure(src, pkgname)
	if err != nil {
		t.Fatalf("resolving fixture imports for %s: %v", pkgname, err)
	}

	store := analysis.NewFactStore()
	for _, name := range order {
		dir := filepath.Join(src, filepath.FromSlash(name))
		pkg, err := loader.LoadAdHocDir(dir, name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}

		wants := collectWants(t, pkg.Fset, append(append([]*ast.File{}, pkg.Files...), pkg.XTestFiles...))

		findings, facts, err := analysis.RunPackageFacts(pkg, []*analysis.Analyzer{a}, &analysis.RunOptions{Facts: store})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, name, err)
		}
		store.Add(facts)

		for _, f := range findings {
			if f.Analyzer != a.Name && f.Analyzer != "lintdirective" {
				continue
			}
			key := fmt.Sprintf("%s:%d", f.File, f.Line)
			ws := wants[key]
			hit := false
			for _, w := range ws {
				if !w.matched && w.re.MatchString(f.Message) {
					w.matched = true
					hit = true
					break
				}
			}
			if !hit {
				t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
			}
		}
		for key, ws := range wants {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
				}
			}
		}
	}
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				posn := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				rest := text[idx+len("want "):]
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment: %q", key, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
