// Package lintutil holds the small AST/type helpers the sonuma-lint
// analyzers share: callee naming, constant folding, and function-body
// iteration that treats function literals as analysis roots of their
// own.
package lintutil

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// CalleeName returns the bare name of a call's callee: the terminal
// identifier of f(...), pkg.F(...), or recv.M(...). Empty for computed
// callees (function values from map lookups etc. still resolve if they
// end in an identifier).
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// CalleePkgPath returns the import path of the package a call selects
// from (atomic.AddUint64 -> "sync/atomic"), or "" when the callee is not
// a package-qualified selector.
func CalleePkgPath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// IntConst constant-folds expr and returns its integer value. Works for
// literals and named constants alike (2*off+4 included).
func IntConst(info *types.Info, expr ast.Expr) (int64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// FuncBody describes one analyzable body: a declared function or a
// function literal.
type FuncBody struct {
	Name string // declared name, or "func literal"
	Body *ast.BlockStmt
}

// Bodies yields every function body in the files — declarations and
// function literals — each exactly once. Analyzers that do path walks
// treat each as an independent root so a closure implementing a full
// discipline is checked like a named function.
func Bodies(files []*ast.File) []FuncBody {
	var out []FuncBody
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, FuncBody{Name: fn.Name.Name, Body: fn.Body})
				}
			case *ast.FuncLit:
				out = append(out, FuncBody{Name: "func literal", Body: fn.Body})
			}
			return true
		})
	}
	return out
}

// InspectShallow walks n but does not descend into nested function
// literals; f's return value controls descent as with ast.Inspect.
func InspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit && m != n {
			return false
		}
		return f(m)
	})
}
