// Fixture for the poollifecycle analyzer, using local stand-ins for the
// proto pool API (the analyzer matches Alloc/Free by name so fixtures
// stay dependency-free).
package a

import "errors"

type Packet struct{ used bool }

type Batch struct{ pkts []*Packet }

func AllocPacket() *Packet { return &Packet{} }
func FreePacket(p *Packet) {}
func AllocBatch() *Batch   { return &Batch{} }
func FreeBatch(b *Batch)   {}

func (b *Batch) add(p *Packet) { b.pkts = append(b.pkts, p) }

var errFail = errors.New("fail")

func useAfterFree() {
	p := AllocPacket()
	FreePacket(p)
	_ = p.used // want `use of "p" after it was released to the pool`
}

func useAfterFreeParam(q *Packet) {
	FreePacket(q)
	q.reset() // want `use of "q" after it was released to the pool`
}

func (p *Packet) reset() {}

func doubleFree(cond bool) {
	p := AllocPacket()
	if cond {
		FreePacket(p)
	}
	FreePacket(p) // want `double FreePacket of "p"`
}

func leakOnError(fail bool) error {
	p := AllocPacket()
	if fail {
		return errFail // want `pooled value "p" leaks on this return path`
	}
	FreePacket(p)
	return nil
}

// --- sanctioned shapes ---

func pairedFree() {
	p := AllocPacket()
	_ = p.used
	FreePacket(p)
}

func deferredFree() error {
	p := AllocPacket()
	defer FreePacket(p)
	if p.used {
		return errFail // deferred free covers every return
	}
	return nil
}

func handOff() {
	p := AllocPacket()
	enqueue(p) // ownership transfers to the callee
}

func enqueue(p *Packet) {}

func returned() *Packet {
	p := AllocPacket()
	return p // ownership transfers to the caller
}

// A nil-guarded free: the branch where p is statically nil owes nothing.
func nilGuard(cond bool) {
	var p *Packet
	if cond {
		p = AllocPacket()
	}
	if p != nil {
		FreePacket(p)
	}
}

// Building tracked values into a composite literal stores them somewhere
// with its own lifetime: ownership moves.
func intoLiteral() {
	read := AllocPacket()
	write := AllocPacket()
	b := AllocBatch()
	for _, p := range []*Packet{read, write} {
		b.add(p)
	}
	FreeBatch(b)
}

// A panic exits without leak obligations — the process is going down.
func panicPath(ok bool) {
	p := AllocPacket()
	if !ok {
		panic("construction failed")
	}
	FreePacket(p)
}
