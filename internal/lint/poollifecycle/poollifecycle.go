// Package poollifecycle tracks pooled packets and batches
// (proto.AllocPacket / AllocBatch) through each function and flags the
// three lifecycle bugs the data path has actually shipped: use after
// FreePacket/FreeBatch (the pool may have re-issued the object), double
// free (corrupts the pool), and a pooled value leaking out of an error
// path that returns before freeing or handing off ownership.
//
// The analysis is intraprocedural and ownership-conservative, matching
// the documented discipline ("whoever pulls a packet out of a lane owns
// it"): passing a tracked value to any call, returning it, storing it
// into a field/slice/map or composite literal, sending it on a channel,
// or capturing it in a function literal transfers ownership and ends
// tracking. Paths are enumerated over if/switch/select branches; loop
// bodies run once (the alloc/free pairing inside a loop iteration is
// what matters); deferred frees apply at every subsequent return. An
// `x == nil` / `x != nil` condition clears x's obligation on the branch
// where it is statically nil. Panics exit without leak obligations (a
// panicking goroutine is tearing the process down, and the pool with
// it); use-after-free still reports on the way there.
package poollifecycle

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "poollifecycle",
	Doc:  "flag use-after-free, double-free, and error-path leaks of pooled packets/batches",
	Run:  run,
}

var allocFuncs = map[string]string{
	"AllocPacket": "packet",
	"AllocBatch":  "batch",
}

var freeFuncs = map[string]bool{
	"FreePacket":       true,
	"FreeBatch":        true,
	"FreeBatchPackets": true,
}

const (
	live = iota + 1
	freed
)

type state struct {
	vars     map[types.Object]int
	deferred map[types.Object]bool
}

func (s state) clone() state {
	ns := state{vars: map[types.Object]int{}, deferred: map[types.Object]bool{}}
	for k, v := range s.vars {
		ns.vars[k] = v
	}
	for k := range s.deferred {
		ns.deferred[k] = true
	}
	return ns
}

func (s state) key() string {
	var parts []string
	for k, v := range s.vars {
		parts = append(parts, fmt.Sprintf("%p=%d", k, v))
	}
	for k := range s.deferred {
		parts = append(parts, fmt.Sprintf("%p=d", k))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// maxStates caps path enumeration per statement; beyond it the walker
// keeps an arbitrary subset (soundness traded for termination on
// pathological functions).
const maxStates = 64

type walker struct {
	pass *analysis.Pass
	// reported dedups diagnostics that would fire once per path.
	reported map[string]bool
}

func run(pass *analysis.Pass) (any, error) {
	w := &walker{pass: pass, reported: map[string]bool{}}
	for _, fb := range lintutil.Bodies(pass.Files) {
		init := state{vars: map[types.Object]int{}, deferred: map[types.Object]bool{}}
		out := w.execBlock(fb.Body, []state{init})
		// Fall off the end of the body: same obligations as a return.
		for _, st := range out {
			w.checkExit(st, fb.Body.Rbrace)
		}
	}
	return nil, nil
}

func (w *walker) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(pos, "%s", msg)
}

func dedup(states []state) []state {
	seen := map[string]bool{}
	var out []state
	for _, st := range states {
		k := st.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, st)
		if len(out) >= maxStates {
			break
		}
	}
	return out
}

func (w *walker) execBlock(b *ast.BlockStmt, in []state) []state {
	states := in
	for _, st := range b.List {
		states = w.execStmt(st, states)
		if len(states) == 0 {
			return nil // all paths terminated
		}
	}
	return dedup(states)
}

func (w *walker) execStmt(stmt ast.Stmt, in []state) []state {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		return w.execBlock(st, in)
	case *ast.LabeledStmt:
		return w.execStmt(st.Stmt, in)
	case *ast.IfStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		in = w.evalExpr(st.Cond, in)
		thenIn, elseIn := cloneAll(in), cloneAll(in)
		if obj, op := nilCheck(w.pass, st.Cond); obj != nil {
			// On the branch where obj is statically nil it holds no
			// pooled value; drop its obligation there.
			cleared := thenIn
			if op == token.NEQ {
				cleared = elseIn
			}
			for _, s := range cleared {
				delete(s.vars, obj)
			}
		}
		thenOut := w.execBlock(st.Body, thenIn)
		var elseOut []state
		if st.Else != nil {
			elseOut = w.execStmt(st.Else, elseIn)
		} else {
			elseOut = elseIn
		}
		return dedup(append(thenOut, elseOut...))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.execBranches(stmt, in)
	case *ast.ForStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		if st.Cond != nil {
			in = w.evalExpr(st.Cond, in)
		}
		out := w.execBlock(st.Body, cloneAll(in))
		if st.Post != nil {
			out = w.execStmt(st.Post, out)
		}
		return dedup(out)
	case *ast.RangeStmt:
		in = w.evalExpr(st.X, in)
		return dedup(w.execBlock(st.Body, cloneAll(in)))
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			in = w.evalExpr(res, in)
			// Returning a tracked value hands ownership to the caller.
			for _, s := range in {
				if obj := objOf(w.pass, res); obj != nil {
					delete(s.vars, obj)
				}
			}
		}
		for _, s := range in {
			w.checkExit(s, st.Return)
		}
		return nil
	case *ast.BranchStmt:
		// break/continue/goto: end this path without exit obligations;
		// the loop-level approximation already covers pairing.
		return nil
	case *ast.DeferStmt:
		return w.execDefer(st, in)
	case *ast.GoStmt:
		return w.evalExpr(st.Call, in)
	case *ast.ExprStmt:
		// A panic ends the path. Unlike a return it carries no leak
		// obligation — the goroutine is tearing the process down.
		if call, ok := st.X.(*ast.CallExpr); ok && lintutil.CalleeName(call) == "panic" {
			w.evalExpr(st.X, in)
			return nil
		}
		return w.evalExpr(st.X, in)
	case *ast.AssignStmt:
		return w.execAssign(st, in)
	case *ast.IncDecStmt:
		return w.evalExpr(st.X, in)
	case *ast.SendStmt:
		in = w.evalExpr(st.Chan, in)
		return w.evalExpr(st.Value, in)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						in = w.evalExpr(v, in)
					}
				}
			}
		}
		return in
	default:
		return in
	}
}

func cloneAll(in []state) []state {
	out := make([]state, len(in))
	for i, s := range in {
		out[i] = s.clone()
	}
	return out
}

func (w *walker) execBranches(stmt ast.Stmt, in []state) []state {
	var bodies []*ast.BlockStmt
	hasDefault := false
	collect := func(body []ast.Stmt, isDefault bool) {
		bodies = append(bodies, &ast.BlockStmt{List: body})
		hasDefault = hasDefault || isDefault
	}
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		if st.Tag != nil {
			in = w.evalExpr(st.Tag, in)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			collect(cc.Body, cc.List == nil)
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			body := cc.Body
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, body...)
			}
			collect(body, cc.Comm == nil)
		}
		hasDefault = true // a select blocks; some case always runs
	}
	var out []state
	for _, b := range bodies {
		out = append(out, w.execBlock(b, cloneAll(in))...)
	}
	if !hasDefault || len(bodies) == 0 {
		out = append(out, in...) // no case taken
	}
	return dedup(out)
}

func (w *walker) execDefer(st *ast.DeferStmt, in []state) []state {
	name := lintutil.CalleeName(st.Call)
	if freeFuncs[name] && len(st.Call.Args) == 1 {
		if obj := objOf(w.pass, st.Call.Args[0]); obj != nil {
			for _, s := range in {
				if s.vars[obj] != 0 {
					s.deferred[obj] = true
				}
			}
			return in
		}
	}
	// Any other defer mentioning tracked values transfers ownership.
	return w.evalExpr(st.Call, in)
}

func (w *walker) execAssign(st *ast.AssignStmt, in []state) []state {
	// RHS first: uses and transfers.
	for i, rhs := range st.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if kind, isAlloc := allocFuncs[lintutil.CalleeName(call)]; isAlloc {
				in = w.evalExpr(call, in) // args of the alloc call
				if i < len(st.Lhs) || len(st.Rhs) == 1 {
					lhs := st.Lhs[min(i, len(st.Lhs)-1)]
					if obj := defOrUseObj(w.pass, lhs); obj != nil {
						for _, s := range in {
							s.vars[obj] = live
						}
						_ = kind
						continue
					}
				}
				continue
			}
		}
		in = w.evalExpr(rhs, in)
	}
	// A reassignment of a tracked variable ends the old tracking.
	for _, lhs := range st.Lhs {
		if obj := defOrUseObj(w.pass, lhs); obj != nil {
			for _, s := range in {
				if _, tracked := s.vars[obj]; tracked {
					// Overwritten before free: the old value's fate is
					// whatever the RHS decided; stop tracking unless the
					// RHS re-allocated into it (handled above).
					if !assignsAlloc(st, lhs) {
						delete(s.vars, obj)
					}
				}
			}
		} else {
			// Storing into a field/slice/map: if the RHS was a tracked
			// value it escaped; evalExpr on RHS already untracked calls,
			// handle direct stores of tracked idents.
			for _, rhs := range st.Rhs {
				w.untrackIfTracked(rhs, in)
			}
		}
	}
	return in
}

func assignsAlloc(st *ast.AssignStmt, lhs ast.Expr) bool {
	for i, l := range st.Lhs {
		if l == lhs && i < len(st.Rhs) {
			if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok {
				if _, isAlloc := allocFuncs[lintutil.CalleeName(call)]; isAlloc {
					return true
				}
			}
		}
	}
	return false
}

func (w *walker) untrackIfTracked(e ast.Expr, in []state) {
	if obj := objOf(w.pass, e); obj != nil {
		for _, s := range in {
			delete(s.vars, obj)
		}
	}
}

// evalExpr processes uses, frees, and ownership transfers inside one
// expression, in source order, without descending into function literal
// bodies (those only observe captures, which untrack the variable).
func (w *walker) evalExpr(e ast.Expr, in []state) []state {
	if e == nil {
		return in
	}
	lintutil.InspectShallow(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Captured tracked vars escape into the closure.
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj, ok := w.pass.TypesInfo.Uses[id]; ok {
						for _, s := range in {
							delete(s.vars, obj)
						}
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			name := lintutil.CalleeName(x)
			if freeFuncs[name] && len(x.Args) == 1 {
				if obj := objOf(w.pass, x.Args[0]); obj != nil {
					for _, s := range in {
						switch s.vars[obj] {
						case freed:
							w.reportOnce(x.Pos(), "double %s of %q: it was already released on this path", name, objName(obj))
						case live:
							s.vars[obj] = freed
							delete(s.deferred, obj)
						default:
							// Not tracked (came from a parameter etc.):
							// start tracking the freed state so a later
							// use still trips use-after-free.
							s.vars[obj] = freed
						}
					}
					return false // don't treat the arg as a use
				}
			}
			if _, isAlloc := allocFuncs[name]; !isAlloc {
				// Ownership transfer: tracked values passed as args (or
				// used as receiver arguments' method targets stay ours).
				for _, arg := range x.Args {
					if obj := objOf(w.pass, arg); obj != nil {
						for _, s := range in {
							if s.vars[obj] == freed {
								w.reportOnce(arg.Pos(), "use of %q after it was released to the pool", objName(obj))
							}
							delete(s.vars, obj)
						}
					}
				}
				// Method call ON a tracked (possibly freed) receiver.
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
					if obj := objOf(w.pass, sel.X); obj != nil {
						for _, s := range in {
							if s.vars[obj] == freed {
								w.reportOnce(sel.Pos(), "use of %q after it was released to the pool", objName(obj))
							}
						}
					}
				}
				return false
			}
			return true
		case *ast.CompositeLit:
			// Building a tracked value into a slice/struct/map literal
			// stores it somewhere with its own lifetime: ownership moves.
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if obj := objOf(w.pass, elt); obj != nil {
					for _, s := range in {
						if s.vars[obj] == freed {
							w.reportOnce(elt.Pos(), "use of %q after it was released to the pool", objName(obj))
						}
						delete(s.vars, obj)
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			if obj := objOf(w.pass, x.X); obj != nil {
				for _, s := range in {
					if s.vars[obj] == freed {
						w.reportOnce(x.Pos(), "use of %q after it was released to the pool", objName(obj))
					}
				}
			}
			return true
		case *ast.Ident:
			if obj, ok := w.pass.TypesInfo.Uses[x]; ok {
				for _, s := range in {
					if s.vars[obj] == freed {
						w.reportOnce(x.Pos(), "use of %q after it was released to the pool", objName(obj))
					}
				}
			}
			return true
		}
		return true
	})
	return in
}

// checkExit enforces exit obligations: deferred frees run, then anything
// still live leaks.
func (w *walker) checkExit(s state, pos token.Pos) {
	for obj := range s.deferred {
		if s.vars[obj] == live {
			s.vars[obj] = freed
		}
	}
	for obj, st := range s.vars {
		if st == live {
			w.reportOnce(pos, "pooled value %q leaks on this return path: free it or hand off ownership before bailing", objName(obj))
		}
	}
}

func objName(obj types.Object) string { return obj.Name() }

// nilCheck recognizes a bare `x == nil` / `x != nil` condition (either
// operand order) and returns the checked object and comparison operator.
func nilCheck(pass *analysis.Pass, cond ast.Expr) (types.Object, token.Token) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		return objOf(pass, x), be.Op
	}
	if isNilIdent(x) {
		return objOf(pass, y), be.Op
	}
	return nil, token.ILLEGAL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// objOf resolves a bare identifier expression to its object.
func objOf(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj, ok := pass.TypesInfo.Uses[id]; ok {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}

func defOrUseObj(pass *analysis.Pass, e ast.Expr) types.Object {
	return objOf(pass, e)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
