package poollifecycle_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/poollifecycle"
)

func TestPoollifecycle(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poollifecycle.Analyzer, "a")
}
