// Package seqlockbalance enforces the writer and reader halves of the
// repo's seqlock discipline.
//
// Writer rule: a function that publishes through a seqlock performs an
// odd-making version bump (FetchAdd-family call with an odd constant
// delta), mutates the payload, and completes with an even-making bump on
// the same version word. The analyzer groups odd-delta bump calls by the
// textual version-word operand (offset expression or address); a group
// with two or more bump sites is a seqlock writer, and every path out of
// the function — early error returns and panics included — must have
// executed an even number of that group's bumps. This is exactly the PR 4
// stuck-odd class: an error return between the odd and even bump strands
// remote readers on a torn slot forever. Groups with a single bump site
// are monotonic counters, not seqlocks, and are ignored.
//
// Reader rule: a function that checks a version word for oddness (v&1)
// and copies payload bytes out of the versioned image must validate the
// copy before trusting it — either re-load the version word (same source
// expression appearing at least twice) or checksum the copied image
// (a call whose name contains crc/sum/check). One-sided readers see raw
// remote bytes; the version check before the copy alone proves nothing
// about the bytes copied after it.
package seqlockbalance

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "seqlockbalance",
	Doc:  "flag seqlock version words left odd on a path out of the writer, and versioned-slot readers that never validate the copied payload",
	Run:  run,
}

// bump-capable calls: name -> (offset/address arg index, delta arg index).
var bumpArgs = map[string][2]int{
	"FetchAdd":      {1, 2}, // QP.FetchAdd(node, off, delta) / Batch.FetchAdd(node, off, delta, ...)
	"FetchAdd64":    {0, 1}, // Memory.FetchAdd64(off, delta)
	"IssueFetchAdd": {2, 3}, // QP.IssueFetchAdd(slot, node, off, delta, ...)
	"AddUint64":     {0, 1}, // sync/atomic
	"AddInt64":      {0, 1},
	"AddUint32":     {0, 1},
	"AddInt32":      {0, 1},
}

func run(pass *analysis.Pass) (any, error) {
	for _, fb := range lintutil.Bodies(pass.Files) {
		checkWriter(pass, fb)
		checkReader(pass, fb)
	}
	return nil, nil
}

// --- writer rule ---

type bumpSite struct {
	call  *ast.CallExpr
	group string
}

// bumpAt returns the version-word group key if call is an odd-delta
// FetchAdd-family bump.
func bumpAt(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	idx, ok := bumpArgs[lintutil.CalleeName(call)]
	if !ok || len(call.Args) <= idx[1] {
		return "", false
	}
	delta, ok := lintutil.IntConst(pass.TypesInfo, call.Args[idx[1]])
	if !ok || delta%2 == 0 {
		return "", false
	}
	return types.ExprString(call.Args[idx[0]]), true
}

func checkWriter(pass *analysis.Pass, fb lintutil.FuncBody) {
	// Collect bump sites (not descending into nested function literals:
	// each is its own analysis root, and batch completion callbacks
	// don't re-execute the staging call).
	counts := map[string]int{}
	inDefer := map[string]bool{}
	lintutil.InspectShallow(fb.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if g, isBump := bumpAt(pass, d.Call); isBump {
				inDefer[g] = true
			}
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if g, isBump := bumpAt(pass, call); isBump {
				counts[g]++
			}
		}
		return true
	})
	groups := map[string]bool{}
	for g, c := range counts {
		// One site is a counter; a deferred completing bump is balanced
		// by construction.
		if c >= 2 && !inDefer[g] {
			groups[g] = true
		}
	}
	if len(groups) == 0 {
		return
	}
	w := &parityWalker{pass: pass, groups: groups, reported: map[string]bool{}}
	out := w.execBlock(fb.Body, []parity{{}})
	for _, p := range out {
		w.checkExit(p, fb.Body.Rbrace)
	}
}

// parity maps group key -> odd (true) / even (false).
type parity map[string]bool

func (p parity) clone() parity {
	np := parity{}
	for k, v := range p {
		np[k] = v
	}
	return np
}

func (p parity) key() string {
	var parts []string
	for k, v := range p {
		if v {
			parts = append(parts, k)
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

const maxStates = 64

type parityWalker struct {
	pass     *analysis.Pass
	groups   map[string]bool
	reported map[string]bool
}

func (w *parityWalker) reportOnce(pos token.Pos, group string) {
	key := fmt.Sprintf("%d:%s", pos, group)
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.pass.Reportf(pos, "seqlock version word %s can be left odd on this path out of the function: pair every odd-making bump with an even-completing bump (stuck-odd strands one-sided readers on a torn slot)", group)
}

func (w *parityWalker) checkExit(p parity, pos token.Pos) {
	for g, odd := range p {
		if odd {
			w.reportOnce(pos, g)
		}
	}
}

func dedup(states []parity) []parity {
	seen := map[string]bool{}
	var out []parity
	for _, p := range states {
		k := p.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
		if len(out) >= maxStates {
			break
		}
	}
	return out
}

func cloneAll(in []parity) []parity {
	out := make([]parity, len(in))
	for i, p := range in {
		out[i] = p.clone()
	}
	return out
}

// applyBumps toggles parity for every bump call syntactically inside n,
// excluding nested statement bodies when walking composite statements —
// callers pass the non-body parts (init/cond/expr) of each statement.
func (w *parityWalker) applyBumps(n ast.Node, states []parity) {
	if n == nil {
		return
	}
	lintutil.InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if g, isBump := bumpAt(w.pass, call); isBump && w.groups[g] {
			for _, p := range states {
				p[g] = !p[g]
			}
		}
		return true
	})
}

func (w *parityWalker) execBlock(b *ast.BlockStmt, in []parity) []parity {
	states := in
	for _, st := range b.List {
		states = w.execStmt(st, states)
		if len(states) == 0 {
			return nil
		}
	}
	return dedup(states)
}

func (w *parityWalker) execStmt(stmt ast.Stmt, in []parity) []parity {
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		return w.execBlock(st, in)
	case *ast.LabeledStmt:
		return w.execStmt(st.Stmt, in)
	case *ast.IfStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		w.applyBumps(st.Cond, in)
		thenOut := w.execBlock(st.Body, cloneAll(in))
		var elseOut []parity
		if st.Else != nil {
			elseOut = w.execStmt(st.Else, cloneAll(in))
		} else {
			elseOut = in
		}
		return dedup(append(thenOut, elseOut...))
	case *ast.SwitchStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		w.applyBumps(st.Tag, in)
		return w.execCases(st.Body.List, in)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		return w.execCases(st.Body.List, in)
	case *ast.SelectStmt:
		return w.execCases(st.Body.List, in)
	case *ast.ForStmt:
		if st.Init != nil {
			in = w.execStmt(st.Init, in)
		}
		w.applyBumps(st.Cond, in)
		out := w.execBlock(st.Body, cloneAll(in))
		if st.Post != nil {
			out = w.execStmt(st.Post, out)
		}
		return dedup(out)
	case *ast.RangeStmt:
		w.applyBumps(st.X, in)
		return dedup(w.execBlock(st.Body, cloneAll(in)))
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			w.applyBumps(res, in)
		}
		for _, p := range in {
			w.checkExit(p, st.Return)
		}
		return nil
	case *ast.BranchStmt:
		return nil
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && lintutil.CalleeName(call) == "panic" {
			w.applyBumps(st.X, in)
			for _, p := range in {
				w.checkExit(p, call.Pos())
			}
			return nil
		}
		w.applyBumps(st.X, in)
		return in
	case *ast.DeferStmt:
		// Deferred bumps were excluded from grouping; other defers
		// carry no parity effect at the staging point.
		return in
	default:
		w.applyBumps(stmt, in)
		return in
	}
}

func (w *parityWalker) execCases(clauses []ast.Stmt, in []parity) []parity {
	hasDefault := false
	var out []parity
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
			hasDefault = hasDefault || cc.List == nil
		case *ast.CommClause:
			body = cc.Body
			if cc.Comm != nil {
				body = append([]ast.Stmt{cc.Comm}, body...)
			}
			hasDefault = hasDefault || cc.Comm == nil
		}
		out = append(out, w.execBlock(&ast.BlockStmt{List: body}, cloneAll(in))...)
	}
	if !hasDefault || len(clauses) == 0 {
		out = append(out, in...)
	}
	return dedup(out)
}

// --- reader rule ---

var checksumName = regexp.MustCompile(`(?i)(crc|sum|check)`)

// checkReader flags versioned-slot readers (version-oddness check plus a
// payload copy) that neither re-load the version nor checksum the copy.
func checkReader(pass *analysis.Pass, fb lintutil.FuncBody) {
	var oddCheckPos token.Pos
	hasCopy := false
	validated := false
	loadTexts := map[string]int{}

	lintutil.InspectShallow(fb.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			// v&1 inside a comparison marks the version-oddness check.
			if x.Op == token.AND {
				if c, ok := lintutil.IntConst(pass.TypesInfo, x.Y); ok && c == 1 && oddCheckPos == token.NoPos {
					oddCheckPos = x.Pos()
				}
			}
		case *ast.CallExpr:
			name := lintutil.CalleeName(x)
			switch {
			case name == "copy":
				hasCopy = true
			case checksumName.MatchString(name):
				validated = true
			case name == "Uint64" || name == "Uint32" || name == "Load":
				// Version loads: binary.LittleEndian.Uint64(buf) or
				// v.Load(). Two identical loads = read, copy, re-check.
				loadTexts[types.ExprString(x)]++
			}
		}
		return true
	})

	for _, n := range loadTexts {
		if n >= 2 {
			validated = true
		}
	}
	if oddCheckPos != token.NoPos && hasCopy && !validated {
		pass.Reportf(oddCheckPos, "versioned slot read: the payload copy is never validated — re-load the version word after copying (or checksum the copied image); the pre-copy oddness check alone cannot catch a write racing the copy")
	}
}
