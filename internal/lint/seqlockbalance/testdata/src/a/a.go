// Fixture for the seqlockbalance analyzer. The bad writer reproduces the
// PR 4 stuck-odd class: an error return between the odd-making and
// even-completing version bumps strands one-sided readers on a torn slot
// forever.
package a

import "encoding/binary"

type mem struct{}

func (m *mem) FetchAdd64(off, delta uint64) (uint64, error) { return 0, nil }

func store(m *mem, off uint64, body []byte) error { return nil }

func badWriter(m *mem, off uint64, body []byte) error {
	m.FetchAdd64(off, 1) // take the slot odd
	if err := store(m, off, body); err != nil {
		return err // want `seqlock version word off can be left odd`
	}
	m.FetchAdd64(off, 1) // land it even
	return nil
}

func badPanicWriter(m *mem, off uint64, body []byte) {
	m.FetchAdd64(off, 1)
	if err := store(m, off, body); err != nil {
		panic(err) // want `seqlock version word off can be left odd`
	}
	m.FetchAdd64(off, 1)
}

// --- sanctioned writer shapes ---

func goodWriter(m *mem, off uint64, body []byte) error {
	m.FetchAdd64(off, 1)
	err := store(m, off, body)
	m.FetchAdd64(off, 1) // completes even on the error path too
	return err
}

func goodDeferredWriter(m *mem, off uint64, body []byte) error {
	m.FetchAdd64(off, 1)
	defer m.FetchAdd64(off, 1)
	return store(m, off, body)
}

// One bump site is a monotonic counter, not a seqlock.
func goodCounter(m *mem, off uint64) {
	m.FetchAdd64(off, 1)
}

// --- reader rule ---

func badReader(slot, dst []byte) bool {
	v := binary.LittleEndian.Uint64(slot)
	if v&1 == 1 { // want `versioned slot read: the payload copy is never validated`
		return false
	}
	copy(dst, slot[8:])
	return true
}

func goodReaderReload(slot, dst []byte) bool {
	v := binary.LittleEndian.Uint64(slot)
	if v&1 == 1 {
		return false
	}
	copy(dst, slot[8:])
	// Re-loading the version after the copy catches a racing writer.
	return binary.LittleEndian.Uint64(slot) == v
}

func goodReaderChecksum(slot, dst []byte) bool {
	v := binary.LittleEndian.Uint64(slot)
	if v&1 == 1 {
		return false
	}
	copy(dst, slot[8:])
	return checkSum(dst) == v>>32
}

func checkSum(b []byte) uint64 {
	var s uint64
	for _, c := range b {
		s += uint64(c)
	}
	return s
}
