package seqlockbalance_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/seqlockbalance"
)

func TestSeqlockbalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), seqlockbalance.Analyzer, "a")
}
