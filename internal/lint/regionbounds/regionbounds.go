// Package regionbounds checks one-sided operation call sites against the
// region layout they address: offsets passed to remote RMWs must be
// 8-byte aligned, line-atomic writes must not straddle a 64-byte cache
// line, and constant offsets must be non-negative and inside the
// declared region size.
//
// Offsets in this codebase are rarely literal: they come out of layout
// helpers (ringOff, creditOff, shardLineOff, slotOff...) that compute
// base + index*stride. The analyzer constant-propagates through those
// helpers with a residue lattice — each expression evaluates to either
// an exact constant or "≡ res (mod m)" — so `LineOff(i) + 4` is provably
// misaligned even though i is unknown. Helper summaries for exported
// single-return helpers are exported as facts, so an importing package's
// call sites are checked against the defining package's layout algebra.
//
// The analyzer only reports PROVEN violations: an offset whose residue
// is unknown stays silent. That keeps the in-tree signal clean — field
// dependent helpers (whose strides are configuration, not constants)
// evaluate to unknown rather than to noise.
package regionbounds

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"sonuma/internal/lint/analysis"
	"sonuma/internal/lint/lintutil"
)

// OffsetFact summarizes an exported offset helper: the value it returns
// is either exactly C (Known) or congruent to Res modulo Mod when its
// arguments are unknown.
type OffsetFact struct {
	Known    bool
	C        int64
	Mod, Res int64
}

// AFact brands OffsetFact for the facts layer.
func (*OffsetFact) AFact() {}

// Analyzer is the regionbounds pass.
var Analyzer = &analysis.Analyzer{
	Name:      "regionbounds",
	Doc:       "proves one-sided offsets misaligned, line-straddling, or out of the region",
	Run:       run,
	FactTypes: []analysis.Fact{(*OffsetFact)(nil)},
}

// rmwCallees take an 8-byte-aligned remote word address.
var rmwCallees = map[string]bool{
	"FetchAdd": true, "CompareSwap": true,
	"IssueFetchAdd": true, "IssueCompareSwap": true,
}

// writeCallees carry line-atomicity expectations for payloads that fit a
// cache line.
var writeCallees = map[string]bool{
	"Write": true, "WriteAt": true, "WriteAsync": true, "IssueWrite": true,
}

// readCallees participate in the bounds check only.
var readCallees = map[string]bool{
	"Read": true, "ReadAt": true, "ReadAsync": true, "IssueRead": true,
}

const lineSize = 64

// maxMod caps the modulus used when an exact constant joins a residue;
// any power of two comfortably above every stride in the tree works.
const maxMod = int64(1) << 32

// rval is a point in the residue lattice: an exact constant, a residue
// class, or unknown (mod 1).
type rval struct {
	known bool
	c     int64
	mod   int64 // ≥ 1
	res   int64 // 0 ≤ res < mod
}

func unknown() rval      { return rval{mod: 1} }
func exact(c int64) rval { return rval{known: true, c: c, mod: 1} }

func norm(r, m int64) int64 {
	r %= m
	if r < 0 {
		r += m
	}
	return r
}

// asResidue widens an exact constant into a residue class so it can
// combine with one.
func (v rval) asResidue() (mod, res int64) {
	if v.known {
		return maxMod, norm(v.c, maxMod)
	}
	return v.mod, v.res
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a <= 0 {
		return 1
	}
	return a
}

func add(a, b rval) rval {
	if a.known && b.known {
		return exact(a.c + b.c)
	}
	ma, ra := a.asResidue()
	mb, rb := b.asResidue()
	m := gcd(ma, mb)
	return rval{mod: m, res: norm(ra+rb, m)}
}

func neg(a rval) rval {
	if a.known {
		return exact(-a.c)
	}
	return rval{mod: a.mod, res: norm(-a.res, a.mod)}
}

func mul(a, b rval) rval {
	if a.known && b.known {
		return exact(a.c * b.c)
	}
	// Put the constant (if any) in a.
	if b.known {
		a, b = b, a
	}
	if !a.known {
		// residue * residue: sound only when both are ≡ 0.
		if a.res == 0 && b.res == 0 {
			m := a.mod
			if b.mod > m {
				m = b.mod
			}
			return rval{mod: m, res: 0}
		}
		return unknown()
	}
	c := a.c
	if c == 0 {
		return exact(0)
	}
	if c < 0 {
		return neg(mul(exact(-c), b))
	}
	m := b.mod * c
	if m > maxMod || m/c != b.mod {
		m = maxMod
	}
	return rval{mod: m, res: norm(b.res*c, m)}
}

type evaluator struct {
	pass      *analysis.Pass
	info      *types.Info
	summaries map[*types.Func]rval
}

// eval computes expr's residue value. Constant folding wins outright;
// otherwise the expression algebra and helper summaries apply.
func (e *evaluator) eval(expr ast.Expr) rval {
	expr = ast.Unparen(expr)
	if c, ok := lintutil.IntConst(e.info, expr); ok {
		return exact(c)
	}
	switch x := expr.(type) {
	case *ast.BinaryExpr:
		l, r := e.eval(x.X), e.eval(x.Y)
		switch x.Op.String() {
		case "+":
			return add(l, r)
		case "-":
			return add(l, neg(r))
		case "*":
			return mul(l, r)
		case "<<":
			if r.known && r.c >= 0 && r.c < 32 {
				return mul(l, exact(int64(1)<<uint(r.c)))
			}
		}
		return unknown()
	case *ast.UnaryExpr:
		if x.Op.String() == "-" {
			return neg(e.eval(x.X))
		}
		return unknown()
	case *ast.CallExpr:
		// Integer conversions pass the value through.
		if tv, ok := e.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return e.eval(x.Args[0])
		}
		return e.helperValue(x)
	}
	return unknown()
}

// helperValue resolves a call to an offset helper: a local single-return
// function's summary, or an imported helper's OffsetFact.
func (e *evaluator) helperValue(call *ast.CallExpr) rval {
	fn := calleeFunc(e.info, call)
	if fn == nil {
		return unknown()
	}
	if v, ok := e.summaries[fn]; ok {
		return v
	}
	var fact OffsetFact
	if e.pass.ImportObjectFact(fn, &fact) {
		if fact.Known {
			return exact(fact.C)
		}
		if fact.Mod > 1 {
			return rval{mod: fact.Mod, res: norm(fact.Res, fact.Mod)}
		}
	}
	return unknown()
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// singleReturn returns the sole returned expression of a helper-shaped
// function body (exactly one statement, a single-value return).
func singleReturn(body *ast.BlockStmt) (ast.Expr, bool) {
	if body == nil || len(body.List) != 1 {
		return nil, false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, false
	}
	return ret.Results[0], true
}

// regionSizeConst finds the package's declared region size, if exactly
// one constant names one ("...RegionSize", "SegmentBytes", ...).
func regionSizeConst(pass *analysis.Pass) (int64, bool) {
	var (
		found int64
		n     int
	)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		low := strings.ToLower(name)
		if !strings.HasSuffix(low, "regionsize") && !strings.HasSuffix(low, "regionbytes") &&
			!strings.HasSuffix(low, "segmentsize") && !strings.HasSuffix(low, "segmentbytes") {
			continue
		}
		if v, ok := constInt64(c); ok {
			found = v
			n++
		}
	}
	return found, n == 1
}

func constInt64(c *types.Const) (int64, bool) {
	v := c.Val()
	if v == nil || v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	ev := &evaluator{pass: pass, info: info, summaries: map[*types.Func]rval{}}

	// Pass 1: summarize local helpers (single-return functions). Two
	// rounds let a helper that calls another helper resolve.
	for round := 0; round < 2; round++ {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				expr, ok := singleReturn(fd.Body)
				if !ok {
					continue
				}
				obj, _ := info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				v := ev.eval(expr)
				if v.known || v.mod > 1 {
					ev.summaries[obj] = v
				}
			}
		}
	}

	// Export summaries of exported helpers as facts.
	for fn, v := range ev.summaries {
		if !fn.Exported() {
			continue
		}
		pass.ExportObjectFact(fn, &OffsetFact{Known: v.known, C: v.c, Mod: v.mod, Res: v.res})
	}

	regionSize, haveRegion := regionSizeConst(pass)

	// Pass 2: check one-sided call sites.
	for _, fb := range lintutil.Bodies(pass.Files) {
		lintutil.InspectShallow(fb.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := lintutil.CalleeName(call)
			isRMW, isWrite, isRead := rmwCallees[name], writeCallees[name], readCallees[name]
			if !isRMW && !isWrite && !isRead {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			offIdx, lenIdx := offsetParams(fn)
			if offIdx < 0 || offIdx >= len(call.Args) {
				return true
			}
			off := ev.eval(call.Args[offIdx])

			if off.known && off.c < 0 {
				pass.Reportf(call.Pos(), "negative remote offset %d passed to %s", off.c, name)
				return true
			}
			if isRMW {
				if off.known && off.c%8 != 0 {
					pass.Reportf(call.Pos(), "remote RMW %s at offset %d: not 8-byte aligned", name, off.c)
				} else if !off.known && off.mod%8 == 0 && off.res%8 != 0 {
					pass.Reportf(call.Pos(), "remote RMW %s at offset ≡ %d (mod %d): provably not 8-byte aligned", name, off.res, off.mod)
				}
			}
			var length rval = unknown()
			if lenIdx >= 0 && lenIdx < len(call.Args) {
				length = ev.eval(call.Args[lenIdx])
			}
			if isWrite && length.known && length.c > 0 && length.c <= lineSize {
				start, okStart := int64(-1), false
				if off.known {
					start, okStart = norm(off.c, lineSize), true
				} else if off.mod%lineSize == 0 {
					start, okStart = off.res%lineSize, true
				}
				if okStart && start+length.c > lineSize {
					pass.Reportf(call.Pos(), "%s of %d bytes at line offset %d straddles a %d-byte cache line: not line-atomic", name, length.c, start, lineSize)
				}
			}
			if haveRegion && off.known && length.known && off.c+length.c > regionSize {
				pass.Reportf(call.Pos(), "%s at offset %d with length %d overruns the %d-byte region", name, off.c, length.c, regionSize)
			}
			return true
		})
	}
	return nil, nil
}

// offsetParams locates the offset and length parameters of a one-sided
// callee by name ("offset"/"off"; "n"/"length"/"size" for the byte
// count). Returns -1 when absent.
func offsetParams(fn *types.Func) (offIdx, lenIdx int) {
	offIdx, lenIdx = -1, -1
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		switch params.At(i).Name() {
		case "offset", "off":
			if offIdx < 0 {
				offIdx = i
			}
		case "n", "length", "size":
			if lenIdx < 0 {
				lenIdx = i
			}
		}
	}
	return
}
