package regionbounds_test

import (
	"testing"

	"sonuma/internal/lint/analysistest"
	"sonuma/internal/lint/regionbounds"
)

func TestRegionBounds(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), regionbounds.Analyzer, "caller")
}
