// Package caller exercises one-sided call sites whose offsets come from
// the imported layout package — every diagnostic here depends on facts
// crossing the import edge.
package caller

import "layout"

// QP mimics the one-sided surface; the analyzer recognizes callees by
// name plus an offset-named parameter.
type QP struct{}

func (q *QP) FetchAdd(node int, offset uint64, delta uint64) (uint64, error) { return 0, nil }
func (q *QP) CompareSwap(node int, offset uint64, expected, newv uint64) (uint64, error) {
	return 0, nil
}
func (q *QP) Write(node int, offset uint64, b []byte, n int) error { return nil }
func (q *QP) Read(node int, offset uint64, b []byte, n int) error  { return nil }

func use(q *QP, i, w int) {
	// Aligned through helpers: silent.
	q.FetchAdd(0, uint64(layout.LineOff(i)), 1)
	q.FetchAdd(0, uint64(layout.WordOff(i, w)), 1)
	q.CompareSwap(0, uint64(layout.HdrOff()), 0, 1)

	// Provably misaligned via the imported residue fact.
	q.FetchAdd(0, uint64(layout.SkewOff(i)), 1)         // want `provably not 8-byte aligned`
	q.CompareSwap(0, uint64(layout.LineOff(i)+2), 0, 1) // want `provably not 8-byte aligned`
	q.FetchAdd(0, uint64(layout.HdrOff()+1), 1)         // want `not 8-byte aligned`

	// Unknown residues stay silent — no proof, no noise.
	q.FetchAdd(0, uint64(layout.Opaque(i)), 1)
	q.FetchAdd(0, uint64(i), 1)

	// Line-atomic writes: a 32-byte frame at line offset 48 straddles.
	var buf []byte
	q.Write(0, uint64(layout.LineOff(i)+48), buf, 32) // want `straddles a 64-byte cache line`
	q.Write(0, uint64(layout.LineOff(i)), buf, 64)
	q.Write(0, uint64(layout.LineOff(i)), buf, 128) // multi-line by design: silent

	// Bounds against this package's region size constant.
	q.Read(0, 4095, buf, 8) // want `overruns the 4096-byte region`
	q.Read(0, 4088, buf, 8)
}

const TestRegionSize = 4096
