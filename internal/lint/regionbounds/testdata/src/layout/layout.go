// Package layout mimics a region-layout package: line-granular offset
// helpers whose algebra the analyzer summarizes and exports as facts.
package layout

const RegionSize = 4096

// LineOff is line-aligned: i*64 is ≡ 0 (mod 64) for any i.
func LineOff(i int) int { return i * 64 }

// WordOff lands on an 8-byte word inside line i.
func WordOff(i, w int) int { return i*64 + w*8 }

// SkewOff is provably misaligned: ≡ 4 (mod 64).
func SkewOff(i int) int { return i*64 + 4 }

// HdrOff is an exact constant.
func HdrOff() int { return 128 }

// Opaque depends on a non-constant stride, so it summarizes to unknown
// and call sites through it must stay silent.
var stride = 48

func Opaque(i int) int { return i * stride }
