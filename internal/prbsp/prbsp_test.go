package prbsp

import (
	"math"
	"testing"

	"sonuma"
	"sonuma/internal/graph"
)

// checkRanks asserts got matches the reference PageRank within tolerance.
func checkRanks(t *testing.T, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("rank vector length %d, want %d", len(got), len(want))
	}
	var sum float64
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", i, got[i], want[i])
		}
		sum += got[i]
	}
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("rank mass %g implausible", sum)
	}
}

func testGraph() *graph.Graph { return graph.GenPowerLaw(600, 6, 1.6, 11) }

func TestSHMMatchesReference(t *testing.T) {
	g := testGraph()
	const steps = 4
	want := graph.PageRank(g, steps)
	pt := graph.RandomPartition(g, 4, 3)
	got := RunSHM(g, pt, steps)
	checkRanks(t, got.Ranks, want)
}

func TestBulkMatchesReference(t *testing.T) {
	g := testGraph()
	const steps = 3
	want := graph.PageRank(g, steps)
	pt := graph.RandomPartition(g, 4, 3)
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := Run(cl, g, pt, Bulk, steps, 5)
	if err != nil {
		t.Fatalf("bulk run: %v", err)
	}
	checkRanks(t, res.Ranks, want)
}

func TestFineGrainMatchesReference(t *testing.T) {
	g := testGraph()
	const steps = 3
	want := graph.PageRank(g, steps)
	pt := graph.RandomPartition(g, 4, 3)
	cl, err := sonuma.NewCluster(sonuma.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := Run(cl, g, pt, FineGrain, steps, 5)
	if err != nil {
		t.Fatalf("fine-grain run: %v", err)
	}
	checkRanks(t, res.Ranks, want)
}

func TestVariantsAgreeAcrossNodeCounts(t *testing.T) {
	g := graph.GenPowerLaw(300, 5, 1.6, 99)
	const steps = 2
	want := graph.PageRank(g, steps)
	for _, n := range []int{2, 3, 8} {
		pt := graph.RandomPartition(g, n, 1)
		cl, err := sonuma.NewCluster(sonuma.Config{Nodes: n})
		if err != nil {
			t.Fatal(err)
		}
		for vi, v := range []Variant{Bulk, FineGrain} {
			res, err := Run(cl, g, pt, v, steps, 10+vi)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, v, err)
			}
			checkRanks(t, res.Ranks, want)
		}
		cl.Close()
	}
}
