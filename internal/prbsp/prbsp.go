// Package prbsp implements the paper's application study (§7.5) on the
// development platform: Bulk-Synchronous-Parallel PageRank over the public
// soNUMA API in the three variants the paper compares —
//
//	SHM(pthreads):        plain shared-memory goroutines (the baseline)
//	soNUMA(bulk):         compute on local mirrors, pull peer rank arrays
//	                      with multi-line reads after the superstep barrier
//	soNUMA(fine-grain):   one asynchronous remote read per cross-partition
//	                      edge, exactly the Fig. 4 kernel
//
// All three produce bit-comparable ranks, checked against the reference
// implementation in internal/graph.
//
// Each node's context segment holds its partition's two rank arrays (one
// per superstep parity, as in Fig. 4's rank[2]); out-degrees are static
// input data shared like the graph itself. Local accesses use plain loads
// (the is_local path); bulk pulls each peer's current-parity rank array
// after the barrier; fine-grain reads individual remote ranks.
package prbsp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"sonuma"
	"sonuma/internal/graph"
)

// Variant selects the implementation.
type Variant int

// The three §7.5 implementations.
const (
	SHM Variant = iota
	Bulk
	FineGrain
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case SHM:
		return "SHM(pthreads)"
	case Bulk:
		return "soNUMA(bulk)"
	case FineGrain:
		return "soNUMA(fine-grain)"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

const damping = 0.85

// Options tune a run.
type Options struct {
	// Supersteps is the BSP iteration count.
	Supersteps int
	// CtxID selects the global address space id.
	CtxID int
	// WorkPerEdge injects synthetic per-edge compute (spin iterations;
	// ~2.5ns each). The paper's testbed pays a DRAM-bound vertex lookup
	// per edge (~100ns); Go's in-cache traversal pays ~3ns, which would
	// exaggerate communication costs relative to the paper's platform.
	// Fig. 9-right sets this to restore the paper's compute:comm ratio;
	// correctness tests leave it zero.
	WorkPerEdge int
}

// workSink defeats dead-code elimination of the spin loop. It is shared by
// every worker goroutine, so accesses are atomic (one load and one store
// per call, outside the spin loop).
var workSink atomic.Uint64

func work(iters int) {
	if iters <= 0 {
		return
	}
	acc := workSink.Load()
	for i := 0; i < iters; i++ {
		acc = acc*1664525 + 1013904223
	}
	workSink.Store(acc)
}

// Result is the outcome of one run.
type Result struct {
	Ranks   []float64
	Elapsed time.Duration
}

// RunSHM is the pthreads-style shared-memory baseline: one goroutine per
// partition over a single rank array with a sync barrier per superstep.
func RunSHM(g *graph.Graph, pt *graph.Partition, supersteps int) Result {
	return RunSHMOpts(g, pt, Options{Supersteps: supersteps})
}

// RunSHMOpts is RunSHM with full options.
func RunSHMOpts(g *graph.Graph, pt *graph.Partition, opt Options) Result {
	threads := pt.P
	ranks := [2][]float64{make([]float64, g.N), make([]float64, g.N)}
	for i := range ranks[0] {
		ranks[0][i] = 1.0 / float64(g.N)
	}
	var wg sync.WaitGroup
	barrier := newLocalBarrier(threads)
	start := time.Now()
	for t := 0; t < threads; t++ {
		verts := pt.Parts[t]
		wg.Add(1)
		go func(verts []int32) {
			defer wg.Done()
			for s := 0; s < opt.Supersteps; s++ {
				cur, next := ranks[s%2], ranks[(s+1)%2]
				for _, v := range verts {
					sum := 0.0
					for _, nb := range g.Neighbors(int(v)) {
						work(opt.WorkPerEdge)
						sum += cur[nb] / float64(g.OutDeg[nb])
					}
					next[v] = (1-damping)/float64(g.N) + damping*sum
				}
				barrier.wait()
			}
		}(verts)
	}
	wg.Wait()
	return Result{Ranks: ranks[opt.Supersteps%2], Elapsed: time.Since(start)}
}

// localBarrier is a reusable in-process barrier for the SHM baseline.
type localBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newLocalBarrier(n int) *localBarrier {
	b := &localBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *localBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// maxPart is the largest partition cardinality.
func maxPart(g *graph.Graph, p int) int { return (g.N + p - 1) / p }

// SegmentSize reports the context-segment bytes each node needs: two rank
// arrays (8 B per vertex per parity) plus the barrier region.
func SegmentSize(g *graph.Graph, p int) int {
	return 2*maxPart(g, p)*8 + sonuma.BarrierRegionSize(p) + 4096
}

// Run executes the selected distributed variant on the cluster (one
// partition per node) and returns the gathered ranks.
func Run(cl *sonuma.Cluster, g *graph.Graph, pt *graph.Partition, v Variant, supersteps, ctxID int) (Result, error) {
	return RunOpts(cl, g, pt, v, Options{Supersteps: supersteps, CtxID: ctxID})
}

// RunOpts is Run with full options.
func RunOpts(cl *sonuma.Cluster, g *graph.Graph, pt *graph.Partition, v Variant, opt Options) (Result, error) {
	if v == SHM {
		return RunSHMOpts(g, pt, opt), nil
	}
	if cl.Nodes() < pt.P {
		return Result{}, fmt.Errorf("prbsp: cluster has %d nodes, partition needs %d", cl.Nodes(), pt.P)
	}
	nodes := pt.P
	segSize := SegmentSize(g, nodes)
	ctxs := make([]*sonuma.Context, nodes)
	for i := 0; i < nodes; i++ {
		c, err := cl.Node(i).OpenContext(opt.CtxID, segSize)
		if err != nil {
			return Result{}, err
		}
		ctxs[i] = c
	}
	parts := make([]int, nodes)
	for i := range parts {
		parts[i] = i
	}
	start := time.Now()
	results := make([][]float64, nodes)
	errs := make([]error, nodes)
	var wg sync.WaitGroup
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := &worker{
				g: g, pt: pt, me: i, ctx: ctxs[i], parts: parts,
				opt: opt, variant: v,
			}
			results[i], errs[i] = w.run()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}
	ranks := make([]float64, g.N)
	for p := 0; p < nodes; p++ {
		for li, v := range pt.Parts[p] {
			ranks[v] = results[p][li]
		}
	}
	return Result{Ranks: ranks, Elapsed: elapsed}, nil
}

// worker is one node's BSP participant.
type worker struct {
	g       *graph.Graph
	pt      *graph.Partition
	me      int
	ctx     *sonuma.Context
	parts   []int
	opt     Options
	variant Variant

	qp      *sonuma.QP
	barrier *sonuma.Barrier
	mem     *sonuma.Memory
	verts   []int32
	vcap    int // maxPart: array stride between the two parity arrays
	// raw is the zero-copy view of the local rank arrays: the compute
	// loop reads it with plain loads, exactly the paper's is_local fast
	// path. Safe under BSP discipline: peers only read the CURRENT
	// parity array, which this node never writes during the superstep.
	raw []byte

	// bulk state: a registered buffer mirroring every peer's
	// current-parity rank array, pulled after each barrier.
	mirror   *sonuma.Buffer
	mirRaw   []byte
	startIdx []int
	// fine-grain state: per-WQ-slot landing buffer.
	lbuf    *sonuma.Buffer
	lbufRaw []byte
	next    []float64
}

// rankOff locates rank[parity][li] within the owner's segment.
func (w *worker) rankOff(parity, li int) int { return (parity*w.vcap + li) * 8 }

func (w *worker) run() ([]float64, error) {
	var err error
	w.verts = w.pt.Parts[w.me]
	w.vcap = maxPart(w.g, w.pt.P)
	w.mem = w.ctx.Memory()
	w.raw = w.mem.Bytes()
	if w.qp, err = w.ctx.NewQP(256); err != nil {
		return nil, err
	}
	qpB, err := w.ctx.NewQP(32)
	if err != nil {
		return nil, err
	}
	// The barrier region sits at the same offset in every segment: after
	// the two rank arrays of the LARGEST partition.
	barrierOff := 2 * w.vcap * 8
	if w.barrier, err = sonuma.NewBarrier(w.ctx, qpB, barrierOff, w.parts); err != nil {
		return nil, err
	}
	for li := range w.verts {
		if err := w.mem.Store64(w.rankOff(0, li), math.Float64bits(1.0/float64(w.g.N))); err != nil {
			return nil, err
		}
	}
	w.next = make([]float64, len(w.verts))
	switch w.variant {
	case Bulk:
		w.startIdx = make([]int, w.pt.P+1)
		for p := 0; p < w.pt.P; p++ {
			w.startIdx[p+1] = w.startIdx[p] + len(w.pt.Parts[p])
		}
		if w.mirror, err = w.ctx.AllocBuffer(w.g.N * 8); err != nil {
			return nil, err
		}
		w.mirRaw = w.mirror.Bytes() // read-only during compute (barrier-separated)
	case FineGrain:
		if w.lbuf, err = w.ctx.AllocBuffer(w.qp.Depth() * 8); err != nil {
			return nil, err
		}
		w.lbufRaw = w.lbuf.Bytes() // slot reuse is gated by CQ completion
	}
	if err := w.barrier.Wait(); err != nil { // everyone initialized
		return nil, err
	}
	if w.variant == Bulk {
		if err := w.shuffle(0); err != nil { // populate mirrors
			return nil, err
		}
		if err := w.barrier.Wait(); err != nil {
			return nil, err
		}
	}
	for s := 0; s < w.opt.Supersteps; s++ {
		if err := w.superstep(s); err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(w.verts))
	for li := range out {
		bits, _ := w.mem.Load64(w.rankOff(w.opt.Supersteps%2, li))
		out[li] = math.Float64frombits(bits)
	}
	return out, nil
}

// superstep runs one BSP iteration: compute, drain, publish, barrier (and
// for bulk, shuffle + barrier).
func (w *worker) superstep(s int) error {
	cur := s % 2
	base := (1 - damping) / float64(w.g.N)
	for li := range w.next {
		w.next[li] = base
	}
	var issueErr error
	for li, v := range w.verts {
		li := li
		for _, nb := range w.g.Neighbors(int(v)) {
			work(w.opt.WorkPerEdge)
			od := float64(w.g.OutDeg[nb])
			owner := int(w.pt.Owner[nb])
			if owner == w.me {
				// is_local path of Fig. 4: plain shared-memory load.
				r := math.Float64frombits(binary.LittleEndian.Uint64(
					w.raw[w.rankOff(cur, int(w.pt.LocalIdx[nb])):]))
				w.next[li] += damping * r / od
				continue
			}
			switch w.variant {
			case Bulk:
				r := math.Float64frombits(binary.LittleEndian.Uint64(
					w.mirRaw[(w.startIdx[owner]+int(w.pt.LocalIdx[nb]))*8:]))
				w.next[li] += damping * r / od
			case FineGrain:
				// The Fig. 4 pattern: wait for a WQ slot, issue a
				// split read of the remote rank, accumulate in the
				// completion callback.
				remoteOff := uint64(w.rankOff(cur, int(w.pt.LocalIdx[nb])))
				slot, err := w.qp.WaitForSlot(func(slot int, err error) {
					if err != nil {
						if issueErr == nil {
							issueErr = err
						}
						return
					}
					r := math.Float64frombits(binary.LittleEndian.Uint64(w.lbufRaw[slot*8:]))
					w.next[li] += damping * r / od
				})
				if err != nil {
					return err
				}
				if err := w.qp.IssueRead(slot, owner, remoteOff, w.lbuf, slot*8, 8); err != nil {
					return err
				}
			}
		}
	}
	if w.variant == FineGrain {
		if err := w.qp.DrainCQ(); err != nil {
			return err
		}
		if issueErr != nil {
			return issueErr
		}
	}
	// Publish next ranks, then synchronize.
	for li, r := range w.next {
		if err := w.mem.Store64(w.rankOff(1-cur, li), math.Float64bits(r)); err != nil {
			return err
		}
	}
	if err := w.barrier.Wait(); err != nil {
		return err
	}
	if w.variant == Bulk && s < w.opt.Supersteps-1 {
		if err := w.shuffle(1 - cur); err != nil {
			return err
		}
		if err := w.barrier.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// shuffle pulls every peer's parity rank array into the local mirror with
// asynchronous multi-line reads (§7.5 bulk: "one per peer ... a concurrent
// shuffle phase").
func (w *worker) shuffle(parity int) error {
	const chunk = 256 << 10
	var issueErr error
	for p := 0; p < w.pt.P; p++ {
		if p == w.me {
			continue
		}
		bytes := len(w.pt.Parts[p]) * 8
		remoteBase := uint64(parity * w.vcap * 8)
		for off := 0; off < bytes; off += chunk {
			l := chunk
			if off+l > bytes {
				l = bytes - off
			}
			dst := w.startIdx[p]*8 + off
			_, err := w.qp.ReadAsync(p, remoteBase+uint64(off), w.mirror, dst, l, func(_ int, err error) {
				if err != nil && issueErr == nil {
					issueErr = err
				}
			})
			if err != nil {
				return err
			}
		}
	}
	if err := w.qp.DrainCQ(); err != nil {
		return err
	}
	return issueErr
}
