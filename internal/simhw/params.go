// Package simhw is the cycle-level soNUMA hardware model: the counterpart of
// the paper's Flexus-based full-system simulation (§7.1, Table 1). Nodes,
// their cache hierarchies, DRAM, the three RMC pipelines of Fig. 3, the NI
// and the memory fabric are deterministic state machines over a shared
// discrete-event engine; microbenchmark and application drivers reproduce
// the workloads of §7.2–§7.5.
//
// The model is a timing model, not a functional one: packets carry sizes and
// addresses, not data. Functional behaviour (copy semantics, atomicity,
// bounds checking) is validated by the development platform in internal/emu;
// this package answers "how long does the protocol path take" with the
// microarchitectural detail of §4.3 — per-stage pipeline occupancy, MAQ
// admission, TLB misses with hardware page walks, MSHR-limited caches,
// banked DRAM and link serialization.
package simhw

import (
	"sonuma/internal/cache"
	"sonuma/internal/dram"
	"sonuma/internal/sim"
)

// Params collects every timing and structural parameter of the model. The
// defaults reproduce Table 1 plus the software costs of the access library
// measured by the paper (e.g. the per-request API overhead that caps remote
// operation rate near 10 M ops/s per core, §7.5).
type Params struct {
	// --- Core / access library software costs ---

	// IssueCost is core occupancy to compose and post one WQ entry
	// (synchronous path).
	IssueCost sim.Time
	// AsyncIssueCost is the per-operation core cost on the asynchronous
	// path (slot management + entry composition, Fig. 4 inner loop).
	AsyncIssueCost sim.Time
	// AsyncCompletionCost is the per-completion core cost (CQ entry
	// processing + callback).
	AsyncCompletionCost sim.Time
	// CompletionCost is the synchronous-path cost to observe and retire
	// a completion once visible.
	CompletionCost sim.Time
	// WQNotify is the delay from the core's WQ write to the RGP seeing
	// the entry: one coherence transfer of the cached WQ line into the
	// RMC's L1 plus polling granularity.
	WQNotify sim.Time
	// CQNotify is the mirror-image delay from the RMC's CQ write to the
	// polling core observing it.
	CQNotify sim.Time

	// --- RMC pipelines (Fig. 3b) ---

	// RGPPerReq is request-generation occupancy per WQ entry (fetch
	// request + ITT init).
	RGPPerReq sim.Time
	// RGPPerLine is the unrolling rate: occupancy per generated line
	// transaction (packet generation + injection).
	RGPPerLine sim.Time
	// RRPPPerReq is remote-request occupancy per packet (decode + CT
	// lookup + VA computation + TLB access), assuming CT$ and TLB hits.
	RRPPPerReq sim.Time
	// RCPPerReply is completion-pipeline occupancy per reply packet.
	RCPPerReply sim.Time
	// CQWriteCost is the RCP's cost to write the CQ entry.
	CQWriteCost sim.Time
	// AtomicCost is the extra destination-side cost of an atomic
	// read-modify-write in the remote node's coherence hierarchy.
	AtomicCost sim.Time

	// --- RMC structures ---

	// MAQEntries bounds in-flight RMC memory accesses (Table 1: 32).
	MAQEntries int
	// ITTEntries bounds in-flight WQ requests.
	ITTEntries int
	// WQDepth bounds entries queued per node ahead of the RGP.
	WQDepth int
	// TLBEntries/TLBWays size the RMC TLB (Table 1: 32 entries).
	TLBEntries int
	TLBWays    int
	// PageSize for translation (Table 1: 8 KB).
	PageSize int
	// PageWalkAccesses is the number of dependent memory accesses a TLB
	// miss costs (radix levels).
	PageWalkAccesses int
	// CTCache enables the context-table cache; when disabled every RRPP
	// request pays one extra memory access to fetch its CT entry (the
	// ablation of §4.3's CT$).
	CTCache bool

	// --- NI and fabric ---

	// LinkDelay is the flat node-to-node delay of the crossbar
	// configuration (Table 1: 50 ns inter-node delay).
	LinkDelay sim.Time
	// HopDelay is the per-hop pin-to-pin delay used by torus topologies
	// (the Alpha 21364 router's 11 ns, §3).
	HopDelay sim.Time
	// LinkPsPerByte is the serialization cost in picoseconds per byte
	// (~24 GB/s links ≈ 42 ps/B).
	LinkPsPerByte sim.Time
	// HeaderBytes is the wire header size per packet.
	HeaderBytes int

	// --- Memory system ---

	// L1 parameterizes both the RMC's private L1 and core L1s.
	L1 cache.Params
	// L2 parameterizes the node's last-level cache.
	L2 cache.Params
	// DRAM parameterizes the memory channel.
	DRAM dram.Params

	// --- Messaging library software costs (§5.3, driving Fig. 8) ---

	// MsgSendCost is fixed per-send software cost.
	MsgSendCost sim.Time
	// MsgPerSlotCost is packetization cost per 64-byte ring slot pushed.
	MsgPerSlotCost sim.Time
	// MsgRecvCost is fixed per-receive software cost (header parse +
	// dispatch).
	MsgRecvCost sim.Time
	// MsgPerSlotRecvCost is per-slot assembly cost at the receiver.
	MsgPerSlotRecvCost sim.Time
	// PollDetect is the receiver's polling granularity: mean delay from
	// a line landing in local memory to the poll loop observing it.
	PollDetect sim.Time
	// CopyPsPerByte is memcpy cost for staging copies (pull path).
	CopyPsPerByte sim.Time
}

// DefaultParams returns the Table 1 configuration with the software costs
// calibrated so the model lands on the paper's headline numbers (≈300 ns
// small remote reads, ≈10 M ops/s per core, ≈9.6 GB/s streaming).
func DefaultParams() Params {
	return Params{
		IssueCost:           25 * sim.Nanosecond,
		AsyncIssueCost:      45 * sim.Nanosecond,
		AsyncCompletionCost: 45 * sim.Nanosecond,
		CompletionCost:      10 * sim.Nanosecond,
		WQNotify:            20 * sim.Nanosecond,
		CQNotify:            20 * sim.Nanosecond,

		RGPPerReq:   3 * sim.Nanosecond,
		RGPPerLine:  2 * sim.Nanosecond,
		RRPPPerReq:  3 * sim.Nanosecond,
		RCPPerReply: 3 * sim.Nanosecond,
		CQWriteCost: 2 * sim.Nanosecond,
		AtomicCost:  4 * sim.Nanosecond,

		MAQEntries:       32,
		ITTEntries:       512,
		WQDepth:          128,
		TLBEntries:       32,
		TLBWays:          4,
		PageSize:         8192,
		PageWalkAccesses: 3,
		CTCache:          true,

		LinkDelay:     50 * sim.Nanosecond,
		HopDelay:      11 * sim.Nanosecond,
		LinkPsPerByte: 42 * sim.Picosecond,
		HeaderBytes:   32,

		L1: cache.Params{
			Name: "l1", Size: 32 << 10, Ways: 2,
			Latency: 1500 * sim.Picosecond, MSHRs: 32,
		},
		L2: cache.Params{
			Name: "l2", Size: 4 << 20, Ways: 16,
			Latency: 3 * sim.Nanosecond, MSHRs: 64,
		},
		DRAM: dram.DDR3_1600(),

		MsgSendCost:        30 * sim.Nanosecond,
		MsgPerSlotCost:     45 * sim.Nanosecond,
		MsgRecvCost:        30 * sim.Nanosecond,
		MsgPerSlotRecvCost: 10 * sim.Nanosecond,
		PollDetect:         20 * sim.Nanosecond,
		CopyPsPerByte:      150 * sim.Picosecond,
	}
}

// WireSize reports the on-wire size of a packet with the given payload.
func (p *Params) WireSize(payload int) int { return p.HeaderBytes + payload }

// SerTime reports link serialization time for n bytes.
func (p *Params) SerTime(n int) sim.Time { return sim.Time(n) * p.LinkPsPerByte }
