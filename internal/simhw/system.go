package simhw

import (
	"fmt"

	"sonuma/internal/cache"
	"sonuma/internal/core"
	"sonuma/internal/dram"
	"sonuma/internal/fabric"
	"sonuma/internal/mmu"
	"sonuma/internal/sim"
)

// Pkt is a timing-model packet: sizes and addresses only (the functional
// protocol lives in internal/proto and is exercised by the development
// platform).
type Pkt struct {
	Reply   bool
	Op      core.Op
	Src     core.NodeID
	Dst     core.NodeID
	Addr    uint64 // destination-node physical address of this line
	Payload int    // payload bytes carried by this packet
	Tid     int    // source-node ITT index
	LineIdx int
	// msg threads model-level bookkeeping for the messaging drivers
	// (receiver-side arrival detection); it is not protocol state.
	msg *msgState
}

// System is one simulated soNUMA machine.
type System struct {
	Eng   *sim.Engine
	P     Params
	Topo  fabric.Topology
	Nodes []*Node

	linkPorts map[fabric.Link]*sim.Port
}

// NewSystem builds an n-node system over the given topology (nil selects
// the paper's full crossbar).
func NewSystem(p Params, n int, topo fabric.Topology) *System {
	if topo == nil {
		topo = fabric.NewCrossbar(n)
	}
	if topo.Nodes() != n {
		panic(fmt.Sprintf("simhw: topology %s does not match %d nodes", topo.Name(), n))
	}
	eng := sim.New()
	s := &System{Eng: eng, P: p, Topo: topo, linkPorts: make(map[fabric.Link]*sim.Port)}
	for i := 0; i < n; i++ {
		s.Nodes = append(s.Nodes, newNode(s, core.NodeID(i)))
	}
	return s
}

// linkPort returns the serialization port of a directed link.
func (s *System) linkPort(l fabric.Link) *sim.Port {
	p, ok := s.linkPorts[l]
	if !ok {
		p = sim.NewPort(s.Eng)
		s.linkPorts[l] = p
	}
	return p
}

// Deliver models the NI-to-NI journey of a packet: egress serialization at
// the source, per-link serialization and hop delay along the deterministic
// route, ingress at the destination, then hand-off to the receiving
// pipeline (RRPP for requests, RCP for replies).
func (s *System) Deliver(pkt *Pkt) {
	src, dst := s.Nodes[pkt.Src], s.Nodes[pkt.Dst]
	ser := s.P.SerTime(s.P.WireSize(pkt.Payload))
	cursor := src.egress.Acquire(ser) + ser
	if pkt.Src != pkt.Dst {
		if _, isXbar := s.Topo.(*fabric.Crossbar); isXbar {
			// Full crossbar: non-blocking, flat latency (Table 1).
			cursor += s.P.LinkDelay
		} else {
			for _, l := range s.Topo.Route(pkt.Src, pkt.Dst) {
				start := s.linkPort(l).AcquireAt(cursor, ser)
				cursor = start + ser + s.P.HopDelay
			}
		}
	}
	start := dst.ingress.AcquireAt(cursor, ser)
	s.Eng.At(start+ser, func() {
		if pkt.Reply {
			dst.rcpArrive(pkt)
		} else {
			dst.rrppArrive(pkt)
		}
	})
}

// NodeStats are per-node model counters.
type NodeStats struct {
	WQAccepted    uint64
	LinesInjected uint64
	RequestsIn    uint64
	RepliesIn     uint64
	Completions   uint64
	TLBMisses     uint64
	PageWalks     uint64
}

// Node is one simulated soNUMA node: a core-side memory hierarchy, an RMC
// with its private L1 integrated into the same coherence domain, the MAQ,
// TLB and the three pipelines.
type Node struct {
	sys *System
	id  core.NodeID

	// Memory system: core L1s and the RMC L1 share the L2 and DRAM.
	dram   *dram.Controller
	l2     *cache.Cache
	rmcL1  *cache.Cache
	coreL1 []*cache.Cache

	// Core ports: one per hardware context (the microbenchmarks use one;
	// the SHM PageRank baseline uses several).
	cores []*sim.Port

	maq *sim.TokenPool
	tlb *mmu.TLB

	rgp  *sim.Port
	rrpp *sim.Port
	rcp  *sim.Port

	egress  *sim.Port
	ingress *sim.Port

	wq      *sim.Queue
	itt     []ittState
	ittFree []int
	ittWait []func()

	alloc uint64 // bump allocator for the node's physical address space

	Stats NodeStats
}

type ittState struct {
	remaining int
	buf       uint64
	op        core.Op
	done      func()
}

func newNode(s *System, id core.NodeID) *Node {
	n := &Node{sys: s, id: id}
	n.dram = dram.New(s.Eng, s.P.DRAM)
	adapter := &cache.DRAMAdapter{Access64: func(lineAddr uint64, write bool, done func()) {
		n.dram.Access(lineAddr, write, done)
	}}
	n.l2 = cache.New(s.Eng, s.P.L2, adapter)
	n.rmcL1 = cache.New(s.Eng, s.P.L1, n.l2)
	n.maq = sim.NewTokenPool(s.Eng, s.P.MAQEntries)
	n.tlb = mmu.NewTLB(s.P.TLBEntries, s.P.TLBWays)
	n.rgp = sim.NewPort(s.Eng)
	n.rrpp = sim.NewPort(s.Eng)
	n.rcp = sim.NewPort(s.Eng)
	n.egress = sim.NewPort(s.Eng)
	n.ingress = sim.NewPort(s.Eng)
	n.wq = sim.NewQueue(s.Eng, 0)
	n.wq.SetConsumer(n.rgpDrain)
	n.itt = make([]ittState, s.P.ITTEntries)
	for i := s.P.ITTEntries - 1; i >= 0; i-- {
		n.ittFree = append(n.ittFree, i)
	}
	n.AddCore()
	return n
}

// AddCore registers another hardware context (core) on the node and returns
// its index.
func (n *Node) AddCore() int {
	n.cores = append(n.cores, sim.NewPort(n.sys.Eng))
	n.coreL1 = append(n.coreL1, cache.New(n.sys.Eng, n.sys.P.L1, n.l2))
	return len(n.cores) - 1
}

// AddIsolatedCore registers a core with its own private L2 slice in front of
// the shared memory controller. The SHM PageRank baseline uses it to
// reproduce the paper's cache provisioning (§7.5: the multiprocessor's LLC
// equals one soNUMA node's LLC per core, "no benefits can be attributed to
// larger cache capacity") without the capacity-sharing advantage a single
// monolithic LLC would confer.
func (n *Node) AddIsolatedCore(l2p cache.Params) int {
	adapter := &cache.DRAMAdapter{Access64: func(lineAddr uint64, write bool, done func()) {
		n.dram.Access(lineAddr, write, done)
	}}
	privL2 := cache.New(n.sys.Eng, l2p, adapter)
	n.cores = append(n.cores, sim.NewPort(n.sys.Eng))
	n.coreL1 = append(n.coreL1, cache.New(n.sys.Eng, n.sys.P.L1, privL2))
	return len(n.cores) - 1
}

// Core returns core c's occupancy port (drivers charge software costs to it).
func (n *Node) Core(c int) *sim.Port { return n.cores[c] }

// Alloc reserves size bytes of the node's physical address space, aligned
// to cache lines, and returns the base address.
func (n *Node) Alloc(size int) uint64 {
	base := n.alloc
	n.alloc += uint64(core.AlignUp(size))
	return base
}

// DRAM exposes the node's memory controller (for utilization reports).
func (n *Node) DRAM() *dram.Controller { return n.dram }

// L2 exposes the node's last-level cache.
func (n *Node) L2() *cache.Cache { return n.l2 }

// RMCL1 exposes the RMC's private L1.
func (n *Node) RMCL1() *cache.Cache { return n.rmcL1 }

// TLB exposes the RMC TLB.
func (n *Node) TLB() *mmu.TLB { return n.tlb }

// CoreAccess models core c performing a blocking data access through its
// L1; done fires when the load retires.
func (n *Node) CoreAccess(c int, addr uint64, write bool, done func()) {
	n.coreL1[c].Access(addr, write, done)
}

// rmcAccess routes an RMC memory access through the MAQ and the RMC's
// private L1 (§4.3: "The MAQ handles all memory read and write operations
// ... The number of outstanding operations is limited by the number of miss
// status handling registers at the RMC's L1 cache").
func (n *Node) rmcAccess(addr uint64, write bool, done func()) {
	n.maq.Acquire(func() {
		n.rmcL1.Access(addr, write, func() {
			n.maq.Release()
			done()
		})
	})
}
