package simhw

import (
	"sonuma/internal/core"
	"sonuma/internal/mmu"
)

// WQEntry is the model-level work-queue entry: a remote operation of Length
// bytes against Addr in node Dst's physical space, with a local buffer at
// Buf. Done fires when the completion becomes visible to the issuing core
// (CQ write + coherence transfer + poll observation).
type WQEntry struct {
	Op     core.Op
	Dst    core.NodeID
	Addr   uint64
	Length int
	Buf    uint64
	Done   func()
	// msg threads messaging-driver bookkeeping into the generated
	// packets (see Pkt.msg).
	msg *msgState
}

// Post models the core having just written a WQ entry: after the coherent
// transfer of the WQ line into the RMC's L1 (WQNotify), the entry enters
// the RGP's input queue. Callers are responsible for charging the core's
// issue cost and bounding outstanding entries to WQDepth.
func (n *Node) Post(e WQEntry) {
	n.sys.Eng.After(n.sys.P.WQNotify, func() {
		n.wq.Push(e)
	})
}

// rgpDrain is the RGP consumer loop: while WQ entries and ITT slots are
// available, unroll entries into line-sized request packets (Fig. 3b RGP:
// poll WQ → fetch request → init ITT → unroll → inject).
func (n *Node) rgpDrain() {
	for n.wq.Len() > 0 {
		if len(n.ittFree) == 0 {
			// Stall until a completion frees an ITT slot.
			n.ittWait = append(n.ittWait, n.rgpDrain)
			return
		}
		e := n.wq.Pop().(WQEntry)
		n.Stats.WQAccepted++
		tid := n.ittFree[len(n.ittFree)-1]
		n.ittFree = n.ittFree[:len(n.ittFree)-1]
		nLines := core.Lines(e.Length)
		n.itt[tid] = ittState{remaining: nLines, buf: e.Buf, op: e.Op, done: e.Done}

		// Per-request processing, then per-line unrolling on the RGP
		// pipeline port.
		n.rgp.Acquire(n.sys.P.RGPPerReq)
		for i := 0; i < nLines; i++ {
			i := i
			lineLen := e.Length - i*core.CacheLineSize
			if lineLen > core.CacheLineSize {
				lineLen = core.CacheLineSize
			}
			genAt := n.rgp.Acquire(n.sys.P.RGPPerLine) + n.sys.P.RGPPerLine
			pkt := &Pkt{
				Op: e.Op, Src: n.id, Dst: e.Dst,
				Addr: e.Addr + uint64(i)*core.CacheLineSize,
				Tid:  tid, LineIdx: i, msg: e.msg,
			}
			switch e.Op {
			case core.OpWrite:
				pkt.Payload = lineLen
				// Writes fetch their payload from the local
				// buffer before injection.
				n.sys.Eng.At(genAt, func() {
					n.rmcAccess(e.Buf+uint64(i)*core.CacheLineSize, false, func() {
						n.inject(pkt)
					})
				})
				continue
			case core.OpFetchAdd, core.OpCompareSwap:
				pkt.Payload = 16 // operands ride in the request
			}
			n.sys.Eng.At(genAt, func() { n.inject(pkt) })
		}
	}
}

// inject hands a packet to the NI.
func (n *Node) inject(pkt *Pkt) {
	n.Stats.LinesInjected++
	n.sys.Deliver(pkt)
}

// translate models the RRPP's address translation: TLB hit is folded into
// RRPPPerReq; a miss costs PageWalkAccesses dependent memory accesses by
// the hardware walker through the MAQ (§4.3).
func (n *Node) translate(addr uint64, done func()) {
	vpage := addr / uint64(n.sys.P.PageSize)
	if _, hit := n.tlb.Lookup(0, vpage); hit {
		done()
		return
	}
	n.Stats.TLBMisses++
	n.tlb.Insert(0, vpage, mmu.Frame(vpage))
	// Dependent radix-walk accesses: each level must finish before the
	// next begins, and each level's entry lives on its own table line (8
	// PTEs of 8 bytes per 64-byte line at the leaf, 512x coarser per
	// upper level). Walk accesses contend for the MAQ and caches like
	// any other RMC access — the RMC shares the OS page tables through
	// the coherence hierarchy (§5.1), which is why misses stay cheap as
	// long as the table lines are cache-resident.
	var step func(level int)
	step = func(level int) {
		if level >= n.sys.P.PageWalkAccesses {
			done()
			return
		}
		n.Stats.PageWalks++
		shift := uint(9 * (n.sys.P.PageWalkAccesses - 1 - level))
		entry := vpage >> shift
		addr := ptBase + uint64(level)<<32 + (entry/8)*core.CacheLineSize + (entry%8)*8
		n.rmcAccess(addr, false, func() { step(level + 1) })
	}
	step(0)
}

// ptBase is the reserved physical region holding page-table lines.
const ptBase = 1 << 41

// rrppArrive is the remote request processing pipeline (Fig. 3b RRPP):
// decode → CT lookup → VA computation → translation → memory access →
// reply. Handling is stateless: everything needed is in the packet and
// node-local configuration.
func (n *Node) rrppArrive(pkt *Pkt) {
	n.Stats.RequestsIn++
	start := n.rrpp.Acquire(n.sys.P.RRPPPerReq) + n.sys.P.RRPPPerReq
	n.sys.Eng.At(start, func() {
		afterCT := func() {
			n.translate(pkt.Addr, func() {
				n.rrppAccess(pkt)
			})
		}
		if n.sys.P.CTCache {
			afterCT()
			return
		}
		// CT$ disabled (ablation): fetch the CT entry from memory on
		// every request.
		n.rmcAccess(ctTableBase+uint64(0), false, afterCT)
	})
}

// ctTableBase is a reserved address for the in-memory context table used by
// the CT$ ablation.
const ctTableBase = 1 << 40

// rrppAccess performs the memory side of a remote request and generates the
// single reply packet.
func (n *Node) rrppAccess(pkt *Pkt) {
	reply := func(payload int) {
		rp := &Pkt{
			Reply: true, Op: pkt.Op, Src: n.id, Dst: pkt.Src,
			Addr: pkt.Addr, Payload: payload, Tid: pkt.Tid,
			LineIdx: pkt.LineIdx, msg: pkt.msg,
		}
		n.sys.Deliver(rp)
	}
	switch pkt.Op {
	case core.OpRead:
		n.rmcAccess(pkt.Addr, false, func() { reply(core.CacheLineSize) })
	case core.OpWrite:
		n.rmcAccess(pkt.Addr, true, func() {
			if pkt.msg != nil {
				pkt.msg.lineLanded(n.sys, n)
			}
			reply(0)
		})
	case core.OpFetchAdd, core.OpCompareSwap:
		// Read-modify-write executed within the local coherence
		// hierarchy (§5.2): one access plus the atomic update cost.
		n.rmcAccess(pkt.Addr, true, func() {
			n.sys.Eng.After(n.sys.P.AtomicCost, func() { reply(8) })
		})
	}
}

// rcpArrive is the request completion pipeline (Fig. 3b RCP): decode →
// store payload (reads/atomics) → update ITT → on the final line, write the
// CQ entry and notify the core.
func (n *Node) rcpArrive(pkt *Pkt) {
	n.Stats.RepliesIn++
	start := n.rcp.Acquire(n.sys.P.RCPPerReply) + n.sys.P.RCPPerReply
	n.sys.Eng.At(start, func() {
		ent := &n.itt[pkt.Tid]
		finish := func() {
			ent.remaining--
			if ent.remaining > 0 {
				return
			}
			// Last line: write the CQ entry, free the ITT slot,
			// and wake any RGP stall.
			done := ent.done
			n.ittFree = append(n.ittFree, pkt.Tid)
			if len(n.ittWait) > 0 {
				w := n.ittWait[0]
				n.ittWait = n.ittWait[:copy(n.ittWait, n.ittWait[1:])]
				n.sys.Eng.After(0, w)
			}
			cqAt := n.rcp.Acquire(n.sys.P.CQWriteCost) + n.sys.P.CQWriteCost
			n.Stats.Completions++
			if done != nil {
				n.sys.Eng.At(cqAt+n.sys.P.CQNotify, done)
			}
		}
		if (ent.op == core.OpRead || ent.op.IsAtomic()) && pkt.Payload > 0 {
			n.rmcAccess(ent.buf+uint64(pkt.LineIdx)*core.CacheLineSize, true, finish)
			return
		}
		finish()
	})
}
