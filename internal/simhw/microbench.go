package simhw

import (
	"sonuma/internal/core"
	"sonuma/internal/fabric"
	"sonuma/internal/sim"
	"sonuma/internal/stats"
)

// This file drives the §7.2 microbenchmarks on the cycle model: sequences
// of remote reads (and writes/atomics) of varying size between node pairs,
// in synchronous (latency) and asynchronous windowed (bandwidth) modes,
// single- and double-sided.

// remote buffers: the target buffer "exceeds the LLC capacity in both
// setups" (§7.2), so remote accesses stream from DRAM; the local buffer is
// small and stays cache-resident.
const (
	remoteBufSize = 16 << 20
	localBufSize  = 256 << 10
)

// syncDriver issues back-to-back synchronous operations from one core.
type syncDriver struct {
	sys        *System
	n          *Node
	dst        core.NodeID
	op         core.Op
	size       int
	stride     int // remote-offset advance per op (defaults to size)
	span       int // remote window the offset wraps in (defaults to remoteBufSize)
	remoteBase uint64
	localBase  uint64
	offset     uint64
	warmup     int
	ops        int
	issued     int
	Lat        stats.Sample
	onDone     func()
}

func (d *syncDriver) start() { d.next() }

func (d *syncDriver) next() {
	if d.issued >= d.warmup+d.ops {
		if d.onDone != nil {
			d.onDone()
		}
		return
	}
	d.issued++
	measured := d.issued > d.warmup
	p := &d.sys.P
	t0 := d.n.Core(0).Acquire(p.IssueCost)
	issueAt := t0 + p.IssueCost
	addr := d.remoteBase + d.offset
	lbuf := d.localBase + localOff(d.offset, d.size)
	adv := d.stride
	if adv <= 0 {
		adv = core.AlignUp(d.size)
	}
	span := d.span
	if span <= 0 {
		span = remoteBufSize
	}
	d.offset = (d.offset + uint64(adv)) % uint64(span)
	d.sys.Eng.At(issueAt, func() {
		d.n.Post(WQEntry{
			Op: d.op, Dst: d.dst, Addr: addr, Length: d.size, Buf: lbuf,
			Done: func() {
				if measured {
					d.Lat.Add((d.sys.Eng.Now() - t0).Nanoseconds())
				}
				free := d.n.Core(0).Acquire(p.CompletionCost) + p.CompletionCost
				d.sys.Eng.At(free, d.next)
			},
		})
	})
}

func uint64min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// localOff cycles a request of size bytes through the local buffer.
func localOff(offset uint64, size int) uint64 {
	span := uint64(localBufSize) - uint64min(uint64(size), localBufSize)
	if span == 0 {
		return 0
	}
	return offset % span
}

// LatencyResult is one point of Fig. 7a/7c-style sweeps.
type LatencyResult struct {
	Size    int
	MeanNs  float64
	P99Ns   float64
	Samples int
	// TLBHitRate is the destination RMC's translation hit rate over the
	// run (ablation studies).
	TLBHitRate float64
}

// ReadLatency measures synchronous remote read latency for one request
// size. With doubleSided set, both nodes read from each other concurrently
// and the reported latency is node 0's (§7.2).
func ReadLatency(p Params, size int, doubleSided bool, ops int) LatencyResult {
	return opLatency(p, core.OpRead, size, doubleSided, ops)
}

// WriteLatency measures synchronous remote write latency.
func WriteLatency(p Params, size int, doubleSided bool, ops int) LatencyResult {
	return opLatency(p, core.OpWrite, size, doubleSided, ops)
}

// AtomicLatency measures synchronous remote fetch-and-add latency (§7.4).
func AtomicLatency(p Params, ops int) LatencyResult {
	return opLatency(p, core.OpFetchAdd, 8, false, ops)
}

func opLatency(p Params, op core.Op, size int, doubleSided bool, ops int) LatencyResult {
	sys := NewSystem(p, 2, nil)
	drivers := []*syncDriver{newSyncDriver(sys, 0, 1, op, size, ops)}
	if doubleSided {
		drivers = append(drivers, newSyncDriver(sys, 1, 0, op, size, ops))
	}
	for _, d := range drivers {
		d.start()
	}
	sys.Eng.Run()
	d := drivers[0]
	return LatencyResult{Size: size, MeanNs: d.Lat.Mean(), P99Ns: d.Lat.Percentile(99), Samples: d.Lat.N()}
}

// LatencyOpts customize a latency run for the ablation studies.
type LatencyOpts struct {
	// Stride overrides the remote-offset advance per op (e.g. one page
	// per op to defeat the RMC TLB). 0 keeps sequential accesses.
	Stride int
	// Span bounds the remote window the offset cycles through, setting
	// the page working set (0 = the full remote buffer).
	Span int
	// Topo selects the fabric (nil = 2-node crossbar); Src/Dst choose
	// the measured pair.
	Topo     fabric.Topology
	Src, Dst int
	// Ops is the measured operation count (default 100).
	Ops int
}

// ReadLatencyWith measures synchronous read latency under custom options.
func ReadLatencyWith(p Params, size int, o LatencyOpts) LatencyResult {
	nodes := 2
	if o.Topo != nil {
		nodes = o.Topo.Nodes()
	}
	if o.Ops <= 0 {
		o.Ops = 100
	}
	if o.Dst == 0 && o.Src == 0 {
		o.Dst = 1
	}
	sys := NewSystem(p, nodes, o.Topo)
	d := newSyncDriver(sys, o.Src, o.Dst, core.OpRead, size, o.Ops)
	d.stride = o.Stride
	d.span = o.Span
	d.start()
	sys.Eng.Run()
	return LatencyResult{
		Size: size, MeanNs: d.Lat.Mean(), P99Ns: d.Lat.Percentile(99),
		Samples: d.Lat.N(), TLBHitRate: sys.Nodes[o.Dst].TLB().HitRate(),
	}
}

func newSyncDriver(sys *System, src, dst int, op core.Op, size, ops int) *syncDriver {
	// Remote target range lives on the destination; the local buffer on
	// the source. Allocation order is symmetric so addresses differ
	// across nodes without aliasing within one node.
	remote := sys.Nodes[dst].Alloc(remoteBufSize)
	local := sys.Nodes[src].Alloc(localBufSize)
	return &syncDriver{
		sys: sys, n: sys.Nodes[src], dst: core.NodeID(dst), op: op,
		size: size, remoteBase: remote, localBase: local,
		warmup: 20, ops: ops,
	}
}

// asyncDriver issues windowed asynchronous operations from one core,
// modelling the Fig. 4 pipeline: per-operation issue cost, per-completion
// processing cost, bounded by the WQ depth.
type asyncDriver struct {
	sys        *System
	n          *Node
	dst        core.NodeID
	op         core.Op
	size       int
	window     int
	total      int
	remoteBase uint64
	localBase  uint64
	offset     uint64
	issued     int
	completed  int
	inflight   int
	started    bool
	startAt    sim.Time
	endAt      sim.Time
	onDone     func()
}

func (d *asyncDriver) pump() {
	p := &d.sys.P
	for d.issued < d.total && d.inflight < d.window {
		d.issued++
		d.inflight++
		t := d.n.Core(0).Acquire(p.AsyncIssueCost)
		if !d.started {
			d.started = true
			d.startAt = t
		}
		addr := d.remoteBase + d.offset
		lbuf := d.localBase + localOff(d.offset, d.size)
		d.offset = (d.offset + uint64(core.AlignUp(d.size))) % remoteBufSize
		issueAt := t + p.AsyncIssueCost
		d.sys.Eng.At(issueAt, func() {
			d.n.Post(WQEntry{
				Op: d.op, Dst: d.dst, Addr: addr, Length: d.size, Buf: lbuf,
				Done: func() {
					free := d.n.Core(0).Acquire(p.AsyncCompletionCost) + p.AsyncCompletionCost
					d.sys.Eng.At(free, func() {
						d.inflight--
						d.completed++
						if d.completed == d.total {
							d.endAt = d.sys.Eng.Now()
							if d.onDone != nil {
								d.onDone()
							}
							return
						}
						d.pump()
					})
				},
			})
		})
	}
}

// BandwidthResult is one point of Fig. 7b-style sweeps.
type BandwidthResult struct {
	Size      int
	GBps      float64
	Gbps      float64
	MopsPerS  float64
	DurationS float64
}

// ReadBandwidth measures asynchronous remote read throughput for one
// request size; with doubleSided the aggregate of both directions is
// reported, as in Fig. 7b.
func ReadBandwidth(p Params, size int, doubleSided bool, totalBytes int) BandwidthResult {
	sys := NewSystem(p, 2, nil)
	total := totalBytes / size
	if total < 64 {
		total = 64
	}
	mk := func(src, dst int) *asyncDriver {
		remote := sys.Nodes[dst].Alloc(remoteBufSize)
		local := sys.Nodes[src].Alloc(localBufSize)
		return &asyncDriver{
			sys: sys, n: sys.Nodes[src], dst: core.NodeID(dst), op: core.OpRead,
			size: size, window: p.WQDepth, total: total,
			remoteBase: remote, localBase: local,
		}
	}
	drivers := []*asyncDriver{mk(0, 1)}
	if doubleSided {
		drivers = append(drivers, mk(1, 0))
	}
	for _, d := range drivers {
		d.pump()
	}
	sys.Eng.Run()
	var bytes int64
	var maxDur sim.Time
	for _, d := range drivers {
		bytes += int64(d.total) * int64(d.size)
		if dur := d.endAt - d.startAt; dur > maxDur {
			maxDur = dur
		}
	}
	secs := maxDur.Seconds()
	return BandwidthResult{
		Size:      size,
		GBps:      stats.GBps(bytes, secs),
		Gbps:      stats.Gbps(bytes, secs),
		MopsPerS:  float64(total*len(drivers)) / secs / 1e6,
		DurationS: secs,
	}
}

// IOPS reports single-core remote-operation rate at 64-byte granularity
// (Table 2's IOPS row).
func IOPS(p Params, totalOps int) float64 {
	r := ReadBandwidth(p, core.CacheLineSize, false, totalOps*core.CacheLineSize)
	return r.MopsPerS * 1e6
}
