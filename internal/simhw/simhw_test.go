package simhw

import (
	"testing"

	"sonuma/internal/fabric"
	"sonuma/internal/graph"
	"sonuma/internal/sim"
)

const testOps = 60

func TestReadLatencyBand(t *testing.T) {
	p := DefaultParams()
	r := ReadLatency(p, 64, false, testOps)
	// §7.2: "the latency is around 300ns" for small requests, within a
	// factor of 4 of local DRAM (~60-80ns).
	if r.MeanNs < 220 || r.MeanNs > 400 {
		t.Fatalf("64B read latency %.1fns, want ≈300ns", r.MeanNs)
	}
	big := ReadLatency(p, 8192, false, testOps)
	// Fig. 7a tops out around 1.2µs at 8KB.
	if big.MeanNs < 800 || big.MeanNs > 1700 {
		t.Fatalf("8KB read latency %.1fns, want ≈1.1µs", big.MeanNs)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for _, s := range []int{64, 256, 1024, 4096, 8192} {
		r := ReadLatency(p, s, false, 40)
		if r.MeanNs < prev {
			t.Fatalf("latency decreased at %dB: %.1f < %.1f", s, r.MeanNs, prev)
		}
		prev = r.MeanNs
	}
}

func TestDoubleSidedLatencyNotBetter(t *testing.T) {
	p := DefaultParams()
	single := ReadLatency(p, 8192, false, 40)
	double := ReadLatency(p, 8192, true, 40)
	if double.MeanNs < single.MeanNs*0.98 {
		t.Fatalf("double-sided 8KB latency %.1f better than single %.1f", double.MeanNs, single.MeanNs)
	}
}

func TestBandwidthBands(t *testing.T) {
	p := DefaultParams()
	small := ReadBandwidth(p, 64, false, 1<<20)
	// Fig. 7b: ≈10M ops/s at 64B (per-core issue bound).
	if small.MopsPerS < 8 || small.MopsPerS > 14 {
		t.Fatalf("64B rate %.1f Mops, want ≈10-11M", small.MopsPerS)
	}
	big := ReadBandwidth(p, 8192, false, 4<<20)
	// Fig. 7b: ≈9.6 GB/s at page-sized requests (DRAM channel bound).
	if big.GBps < 8.5 || big.GBps > 11 {
		t.Fatalf("8KB bandwidth %.2f GB/s, want ≈9.6", big.GBps)
	}
}

func TestDoubleSidedBandwidthDoubles(t *testing.T) {
	p := DefaultParams()
	single := ReadBandwidth(p, 8192, false, 2<<20)
	double := ReadBandwidth(p, 8192, true, 2<<20)
	ratio := double.GBps / single.GBps
	// §7.2: "the double-sided test delivers twice the single-sided
	// bandwidth" thanks to the decoupled pipelines.
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("double/single bandwidth ratio %.2f, want ≈2", ratio)
	}
}

func TestAtomicLatencyNearRead(t *testing.T) {
	p := DefaultParams()
	read := ReadLatency(p, 64, false, testOps)
	atomic := AtomicLatency(p, testOps)
	// §7.4: fetch-and-add ≈ remote read latency.
	ratio := atomic.MeanNs / read.MeanNs
	if ratio < 0.9 || ratio > 1.2 {
		t.Fatalf("atomic/read ratio %.2f", ratio)
	}
}

func TestWriteLatencyNearRead(t *testing.T) {
	p := DefaultParams()
	read := ReadLatency(p, 64, false, testOps)
	write := WriteLatency(p, 64, false, testOps)
	if write.MeanNs < read.MeanNs*0.7 || write.MeanNs > read.MeanNs*1.5 {
		t.Fatalf("write %.1f vs read %.1f", write.MeanNs, read.MeanNs)
	}
}

func TestDeterminism(t *testing.T) {
	p := DefaultParams()
	a := ReadLatency(p, 512, true, 50)
	b := ReadLatency(p, 512, true, 50)
	if a.MeanNs != b.MeanNs || a.P99Ns != b.P99Ns {
		t.Fatalf("nondeterministic results: %.3f vs %.3f", a.MeanNs, b.MeanNs)
	}
	ba := ReadBandwidth(p, 4096, true, 1<<20)
	bb := ReadBandwidth(p, 4096, true, 1<<20)
	if ba.GBps != bb.GBps {
		t.Fatalf("nondeterministic bandwidth: %v vs %v", ba.GBps, bb.GBps)
	}
}

func TestIOPSBand(t *testing.T) {
	p := DefaultParams()
	iops := IOPS(p, 10000) / 1e6
	// Table 2: ≈10.9M small remote ops per second per core.
	if iops < 8 || iops > 14 {
		t.Fatalf("IOPS %.1fM, want ≈11M", iops)
	}
}

func TestTLBSizeMatters(t *testing.T) {
	small := DefaultParams()
	small.TLBEntries, small.TLBWays = 1, 1
	large := DefaultParams()
	large.TLBEntries, large.TLBWays = 4096, 4
	// Cycle a 64-page working set at page stride: the large TLB hits
	// after one lap, the 1-entry TLB walks on every request.
	opts := LatencyOpts{Stride: small.PageSize, Span: 64 * small.PageSize, Ops: 200}
	rs := ReadLatencyWith(small, 64, opts)
	rl := ReadLatencyWith(large, 64, opts)
	if rs.TLBHitRate > 0.05 {
		t.Fatalf("1-entry TLB hit rate %.2f under page stride, want ≈0", rs.TLBHitRate)
	}
	if rl.TLBHitRate < 0.5 {
		t.Fatalf("4096-entry TLB hit rate %.2f, want high", rl.TLBHitRate)
	}
	// Walks traverse locally cached page tables (§5.1's coherent
	// integration), so the latency penalty is real but small.
	if rs.MeanNs <= rl.MeanNs {
		t.Fatalf("walking on every request (%.1fns) not slower than hitting (%.1fns)", rs.MeanNs, rl.MeanNs)
	}
}

func TestCTCacheMatters(t *testing.T) {
	on := DefaultParams()
	off := DefaultParams()
	off.CTCache = false
	ron := ReadLatency(on, 64, false, testOps)
	roff := ReadLatency(off, 64, false, testOps)
	if roff.MeanNs <= ron.MeanNs {
		t.Fatalf("disabling the CT$ did not hurt: %.1f vs %.1f", roff.MeanNs, ron.MeanNs)
	}
}

func TestMAQDepthGatesBandwidth(t *testing.T) {
	shallow := DefaultParams()
	shallow.MAQEntries = 2
	shallow.L1.MSHRs = 2
	deep := DefaultParams()
	bs := ReadBandwidth(shallow, 8192, false, 1<<20)
	bd := ReadBandwidth(deep, 8192, false, 1<<20)
	if bs.GBps > bd.GBps*0.5 {
		t.Fatalf("2-entry MAQ reaches %.2f GB/s vs %.2f with 32; should throttle hard", bs.GBps, bd.GBps)
	}
}

func TestTopologyLatencyOrdering(t *testing.T) {
	p := DefaultParams()
	xbar := ReadLatencyWith(p, 64, LatencyOpts{Topo: fabric.NewCrossbar(16), Src: 0, Dst: 15, Ops: 50})
	// Worst-case pair on a 4x4 torus: 4 hops.
	torus := ReadLatencyWith(p, 64, LatencyOpts{Topo: fabric.NewTorus2D(4, 4), Src: 0, Dst: 10, Ops: 50})
	// Nearest neighbor on the torus: 1 hop at 11ns beats the flat 50ns.
	near := ReadLatencyWith(p, 64, LatencyOpts{Topo: fabric.NewTorus2D(4, 4), Src: 0, Dst: 1, Ops: 50})
	if near.MeanNs >= xbar.MeanNs {
		t.Fatalf("1-hop torus (%.1f) not faster than crossbar (%.1f)", near.MeanNs, xbar.MeanNs)
	}
	if torus.MeanNs <= near.MeanNs {
		t.Fatalf("4-hop torus (%.1f) not slower than 1-hop (%.1f)", torus.MeanNs, near.MeanNs)
	}
}

func TestITTExhaustionRecovers(t *testing.T) {
	p := DefaultParams()
	p.ITTEntries = 4 // far below the async window
	r := ReadBandwidth(p, 64, false, 1<<18)
	if r.GBps <= 0 {
		t.Fatal("run with tiny ITT did not complete")
	}
}

func TestSendRecvShapes(t *testing.T) {
	p := DefaultParams()
	pushSmall := SendRecvLatency(p, 64, -1, 30)
	pullSmall := SendRecvLatency(p, 64, 0, 30)
	if pushSmall.MeanNs >= pullSmall.MeanNs {
		t.Fatalf("push (%.1f) not faster than pull (%.1f) at 64B", pushSmall.MeanNs, pullSmall.MeanNs)
	}
	// §7.3: minimal half-duplex latency ≈340ns.
	if pushSmall.MeanNs < 250 || pushSmall.MeanNs > 500 {
		t.Fatalf("min half-duplex latency %.1fns, want ≈340-400", pushSmall.MeanNs)
	}
	pushBig := SendRecvBandwidth(p, 8192, -1, 100)
	pullBig := SendRecvBandwidth(p, 8192, 0, 100)
	if pullBig.Gbps <= pushBig.Gbps {
		t.Fatalf("pull (%.1f Gbps) not faster than push (%.1f) at 8KB", pullBig.Gbps, pushBig.Gbps)
	}
	// §7.3: bandwidth exceeds 10Gbps with 4KB messages.
	combo := SendRecvBandwidth(p, 4096, 256, 100)
	if combo.Gbps < 10 {
		t.Fatalf("4KB threshold bandwidth %.1f Gbps, want >10", combo.Gbps)
	}
	// The threshold mechanism tracks the better of the two.
	comboSmall := SendRecvLatency(p, 64, 256, 30)
	if comboSmall.MeanNs > pushSmall.MeanNs*1.1 {
		t.Fatalf("threshold at 64B (%.1f) far from push (%.1f)", comboSmall.MeanNs, pushSmall.MeanNs)
	}
}

func TestPageRankSpeedupShape(t *testing.T) {
	p := DefaultParams()
	cfg := DefaultPRConfig()
	g := graph.GenPowerLaw(12000, 8, 1.8, 42)
	base := PageRankSHM(p, cfg, g, graph.RandomPartition(g, 1, 7), 1)
	pt := graph.RandomPartition(g, 8, 7)
	shm := PageRankSHM(p, cfg, g, pt, 8)
	bulk := PageRankBulk(p, cfg, g, pt)
	fine := PageRankFineGrain(p, cfg, g, pt)
	sSHM := base.SuperstepS / shm.SuperstepS
	sBulk := base.SuperstepS / bulk.SuperstepS
	sFine := base.SuperstepS / fine.SuperstepS
	// Fig. 9 left: SHM ≈ bulk, both well above fine-grain.
	if sSHM < 2 || sSHM > 8.5 || sBulk < 2 || sBulk > 8.5 {
		t.Fatalf("SHM/bulk speedups out of band: %.2f / %.2f", sSHM, sBulk)
	}
	if ratio := sSHM / sBulk; ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("SHM (%.2f) and bulk (%.2f) should be near identical", sSHM, sBulk)
	}
	if sFine >= sBulk*0.8 {
		t.Fatalf("fine-grain (%.2f) should trail bulk (%.2f) clearly", sFine, sBulk)
	}
	if sFine <= 0.2 {
		t.Fatalf("fine-grain speedup %.2f implausibly low", sFine)
	}
	// Bulk's shuffle is a small fraction of the superstep (§7.5:
	// amortized by wide transfers).
	if bulk.ShuffleS > bulk.ComputeS {
		t.Fatalf("shuffle %.3fs exceeds compute %.3fs", bulk.ShuffleS, bulk.ComputeS)
	}
}

func TestPageRankDeterminism(t *testing.T) {
	p := DefaultParams()
	cfg := DefaultPRConfig()
	g := graph.GenPowerLaw(3000, 6, 1.8, 5)
	pt := graph.RandomPartition(g, 4, 3)
	a := PageRankFineGrain(p, cfg, g, pt)
	b := PageRankFineGrain(p, cfg, g, pt)
	if a.SuperstepS != b.SuperstepS {
		t.Fatalf("fine-grain model nondeterministic: %v vs %v", a.SuperstepS, b.SuperstepS)
	}
}

func TestPCIeAttachmentHurts(t *testing.T) {
	coherent := DefaultParams()
	pcie := DefaultParams()
	pcie.WQNotify += 450 * sim.Nanosecond
	pcie.CQNotify += 450 * sim.Nanosecond
	rc := ReadLatency(coherent, 64, false, testOps)
	rp := ReadLatency(pcie, 64, false, testOps)
	// §2.2/§7.4: PCIe crossings multiply small-op latency severalfold;
	// this is the core architectural argument for the RMC.
	if rp.MeanNs < rc.MeanNs+800 {
		t.Fatalf("PCIe attachment barely hurts: %.1f vs %.1f", rp.MeanNs, rc.MeanNs)
	}
}

func TestWireSizeAndSerialization(t *testing.T) {
	p := DefaultParams()
	if p.WireSize(64) != 96 {
		t.Fatalf("wire size %d", p.WireSize(64))
	}
	if p.SerTime(1000) <= 0 {
		t.Fatal("serialization time not positive")
	}
}
