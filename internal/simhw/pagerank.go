package simhw

import (
	"sonuma/internal/core"
	"sonuma/internal/graph"
	"sonuma/internal/sim"
)

// This file models the §7.5 application study on the cycle model: one
// PageRank superstep under the three implementations of the paper —
// SHM(pthreads) on a cache-coherent multiprocessor, soNUMA(bulk) with
// superstep-end shuffles, and soNUMA(fine-grain) with one remote read per
// cross-partition edge. The paper likewise simulates a single superstep
// (§7.5: "On the simulator, we run a single superstep ... because of the
// high execution time of the cycle-accurate model").
//
// Scale note: the paper's Twitter subset is far larger than the machines'
// aggregate LLC, so vertex lookups are memory-bound in every variant. To
// keep the discrete-event simulation tractable we shrink the graph AND the
// caches together (PRConfig.ScaleDown divides the cache sizes), preserving
// the cache-starved regime — and therefore the speedup shapes — at
// thousands of times fewer events. EXPERIMENTS.md records this
// substitution.

// PRConfig configures the PageRank model.
type PRConfig struct {
	// VertexBytes is the in-memory footprint of one vertex record
	// (rank[2] + out_degree, as in Fig. 4).
	VertexBytes int
	// VertexCost is core work per vertex (loop bookkeeping + rank init).
	VertexCost sim.Time
	// EdgeCost is core work per edge (the rank accumulation itself).
	EdgeCost sim.Time
	// Window bounds outstanding async reads (fine-grain and shuffle).
	Window int
	// ChunkBytes is the bulk-shuffle transfer granularity (multi-line
	// requests exploiting spatial locality, §7.5).
	ChunkBytes int
	// ScaleDown divides the cache sizes, matching the scaled-down graph.
	ScaleDown int
}

// DefaultPRConfig returns the model's standard configuration.
func DefaultPRConfig() PRConfig {
	return PRConfig{
		VertexBytes: 16,
		VertexCost:  4 * sim.Nanosecond,
		EdgeCost:    2 * sim.Nanosecond,
		Window:      128,
		ChunkBytes:  8192,
		ScaleDown:   64,
	}
}

func (c PRConfig) scaled(p Params, cores int) Params {
	p.L1.Size = maxIntPR(p.L1.Size/c.ScaleDown, 1024)
	// The SHM baseline provisions the LLC at one soNUMA node's worth per
	// core so no benefit comes from extra cache capacity (§7.5).
	p.L2.Size = maxIntPR(p.L2.Size/c.ScaleDown, 8192) * cores
	return p
}

func maxIntPR(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// rendezvous synchronizes the BSP phases: the n-th arrival releases every
// waiter after the barrier latency (announce write + remote poll).
type rendezvous struct {
	sys     *System
	n       int
	lat     sim.Time
	arrived int
	waiters []func()
	latest  sim.Time
}

func newRendezvous(sys *System, n int) *rendezvous {
	return &rendezvous{sys: sys, n: n, lat: 2*sys.P.LinkDelay + 300*sim.Nanosecond}
}

// arrive registers a participant's arrival; cont runs once all have arrived.
func (r *rendezvous) arrive(cont func()) {
	r.arrived++
	if now := r.sys.Eng.Now(); now > r.latest {
		r.latest = now
	}
	r.waiters = append(r.waiters, cont)
	if r.arrived == r.n {
		release := r.latest + r.lat
		for _, w := range r.waiters {
			r.sys.Eng.At(release, w)
		}
		r.waiters = nil
	}
}

// prCore walks one partition's vertices and edges sequentially on one core,
// dispatching each edge through accessEdge (local cache access or async
// remote read).
type prCore struct {
	sys     *System
	node    *Node
	coreIdx int
	cfg     *PRConfig
	g       *graph.Graph
	verts   []int32
	vi      int
	ei      int

	accessEdge func(c *prCore, nb int32, cont func())
	onDone     func()
	loopDone   bool
	doneFired  bool

	// fine-grain remote-read state
	remoteTarget func(nb int32) (core.NodeID, uint64)
	lbuf         uint64
	lbufCursor   uint64
	inflight     int
	window       int
	waiting      bool
	pendingNb    int32
	pendingCont  func()
}

func (c *prCore) charge(d sim.Time, fn func()) {
	at := c.node.Core(c.coreIdx).Acquire(d) + d
	c.sys.Eng.At(at, fn)
}

func (c *prCore) step() {
	if c.vi >= len(c.verts) {
		c.loopDone = true
		c.maybeFinish()
		return
	}
	v := int(c.verts[c.vi])
	nbs := c.g.Neighbors(v)
	if c.ei == 0 {
		c.charge(c.cfg.VertexCost, func() { c.stepEdges(nbs) })
		return
	}
	c.stepEdges(nbs)
}

func (c *prCore) stepEdges(nbs []int32) {
	if c.ei >= len(nbs) {
		c.vi++
		c.ei = 0
		c.step()
		return
	}
	nb := nbs[c.ei]
	c.ei++
	c.accessEdge(c, nb, c.step)
}

func (c *prCore) maybeFinish() {
	if !c.loopDone || c.inflight > 0 || c.doneFired {
		return
	}
	c.doneFired = true
	c.onDone()
}

// localEdge reads a neighbor's record through the core's cache hierarchy.
func localEdge(addr func(nb int32) uint64) func(*prCore, int32, func()) {
	return func(c *prCore, nb int32, cont func()) {
		c.node.CoreAccess(c.coreIdx, addr(nb), false, func() {
			c.charge(c.cfg.EdgeCost, cont)
		})
	}
}

// mixedEdge dispatches by ownership: intra-node edges use shared memory,
// cross-partition edges become asynchronous remote reads — the fine-grain
// programming model of Fig. 4.
func mixedEdge(me core.NodeID, owner func(nb int32) core.NodeID, local func(nb int32) uint64) func(*prCore, int32, func()) {
	le := localEdge(local)
	return func(c *prCore, nb int32, cont func()) {
		if owner(nb) == me {
			le(c, nb, cont)
			return
		}
		if c.inflight >= c.window {
			// WQ window full: the edge loop stalls until a
			// completion frees a slot (rmc_wait_for_slot).
			c.waiting = true
			c.pendingNb, c.pendingCont = nb, cont
			return
		}
		c.issueRemote(nb, cont)
	}
}

func (c *prCore) issueRemote(nb int32, cont func()) {
	dst, addr := c.remoteTarget(nb)
	c.inflight++
	p := &c.sys.P
	lb := c.lbuf + (c.lbufCursor%4096)*uint64(c.cfg.VertexBytes)
	c.lbufCursor++
	c.charge(p.AsyncIssueCost, func() {
		c.node.Post(WQEntry{
			Op: core.OpRead, Dst: dst, Addr: addr, Length: c.cfg.VertexBytes,
			Buf: lb, Done: func() {
				// CQ processing + the deferred rank accumulation
				// (the pagerank_async callback).
				c.charge(p.AsyncCompletionCost+c.cfg.EdgeCost, func() {
					c.inflight--
					if c.waiting {
						c.waiting = false
						nb2, cont2 := c.pendingNb, c.pendingCont
						c.pendingCont = nil
						c.issueRemote(nb2, cont2)
						return
					}
					c.maybeFinish()
				})
			},
		})
		cont() // asynchronous issue: the edge loop moves on
	})
}

// PageRankResult is one superstep's timing.
type PageRankResult struct {
	Threads    int
	SuperstepS float64
	ComputeS   float64 // slowest participant's local phase
	ShuffleS   float64 // bulk only
}

// PageRankSHM models the pthreads baseline: `cores` threads on one
// cache-coherent multiprocessor, all edges local, barrier at superstep end.
// Each core owns an LLC slice equal to one soNUMA node's LLC (§7.5's
// provisioning), and all cores share one memory channel.
func PageRankSHM(p Params, cfg PRConfig, g *graph.Graph, pt *graph.Partition, cores int) PageRankResult {
	sp := cfg.scaled(p, 1)
	// The multiprocessor's memory system scales with its core count (a
	// multi-socket server has one channel per socket pair at least),
	// matching the aggregate bandwidth of `cores` soNUMA nodes.
	sp.DRAM.Banks *= cores
	sp.DRAM.BurstTime /= sim.Time(cores)
	if sp.DRAM.BurstTime < 1 {
		sp.DRAM.BurstTime = 1
	}
	sys := NewSystem(sp, 1, nil)
	n := sys.Nodes[0]
	coreIdx := make([]int, cores)
	for i := 0; i < cores; i++ {
		coreIdx[i] = n.AddIsolatedCore(sp.L2)
	}
	base := n.Alloc(g.N * cfg.VertexBytes)
	addr := func(nb int32) uint64 { return base + uint64(nb)*uint64(cfg.VertexBytes) }
	var end sim.Time
	for c := 0; c < cores; c++ {
		pc := &prCore{
			sys: sys, node: n, coreIdx: coreIdx[c], cfg: &cfg, g: g,
			verts:      pt.Parts[c],
			accessEdge: localEdge(addr),
		}
		pc.onDone = func() {
			if now := sys.Eng.Now(); now > end {
				end = now
			}
		}
		pc.step()
	}
	sys.Eng.Run()
	return PageRankResult{Threads: cores, SuperstepS: end.Seconds(), ComputeS: end.Seconds()}
}

// PageRankFineGrain models the soNUMA(fine-grain) variant: one node per
// partition, one asynchronous remote read per cross-partition edge.
func PageRankFineGrain(p Params, cfg PRConfig, g *graph.Graph, pt *graph.Partition) PageRankResult {
	nodes := pt.P
	sp := cfg.scaled(p, 1)
	sys := NewSystem(sp, nodes, nil)
	bases := make([]uint64, nodes)
	lbufs := make([]uint64, nodes)
	for i := 0; i < nodes; i++ {
		bases[i] = sys.Nodes[i].Alloc(maxIntPR(len(pt.Parts[i]), 1) * cfg.VertexBytes)
		lbufs[i] = sys.Nodes[i].Alloc(4096 * cfg.VertexBytes)
	}
	barrier := newRendezvous(sys, nodes)
	var end sim.Time
	for i := 0; i < nodes; i++ {
		me := core.NodeID(i)
		pc := &prCore{
			sys: sys, node: sys.Nodes[i], coreIdx: 0, cfg: &cfg, g: g,
			verts: pt.Parts[i], window: cfg.Window,
			lbuf: lbufs[i],
			remoteTarget: func(nb int32) (core.NodeID, uint64) {
				o := pt.Owner[nb]
				return core.NodeID(o), bases[o] + uint64(pt.LocalIdx[nb])*uint64(cfg.VertexBytes)
			},
		}
		pc.accessEdge = mixedEdge(me,
			func(nb int32) core.NodeID { return core.NodeID(pt.Owner[nb]) },
			func(nb int32) uint64 { return bases[i] + uint64(pt.LocalIdx[nb])*uint64(cfg.VertexBytes) },
		)
		pc.onDone = func() {
			barrier.arrive(func() {
				if now := sys.Eng.Now(); now > end {
					end = now
				}
			})
		}
		pc.step()
	}
	sys.Eng.Run()
	return PageRankResult{Threads: nodes, SuperstepS: end.Seconds(), ComputeS: barrier.latest.Seconds()}
}

// PageRankBulk models the soNUMA(bulk) variant: compute over a local
// mirror, then an all-to-all shuffle of rank arrays with multi-line reads
// after the barrier (§7.5: "a concurrent shuffle phase limited only by the
// bisection bandwidth").
func PageRankBulk(p Params, cfg PRConfig, g *graph.Graph, pt *graph.Partition) PageRankResult {
	nodes := pt.P
	sp := cfg.scaled(p, 1)
	sys := NewSystem(sp, nodes, nil)
	mirrors := make([]uint64, nodes)
	lbufs := make([]uint64, nodes)
	for i := 0; i < nodes; i++ {
		mirrors[i] = sys.Nodes[i].Alloc(g.N * cfg.VertexBytes)
		lbufs[i] = sys.Nodes[i].Alloc(1 << 20)
	}
	computeBar := newRendezvous(sys, nodes)
	endBar := newRendezvous(sys, nodes)
	var end, computeEnd sim.Time
	for i := 0; i < nodes; i++ {
		i := i
		pc := &prCore{
			sys: sys, node: sys.Nodes[i], coreIdx: 0, cfg: &cfg, g: g,
			verts:      pt.Parts[i],
			accessEdge: localEdge(func(nb int32) uint64 { return mirrors[i] + uint64(nb)*uint64(cfg.VertexBytes) }),
		}
		pc.onDone = func() {
			computeBar.arrive(func() {
				if computeBar.latest > computeEnd {
					computeEnd = computeBar.latest
				}
				bulkShuffle(sys, i, cfg, pt, mirrors, lbufs[i], func() {
					endBar.arrive(func() {
						if now := sys.Eng.Now(); now > end {
							end = now
						}
					})
				})
			})
		}
		pc.step()
	}
	sys.Eng.Run()
	res := PageRankResult{Threads: nodes, SuperstepS: end.Seconds(), ComputeS: computeEnd.Seconds()}
	res.ShuffleS = res.SuperstepS - res.ComputeS
	return res
}

// bulkShuffle pulls every peer's rank slice into the local mirror with
// windowed multi-line reads (one rmc_read_async per chunk, as in §7.5's
// bulk implementation).
func bulkShuffle(sys *System, me int, cfg PRConfig, pt *graph.Partition, mirrors []uint64, lbuf uint64, done func()) {
	type chunk struct {
		dst  core.NodeID
		addr uint64
		len  int
	}
	var chunks []chunk
	for p := 0; p < pt.P; p++ {
		if p == me {
			continue
		}
		bytes := len(pt.Parts[p]) * cfg.VertexBytes
		for off := 0; off < bytes; off += cfg.ChunkBytes {
			l := cfg.ChunkBytes
			if off+l > bytes {
				l = bytes - off
			}
			chunks = append(chunks, chunk{dst: core.NodeID(p), addr: mirrors[p] + uint64(off), len: l})
		}
	}
	n := sys.Nodes[me]
	inflight, next, completed := 0, 0, 0
	var pump func()
	pump = func() {
		for next < len(chunks) && inflight < cfg.Window {
			c := chunks[next]
			next++
			inflight++
			at := n.Core(0).Acquire(sys.P.AsyncIssueCost) + sys.P.AsyncIssueCost
			sys.Eng.At(at, func() {
				n.Post(WQEntry{
					Op: core.OpRead, Dst: c.dst, Addr: c.addr, Length: c.len,
					Buf: lbuf + uint64(next%8)*uint64(cfg.ChunkBytes),
					Done: func() {
						free := n.Core(0).Acquire(sys.P.AsyncCompletionCost) + sys.P.AsyncCompletionCost
						sys.Eng.At(free, func() {
							inflight--
							completed++
							if completed == len(chunks) {
								done()
								return
							}
							pump()
						})
					},
				})
			})
		}
	}
	if len(chunks) == 0 {
		done()
		return
	}
	pump()
}
