package simhw

import (
	"sonuma/internal/core"
	"sonuma/internal/sim"
	"sonuma/internal/stats"
)

// This file models the §5.3 messaging library on the cycle model, driving
// the Fig. 8 experiments: the netpipe-style ping-pong (latency) and
// streaming (bandwidth) microbenchmarks of §7.3, for the push mechanism,
// the pull mechanism, and the threshold combination.

// msgState is receiver-arrival bookkeeping for a pushed message: it counts
// the ring lines landing at the destination (the RRPP's memory writes) and
// triggers the receiving side's poll-detection once the last line is home.
// Lines of one write may land out of order, which this counting handles
// exactly like the epoch-stamp scheme of the software library.
type msgState struct {
	linesTotal  int
	linesLanded int
	onArrive    func()
}

func (m *msgState) lineLanded(sys *System, n *Node) {
	m.linesLanded++
	if m.linesLanded == m.linesTotal && m.onArrive != nil {
		fn := m.onArrive
		sys.Eng.After(sys.P.PollDetect, fn)
	}
}

const (
	msgSlotPayload = 56 // 64-byte slot minus the 8-byte header
	descriptorSize = 24
	ackSize        = 8
)

func slotsFor(bytes int) int {
	if bytes <= msgSlotPayload {
		return 1
	}
	return (bytes + msgSlotPayload - 1) / msgSlotPayload
}

// messenger models one node's messaging endpoint.
type messenger struct {
	sys      *System
	n        *Node
	coreIdx  int
	ringBase uint64 // receive ring in THIS node's memory (peers write it)
	stagBase uint64 // pull staging in THIS node's memory (peers read it)
	sendBuf  uint64 // local source buffer for ring writes
	ringOff  uint64
	stagOff  uint64
	// staging window for streaming pulls
	stagingFree int
	stagingWait []func()
}

func newMessenger(sys *System, node int) *messenger {
	n := sys.Nodes[node]
	return &messenger{
		sys: sys, n: n,
		ringBase:    n.Alloc(1 << 20),
		stagBase:    n.Alloc(8 << 20),
		sendBuf:     n.Alloc(1 << 20),
		stagingFree: 4,
	}
}

// push models send() on the push path: software packetization on the core,
// then a single rmc_write of the slot run into the peer's ring.
// onArrive fires on the RECEIVER after its poll loop has observed the whole
// message and parsed it; onSent fires on the SENDER when the write's CQ
// completion returns (buffer reusable).
func (m *messenger) push(peer *messenger, bytes int, onArrive, onSent func()) {
	p := &m.sys.P
	nSlots := slotsFor(bytes)
	wireBytes := nSlots * core.CacheLineSize
	swCost := p.MsgSendCost + sim.Time(nSlots)*p.MsgPerSlotCost
	issueAt := m.n.Core(m.coreIdx).Acquire(swCost+p.IssueCost) + swCost + p.IssueCost
	ringAddr := peer.ringBase + m.ringOff
	m.ringOff = (m.ringOff + uint64(wireBytes)) % (1 << 20)
	st := &msgState{linesTotal: nSlots}
	st.onArrive = func() {
		// Receiver-side software: parse header + assemble slots.
		recvCost := p.MsgRecvCost + sim.Time(nSlots)*p.MsgPerSlotRecvCost
		at := peer.n.Core(peer.coreIdx).Acquire(recvCost) + recvCost
		m.sys.Eng.At(at, onArrive)
	}
	m.sys.Eng.At(issueAt, func() {
		m.n.Post(WQEntry{
			Op: core.OpWrite, Dst: peer.n.id, Addr: ringAddr,
			Length: wireBytes, Buf: m.sendBuf, Done: onSent, msg: st,
		})
	})
}

// pull models send() on the pull path: stage the payload locally (memcpy),
// push a descriptor; the receiver fetches with one rmc_read and pushes an
// acknowledgement that frees the staging slot.
func (m *messenger) pull(peer *messenger, bytes int, onArrive func()) {
	p := &m.sys.P
	m.acquireStaging(func() {
		copyCost := sim.Time(bytes) * p.CopyPsPerByte
		stagedAt := m.n.Core(m.coreIdx).Acquire(copyCost) + copyCost
		stagAddr := m.stagBase + m.stagOff
		m.stagOff = (m.stagOff + uint64(core.AlignUp(bytes))) % (8 << 20)
		m.sys.Eng.At(stagedAt, func() {
			m.push(peer, descriptorSize, func() {
				// Receiver: single rmc_read of the staged bytes.
				peer.readFrom(m, stagAddr, bytes, func() {
					// Copy out of the landing buffer, deliver,
					// and acknowledge.
					outCost := sim.Time(bytes) * p.CopyPsPerByte
					at := peer.n.Core(peer.coreIdx).Acquire(outCost) + outCost
					m.sys.Eng.At(at, func() {
						onArrive()
						peer.push(m, ackSize, func() {
							m.releaseStaging()
						}, nil)
					})
				})
			}, nil)
		})
	})
}

// readFrom issues a synchronous rmc_read against the peer's staging area.
func (m *messenger) readFrom(peer *messenger, addr uint64, bytes int, done func()) {
	p := &m.sys.P
	issueAt := m.n.Core(m.coreIdx).Acquire(p.IssueCost) + p.IssueCost
	m.sys.Eng.At(issueAt, func() {
		m.n.Post(WQEntry{
			Op: core.OpRead, Dst: peer.n.id, Addr: addr,
			Length: bytes, Buf: m.sendBuf, Done: done,
		})
	})
}

func (m *messenger) acquireStaging(fn func()) {
	if m.stagingFree > 0 {
		m.stagingFree--
		fn()
		return
	}
	m.stagingWait = append(m.stagingWait, fn)
}

func (m *messenger) releaseStaging() {
	if len(m.stagingWait) > 0 {
		fn := m.stagingWait[0]
		m.stagingWait = m.stagingWait[:copy(m.stagingWait, m.stagingWait[1:])]
		m.sys.Eng.After(0, fn)
		return
	}
	m.stagingFree++
}

// send dispatches by the push/pull threshold (§5.3). threshold semantics
// match the software library: <0 means always push, 0 means always pull.
func (m *messenger) send(peer *messenger, bytes, threshold int, onArrive func()) {
	usePull := threshold == 0 || (threshold > 0 && bytes >= threshold)
	if usePull {
		m.pull(peer, bytes, onArrive)
	} else {
		m.push(peer, bytes, onArrive, nil)
	}
}

// SendRecvLatency measures half-duplex latency (ping-pong RTT / 2) for one
// message size under the given threshold (Fig. 8a).
func SendRecvLatency(p Params, size, threshold, rounds int) LatencyResult {
	sys := NewSystem(p, 2, nil)
	a, b := newMessenger(sys, 0), newMessenger(sys, 1)
	var lat stats.Sample
	warmup := 10
	round := 0
	var ping func()
	ping = func() {
		if round >= warmup+rounds {
			return
		}
		round++
		measured := round > warmup
		t0 := sys.Eng.Now()
		a.send(b, size, threshold, func() {
			b.send(a, size, threshold, func() {
				if measured {
					lat.Add((sys.Eng.Now() - t0).Nanoseconds() / 2)
				}
				ping()
			})
		})
	}
	ping()
	sys.Eng.Run()
	return LatencyResult{Size: size, MeanNs: lat.Mean(), P99Ns: lat.Percentile(99), Samples: lat.N()}
}

// SendRecvBandwidth measures streaming throughput: node 0 sends messages
// back-to-back, node 1 consumes (Fig. 8b). The in-flight window models the
// ring/staging credits of the software library.
func SendRecvBandwidth(p Params, size, threshold, messages int) BandwidthResult {
	sys := NewSystem(p, 2, nil)
	a, b := newMessenger(sys, 0), newMessenger(sys, 1)
	// The software library's streaming window: pull transfers synchronize
	// per message (§5.3 "requires synchronization between the peers"), so
	// effective pipelining across messages is shallow.
	const window = 2
	var (
		sent, arrived int
		inflight      int
		startAt       sim.Time
		endAt         sim.Time
		started       bool
		pump          func()
	)
	pump = func() {
		for sent < messages && inflight < window {
			if !started {
				started = true
				startAt = sys.Eng.Now()
			}
			sent++
			inflight++
			a.send(b, size, threshold, func() {
				inflight--
				arrived++
				if arrived == messages {
					endAt = sys.Eng.Now()
					return
				}
				pump()
			})
		}
	}
	pump()
	sys.Eng.Run()
	secs := (endAt - startAt).Seconds()
	bytes := int64(messages) * int64(size)
	return BandwidthResult{
		Size: size, GBps: stats.GBps(bytes, secs), Gbps: stats.Gbps(bytes, secs),
		MopsPerS: float64(messages) / secs / 1e6, DurationS: secs,
	}
}
