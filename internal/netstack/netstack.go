// Package netstack models the commodity networking baseline of the paper's
// motivation (§2.1, Fig. 1): two directly connected Calxeda ECX-1000
// microservers running netpipe over the kernel TCP/IP stack and integrated
// 10 Gb/s NICs. The measured pathology — ~40 µs small-message latency and
// under 2 Gb/s peak bandwidth despite a 10 Gb/s fabric — comes from
// protocol processing on the slow ARM cores, not the wire; this model
// reproduces it from per-message, per-packet and per-byte software costs.
package netstack

import "sonuma/internal/sim"

// Params cost out the deep network stack.
type Params struct {
	// PerMessage is the fixed one-way software cost: syscall entry,
	// socket locking, scheduling/wakeup of the receiver, interrupt
	// processing. This dominates small-message latency.
	PerMessage sim.Time
	// PerPacket is the stack's cost per MTU-sized packet on each side
	// (header processing, checksums, skb management).
	PerPacket sim.Time
	// PerByte is the copy cost per payload byte on each side (user-
	// kernel copy plus checksum touch on a slow core).
	PerByte sim.Time
	// MTU is the wire MTU.
	MTU int
	// WireGbps is the physical link rate.
	WireGbps float64
	// WireLatency is propagation plus NIC/serialization base delay.
	WireLatency sim.Time
}

// CalxedaTCP returns costs calibrated to Fig. 1: ≈40 µs one-way latency for
// small messages and <2 Gb/s sustained bandwidth for large ones on ARM
// Cortex-A9 cores.
func CalxedaTCP() Params {
	return Params{
		PerMessage:  19 * sim.Microsecond,
		PerPacket:   4 * sim.Microsecond,
		PerByte:     3500 * sim.Picosecond, // ≈ 2.3 Gb/s copy ceiling
		MTU:         1500,
		WireGbps:    10,
		WireLatency: 1 * sim.Microsecond,
	}
}

// packets reports the MTU segments of an n-byte message.
func (p Params) packets(n int) int {
	if n <= 0 {
		return 1
	}
	return (n + p.MTU - 1) / p.MTU
}

// OneWayLatency reports the one-way latency of an n-byte message: sender
// stack + wire + receiver stack. netpipe's reported latency is RTT/2, which
// equals this for symmetric stacks.
func (p Params) OneWayLatency(n int) sim.Time {
	pkts := sim.Time(p.packets(n))
	side := p.PerMessage + pkts*p.PerPacket + sim.Time(n)*p.PerByte
	wireBits := float64((n + 42*p.packets(n)) * 8)
	wire := p.WireLatency + sim.Time(wireBits/p.WireGbps)*sim.Nanosecond
	return 2*side + wire
}

// Bandwidth reports sustained streaming throughput in Gb/s for n-byte
// messages: the pipeline bottleneck of sender processing, wire, and
// receiver processing.
func (p Params) Bandwidth(n int) float64 {
	pkts := sim.Time(p.packets(n))
	// Per-message processing time on the bottleneck side; streaming
	// pipelines across messages, so the fixed per-message cost is paid
	// once per message but not serialized with the wire.
	side := (p.PerMessage/4 + pkts*p.PerPacket + sim.Time(n)*p.PerByte).Seconds()
	wire := float64(n+42*p.packets(n)) * 8 / (p.WireGbps * 1e9)
	bottleneck := side
	if wire > bottleneck {
		bottleneck = wire
	}
	return float64(n) * 8 / bottleneck / 1e9
}

// Point is one netpipe sweep entry.
type Point struct {
	Size      int
	LatencyUs float64
	Gbps      float64
}

// Sweep runs the netpipe-style size sweep of Fig. 1.
func Sweep(p Params, sizes []int) []Point {
	out := make([]Point, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, Point{
			Size:      s,
			LatencyUs: p.OneWayLatency(s).Microseconds(),
			Gbps:      p.Bandwidth(s),
		})
	}
	return out
}
