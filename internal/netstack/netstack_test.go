package netstack

import "testing"

func TestSmallMessageLatency(t *testing.T) {
	p := CalxedaTCP()
	lat := p.OneWayLatency(1).Microseconds()
	// Fig. 1 / §2.2: "high latency (in excess of 40µs) for small packet
	// sizes".
	if lat < 40 || lat > 70 {
		t.Fatalf("small-message latency %.1fµs, want 40–70µs", lat)
	}
}

func TestPeakBandwidthUnder2Gbps(t *testing.T) {
	p := CalxedaTCP()
	peak := 0.0
	for _, s := range []int{1024, 16384, 65536, 262144, 1048576} {
		if bw := p.Bandwidth(s); bw > peak {
			peak = bw
		}
	}
	// Fig. 1: "poor bandwidth scalability (under 2 Gbps) with large
	// packets" despite the 10Gbps fabric.
	if peak >= 2.5 || peak < 1.0 {
		t.Fatalf("peak bandwidth %.2f Gbps, want 1–2.5", peak)
	}
}

func TestLatencyMonotoneInSize(t *testing.T) {
	p := CalxedaTCP()
	prev := p.OneWayLatency(1)
	for _, s := range []int{64, 1024, 65536, 1048576} {
		cur := p.OneWayLatency(s)
		if cur < prev {
			t.Fatalf("latency decreased at %dB", s)
		}
		prev = cur
	}
}

func TestBandwidthGrowsWithSize(t *testing.T) {
	p := CalxedaTCP()
	small := p.Bandwidth(64)
	large := p.Bandwidth(1 << 20)
	if large < 10*small {
		t.Fatalf("bandwidth barely grows with size: %.3f vs %.3f", small, large)
	}
}

func TestSweep(t *testing.T) {
	pts := Sweep(CalxedaTCP(), []int{1, 1024, 65536})
	if len(pts) != 3 || pts[0].Size != 1 || pts[2].Gbps <= pts[0].Gbps {
		t.Fatalf("sweep malformed: %+v", pts)
	}
}
