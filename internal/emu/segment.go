// Package emu implements the soNUMA development platform: a functional,
// wall-clock-speed emulation of the RMC and its software stack, mirroring
// the paper's Xen-based RMCemu (§7.1). Every node runs the RGP+RCP pipeline
// pair and the RRPP pipeline as dedicated goroutines over the in-process
// memory fabric, exposing the exact hardware/software interface of §4.1:
// context segments, queue pairs, and registered local buffers.
package emu

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync/atomic"

	"sonuma/internal/core"
)

// Segment is a registered memory region accessible to the RMC: either a
// node's context segment (the slice of the global address space it
// contributes) or a local buffer used as the source/destination of remote
// operations.
//
// soNUMA guarantees atomicity at cache-line granularity only (§4.1). The
// emulator realizes that with a per-line sequence lock: writers take the
// line's version odd for the duration of the write, and validated readers
// retry until they observe a stable even version. This reproduces the
// coherence-hierarchy behaviour the paper relies on for software polling on
// local memory (messaging receive, §5.3) without any global locks.
type Segment struct {
	data []byte
	ver  []atomic.Uint32 // per cache line; odd while a write is in flight
}

// NewSegment allocates a zeroed segment of size bytes (rounded up to a
// whole number of cache lines).
func NewSegment(size int) *Segment {
	size = core.AlignUp(size)
	return &Segment{
		data: make([]byte, size),
		ver:  make([]atomic.Uint32, size/core.CacheLineSize),
	}
}

// Size reports the segment size in bytes.
func (s *Segment) Size() int { return len(s.data) }

// Lines reports the number of cache lines in the segment.
func (s *Segment) Lines() int { return len(s.ver) }

// Bytes exposes the raw backing store. Callers using it directly take on
// the same obligations as with real shared memory: no concurrent remote
// writes to the ranges they touch, or external synchronization. The access
// library uses the validated accessors below instead.
func (s *Segment) Bytes() []byte { return s.data }

// lockLine spins until the line's seqlock is held (version made odd).
func (s *Segment) lockLine(line int) uint32 {
	v := &s.ver[line]
	for spins := 0; ; spins++ {
		cur := v.Load()
		if cur&1 == 0 && v.CompareAndSwap(cur, cur+1) {
			return cur + 1
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// unlockLine releases the seqlock, publishing the write.
func (s *Segment) unlockLine(line int, held uint32) { s.ver[line].Store(held + 1) }

// LineVersion returns the current version of a line. Pollers snapshot it,
// wait for change, and then read; an odd value means a write is in flight.
func (s *Segment) LineVersion(line int) uint32 { return s.ver[line].Load() }

// WriteAt copies src into the segment at off, taking each touched line's
// seqlock in turn. Multi-line writes are not atomic as a unit, matching the
// architecture's line-granularity guarantee.
func (s *Segment) WriteAt(off int, src []byte) error {
	if off < 0 || off+len(src) > len(s.data) {
		return fmt.Errorf("emu: write [%d,%d) out of segment bounds %d", off, off+len(src), len(s.data))
	}
	for len(src) > 0 {
		line := off / core.CacheLineSize
		lineOff := off % core.CacheLineSize
		n := core.CacheLineSize - lineOff
		if n > len(src) {
			n = len(src)
		}
		held := s.lockLine(line)
		copy(s.data[off:off+n], src[:n])
		s.unlockLine(line, held)
		off += n
		src = src[n:]
	}
	return nil
}

// ReadAt copies segment bytes at off into dst with per-line seqlock
// validation: each line's content is re-read until a stable version is
// observed, so a line is never returned torn.
func (s *Segment) ReadAt(off int, dst []byte) error {
	if off < 0 || off+len(dst) > len(s.data) {
		return fmt.Errorf("emu: read [%d,%d) out of segment bounds %d", off, off+len(dst), len(s.data))
	}
	for len(dst) > 0 {
		line := off / core.CacheLineSize
		lineOff := off % core.CacheLineSize
		n := core.CacheLineSize - lineOff
		if n > len(dst) {
			n = len(dst)
		}
		if raceEnabled {
			// Optimistic seqlock reads intentionally race with the
			// writer's copy and are validated afterwards; the race
			// detector cannot see that validation, so under -race
			// reads take the line lock like a writer would. See
			// race_enabled.go.
			held := s.lockLine(line)
			copy(dst[:n], s.data[off:off+n])
			s.unlockLine(line, held)
			off += n
			dst = dst[n:]
			continue
		}
		v := &s.ver[line]
		for spins := 0; ; spins++ {
			v1 := v.Load()
			if v1&1 == 0 {
				copy(dst[:n], s.data[off:off+n])
				if v.Load() == v1 {
					break
				}
			}
			if spins%64 == 63 {
				runtime.Gosched()
			}
		}
		off += n
		dst = dst[n:]
	}
	return nil
}

// checkAtomic validates an 8-byte atomic target: aligned and within a line.
func (s *Segment) checkAtomic(off int) error {
	if off < 0 || off+8 > len(s.data) {
		return fmt.Errorf("emu: atomic at %d out of segment bounds %d", off, len(s.data))
	}
	if off%8 != 0 {
		return fmt.Errorf("emu: atomic at %d not 8-byte aligned", off)
	}
	return nil
}

// FetchAdd64 atomically adds delta to the little-endian 64-bit word at off
// and returns the previous value. The line seqlock serializes it against
// all other segment accesses at that line, providing the paper's global
// atomicity within the destination node (§5.2, §7.4).
func (s *Segment) FetchAdd64(off int, delta uint64) (uint64, error) {
	if err := s.checkAtomic(off); err != nil {
		return 0, err
	}
	line := off / core.CacheLineSize
	held := s.lockLine(line)
	old := binary.LittleEndian.Uint64(s.data[off:])
	binary.LittleEndian.PutUint64(s.data[off:], old+delta)
	s.unlockLine(line, held)
	return old, nil
}

// CompareSwap64 atomically replaces the word at off with new if it equals
// expected, returning the previous value.
func (s *Segment) CompareSwap64(off int, expected, newv uint64) (uint64, error) {
	if err := s.checkAtomic(off); err != nil {
		return 0, err
	}
	line := off / core.CacheLineSize
	held := s.lockLine(line)
	old := binary.LittleEndian.Uint64(s.data[off:])
	if old == expected {
		binary.LittleEndian.PutUint64(s.data[off:], newv)
	}
	s.unlockLine(line, held)
	return old, nil
}

// Load64 reads the 64-bit word at off under the line seqlock.
func (s *Segment) Load64(off int) (uint64, error) {
	if err := s.checkAtomic(off); err != nil {
		return 0, err
	}
	var b [8]byte
	if err := s.ReadAt(off, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Store64 writes the 64-bit word at off under the line seqlock.
func (s *Segment) Store64(off int, v uint64) error {
	if err := s.checkAtomic(off); err != nil {
		return err
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.WriteAt(off, b[:])
}
